"""Tests for the operator analytics module."""

import pytest

from repro.analytics import (
    ClusterUtilisation,
    UserEfficiency,
    cluster_utilisation_report,
    efficiency_report,
)
from repro.apiserver.db import Database
from repro.resourcemgr.base import UnitState
from tests.test_apiserver_db import FakeUsage, unit


def seed_db() -> Database:
    db = Database()
    db.upsert_units(
        [
            # busy user: 16 cores, high cpu usage
            unit("1", user="busy", project="p1", state=UnitState.COMPLETED,
                 started_at=0.0, ended_at=3600.0, cpus=16),
            # waster: 32 cores allocated, barely used
            unit("2", user="waster", project="p2", state=UnitState.COMPLETED,
                 started_at=0.0, ended_at=3600.0, cpus=32),
            # short unit: excluded by min_elapsed
            unit("3", user="short", project="p3", state=UnitState.COMPLETED,
                 started_at=0.0, ended_at=60.0, cpus=4),
        ],
        now=4000.0,
    )
    busy_usage = FakeUsage(energy=2.0e6, emissions=30.0)
    busy_usage.avg_cpu_usage = 14.0  # of 16 cores
    busy_usage.peak_memory_bytes = 0.9 * 2**30
    waster_usage = FakeUsage(energy=2.5e6, emissions=40.0)
    waster_usage.avg_cpu_usage = 2.0  # of 32 cores
    waster_usage.peak_memory_bytes = 0.1 * 2**30
    db.add_unit_usage("test", {"1": busy_usage, "2": waster_usage}, now=4000.0)
    return db


class TestEfficiencyReport:
    def test_scores(self):
        report = efficiency_report(seed_db())
        rows = {r.user: r for r in report.rows}
        assert rows["busy"].cpu_efficiency == pytest.approx(14 / 16, rel=0.01)
        assert rows["waster"].cpu_efficiency == pytest.approx(2 / 32, rel=0.01)
        assert rows["busy"].memory_efficiency == pytest.approx(0.9, rel=0.01)

    def test_short_units_excluded(self):
        report = efficiency_report(seed_db(), min_elapsed=300.0)
        assert "short" not in {r.user for r in report.rows}

    def test_flagging(self):
        report = efficiency_report(seed_db(), inefficiency_threshold=0.25)
        assert [r.user for r in report.flagged] == ["waster"]

    def test_energy_per_core_hour(self):
        report = efficiency_report(seed_db())
        rows = {r.user: r for r in report.rows}
        assert rows["busy"].core_hours_allocated == pytest.approx(16.0)
        assert rows["busy"].energy_per_core_hour == pytest.approx(2.0e6 / 16.0)

    def test_render_marks_flagged(self):
        text = efficiency_report(seed_db()).render()
        assert "waster" in text and "⚠" in text
        assert "busy" in text

    def test_empty_db(self):
        report = efficiency_report(Database())
        assert report.rows == []
        assert report.flagged == []

    def test_cluster_filter(self):
        db = seed_db()
        assert efficiency_report(db, cluster="other").rows == []
        assert len(efficiency_report(db, cluster="test").rows) == 2


class TestClusterUtilisation:
    def test_against_live_stack(self, small_sim):
        report = cluster_utilisation_report(small_sim.engine, small_sim.now)
        assert report.nodes_total == 4
        assert report.total_power_w > 0
        assert 0.0 < report.attribution_ratio <= 1.0
        assert report.carbon_intensity_g_per_kwh > 10.0
        assert set(report.power_by_nodegroup) <= {"intel-cpu", "gpu-ipmi-incl"}
        assert sum(report.power_by_nodegroup.values()) == pytest.approx(report.total_power_w)

    def test_idle_detection_consistency(self, small_sim):
        report = cluster_utilisation_report(small_sim.engine, small_sim.now)
        busy_nodes = sum(1 for n in small_sim.nodes if n.tasks)
        # idle per the report = nodes with no attributed unit power;
        # allow ±1 for jobs inside the rate-window warmup.
        assert abs((report.nodes_total - report.nodes_idle) - busy_nodes) <= 1

    def test_render(self, small_sim):
        text = cluster_utilisation_report(small_sim.engine, small_sim.now).render()
        assert "cluster power" in text
        assert "idle nodes" in text
        assert "gCO2e/kWh" in text


class TestDataclasses:
    def test_user_efficiency_zero_core_hours(self):
        row = UserEfficiency(
            user="u", project="p", num_units=0, core_hours_allocated=0.0,
            cpu_efficiency=0.0, memory_efficiency=0.0, energy_joules=0.0, emissions_g=0.0,
        )
        assert row.energy_per_core_hour == 0.0

    def test_utilisation_zero_power(self):
        report = ClusterUtilisation(at=0.0, total_power_w=0.0, attributed_power_w=0.0)
        assert report.attribution_ratio == 0.0
