"""Tests for the Thanos substrate: sidecar, store, compactor, fanout."""

import numpy as np
import pytest

from repro.common.errors import StorageError
from repro.thanos.compact import Compactor, _downsample_series
from repro.thanos.query import FanoutStorage, merge_series
from repro.thanos.sidecar import Sidecar
from repro.thanos.store import BlockMeta, ObjectStore
from repro.tsdb.model import Labels, Matcher
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.storage import TSDB, Series


def mk(name: str, **labels: str) -> Labels:
    return Labels({"__name__": name, **labels})


def fill(db: TSDB, hours: float, step: float = 60.0) -> None:
    t = 0.0
    while t <= hours * 3600.0:
        db.append(mk("m", instance="n1"), t, t / 60.0)
        t += step


class TestSidecar:
    def test_uploads_completed_blocks_only(self):
        hot = TSDB()
        fill(hot, hours=5)
        store = ObjectStore()
        sidecar = Sidecar(hot, store)
        uploaded = sidecar.upload(now=5 * 3600.0)
        assert uploaded == 2  # two complete 2h windows; the third is open
        assert store.tsdb("raw").num_samples == 2 * 120

    def test_incremental_upload(self):
        hot = TSDB()
        fill(hot, hours=2)
        store = ObjectStore()
        sidecar = Sidecar(hot, store)
        sidecar.upload(now=2 * 3600.0)
        first = store.tsdb("raw").num_samples
        fill_more = TSDB()  # extend hot in place instead
        t = 2 * 3600.0 + 60.0
        while t <= 4 * 3600.0:
            hot.append(mk("m", instance="n1"), t, t / 60.0)
            t += 60.0
        sidecar.upload(now=4 * 3600.0)
        assert store.tsdb("raw").num_samples > first
        assert sidecar.blocks_uploaded == 2
        del fill_more

    def test_block_metadata(self):
        hot = TSDB()
        fill(hot, hours=2)
        store = ObjectStore()
        Sidecar(hot, store).upload(now=2 * 3600.0)
        block = store.blocks_at("raw")[0]
        assert block.min_time == 0.0
        assert block.max_time == 7200.0
        assert block.num_series == 1
        assert block.level == 1

    def test_nothing_to_upload(self):
        sidecar = Sidecar(TSDB(), ObjectStore())
        assert sidecar.upload(now=1e6) == 0


class TestDownsampling:
    def test_bucket_means(self):
        ts = np.arange(0, 600, 60.0)
        vs = np.arange(10, dtype=np.float64)
        b_ts, means, mins, maxs = _downsample_series(ts, vs, bucket=300.0)
        assert b_ts.tolist() == [300.0, 600.0]
        assert means.tolist() == [2.0, 7.0]
        assert mins.tolist() == [0.0, 5.0]
        assert maxs.tolist() == [4.0, 9.0]

    def test_compactor_produces_5m_resolution(self):
        hot = TSDB()
        fill(hot, hours=8, step=60.0)
        store = ObjectStore()
        Sidecar(hot, store).upload(now=8 * 3600.0)
        compactor = Compactor(store, downsample_5m_after=3600.0)
        produced = compactor.downsample(now=8 * 3600.0)
        assert produced["5m"] > 0
        five = store.tsdb("5m")
        mean_series = five.select([Matcher.name_eq("m")])
        assert len(mean_series) == 1
        # 5m averages of a linear signal match the signal midpoint
        ts, vs = mean_series[0].window(300.0, 3600.0)
        for t, v in zip(ts.tolist(), vs.tolist()):
            assert v == pytest.approx((t - 150.0) / 60.0, abs=0.6)

    def test_min_max_helper_series(self):
        hot = TSDB()
        fill(hot, hours=4)
        store = ObjectStore()
        Sidecar(hot, store).upload(now=4 * 3600.0)
        Compactor(store, downsample_5m_after=0.0).downsample(now=4 * 3600.0)
        names = store.tsdb("5m").metric_names()
        assert set(names) == {"m", "m:min", "m:max"}

    def test_downsample_idempotent(self):
        hot = TSDB()
        fill(hot, hours=4)
        store = ObjectStore()
        Sidecar(hot, store).upload(now=4 * 3600.0)
        compactor = Compactor(store, downsample_5m_after=0.0)
        compactor.downsample(now=4 * 3600.0)
        second = compactor.downsample(now=4 * 3600.0)
        assert second["5m"] == 0  # nothing new to do

    def test_1h_resolution_from_5m(self):
        hot = TSDB()
        fill(hot, hours=30, step=300.0)
        store = ObjectStore()
        Sidecar(hot, store).upload(now=30 * 3600.0)
        compactor = Compactor(store, downsample_5m_after=0.0, downsample_1h_after=0.0)
        produced = compactor.downsample(now=30 * 3600.0)
        assert produced["1h"] > 0
        assert store.tsdb("1h").num_samples > 0


class TestCompaction:
    def test_blocks_merge_to_higher_levels(self):
        hot = TSDB()
        fill(hot, hours=17, step=120.0)
        store = ObjectStore()
        Sidecar(hot, store).upload(now=17 * 3600.0)
        assert len(store.blocks_at("raw")) == 8
        compactor = Compactor(store)
        merged = compactor.compact_blocks()
        assert merged == 8  # 8 level-1 blocks -> 2 level-2 blocks
        level2 = [b for b in store.blocks_at("raw") if b.level == 2]
        assert len(level2) == 2
        assert all(b.max_time - b.min_time == 8 * 3600.0 for b in level2)

    def test_incomplete_window_not_merged(self):
        hot = TSDB()
        fill(hot, hours=5, step=120.0)
        store = ObjectStore()
        Sidecar(hot, store).upload(now=5 * 3600.0)
        compactor = Compactor(store)
        compactor.compact_blocks()
        assert all(b.level == 1 for b in store.blocks_at("raw"))


class TestObjectStore:
    def test_bad_resolution_rejected(self):
        store = ObjectStore()
        with pytest.raises(StorageError):
            store.tsdb("3m")
        with pytest.raises(StorageError):
            store.add_block(BlockMeta("u", 0, 1, "3m", 0, 0))

    def test_inverted_block_rejected(self):
        store = ObjectStore()
        with pytest.raises(StorageError):
            store.add_block(BlockMeta("u", 10, 5, "raw", 0, 0))

    def test_pick_resolution_heuristic(self):
        store = ObjectStore()
        store.tsdb("5m").append(mk("m"), 0.0, 1.0)
        store.tsdb("1h").append(mk("m"), 0.0, 1.0)
        assert store.pick_resolution(3600.0) == "raw"
        assert store.pick_resolution(3 * 86400.0) == "5m"
        assert store.pick_resolution(30 * 86400.0) == "1h"

    def test_retention_per_resolution(self):
        store = ObjectStore(raw_retention=3600.0)
        for t in range(0, 7200, 600):
            store.tsdb("raw").append(mk("m"), float(t), 1.0)
        store.add_block(BlockMeta("old", 0.0, 1800.0, "raw", 3, 1))
        store.add_block(BlockMeta("new", 5400.0, 7200.0, "raw", 3, 1))
        dropped = store.apply_retention(now=7200.0)
        assert dropped["raw"] > 0
        assert [b.ulid for b in store.blocks_at("raw")] == ["new"]


class TestFanout:
    def test_merge_prefers_primary(self):
        labels = mk("m")
        hot = Series(labels=labels)
        hot.append(10.0, 100.0)
        hot.append(20.0, 200.0)
        cold = Series(labels=labels)
        cold.append(0.0, -1.0)
        cold.append(10.0, -2.0)  # overlapping timestamp: hot wins
        merged = merge_series(hot, cold, labels)
        assert merged.timestamps == [0.0, 10.0, 20.0]
        assert merged.values == [-1.0, 100.0, 200.0]

    def test_merge_handles_missing_sides(self):
        labels = mk("m")
        only = Series(labels=labels)
        only.append(1.0, 1.0)
        assert merge_series(only, None, labels) is only
        assert merge_series(None, only, labels) is only
        assert merge_series(None, None, labels).nsamples == 0

    def test_fanout_spans_hot_and_store(self):
        hot = TSDB(retention=3600.0)
        fill(hot, hours=4)
        store = ObjectStore()
        Sidecar(hot, store).upload(now=4 * 3600.0)
        hot.apply_retention(now=4 * 3600.0)  # hot now holds only 1h
        fanout = FanoutStorage(hot, store)
        engine = PromQLEngine(fanout)
        # query a point that only exists in the store
        result = engine.query("m", at=1800.0)
        assert len(result.vector) == 1
        # and a recent point that exists in hot
        result = engine.query("m", at=4 * 3600.0)
        assert len(result.vector) == 1

    def test_fanout_label_values(self):
        hot = TSDB()
        hot.append(mk("m", instance="hot1"), 0.0, 1.0)
        store = ObjectStore()
        store.tsdb("raw").append(mk("m", instance="cold1"), 0.0, 1.0)
        fanout = FanoutStorage(hot, store)
        assert fanout.label_values("instance") == ["cold1", "hot1"]
