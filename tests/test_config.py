"""Tests for the single-file stack configuration."""

import pytest

from repro.common.config import (
    APIServerConfig,
    EmissionsConfig,
    ExporterConfig,
    LBConfig,
    StackConfig,
    TSDBConfig,
)
from repro.common.errors import ConfigError

FULL_DOC = """
exporter:
  port: 9011
  collectors: [cgroup, rapl, ipmi, node, gpu_map]
  basic_auth:
    username: scraper
    password: hunter2
  tls_enabled: true
tsdb:
  scrape_interval: 30s
  retention: 15d
  replicate_to_thanos: false
api_server:
  update_interval: 10m
  db_path: /var/lib/ceems/ceems.db
  backup_interval: 12h
  cleanup_cutoff: 5m
lb:
  strategy: least-connection
  backends: [prom-0, prom-1]
  authz_mode: api
emissions:
  country: fr
  providers: [rte, electricity_maps, owid]
  refresh_interval: 15m
"""


class TestFullDocument:
    def test_all_sections_parse(self):
        cfg = StackConfig.loads(FULL_DOC)
        assert cfg.exporter.port == 9011
        assert cfg.exporter.collectors == ("cgroup", "rapl", "ipmi", "node", "gpu_map")
        assert cfg.exporter.basic_auth.username == "scraper"
        assert cfg.exporter.tls_enabled is True
        assert cfg.tsdb.scrape_interval == 30.0
        assert cfg.tsdb.retention == 15 * 86400.0
        assert cfg.tsdb.replicate_to_thanos is False
        assert cfg.api_server.update_interval == 600.0
        assert cfg.api_server.db_path == "/var/lib/ceems/ceems.db"
        assert cfg.api_server.cleanup_cutoff == 300.0
        assert cfg.lb.strategy == "least-connection"
        assert cfg.lb.backends == ("prom-0", "prom-1")
        assert cfg.lb.authz_mode == "api"
        assert cfg.emissions.country == "FR"  # normalised to upper
        assert cfg.emissions.providers == ("rte", "electricity_maps", "owid")

    def test_empty_document_gives_defaults(self):
        cfg = StackConfig.loads("")
        assert cfg.exporter.port == 9010
        assert cfg.tsdb.scrape_interval == 15.0
        assert cfg.api_server.cleanup_cutoff == 0.0
        assert cfg.lb.strategy == "round-robin"
        assert cfg.emissions.country == "FR"

    def test_partial_document(self):
        cfg = StackConfig.loads("tsdb:\n  scrape_interval: 60")
        assert cfg.tsdb.scrape_interval == 60.0
        assert cfg.exporter.port == 9010  # untouched section defaults

    def test_unknown_section_rejected(self):
        with pytest.raises(ConfigError, match="unknown config sections"):
            StackConfig.loads("surprises:\n  a: 1")

    def test_load_file(self, tmp_path):
        path = tmp_path / "ceems.yml"
        path.write_text(FULL_DOC)
        cfg = StackConfig.load_file(str(path))
        assert cfg.exporter.port == 9011


class TestExporterConfig:
    def test_unknown_collector_rejected(self):
        with pytest.raises(ConfigError, match="unknown collector"):
            ExporterConfig.from_dict({"collectors": ["cgroup", "quantum"]})

    @pytest.mark.parametrize("port", [0, -1, 70000])
    def test_bad_port_rejected(self, port):
        with pytest.raises(ConfigError, match="port"):
            ExporterConfig.from_dict({"port": port})

    def test_basic_auth_disabled_by_default(self):
        assert not ExporterConfig.from_dict({}).basic_auth.enabled


class TestDurationCoercion:
    def test_numeric_duration(self):
        assert TSDBConfig.from_dict({"scrape_interval": 20}).scrape_interval == 20.0

    def test_string_duration(self):
        assert TSDBConfig.from_dict({"scrape_interval": "1m30s"}).scrape_interval == 90.0

    @pytest.mark.parametrize("bad", ["soon", "-5s", 0, -3])
    def test_bad_duration_rejected(self, bad):
        with pytest.raises(ConfigError):
            TSDBConfig.from_dict({"scrape_interval": bad})

    def test_cleanup_cutoff_zero_means_disabled(self):
        assert APIServerConfig.from_dict({"cleanup_cutoff": 0}).cleanup_cutoff == 0.0


class TestLBConfig:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError, match="strategy"):
            LBConfig.from_dict({"strategy": "random"})

    def test_unknown_authz_mode_rejected(self):
        with pytest.raises(ConfigError, match="authz_mode"):
            LBConfig.from_dict({"authz_mode": "blockchain"})


class TestEmissionsConfig:
    def test_unknown_provider_rejected(self):
        with pytest.raises(ConfigError, match="provider"):
            EmissionsConfig.from_dict({"providers": ["owid", "crystal_ball"]})

    def test_country_uppercased(self):
        assert EmissionsConfig.from_dict({"country": "de"}).country == "DE"
