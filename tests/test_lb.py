"""Tests for the CEEMS load balancer: strategies, introspection, authz, proxy."""

import pytest

from repro.apiserver.api import APIServer
from repro.apiserver.db import Database
from repro.common.errors import CEEMSError
from repro.common.httpx import App, Request, Response
from repro.lb import (
    APIAuthorizer,
    Backend,
    DBAuthorizer,
    LeastConnection,
    LoadBalancer,
    RoundRobin,
    extract_uuids,
    make_strategy,
)
from repro.tsdb.http import PromAPI
from repro.tsdb.model import Labels
from repro.tsdb.storage import TSDB
from tests.test_apiserver_db import unit


def echo_app(name: str) -> App:
    app = App(name)
    app.router.get("/api/v1/query", lambda req: Response.json({"from": name}))
    app.router.post("/api/v1/query", lambda req: Response.json({"from": name}))
    app.router.get("/-/healthy", lambda req: Response.text("ok"))
    return app


class TestStrategies:
    def test_round_robin_rotates(self):
        backends = [Backend(str(i), echo_app(str(i))) for i in range(3)]
        strategy = RoundRobin(backends)
        chosen = [strategy.choose().name for _ in range(6)]
        assert chosen == ["0", "1", "2", "0", "1", "2"]

    def test_round_robin_skips_unhealthy(self):
        backends = [Backend(str(i), echo_app(str(i))) for i in range(3)]
        backends[1].healthy = False
        strategy = RoundRobin(backends)
        chosen = {strategy.choose().name for _ in range(4)}
        assert chosen == {"0", "2"}

    def test_least_connection_picks_emptiest(self):
        backends = [Backend(str(i), echo_app(str(i))) for i in range(3)]
        backends[0].active_connections = 5
        backends[1].active_connections = 1
        backends[2].active_connections = 3
        assert LeastConnection(backends).choose().name == "1"

    def test_least_connection_tie_break_stable(self):
        backends = [Backend(str(i), echo_app(str(i))) for i in range(3)]
        assert LeastConnection(backends).choose().name == "0"

    def test_no_backends_rejected(self):
        with pytest.raises(CEEMSError):
            RoundRobin([])

    def test_all_unhealthy_raises(self):
        backends = [Backend("0", echo_app("0"))]
        backends[0].healthy = False
        with pytest.raises(CEEMSError, match="no healthy"):
            RoundRobin(backends).choose()

    def test_release_without_acquire_rejected(self):
        backend = Backend("0", echo_app("0"))
        with pytest.raises(CEEMSError):
            backend.release()

    def test_make_strategy(self):
        backends = [Backend("0", echo_app("0"))]
        assert isinstance(make_strategy("round-robin", backends), RoundRobin)
        assert isinstance(make_strategy("least-connection", backends), LeastConnection)
        with pytest.raises(CEEMSError):
            make_strategy("chaos", backends)


class TestIntrospection:
    def test_eq_matcher(self):
        scope = extract_uuids('ceems:compute_unit:power_watts{uuid="123"}')
        assert scope.uuids == {"123"} and not scope.unbounded

    def test_regex_alternation(self):
        scope = extract_uuids('sum(rate(x{uuid=~"12|34|56"}[5m]))')
        assert scope.uuids == {"12", "34", "56"} and not scope.unbounded

    def test_no_uuid_matcher_is_unbounded(self):
        scope = extract_uuids("sum(node_cpu_seconds_total)")
        assert scope.unbounded

    def test_wildcard_regex_is_unbounded(self):
        scope = extract_uuids('x{uuid=~".*"}')
        assert scope.unbounded

    def test_neq_does_not_bound(self):
        scope = extract_uuids('x{uuid!="1"}')
        assert scope.unbounded

    def test_mixed_selectors(self):
        scope = extract_uuids('x{uuid="1"} + on() group_left() y')
        assert scope.uuids == {"1"} and scope.unbounded  # y is unbounded

    def test_uuid_in_function_args(self):
        scope = extract_uuids('clamp_min(rate(x{uuid="9"}[5m]), 0) * 2')
        assert scope.uuids == {"9"} and not scope.unbounded

    def test_unparseable_raises(self):
        from repro.common.errors import QueryError

        with pytest.raises(QueryError):
            extract_uuids("x{{{")


@pytest.fixture
def authz_db() -> Database:
    db = Database()
    db.upsert_units(
        [
            unit("1", user="alice"),
            unit("2", user="alice"),
            unit("3", user="bob"),
        ],
        now=0.0,
    )
    return db


class TestAuthorizers:
    def test_db_authorizer_owner(self, authz_db):
        authz = DBAuthorizer(authz_db)
        assert authz.allowed("alice", {"1", "2"}, unbounded=False)
        assert not authz.allowed("alice", {"1", "3"}, unbounded=False)
        assert not authz.allowed("alice", {"404"}, unbounded=False)

    def test_db_authorizer_unbounded_denied(self, authz_db):
        authz = DBAuthorizer(authz_db)
        assert not authz.allowed("alice", set(), unbounded=True)

    def test_admin_bypasses_everything(self, authz_db):
        authz = DBAuthorizer(authz_db)
        assert authz.allowed("admin", {"3"}, unbounded=False)
        assert authz.allowed("admin", set(), unbounded=True)

    def test_denials_counted(self, authz_db):
        authz = DBAuthorizer(authz_db)
        authz.allowed("alice", {"3"}, unbounded=False)
        authz.allowed("alice", {"1"}, unbounded=False)
        assert authz.checks == 2 and authz.denials == 1

    def test_api_authorizer_delegates(self, authz_db):
        api = APIServer(authz_db)
        authz = APIAuthorizer(api.app)
        assert authz.allowed("alice", {"1"}, unbounded=False)
        assert not authz.allowed("bob", {"1"}, unbounded=False)
        assert not authz.allowed("alice", {"404"}, unbounded=False)


class TestLoadBalancer:
    def make_lb(self, authz_db, strategy="round-robin", n_backends=2):
        backends = [Backend(f"prom-{i}", echo_app(f"prom-{i}")) for i in range(n_backends)]
        return LoadBalancer(backends, DBAuthorizer(authz_db), strategy=strategy), backends

    def query(self, lb, user, promql='x{uuid="1"}'):
        import urllib.parse

        headers = {"x-grafana-user": user} if user else {}
        return lb.app.get(f"/api/v1/query?query={urllib.parse.quote(promql)}&time=0", headers=headers)

    def test_missing_identity_rejected(self, authz_db):
        lb, _ = self.make_lb(authz_db)
        assert self.query(lb, user=None).status == 401

    def test_owner_query_proxied(self, authz_db):
        lb, _ = self.make_lb(authz_db)
        response = self.query(lb, user="alice")
        assert response.ok
        assert response.headers["x-ceems-backend"] == "prom-0"

    def test_foreign_query_denied(self, authz_db):
        lb, _ = self.make_lb(authz_db)
        assert self.query(lb, user="bob").status == 403
        assert lb.requests_denied == 1

    def test_unbounded_query_denied_for_users(self, authz_db):
        lb, _ = self.make_lb(authz_db)
        assert self.query(lb, user="alice", promql="sum(node_power)").status == 403

    def test_admin_unbounded_allowed(self, authz_db):
        lb, _ = self.make_lb(authz_db)
        assert self.query(lb, user="admin", promql="sum(node_power)").ok

    def test_malformed_query_400(self, authz_db):
        lb, _ = self.make_lb(authz_db)
        assert self.query(lb, user="alice", promql="x{{{").status == 400

    def test_missing_query_param_400(self, authz_db):
        lb, _ = self.make_lb(authz_db)
        response = lb.app.get("/api/v1/query?time=0", headers={"x-grafana-user": "alice"})
        assert response.status == 400

    def test_round_robin_across_backends(self, authz_db):
        lb, _ = self.make_lb(authz_db)
        names = [self.query(lb, "alice").headers["x-ceems-backend"] for _ in range(4)]
        assert names == ["prom-0", "prom-1", "prom-0", "prom-1"]

    def test_backend_request_counts(self, authz_db):
        lb, backends = self.make_lb(authz_db)
        for _ in range(6):
            self.query(lb, "alice")
        assert [b.total_requests for b in backends] == [3, 3]
        assert all(b.active_connections == 0 for b in backends)

    def test_post_form_query_introspected(self, authz_db):
        lb, _ = self.make_lb(authz_db)
        request = Request.from_url(
            "POST",
            "/api/v1/query",
            headers={
                "x-grafana-user": "bob",
                "content-type": "application/x-www-form-urlencoded",
            },
            body=b'query=x%7Buuid%3D%221%22%7D&time=0',
        )
        assert lb.app.handle(request).status == 403

    def test_non_query_path_passes_with_identity(self, authz_db):
        lb, _ = self.make_lb(authz_db)
        response = lb.app.get("/-/healthy", headers={"x-grafana-user": "alice"})
        assert response.ok

    def test_end_to_end_against_real_promapi(self, authz_db):
        """LB in front of a real PromAPI: data flows for owners only."""
        tsdb = TSDB()
        tsdb.append(Labels({"__name__": "power", "uuid": "1"}), 0.0, 111.0)
        tsdb.append(Labels({"__name__": "power", "uuid": "3"}), 0.0, 333.0)
        api = PromAPI(tsdb)
        lb = LoadBalancer([Backend("prom", api.app)], DBAuthorizer(authz_db))
        response = self.query(lb, "alice", 'power{uuid="1"}')
        data = response.decode_json()["data"]
        assert float(data["result"][0]["value"][1]) == 111.0
        assert self.query(lb, "alice", 'power{uuid="3"}').status == 403
