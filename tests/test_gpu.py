"""Tests for the GPU device simulation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.hwsim.gpu import GPU_PROFILES, GPUDevice


class TestProfiles:
    def test_known_skus_present(self):
        assert set(GPU_PROFILES) >= {"V100", "A100", "H100", "MI250"}

    def test_vendor_split(self):
        assert GPU_PROFILES["V100"].vendor == "nvidia"
        assert GPU_PROFILES["MI250"].vendor == "amd"

    def test_power_curve_bounds(self):
        for name, profile in GPU_PROFILES.items():
            assert profile.power(0.0) == pytest.approx(profile.idle_w), name
            assert profile.power(1.0) <= profile.max_w + 1e-9, name

    def test_generation_ordering(self):
        assert GPU_PROFILES["H100"].max_w > GPU_PROFILES["A100"].max_w > GPU_PROFILES["V100"].max_w

    @given(st.floats(min_value=0, max_value=0.95))
    def test_power_monotone_property(self, util):
        profile = GPU_PROFILES["A100"]
        assert profile.power(util) <= profile.power(util + 0.05) + 1e-9


class TestDevice:
    def test_uuid_generated(self):
        gpu = GPUDevice(index=3, profile=GPU_PROFILES["A100"])
        assert gpu.uuid.startswith("GPU-")
        amd = GPUDevice(index=0, profile=GPU_PROFILES["MI250"])
        assert amd.uuid.startswith("AMD-")

    def test_set_activity_clamps_util(self):
        gpu = GPUDevice(index=0, profile=GPU_PROFILES["V100"])
        gpu.set_activity(1.7, 0)
        assert gpu.sm_util == 1.0
        gpu.set_activity(-0.3, 0)
        assert gpu.sm_util == 0.0

    def test_memory_over_capacity_rejected(self):
        gpu = GPUDevice(index=0, profile=GPU_PROFILES["V100"])
        with pytest.raises(SimulationError):
            gpu.set_activity(0.5, gpu.profile.memory_bytes + 1)

    def test_energy_integrates_power(self):
        gpu = GPUDevice(index=0, profile=GPU_PROFILES["A100"])
        gpu.set_activity(1.0, 0)
        for _ in range(10):
            gpu.advance(1.0)
        expected_mj = gpu.profile.max_w * 10.0 * 1000
        assert gpu.energy_mj == pytest.approx(expected_mj, rel=1e-6)

    def test_idle_resets_activity(self):
        gpu = GPUDevice(index=0, profile=GPU_PROFILES["A100"])
        gpu.set_activity(0.9, 1024)
        gpu.idle()
        assert gpu.sm_util == 0.0 and gpu.mem_used_bytes == 0

    def test_mem_util_fraction(self):
        gpu = GPUDevice(index=0, profile=GPU_PROFILES["V100"])
        gpu.set_activity(0.0, gpu.profile.memory_bytes // 2)
        assert gpu.mem_util == pytest.approx(0.5)

    def test_advance_returns_watts(self):
        gpu = GPUDevice(index=0, profile=GPU_PROFILES["H100"])
        gpu.set_activity(0.0, 0)
        assert gpu.advance(1.0) == pytest.approx(gpu.profile.idle_w)
