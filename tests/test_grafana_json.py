"""Tests for the Grafana dashboard JSON generation."""

import json

import pytest

from repro.dashboard.grafana_json import (
    all_dashboards,
    export_provisioning_bundle,
    fig2a_dashboard_json,
    fig2b_dashboard_json,
    fig2c_dashboard_json,
)
from repro.tsdb.promql.parser import parse_expr


class TestDashboardStructure:
    def test_shipped_dashboards(self):
        dashboards = all_dashboards()
        assert set(dashboards) == {
            "ceems-fig2a",
            "ceems-fig2b",
            "ceems-fig2c",
            "ceems-ops-alerting",
            "ceems-governor",
        }

    def test_schema_fields_present(self):
        for dashboard in all_dashboards().values():
            assert dashboard["schemaVersion"] >= 36
            assert dashboard["panels"]
            assert "time" in dashboard
            assert "ceems" in dashboard["tags"]

    def test_panel_ids_unique_per_dashboard(self):
        for dashboard in all_dashboards().values():
            ids = [p["id"] for p in dashboard["panels"]]
            assert len(ids) == len(set(ids))

    def test_grid_positions_within_bounds(self):
        for dashboard in all_dashboards().values():
            for panel in dashboard["panels"]:
                pos = panel["gridPos"]
                assert 0 <= pos["x"] and pos["x"] + pos["w"] <= 24
                assert pos["h"] > 0

    def test_deterministic_output(self):
        assert export_provisioning_bundle() == export_provisioning_bundle()

    def test_bundle_is_valid_json(self):
        bundle = json.loads(export_provisioning_bundle())
        assert len(bundle) == 6  # 5 dashboards + the datasources entry
        assert "datasources" in bundle

    def test_datasource_exemplar_destination(self):
        bundle = json.loads(export_provisioning_bundle())
        prom = next(
            ds for ds in bundle["datasources"] if ds["type"] == "prometheus"
        )
        dests = prom["jsonData"]["exemplarTraceIdDestinations"]
        assert dests[0]["name"] == "trace_id"
        assert "/debug/traces?trace_id=" in dests[0]["url"]

    def test_ops_dashboard_has_exemplar_target(self):
        from repro.dashboard.grafana_json import ops_alerting_dashboard_json

        dashboard = ops_alerting_dashboard_json()
        exemplar_targets = [
            t
            for p in dashboard["panels"]
            for t in p["targets"]
            if t.get("exemplar")
        ]
        assert exemplar_targets
        assert "ceems_http_request_duration_seconds_bucket" in exemplar_targets[0]["expr"]


class TestFig2aDashboard:
    def test_stat_tiles_match_paper_panels(self):
        dashboard = fig2a_dashboard_json()
        titles = {p["title"] for p in dashboard["panels"] if p["type"] == "stat"}
        assert {"Total jobs", "CPU hours", "GPU hours", "Total energy", "Emissions"} <= titles

    def test_three_month_window(self):
        assert fig2a_dashboard_json()["time"]["from"] == "now-90d"

    def test_timeseries_queries_parse(self):
        dashboard = fig2a_dashboard_json()
        for panel in dashboard["panels"]:
            for target in panel["targets"]:
                if "expr" in target:
                    parse_expr(target["expr"])


class TestFig2bDashboard:
    def test_table_columns_cover_figure(self):
        dashboard = fig2b_dashboard_json()
        columns = dashboard["panels"][0]["targets"][0]["columns"]
        for field in ("uuid", "state", "elapsed", "energy_joules", "emissions_g"):
            assert field in columns

    def test_uses_ceems_datasource(self):
        dashboard = fig2b_dashboard_json()
        assert dashboard["panels"][0]["datasource"]["type"] == "ceems-api"


class TestFig2cDashboard:
    def test_job_variable_present(self):
        dashboard = fig2c_dashboard_json()
        names = [v["name"] for v in dashboard["templating"]["list"]]
        assert "job" in names and "user" in names

    def test_queries_parse_with_variable_substituted(self):
        dashboard = fig2c_dashboard_json()
        for panel in dashboard["panels"]:
            for target in panel["targets"]:
                parse_expr(target["expr"].replace("$job", "12345"))

    def test_three_metric_panels(self):
        dashboard = fig2c_dashboard_json()
        titles = [p["title"] for p in dashboard["panels"]]
        assert titles == ["Peak power (24h)", "CPU cores used", "Power", "Memory"]


def test_bad_query_cannot_be_exported(monkeypatch):
    """The build-time PromQL validation actually guards."""
    from repro.dashboard import grafana_json

    with pytest.raises(Exception):
        grafana_json._validate_promql("sum(")
