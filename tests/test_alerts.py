"""Tests for alerting rules and the mini Alertmanager."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import QueryError
from repro.tsdb.alerts import (
    AlertingRule,
    AlertManager,
    AlertState,
    ceems_alert_rules,
)
from repro.tsdb.model import Labels
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.storage import TSDB


def mk(name: str, **labels: str) -> Labels:
    return Labels({"__name__": name, **labels})


@pytest.fixture
def db() -> TSDB:
    return TSDB()


@pytest.fixture
def engine(db) -> PromQLEngine:
    return PromQLEngine(db)


def feed_up(db: TSDB, instance: str, value: float, t: float) -> None:
    db.append(mk("up", instance=instance, job="ceems"), t, value)


class TestAlertingRule:
    def test_fires_immediately_without_hold(self, db, engine):
        feed_up(db, "n1", 0.0, 10.0)
        rule = AlertingRule(name="Down", expr="up == 0")
        transitions = rule.evaluate(engine, now=10.0)
        assert len(transitions) == 1
        assert transitions[0].state is AlertState.FIRING
        assert transitions[0].labels.get("instance") == "n1"

    def test_hold_delays_firing(self, db, engine):
        rule = AlertingRule(name="Down", expr="up == 0", hold=120.0)
        feed_up(db, "n1", 0.0, 0.0)
        assert rule.evaluate(engine, now=0.0) == []
        feed_up(db, "n1", 0.0, 60.0)
        assert rule.evaluate(engine, now=60.0) == []  # still pending
        feed_up(db, "n1", 0.0, 120.0)
        transitions = rule.evaluate(engine, now=120.0)
        assert len(transitions) == 1 and transitions[0].state is AlertState.FIRING

    def test_pending_resets_if_condition_clears(self, db, engine):
        rule = AlertingRule(name="Down", expr="up == 0", hold=120.0)
        feed_up(db, "n1", 0.0, 0.0)
        rule.evaluate(engine, now=0.0)
        feed_up(db, "n1", 1.0, 60.0)  # back up
        rule.evaluate(engine, now=60.0)
        feed_up(db, "n1", 0.0, 120.0)  # down again: hold restarts
        assert rule.evaluate(engine, now=120.0) == []
        feed_up(db, "n1", 0.0, 240.0)
        transitions = rule.evaluate(engine, now=240.0)
        assert transitions and transitions[0].state is AlertState.FIRING

    def test_resolve_transition(self, db, engine):
        rule = AlertingRule(name="Down", expr="up == 0")
        feed_up(db, "n1", 0.0, 0.0)
        rule.evaluate(engine, now=0.0)
        feed_up(db, "n1", 1.0, 60.0)
        transitions = rule.evaluate(engine, now=60.0)
        assert len(transitions) == 1
        assert transitions[0].state is AlertState.RESOLVED
        assert rule.firing_count == 0

    def test_one_alert_per_label_set(self, db, engine):
        feed_up(db, "n1", 0.0, 0.0)
        feed_up(db, "n2", 0.0, 0.0)
        rule = AlertingRule(name="Down", expr="up == 0")
        transitions = rule.evaluate(engine, now=0.0)
        assert len(transitions) == 2
        # re-evaluating does not re-fire
        assert rule.evaluate(engine, now=30.0) == []

    def test_static_labels_and_annotations(self, db, engine):
        feed_up(db, "n1", 0.0, 0.0)
        rule = AlertingRule(
            name="Down", expr="up == 0",
            labels={"severity": "critical"},
            annotations={"summary": "node down"},
        )
        alert = rule.evaluate(engine, now=0.0)[0]
        assert alert.labels.get("severity") == "critical"
        assert alert.annotations["summary"] == "node down"

    def test_bad_expression_is_silent(self, db, engine):
        rule = AlertingRule(name="Bad", expr="up ==")
        assert rule.evaluate(engine, now=0.0) == []

    def test_alert_value_captured(self, db, engine):
        db.append(mk("power", instance="n1"), 0.0, 3000.0)
        rule = AlertingRule(name="Hot", expr="power > 2500")
        alert = rule.evaluate(engine, now=0.0)[0]
        assert alert.value == 3000.0


class TestAlertManager:
    def test_duplicate_rule_rejected(self, engine):
        manager = AlertManager(engine)
        manager.add_rule(AlertingRule(name="A", expr="up == 0"))
        with pytest.raises(QueryError):
            manager.add_rule(AlertingRule(name="A", expr="up == 0"))

    def test_receivers_notified(self, db, engine):
        manager = AlertManager(engine)
        manager.add_rule(AlertingRule(name="Down", expr="up == 0"))
        received = []
        manager.add_receiver(received.append)
        feed_up(db, "n1", 0.0, 0.0)
        manager.evaluate(now=0.0)
        assert len(received) == 1
        assert received[0].name == "Down"

    def test_firing_summary(self, db, engine):
        manager = AlertManager(engine)
        manager.add_rule(AlertingRule(name="Down", expr="up == 0"))
        feed_up(db, "n1", 0.0, 0.0)
        feed_up(db, "n2", 0.0, 0.0)
        manager.evaluate(now=0.0)
        assert manager.firing() == {"Down": 2}

    def test_timer_driven(self, db, engine):
        clock = SimClock(start=0.0)
        manager = AlertManager(engine, interval=60.0)
        manager.add_rule(AlertingRule(name="Down", expr="up == 0", hold=120.0))
        manager.register_timer(clock)

        def keep_down(now):
            feed_up(db, "n1", 0.0, now)

        clock.every(15.0, keep_down)
        clock.advance(300.0)
        assert manager.evaluations == 5
        assert manager.firing() == {"Down": 1}
        firing = [n for n in manager.notifications if n.state is AlertState.FIRING]
        assert len(firing) == 1
        assert firing[0].fired_at >= 120.0


class TestCEEMSAlertPack:
    def test_pack_parses(self):
        for rule in ceems_alert_rules():
            rule.ast()

    def test_target_down_fires_in_live_stack(self, small_sim):
        """Against the shared sim: no targets are down, the collector
        success alert is quiet, and injecting a down sample fires."""
        manager = AlertManager(small_sim.engine)
        for rule in ceems_alert_rules():
            manager.add_rule(rule)
        manager.evaluate(now=small_sim.now)
        assert "CEEMSTargetDown" not in manager.firing()
        assert "EmissionFactorStale" not in manager.firing()

    def test_emission_factor_stale_alert(self, db, engine):
        manager = AlertManager(engine)
        rules = {r.name: r for r in ceems_alert_rules()}
        rule = rules["EmissionFactorStale"]
        rule.hold = 0.0
        manager.add_rule(rule)
        transitions = manager.evaluate(now=0.0)  # nothing scraped -> absent fires
        assert any(t.name == "EmissionFactorStale" for t in transitions)
