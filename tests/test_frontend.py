"""Query-frontend tests: differential parity, cache, coalescing,
admission, limits, and the LB forwarding fixes.

The core contract is bit-identity: whatever the frontend does — split
a range at day boundaries, serve part of it from the results cache,
coalesce identical in-flight requests — the response body must be
byte-for-byte what the direct backend path returns for the same
request (the PR-1/PR-5/PR-6 differential methodology applied to the
serving tier).
"""

from __future__ import annotations

import threading
import urllib.parse

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import StackSimulation, small_topology
from repro.cluster.simulation import SimulationConfig
from repro.common.httpx import App, Response
from repro.frontend import (
    AdmissionGate,
    AdmissionRejected,
    QueryFrontend,
    QueryLimits,
    ResultsCache,
    SingleFlight,
    clamp_runs_to_parts,
    grid_parts,
    uncovered_runs,
)
from repro.lb.server import LoadBalancer
from repro.lb.strategies import Backend
from repro.tsdb.http import PromAPI
from repro.tsdb.promql.engine import range_steps

ADMIN = {"x-grafana-user": "admin"}


@pytest.fixture(scope="module")
def fe_sim() -> StackSimulation:
    """A deployment with the frontend enabled, split interval shrunk
    to 15 minutes so a 2 h history exercises many split boundaries."""
    sim = StackSimulation(
        small_topology(cpu_nodes=2, gpu_nodes=1),
        SimulationConfig(
            seed=13, frontend=True, split_interval=900.0, probe_interval=0
        ),
    )
    sim.run(2 * 3600)
    return sim


def _range_url(query: str, start: float, end: float, step: float) -> str:
    return "/api/v1/query_range?" + urllib.parse.urlencode(
        {"query": query, "start": start, "end": end, "step": step}
    )


def _direct(sim: StackSimulation, url: str) -> Response:
    return sim.prom_apis[0].app.get(url, headers=ADMIN)


PARITY_QUERIES = [
    "sum by (hostname) (rate(ceems_cpu_seconds_total[5m]))",
    "ceems:node:power_watts",
    "quantile(0.9, ceems:node:power_watts)",
    "sum(ceems_compute_unit_cpu_user_seconds_total)",
    "42",  # scalar literal
    "0 / 0",  # NaN at every step
]


class TestParity:
    def test_cold_and_warm_across_split_boundaries(self, fe_sim):
        now = fe_sim.clock.now()
        for query in PARITY_QUERIES:
            url = _range_url(query, now - 7000, now - 120, 60)
            direct = _direct(fe_sim, url)
            assert direct.status == 200
            cold = fe_sim.lb.app.get(url, headers=ADMIN)
            warm = fe_sim.lb.app.get(url, headers=ADMIN)
            assert cold.body == direct.body
            assert warm.body == direct.body
        assert fe_sim.frontend.split_requests > 0
        assert fe_sim.frontend.cache.hits > 0

    def test_partial_and_overlapping_extents(self, fe_sim):
        now = fe_sim.clock.now()
        query = "sum by (hostname) (rate(ceems_cpu_seconds_total[5m]))"
        # Seed the middle, then ask for a superset, a subset, and a
        # disjoint range — every answer must match direct evaluation.
        windows = [
            (now - 3600, now - 1800),
            (now - 5400, now - 900),
            (now - 3000, now - 2400),
            (now - 7000, now - 6000),
        ]
        for start, end in windows:
            url = _range_url(query, start, end, 30)
            assert fe_sim.lb.app.get(url, headers=ADMIN).body == _direct(fe_sim, url).body

    def test_post_form_matches_direct_get(self, fe_sim):
        now = fe_sim.clock.now()
        query = "ceems:node:power_watts"
        params = {"query": query, "start": now - 2000, "end": now - 300, "step": 60}
        get_url = _range_url(query, now - 2000, now - 300, 60)
        direct = _direct(fe_sim, get_url)
        posted = fe_sim.lb.app.post(
            "/api/v1/query_range",
            headers={
                **ADMIN,
                "content-type": "application/x-www-form-urlencoded",
            },
            body=urllib.parse.urlencode(params).encode(),
        )
        assert posted.status == 200
        assert posted.body == direct.body

    def test_instant_query_parity(self, fe_sim):
        now = fe_sim.clock.now()
        url = "/api/v1/query?" + urllib.parse.urlencode(
            {"query": "sum(ceems:node:power_watts)", "time": now - 600}
        )
        assert fe_sim.lb.app.get(url, headers=ADMIN).body == _direct(fe_sim, url).body

    def test_stats_all_bypasses_cache(self, fe_sim):
        now = fe_sim.clock.now()
        url = (
            _range_url("ceems:node:power_watts", now - 2000, now - 600, 60)
            + "&stats=all"
        )
        before = fe_sim.frontend.passthrough_requests
        response = fe_sim.lb.app.get(url, headers=ADMIN)
        assert response.status == 200
        assert "stats" in response.decode_json()["data"]
        assert fe_sim.frontend.passthrough_requests == before + 1

    def test_error_responses_forward_verbatim(self, fe_sim):
        # The LB rejects unparseable queries itself, so exercise the
        # frontend → backend hop directly: the backend's 400 body must
        # come back untouched.
        now = fe_sim.clock.now()
        url = _range_url("sum(", now - 2000, now - 600, 60)
        direct = _direct(fe_sim, url)
        via = fe_sim.frontend.app.get(url)
        assert direct.status == 400
        assert via.status == 400
        assert via.body == direct.body

    def test_eviction_between_coverage_and_assembly_keeps_parity(self, fe_sim):
        """Coverage and its backing points are snapshotted atomically.

        Regression: the served set used to be computed up front while
        assembly re-read the cache afterwards, so an eviction in
        between — here the request's own ingest tripping the
        single-oversized-entry rule — silently dropped the served grid
        points from a 200 response, and the truncated body was then
        memoised for every settled repeat.
        """
        backends = [Backend(name=a.app.name, app=a.app) for a in fe_sim.prom_apis]
        fe = QueryFrontend(backends, split_interval=900.0, clock=fe_sim.clock)
        now = fe_sim.clock.now()
        query = "sum by (hostname) (rate(ceems_cpu_seconds_total[5m]))"
        seeded = fe.app.get(_range_url(query, now - 3600, now - 2700, 60))
        assert seeded.status == 200
        assert fe.cache.total_bytes > 0
        # Shrink the budget to exactly what is cached: the superset
        # request below finds the seeded window covered, then its own
        # ingest of the remainder overflows the budget and drops the
        # entry before assembly.
        fe.cache.max_bytes = fe.cache.total_bytes
        # Same grid phase as the seed (offsets are multiples of the
        # step), so the seeded window is found covered.
        url = _range_url(query, now - 7080, now - 900, 60)
        direct = _direct(fe_sim, url)
        got = fe.app.get(url)
        assert fe.cache.evictions > 0
        assert got.status == 200
        assert got.body == direct.body
        # The settled repeat replays from the memo — it must be the
        # complete body too, not a truncated one frozen forever.
        assert fe.app.get(url).body == direct.body

    def test_cache_churn_under_tiny_budget(self, fe_sim):
        """Evictions must never break parity — only speed."""
        backends = [Backend(name=a.app.name, app=a.app) for a in fe_sim.prom_apis]
        tiny = QueryFrontend(
            backends,
            split_interval=900.0,
            cache_max_bytes=2048,
            clock=fe_sim.clock,
        )
        now = fe_sim.clock.now()
        for round_ in range(3):
            for query in PARITY_QUERIES:
                url = _range_url(query, now - 6000, now - 300, 60)
                assert tiny.app.get(url).body == _direct(fe_sim, url).body
        assert tiny.cache.evictions > 0


class TestSplitInvariance:
    @settings(max_examples=12, deadline=None)
    @given(
        interval=st.sampled_from([120.0, 300.0, 450.0, 700.0, 900.0, 3600.0, 86400.0]),
        step=st.sampled_from([30.0, 60.0, 75.0, 120.0]),
        span=st.floats(min_value=600.0, max_value=7000.0),
    )
    def test_split_merge_invariant_to_interval(self, fe_sim, interval, step, span):
        """The hypothesis property: whatever the split interval, the
        merged response equals the unsplit direct evaluation."""
        backends = [Backend(name=a.app.name, app=a.app) for a in fe_sim.prom_apis]
        frontend = QueryFrontend(backends, split_interval=interval, clock=fe_sim.clock)
        now = fe_sim.clock.now()
        url = _range_url(
            "sum by (hostname) (rate(ceems_cpu_seconds_total[5m]))",
            now - span,
            now - 120,
            step,
        )
        direct = _direct(fe_sim, url)
        assert frontend.app.get(url).body == direct.body
        # And again with the cache warm.
        assert frontend.app.get(url).body == direct.body


class TestFreshness:
    def test_live_tail_never_cached(self, fe_sim):
        fe = fe_sim.frontend
        fe.cache.clear()
        now = fe_sim.clock.now()
        url = _range_url("ceems:node:power_watts", now - 3000, now, 60)
        direct = _direct(fe_sim, url)
        assert fe_sim.lb.app.get(url, headers=ADMIN).body == direct.body
        assert fe_sim.lb.app.get(url, headers=ADMIN).body == direct.body
        cutoff = now - fe.freshness_seconds
        for entry in fe.cache._entries.values():
            assert all(t <= cutoff for t in entry.covered)


class TestCoalescing:
    def _fake_backend(self, hold: threading.Event, entered: threading.Event):
        calls = []

        def handler(request):
            calls.append(request.param("query"))
            entered.set()
            hold.wait(timeout=5)
            return Response.json(
                {"status": "success", "data": {"resultType": "matrix", "result": []}}
            )

        app = App(name="fake-prom")
        app.router.get("/api/v1/query_range", handler)
        app.router.get("/api/v1/query", handler)
        return app, calls

    def test_identical_inflight_requests_share_one_evaluation(self):
        hold, entered = threading.Event(), threading.Event()
        backend_app, calls = self._fake_backend(hold, entered)
        frontend = QueryFrontend([Backend(name="b", app=backend_app)])
        url = _range_url("up", 0, 600, 60)
        results: list[Response] = []

        def issue():
            results.append(frontend.app.get(url))

        leader = threading.Thread(target=issue)
        leader.start()
        assert entered.wait(timeout=5)
        followers = [threading.Thread(target=issue) for _ in range(4)]
        for t in followers:
            t.start()
        # Followers must be parked on the flight, not the backend.
        deadline = [t for t in followers if not _joinable(t, 0.2)]
        assert deadline  # still waiting while the leader holds
        hold.set()
        leader.join(timeout=5)
        for t in followers:
            t.join(timeout=5)
        assert len(calls) == 1
        assert frontend.single_flight.coalesced == 4
        bodies = {r.body for r in results}
        assert len(bodies) == 1
        assert all(r.status == 200 for r in results)


def _joinable(thread: threading.Thread, timeout: float) -> bool:
    thread.join(timeout=timeout)
    return not thread.is_alive()


class TestAdmission:
    def test_gate_rejects_on_overflow(self):
        gate = AdmissionGate(1, queue_timeout=0.05)
        with gate.admit("alice"):
            with pytest.raises(AdmissionRejected):
                with gate.admit("bob"):
                    pass
        # Slot freed: admits again.
        with gate.admit("carol"):
            pass

    def test_per_tenant_cap(self):
        gate = AdmissionGate(8, max_per_tenant=1, queue_timeout=0.05)
        with gate.admit("alice"):
            with pytest.raises(AdmissionRejected):
                with gate.admit("alice"):
                    pass
            with gate.admit("bob"):
                pass

    def test_frontend_answers_503_with_retry_after(self):
        hold, entered = threading.Event(), threading.Event()

        def handler(request):
            entered.set()
            hold.wait(timeout=5)
            return Response.json(
                {"status": "success", "data": {"resultType": "matrix", "result": []}}
            )

        backend_app = App(name="slow-prom")
        backend_app.router.get("/api/v1/query_range", handler)
        frontend = QueryFrontend(
            [Backend(name="b", app=backend_app)],
            max_inflight=1,
            queue_timeout=0.05,
        )
        holder = threading.Thread(
            target=lambda: frontend.app.get(_range_url("up", 0, 600, 60))
        )
        holder.start()
        assert entered.wait(timeout=5)
        # A *different* query cannot coalesce; it must queue and bounce.
        rejected = frontend.app.get(_range_url("down", 0, 600, 60))
        hold.set()
        holder.join(timeout=5)
        assert rejected.status == 503
        assert rejected.headers.get("retry-after")
        assert rejected.decode_json()["errorType"] == "unavailable"
        assert frontend.admission.rejected == 1


class _AllowAll:
    def allowed(self, user, uuids, unbounded=False):
        return True


class TestLBForwarding:
    def test_backend_503_and_retry_after_forward_verbatim(self):
        canned = Response.json(
            {"status": "error", "error": "queue full"}, status=503, retry_after="7"
        )
        app = App(name="busy")
        app.router.get("/api/v1/query", lambda _r: canned)
        lb = LoadBalancer([Backend(name="busy", app=app)], _AllowAll())
        response = lb.app.get("/api/v1/query?query=up", headers=ADMIN)
        assert response.status == 503
        assert response.headers["retry-after"] == "7"
        assert response.body == canned.body

    def test_no_healthy_backend_is_retryable_503(self):
        app = App(name="down")
        lb = LoadBalancer([Backend(name="down", app=app, healthy=False)], _AllowAll())
        response = lb.app.get("/api/v1/query?query=up", headers=ADMIN)
        assert response.status == 503
        assert response.headers.get("retry-after") == "1"
        assert response.decode_json()["errorType"] == "unavailable"
        assert lb.upstream_errors == 1

    def test_frontend_no_healthy_backend_is_retryable_503(self):
        """The frontend path maps a no-healthy-backend outage to the
        same retryable 503 + Retry-After as the plain proxy path, not
        a generic 502."""
        down = [Backend(name="down", app=App(name="down"), healthy=False)]
        lb = LoadBalancer(down, _AllowAll(), frontend=QueryFrontend(down))
        for url in (
            "/api/v1/query?query=up",
            _range_url("up", 0, 600, 60),
        ):
            response = lb.app.get(url, headers=ADMIN)
            assert response.status == 503
            assert response.headers.get("retry-after") == "1"
            assert response.decode_json()["errorType"] == "unavailable"
        assert lb.upstream_errors == 2

    def test_crashing_backend_is_502(self):
        app = App(name="crashy")

        def boom(_request):
            raise RuntimeError("kaput")

        app.router.get("/api/v1/query", boom)
        lb = LoadBalancer([Backend(name="crashy", app=app)], _AllowAll())
        response = lb.app.get("/api/v1/query?query=up", headers=ADMIN)
        assert response.status == 502
        assert "kaput" in response.decode_json()["error"]
        assert lb.upstream_errors == 1

    def test_lb_dispatches_query_paths_into_frontend(self, fe_sim):
        before = fe_sim.frontend.cache.hits + fe_sim.frontend.cache.misses
        now = fe_sim.clock.now()
        response = fe_sim.lb.app.get(
            _range_url("ceems_cpu_count", now - 1200, now - 700, 60), headers=ADMIN
        )
        assert response.status == 200
        assert response.headers["x-ceems-backend"] == fe_sim.frontend.app.name
        assert fe_sim.frontend.cache.hits + fe_sim.frontend.cache.misses > before

    def test_longterm_routing_wins_over_frontend(self):
        from repro.common.clock import SimClock

        day = 86400.0
        clock = SimClock(start=100 * day)

        def echo(name):
            app = App(name=name)
            for path in ("/api/v1/query", "/api/v1/query_range"):
                app.router.get(path, lambda _r, n=name: Response.json({"from": n}))
            return app

        hot = [Backend(name="hot-0", app=echo("hot-0"))]
        frontend = QueryFrontend(hot, clock=clock)
        lb = LoadBalancer(
            hot,
            _AllowAll(),
            longterm_backends=[Backend(name="thanos-0", app=echo("thanos-0"))],
            hot_retention=30 * day,
            clock=clock,
            frontend=frontend,
        )
        # Recent range: frontend path (hot pool behind it).
        recent = lb.app.get(
            _range_url("up", clock.now() - 2 * day, clock.now() - day, 60),
            headers=ADMIN,
        )
        assert recent.headers["x-ceems-backend"] == frontend.app.name
        assert lb.longterm_routed == 0
        # Ancient range: age-based routing bypasses the frontend.
        old = lb.app.get(
            _range_url("up", clock.now() - 90 * day, clock.now() - 89 * day, 60),
            headers=ADMIN,
        )
        assert old.headers["x-ceems-backend"] == "thanos-0"
        assert lb.longterm_routed == 1

    def test_promapi_queue_full_503_carries_retry_after(self, fe_sim):
        api = PromAPI(
            fe_sim.fanout, name="tiny", max_concurrent_queries=1, queue_timeout=0.05
        )
        hold, entered = threading.Event(), threading.Event()
        original = api.engine.query_range

        def slow(ast, start, end, step, strategy="columnar"):
            entered.set()
            hold.wait(timeout=5)
            return original(ast, start, end, step, strategy=strategy)

        api.engine.query_range = slow
        now = fe_sim.clock.now()
        url = _range_url("ceems:node:power_watts", now - 600, now - 60, 60)
        holder = threading.Thread(target=lambda: api.app.get(url))
        holder.start()
        assert entered.wait(timeout=5)
        rejected = api.app.get(
            _range_url("ceems_cpu_count", now - 600, now - 60, 60)
        )
        hold.set()
        holder.join(timeout=5)
        assert rejected.status == 503
        assert rejected.headers.get("retry-after")


class TestLimits:
    def test_structured_422_at_promapi(self, fe_sim):
        api = PromAPI(
            fe_sim.fanout,
            name="limited",
            limits=QueryLimits(
                max_query_length=50, max_range_seconds=3600, max_resolved_steps=100
            ),
        )
        now = fe_sim.clock.now()
        # Query too long.
        long_query = "sum(" + "ceems_cpu_count + " * 10 + "ceems_cpu_count)"
        response = api.app.get(_range_url(long_query, now - 600, now - 60, 60))
        assert response.status == 422
        payload = response.decode_json()
        assert payload["limit"] == "max_query_length"
        assert payload["errorType"] == "bad_data"
        assert payload["actual"] == len(long_query)
        # Range too wide.
        response = api.app.get(_range_url("up", now - 7200, now, 60))
        assert response.status == 422
        assert response.decode_json()["limit"] == "max_range_seconds"
        # Too many steps.
        response = api.app.get(_range_url("up", now - 3000, now, 1))
        assert response.status == 422
        assert response.decode_json()["limit"] == "max_resolved_steps"
        # Instant query honours the length limit too.
        response = api.app.get(
            "/api/v1/query?" + urllib.parse.urlencode({"query": long_query, "time": now})
        )
        assert response.status == 422

    def test_malformed_numbers_beat_limit_checks_on_both_paths(self, fe_sim):
        """Check ordering parity: a request with an over-long query AND
        malformed start/end/step gets the backend's 400 (numbers are
        parsed before limits there), not a frontend-only 422."""
        limits = QueryLimits(max_query_length=50)
        api = PromAPI(fe_sim.fanout, name="limited-ordering", limits=limits)
        backends = [Backend(name=api.app.name, app=api.app)]
        frontend = QueryFrontend(backends, limits=limits, clock=fe_sim.clock)
        long_query = "sum(" + "ceems_cpu_count + " * 10 + "ceems_cpu_count)"
        url = "/api/v1/query_range?" + urllib.parse.urlencode(
            {"query": long_query, "start": "oops", "end": 600, "step": 60}
        )
        direct = api.app.get(url)
        via = frontend.app.get(url)
        assert direct.status == 400
        assert via.status == 400
        assert via.body == direct.body
        # With well-formed numbers the same query is a 422 on both.
        now = fe_sim.clock.now()
        ok_url = _range_url(long_query, now - 600, now - 60, 60)
        direct = api.app.get(ok_url)
        via = frontend.app.get(ok_url)
        assert direct.status == via.status == 422
        assert via.body == direct.body

    def test_frontend_enforces_same_limits_through_lb(self, fe_sim):
        limits = QueryLimits(max_range_seconds=1800)
        backends = [Backend(name=a.app.name, app=a.app) for a in fe_sim.prom_apis]
        frontend = QueryFrontend(backends, limits=limits, clock=fe_sim.clock)
        lb = LoadBalancer([Backend(name="fe", app=frontend.app)], _AllowAll())
        now = fe_sim.clock.now()
        response = lb.app.get(
            _range_url("ceems_cpu_count", now - 7200, now, 60), headers=ADMIN
        )
        assert response.status == 422
        payload = response.decode_json()
        assert payload["limit"] == "max_range_seconds"
        assert payload["max"] == 1800
        # Within the limit: normal success.
        ok = lb.app.get(
            _range_url("ceems_cpu_count", now - 1200, now - 60, 60), headers=ADMIN
        )
        assert ok.status == 200


class TestSplitPrimitives:
    def test_grid_parts_partition_and_bit_identity(self):
        grid = range_steps(0.0, 7200.0, 60.0)
        parts = grid_parts(grid, 60.0, 3600.0)
        assert parts is not None
        # A partition: contiguous, covering, non-overlapping.
        assert parts[0][0] == 0 and parts[-1][1] == len(grid) - 1
        for (a0, a1), (b0, b1) in zip(parts, parts[1:]):
            assert b0 == a1 + 1
        # No timestamp crosses an interval boundary inside one part.
        for i0, i1 in parts:
            assert len({int(t // 3600.0) for t in grid[i0 : i1 + 1].tolist()}) == 1

    def test_grid_parts_rejects_drifting_grids(self):
        # An irrational-ish step whose sub-grids drift bitwise.
        step = 0.1
        grid = range_steps(0.05, 40.0, step)
        parts = grid_parts(grid, step, 10.0)
        if parts is not None:
            # If it did split, each part must be bit-identical.
            for i0, i1 in parts:
                sub = range_steps(float(grid[i0]), float(grid[i1]), step)
                assert np.array_equal(sub, grid[i0 : i1 + 1])

    def test_uncovered_runs_and_clamp(self):
        grid = range_steps(0.0, 600.0, 60.0)
        covered = {120.0, 180.0, 480.0}
        runs = uncovered_runs(grid, covered)
        assert runs == [(0, 1), (4, 7), (9, 10)]
        parts = [(0, 5), (6, 10)]
        assert clamp_runs_to_parts(runs, parts) == [
            (0, 1),
            (4, 5),
            (6, 7),
            (9, 10),
        ]

    def test_results_cache_exact_membership(self):
        cache = ResultsCache(max_bytes=10_000)
        key = ("t", "q", "", "60.0", "0.0")
        steps = [0.0, 60.0, 120.0]
        result = [{"metric": {"a": "1"}, "values": [[0.0, "1"], [120.0, "3"]]}]
        cache.ingest(key, steps, result, cutoff=float("inf"))
        assert cache.covered_of(key, steps) == set(steps)
        # A drifted grid point is simply not covered.
        assert cache.covered_of(key, [60.000000001]) == set()
        sliced = list(cache.slice(key, {0.0, 120.0}, 0.0, 120.0))
        assert sliced[0][2] == [0.0, 120.0]
        assert sliced[0][3] == ["1", "3"]

    def test_snapshot_is_atomic_copy(self):
        cache = ResultsCache(max_bytes=10_000)
        key = ("t", "q", "", "60.0", "0.0")
        steps = [0.0, 60.0, 120.0]
        result = [{"metric": {"a": "1"}, "values": [[0.0, "1"], [120.0, "3"]]}]
        cache.ingest(key, steps, result, cutoff=float("inf"))
        served, columns = cache.snapshot(key, steps)
        assert served == set(steps)
        # Evicting the entry after the snapshot cannot take the data
        # with it: assembly works from the copied columns.
        cache.clear()
        assert cache.covered_of(key, steps) == set()
        assert columns[0][2] == [0.0, 120.0]
        assert columns[0][3] == ["1", "3"]

    def test_results_cache_respects_cutoff(self):
        cache = ResultsCache()
        key = ("t", "q", "", "60.0", "0.0")
        steps = [0.0, 60.0, 120.0]
        result = [{"metric": {}, "values": [[0.0, "1"], [60.0, "2"], [120.0, "3"]]}]
        cache.ingest(key, steps, result, cutoff=60.0)
        assert cache.covered_of(key, steps) == {0.0, 60.0}


class TestSingleFlightUnit:
    def test_sequential_calls_do_not_coalesce(self):
        sf = SingleFlight()
        out1 = sf.do(("k",), lambda: Response.text("a"))
        out2 = sf.do(("k",), lambda: Response.text("b"))
        assert out1.body == b"a" and out2.body == b"b"
        assert sf.coalesced == 0

    def test_leader_exception_propagates_to_followers(self):
        sf = SingleFlight()
        entered, hold = threading.Event(), threading.Event()
        errors: list[BaseException] = []

        def failing():
            entered.set()
            hold.wait(timeout=5)
            raise RuntimeError("boom")

        def leader():
            try:
                sf.do(("k",), failing)
            except RuntimeError as exc:
                errors.append(exc)

        def follower():
            try:
                sf.do(("k",), lambda: Response.text("never"))
            except RuntimeError as exc:
                errors.append(exc)

        t1 = threading.Thread(target=leader)
        t1.start()
        assert entered.wait(timeout=5)
        t2 = threading.Thread(target=follower)
        t2.start()
        hold.set()
        t1.join(timeout=5)
        t2.join(timeout=5)
        assert len(errors) == 2


class TestTelemetry:
    def test_frontend_metrics_exposed(self, fe_sim):
        now = fe_sim.clock.now()
        fe_sim.lb.app.get(
            _range_url("ceems_cpu_count", now - 3000, now - 120, 60), headers=ADMIN
        )
        text = fe_sim.frontend.app.get("/metrics").body.decode()
        for name in (
            "ceems_frontend_cache_hits_total",
            "ceems_frontend_cache_misses_total",
            "ceems_frontend_split_queries_total",
            "ceems_frontend_coalesced_total",
            "ceems_frontend_queue_depth",
            "ceems_frontend_rejected_total",
        ):
            assert name in text

    def test_meta_monitoring_scrapes_frontend(self, fe_sim):
        url = "/api/v1/query?" + urllib.parse.urlencode(
            {
                "query": 'up{job="ceems-frontend"}',
                "time": fe_sim.clock.now(),
            }
        )
        payload = _direct(fe_sim, url).decode_json()
        assert payload["data"]["result"], "frontend must be a meta-monitoring target"

    def test_non_query_paths_proxy_through_frontend(self, fe_sim):
        response = fe_sim.lb.app.get("/api/v1/status/buildinfo", headers=ADMIN)
        assert response.status == 200
        assert response.decode_json()["data"]["version"]
        values = fe_sim.lb.app.get("/api/v1/label/hostname/values", headers=ADMIN)
        assert values.status == 200
        assert values.decode_json()["data"]
