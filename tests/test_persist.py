"""Durable storage engine: codec, WAL, blocks, crash recovery.

Covers the four layers of :mod:`repro.tsdb.persist` plus the wiring
through the Thanos sidecar/store/compactor and the full simulation:

* Gorilla chunk codec — bit-identical roundtrips for adversarial
  inputs (NaN payloads, ±inf, signed zeros, counter wraps, irregular
  and non-monotone timestamps);
* segmented WAL — CRC framing, segment cuts, and a property-style
  torn-frame test that truncates the log at seeded random byte
  offsets and asserts recovery is exactly the fully-framed prefix;
* on-disk blocks — write/read roundtrip, CRC detection, atomic
  staging;
* :class:`PersistentTSDB` — replay on open, checkpoint truncation,
  tombstones, and the kill-and-reopen simulation with WAL replay
  surfaced in ``/metrics``.
"""

from __future__ import annotations

import os
import random
import struct

import numpy as np
import pytest

from repro.common.errors import StorageError
from repro.common.httpx import Request
from repro.tsdb.model import Labels, MatchOp, Matcher
from repro.tsdb.persist import (
    WAL,
    BlockReader,
    PersistentTSDB,
    decode_chunk,
    encode_chunk,
    list_block_ulids,
    write_block,
)
from repro.tsdb.persist.bits import BitReader, BitWriter
from repro.tsdb.storage import TSDB
from repro.thanos.compact import Compactor
from repro.thanos.query import FanoutStorage
from repro.thanos.sidecar import Sidecar
from repro.thanos.store import ObjectStore


def bits_of(values) -> list[int]:
    return np.asarray(values, dtype=np.float64).view(np.uint64).tolist()


def assert_bit_identical(expected_ts, expected_vs, got_ts, got_vs):
    assert bits_of(expected_ts) == bits_of(got_ts)
    assert bits_of(expected_vs) == bits_of(got_vs)


class TestBitIO:
    def test_roundtrip_mixed_widths(self):
        writer = BitWriter()
        fields = [(1, 1), (0b101, 3), (0xDEADBEEF, 32), (0, 7), ((1 << 66) - 3, 66)]
        for value, width in fields:
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue())
        for value, width in fields:
            assert reader.read_bits(width) == value

    def test_exhausted_stream_raises(self):
        reader = BitReader(b"\xff")
        reader.read_bits(8)
        with pytest.raises(StorageError):
            reader.read_bit()


class TestChunkCodec:
    def test_regular_cadence_roundtrip_and_compression(self):
        ts = [1.7e9 + 15.0 * i for i in range(120)]
        vs = [42.0] * 120
        encoded = encode_chunk(ts, vs)
        assert_bit_identical(ts, vs, *decode_chunk(encoded))
        # constant value + steady cadence ≈ 1 bit/sample each way
        assert len(encoded) < 16 * 120 / 10

    def test_counter_wrap(self):
        ts = [1.7e9 + 15.0 * i for i in range(200)]
        vs = [float((1 << 32) - 100 + i * 7) % float(1 << 32) for i in range(200)]
        assert_bit_identical(ts, vs, *decode_chunk(encode_chunk(ts, vs)))

    def test_adversarial_values(self):
        quiet_nan = struct.unpack(">d", struct.pack(">Q", 0x7FF8000000000123))[0]
        ts = [0.0, 1e-300, 1.0, 1e300, 1.7e9]
        vs = [float("nan"), float("inf"), float("-inf"), -0.0, quiet_nan]
        got_ts, got_vs = decode_chunk(encode_chunk(ts, vs))
        assert_bit_identical(ts, vs, got_ts, got_vs)
        # the NaN payload survived, not just "some NaN"
        assert bits_of(got_vs)[4] == 0x7FF8000000000123

    def test_irregular_and_negative_timestamps(self):
        rng = random.Random(11)
        ts = [rng.uniform(-1e9, 1e9) for _ in range(300)]
        vs = [rng.uniform(-1e12, 1e12) for _ in range(300)]
        assert_bit_identical(ts, vs, *decode_chunk(encode_chunk(ts, vs)))

    def test_empty_and_single(self):
        assert decode_chunk(encode_chunk([], []))[0].size == 0
        assert_bit_identical([5.5], [float("nan")], *decode_chunk(encode_chunk([5.5], [float("nan")])))

    def test_length_mismatch_and_overflow(self):
        with pytest.raises(StorageError):
            encode_chunk([1.0], [])
        with pytest.raises(StorageError):
            encode_chunk(list(range(70000)), list(range(70000)))


class TestWAL:
    def test_replay_roundtrip_across_segments(self, tmp_path):
        wal = WAL(str(tmp_path / "wal"), segment_bytes=64)
        payloads = [f"record-{i}".encode() for i in range(20)]
        for p in payloads:
            wal.append(p)
        wal.close()
        assert len(wal.segment_indices()) > 1
        replayed = [p for _seg, p in WAL(str(tmp_path / "wal")).replay()]
        assert replayed == payloads

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            WAL(str(tmp_path / "wal"), fsync="sometimes")

    def test_fresh_segment_after_reopen(self, tmp_path):
        wal = WAL(str(tmp_path / "wal"))
        wal.append(b"one")
        wal.close()
        wal2 = WAL(str(tmp_path / "wal"))
        wal2.append(b"two")
        wal2.close()
        assert len(wal2.segment_indices()) == 2

    def test_truncate_before_keeps_open_segment(self, tmp_path):
        wal = WAL(str(tmp_path / "wal"), segment_bytes=16)
        for i in range(8):
            wal.append(b"x" * 10)
        wal.close()
        indices = wal.segment_indices()
        removed = wal.truncate_before(indices[-1])
        assert removed == len(indices) - 1
        assert wal.segment_indices() == [indices[-1]]

    def test_torn_frame_property(self, tmp_path):
        """Truncate at random byte offsets: recovery is exactly the
        fully-framed prefix, never garbage, never an exception."""
        rng = random.Random(1234)
        payloads = [bytes([i]) * rng.randint(1, 40) for i in range(30)]
        frame_ends = []
        offset = 0
        for p in payloads:
            offset += 8 + len(p)
            frame_ends.append(offset)
        for _trial in range(12):
            path = tmp_path / f"wal-{_trial}"
            wal = WAL(str(path), segment_bytes=1 << 20, fsync="never")
            for p in payloads:
                wal.append(p)
            wal.close()
            segment = os.path.join(str(path), "00000001.wal")
            cut = rng.randint(1, os.path.getsize(segment) - 1)
            with open(segment, "r+b") as fh:
                fh.truncate(cut)
            reader = WAL(str(path))
            survivors = [p for _seg, p in reader.replay()]
            expected = sum(1 for end in frame_ends if end <= cut)
            assert survivors == payloads[:expected]
            assert reader.last_replay.torn == (cut not in frame_ends)

    def test_append_reports_segment_holding_frame(self, tmp_path):
        wal = WAL(str(tmp_path / "wal"), segment_bytes=16)
        # The frame overflows the segment, so append cuts eagerly —
        # but the record lives in segment 1, not the fresh segment.
        assert wal.append(b"x" * 32) == 1
        assert wal.current_segment == 2
        wal.close()

    def test_crc_corruption_stops_replay(self, tmp_path):
        wal = WAL(str(tmp_path / "wal"))
        for i in range(5):
            wal.append(f"rec{i}".encode())
        wal.close()
        segment = os.path.join(str(tmp_path / "wal"), "00000001.wal")
        with open(segment, "r+b") as fh:
            fh.seek(8 + 4 + 8 + 2)  # inside the second record's payload
            fh.write(b"\xff")
        reader = WAL(str(tmp_path / "wal"))
        assert [p for _seg, p in reader.replay()] == [b"rec0"]
        assert reader.last_replay.torn


def series_labels(i: int) -> Labels:
    return Labels({"__name__": "metric", "idx": str(i)})


class TestBlock:
    def _series(self):
        ts = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        vs = np.array([1.0, float("nan"), float("inf"), -0.0, 99.0])
        return [(series_labels(0), ts, vs), (series_labels(1), ts + 10.0, vs * 2)]

    def test_write_read_roundtrip_multichunk(self, tmp_path):
        meta = write_block(
            str(tmp_path), "B1", self._series(), min_time=0.0, max_time=20.0, chunk_samples=2
        )
        assert meta["stats"]["numSeries"] == 2
        assert meta["stats"]["numChunks"] == 6  # ceil(5/2) per series
        reader = BlockReader(str(tmp_path), "B1")
        got = list(reader.series())
        for (labels, ts, vs), (glabels, gts, gvs) in zip(self._series(), got):
            assert labels == glabels
            assert_bit_identical(ts, vs, gts, gvs)

    def test_chunk_corruption_detected(self, tmp_path):
        write_block(str(tmp_path), "B2", self._series(), min_time=0.0, max_time=20.0)
        chunk_file = tmp_path / "B2" / "chunks" / "000001"
        data = bytearray(chunk_file.read_bytes())
        data[12] ^= 0xFF
        chunk_file.write_bytes(bytes(data))
        with pytest.raises(StorageError, match="CRC"):
            list(BlockReader(str(tmp_path), "B2").series())

    def test_staged_write_is_atomic(self, tmp_path):
        write_block(str(tmp_path), "B3", self._series(), min_time=0.0, max_time=20.0)
        assert list_block_ulids(str(tmp_path)) == ["B3"]
        os.makedirs(tmp_path / "B9.tmp")  # a crashed half-write
        assert list_block_ulids(str(tmp_path)) == ["B3"]

    def test_duplicate_ulid_rejected(self, tmp_path):
        write_block(str(tmp_path), "B4", self._series(), min_time=0.0, max_time=20.0)
        with pytest.raises(StorageError, match="already exists"):
            write_block(str(tmp_path), "B4", self._series(), min_time=0.0, max_time=20.0)


class TestPersistentTSDB:
    def test_reopen_recovers_everything(self, tmp_path):
        head = PersistentTSDB(str(tmp_path / "hot"), name="hot")
        for i in range(3):
            for t in range(50):
                head.append(series_labels(i), 100.0 + t, float(i * 1000 + t))
        head.append(series_labels(0), 200.0, float("nan"))  # stale marker survives
        head.close()

        reopened = PersistentTSDB(str(tmp_path / "hot"), name="hot")
        assert reopened.num_series == 3
        assert reopened.num_samples == head.num_samples
        for orig, got in zip(head.all_series(), reopened.all_series()):
            assert orig.labels == got.labels
            assert_bit_identical(orig.timestamps, orig.values, got.timestamps, got.values)
        assert reopened.replay_result.records > 0
        assert not reopened.replay_result.torn

    def test_append_array_journaled(self, tmp_path):
        head = PersistentTSDB(str(tmp_path / "hot"))
        ts = np.arange(10, dtype=np.float64)
        vs = np.linspace(0.0, 1.0, 10)
        assert head.append_array(series_labels(0), ts, vs) == 10
        head.close()
        reopened = PersistentTSDB(str(tmp_path / "hot"))
        got = reopened.all_series()[0]
        assert_bit_identical(ts, vs, got.timestamps, got.values)

    def test_tombstone_survives_reopen(self, tmp_path):
        head = PersistentTSDB(str(tmp_path / "hot"))
        head.append(series_labels(0), 1.0, 1.0)
        head.append(series_labels(1), 1.0, 2.0)
        assert head.delete_series([Matcher.eq("idx", "0")]) == 1
        head.close()
        reopened = PersistentTSDB(str(tmp_path / "hot"))
        assert reopened.num_series == 1
        assert reopened.all_series()[0].labels.get("idx") == "1"

    def test_torn_wal_loses_only_unflushed_tail(self, tmp_path):
        """Property-style crash test: truncate the WAL at a seeded
        random byte offset mid-write, reopen, and assert the recovered
        samples are exactly a prefix of what was appended."""
        rng = random.Random(4242)
        appended = []
        head = PersistentTSDB(str(tmp_path / "hot"), fsync="never")
        for t in range(400):
            value = rng.choice([rng.uniform(-1e6, 1e6), float("nan"), float("inf")])
            head.append(series_labels(t % 4), float(t), value)
            appended.append((t % 4, float(t), value))
        head.close()
        wal_dir = str(tmp_path / "hot" / "wal")
        segment = os.path.join(wal_dir, sorted(os.listdir(wal_dir))[-1])
        size = os.path.getsize(segment)
        with open(segment, "r+b") as fh:
            fh.truncate(rng.randint(size // 2, size - 1))

        reopened = PersistentTSDB(str(tmp_path / "hot"))
        assert reopened.replay_result.torn
        recovered = []
        for series in reopened.all_series():
            idx = int(series.labels.get("idx"))
            for t, v in zip(series.timestamps, series.values):
                recovered.append((idx, t, v))
        recovered.sort(key=lambda r: r[1])
        prefix = appended[: len(recovered)]
        assert len(recovered) < len(appended)
        assert bits_of([r[2] for r in recovered]) == bits_of([p[2] for p in prefix])
        assert [(r[0], r[1]) for r in recovered] == [(p[0], p[1]) for p in prefix]

    def test_checkpoint_truncates_wal(self, tmp_path):
        head = PersistentTSDB(str(tmp_path / "hot"), segment_bytes=256)
        for t in range(200):
            head.append(series_labels(0), float(t), float(t))
        before = len(head.wal.segment_indices())
        removed = head.checkpoint(150.0)
        assert removed > 0
        assert len(head.wal.segment_indices()) < before
        head.append(series_labels(0), 500.0, 1.0)
        head.close()
        # Only the tail beyond the checkpoint horizon (plus the
        # boundary segment) replays; the series itself survives via
        # the checkpoint record even though its early segments are gone.
        reopened = PersistentTSDB(str(tmp_path / "hot"))
        assert reopened.num_series == 1
        assert reopened.all_series()[0].max_time == 500.0
        assert min(reopened.all_series()[0].timestamps) >= 150.0 - 256 / 29  # boundary slack

    def test_checkpoint_preserves_unblocked_tail(self, tmp_path):
        """Samples newer than the horizon survive reopen even though
        their SERIES record was truncated with the early segments: the
        restating CHECKPOINT record replays *after* the kept tail, so
        replay buffers the tail samples until their ref is defined."""
        head = PersistentTSDB(str(tmp_path / "hot"), segment_bytes=256)
        for t in range(100):
            head.append(series_labels(0), float(t), float(t))
        assert head.checkpoint(90.0) > 0
        head.close()
        reopened = PersistentTSDB(str(tmp_path / "hot"))
        assert reopened.num_series == 1
        assert reopened.replay_dropped == 0
        got = reopened.all_series()[0].timestamps
        assert [t for t in got if t >= 90.0] == [float(t) for t in range(90, 100)]

    def test_segment_time_attributed_to_holding_segment(self, tmp_path):
        head = PersistentTSDB(str(tmp_path / "hot"), segment_bytes=64)
        head.append(series_labels(0), 1000.0, 1.0)
        # SERIES + SAMPLES frames overflow the tiny segment, so the
        # WAL cut eagerly after the write; the sample must still be
        # tracked under the segment holding its record, or a later
        # checkpoint could truncate un-blocked data.
        [(segment, max_time)] = head._segment_max_time.items()
        assert max_time == 1000.0
        assert segment < head.wal.current_segment
        head.close()

    def test_append_array_out_of_order_is_all_or_nothing(self, tmp_path):
        head = PersistentTSDB(str(tmp_path / "hot"))
        head.append(series_labels(0), 10.0, 1.0)
        with pytest.raises(StorageError, match="out-of-order"):
            head.append_array(series_labels(0), [11.0, 12.0, 5.0], [1.0, 2.0, 3.0])
        # Nothing from the rejected batch was applied in memory...
        assert head.all_series()[0].timestamps == [10.0]
        head.close()
        # ...so memory and WAL agree after a restart.
        reopened = PersistentTSDB(str(tmp_path / "hot"))
        assert reopened.num_samples == 1
        assert reopened.all_series()[0].timestamps == [10.0]

    def test_fsync_always_counts(self, tmp_path):
        head = PersistentTSDB(str(tmp_path / "hot"), fsync="always")
        head.append(series_labels(0), 1.0, 1.0)
        head.append(series_labels(0), 2.0, 2.0)
        assert head.wal.fsyncs >= 3  # series record + two sample records
        head.close()


class TestStorePersistence:
    def _fill(self, store: ObjectStore, hot: TSDB, hours: float = 4.5):
        for i in range(3):
            for t in range(int(hours * 4)):
                hot.append(series_labels(i), t * 900.0, float(i + t))

    def test_sidecar_writes_real_blocks(self, tmp_path):
        hot = TSDB(name="hot")
        store = ObjectStore(persist_dir=str(tmp_path / "store"))
        self._fill(store, hot)
        sidecar = Sidecar(hot, store)
        uploaded = sidecar.upload(now=4.5 * 3600.0)
        assert uploaded == 2
        ulids = list_block_ulids(str(tmp_path / "store"))
        assert len(ulids) == 2
        meta = BlockReader(str(tmp_path / "store"), ulids[0]).meta
        assert meta["resolution"] == "raw"
        assert meta["stats"]["numSeries"] == 3
        assert store.persisted_blocks == 2
        assert store.compression_ratio() > 1.0

    def test_half_open_window_boundaries(self, tmp_path):
        hot = TSDB(name="hot")
        # one sample exactly on each boundary of the first 2 h window
        hot.append(series_labels(0), 0.0, 1.0)
        hot.append(series_labels(0), 7200.0, 2.0)
        hot.append(series_labels(0), 7205.0, 3.0)
        store = ObjectStore()
        Sidecar(hot, store).upload(now=2 * 3600.0)
        raw = store.tsdb("raw")
        series = raw.all_series()[0]
        # t=0 included (closed left), t=7200 excluded (open right)
        assert series.timestamps == [0.0]

    def test_store_reload_roundtrip(self, tmp_path):
        hot = TSDB(name="hot")
        store = ObjectStore(persist_dir=str(tmp_path / "store"))
        self._fill(store, hot)
        Sidecar(hot, store).upload(now=4.5 * 3600.0)

        reloaded = ObjectStore(persist_dir=str(tmp_path / "store"))
        assert reloaded.loaded_blocks == 2
        assert len(reloaded.blocks_at("raw")) == 2
        orig = store.tsdb("raw").all_series()
        got = reloaded.tsdb("raw").all_series()
        assert len(orig) == len(got)
        for a, b in zip(orig, got):
            assert a.labels == b.labels
            assert_bit_identical(a.timestamps, a.values, b.timestamps, b.values)
        # ULID sequence resumes past the loaded blocks
        assert reloaded.new_ulid() not in {b.ulid for b in reloaded.blocks}

    def test_drop_block_removes_directory(self, tmp_path):
        hot = TSDB(name="hot")
        store = ObjectStore(persist_dir=str(tmp_path / "store"))
        self._fill(store, hot)
        Sidecar(hot, store).upload(now=4.5 * 3600.0)
        ulid = store.blocks_at("raw")[0].ulid
        store.drop_block(ulid)
        assert ulid not in list_block_ulids(str(tmp_path / "store"))

    def test_compactor_rewrites_blocks_on_disk(self, tmp_path):
        hot = TSDB(name="hot")
        store = ObjectStore(persist_dir=str(tmp_path / "store"))
        for i in range(2):
            for t in range(17 * 4):
                hot.append(series_labels(i), t * 900.0, float(t))
        Sidecar(hot, store).upload(now=17 * 3600.0)
        compactor = Compactor(store)
        merged = compactor.compact_blocks()
        assert merged > 0
        merged_blocks = [b for b in store.blocks_at("raw") if b.level == 2]
        assert merged_blocks
        on_disk = set(list_block_ulids(str(tmp_path / "store")))
        assert {b.ulid for b in store.blocks_at("raw")} <= on_disk
        for block in merged_blocks:
            for source in block.source_ulids:
                assert source not in on_disk
            meta = BlockReader(str(tmp_path / "store"), block.ulid).meta
            assert meta["compaction"]["level"] == 2
            assert tuple(meta["compaction"]["sources"]) == block.source_ulids

    def test_downsample_persists_and_resumes(self, tmp_path):
        hot = TSDB(name="hot")
        store = ObjectStore(persist_dir=str(tmp_path / "store"))
        for t in range(8 * 240):
            hot.append(series_labels(0), t * 30.0, float(t % 7))
        Sidecar(hot, store).upload(now=8 * 3600.0)
        compactor = Compactor(store, downsample_5m_after=3600.0)
        now = 8 * 3600.0
        compactor.downsample(now)
        five_m = store.blocks_at("5m")
        assert len(five_m) == 1
        reloaded = ObjectStore(persist_dir=str(tmp_path / "store"))
        assert reloaded.tsdb("5m").num_samples == store.tsdb("5m").num_samples
        # a reopened compactor resumes after the persisted 5m block
        compactor2 = Compactor(reloaded, downsample_5m_after=3600.0)
        assert compactor2._downsampled_until["5m"] == five_m[0].max_time
        compactor2.downsample(now)
        assert len(reloaded.blocks_at("5m")) == 1  # nothing re-produced


class TestSimulationCrashRecovery:
    @pytest.fixture()
    def persist_dir(self, tmp_path):
        return str(tmp_path / "persist")

    def _simulation(self, persist_dir):
        from repro.cluster import StackSimulation, small_topology
        from repro.cluster.simulation import SimulationConfig

        return StackSimulation(
            small_topology(cpu_nodes=1, gpu_nodes=0),
            SimulationConfig(
                persist_dir=persist_dir,
                with_workload=False,
                meta_monitoring=False,
                n_prom_backends=1,
            ),
        )

    def test_kill_and_reopen_preserves_flushed_samples(self, persist_dir):
        sim = self._simulation(persist_dir)
        sim.run(2.5 * 3600.0)  # past one 2 h block cut
        assert sim.object_store.persisted_blocks >= 1
        matcher = [Matcher.name_eq("ceems_cpu_seconds_total")]
        original = {
            tuple(s.labels): (list(s.timestamps), list(s.values))
            for s in sim.engine.storage.select(matcher)
        }
        assert original
        sim.hot_tsdb.wal.sync()  # flush the tail, then "kill" (no close)

        revived = self._simulation(persist_dir)
        assert revived.hot_tsdb.replay_result.records > 0
        fanout = FanoutStorage(revived.hot_tsdb, revived.object_store)
        for key, (ts, vs) in original.items():
            got = [s for s in fanout.select(matcher) if tuple(s.labels) == key]
            assert len(got) == 1
            assert_bit_identical(ts, vs, got[0].timestamps, got[0].values)

    def test_wal_replay_surfaced_in_metrics(self, persist_dir):
        sim = self._simulation(persist_dir)
        sim.run(1800.0)
        resp = sim.prom_apis[0].app.handle(Request(method="GET", path="/metrics"))
        body = resp.body if isinstance(resp.body, str) else resp.body.decode()
        assert "ceems_tsdb_wal_records_total" in body
        assert "ceems_tsdb_wal_fsyncs_total" in body
        assert "ceems_thanos_block_compression_ratio" in body
        sim.hot_tsdb.wal.sync()

        revived = self._simulation(persist_dir)
        revived.run(60.0)
        resp = revived.prom_apis[0].app.handle(Request(method="GET", path="/metrics"))
        body = resp.body if isinstance(resp.body, str) else resp.body.decode()
        replayed = [
            line
            for line in body.splitlines()
            if line.startswith("ceems_tsdb_wal_replayed_records_total")
        ]
        assert replayed and float(replayed[0].split()[-1]) > 0

    def test_clock_resumes_after_recovered_tail(self, persist_dir):
        sim = self._simulation(persist_dir)
        sim.run(1800.0)
        last = sim.hot_tsdb.max_time
        sim.hot_tsdb.wal.sync()
        revived = self._simulation(persist_dir)
        assert revived.now > last


class TestConfigWiring:
    def test_stack_config_carries_persist_dir(self, tmp_path):
        from repro.common.config import StackConfig
        from repro.cluster.simulation import SimulationConfig

        path = tmp_path / "stack.yml"
        path.write_text("tsdb:\n  persist_dir: /data/ceems\n")
        stack = StackConfig.load_file(str(path))
        assert stack.tsdb.persist_dir == "/data/ceems"
        cfg = SimulationConfig.from_stack_config(stack)
        assert cfg.persist_dir == "/data/ceems"

    def test_cli_persist_info(self, tmp_path):
        import io

        from repro.cli import main

        head = PersistentTSDB(str(tmp_path / "hot"))
        head.append(series_labels(0), 1.0, 2.0)
        head.close()
        out = io.StringIO()
        assert main(["persist-info", str(tmp_path)], out=out) == 0
        assert "samples recovered: 1" in out.getvalue()

    def test_cli_persist_info_missing(self, tmp_path):
        import io

        from repro.cli import main

        assert main(["persist-info", str(tmp_path / "nope")], out=io.StringIO()) == 1


class TestHeadLayoutParity:
    """Columnar ring-buffer head vs list head, driven in lockstep.

    Every mutation the TSDB supports runs against one instance of each
    ``head_layout``; after each phase the two heads must hold
    bit-identical ``arrays()`` and answer windows identically.  The
    WAL test extends the lockstep across a restart: both layouts
    replay the same journal and must converge on the same state.
    """

    @staticmethod
    def _both(**kwargs) -> dict[str, TSDB]:
        return {hl: TSDB(name=hl, head_layout=hl, **kwargs) for hl in ("list", "columnar")}

    @staticmethod
    def _assert_identical(dbs):
        listed = {hl: sorted(db.all_series(), key=lambda s: tuple(s.labels)) for hl, db in dbs.items()}
        assert len(listed["list"]) == len(listed["columnar"])
        for a, b in zip(listed["list"], listed["columnar"]):
            assert a.labels == b.labels
            assert_bit_identical(*a.arrays(), *b.arrays())
            for win in ((-1e9, 1e9), (1000.0, 5000.0), (1515.0, 1515.0)):
                aw, bw = a.window(*win), b.window(*win)
                assert_bit_identical(aw[0], aw[1], bw[0], bw[1])
                ah, bh = a.window_half_open(*win), b.window_half_open(*win)
                assert_bit_identical(ah[0], ah[1], bh[0], bh[1])
            assert a.at_or_before(4321.0, 300.0) == b.at_or_before(4321.0, 300.0)
            assert (a.nsamples, a.min_time, a.max_time) == (b.nsamples, b.min_time, b.max_time)

    def test_lockstep_mutation_sequence(self):
        dbs = self._both()
        rng = np.random.default_rng(11)
        labels = [series_labels(i) for i in range(4)]
        # phase 1: interleaved appends (forces ring growth past 64)
        for t in range(300):
            for i, lb in enumerate(labels):
                v = float(rng.standard_normal()) + i
                for db in dbs.values():
                    db.append(lb, 15.0 * t, v)
        self._assert_identical(dbs)
        # phase 2: equal-timestamp overwrite of the tail
        for db in dbs.values():
            db.append(labels[0], 15.0 * 299, 123.456)
        self._assert_identical(dbs)
        # phase 3: out-of-order rejected with the identical message
        errors = {}
        for hl, db in dbs.items():
            with pytest.raises(StorageError) as exc:
                db.append(labels[0], 10.0, 1.0)
            errors[hl] = str(exc.value)
        assert errors["list"] == errors["columnar"]
        self._assert_identical(dbs)  # failed append mutated nothing
        # phase 4: bulk append_array + ref-based scrape appends
        bulk_ts = [15.0 * t for t in range(300, 420)]
        bulk_vs = [float(v) for v in rng.standard_normal(120)]
        refs = {}
        for hl, db in dbs.items():
            db.append_array(labels[1], bulk_ts, bulk_vs)
            refs[hl] = [db.get_ref(lb) for lb in labels]
        for t in range(420, 480):
            for hl, db in dbs.items():
                db.append_refs(15.0 * t, [(r, float(t % 17)) for r in refs[hl]])
        self._assert_identical(dbs)
        # phase 5: retention trim (cuts through sealed chunks on the
        # columnar side — seal first so the lazy-reseal path runs)
        for db in dbs.values():
            for series in db.all_series():
                series.chunks()
            db.retention = 3600.0
            db.apply_retention(now=15.0 * 480)
        self._assert_identical(dbs)
        # phase 6: delete one series
        for db in dbs.values():
            db.delete_series([Matcher("idx", MatchOp.EQ, "2")])
        assert {tuple(s.labels) for s in dbs["list"].all_series()} == {
            tuple(s.labels) for s in dbs["columnar"].all_series()
        }
        self._assert_identical(dbs)
        assert dbs["list"].num_samples == dbs["columnar"].num_samples

    def test_wal_restart_parity(self, tmp_path):
        dbs = {
            hl: PersistentTSDB(str(tmp_path / hl), head_layout=hl)
            for hl in ("list", "columnar")
        }
        for t in range(150):
            for i in range(3):
                for db in dbs.values():
                    db.append(series_labels(i), 30.0 * t, float(i * 1000 + t))
        for db in dbs.values():
            db.close()
        reopened = {
            hl: PersistentTSDB(str(tmp_path / hl), head_layout=hl)
            for hl in ("list", "columnar")
        }
        self._assert_identical(reopened)
        assert reopened["columnar"].head_layout == "columnar"
        # replayed samples landed in ColumnarSeries, not list Series
        from repro.tsdb.storage import ColumnarSeries

        assert all(isinstance(s, ColumnarSeries) for s in reopened["columnar"].all_series())
        for db in reopened.values():
            db.close()

    def test_columnar_chunks_cover_live_region_exactly(self):
        """Sealed mini-chunks + tail chunk reproduce arrays() bit-for-bit."""
        from repro.tsdb.persist.chunkio import TailChunk

        db = TSDB(head_layout="columnar")
        rng = np.random.default_rng(3)
        for t in range(500):
            db.append(series_labels(0), 15.0 * t, float(rng.standard_normal()))
        series = db.all_series()[0]
        handles = series.chunks()
        assert len(handles) == 5  # four sealed 120s + one live tail
        assert isinstance(handles[-1], TailChunk)
        ts = np.concatenate([h.arrays()[0] for h in handles])
        vs = np.concatenate([h.arrays()[1] for h in handles])
        assert_bit_identical(*series.arrays(), ts, vs)
        # pruning by time returns only overlapping handles
        pruned = series.chunks(15.0 * 130, 15.0 * 130)
        assert len(pruned) == 1
        assert pruned[0].min_time <= 15.0 * 130 <= pruned[0].max_time


class TestLazyStore:
    """Decode-on-demand store: mmap chunk files, LRU, query parity."""

    def _build(self, tmp_path, lazy: bool) -> ObjectStore:
        hot = TSDB(name="hot")
        for i in range(3):
            for t in range(18 * 4):
                hot.append(series_labels(i), t * 900.0, float(i * 100 + t))
        store = ObjectStore(persist_dir=str(tmp_path / "store"), lazy_blocks=lazy)
        Sidecar(hot, store).upload(now=18 * 3600.0)
        return store

    def test_lazy_requires_persist_dir(self):
        with pytest.raises(StorageError):
            ObjectStore(lazy_blocks=True)

    def test_lazy_select_matches_eager(self, tmp_path):
        eager = self._build(tmp_path / "eager", lazy=False)
        lazy = self._build(tmp_path / "lazy", lazy=True)
        all_m = [Matcher("__name__", MatchOp.EQ, "metric")]
        for matchers in (all_m, [Matcher("idx", MatchOp.EQ, "1")]):
            e = {s.labels: s for s in eager.select_at("raw", matchers)}
            l = {s.labels: s for s in lazy.select_at("raw", matchers)}
            assert set(e) == set(l)
            for k in e:
                assert_bit_identical(*e[k].arrays(), *l[k].arrays())

    def test_lazy_reopen_matches_original(self, tmp_path):
        store = self._build(tmp_path, lazy=True)
        reloaded = ObjectStore(persist_dir=str(tmp_path / "store"), lazy_blocks=True)
        orig = {s.labels: s for s in store.select_at("raw", [Matcher("__name__", MatchOp.EQ, "metric")])}
        got = {s.labels: s for s in reloaded.select_at("raw", [Matcher("__name__", MatchOp.EQ, "metric")])}
        assert set(orig) == set(got)
        for k in orig:
            assert_bit_identical(*orig[k].arrays(), *got[k].arrays())
        # reloaded lazily: the resolution TSDB holds no samples
        assert reloaded.tsdb("raw").num_samples == 0

    def test_window_series_matches_eager(self, tmp_path):
        eager = self._build(tmp_path / "eager", lazy=False)
        lazy = self._build(tmp_path / "lazy", lazy=True)
        lo, hi = 4 * 3600.0, 9 * 3600.0
        e = {k: (ts.tobytes(), vs.tobytes()) for k, ts, vs in eager.window_series("raw", lo, hi)}
        l = {k: (ts.tobytes(), vs.tobytes()) for k, ts, vs in lazy.window_series("raw", lo, hi)}
        assert e == l

    def test_pruned_read_decodes_only_overlapping_chunks(self, tmp_path):
        from repro.tsdb.persist.chunkio import DECODE_CACHE, DECODE_CACHE_STATS

        store = self._build(tmp_path, lazy=True)
        DECODE_CACHE.clear()
        before = dict(DECODE_CACHE_STATS)
        series = {s.labels: s for s in store.select_at("raw", [Matcher("__name__", MatchOp.EQ, "metric")])}
        target = series[series_labels(0)]
        ts, vs = target.query_window_arrays(5 * 3600.0, 5.5 * 3600.0)
        decoded = DECODE_CACHE_STATS["misses"] - before["misses"]
        # 72 samples/block-window never spans more than 2 mini-chunks
        assert decoded <= 2
        lo = np.searchsorted(ts, 5 * 3600.0, side="left")
        hi = np.searchsorted(ts, 5.5 * 3600.0, side="right")
        assert ts[lo:hi].size  # the pruned superset covers the window
        # a repeat read hits the LRU, no fresh decodes
        before = dict(DECODE_CACHE_STATS)
        target.query_window_arrays(5 * 3600.0, 5.5 * 3600.0)
        assert DECODE_CACHE_STATS["misses"] == before["misses"]

    def test_drop_block_unregisters_chunks_and_closes_reader(self, tmp_path):
        store = self._build(tmp_path, lazy=True)
        ulid = store.blocks_at("raw")[0].ulid
        total_before = sum(
            s.nsamples for s in store.select_at("raw", [Matcher("__name__", MatchOp.EQ, "metric")])
        )
        store.drop_block(ulid)
        assert ulid not in list_block_ulids(str(tmp_path / "store"))
        total_after = sum(s.nsamples for s in store.select_at("raw", [Matcher("__name__", MatchOp.EQ, "metric")]))
        assert total_after < total_before

    def test_chunk_file_crc_detected_on_read(self, tmp_path):
        from repro.tsdb.persist.block import ChunkFile

        store = self._build(tmp_path, lazy=True)
        ulid = store.blocks_at("raw")[0].ulid
        block_dir = os.path.join(str(tmp_path / "store"), ulid)
        chunk_path = os.path.join(block_dir, "chunks", "000001")
        with open(chunk_path, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            last = fh.read(1)
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([last[0] ^ 0xFF]))
        cf = ChunkFile(chunk_path)
        with pytest.raises(StorageError, match="CRC mismatch"):
            # the flipped bit lives in the last frame; walk frames to it
            offset = 0
            while True:
                header = cf._mm[offset : offset + 8]
                if len(header) < 8:
                    raise AssertionError("corrupt frame not reached")
                (length,) = struct.unpack_from("<I", header, 0)
                cf.payload(offset, length)
                offset += 8 + length
        cf.close()

    def test_decode_cache_eviction_counter(self, tmp_path):
        from repro.tsdb.persist.chunkio import (
            DECODE_CACHE,
            DECODE_CACHE_STATS,
            configure_decode_cache,
        )

        store = self._build(tmp_path, lazy=True)
        configure_decode_cache(1)
        try:
            DECODE_CACHE.clear()
            before = dict(DECODE_CACHE_STATS)
            for s in store.select_at("raw", [Matcher("__name__", MatchOp.EQ, "metric")]):
                s.arrays()
            assert DECODE_CACHE_STATS["evictions"] > before["evictions"]
            assert len(DECODE_CACHE._entries) <= 1
        finally:
            configure_decode_cache(0)
