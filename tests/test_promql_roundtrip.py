"""AST stringification round-trip tests for the PromQL parser.

Every AST node renders back to PromQL via ``__str__``; re-parsing that
rendering must yield an equivalent AST.  This pins down precedence
and associativity handling with a corpus covering every construct.
"""

import math

import pytest

from repro.tsdb.model import Labels
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.promql.parser import parse_expr
from repro.tsdb.storage import TSDB

CORPUS = [
    "up",
    'up{job="ceems"}',
    'metric{a="1", b!="2", c=~"x.*", d!~"y+"}',
    "rate(ceems_rapl_package_joules_total[5m])",
    "increase(c[1h30m])",
    "sum(rate(x[2m]))",
    "sum by (hostname, nodegroup) (rate(x[2m]))",
    "avg without (uuid) (x)",
    "topk(5, x)",
    "quantile(0.99, x)",
    "quantile_over_time(0.5, x[10m])",
    "x + y",
    "x * on(instance) y",
    "x / ignoring(uuid) y",
    "x * on(host) group_left(role) y",
    "x * on(host) group_right() y",
    "x > 100",
    "x > bool 100",
    "x and y",
    "x or y unless z",
    "-x + 3",
    "2 ^ 3 ^ 2",
    "(x + y) * 2",
    "clamp_min(x, 0)",
    'label_replace(x, "dst", "$1", "src", "(.*)")',
    "x offset 1h",
    "rate(x[5m] offset 30m)",
    "abs(x) + sqrt(y)",
    "sort_desc(sum by (uuid) (x))",
    "scalar(x) * 2",
    "vector(1)",
    "time()",
    "absent(x)",
    'ceems:compute_unit:power_watts{uuid="123"} * on() group_left() (f) / 3.6e6',
]


def normalize(node):
    """Strip semantically-transparent Paren nodes for comparison."""
    from dataclasses import fields, is_dataclass

    from repro.tsdb.promql.ast import Paren

    while isinstance(node, Paren):
        node = node.expr
    if not is_dataclass(node):
        return node
    values = []
    for f in fields(node):
        value = getattr(node, f.name)
        if isinstance(value, tuple):
            value = tuple(normalize(v) if hasattr(v, "__dataclass_fields__") else v for v in value)
        elif hasattr(value, "__dataclass_fields__") and f.name in ("lhs", "rhs", "expr", "param", "selector"):
            value = normalize(value)
        values.append((f.name, value))
    return (type(node).__name__, tuple(values))


@pytest.mark.parametrize("query", CORPUS)
def test_str_roundtrip(query):
    """parse(str(parse(q))) must be structurally equal to parse(q)."""
    first = parse_expr(query)
    second = parse_expr(str(first))
    assert normalize(second) == normalize(first)


@pytest.mark.parametrize("query", CORPUS)
def test_roundtrip_evaluates_identically(query):
    """Where evaluable, the round-tripped AST gives the same result."""
    db = TSDB()
    for name in ("up", "x", "y", "z", "f", "c", "metric",
                 "ceems_rapl_package_joules_total"):
        for i in range(30):
            db.append(Labels({"__name__": name, "job": "ceems", "instance": "n1",
                              "host": "h1", "uuid": "123", "hostname": "n1",
                              "nodegroup": "g", "src": "val", "role": "r"}),
                      i * 15.0, float(i * 2))
    db.append(Labels({"__name__": "ceems:compute_unit:power_watts", "uuid": "123"}), 450.0, 100.0)
    engine = PromQLEngine(db)
    first = parse_expr(query)
    second = parse_expr(str(first))

    def evaluate(ast):
        try:
            result = engine.query(ast, at=450.0)
        except Exception as exc:  # noqa: BLE001 - compare failure parity
            return ("error", type(exc).__name__)
        if result.is_scalar:
            return ("scalar", result.scalar)
        return ("vector", tuple((el.labels, round(el.value, 9)) for el in result.vector))

    a, b = evaluate(first), evaluate(second)
    if a[0] == "scalar" and isinstance(a[1], float) and math.isnan(a[1]):
        assert b[0] == "scalar" and math.isnan(b[1])
    else:
        assert a == b
