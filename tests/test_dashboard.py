"""Tests for the Grafana-like panels, data sources and Fig. 2 dashboards."""

import numpy as np
import pytest

from repro.common.errors import AuthError
from repro.dashboard import (
    StatPanel,
    TablePanel,
    TimeSeriesPanel,
    fig2a_user_overview,
    fig2b_job_list,
    fig2c_job_timeseries,
)


class TestPanels:
    def test_stat_panel_render(self):
        assert StatPanel("Energy", 5.0, "kWh").render() == "Energy: 5 kWh"
        assert StatPanel("Energy", 5.0, formatted="5.00 kWh").render() == "Energy: 5.00 kWh"

    def test_table_panel_render(self):
        panel = TablePanel(title="Jobs", columns=["Id", "State"])
        panel.rows.append(["1", "running"])
        panel.rows.append(["123456", "done"])
        text = panel.render()
        lines = text.splitlines()
        assert lines[0] == "Jobs"
        assert "Id" in lines[2] and "State" in lines[2]
        assert len(lines) == 6

    def test_timeseries_summary(self):
        panel = TimeSeriesPanel(title="cpu")
        panel.add_series("a", np.arange(5.0), np.array([1.0, 2.0, 3.0, 4.0, 5.0]))
        summary = panel.summary()
        assert summary["a"] == {"min": 1.0, "mean": 3.0, "max": 5.0, "points": 5.0}

    def test_timeseries_sparkline(self):
        panel = TimeSeriesPanel(title="cpu")
        panel.add_series("a", np.arange(100.0), np.linspace(0, 1, 100))
        text = panel.render(width=20)
        assert "a [" in text
        # rising signal: last block should be the darkest
        spark = text.splitlines()[1].split(": ")[1]
        assert spark[-1] == "█"

    def test_timeseries_empty_series(self):
        panel = TimeSeriesPanel(title="cpu")
        panel.add_series("a", np.array([]), np.array([]))
        assert "(no data)" in panel.render()


class TestFig2Dashboards:
    """Against the fully-run shared simulation."""

    @pytest.fixture(scope="class")
    def heavy_user(self, small_sim):
        usage = small_sim.ceems_datasource("admin").global_usage()
        return max(usage, key=lambda r: r["num_units"])["user"]

    def test_fig2a_panels(self, small_sim, heavy_user):
        panels = fig2a_user_overview(small_sim.ceems_datasource(heavy_user))
        by_title = {p.title: p for p in panels}
        assert by_title["Total jobs"].value >= 1
        assert by_title["Total energy"].value > 0
        assert by_title["Emissions"].value > 0
        assert 0 <= by_title["Avg CPU usage"].value <= 100

    def test_fig2a_emissions_consistent_with_energy(self, small_sim, heavy_user):
        panels = {p.title: p for p in fig2a_user_overview(small_sim.ceems_datasource(heavy_user))}
        kwh = panels["Total energy"].value / 3.6e6
        implied_factor = panels["Emissions"].value / kwh
        assert 15.0 < implied_factor < 160.0  # French grid territory

    def test_fig2b_rows(self, small_sim, heavy_user):
        panel = fig2b_job_list(small_sim.ceems_datasource(heavy_user), limit=10)
        assert panel.columns[0] == "JobID"
        assert 1 <= len(panel.rows) <= 10
        states = {row[3] for row in panel.rows}
        assert states <= {"running", "completed", "pending", "cancelled", "timeout", "failed", "oom"}

    def test_fig2c_series(self, small_sim, heavy_user):
        ceems = small_sim.ceems_datasource(heavy_user)
        finished = [u for u in ceems.units() if u["state"] == "completed" and u["elapsed"] > 600]
        if not finished:
            pytest.skip("no long-finished job for this user in the shared sim")
        job = finished[0]
        prom = small_sim.prometheus_datasource(heavy_user)
        panel = fig2c_job_timeseries(prom, job["uuid"], job["started_at"], job["ended_at"])
        summary = panel.summary()
        assert "cpu_cores_used" in summary
        assert "power_watts" in summary
        assert summary["power_watts"]["mean"] > 0
        assert summary["cpu_cores_used"]["max"] <= job["cpus"] + 0.5

    def test_fig2c_denied_for_foreign_job(self, small_sim, heavy_user):
        ceems = small_sim.ceems_datasource("admin")
        foreign = [u for u in ceems.units(all="true") if u["user"] != heavy_user][0]
        prom = small_sim.prometheus_datasource(heavy_user)
        with pytest.raises(AuthError):
            fig2c_job_timeseries(prom, foreign["uuid"], 0.0, small_sim.now)


class TestDataSources:
    def test_prometheus_ds_instant(self, small_sim):
        prom = small_sim.prometheus_datasource("admin")
        result = prom.query("sum(up)", small_sim.now)
        assert float(result[0]["value"][1]) > 0

    def test_prometheus_ds_range(self, small_sim):
        prom = small_sim.prometheus_datasource("admin")
        series = prom.query_range("sum(up)", small_sim.now - 600, small_sim.now, 60.0)
        assert len(series) == 1
        (_key, (ts, vs)), = series.items()
        assert len(ts) == 11

    def test_prometheus_ds_denied(self, small_sim):
        prom = small_sim.prometheus_datasource("user_that_owns_nothing")
        with pytest.raises(AuthError):
            prom.query("sum(up)", small_sim.now)

    def test_ceems_ds_units_scoped(self, small_sim):
        usage = small_sim.ceems_datasource("admin").global_usage()
        user = usage[0]["user"]
        ds = small_sim.ceems_datasource(user)
        units = ds.units()
        assert all(u["user"] == user for u in units)

    def test_ceems_ds_admin_global(self, small_sim):
        ds = small_sim.ceems_datasource("admin")
        assert len(ds.global_usage()) >= 1
