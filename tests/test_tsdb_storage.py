"""Tests for the TSDB storage layer."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import StorageError
from repro.tsdb.model import Labels, Matcher, MatchOp
from repro.tsdb.storage import TSDB, Series


def mklabels(name: str, **labels: str) -> Labels:
    return Labels({"__name__": name, **labels})


class TestAppend:
    def test_append_creates_series(self):
        db = TSDB()
        db.append(mklabels("up", job="a"), 1.0, 1.0)
        assert db.num_series == 1
        assert db.num_samples == 1

    def test_series_needs_metric_name(self):
        db = TSDB()
        with pytest.raises(StorageError, match="metric name"):
            db.append(Labels({"job": "a"}), 1.0, 1.0)

    def test_out_of_order_rejected(self):
        db = TSDB()
        labels = mklabels("up")
        db.append(labels, 10.0, 1.0)
        with pytest.raises(StorageError, match="out-of-order"):
            db.append(labels, 5.0, 2.0)

    def test_duplicate_timestamp_overwrites(self):
        """Last-write-wins keeps rule re-evaluation idempotent."""
        db = TSDB()
        labels = mklabels("up")
        db.append(labels, 10.0, 1.0)
        db.append(labels, 10.0, 2.0)
        series = db.select([Matcher.name_eq("up")])[0]
        assert series.nsamples == 1
        assert series.values[-1] == 2.0

    def test_min_max_time_tracked(self):
        db = TSDB()
        db.append(mklabels("a"), 5.0, 1.0)
        db.append(mklabels("b"), 2.0, 1.0)
        db.append(mklabels("a"), 9.0, 1.0)
        assert db.min_time == 2.0
        assert db.max_time == 9.0

    def test_append_many(self):
        db = TSDB()
        n = db.append_many([(mklabels("x"), float(i), float(i)) for i in range(10)])
        assert n == 10 and db.num_samples == 10

    def test_append_array_out_of_order_is_all_or_nothing(self):
        db = TSDB()
        labels = mklabels("x")
        db.append(labels, 10.0, 1.0)
        with pytest.raises(StorageError, match="out-of-order"):
            db.append_array(labels, [11.0, 12.0, 5.0], [1.0, 2.0, 3.0])
        series = db.select([Matcher.name_eq("x")])[0]
        assert series.timestamps == [10.0]
        assert db.num_samples == 1
        assert db.max_time == 10.0

    def test_append_array_rejected_batch_creates_no_series(self):
        db = TSDB()
        with pytest.raises(StorageError, match="out-of-order"):
            db.append_array(mklabels("x"), [2.0, 1.0], [1.0, 2.0])
        assert db.num_series == 0

    def test_append_array_fallback_overwrites_duplicates(self):
        db = TSDB()
        labels = mklabels("x")
        db.append(labels, 10.0, 1.0)
        assert db.append_array(labels, [10.0, 11.0], [5.0, 6.0]) == 2
        series = db.select([Matcher.name_eq("x")])[0]
        assert series.timestamps == [10.0, 11.0]
        assert series.values == [5.0, 6.0]


class TestSelect:
    def setup_method(self):
        self.db = TSDB()
        for node in ("n1", "n2"):
            for uuid in ("1", "2"):
                self.db.append(mklabels("power", instance=node, uuid=uuid), 1.0, 1.0)
        self.db.append(mklabels("up", instance="n1"), 1.0, 1.0)

    def test_select_by_name(self):
        assert len(self.db.select([Matcher.name_eq("power")])) == 4

    def test_select_intersection(self):
        out = self.db.select([Matcher.name_eq("power"), Matcher.eq("instance", "n1")])
        assert len(out) == 2

    def test_select_regex(self):
        out = self.db.select([Matcher.name_eq("power"), Matcher.re("uuid", "1|2")])
        assert len(out) == 4

    def test_select_neq(self):
        out = self.db.select([Matcher.name_eq("power"), Matcher("uuid", MatchOp.NEQ, "1")])
        assert len(out) == 2

    def test_select_no_match_returns_empty(self):
        assert self.db.select([Matcher.name_eq("missing")]) == []

    def test_select_requires_matchers(self):
        with pytest.raises(StorageError):
            self.db.select([])

    def test_results_sorted_by_labels(self):
        out = self.db.select([Matcher.name_eq("power")])
        keys = [tuple(s.labels) for s in out]
        assert keys == sorted(keys)

    def test_label_values(self):
        assert self.db.label_values("instance") == ["n1", "n2"]
        assert self.db.metric_names() == ["power", "up"]

    def test_cardinality_by_metric(self):
        assert self.db.cardinality_by_metric() == {"power": 4, "up": 1}


class TestSeriesReads:
    def test_window(self):
        series = Series(labels=mklabels("x"))
        for i in range(10):
            series.append(float(i), float(i * 10))
        ts, vs = series.window(2.0, 5.0)
        assert ts.tolist() == [2.0, 3.0, 4.0, 5.0]
        assert vs.tolist() == [20.0, 30.0, 40.0, 50.0]

    def test_window_empty(self):
        series = Series(labels=mklabels("x"))
        ts, vs = series.window(0, 10)
        assert len(ts) == 0

    def test_at_or_before_with_lookback(self):
        series = Series(labels=mklabels("x"))
        series.append(100.0, 7.0)
        assert series.at_or_before(100.0, 300.0) == (100.0, 7.0)
        assert series.at_or_before(350.0, 300.0) == (100.0, 7.0)
        assert series.at_or_before(400.1, 300.0) is None  # outside lookback
        assert series.at_or_before(99.0, 300.0) is None  # before first sample

    def test_stale_marker_hides_series(self):
        series = Series(labels=mklabels("x"))
        series.append(100.0, 7.0)
        series.append(115.0, math.nan)  # staleness marker
        assert series.at_or_before(110.0, 300.0) == (100.0, 7.0)
        assert series.at_or_before(120.0, 300.0) is None

    def test_series_resumes_after_stale(self):
        series = Series(labels=mklabels("x"))
        series.append(100.0, 7.0)
        series.append(115.0, math.nan)
        series.append(130.0, 9.0)
        assert series.at_or_before(135.0, 300.0) == (130.0, 9.0)


class TestRetention:
    def test_old_samples_dropped(self):
        db = TSDB(retention=100.0)
        labels = mklabels("x")
        for t in range(0, 300, 10):
            db.append(labels, float(t), 1.0)
        dropped, _ = db.apply_retention(now=290.0)
        assert dropped == 19  # everything strictly before t=190
        series = db.select([Matcher.name_eq("x")])[0]
        assert series.min_time == 190.0

    def test_empty_series_removed(self):
        db = TSDB(retention=10.0)
        db.append(mklabels("old"), 0.0, 1.0)
        db.append(mklabels("new"), 100.0, 1.0)
        _, series_dropped = db.apply_retention(now=100.0)
        assert series_dropped == 1
        assert db.num_series == 1
        assert db.metric_names() == ["new"]

    def test_zero_retention_keeps_everything(self):
        db = TSDB(retention=0.0)
        db.append(mklabels("x"), 0.0, 1.0)
        assert db.apply_retention(now=1e9) == (0, 0)


class TestDeleteSeries:
    def test_delete_by_uuid(self):
        db = TSDB()
        for uuid in ("1", "2"):
            for metric in ("cpu", "mem"):
                db.append(mklabels(metric, uuid=uuid), 1.0, 1.0)
        deleted = db.delete_series([Matcher.eq("uuid", "1")])
        assert deleted == 2
        assert db.num_series == 2
        assert all(s.labels.get("uuid") == "2" for s in db.all_series())

    def test_delete_cleans_index(self):
        db = TSDB()
        db.append(mklabels("cpu", uuid="1"), 1.0, 1.0)
        db.delete_series([Matcher.eq("uuid", "1")])
        assert db.label_values("uuid") == []
        assert db.select([Matcher.eq("uuid", "1")]) == []


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=1000), st.floats(allow_nan=False, allow_infinity=False, width=32)),
        min_size=1,
        max_size=50,
    )
)
def test_window_read_matches_naive_property(points):
    """Window reads agree with a brute-force filter."""
    points = sorted({t: v for t, v in points}.items())
    series = Series(labels=mklabels("p"))
    for t, v in points:
        series.append(float(t), v)
    lo, hi = 200.0, 800.0
    ts, vs = series.window(lo, hi)
    expected = [(float(t), v) for t, v in points if lo <= t <= hi]
    assert list(zip(ts.tolist(), vs.tolist())) == expected


class TestSeriesArrays:
    def test_snapshot_cached_between_reads(self):
        series = Series(labels=mklabels("s"))
        series.append(1.0, 10.0)
        first = series.arrays()
        assert series.arrays() is first  # same tuple until mutation
        assert first[0].tolist() == [1.0] and first[1].tolist() == [10.0]

    def test_snapshot_invalidated_on_append(self):
        series = Series(labels=mklabels("s"))
        series.append(1.0, 10.0)
        before = series.arrays()
        series.append(2.0, 20.0)
        after = series.arrays()
        assert after is not before
        assert after[1].tolist() == [10.0, 20.0]

    def test_snapshot_invalidated_on_overwrite(self):
        series = Series(labels=mklabels("s"))
        series.append(1.0, 10.0)
        series.arrays()
        series.append(1.0, 99.0)  # duplicate timestamp: last-write-wins
        assert series.arrays()[1].tolist() == [99.0]

    def test_snapshot_invalidated_on_truncate(self):
        series = Series(labels=mklabels("s"))
        for i in range(5):
            series.append(float(i), float(i))
        series.arrays()
        series.truncate_before(3.0)
        assert series.arrays()[0].tolist() == [3.0, 4.0]


class TestSelectorMemo:
    def test_repeat_select_hits_memo(self):
        db = TSDB()
        db.append(mklabels("cpu", host="a"), 1.0, 1.0)
        matchers = [Matcher.name_eq("cpu")]
        first = db.select(matchers)
        second = db.select(matchers)
        assert second is first
        stats = db.selector_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_memo_survives_appends_to_existing_series(self):
        db = TSDB()
        labels = mklabels("cpu", host="a")
        db.append(labels, 1.0, 1.0)
        matchers = [Matcher.name_eq("cpu")]
        first = db.select(matchers)
        db.append(labels, 2.0, 2.0)  # same series: population unchanged
        assert db.select(matchers) is first

    def test_memo_invalidated_on_new_series(self):
        db = TSDB()
        db.append(mklabels("cpu", host="a"), 1.0, 1.0)
        matchers = [Matcher.name_eq("cpu")]
        db.select(matchers)
        db.append(mklabels("cpu", host="b"), 1.0, 1.0)
        assert len(db.select(matchers)) == 2

    def test_memo_invalidated_on_series_delete(self):
        db = TSDB()
        db.append(mklabels("cpu", uuid="1"), 1.0, 1.0)
        db.append(mklabels("cpu", uuid="2"), 1.0, 1.0)
        matchers = [Matcher.name_eq("cpu")]
        assert len(db.select(matchers)) == 2
        db.delete_series([Matcher.eq("uuid", "1")])
        assert len(db.select(matchers)) == 1

    def test_empty_result_is_memoised_too(self):
        db = TSDB()
        db.append(mklabels("cpu"), 1.0, 1.0)
        matchers = [Matcher.eq("host", "nope")]
        db.select(matchers)
        db.select(matchers)
        assert db.selector_cache_stats()["hits"] == 1

    def test_epochs_track_mutations(self):
        db = TSDB()
        labels = mklabels("cpu")
        db.append(labels, 1.0, 1.0)
        series_epoch, data_epoch = db.series_epoch, db.data_epoch
        db.append(labels, 2.0, 2.0)
        assert db.series_epoch == series_epoch  # no new series
        assert db.data_epoch == data_epoch + 1
        db.append(mklabels("mem"), 1.0, 1.0)
        assert db.series_epoch == series_epoch + 1

    def test_memo_capped(self):
        db = TSDB()
        db.append(mklabels("cpu"), 1.0, 1.0)
        for i in range(db.SELECT_CACHE_MAX + 10):
            db.select([Matcher.eq("host", f"h{i}")])
        assert len(db._select_cache) <= db.SELECT_CACHE_MAX


class TestAppendByRef:
    """The scrape fast lane's ref API and its integrity guarantees."""

    def test_get_ref_stable_and_creating(self):
        db = TSDB()
        labels = mklabels("m", a="1")
        ref = db.get_ref(labels)
        assert ref > 0
        assert db.get_ref(labels) == ref
        assert db.num_series == 1
        assert db.resolve_ref(ref).labels == labels

    def test_append_ref_matches_append_by_labels(self):
        by_labels = TSDB()
        by_ref = TSDB()
        labels = mklabels("m", a="1")
        ref = by_ref.get_ref(labels)
        for i in range(5):
            by_labels.append(labels, 10.0 * (i + 1), float(i))
            by_ref.append_ref(ref, 10.0 * (i + 1), float(i))
        sa = by_labels.select([Matcher.name_eq("m")])[0]
        sb = by_ref.select([Matcher.name_eq("m")])[0]
        assert sa.timestamps == sb.timestamps and sa.values == sb.values
        assert by_labels.samples_ingested == by_ref.samples_ingested
        assert by_labels.min_time == by_ref.min_time
        assert by_labels.max_time == by_ref.max_time

    def test_append_ref_unknown_raises(self):
        db = TSDB()
        with pytest.raises(StorageError, match="unknown series ref"):
            db.append_ref(999, 1.0, 1.0)

    def test_append_refs_batch_and_semantics(self):
        db = TSDB()
        r1 = db.get_ref(mklabels("m", a="1"))
        r2 = db.get_ref(mklabels("m", a="2"))
        count, dead = db.append_refs(10.0, [(r1, 1.0), (r2, 2.0)])
        assert (count, dead) == (2, [])
        # equal timestamp overwrites (idempotent re-ingest)
        count, dead = db.append_refs(10.0, [(r1, 9.0)])
        assert count == 1
        assert db.resolve_ref(r1).values == [9.0]
        # out-of-order still rejected
        with pytest.raises(StorageError, match="out-of-order"):
            db.append_refs(5.0, [(r1, 0.0)])
        assert db.min_time == 10.0 and db.max_time == 10.0

    def test_delete_series_kills_ref_forever(self):
        db = TSDB()
        labels = mklabels("m", a="1")
        ref = db.get_ref(labels)
        db.append_ref(ref, 1.0, 1.0)
        db.delete_series([Matcher.name_eq("m")])
        assert db.resolve_ref(ref) is None
        with pytest.raises(StorageError):
            db.append_ref(ref, 2.0, 2.0)
        count, dead = db.append_refs(2.0, [(ref, 2.0)])
        assert (count, dead) == (0, [(ref, 2.0)])
        # recreating the same labels yields a NEW ref: the stale one
        # can never alias onto the recreated series.
        new_ref = db.get_ref(labels)
        assert new_ref != ref
        db.append_ref(new_ref, 3.0, 3.0)
        assert db.resolve_ref(ref) is None
        assert db.resolve_ref(new_ref).values == [3.0]

    def test_retention_drop_invalidates_ref(self):
        db = TSDB(retention=50.0)
        old = db.get_ref(mklabels("m", a="old"))
        live = db.get_ref(mklabels("m", a="live"))
        db.append_ref(old, 10.0, 1.0)
        db.append_ref(live, 100.0, 2.0)
        db.apply_retention(now=100.0)
        assert db.resolve_ref(old) is None
        assert db.resolve_ref(live) is not None
        count, dead = db.append_refs(110.0, [(old, 5.0), (live, 6.0)])
        assert count == 1 and dead == [(old, 5.0)]

    def test_dead_refs_reported_not_silently_dropped(self):
        db = TSDB()
        r1 = db.get_ref(mklabels("m", a="1"))
        r2 = db.get_ref(mklabels("m", a="2"))
        db.append_refs(1.0, [(r1, 1.0), (r2, 1.0)])
        db.delete_series([Matcher.eq("a", "1")])
        count, dead = db.append_refs(2.0, [(r1, 7.0), (r2, 8.0), (r1, 9.0)])
        assert count == 1
        assert dead == [(r1, 7.0), (r1, 9.0)]
        assert db.resolve_ref(r2).values == [1.0, 8.0]

    def test_append_refs_bumps_epoch_once(self):
        db = TSDB()
        r1 = db.get_ref(mklabels("m", a="1"))
        r2 = db.get_ref(mklabels("m", a="2"))
        before = db.data_epoch
        db.append_refs(1.0, [(r1, 1.0), (r2, 2.0)])
        assert db.data_epoch == before + 1
