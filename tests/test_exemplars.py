"""Exemplar pipeline: storage, capture, sampling, endpoints, parity.

The end-to-end exemplar story (registry capture → exposition →
scrape, both lanes → CircularExemplarStorage → /api/v1/query_exemplars)
is covered layer by layer here; the full drill-down against a running
simulation lives in tests/integration/test_exemplars_e2e.py.
"""

import math

import pytest

from repro.common.errors import ScrapeError, StorageError
from repro.common.httpx import App, Request, Response
from repro.obs import registry as registry_mod
from repro.obs.registry import Counter, Histogram, set_exemplars_enabled
from repro.obs.telemetry import Telemetry
from repro.obs.trace import Span, SpanStore, TailSampler, TraceContext, activate, deactivate
from repro.tsdb import exposition
from repro.tsdb.exposition import Exemplar
from repro.tsdb.http import PromAPI
from repro.tsdb.model import Labels, Matcher
from repro.tsdb.scrape import ScrapeConfig, ScrapeManager, ScrapeTarget
from repro.tsdb.storage import TSDB, CircularExemplarStorage


def _labels(**kv):
    return Labels({"__name__": kv.pop("name", "m"), **kv})


def _ex(tid="t1", value=1.0, ts=None):
    return Exemplar({"trace_id": tid}, value, ts)


# -- CircularExemplarStorage ------------------------------------------------


class TestExemplarStorage:
    def test_caps_must_be_positive(self):
        with pytest.raises(StorageError):
            CircularExemplarStorage(capacity=0)
        with pytest.raises(StorageError):
            CircularExemplarStorage(per_series=0)

    def test_add_and_select(self):
        store = CircularExemplarStorage()
        labels = _labels(job="j")
        assert store.add(1, labels, _ex("a", 0.5, 10.0), scrape_ts=15.0)
        [(got_labels, records)] = store.select([Matcher.eq("job", "j")])
        assert got_labels == labels
        assert records[0].labels == {"trace_id": "a"}
        assert records[0].value == 0.5
        assert records[0].timestamp == 10.0  # exposition ts wins
        assert records[0].scrape_ts == 15.0

    def test_scrape_ts_substituted_when_exemplar_has_none(self):
        store = CircularExemplarStorage()
        store.add(1, _labels(), _ex(ts=None), scrape_ts=42.0)
        [(_, records)] = store.select([])
        assert records[0].timestamp == 42.0

    def test_duplicate_newest_dropped(self):
        store = CircularExemplarStorage()
        labels = _labels()
        assert store.add(1, labels, _ex("a", 1.0, 5.0), 5.0)
        assert not store.add(1, labels, _ex("a", 1.0, 5.0), 20.0)
        assert store.appended_total == 1
        assert store.dropped_total == 1
        assert len(store) == 1

    def test_nan_duplicate_dropped(self):
        store = CircularExemplarStorage()
        labels = _labels()
        assert store.add(1, labels, _ex("a", math.nan, 5.0), 5.0)
        assert not store.add(1, labels, _ex("a", math.nan, 5.0), 5.0)

    def test_changed_exemplar_replaces_not_drops(self):
        store = CircularExemplarStorage()
        labels = _labels()
        store.add(1, labels, _ex("a", 1.0, 5.0), 5.0)
        assert store.add(1, labels, _ex("b", 1.0, 6.0), 6.0)
        [(_, records)] = store.select([])
        assert [r.labels["trace_id"] for r in records] == ["a", "b"]

    def test_per_series_ring_evicts_oldest(self):
        store = CircularExemplarStorage(per_series=3)
        labels = _labels()
        for i in range(5):
            store.add(1, labels, _ex(f"t{i}", float(i), float(i)), float(i))
        [(_, records)] = store.select([])
        assert [r.labels["trace_id"] for r in records] == ["t2", "t3", "t4"]
        assert len(store) == 3
        assert store.dropped_total == 2

    def test_global_capacity_evicts_across_series(self):
        store = CircularExemplarStorage(capacity=4, per_series=10)
        for ref in range(1, 7):
            store.add(ref, _labels(ref=str(ref)), _ex(f"t{ref}", 1.0, float(ref)), 1.0)
        assert len(store) == 4
        remaining = {
            labels.get("ref") for labels, _ in store.select([])
        }
        assert remaining == {"3", "4", "5", "6"}

    def test_tombstones_do_not_starve_global_eviction(self):
        # Per-series eviction leaves tombstones in the FIFO; global
        # eviction must skip them and still evict real records.
        store = CircularExemplarStorage(capacity=3, per_series=1)
        labels_a = _labels(s="a")
        for i in range(5):  # ref 1 churns, leaving tombstones
            store.add(1, labels_a, _ex(f"a{i}", float(i), float(i)), 1.0)
        store.add(2, _labels(s="b"), _ex("b", 1.0, 1.0), 1.0)
        store.add(3, _labels(s="c"), _ex("c", 1.0, 1.0), 1.0)
        store.add(4, _labels(s="d"), _ex("d", 1.0, 1.0), 1.0)
        assert len(store) == 3
        kept = {labels.get("s") for labels, _ in store.select([])}
        assert kept == {"b", "c", "d"}

    def test_time_window_filtering(self):
        store = CircularExemplarStorage()
        labels = _labels()
        for t in (10.0, 20.0, 30.0):
            store.add(1, labels, _ex(f"t{t}", t, t), t)
        [(_, records)] = store.select([], start=15.0, end=25.0)
        assert [r.timestamp for r in records] == [20.0]
        assert store.select([], start=100.0) == []

    def test_exemplars_survive_series_deletion(self):
        db = TSDB()
        labels = _labels(uuid="x")
        db.append(labels, 10.0, 1.0)
        db.append_exemplar(labels, _ex("keepme", 1.0, 10.0), 10.0)
        db.delete_series([Matcher.eq("uuid", "x")])
        [(got, records)] = db.select_exemplars([Matcher.eq("uuid", "x")])
        assert got == labels
        assert records[0].labels["trace_id"] == "keepme"


class TestTSDBExemplarAppend:
    def test_append_by_labels_creates_series(self):
        db = TSDB()
        labels = _labels(job="j")
        assert db.append_exemplar(labels, _ex(), 5.0)
        assert len(db.exemplars) == 1

    def test_append_by_ref(self):
        db = TSDB()
        labels = _labels(job="j")
        ref = db.get_ref(labels)
        assert db.append_exemplar_ref(ref, labels, _ex("via-ref"), 5.0)
        [(got, records)] = db.select_exemplars([])
        assert records[0].labels["trace_id"] == "via-ref"

    def test_dead_ref_falls_back_to_labels(self):
        db = TSDB()
        labels = _labels(uuid="x")
        ref = db.get_ref(labels)
        db.append(labels, 1.0, 1.0)
        db.delete_series([Matcher.eq("uuid", "x")])
        assert db.append_exemplar_ref(ref, labels, _ex("healed"), 9.0)
        [(got, records)] = db.select_exemplars([])
        assert got == labels and records[0].labels["trace_id"] == "healed"


# -- registry capture -------------------------------------------------------


class _InSpan:
    """Context manager activating a fixed trace context."""

    def __init__(self, trace_id="ab" * 16):
        self.ctx = TraceContext(trace_id=trace_id, span_id="cd" * 8)

    def __enter__(self):
        self._token = activate(self.ctx)
        return self.ctx

    def __exit__(self, *exc):
        deactivate(self._token)


class TestRegistryCapture:
    def test_counter_captures_trace_id(self):
        c = Counter("hits_total")
        with _InSpan("aa" * 16):
            c.inc(2.0, path="/x")
        [family] = c.collect()
        assert family.points[0].exemplar.labels == {"trace_id": "aa" * 16}
        assert family.points[0].exemplar.value == 2.0  # the increment

    def test_no_span_no_exemplar(self):
        c = Counter("hits_total")
        c.inc()
        [family] = c.collect()
        assert family.points[0].exemplar is None

    def test_disabled_capture(self):
        old = set_exemplars_enabled(False)
        try:
            c = Counter("hits_total")
            with _InSpan():
                c.inc()
            [family] = c.collect()
            assert family.points[0].exemplar is None
        finally:
            set_exemplars_enabled(old)

    def test_histogram_exemplar_rides_landing_bucket(self):
        h = Histogram("lat", buckets=(0.1, 1.0))
        with _InSpan("ee" * 16):
            h.observe(0.5)
        marker, buckets, sums, counts = h.collect()
        by_le = {p.labels["le"]: p for p in buckets.points}
        assert by_le["1.0"].exemplar is not None
        assert by_le["1.0"].exemplar.value == 0.5
        assert by_le["0.1"].exemplar is None

    def test_histogram_overflow_lands_on_inf(self):
        h = Histogram("lat", buckets=(0.1,))
        with _InSpan():
            h.observe(5.0)
        by_le = {p.labels["le"]: p for p in h.collect()[1].points}
        assert by_le["+Inf"].exemplar is not None
        assert by_le["0.1"].exemplar is None

    def test_rate_limited_replacement(self, monkeypatch):
        h = Histogram("lat", buckets=(1.0,))
        monkeypatch.setattr(registry_mod, "_EXEMPLAR_MIN_INTERVAL", 3600.0)
        with _InSpan("11" * 16):
            h.observe(0.5)
        with _InSpan("22" * 16):
            h.observe(0.5)  # within the interval: not replaced
        by_le = {p.labels["le"]: p for p in h.collect()[1].points}
        assert by_le["1.0"].exemplar.labels["trace_id"] == "11" * 16
        monkeypatch.setattr(registry_mod, "_EXEMPLAR_MIN_INTERVAL", 0.0)
        with _InSpan("33" * 16):
            h.observe(0.5)
        by_le = {p.labels["le"]: p for p in h.collect()[1].points}
        assert by_le["1.0"].exemplar.labels["trace_id"] == "33" * 16

    def test_rendered_and_scraped_back(self):
        """Capture → render → scrape: the full write side."""
        h = Histogram("lat_seconds", buckets=(1.0,))
        with _InSpan("fe" * 16):
            h.observe(0.5)
        text = exposition.render(h.collect())
        assert '# {trace_id="' + "fe" * 16 + '"} 0.5' in text
        db = TSDB()
        app = App("fake")
        app.router.get("/metrics", lambda req: Response.text(text))
        manager = ScrapeManager(db, ScrapeConfig())
        manager.add_target(ScrapeTarget(app=app, instance="i", job="j"))
        manager.scrape_all(now=15.0)
        [(labels, records)] = db.select_exemplars([])
        assert labels.metric_name == "lat_seconds_bucket"
        assert records[0].labels["trace_id"] == "fe" * 16
        assert records[0].timestamp == 15.0  # scrape ts substituted


# -- tail sampling ----------------------------------------------------------


def _span(trace_id="ab" * 16, duration=0.001, status="ok"):
    return Span(
        trace_id=trace_id,
        span_id="11" * 8,
        parent_id="",
        name="op",
        component="c",
        start=0.0,
        duration=duration,
        status=status,
    )


class TestTailSampler:
    def test_errors_always_kept(self):
        sampler = TailSampler(rate=0.0, keep_slow_ms=1e9)
        assert sampler.keep(_span(status="error"))

    def test_slow_always_kept(self):
        sampler = TailSampler(rate=0.0, keep_slow_ms=100.0)
        assert sampler.keep(_span(duration=0.2))
        assert not sampler.keep(_span(duration=0.01))

    def test_rate_one_keeps_everything(self):
        sampler = TailSampler(rate=1.0, keep_slow_ms=1e9)
        assert all(sampler.keep(_span(trace_id=f"{i:032x}")) for i in range(1, 50))

    def test_decision_deterministic_per_trace(self):
        sampler = TailSampler(rate=0.5, keep_slow_ms=1e9)
        decisions = {
            tid: sampler.keep(_span(trace_id=tid))
            for tid in (f"{i:032x}" for i in range(1, 100))
        }
        again = TailSampler(rate=0.5, keep_slow_ms=1e9)
        for tid, decision in decisions.items():
            assert again.keep(_span(trace_id=tid)) == decision
        kept = sum(decisions.values())
        assert 20 < kept < 80  # roughly half, hash-spread

    def test_counters(self):
        sampler = TailSampler(rate=0.0, keep_slow_ms=100.0)
        sampler.keep(_span(duration=1.0))
        sampler.keep(_span(duration=0.0))
        assert (sampler.kept_total, sampler.dropped_total) == (1, 1)

    def test_store_counts_sampled_out_spans(self):
        store = SpanStore(capacity=10)
        store.sampler = TailSampler(rate=0.0, keep_slow_ms=1e9)
        store.record(_span(duration=0.0))
        assert store.total_recorded == 1
        assert len(store) == 0


# -- span store trace index -------------------------------------------------


class TestSpanStoreIndex:
    def test_for_trace_uses_index(self):
        store = SpanStore(capacity=100)
        for i in range(10):
            store.record(_span(trace_id=f"{i % 3:032x}"))
        target = f"{1:032x}"
        got = store.for_trace(target)
        assert [s.trace_id for s in got] == [target] * len(got)
        assert got == [s for s in store.spans() if s.trace_id == target]

    def test_eviction_never_leaks_trace_ids(self):
        store = SpanStore(capacity=8)
        for i in range(50):
            store.record(_span(trace_id=f"{i:032x}"))
        live = {s.trace_id for s in store.spans()}
        assert set(store._by_trace) == live
        # evicted ids resolve to nothing, not stale spans
        assert store.for_trace(f"{0:032x}") == []
        assert sum(len(b) for b in store._by_trace.values()) == len(store)

    def test_interleaved_traces_survive_partial_eviction(self):
        store = SpanStore(capacity=3)
        a, b = "aa" * 16, "bb" * 16
        for tid in (a, b, a, b):
            store.record(_span(trace_id=tid))
        # ring: [b, a, b] — a's first span evicted, second retained
        assert len(store.for_trace(a)) == 1
        assert len(store.for_trace(b)) == 2

    def test_clear_clears_index(self):
        store = SpanStore(capacity=10)
        store.record(_span())
        store.clear()
        assert store._by_trace == {} and len(store) == 0


# -- /debug/traces params ---------------------------------------------------


class TestDebugTraces:
    def _app(self):
        app = App("t")
        app.expose_telemetry()
        store = app.telemetry.spans
        store.record(_span(trace_id="aa" * 16, duration=0.5))
        store.record(_span(trace_id="aa" * 16, duration=0.001))
        store.record(_span(trace_id="bb" * 16, duration=0.01))
        return app

    def _spans(self, app, qs):
        resp = app.handle(Request.from_url("GET", f"/debug/traces{qs}"))
        assert resp.status == 200
        import json

        return json.loads(resp.body)["spans"]

    def test_trace_id_filter(self):
        spans = self._spans(self._app(), "?trace_id=" + "aa" * 16)
        assert len(spans) == 2

    def test_min_ms_filter(self):
        spans = self._spans(self._app(), "?min_ms=100")
        assert [s["duration"] for s in spans] == [0.5]

    def test_min_ms_with_trace_id(self):
        spans = self._spans(self._app(), "?trace_id=" + "aa" * 16 + "&min_ms=100")
        assert len(spans) == 1

    def test_limit(self):
        spans = self._spans(self._app(), "?limit=1")
        assert len(spans) == 1

    def test_bad_min_ms_rejected(self):
        app = self._app()
        resp = app.handle(Request.from_url("GET", "/debug/traces?min_ms=zzz"))
        assert resp.status == 400


# -- PromAPI endpoints ------------------------------------------------------


class TestPromAPIEndpoints:
    def _api(self):
        db = TSDB()
        labels = Labels({"__name__": "lat_bucket", "le": "1.0", "job": "lb"})
        db.append(labels, 10.0, 3.0)
        db.append_exemplar(labels, _ex("fe" * 16, 0.4, 10.0), 10.0)
        return PromAPI(db, name="prom-test")

    def _get(self, api, url):
        import json

        resp = api.app.handle(Request.from_url("GET", url))
        return resp.status, json.loads(resp.body)

    def test_query_exemplars_basic(self):
        status, body = self._get(
            self._api(), '/api/v1/query_exemplars?query=lat_bucket{job="lb"}'
        )
        assert status == 200
        [series] = body["data"]
        assert series["seriesLabels"]["__name__"] == "lat_bucket"
        [ex] = series["exemplars"]
        assert ex["labels"]["trace_id"] == "fe" * 16
        assert ex["value"] == "0.4"
        assert ex["timestamp"] == 10.0

    def test_query_exemplars_walks_function_calls(self):
        status, body = self._get(
            self._api(),
            "/api/v1/query_exemplars?query="
            "histogram_quantile(0.99, rate(lat_bucket[5m]))",
        )
        assert status == 200 and len(body["data"]) == 1

    def test_query_exemplars_time_window(self):
        status, body = self._get(
            self._api(), "/api/v1/query_exemplars?query=lat_bucket&start=20&end=30"
        )
        assert status == 200 and body["data"] == []

    def test_query_exemplars_missing_query(self):
        status, _ = self._get(self._api(), "/api/v1/query_exemplars")
        assert status == 400

    def test_query_exemplars_bad_query(self):
        status, _ = self._get(self._api(), "/api/v1/query_exemplars?query=((")
        assert status == 400

    def test_buildinfo(self):
        status, body = self._get(self._api(), "/api/v1/status/buildinfo")
        assert status == 200
        assert body["data"]["version"]
        assert body["data"]["features"]["exemplar-storage"] == "true"

    def test_runtimeinfo(self):
        status, body = self._get(self._api(), "/api/v1/status/runtimeinfo")
        assert status == 200
        assert body["data"]["timeSeriesCount"] == 1
        assert body["data"]["exemplarCount"] == 1


# -- differential: fast lane vs reference -----------------------------------


def make_exporter(families_fn) -> App:
    app = App("fake")
    app.router.get(
        "/metrics", lambda req: Response.text(exposition.render(families_fn()))
    )
    return app


def dump_exemplars(db: TSDB):
    """Canonical exemplar contents; NaN-safe via repr of values."""
    out = []
    for labels, records in db.exemplars.select([]):
        for r in records:
            out.append(
                (
                    tuple(labels),
                    tuple(sorted(r.labels.items())),
                    repr(r.value),
                    r.timestamp,
                    r.scrape_ts,
                )
            )
    return out


def exemplar_churn_families(cycle: int):
    """Exemplar-carrying payload whose structure and exemplars churn."""
    fam = exposition.MetricFamily("req_total", type="counter")
    fam.add(
        float(cycle * 10),
        exemplar=Exemplar({"trace_id": f"{cycle:032x}"}, 1.0),
        path='we"ird\\x,y}{',
    )
    buckets = exposition.MetricFamily("lat_bucket", type="counter")
    buckets.add(
        float(cycle),
        exemplar=Exemplar({"trace_id": f"{cycle + 100:032x}"}, 0.5, 7.0 * cycle),
        le="1.0",
    )
    # a bucket whose exemplar never changes: dup-dropped identically
    buckets.add(2.0, exemplar=Exemplar({"trace_id": "ff" * 16}, math.nan, 3.0), le="+Inf")
    if cycle % 2 == 0:
        extra = exposition.MetricFamily("churn_total", type="counter")
        extra.add(1.0, exemplar=Exemplar({}, -math.inf), uuid=f"job-{cycle}")
        fam2 = [fam, buckets, extra]
    else:
        fam2 = [fam, buckets]
    return fam2


def run_exemplar_cycles(use_cache: bool, cycles: int = 6, delete_at: int | None = None):
    db = TSDB()
    db.exemplars.per_series = 3  # force per-series eviction in the run
    manager = ScrapeManager(db, ScrapeConfig(use_cache=use_cache))
    state = {"n": -1}

    def families():
        state["n"] += 1
        return exemplar_churn_families(state["n"])

    manager.add_target(
        ScrapeTarget(app=make_exporter(families), instance="n0:9010", job="ceems")
    )
    for i in range(cycles):
        if delete_at is not None and i == delete_at:
            db.delete_series([Matcher.eq("__name__", "lat_bucket")])
        manager.scrape_all(now=15.0 * (i + 1))
    return db


class TestExemplarDifferential:
    def test_bit_identical_across_churn_and_ring_eviction(self):
        ref = run_exemplar_cycles(use_cache=False)
        fast = run_exemplar_cycles(use_cache=True)
        assert dump_exemplars(ref) == dump_exemplars(fast)
        assert ref.exemplars.appended_total == fast.exemplars.appended_total
        assert ref.exemplars.dropped_total == fast.exemplars.dropped_total
        assert dump_exemplars(ref)  # non-vacuous

    def test_bit_identical_across_series_deletion(self):
        ref = run_exemplar_cycles(use_cache=False, delete_at=3)
        fast = run_exemplar_cycles(use_cache=True, delete_at=3)
        assert dump_exemplars(ref) == dump_exemplars(fast)

    def test_bit_identical_for_list_head_layout(self):
        def run(use_cache):
            db = TSDB(head_layout="list")
            manager = ScrapeManager(db, ScrapeConfig(use_cache=use_cache))
            state = {"n": -1}

            def families():
                state["n"] += 1
                return exemplar_churn_families(state["n"])

            manager.add_target(
                ScrapeTarget(app=make_exporter(families), instance="i", job="j")
            )
            for i in range(4):
                manager.scrape_all(now=15.0 * (i + 1))
            return db

        assert dump_exemplars(run(False)) == dump_exemplars(run(True))

    def test_doubly_malformed_line_same_error_both_paths(self):
        """Bad sample value AND bad exemplar: the sample error wins on
        both lanes (error-ordering parity)."""
        line = 'm{a="b"} notafloat # {trace_id="x" 1'
        with pytest.raises(ScrapeError) as ref_err:
            exposition.parse_sample_line(line, 1)
        # Fast lane: warm the cache with a good line first, then feed
        # the malformed one through a scrape.
        db = TSDB()
        payloads = iter(
            ['m{a="b"} 1\n', 'm{a="b"} notafloat # {trace_id="x" 1\n']
        )
        app = App("fake")
        app.router.get("/metrics", lambda req: Response.text(next(payloads)))
        manager = ScrapeManager(db, ScrapeConfig(use_cache=True))
        target = ScrapeTarget(app=app, instance="i", job="j")
        manager.add_target(target)
        manager.scrape_all(now=15.0)
        manager.scrape_all(now=30.0)
        assert not target.last_scrape_ok
        assert str(ref_err.value).split(":", 1)[1] in repr(ref_err.value)

    def test_exemplar_self_telemetry_gauges(self):
        db = run_exemplar_cycles(use_cache=True, cycles=3)
        manager = ScrapeManager(db, ScrapeConfig())
        telemetry = Telemetry("t")
        manager.register_metrics(telemetry.registry)
        text = telemetry.render()
        assert "ceems_exemplars_appended_total" in text
        assert "ceems_exemplars_dropped_total" in text
        assert f"ceems_exemplar_storage_exemplars {len(db.exemplars)}" in text
