"""Tests for the self-telemetry subsystem (repro.obs).

Covers the metrics registry (exposition-compatible rendering,
histogram bucket semantics), the traceparent codec and span store
bounds, the HTTP middleware instrumentation, and the observability
satellites (exporter collector health, LB readiness, the
histogram_quantile PromQL function both evaluators share).
"""

import json
import math

import pytest

from repro.common.errors import CEEMSError
from repro.common.httpx import App, Request, Response
from repro.obs import (
    MetricsRegistry,
    SpanStore,
    Telemetry,
    TraceContext,
    parse_traceparent,
)
from repro.obs.trace import Span, current_trace, make_span
from repro.tsdb import exposition
from repro.tsdb.model import Labels
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.promql.functions import histogram_bucket_quantile
from repro.tsdb.storage import TSDB


class TestRegistry:
    def test_counter_renders_exposition(self):
        r = MetricsRegistry()
        c = r.counter("reqs_total", "Requests.")
        c.inc(code="200")
        c.inc(2.0, code="500")
        text = r.render()
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{code="200"} 1' in text
        assert 'reqs_total{code="500"} 2' in text

    def test_counter_rejects_decrease(self):
        c = MetricsRegistry().counter("c")
        with pytest.raises(CEEMSError):
            c.inc(-1.0)

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("g")
        g.set(5.0)
        g.inc()
        g.dec(2.0)
        assert g.value() == 4.0

    def test_histogram_cumulative_buckets(self):
        r = MetricsRegistry()
        h = r.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)  # beyond the last bucket: +Inf only
        text = r.render()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1.0"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text
        assert h.sum() == pytest.approx(5.55)

    def test_histogram_boundary_lands_in_bucket(self):
        # Prometheus buckets are le (<=): an observation exactly on a
        # bound belongs to that bucket.
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        h.observe(1.0)
        text = exposition.render(h.collect())
        assert 'h_bucket{le="1.0"} 1' in text

    def test_histogram_families_parse_as_series(self):
        r = MetricsRegistry()
        h = r.histogram("lat", buckets=(0.1,))
        h.observe(0.05, handler="/q")
        families = exposition.parse(r.render())
        names = {f.name for f in families}
        assert {"lat_bucket", "lat_sum", "lat_count"} <= names

    def test_get_or_create_and_type_clash(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")
        with pytest.raises(CEEMSError):
            r.gauge("x")

    def test_gauge_func_and_collector(self):
        r = MetricsRegistry()
        r.gauge_func("cb", lambda: 7.0, type="counter", pool="hot")
        r.collector(
            lambda: [exposition.MetricFamily("extra", type="gauge")]
        )
        text = r.render()
        assert 'cb{pool="hot"} 7' in text
        assert r.names == ["cb"]


class TestTrace:
    def test_traceparent_roundtrip(self):
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        parsed = parse_traceparent(ctx.header_value())
        assert parsed == ctx

    @pytest.mark.parametrize(
        "value",
        [
            None,
            "",
            "00-zz-xx-01",
            "01-" + "ab" * 16 + "-" + "cd" * 8 + "-01",  # unknown version
            "00-" + "0" * 32 + "-" + "cd" * 8 + "-01",  # all-zero trace
            "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # all-zero span
            "00-" + "ab" * 16 + "-" + "cd" * 8,  # missing flags
        ],
    )
    def test_malformed_traceparent_degrades_to_none(self, value):
        assert parse_traceparent(value) is None

    def test_span_store_is_bounded(self):
        store = SpanStore(capacity=3)
        for i in range(10):
            store.record(
                Span(
                    trace_id=f"{i:032x}",
                    span_id=f"{i:016x}",
                    parent_id="",
                    name="op",
                    component="c",
                    start=0.0,
                )
            )
        assert len(store) == 3
        assert store.total_recorded == 10
        assert [s.trace_id for s in store.spans()] == [
            f"{i:032x}" for i in (7, 8, 9)
        ]

    def test_make_span_continues_parent(self):
        parent = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        span, ctx = make_span("op", "c", parent)
        assert span.trace_id == parent.trace_id
        assert span.parent_id == parent.span_id
        assert ctx.trace_id == parent.trace_id
        assert ctx.span_id == span.span_id != parent.span_id


class TestTelemetry:
    def test_span_roots_new_trace(self):
        t = Telemetry("comp")
        with t.span("work") as span:
            assert current_trace().trace_id == span.trace_id
        assert current_trace() is None
        assert [s.name for s in t.spans.spans()] == ["work"]

    def test_span_records_error_status(self):
        t = Telemetry("comp")
        with pytest.raises(ValueError):
            with t.span("bad"):
                raise ValueError("boom")
        assert t.spans.spans()[-1].status == "error"

    def test_child_span_noop_outside_trace(self):
        t = Telemetry("comp")
        with t.child_span("inner") as span:
            assert span is None
        assert len(t.spans) == 0

    def test_child_span_inside_trace(self):
        t = Telemetry("comp")
        with t.span("outer") as outer:
            with t.child_span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id


class TestMiddleware:
    @pytest.fixture
    def app(self) -> App:
        app = App("demo")
        app.expose_telemetry()
        app.router.get("/hello/{name}", lambda req: Response.text("hi"))
        app.router.get("/boom", lambda req: (_ for _ in ()).throw(RuntimeError("x")))
        return app

    def test_request_metrics_recorded(self, app):
        app.handle(Request(method="GET", path="/hello/bob"))
        app.handle(Request(method="GET", path="/hello/eve"))
        app.handle(Request(method="GET", path="/nowhere"))
        registry = app.telemetry.registry
        counter = registry.counter("ceems_http_requests_total")
        assert counter.value(method="GET", handler="/hello/{name}", code="200") == 2
        assert counter.value(method="GET", handler="(unrouted)", code="404") == 1
        hist = registry.histogram("ceems_http_request_duration_seconds")
        assert hist.count(handler="/hello/{name}") == 2

    def test_metrics_endpoint_serves_exposition(self, app):
        app.handle(Request(method="GET", path="/hello/bob"))
        resp = app.handle(Request(method="GET", path="/metrics"))
        assert resp.status == 200
        assert "version=0.0.4" in resp.headers["content-type"]
        assert "ceems_http_requests_total" in resp.body.decode()

    def test_incoming_traceparent_is_continued(self, app):
        trace_id = "ab" * 16
        header = f"00-{trace_id}-{'cd' * 8}-01"
        resp = app.handle(
            Request(method="GET", path="/hello/bob", headers={"traceparent": header})
        )
        assert resp.headers["x-trace-id"] == trace_id
        span = app.telemetry.spans.spans()[-1]
        assert span.trace_id == trace_id
        assert span.parent_id == "cd" * 8

    def test_new_trace_minted_at_edge(self, app):
        resp = app.handle(Request(method="GET", path="/hello/bob"))
        assert len(resp.headers["x-trace-id"]) == 32
        span = app.telemetry.spans.spans()[-1]
        assert span.parent_id == ""

    def test_server_error_span_status(self, app):
        # The in-process model propagates handler exceptions (so test
        # failures surface at the call site); the middleware still
        # records the span as an error before re-raising.
        with pytest.raises(RuntimeError):
            app.handle(Request(method="GET", path="/boom"))
        span = app.telemetry.spans.spans()[-1]
        assert span.status == "error"
        assert span.attrs["status"] == 500
        counter = app.telemetry.registry.counter("ceems_http_requests_total")
        assert counter.value(method="GET", handler="/boom", code="500") == 1

    def test_debug_traces_endpoint(self, app):
        header = f"00-{'ab' * 16}-{'cd' * 8}-01"
        app.handle(Request(method="GET", path="/hello/bob", headers={"traceparent": header}))
        resp = app.handle(
            Request(method="GET", path="/debug/traces", query={"trace_id": ["ab" * 16]})
        )
        payload = json.loads(resp.body.decode())
        assert payload["component"] == "demo"
        assert [s["trace_id"] for s in payload["spans"]] == ["ab" * 16]


def mk(name: str, **labels: str) -> Labels:
    return Labels({"__name__": name, **labels})


class TestHistogramQuantile:
    @pytest.fixture
    def db(self) -> TSDB:
        db = TSDB()
        # Two instances with constant cumulative bucket counts.
        counts = {"0.1": 10.0, "0.5": 55.0, "1.0": 60.0, "+Inf": 60.0}
        for t in (0.0, 15.0, 30.0):
            for le, count in counts.items():
                db.append(mk("lat_bucket", instance="a", le=le), t, count)
                db.append(mk("lat_bucket", instance="b", le=le), t, count / 2.0)
        return db

    def test_helper_linear_interpolation(self):
        buckets = [(0.1, 10.0), (0.5, 55.0), (1.0, 60.0), (math.inf, 60.0)]
        # rank 30 falls in (0.1, 0.5]: 0.1 + 0.4 * (30-10)/45
        assert histogram_bucket_quantile(0.5, buckets) == pytest.approx(
            0.1 + 0.4 * 20.0 / 45.0
        )
        # q=0 interpolates from the start of the first bucket (0 for
        # positive bounds), matching Prometheus bucketQuantile.
        assert histogram_bucket_quantile(0.0, buckets) == pytest.approx(0.0)
        assert histogram_bucket_quantile(1.0, buckets) == pytest.approx(1.0)

    def test_helper_edge_cases(self):
        assert math.isnan(histogram_bucket_quantile(0.5, []))
        assert math.isnan(histogram_bucket_quantile(0.5, [(0.1, 1.0)]))  # no +Inf
        assert math.isnan(histogram_bucket_quantile(math.nan, [(math.inf, 1.0)]))
        assert histogram_bucket_quantile(-0.1, [(math.inf, 1.0)]) == -math.inf
        assert histogram_bucket_quantile(1.1, [(math.inf, 1.0)]) == math.inf
        # everything in +Inf: best answer is the highest finite bound
        assert histogram_bucket_quantile(0.9, [(0.5, 0.0), (math.inf, 10.0)]) == 0.5

    def test_instant_query_groups_by_identity(self, db):
        engine = PromQLEngine(db)
        result = engine.query("histogram_quantile(0.5, lat_bucket)", at=30.0)
        values = {el.labels.get("instance"): el.value for el in result.vector}
        expected = 0.1 + 0.4 * 20.0 / 45.0
        assert values["a"] == pytest.approx(expected)
        assert values["b"] == pytest.approx(expected)  # same shape, half counts
        assert all("le" not in el.labels.as_dict() for el in result.vector)

    def test_columnar_matches_per_step(self, db):
        engine = PromQLEngine(db)
        expr = "histogram_quantile(0.9, lat_bucket)"
        ref = engine.query_range(expr, 0.0, 30.0, 15.0, strategy="per_step")
        col = engine.query_range(expr, 0.0, 30.0, 15.0, strategy="columnar")
        assert set(ref.series) == set(col.series)
        for labels in ref.series:
            r_ts, r_vs = ref.series[labels]
            c_ts, c_vs = col.series[labels]
            assert r_ts.tolist() == c_ts.tolist()
            assert r_vs.tolist() == c_vs.tolist()

    def test_unparseable_le_ignored(self, db):
        db.append(mk("lat_bucket", instance="a", le="junk"), 30.0, 99.0)
        engine = PromQLEngine(db)
        result = engine.query("histogram_quantile(0.5, lat_bucket)", at=30.0)
        assert len(result.vector) == 2  # the junk row creates no group


class TestExporterCollectorHealth:
    def test_errors_and_last_success_exposed(self):
        from repro.common.clock import SimClock
        from repro.common.config import ExporterConfig
        from repro.exporter import CEEMSExporter
        from repro.exporter.collector import Collector
        from repro.hwsim import NodeSpec, SimulatedNode

        clock = SimClock()
        node = SimulatedNode(NodeSpec(name="obs-test"), seed=1)
        exporter = CEEMSExporter(
            node, clock, ExporterConfig(collectors=("node", "self"))
        )

        class FailingCollector(Collector):
            name = "failing"

            def collect(self, now):
                raise RuntimeError("broken source")

        exporter.registry.register(FailingCollector())
        # First scrape records the failure; the second exposes it via
        # the self collector (which reads the previous pass).
        exporter.app.handle(Request(method="GET", path="/metrics"))
        resp = exporter.app.handle(Request(method="GET", path="/metrics"))
        text = resp.body.decode()
        assert 'ceems_exporter_collector_errors_total{collector="failing"} 1' in text
        assert 'ceems_exporter_collector_last_scrape_success{collector="failing"} 0' in text
        assert 'ceems_exporter_collector_last_scrape_success{collector="node"} 1' in text
        # middleware metrics ride along in the scrape payload
        assert "ceems_http_requests_total" in text


class TestLBReadiness:
    @pytest.fixture
    def lb(self):
        from repro.lb.authz import Authorizer
        from repro.lb.server import LoadBalancer
        from repro.lb.strategies import Backend

        class AllowAll(Authorizer):
            def _check(self, user, uuids):
                return True

        api = App("backend")
        api.router.get("/-/healthy", lambda _req: Response.text("ok"))
        backend = Backend(name="b0", app=api)
        return LoadBalancer([backend], AllowAll())

    def test_ready_when_backend_healthy(self, lb):
        resp = lb.app.handle(Request(method="GET", path="/-/ready"))
        assert resp.status == 200

    def test_ready_503_when_no_healthy_backend(self, lb):
        lb.strategy.backends[0].healthy = False
        resp = lb.app.handle(Request(method="GET", path="/-/ready"))
        assert resp.status == 503

    def test_backend_metrics_exposed(self, lb):
        resp = lb.app.handle(Request(method="GET", path="/metrics"))
        text = resp.body.decode()
        assert 'ceems_lb_backend_healthy{backend="b0",pool="hot"} 1' in text
        assert "ceems_lb_requests_proxied_total 0" in text
