"""Unit tests for the simulation clock and timer queue."""

import pytest

from repro.common.clock import SimClock, WallClock


class TestSimClockBasics:
    def test_initial_time(self):
        assert SimClock(start=100.0).now() == 100.0

    def test_default_start_is_2024(self):
        assert SimClock().now() == SimClock.DEFAULT_START

    def test_advance_moves_time(self):
        clock = SimClock(start=0.0)
        clock.advance(10.0)
        assert clock.now() == 10.0

    def test_advance_backwards_rejected(self):
        clock = SimClock(start=0.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.advance_to(-5.0)


class TestPeriodicTimers:
    def test_fires_on_interval(self):
        clock = SimClock(start=0.0)
        fired = []
        clock.every(10.0, fired.append)
        clock.advance(35.0)
        assert fired == [10.0, 20.0, 30.0]

    def test_callback_sees_scheduled_time(self):
        clock = SimClock(start=0.0)
        seen = []
        clock.every(7.0, lambda now: seen.append((now, clock.now())))
        clock.advance(7.0)
        assert seen == [(7.0, 7.0)]

    def test_first_at_override(self):
        clock = SimClock(start=0.0)
        fired = []
        clock.every(10.0, fired.append, first_at=3.0)
        clock.advance(25.0)
        assert fired == [3.0, 13.0, 23.0]

    def test_no_drift_over_long_run(self):
        clock = SimClock(start=0.0)
        fired = []
        clock.every(0.7, fired.append)
        clock.advance(700.0)
        # Reschedule-from-scheduled-time: no cumulative drift beyond
        # float rounding (the 1000th firing may land an ulp past 700).
        assert len(fired) in (999, 1000)
        assert fired[-1] == pytest.approx(700.0, abs=0.7)
        deltas = [b - a for a, b in zip(fired, fired[1:])]
        assert max(deltas) == pytest.approx(0.7, abs=1e-9)

    def test_zero_interval_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.every(0.0, lambda now: None)

    def test_cancel_stops_firings(self):
        clock = SimClock(start=0.0)
        fired = []
        handle = clock.every(5.0, fired.append)
        clock.advance(12.0)
        handle.cancel()
        clock.advance(20.0)
        assert fired == [5.0, 10.0]
        assert handle.cancelled

    def test_cancel_from_within_callback(self):
        clock = SimClock(start=0.0)
        fired = []
        handle = clock.every(5.0, lambda now: (fired.append(now), handle.cancel()))
        clock.advance(30.0)
        assert fired == [5.0]


class TestOneShotTimers:
    def test_fires_once(self):
        clock = SimClock(start=0.0)
        fired = []
        clock.at(4.0, fired.append)
        clock.advance(20.0)
        assert fired == [4.0]

    def test_past_scheduling_rejected(self):
        clock = SimClock(start=10.0)
        with pytest.raises(ValueError):
            clock.at(5.0, lambda now: None)

    def test_chained_reschedule(self):
        """A one-shot that re-registers itself acts like a jittered loop."""
        clock = SimClock(start=0.0)
        fired = []

        def step(now):
            fired.append(now)
            if now < 30:
                clock.at(now + 10.0, step)

        clock.at(10.0, step)
        clock.advance(100.0)
        assert fired == [10.0, 20.0, 30.0]


class TestOrdering:
    def test_tie_break_by_registration_order(self):
        clock = SimClock(start=0.0)
        order = []
        clock.every(10.0, lambda now: order.append("a"))
        clock.every(10.0, lambda now: order.append("b"))
        clock.advance(10.0)
        assert order == ["a", "b"]

    def test_interleaving_respects_timestamps(self):
        clock = SimClock(start=0.0)
        order = []
        clock.every(3.0, lambda now: order.append(("x", now)))
        clock.every(5.0, lambda now: order.append(("y", now)))
        clock.advance(15.0)
        assert order == [
            ("x", 3.0),
            ("y", 5.0),
            ("x", 6.0),
            ("x", 9.0),
            ("y", 10.0),
            ("x", 12.0),
            ("x", 15.0),
            ("y", 15.0),
        ]

    def test_advance_returns_fire_count(self):
        clock = SimClock(start=0.0)
        clock.every(1.0, lambda now: None)
        assert clock.advance(10.0) == 10

    def test_pending_counts_live_timers(self):
        clock = SimClock(start=0.0)
        h1 = clock.every(1.0, lambda now: None)
        clock.at(5.0, lambda now: None)
        assert clock.pending() == 2
        h1.cancel()
        assert clock.pending() == 1


class TestWallClock:
    def test_returns_float_time(self):
        import time

        before = time.time()
        now = WallClock().now()
        after = time.time()
        assert before <= now <= after
