"""Tests for the cgroup pseudo-filesystem."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.hwsim.cgroupfs import Cgroup, CgroupFS, parse_cpuset, _format_cpuset


class TestHierarchy:
    def test_create_and_get(self):
        fs = CgroupFS()
        fs.create("/system.slice/slurmstepd.scope/job_1")
        assert fs.exists("/system.slice/slurmstepd.scope/job_1")
        assert fs.get("/system.slice/slurmstepd.scope/job_1").path.endswith("job_1")

    def test_create_makes_ancestors(self):
        fs = CgroupFS()
        fs.create("/a/b/c")
        assert fs.exists("/a")
        assert fs.exists("/a/b")

    def test_get_missing_raises(self):
        fs = CgroupFS()
        with pytest.raises(SimulationError, match="no such cgroup"):
            fs.get("/nope")

    def test_delete_leaf(self):
        fs = CgroupFS()
        fs.create("/a/b")
        fs.delete("/a/b")
        assert not fs.exists("/a/b")
        assert fs.exists("/a")

    def test_delete_with_children_rejected(self):
        """Kernel rule: a populated cgroup directory cannot be removed."""
        fs = CgroupFS()
        fs.create("/a/b")
        with pytest.raises(SimulationError, match="has children"):
            fs.delete("/a")

    def test_delete_missing_raises(self):
        fs = CgroupFS()
        with pytest.raises(SimulationError):
            fs.delete("/ghost")

    def test_create_with_attrs(self):
        fs = CgroupFS()
        cg = fs.create("/a", memory_limit=1024, cpuset_cpus=(0, 1))
        assert cg.memory_limit == 1024
        assert cg.cpuset_cpus == (0, 1)

    def test_create_with_unknown_attr_rejected(self):
        fs = CgroupFS()
        with pytest.raises(SimulationError, match="unknown cgroup attribute"):
            fs.create("/a", quantum_flux=3)

    def test_walk_depth_first_sorted(self):
        fs = CgroupFS()
        for path in ("/b/x", "/a/y", "/a/z"):
            fs.create(path)
        paths = [c.path for c in fs.walk()]
        assert paths == ["/a", "/a/y", "/a/z", "/b", "/b/x"]

    def test_leaves_only(self):
        fs = CgroupFS()
        fs.create("/a/b")
        fs.create("/a/c")
        assert sorted(c.path for c in fs.leaves()) == ["/a/b", "/a/c"]


class TestAccounting:
    def test_cpu_charge_accumulates(self):
        cg = Cgroup(path="/j")
        cg.charge_cpu(user_usec=900, system_usec=100)
        cg.charge_cpu(user_usec=900, system_usec=100)
        assert cg.usage_usec == 2000
        assert cg.user_usec == 1800
        assert cg.system_usec == 200

    def test_negative_charge_rejected(self):
        cg = Cgroup(path="/j")
        with pytest.raises(SimulationError):
            cg.charge_cpu(user_usec=-1, system_usec=0)

    def test_memory_peak_tracks_maximum(self):
        cg = Cgroup(path="/j")
        cg.set_memory(100)
        cg.set_memory(500)
        cg.set_memory(200)
        assert cg.memory_current == 200
        assert cg.memory_peak == 500

    def test_memory_limit_oom_clamp(self):
        """Usage above the limit clamps and records an OOM event."""
        cg = Cgroup(path="/j", memory_limit=1000)
        cg.set_memory(1500)
        assert cg.memory_current == 1000
        assert cg.memory_oom_events == 1

    def test_io_charging(self):
        cg = Cgroup(path="/j")
        cg.charge_io("259:0", rbytes=100, wbytes=50, rios=2, wios=1)
        cg.charge_io("259:0", rbytes=100)
        assert cg.io["259:0"].rbytes == 200
        assert cg.io["259:0"].wbytes == 50


class TestKernelFileFormats:
    def test_cpu_stat_format(self):
        cg = Cgroup(path="/j")
        cg.charge_cpu(user_usec=920_000, system_usec=80_000)
        text = cg.files()["cpu.stat"]
        assert "usage_usec 1000000\n" in text
        assert "user_usec 920000\n" in text
        assert "system_usec 80000\n" in text

    def test_memory_files(self):
        cg = Cgroup(path="/j", memory_limit=2048)
        cg.set_memory(1024)
        files = cg.files()
        assert files["memory.current"] == "1024\n"
        assert files["memory.peak"] == "1024\n"
        assert files["memory.max"] == "2048\n"

    def test_memory_max_unlimited(self):
        assert Cgroup(path="/j").files()["memory.max"] == "max\n"

    def test_io_stat_format(self):
        cg = Cgroup(path="/j")
        cg.charge_io("259:0", rbytes=10, wbytes=20, rios=1, wios=2)
        line = cg.files()["io.stat"].strip()
        assert line.startswith("259:0 ")
        assert "rbytes=10" in line and "wbytes=20" in line

    def test_pids_files(self):
        cg = Cgroup(path="/j", pids_current=7)
        files = cg.files()
        assert files["pids.current"] == "7\n"
        assert files["pids.max"] == "max\n"

    def test_cpu_max_quota(self):
        cg = Cgroup(path="/j", cpu_quota_usec=400000)
        assert cg.files()["cpu.max"] == "400000 100000\n"

    def test_read_through_fs(self):
        fs = CgroupFS()
        fs.create("/j", pids_current=3)
        assert fs.read("/j", "pids.current") == "3\n"
        with pytest.raises(SimulationError, match="no file"):
            fs.read("/j", "bogus.file")

    def test_v1_compat_view(self):
        cg = Cgroup(path="/j")
        cg.charge_cpu(user_usec=1_000_000, system_usec=0)
        cg.set_memory(4096)
        v1 = cg.v1_files()
        assert v1["cpuacct/cpuacct.usage"] == "1000000000\n"  # nanoseconds
        assert v1["memory/memory.usage_in_bytes"] == "4096\n"


class TestCpusetFormatting:
    @pytest.mark.parametrize(
        "cpus,expected",
        [
            ((), ""),
            ((0,), "0"),
            ((0, 1, 2, 3), "0-3"),
            ((0, 2, 4), "0,2,4"),
            ((0, 1, 2, 8, 10, 11), "0-2,8,10-11"),
        ],
    )
    def test_format(self, cpus, expected):
        assert _format_cpuset(cpus) == expected

    @given(st.frozensets(st.integers(min_value=0, max_value=255), max_size=64))
    def test_roundtrip_property(self, cpus):
        formatted = _format_cpuset(tuple(cpus))
        assert parse_cpuset(formatted) == tuple(sorted(cpus))
