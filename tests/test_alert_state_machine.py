"""The AlertingRule ``for``-hold state machine under irregular
evaluation cadences, plus a hypothesis property: firing never
precedes ``for`` seconds of continuously-observed truth."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tsdb.alerts import AlertingRule, AlertState
from repro.tsdb.model import Labels
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.storage import TSDB

LOOKBACK = 300.0


def make_engine(db: TSDB) -> PromQLEngine:
    return PromQLEngine(db, lookback=LOOKBACK)


def set_cond(db: TSDB, at: float, value: float) -> None:
    db.append(Labels({"__name__": "cond", "instance": "n0"}), at, value)


class TestForHoldStateMachine:
    def make_rule(self, hold: float = 60.0) -> AlertingRule:
        return AlertingRule(name="CondHigh", expr="cond == 1", hold=hold)

    def test_pending_then_firing_then_resolved_then_repending(self):
        db = TSDB()
        engine = make_engine(db)
        rule = self.make_rule(hold=60.0)

        # condition true from t=0: first evaluation marks pending
        set_cond(db, 0.0, 1.0)
        assert rule.evaluate(engine, 0.0) == []
        assert rule.state is AlertState.PENDING
        assert rule.pending_count == 1 and rule.firing_count == 0

        # still inside the hold window — no transition
        assert rule.evaluate(engine, 30.0) == []
        assert rule.state is AlertState.PENDING

        # hold elapsed: fires, active_since is the first true observation
        set_cond(db, 60.0, 1.0)
        transitions = rule.evaluate(engine, 65.0)
        assert [t.state for t in transitions] == [AlertState.FIRING]
        assert transitions[0].active_since == 0.0
        assert transitions[0].fired_at == 65.0
        assert rule.state is AlertState.FIRING

        # no re-fire while the condition keeps holding
        assert rule.evaluate(engine, 90.0) == []

        # condition clears: resolve
        set_cond(db, 95.0, 0.0)
        transitions = rule.evaluate(engine, 100.0)
        assert [t.state for t in transitions] == [AlertState.RESOLVED]
        assert rule.state is None

        # condition returns: the hold restarts from the new observation
        set_cond(db, 110.0, 1.0)
        assert rule.evaluate(engine, 112.0) == []
        assert rule.state is AlertState.PENDING
        assert rule.evaluate(engine, 150.0) == []  # 38 s < hold
        transitions = rule.evaluate(engine, 172.5)
        assert [t.state for t in transitions] == [AlertState.FIRING]
        assert transitions[0].active_since == 112.0

    def test_irregular_intervals_do_not_shortcut_the_hold(self):
        """A sparse cadence may fire *late*, never early."""
        db = TSDB()
        engine = make_engine(db)
        rule = self.make_rule(hold=120.0)
        set_cond(db, 0.0, 1.0)
        assert rule.evaluate(engine, 5.0) == []
        # a long gap: next evaluation long after the hold elapsed
        set_cond(db, 290.0, 1.0)
        transitions = rule.evaluate(engine, 291.0)
        assert [t.state for t in transitions] == [AlertState.FIRING]
        assert transitions[0].fired_at - transitions[0].active_since >= 120.0

    def test_flap_between_evaluations_restarts_hold(self):
        """A false observation between true ones restarts the clock."""
        db = TSDB()
        engine = make_engine(db)
        rule = self.make_rule(hold=60.0)
        set_cond(db, 0.0, 1.0)
        rule.evaluate(engine, 0.0)
        set_cond(db, 20.0, 0.0)  # dips
        assert rule.evaluate(engine, 25.0) == []  # cleared while pending
        assert rule.state is None
        set_cond(db, 30.0, 1.0)  # recovers
        rule.evaluate(engine, 35.0)
        # 0→65 would satisfy the hold, but truth was not continuous
        assert rule.evaluate(engine, 65.0) == []
        assert rule.state is AlertState.PENDING
        transitions = rule.evaluate(engine, 96.0)
        assert [t.state for t in transitions] == [AlertState.FIRING]
        assert transitions[0].active_since == 35.0

    def test_zero_hold_fires_on_first_observation(self):
        db = TSDB()
        engine = make_engine(db)
        rule = self.make_rule(hold=0.0)
        set_cond(db, 0.0, 1.0)
        transitions = rule.evaluate(engine, 1.0)
        assert [t.state for t in transitions] == [AlertState.FIRING]


def _observed_true(samples: list[tuple[float, float]], at: float) -> bool:
    """Replicate instant-selector semantics for the 0/1 ``cond``
    series: latest non-stale sample within the lookback, == 1."""
    latest = None
    for ts, value in samples:
        if ts <= at and at - ts <= LOOKBACK:
            latest = value
    return latest is not None and not math.isnan(latest) and latest == 1.0


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.booleans(), min_size=1, max_size=30),
    deltas=st.lists(
        st.floats(min_value=1.0, max_value=90.0, allow_nan=False), min_size=1, max_size=40
    ),
    hold=st.sampled_from([0.0, 30.0, 61.0, 97.0]),
)
def test_firing_never_precedes_hold_of_continuous_truth(values, deltas, hold):
    """Property: whenever the rule fires, every evaluation over the
    preceding ``hold`` seconds observed the condition true, and the
    first of those observations is at least ``hold`` seconds old."""
    db = TSDB()
    engine = make_engine(db)
    rule = AlertingRule(name="CondHigh", expr="cond == 1", hold=hold)

    samples = [(i * 15.0, 1.0 if v else 0.0) for i, v in enumerate(values)]
    for ts, value in samples:
        set_cond(db, ts, value)

    eval_times = []
    t = 0.0
    for d in deltas:
        t += d
        eval_times.append(t)

    true_since = None  # earliest eval time of the current true streak
    for now in eval_times:
        observed = _observed_true(samples, now)
        transitions = rule.evaluate(engine, now)
        if observed and true_since is None:
            true_since = now
        elif not observed:
            true_since = None
        for tr in transitions:
            if tr.state is AlertState.FIRING:
                assert true_since is not None, "fired without an observed-true streak"
                assert now - true_since >= hold, (
                    f"fired after {now - true_since}s of observed truth, hold={hold}"
                )
