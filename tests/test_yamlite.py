"""Tests for the YAML-subset configuration parser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import yamlite
from repro.common.errors import ConfigError


class TestScalars:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("key: 42", {"key": 42}),
            ("key: -7", {"key": -7}),
            ("key: 3.14", {"key": 3.14}),
            ("key: 1e3", {"key": 1000.0}),
            ("key: true", {"key": True}),
            ("key: false", {"key": False}),
            ("key: null", {"key": None}),
            ("key: ~", {"key": None}),
            ("key: hello", {"key": "hello"}),
            ('key: "quoted: string"', {"key": "quoted: string"}),
            ("key: 'single'", {"key": "single"}),
            ('key: "with \\"escape\\""', {"key": 'with "escape"'}),
            ("key: 15s", {"key": "15s"}),  # durations stay strings
        ],
    )
    def test_scalar_parsing(self, text, expected):
        assert yamlite.loads(text) == expected

    def test_empty_document(self):
        assert yamlite.loads("") is None
        assert yamlite.loads("\n\n  \n") is None

    def test_document_separator_tolerated(self):
        assert yamlite.loads("---\nkey: 1") == {"key": 1}


class TestComments:
    def test_full_line_comment(self):
        assert yamlite.loads("# a comment\nkey: 1") == {"key": 1}

    def test_trailing_comment(self):
        assert yamlite.loads("key: 1  # trailing") == {"key": 1}

    def test_hash_inside_quotes_kept(self):
        assert yamlite.loads('key: "a#b"') == {"key": "a#b"}


class TestNesting:
    def test_nested_mapping(self):
        doc = """
parent:
  child: 1
  other:
    deep: yes_string
"""
        assert yamlite.loads(doc) == {"parent": {"child": 1, "other": {"deep": "yes_string"}}}

    def test_empty_value_is_none(self):
        assert yamlite.loads("a:\nb: 2") == {"a": None, "b": 2}

    def test_sequence_of_scalars(self):
        doc = """
items:
  - 1
  - two
  - 3.0
"""
        assert yamlite.loads(doc) == {"items": [1, "two", 3.0]}

    def test_sequence_of_mappings(self):
        doc = """
targets:
  - name: a
    port: 1
  - name: b
    port: 2
"""
        assert yamlite.loads(doc) == {
            "targets": [{"name": "a", "port": 1}, {"name": "b", "port": 2}]
        }

    def test_flow_sequence(self):
        assert yamlite.loads("xs: [1, 2, three]") == {"xs": [1, 2, "three"]}

    def test_empty_flow_sequence(self):
        assert yamlite.loads("xs: []") == {"xs": []}

    def test_nested_flow_sequence(self):
        assert yamlite.loads("xs: [[1, 2], [3]]") == {"xs": [[1, 2], [3]]}

    def test_top_level_sequence(self):
        assert yamlite.loads("- 1\n- 2") == [1, 2]

    def test_url_value_with_colon(self):
        assert yamlite.loads("url: http://example.com:9090/path") == {
            "url": "http://example.com:9090/path"
        }


class TestErrors:
    def test_duplicate_key_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            yamlite.loads("a: 1\na: 2")

    def test_tabs_rejected(self):
        with pytest.raises(ConfigError, match="tabs"):
            yamlite.loads("a:\n\tb: 1")

    def test_anchor_rejected(self):
        with pytest.raises(ConfigError, match="anchors"):
            yamlite.loads("a: &anchor 1")

    def test_flow_mapping_rejected(self):
        with pytest.raises(ConfigError, match="flow mappings"):
            yamlite.loads("a: {b: 1}")

    def test_block_scalar_rejected(self):
        with pytest.raises(ConfigError, match="block scalars"):
            yamlite.loads("a: |\n  text")

    def test_bad_indent_rejected(self):
        with pytest.raises(ConfigError):
            yamlite.loads("a: 1\n   b: 2")


class TestDumps:
    def test_simple_roundtrip(self):
        doc = {"a": 1, "b": "text", "c": [1, 2], "d": {"e": True, "f": None}}
        assert yamlite.loads(yamlite.dumps(doc)) == doc

    def test_sequence_of_mappings_roundtrip(self):
        doc = {"targets": [{"name": "a", "port": 1}, {"name": "b", "port": 2}]}
        assert yamlite.loads(yamlite.dumps(doc)) == doc

    def test_quoting_of_tricky_strings(self):
        doc = {"a": "15s", "b": "true", "c": "with: colon", "d": "1.5"}
        reparsed = yamlite.loads(yamlite.dumps(doc))
        # values that look like other types must survive as strings
        assert reparsed == doc


# Strategy for round-trippable documents.
_scalars = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.booleans(),
    st.none(),
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters=" _"),
        min_size=1,
        max_size=20,
    ).map(str.strip).filter(bool),
)
_keys = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_"),
    min_size=1,
    max_size=12,
)
_docs = st.recursive(
    st.dictionaries(_keys, _scalars, min_size=1, max_size=4),
    lambda children: st.dictionaries(_keys, st.one_of(_scalars, children, st.lists(_scalars, min_size=1, max_size=4)), min_size=1, max_size=4),
    max_leaves=12,
)


@given(_docs)
def test_dumps_loads_roundtrip_property(doc):
    assert yamlite.loads(yamlite.dumps(doc)) == doc
