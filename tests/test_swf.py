"""Tests for the SWF trace reader/converter/replayer."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import SimulationError
from repro.hwsim import NodeSpec, SimulatedNode
from repro.resourcemgr.slurm import SlurmCluster
from repro.resourcemgr.swf import (
    SWFJob,
    parse_swf,
    replay,
    to_job_specs,
    write_swf,
)

SAMPLE = """\
; Computer: Test Cluster
; Format: SWF v2.2
1 0 10 3600 64 3200 1048576 64 7200 -1 1 3 2 5 1 1 -1 -1
2 120 0 600 4 540 524288 4 1200 -1 1 7 2 9 1 1 -1 -1
3 300 30 86400 128 60000 2097152 128 90000 -1 0 3 2 5 1 1 -1 -1
"""


class TestParse:
    def test_parses_records(self):
        jobs = parse_swf(SAMPLE)
        assert len(jobs) == 3
        assert jobs[0].job_id == 1
        assert jobs[0].allocated_procs == 64
        assert jobs[0].run_time == 3600.0
        assert jobs[2].status == 0  # failed

    def test_comments_skipped(self):
        assert len(parse_swf("; only comments\n;\n")) == 0

    def test_wrong_field_count_rejected(self):
        with pytest.raises(SimulationError, match="18 fields"):
            parse_swf("1 2 3\n")

    def test_non_numeric_rejected(self):
        bad = SAMPLE.replace("3600", "abc", 1)
        with pytest.raises(SimulationError, match="non-numeric"):
            parse_swf(bad)

    def test_cpu_utilisation(self):
        jobs = parse_swf(SAMPLE)
        assert jobs[0].cpu_utilisation == pytest.approx(3200 / 3600)
        missing = SWFJob(
            job_id=9, submit_time=0, wait_time=0, run_time=100, allocated_procs=1,
            avg_cpu_time=-1, used_memory_kb=-1, requested_procs=1, requested_time=200,
            requested_memory_kb=-1, status=1, user_id=1, group_id=1, executable=1,
            queue=1, partition=1, preceding_job=-1, think_time=-1,
        )
        assert missing.cpu_utilisation == 0.75

    def test_roundtrip(self):
        jobs = parse_swf(SAMPLE)
        assert parse_swf(write_swf(jobs)) == jobs


class TestConversion:
    def test_single_node_job(self):
        jobs = parse_swf(SAMPLE)
        specs = to_job_specs(jobs, cores_per_node=64)
        submit, spec = specs[0]
        assert submit == 0.0
        assert spec.nnodes == 1 and spec.ncores == 64
        assert spec.user == "user003"
        assert spec.account == "group02"
        assert spec.duration == 3600.0

    def test_multi_node_mapping(self):
        jobs = parse_swf(SAMPLE)
        specs = to_job_specs(jobs, cores_per_node=64)
        _submit, big = specs[2]
        assert big.nnodes == 2 and big.ncores == 64  # 128 procs over 2 nodes

    def test_memory_from_trace(self):
        jobs = parse_swf(SAMPLE)
        _submit, spec = to_job_specs(jobs, cores_per_node=64)[0]
        # 1 GiB/proc * 64 procs
        assert spec.memory_bytes == 64 * 1024**3

    def test_profile_reproduces_trace_utilisation(self):
        jobs = parse_swf(SAMPLE)
        _submit, spec = to_job_specs(jobs, cores_per_node=64)[0]
        assert spec.profile.cpu_base == pytest.approx(3200 / 3600)

    def test_sorted_by_submit_time(self):
        jobs = list(reversed(parse_swf(SAMPLE)))
        specs = to_job_specs(jobs, cores_per_node=64)
        times = [t for t, _ in specs]
        assert times == sorted(times)


class TestReplay:
    def make_cluster(self):
        nodes = [SimulatedNode(NodeSpec(name=f"c{i}", cores_per_socket=32), seed=i) for i in range(4)]
        return SlurmCluster("swf", {"cpu": nodes})

    def test_jobs_submitted_at_trace_times(self):
        clock = SimClock(start=1000.0)
        cluster = self.make_cluster()
        specs = to_job_specs(parse_swf(SAMPLE), cores_per_node=64)
        scheduled = replay(clock, cluster, specs)
        assert scheduled == 3
        cluster.register_timer(clock, 30.0)
        clock.advance(50.0)
        assert cluster.jobs_submitted == 1  # only job 1 (t=0) so far
        clock.advance(300.0)
        assert cluster.jobs_submitted == 3

    def test_replayed_job_runs_to_trace_duration(self):
        clock = SimClock(start=0.0)
        cluster = self.make_cluster()
        specs = to_job_specs(parse_swf(SAMPLE), cores_per_node=64)
        replay(clock, cluster, specs)
        cluster.register_timer(clock, 30.0)
        clock.advance(1500.0)
        # job 2: submitted at 120, runs 600 s
        unit = [u for u in cluster.list_units(0, clock.now()) if u.name == "swf-2"][0]
        assert unit.state.value == "completed"
        assert unit.elapsed == pytest.approx(600.0, abs=30.0)

    def test_utilisation_fidelity_end_to_end(self):
        """The replayed job's cgroup CPU time matches the trace's."""
        clock = SimClock(start=0.0)
        cluster = self.make_cluster()
        for node in cluster.nodes.values():
            clock.every(15.0, lambda now, n=node: n.advance(now, 15.0))
        specs = to_job_specs(parse_swf(SAMPLE), cores_per_node=64)
        replay(clock, cluster, specs)
        cluster.register_timer(clock, 30.0)
        clock.advance(600.0)  # job swf-2 (t=120, 600 s) is still running
        unit = [u for u in cluster.list_units(0, clock.now()) if u.name == "swf-2"][0]
        node = cluster.nodes[unit.nodelist[0]]
        cg = node.cgroupfs.get(f"/system.slice/slurmstepd.scope/job_{unit.uuid}")
        elapsed = clock.now() - unit.started_at
        expected_usec = (540 / 600) * 4 * elapsed * 1e6  # util * cores * time
        assert cg.usage_usec == pytest.approx(expected_usec, rel=0.1)
