"""Tests for rules-file export and config-driven stack assembly."""

from repro.cluster import StackSimulation, small_topology
from repro.cluster.simulation import SimulationConfig
from repro.common.config import StackConfig
from repro.energy import NodeGroup, rules_for_group, standard_rule_groups
from repro.energy.export import (
    alerting_rules_to_dict,
    parse_rules_file,
    rule_group_to_dict,
    rules_file,
)
from repro.tsdb.alerts import ceems_alert_rules
from repro.tsdb.model import Labels
from repro.tsdb.rules import RuleManager
from repro.tsdb.storage import TSDB


class TestRulesExport:
    def test_group_dict_shape(self):
        group = rules_for_group(NodeGroup("intel-cpu", True, False, True), 30.0)
        d = rule_group_to_dict(group)
        assert d["name"] == "ceems-power-intel-cpu"
        assert d["interval"] == "30s"
        assert all("record" in r and "expr" in r for r in d["rules"])

    def test_full_rules_file_roundtrip(self):
        groups = standard_rule_groups()
        text = rules_file(groups)
        reloaded = parse_rules_file(text)
        assert [g.name for g in reloaded] == [g.name for g in groups]
        for orig, back in zip(groups, reloaded):
            assert [r.record for r in orig.rules] == [r.record for r in back.rules]
            assert [r.expr for r in orig.rules] == [r.expr for r in back.rules]
            assert back.interval == orig.interval

    def test_reloaded_rules_evaluate(self):
        """YAML-roundtripped rules still execute against a TSDB."""
        db = TSDB()
        for i in range(20):
            db.append(Labels({"__name__": "ceems_ipmi_dcmi_current_watts",
                              "hostname": "n1", "nodegroup": "intel-cpu"}), i * 15.0, 400.0)
        group = rules_for_group(NodeGroup("intel-cpu", True, False, True), 30.0)
        reloaded = parse_rules_file(rules_file([group]))[0]
        manager = RuleManager(db)
        manager.add_group(reloaded)
        recorded = manager.evaluate_all(at=300.0)
        assert recorded >= 1  # at least instance:ipmi_watts

    def test_alerting_rules_export(self):
        d = alerting_rules_to_dict("ceems-alerts", ceems_alert_rules())
        assert d["name"] == "ceems-alerts"
        entries = {e["alert"]: e for e in d["rules"]}
        assert entries["CEEMSTargetDown"]["for"] == "2m"
        assert entries["CEEMSTargetDown"]["labels"]["severity"] == "critical"

    def test_alerts_embed_in_rules_file(self):
        text = rules_file(
            standard_rule_groups()[:1],
            alert_groups=[alerting_rules_to_dict("ceems-alerts", ceems_alert_rules())],
        )
        from repro.common import yamlite

        raw = yamlite.loads(text)
        names = [g["name"] for g in raw["groups"]]
        assert "ceems-alerts" in names


class TestConfigDrivenAssembly:
    def test_from_stack_config(self):
        stack = StackConfig.loads(
            """
tsdb:
  scrape_interval: 30s
  retention: 7d
api_server:
  update_interval: 5m
  cleanup_cutoff: 2m
lb:
  strategy: least-connection
emissions:
  country: DE
  providers: [electricity_maps, owid]
exporter:
  collectors: [cgroup, rapl, ipmi, node]
"""
        )
        cfg = SimulationConfig.from_stack_config(stack, seed=5)
        assert cfg.scrape_interval == 30.0
        assert cfg.hot_retention == 7 * 86400.0
        assert cfg.update_interval == 300.0
        assert cfg.cleanup_cutoff == 120.0
        assert cfg.lb_strategy == "least-connection"
        assert cfg.zone == "DE"
        assert cfg.with_emissions_providers == ("electricity_maps", "owid")
        assert cfg.collectors == ("cgroup", "rapl", "ipmi", "node", "self")
        assert cfg.seed == 5

    def test_config_driven_sim_runs(self):
        stack = StackConfig.loads(
            "tsdb:\n  scrape_interval: 30s\nemissions:\n  country: DE\n  providers: [owid]\n"
        )
        cfg = SimulationConfig.from_stack_config(stack, seed=1, with_workload=False)
        sim = StackSimulation(small_topology(cpu_nodes=1, gpu_nodes=0), cfg)
        sim.run(600.0)
        assert sim.hot_tsdb.num_samples > 0
        assert sim.config.zone == "DE"
        # emission factor for DE must be scraped and resolved via OWID
        result = sim.engine.query(
            'ceems_emissions_gCo2_kWh{provider="resolved"}', at=sim.now
        )
        assert result.vector[0].labels.get("country") == "DE"

    def test_shipped_example_config_is_valid(self):
        config = StackConfig.load_file("etc/ceems.yml")
        assert config.exporter.collectors[-1] == "perf"
        assert config.api_server.cleanup_cutoff == 300.0
        cfg = SimulationConfig.from_stack_config(config)
        assert cfg.cleanup_cutoff == 300.0
