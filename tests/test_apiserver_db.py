"""Tests for the API server's SQLite layer, backups and cleanup."""

import pytest

from repro.apiserver.backup import BackupManager, LitestreamReplicator, Snapshot
from repro.apiserver.cleanup import CardinalityCleaner
from repro.apiserver.db import Database
from repro.apiserver.schema import SCHEMA_VERSION
from repro.common.errors import NotFoundError, StorageError
from repro.resourcemgr.base import ComputeUnit, UnitState
from repro.tsdb.model import Labels
from repro.tsdb.storage import TSDB


def unit(uuid: str, user: str = "alice", project: str = "p1", state=UnitState.RUNNING, **kwargs) -> ComputeUnit:
    defaults = dict(
        name=f"job-{uuid}",
        manager="slurm",
        cluster="test",
        created_at=0.0,
        started_at=10.0,
        cpus=4,
        memory_bytes=2**30,
    )
    defaults.update(kwargs)
    return ComputeUnit(uuid=uuid, user=user, project=project, state=state, **defaults)


class FakeUsage:
    def __init__(self, energy=1000.0, emissions=5.0):
        self.energy_joules = energy
        self.emissions_g = emissions
        self.avg_power_watts = 100.0
        self.avg_cpu_usage = 3.5
        self.avg_memory_bytes = 1e9
        self.peak_memory_bytes = 2e9
        self.avg_gpu_power_watts = 0.0


class TestMigrations:
    def test_fresh_db_at_current_version(self):
        db = Database(":memory:")
        assert db.schema_version() == SCHEMA_VERSION

    def test_migrate_idempotent(self):
        db = Database(":memory:")
        db.migrate()
        assert db.schema_version() == SCHEMA_VERSION

    def test_integrity(self):
        assert Database(":memory:").integrity_check()


class TestUnits:
    def test_upsert_and_get(self):
        db = Database()
        db.upsert_units([unit("1"), unit("2", user="bob")], now=100.0)
        row = db.get_unit("test", "1")
        assert row["user"] == "alice"
        assert db.count_units() == 2

    def test_get_missing_raises(self):
        with pytest.raises(NotFoundError):
            Database().get_unit("test", "404")

    def test_upsert_updates_lifecycle(self):
        db = Database()
        db.upsert_units([unit("1")], now=100.0)
        done = unit("1", state=UnitState.COMPLETED, ended_at=500.0)
        db.upsert_units([done], now=600.0)
        row = db.get_unit("test", "1")
        assert row["state"] == "completed"
        assert row["elapsed"] == pytest.approx(490.0)
        assert db.count_units() == 1

    def test_running_unit_elapsed_uses_now(self):
        db = Database()
        db.upsert_units([unit("1", started_at=10.0)], now=110.0)
        assert db.get_unit("test", "1")["elapsed"] == pytest.approx(100.0)

    def test_list_filters(self):
        db = Database()
        db.upsert_units(
            [
                unit("1", user="alice", project="p1"),
                unit("2", user="bob", project="p2", state=UnitState.COMPLETED),
                unit("3", user="alice", project="p2", started_at=5000.0),
            ],
            now=100.0,
        )
        assert len(db.list_units(user="alice")) == 2
        assert len(db.list_units(project="p2")) == 2
        assert len(db.list_units(state="completed")) == 1
        assert len(db.list_units(started_after=1000.0)) == 1
        assert len(db.list_units(started_before=1000.0)) == 2
        assert len(db.list_units(limit=1)) == 1

    def test_find_unit_owner(self):
        db = Database()
        db.upsert_units([unit("7", user="carol", project="px")], now=0.0)
        assert db.find_unit_owner("7") == ("carol", "px")
        assert db.find_unit_owner("999") is None

    def test_add_unit_usage_accumulates(self):
        db = Database()
        db.upsert_units([unit("1")], now=0.0)
        db.add_unit_usage("test", {"1": FakeUsage(energy=100.0)}, now=10.0)
        db.add_unit_usage("test", {"1": FakeUsage(energy=50.0)}, now=20.0)
        row = db.get_unit("test", "1")
        assert row["energy_joules"] == 150.0
        assert row["peak_memory_bytes"] == 2e9

    def test_usage_for_unknown_unit_ignored(self):
        db = Database()
        assert db.add_unit_usage("test", {"404": FakeUsage()}, now=0.0) == 0


class TestRollups:
    def test_rebuild_usage(self):
        db = Database()
        db.upsert_units(
            [
                unit("1", user="alice", state=UnitState.COMPLETED, ended_at=110.0),
                unit("2", user="alice", state=UnitState.COMPLETED, ended_at=210.0),
                unit("3", user="bob", state=UnitState.COMPLETED, ended_at=110.0),
            ],
            now=300.0,
        )
        db.add_unit_usage("test", {"1": FakeUsage(100.0, 1.0), "2": FakeUsage(200.0, 2.0), "3": FakeUsage(400.0, 4.0)}, now=300.0)
        db.rebuild_usage_rollups("test", now=300.0)
        rows = db.usage_rows(user="alice")
        assert len(rows) == 1
        assert rows[0].num_units == 2
        assert rows[0].total_energy_joules == 300.0
        assert rows[0].total_emissions_g == 3.0
        assert rows[0].total_cpu_hours == pytest.approx((100 + 200) * 4 / 3600.0)

    def test_rollups_ordered_by_energy(self):
        db = Database()
        db.upsert_units([unit("1", user="a"), unit("2", user="b")], now=0.0)
        db.add_unit_usage("test", {"1": FakeUsage(10.0), "2": FakeUsage(500.0)}, now=0.0)
        db.rebuild_usage_rollups("test", now=0.0)
        rows = db.usage_rows()
        assert rows[0].user == "b"

    def test_sync_state(self):
        db = Database()
        assert db.last_sync("test") == 0.0
        db.set_last_sync("test", 1234.0)
        assert db.last_sync("test") == 1234.0

    def test_clusters(self):
        db = Database()
        db.upsert_units([unit("1"), unit("2", cluster="other")], now=0.0)
        assert db.clusters() == ["other", "test"]


class TestBackups:
    def make_db(self):
        db = Database()
        db.upsert_units([unit("1"), unit("2")], now=0.0)
        return db

    def test_snapshot_restore(self):
        db = self.make_db()
        snapshot = Snapshot.of(db, now=100.0)
        restored = snapshot.restore()
        assert restored.count_units() == 2
        assert restored.get_unit("test", "1")["user"] == "alice"

    def test_checksum_detects_corruption(self):
        db = self.make_db()
        snapshot = Snapshot.of(db, now=0.0)
        corrupted = Snapshot(taken_at=0.0, compressed=snapshot.compressed, checksum="0" * 64)
        with pytest.raises(StorageError, match="checksum"):
            corrupted.restore()

    def test_backup_manager_interval(self):
        db = self.make_db()
        manager = BackupManager(db, interval=100.0, keep=2)
        assert manager.maybe_backup(now=0.0)
        assert not manager.maybe_backup(now=50.0)
        assert manager.maybe_backup(now=150.0)
        assert manager.maybe_backup(now=300.0)
        assert len(manager.snapshots) == 2  # keep=2

    def test_restore_latest(self):
        db = self.make_db()
        manager = BackupManager(db)
        manager.backup(now=0.0)
        db.upsert_units([unit("3")], now=10.0)
        manager.backup(now=20.0)
        assert manager.restore_latest().count_units() == 3

    def test_no_backup_raises(self):
        with pytest.raises(StorageError):
            BackupManager(Database()).latest()


class TestLitestream:
    def test_ship_only_on_changes(self):
        db = Database()
        replicator = LitestreamReplicator(db)
        assert replicator.ship(now=0.0)  # initial generation
        assert not replicator.ship(now=60.0)  # no writes since
        db.upsert_units([unit("1")], now=70.0)
        assert replicator.ship(now=120.0)
        assert replicator.segments_shipped == 1

    def test_point_in_time_restore(self):
        db = Database()
        replicator = LitestreamReplicator(db)
        replicator.ship(now=0.0)
        db.upsert_units([unit("1")], now=10.0)
        replicator.ship(now=60.0)
        db.upsert_units([unit("2")], now=70.0)
        replicator.ship(now=120.0)
        assert replicator.restore(at=60.0).count_units() == 1
        assert replicator.restore(at=120.0).count_units() == 2
        assert replicator.restore().count_units() == 2

    def test_restore_before_any_state_raises(self):
        db = Database()
        replicator = LitestreamReplicator(db)
        with pytest.raises(StorageError):
            replicator.restore()
        replicator.ship(now=100.0)
        with pytest.raises(StorageError):
            replicator.restore(at=50.0)

    def test_new_generation_after_segment_budget(self):
        db = Database()
        replicator = LitestreamReplicator(db, snapshot_every=2)
        replicator.ship(now=0.0)
        for i in range(5):
            db.upsert_units([unit(str(i))], now=float(i))
            replicator.ship(now=float(i * 60 + 60))
        assert len(replicator.generations) >= 2


class TestCardinalityCleaner:
    def make_env(self, cutoff=300.0):
        db = Database()
        tsdb = TSDB()
        # short finished unit, long finished unit, short running unit
        db.upsert_units(
            [
                unit("short", state=UnitState.COMPLETED, started_at=0.0, ended_at=100.0),
                unit("long", state=UnitState.COMPLETED, started_at=0.0, ended_at=5000.0),
                unit("live", state=UnitState.RUNNING, started_at=0.0),
            ],
            now=100.0,
        )
        for uuid in ("short", "long", "live"):
            for metric in ("cpu", "mem"):
                tsdb.append(Labels({"__name__": metric, "uuid": uuid}), 1.0, 1.0)
        return db, tsdb, CardinalityCleaner(db, [tsdb], cutoff)

    def test_only_short_finished_units_cleaned(self):
        db, tsdb, cleaner = self.make_env()
        stats = cleaner.run(now=200.0)
        assert stats.units_cleaned == 1
        assert stats.series_deleted == 2
        uuids = {s.labels.get("uuid") for s in tsdb.all_series()}
        assert uuids == {"long", "live"}
        # the accounting record survives
        assert db.get_unit("test", "short")["state"] == "completed"

    def test_idempotent_across_runs(self):
        _db, _tsdb, cleaner = self.make_env()
        cleaner.run(now=200.0)
        stats = cleaner.run(now=300.0)
        assert stats.units_cleaned == 1  # not double counted

    def test_disabled_when_cutoff_zero(self):
        _db, tsdb, cleaner = self.make_env(cutoff=0.0)
        cleaner.run(now=200.0)
        assert tsdb.num_series == 6
