"""Direct tests for the query-side unit-energy estimator."""

import numpy as np
import pytest

from repro.energy.estimator import UnitEnergyEstimator, UnitUsage, _integrate
from repro.energy.rules_library import EMISSIONS_METRIC, POWER_METRIC
from repro.tsdb.model import Labels
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.storage import TSDB


def seed_db() -> TSDB:
    """Two units with recorded power/emissions/cpu/memory series."""
    db = TSDB()
    for i in range(61):
        t = i * 30.0
        for uuid, watts in (("1", 200.0), ("2", 100.0)):
            db.append(
                Labels({"__name__": POWER_METRIC, "uuid": uuid, "hostname": "n1",
                        "manager": "slurm", "nodegroup": "g"}),
                t, watts,
            )
            db.append(
                Labels({"__name__": EMISSIONS_METRIC, "uuid": uuid, "hostname": "n1",
                        "manager": "slurm", "nodegroup": "g"}),
                t, watts * 56.0 / 3.6e6,
            )
            db.append(
                Labels({"__name__": "instance:unit_cpu_rate", "uuid": uuid,
                        "hostname": "n1", "manager": "slurm", "nodegroup": "g"}),
                t, 4.0,
            )
            db.append(
                Labels({"__name__": "ceems_compute_unit_memory_current_bytes",
                        "uuid": uuid, "hostname": "n1", "manager": "slurm"}),
                t, 2.0e9 + i * 1e7,
            )
    return db


@pytest.fixture
def estimator() -> UnitEnergyEstimator:
    return UnitEnergyEstimator(PromQLEngine(seed_db()), step=30.0)


class TestIntegrate:
    def test_constant_rate(self):
        ts = np.arange(0, 101.0, 10.0)
        vs = np.full_like(ts, 5.0)
        assert _integrate(ts, vs) == pytest.approx(500.0)

    def test_short_series_zero(self):
        assert _integrate(np.array([1.0]), np.array([5.0])) == 0.0
        assert _integrate(np.array([]), np.array([])) == 0.0


class TestUsageWindow:
    def test_all_units_aggregated(self, estimator):
        usage = estimator.usage_window(0.0, 1800.0)
        assert set(usage) == {"1", "2"}
        u1 = usage["1"]
        assert u1.energy_joules == pytest.approx(200.0 * 1800.0, rel=0.01)
        assert u1.avg_power_watts == pytest.approx(200.0, rel=0.01)
        assert u1.emissions_g == pytest.approx(200.0 * 1800.0 / 3.6e6 * 56.0, rel=0.01)
        assert u1.avg_cpu_usage == pytest.approx(4.0)
        assert u1.peak_memory_bytes >= u1.avg_memory_bytes

    def test_empty_window(self, estimator):
        assert estimator.usage_window(10_000.0, 20_000.0) == {}

    def test_inverted_window(self, estimator):
        assert estimator.usage_window(100.0, 100.0) == {}
        assert estimator.usage_window(200.0, 100.0) == {}

    def test_energy_additive_over_subwindows(self, estimator):
        whole = estimator.usage_window(0.0, 1800.0)["1"].energy_joules
        first = estimator.usage_window(0.0, 900.0)["1"].energy_joules
        second = estimator.usage_window(900.0, 1800.0)["1"].energy_joules
        assert first + second == pytest.approx(whole, rel=1e-9)

    def test_step_clamped_for_tiny_windows(self, estimator):
        """A window smaller than 4 steps still integrates."""
        usage = estimator.usage_window(0.0, 60.0)
        assert usage["1"].energy_joules > 0


class TestSingleUnitHelpers:
    def test_unit_power_series(self, estimator):
        ts, vs = estimator.unit_power_series("1", 0.0, 600.0)
        assert len(ts) == 21
        assert np.allclose(vs, 200.0)

    def test_unit_energy(self, estimator):
        assert estimator.unit_energy_joules("1", 0.0, 1800.0) == pytest.approx(
            200.0 * 1800.0, rel=0.01
        )

    def test_unknown_unit_is_empty(self, estimator):
        ts, _vs = estimator.unit_power_series("404", 0.0, 1800.0)
        assert len(ts) == 0
        assert estimator.unit_energy_joules("404", 0.0, 1800.0) == 0.0
        assert estimator.unit_emissions_g("404", 0.0, 1800.0) == 0.0

    def test_unit_emissions(self, estimator):
        grams = estimator.unit_emissions_g("2", 0.0, 1800.0)
        assert grams == pytest.approx(100.0 * 1800.0 / 3.6e6 * 56.0, rel=0.01)


class TestUnitUsageDataclass:
    def test_defaults(self):
        usage = UnitUsage(uuid="x")
        assert usage.energy_joules == 0.0
        assert usage.samples == 0
