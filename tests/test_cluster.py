"""Tests for topology declarations and the simulation assembly."""

import pytest

from repro.cluster import StackSimulation, jean_zay_topology, small_topology
from repro.cluster.jean_zay import topology_stats
from repro.cluster.simulation import SimulationConfig
from repro.resourcemgr.workload import SizeClass, WorkloadMix


class TestTopologies:
    def test_small_topology_shape(self):
        groups = small_topology(cpu_nodes=2, gpu_nodes=1)
        assert len(groups) == 2
        assert groups[0].nodegroup == "intel-cpu"
        assert groups[1].gpus == ("A100",) * 4

    def test_small_topology_no_gpu(self):
        groups = small_topology(cpu_nodes=2, gpu_nodes=0)
        assert len(groups) == 1

    def test_jean_zay_headline_numbers(self):
        """Paper §III: ~1400 nodes, >3500 GPUs."""
        stats = topology_stats(jean_zay_topology(scale=1.0))
        assert stats["nodes"] >= 1400
        assert stats["gpus"] >= 3500

    def test_jean_zay_has_both_ipmi_classes(self):
        groups = jean_zay_topology()
        gpu_groups = [g for g in groups if g.gpus]
        assert any(g.ipmi_includes_gpu for g in gpu_groups)
        assert any(not g.ipmi_includes_gpu for g in gpu_groups)

    def test_jean_zay_has_intel_and_amd(self):
        models = {g.cpu_model.split("-")[0] for g in jean_zay_topology()}
        assert models >= {"intel", "amd"}

    def test_scaling(self):
        full = topology_stats(jean_zay_topology(1.0))
        tenth = topology_stats(jean_zay_topology(0.1))
        assert tenth["nodes"] == pytest.approx(full["nodes"] * 0.1, rel=0.1)
        assert all(g.count >= 1 for g in jean_zay_topology(0.001))

    def test_node_spec_generation(self):
        group = jean_zay_topology()[0]
        spec = group.node_spec(7)
        assert spec.name == "intel-cpu-0007"
        assert spec.ncores == group.sockets * group.cores_per_socket

    def test_rule_group_derivation(self):
        groups = {g.nodegroup: g.rule_group() for g in jean_zay_topology()}
        assert groups["intel-cpu"].has_dram_rapl
        assert not groups["amd-cpu"].has_dram_rapl
        assert groups["gpu-ipmi-incl"].ipmi_includes_gpu
        assert not groups["gpu-ipmi-excl"].ipmi_includes_gpu


class TestStackSimulation:
    def test_shared_sim_stats(self, small_sim):
        stats = small_sim.stats()
        assert stats["nodes"] == 4
        assert stats["gpus"] == 4
        assert stats["jobs_submitted"] > 10
        assert stats["tsdb_series"] > 100
        assert stats["units_in_db"] == stats["jobs_submitted"]

    def test_deterministic_given_seed(self):
        mix = WorkloadMix(
            mean_interarrival=300.0,
            sizes=(SizeClass("s", weight=1.0, ncores=4),),
        )
        def build():
            sim = StackSimulation(
                small_topology(cpu_nodes=1, gpu_nodes=0),
                SimulationConfig(seed=99, update_interval=600.0),
                workload=mix,
            )
            sim.run(1800.0)
            return sim

        a, b = build(), build()
        assert a.stats() == b.stats()
        assert a.hot_tsdb.samples_ingested == b.hot_tsdb.samples_ingested
        ra = a.engine.query("sum(ceems:compute_unit:power_watts)", at=a.now)
        rb = b.engine.query("sum(ceems:compute_unit:power_watts)", at=b.now)
        if ra.vector and rb.vector:
            assert ra.vector[0].value == rb.vector[0].value

    def test_no_workload_mode(self):
        sim = StackSimulation(
            small_topology(cpu_nodes=1, gpu_nodes=0),
            SimulationConfig(seed=1, with_workload=False),
        )
        sim.run(600.0)
        assert sim.slurm.jobs_submitted == 0
        assert sim.hot_tsdb.num_samples > 0  # node metrics still flow

    def test_cleanup_wired_when_configured(self):
        sim = StackSimulation(
            small_topology(cpu_nodes=1, gpu_nodes=0),
            SimulationConfig(seed=1, cleanup_cutoff=300.0, with_workload=False),
        )
        assert sim.cleaner is not None
        sim_no = StackSimulation(
            small_topology(cpu_nodes=1, gpu_nodes=0),
            SimulationConfig(seed=1, with_workload=False),
        )
        assert sim_no.cleaner is None

    def test_lb_strategy_configurable(self):
        sim = StackSimulation(
            small_topology(cpu_nodes=1, gpu_nodes=0),
            SimulationConfig(seed=1, lb_strategy="least-connection", with_workload=False),
        )
        assert sim.lb.strategy.name == "least-connection"


class TestCadenceDerivedQueryParams:
    """Prometheus deployment rules: lookback and rate windows must
    scale with the scrape interval (surfaced by the 90-day bench)."""

    def test_default_cadence_uses_standard_values(self):
        sim = StackSimulation(
            small_topology(cpu_nodes=1, gpu_nodes=0),
            SimulationConfig(seed=1, with_workload=False),
        )
        assert sim.lookback == 300.0
        assert sim.rate_window == "2m"

    def test_coarse_cadence_scales_parameters(self):
        sim = StackSimulation(
            small_topology(cpu_nodes=1, gpu_nodes=0),
            SimulationConfig(seed=1, with_workload=False,
                             scrape_interval=600.0, node_step=600.0,
                             rule_interval=600.0),
        )
        assert sim.lookback == 1500.0
        assert sim.rate_window == "40m"

    def test_coarse_cadence_still_records_power(self):
        """With 10-minute scrapes the Eq. (1) pipeline must still work."""
        from repro.hwsim import UsageProfile

        sim = StackSimulation(
            small_topology(cpu_nodes=1, gpu_nodes=0),
            SimulationConfig(seed=1, with_workload=False,
                             scrape_interval=600.0, node_step=600.0,
                             rule_interval=600.0),
        )
        sim.nodes[0].place_task(
            "9001", "/system.slice/slurmstepd.scope/job_9001",
            8, 16 * 2**30, UsageProfile.constant(0.8, 0.4), sim.now,
        )
        sim.run(2.0 * 3600)
        result = sim.engine.query('ceems:compute_unit:power_watts{uuid="9001"}', at=sim.now)
        assert result.vector and result.vector[0].value > 0
