"""Tests for the carbon-aware control plane (the governor).

Covers the accumulator fold/wrap arithmetic, the aliasing regression
it exists to fix, power-cap settle dynamics and node-level
enforcement, the exporter's double-wrap trust guard, the socket line
protocol over a real AF_UNIX transport, the SLURM admission seam, and
the policy algebra.
"""

import math

import pytest

from repro.common.clock import SimClock
from repro.exporter.collectors import RAPLCollector
from repro.governor import (
    BudgetCapPolicy,
    CarbonPolicy,
    DomainAccumulator,
    GovernorDaemon,
    GovernorSocketServer,
    NodeAccumulator,
    StaticCapPolicy,
)
from repro.governor.socket import request
from repro.hwsim import NodeSpec, SimulatedNode
from repro.hwsim.node import UsageProfile
from repro.hwsim.power_model import PowerCapState
from repro.hwsim.rapl import RAPLDomain
from repro.resourcemgr import JobSpec, SlurmCluster, UnitState
from repro.resourcemgr.slurm import AdmissionDecision

BUSY = UsageProfile(cpu_base=1.0, mem_base=0.5)


def make_node(name="n0", seed=0, **spec_kwargs):
    return SimulatedNode(NodeSpec(name=name, **spec_kwargs), seed=seed)


def busy_node(name="n0", seed=0, uuid="1000"):
    node = make_node(name, seed=seed)
    node.place_task(
        uuid=uuid,
        cgroup_path=f"/sys/fs/cgroup/system.slice/{uuid}",
        ncores=node.spec.ncores,
        memory_limit_bytes=8 * 2**30,
        profile=BUSY,
        start_time=0.0,
    )
    return node


# -- accumulator arithmetic ------------------------------------------------


class TestDomainAccumulator:
    def make(self, max_range=1_000_000, window=60.0):
        return DomainAccumulator(
            domain="package",
            path="intel-rapl:0",
            socket=0,
            max_range_uj=max_range,
            window_seconds=window,
        )

    def test_first_observe_is_a_baseline(self):
        acc = self.make()
        assert acc.observe(0.0, 123_456) == 0
        assert acc.total_uj == 0
        assert acc.wraps == 0

    def test_folds_across_a_wrap(self):
        acc = self.make(max_range=1_000_000)
        acc.observe(0.0, 900_000)
        delta = acc.observe(1.0, 100_000)  # wrapped: true delta 200 kµJ
        assert delta == 200_000
        assert acc.total_uj == 200_000
        assert acc.wraps == 1

    def test_totals_telescope_over_many_wraps(self):
        acc = self.make(max_range=1_000_000)
        true_uj = 0
        raw = 0
        acc.observe(0.0, raw)
        for i in range(1, 200):
            true_uj += 77_777
            raw = true_uj % 1_000_000
            acc.observe(float(i), raw)
        assert acc.total_uj == true_uj
        assert acc.wraps == true_uj // 1_000_000

    def test_windowed_power(self):
        acc = self.make(max_range=7_000_000, window=10.0)
        for t in range(21):
            acc.observe(float(t), (t * 2_000_000) % 7_000_000)  # 2 J/s
        assert acc.power_w() == pytest.approx(2.0)

    def test_staleness(self):
        acc = self.make()
        assert acc.staleness(5.0) == float("inf")
        acc.observe(10.0, 0)
        assert acc.staleness(17.5) == pytest.approx(7.5)


class TestNodeAccumulator:
    def test_tracks_every_domain(self):
        node = make_node()
        acc = NodeAccumulator(node)
        # Intel node: package + dram per socket.
        assert len(acc.domains) == 2 * node.spec.sockets

    def test_matches_ground_truth_across_wraps(self):
        node = busy_node()
        # Shrink the range so 15 s node steps wrap frequently.  The
        # counters move stepwise (one jump per node step), so the
        # range must still exceed one step's energy (~2.5 kJ/socket)
        # for the single-wrap fold to stay exact.
        for pkg in node.rapl:
            pkg.package.max_energy_range_uj = 5_000_000_000  # 5 kJ
        acc = NodeAccumulator(node)
        t = 0.0
        acc.poll(t)
        for _ in range(240):  # one sim hour of 15 s steps
            t += 15.0
            node.advance(t, 15.0)
            acc.poll(t)
        truth = sum(
            pkg.package.total_energy_joules + pkg.dram.total_energy_joules
            for pkg in node.rapl
        )
        baseline = 0.0  # counters started at 0, first poll saw 0
        assert acc.wraps > 10
        assert acc.joules == pytest.approx(truth - baseline, abs=1e-5)

    def test_attributes_energy_by_allocation_ratio(self):
        node = make_node()
        half = node.spec.ncores // 2
        node.place_task(
            uuid="a", cgroup_path="/a", ncores=half, memory_limit_bytes=1 << 30,
            profile=BUSY, start_time=0.0,
        )
        node.place_task(
            uuid="b", cgroup_path="/b", ncores=half, memory_limit_bytes=1 << 30,
            profile=BUSY, start_time=0.0,
        )
        acc = NodeAccumulator(node)
        acc.poll(0.0)
        node.advance(15.0, 15.0)
        acc.poll(15.0)
        assert acc.allocation_ratio("a") == pytest.approx(0.5)
        assert acc.unit_joules("a") == pytest.approx(acc.unit_joules("b"))
        assert acc.unit_joules("a") + acc.unit_joules("b") == pytest.approx(
            acc.joules, rel=1e-9
        )


class TestAliasingRegression:
    """The bug this subsystem exists to fix, demonstrated end to end.

    A 15 s scraper applying the Prometheus counter-reset heuristic
    (``curr < prev`` → the delta is ``curr``) loses ``max_range -
    prev`` µJ at every wrap; the high-rate accumulator does not.
    """

    def test_scrape_under_reports_accumulator_exact(self):
        clock = SimClock(start=0.0)
        node = busy_node()
        for pkg in node.rapl:
            # ~10 kJ range: a busy socket wraps every ~1-2 minutes, so
            # a one-hour run crosses many wraps.
            pkg.package.max_energy_range_uj = 10_000_000_000
        acc = NodeAccumulator(node)

        naive = {"total_uj": 0}
        prev: dict[int, int] = {}

        def scrape(now):
            # One counter-reset-semantics series per package domain,
            # exactly how a 15 s Prometheus scrape would see them.
            for pkg in node.rapl:
                raw = pkg.package.energy_uj
                if pkg.socket in prev:
                    delta = raw - prev[pkg.socket]
                    naive["total_uj"] += delta if delta >= 0 else raw
                prev[pkg.socket] = raw

        def step_node(now):
            node.advance(now, 15.0)

        clock.every(15.0, step_node)
        clock.every(0.1, lambda now: acc.poll(now))
        clock.every(15.0, scrape)
        clock.advance(3600.0)
        acc.poll(clock.now())  # the 0.1 s grid drifts in float; settle the tail

        truth = sum(pkg.package.total_energy_joules for pkg in node.rapl)
        package_j = sum(d.joules for d in acc.domains if d.domain == "package")
        wraps = sum(d.wraps for d in acc.domains if d.domain == "package")
        naive_j = naive["total_uj"] / 1e6

        assert wraps > 5  # the hour really crossed wraps
        # The naive reader measurably under-reports...
        assert naive_j < truth * 0.99
        # ...while the accumulator stays within 0.1% of ground truth.
        assert package_j == pytest.approx(truth, rel=1e-3)
        # (and in fact to µJ quantisation)
        assert abs(package_j - truth) < 1e-3


# -- power capping ---------------------------------------------------------


class TestPowerCapState:
    def test_uncapped_is_unbounded(self):
        cap = PowerCapState()
        cap.advance(1.0, from_w=150.0)
        assert cap.clamp(400.0) == 400.0
        assert not cap.capped

    def test_tightening_settles_exponentially(self):
        cap = PowerCapState(settle_seconds=5.0)
        cap.limit_w = 100.0
        first = cap.advance(1.0, from_w=200.0)
        # One second in: between the target and the starting draw.
        assert 100.0 < first < 200.0
        for _ in range(40):
            cap.advance(1.0, from_w=200.0)
        assert cap.enforced_w == 100.0  # snapped to target

    def test_relaxing_is_instant(self):
        cap = PowerCapState(settle_seconds=5.0)
        cap.limit_w = 100.0
        cap.advance(1.0, from_w=200.0)
        cap.limit_w = 0.0
        cap.advance(1.0, from_w=100.0)
        assert math.isinf(cap.enforced_w)

    def test_node_enforces_written_cap(self):
        node = busy_node()
        uncapped = busy_node(seed=0)
        t = 0.0
        for _ in range(8):  # warm up past the settle window
            t += 15.0
            node.advance(t, 15.0)
            uncapped.advance(t, 15.0)
        free_w = uncapped.last_breakdown.cpu_w / uncapped.spec.sockets
        cap_w = free_w * 0.6
        for pkg in node.rapl:
            pkg.write_sysfs(
                f"intel-rapl:{pkg.socket}/constraint_0_power_limit_uw",
                int(cap_w * 1e6),
            )
        for _ in range(8):
            t += 15.0
            node.advance(t, 15.0)
            uncapped.advance(t, 15.0)
        per_socket = node.last_breakdown.cpu_w / node.spec.sockets
        assert per_socket <= cap_w + 1e-6
        assert node.cap_throttled_seconds > 0.0
        assert uncapped.last_breakdown.cpu_w > node.last_breakdown.cpu_w

    def test_only_the_constraint_file_is_writable(self):
        node = make_node()
        pkg = node.rapl[0]
        with pytest.raises(Exception):
            pkg.write_sysfs("intel-rapl:0/energy_uj", 0)


# -- the double-wrap trust guard ------------------------------------------


class TestDoubleWrapGuard:
    def test_checked_delta_trustworthy_at_short_interval(self):
        # 15 s × 1 kW = 1.5e10 µJ, well under the 262 kJ default range.
        delta, ok = RAPLDomain.counter_delta_checked(
            100, 200, 262_143_328_850, elapsed_seconds=15.0, max_plausible_watts=1000.0
        )
        assert delta == 100
        assert ok

    def test_checked_delta_flags_long_gaps(self):
        # 1000 s at 1 kW could traverse a 1 GµJ range many times over.
        _delta, ok = RAPLDomain.counter_delta_checked(
            100, 200, 1_000_000_000, elapsed_seconds=1000.0, max_plausible_watts=1000.0
        )
        assert not ok

    def test_collector_emits_trust_gauge(self):
        node = busy_node()
        collector = RAPLCollector(node)
        families = {f.name: f for f in collector.collect(0.0)}
        trust = families["ceems_rapl_counter_trustworthy"]
        # First scrape: no baseline, optimistically trustworthy.
        assert all(p.value == 1.0 for p in trust.points)

    def test_collector_drops_trust_on_missed_scrapes(self):
        node = busy_node()
        # Tiny package range: a 30 s gap at plausible power (3e10 µJ)
        # spans it many times over, while DRAM keeps its 65 kJ default
        # range and stays trustworthy across the same gap.
        for pkg in node.rapl:
            pkg.package.max_energy_range_uj = 1_000_000_000  # 1 kJ
        collector = RAPLCollector(node)
        collector.collect(0.0)
        node.advance(30.0, 30.0)
        families = {f.name: f for f in collector.collect(30.0)}
        trust = families["ceems_rapl_counter_trustworthy"]
        # DRAM paths are "intel-rapl:<s>:0" (two colons), packages one.
        package_trust = [
            p for p in trust.points if p.labels["path"].count(":") == 1
        ]
        dram_trust = [p for p in trust.points if p.labels["path"].count(":") == 2]
        assert package_trust and dram_trust
        assert all(p.value == 0.0 for p in package_trust)
        assert all(p.value == 1.0 for p in dram_trust)

    def test_collector_serves_accumulator_when_attached(self):
        node = busy_node(uuid="1234")
        acc = NodeAccumulator(node)
        node.governor_accumulator = acc
        acc.poll(0.0)
        node.advance(15.0, 15.0)
        acc.poll(15.0)
        collector = RAPLCollector(node)
        families = {f.name: f for f in collector.collect(15.0)}
        package = families["ceems_rapl_package_joules_total"]
        served = sum(p.value for p in package.points)
        expected = sum(d.joules for d in acc.domains if d.domain == "package")
        assert served == pytest.approx(expected)
        units = families["ceems_compute_unit_rapl_joules_total"]
        assert any(p.labels["uuid"] == "1234" and p.value > 0 for p in units.points)


# -- socket line protocol --------------------------------------------------


def make_daemon(clock=None, nodes=None, **kwargs):
    clock = clock or SimClock(start=0.0)
    nodes = nodes if nodes is not None else [busy_node()]
    return GovernorDaemon(nodes, clock, **kwargs)


class TestSocketProtocol:
    @pytest.fixture()
    def server(self, tmp_path):
        daemon = make_daemon()
        daemon.poll(0.0)
        daemon.accumulators["n0"].node.advance(15.0, 15.0)
        daemon.poll(15.0)
        path = str(tmp_path / "governor.sock")
        server = GovernorSocketServer(daemon.handle_line, path)
        yield daemon, path
        server.close()

    def test_ping(self, server):
        _daemon, path = server
        assert request(path, "PING") == "OK pong"

    def test_nodes_and_energy(self, server):
        daemon, path = server
        assert request(path, "NODES") == "OK n0"
        joules = float(request(path, "ENERGY n0").split()[1])
        assert joules == pytest.approx(daemon.accumulators["n0"].joules)

    def test_unit_query(self, server):
        _daemon, path = server
        resp = request(path, "UNIT n0 1000").split()
        assert resp[0] == "OK"
        assert float(resp[1]) > 0.0  # attributed joules
        assert float(resp[2]) == pytest.approx(1.0)  # whole-node job

    def test_cap_actuates_immediately(self, server):
        daemon, path = server
        assert request(path, "CAP n0 80") == "OK 80.000"
        node = daemon.accumulators["n0"].node
        assert all(pkg.package.power_limit_uw == 80_000_000 for pkg in node.rapl)
        assert daemon.cap_writes_total == node.spec.sockets

    def test_errors(self, server):
        _daemon, path = server
        assert request(path, "ENERGY ghost").startswith("ERR")
        assert request(path, "CAP n0 banana").startswith("ERR")
        assert request(path, "CAP n0 -5").startswith("ERR")
        assert request(path, "FROBNICATE").startswith("ERR")

    def test_stats_counts_requests(self, server):
        daemon, path = server
        request(path, "PING")
        stats = request(path, "STATS")
        assert stats.startswith("OK polls=")
        assert "avoided_g=" in stats
        assert daemon._socket_requests.value(command="PING") >= 1


# -- the SLURM admission seam ----------------------------------------------


def make_slurm(n_nodes=2):
    nodes = [make_node(f"c{i}", seed=i) for i in range(n_nodes)]
    return SlurmCluster("test", {"cpu": nodes})


def job(ncores=4, duration=600.0, deferrable=False, **kwargs):
    return JobSpec(
        user=kwargs.pop("user", "alice"),
        account="proj1",
        ncores=ncores,
        memory_bytes=8 * 2**30,
        walltime=duration * 2,
        duration=duration,
        deferrable=deferrable,
        **kwargs,
    )


class TestAdmissionSeam:
    def test_defer_parks_job_without_touching_queue(self):
        cluster = make_slurm()
        cluster.admission_hook = lambda uuid, spec, now: AdmissionDecision.DEFER
        job_id = cluster.submit(job(deferrable=True), now=0.0)
        cluster.step(1.0)
        unit = cluster.get_unit(job_id)
        assert unit.state == UnitState.PENDING
        assert cluster.deferred_count == 1
        assert cluster.deferred_job_ids == [job_id]
        assert cluster.queue_depth == 0

    def test_hook_exception_fails_open(self):
        cluster = make_slurm()

        def broken(uuid, spec, now):
            raise RuntimeError("policy daemon crashed")

        cluster.admission_hook = broken
        job_id = cluster.submit(job(), now=0.0)
        cluster.step(1.0)
        assert cluster.get_unit(job_id).state == UnitState.RUNNING
        assert cluster.admission_hook_errors == 1

    def test_bad_hook_return_fails_open(self):
        cluster = make_slurm()
        cluster.admission_hook = lambda uuid, spec, now: "defer maybe?"
        job_id = cluster.submit(job(), now=0.0)
        cluster.step(1.0)
        assert cluster.get_unit(job_id).state == UnitState.RUNNING
        assert cluster.admission_hook_errors == 1

    def test_release_restores_submit_order(self):
        cluster = make_slurm(n_nodes=1)
        ncores = cluster.partitions["cpu"][0].spec.ncores
        cluster.admission_hook = lambda uuid, spec, now: (
            AdmissionDecision.DEFER if spec.deferrable else AdmissionDecision.ADMIT
        )
        # A whole-node blocker keeps everything below it queued.
        blocker = cluster.submit(job(ncores=ncores, duration=100.0), now=0.0)
        first = cluster.submit(job(ncores=ncores, deferrable=True), now=1.0)
        second = cluster.submit(job(ncores=ncores), now=2.0)
        cluster.step(3.0)
        assert cluster.get_unit(blocker).state == UnitState.RUNNING
        assert cluster.deferred_job_ids == [first]
        cluster.admission_hook = None
        released = cluster.release_deferred(50.0)
        assert released == [first]
        # The released job merged back *ahead* of the later submission.
        assert [uuid for uuid, _ in cluster._queue] == [first, second]
        cluster.step(150.0)  # blocker done; first-submitted runs first
        assert cluster.get_unit(first).state == UnitState.RUNNING
        assert cluster.get_unit(second).state == UnitState.PENDING

    def test_fail_node_does_not_strand_deferred_jobs(self):
        cluster = make_slurm(n_nodes=2)
        cluster.admission_hook = lambda uuid, spec, now: AdmissionDecision.DEFER
        job_id = cluster.submit(job(deferrable=True), now=0.0)
        cluster.step(1.0)
        cluster.fail_node("c0", now=2.0)
        assert cluster.deferred_job_ids == [job_id]  # still parked, not lost
        cluster.admission_hook = None
        cluster.release_deferred(3.0)
        cluster.step(4.0)
        assert cluster.get_unit(job_id).state == UnitState.RUNNING

    def test_cancel_reaches_deferred_jobs(self):
        cluster = make_slurm()
        cluster.admission_hook = lambda uuid, spec, now: AdmissionDecision.DEFER
        job_id = cluster.submit(job(deferrable=True), now=0.0)
        cluster.step(1.0)
        cluster.cancel(job_id, now=2.0)
        assert cluster.get_unit(job_id).state == UnitState.CANCELLED
        assert cluster.deferred_count == 0


# -- policies --------------------------------------------------------------


class TestCarbonPolicy:
    def test_requires_exactly_one_mode(self):
        with pytest.raises(ValueError):
            CarbonPolicy(lambda t: 50.0)
        with pytest.raises(ValueError):
            CarbonPolicy(lambda t: 50.0, threshold_g_kwh=75.0, percentile=75.0)

    def test_threshold_classification(self):
        policy = CarbonPolicy(lambda t: 80.0, threshold_g_kwh=75.0)
        assert policy.is_high(0.0)
        policy = CarbonPolicy(lambda t: 70.0, threshold_g_kwh=75.0)
        assert not policy.is_high(0.0)

    def test_percentile_threshold_tracks_the_curve(self):
        # Intensity is high for ~26% of each day: the 70th percentile
        # of a trailing day sits at the low plateau.
        def intensity(t):
            return 100.0 if (t % 86400.0) < 6 * 3600.0 else 50.0

        policy = CarbonPolicy(intensity, percentile=70.0)
        now = 10 * 86400.0
        assert policy.current_threshold(now) == pytest.approx(50.0)
        assert policy.is_high(now + 3600.0)  # inside the high plateau
        assert not policy.is_high(now + 12 * 3600.0)


class TestCapPolicies:
    def test_static(self):
        node = busy_node()
        acc = NodeAccumulator(node)
        assert StaticCapPolicy(90.0).desired_cap_w(acc, 0.0) == 90.0
        with pytest.raises(ValueError):
            StaticCapPolicy(-1.0)

    def test_budget_engages_over_allowance(self):
        node = busy_node()
        acc = NodeAccumulator(node)
        policy = BudgetCapPolicy(target_w=50.0)
        acc.poll(0.0)
        assert policy.desired_cap_w(acc, 0.0) == 0.0  # baseline step
        t = 0.0
        for _ in range(20):  # a busy node draws far more than 50 W
            node.advance(t, 15.0)
            t += 15.0
            acc.poll(t)
        cap = policy.desired_cap_w(acc, t)
        assert cap == pytest.approx(50.0 * 0.9 / node.spec.sockets)

    def test_budget_clears_when_under(self):
        node = make_node()  # idle node: well under 50 W? (idle ~ tens of W)
        acc = NodeAccumulator(node)
        policy = BudgetCapPolicy(target_w=500.0)
        acc.poll(0.0)
        policy.desired_cap_w(acc, 0.0)
        node.advance(0.0, 15.0)
        acc.poll(15.0)
        assert policy.desired_cap_w(acc, 15.0) == 0.0


# -- the daemon's control loop --------------------------------------------


class TestGovernorDaemon:
    def test_defer_then_release_accounts_avoided_grams(self):
        clock = SimClock(start=0.0)
        cluster = make_slurm(n_nodes=1)
        node = cluster.partitions["cpu"][0]
        intensity = {"value": 100.0}
        policy = CarbonPolicy(lambda t: intensity["value"], threshold_g_kwh=75.0)
        daemon = GovernorDaemon(
            [node], clock, slurm=cluster, carbon_policy=policy,
            poll_interval=1.0, policy_interval=30.0,
        )
        assert cluster.admission_hook == daemon._admission
        assert daemon.high_carbon

        job_id = cluster.submit(job(ncores=node.spec.ncores, deferrable=True), now=0.0)
        daemon.register_timers(clock)
        clock.every(15.0, lambda now: node.advance(now, 15.0))
        clock.every(30.0, cluster.step)
        clock.advance(120.0)
        assert daemon.jobs_deferred_total == 1
        assert cluster.deferred_count == 1
        assert cluster.get_unit(job_id).state == UnitState.PENDING

        intensity["value"] = 40.0  # the window clears
        clock.advance(60.0)
        assert not daemon.high_carbon
        assert daemon.jobs_released_total == 1
        assert cluster.get_unit(job_id).state == UnitState.RUNNING
        clock.advance(300.0)  # job runs in the low window; energy accrues
        assert daemon.co2e_avoided_g > 0.0

    def test_carbon_cap_written_during_high_window(self):
        clock = SimClock(start=0.0)
        node = busy_node()
        policy = CarbonPolicy(
            lambda t: 100.0, threshold_g_kwh=75.0, high_cap_w=80.0
        )
        daemon = GovernorDaemon(
            [node], clock, carbon_policy=policy,
            poll_interval=1.0, policy_interval=30.0,
        )
        daemon.register_timers(clock)
        clock.advance(30.0)
        assert daemon.cap_writes_total == node.spec.sockets
        assert all(pkg.package.power_limit_uw == 80_000_000 for pkg in node.rapl)

    def test_policy_minimum_wins(self):
        clock = SimClock(start=0.0)
        node = busy_node()
        daemon = GovernorDaemon(
            [node], clock,
            cap_policy=StaticCapPolicy(120.0),
            carbon_policy=CarbonPolicy(
                lambda t: 100.0, threshold_g_kwh=75.0, high_cap_w=80.0
            ),
            poll_interval=1.0, policy_interval=30.0,
        )
        daemon.policy_step(30.0)
        assert node.rapl[0].package.power_limit_uw == 80_000_000

    def test_metrics_render_through_the_app(self):
        daemon = make_daemon()
        daemon.poll(0.0)
        from repro.common.httpx import Request

        resp = daemon.app.handle(Request.from_url("GET", "/metrics"))
        assert resp.status == 200
        body = resp.body.decode()
        assert "ceems_governor_polls_total 1" in body
        assert "ceems_governor_accumulated_joules_total" in body
        assert 'hostname="n0"' in body
        assert "ceems_governor_accumulator_staleness_seconds" in body
