"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster import StackSimulation, small_topology
from repro.cluster.simulation import SimulationConfig
from repro.common.clock import SimClock
from repro.hwsim import NodeSpec, SimulatedNode, UsageProfile
from repro.resourcemgr.workload import SizeClass, WorkloadMix


@pytest.fixture
def clock() -> SimClock:
    return SimClock(start=0.0)


@pytest.fixture
def cpu_node() -> SimulatedNode:
    """A plain Intel CPU node."""
    return SimulatedNode(NodeSpec(name="n1"), seed=1)


@pytest.fixture
def gpu_node() -> SimulatedNode:
    """An A100 GPU node whose IPMI covers GPU power."""
    return SimulatedNode(NodeSpec(name="g1", gpus=("A100",) * 4, memory_gb=384, dram_profile="ddr4-384g"), seed=2)


@pytest.fixture
def amd_node() -> SimulatedNode:
    """An AMD node (no DRAM RAPL domain)."""
    return SimulatedNode(NodeSpec(name="a1", cpu_model="amd-milan", cores_per_socket=32, memory_gb=256, dram_profile="ddr4-384g"), seed=3)


def make_profile(cpu: float = 0.8, mem: float = 0.5, gpu: float = 0.0) -> UsageProfile:
    return UsageProfile.constant(cpu, mem, gpu)


SMALL_MIX = WorkloadMix(
    mean_interarrival=200.0,
    duration_mu=6.9,
    sizes=(
        SizeClass("small", weight=0.6, ncores=4, memory_gb=8),
        SizeClass("medium", weight=0.25, ncores=16, memory_gb=32),
        SizeClass("gpu", weight=0.15, ncores=8, ngpus=1, memory_gb=64, partition="gpu"),
    ),
)


@pytest.fixture(scope="session")
def small_sim() -> StackSimulation:
    """A fully-run small deployment shared by read-only tests.

    Two hours of simulated life on 3 CPU + 1 GPU nodes.  Session
    scoped: tests using it must not mutate its state.
    """
    sim = StackSimulation(
        small_topology(cpu_nodes=3, gpu_nodes=1),
        SimulationConfig(seed=11, update_interval=600.0),
        workload=SMALL_MIX,
    )
    sim.run(2 * 3600)
    return sim
