"""Tests for procfs rendering and the node simulation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.hwsim import NodeSpec, SimulatedNode, UsageProfile
from repro.hwsim.procfs import USER_HZ, ProcFS, parse_meminfo, parse_proc_stat


class TestProcFS:
    def test_idle_invariant(self):
        """user + system + idle + iowait == ncpus * elapsed (in jiffies)."""
        proc = ProcFS(ncpus=4, memory_total_bytes=2**30)
        proc.advance(100.0)
        proc.charge_cpu(user_usec=120_000_000, system_usec=30_000_000)
        stat = parse_proc_stat(proc.render_stat())
        total = stat["user_usec"] + stat["system_usec"] + stat["idle_usec"] + stat["iowait_usec"]
        assert total == pytest.approx(4 * 100.0 * 1e6, rel=0.01)

    def test_cpu_util(self):
        proc = ProcFS(ncpus=2, memory_total_bytes=2**30)
        proc.advance(10.0)
        proc.charge_cpu(user_usec=10_000_000, system_usec=0)
        assert proc.cpu_util == pytest.approx(0.5)

    def test_meminfo_fields(self):
        proc = ProcFS(ncpus=1, memory_total_bytes=1024**3)
        proc.set_memory(512 * 1024**2, cached_bytes=128 * 1024**2)
        info = parse_meminfo(proc.render_meminfo())
        assert info["MemTotal"] == 1024**3
        assert info["MemAvailable"] == pytest.approx(512 * 1024**2, rel=0.01)
        assert info["Cached"] == 128 * 1024**2

    def test_memory_clamped_to_total(self):
        proc = ProcFS(ncpus=1, memory_total_bytes=1000)
        proc.set_memory(5000)
        assert proc.memory_used_bytes == 1000

    def test_stat_has_per_cpu_lines(self):
        proc = ProcFS(ncpus=3, memory_total_bytes=2**30)
        proc.advance(1.0)
        lines = proc.render_stat().splitlines()
        assert lines[0].startswith("cpu ")
        assert lines[1].startswith("cpu0 ")
        assert lines[3].startswith("cpu2 ")

    def test_parse_proc_stat_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_proc_stat("intr 12345\n")

    def test_jiffies_conversion(self):
        proc = ProcFS(ncpus=1, memory_total_bytes=2**30)
        proc.advance(1.0)
        proc.charge_cpu(user_usec=1_000_000, system_usec=0)
        first_line = proc.render_stat().splitlines()[0].split()
        assert int(first_line[1]) == USER_HZ  # 1 s of user time


class TestPlacement:
    def test_place_allocates_cores_and_gpus(self, gpu_node):
        task = gpu_node.place_task(
            "j1", "/system.slice/slurmstepd.scope/job_1", 8, 2**30,
            UsageProfile.constant(0.5), 0.0, ngpus=2,
        )
        assert len(task.cores) == 8
        assert task.gpu_indices == (0, 1)
        assert gpu_node.cgroupfs.exists(task.cgroup_path)

    def test_capacity_enforced(self, cpu_node):
        ncores = cpu_node.spec.ncores
        cpu_node.place_task("big", "/system.slice/slurmstepd.scope/job_9", ncores, 2**30, UsageProfile.constant(0.5), 0.0)
        assert not cpu_node.can_fit(1)
        with pytest.raises(SimulationError, match="cannot fit"):
            cpu_node.place_task("more", "/system.slice/slurmstepd.scope/job_10", 1, 2**30, UsageProfile.constant(0.5), 0.0)

    def test_duplicate_uuid_rejected(self, cpu_node):
        cpu_node.place_task("j", "/system.slice/slurmstepd.scope/job_1", 1, 2**30, UsageProfile.constant(0.5), 0.0)
        with pytest.raises(SimulationError, match="duplicate"):
            cpu_node.place_task("j", "/system.slice/slurmstepd.scope/job_2", 1, 2**30, UsageProfile.constant(0.5), 0.0)

    def test_remove_frees_resources(self, gpu_node):
        gpu_node.place_task("j", "/system.slice/slurmstepd.scope/job_1", 8, 2**30, UsageProfile.constant(0.5), 0.0, ngpus=4)
        gpu_node.remove_task("j")
        assert gpu_node.can_fit(gpu_node.spec.ncores, 4)
        assert not gpu_node.cgroupfs.exists("/system.slice/slurmstepd.scope/job_1")

    def test_remove_unknown_raises(self, cpu_node):
        with pytest.raises(SimulationError):
            cpu_node.remove_task("ghost")

    def test_cpuset_written_to_cgroup(self, cpu_node):
        task = cpu_node.place_task("j", "/system.slice/slurmstepd.scope/job_1", 4, 2**30, UsageProfile.constant(0.5), 0.0)
        text = cpu_node.cgroupfs.read(task.cgroup_path, "cpuset.cpus").strip()
        assert text == "0-3"


class TestNodePhysics:
    def test_advance_charges_cgroup_cpu_time(self, cpu_node):
        cpu_node.place_task("j", "/system.slice/slurmstepd.scope/job_1", 10, 2**30, UsageProfile.constant(1.0), 0.0)
        cpu_node.advance(5.0, 5.0)
        cg = cpu_node.cgroupfs.get("/system.slice/slurmstepd.scope/job_1")
        assert cg.usage_usec == pytest.approx(10 * 5 * 1e6, rel=0.01)

    def test_task_power_sums_to_node_power_minus_os(self, gpu_node):
        gpu_node.place_task("a", "/system.slice/slurmstepd.scope/job_1", 16, 64 * 2**30, UsageProfile.constant(0.9, 0.6, 0.8), 0.0, ngpus=2)
        gpu_node.place_task("b", "/system.slice/slurmstepd.scope/job_2", 8, 32 * 2**30, UsageProfile.constant(0.3, 0.2), 0.0)
        t = 0.0
        for _ in range(60):
            t += 5.0
            bd = gpu_node.advance(t, 5.0)
        attributed = gpu_node.true_task_power("a") + gpu_node.true_task_power("b")
        assert attributed <= bd.total_w
        # Unattributed power = OS sliver + the idle power of the two
        # GPUs no task is bound to (indices 2 and 3).
        unbound_gpu_w = sum(gpu_node.gpus[i].power_w for i in (2, 3))
        assert attributed + unbound_gpu_w == pytest.approx(bd.total_w, rel=0.05)

    def test_rapl_energy_matches_breakdown(self, cpu_node):
        cpu_node.place_task("j", "/system.slice/slurmstepd.scope/job_1", 16, 2**30, UsageProfile.constant(0.8), 0.0)
        total_cpu_j = 0.0
        t = 0.0
        for _ in range(100):
            t += 5.0
            bd = cpu_node.advance(t, 5.0)
            total_cpu_j += bd.cpu_w * 5.0
        rapl_total = sum(pkg.package.total_energy_joules for pkg in cpu_node.rapl)
        assert rapl_total == pytest.approx(total_cpu_j, rel=1e-6)

    def test_amd_node_has_no_dram_rapl(self, amd_node):
        assert all(pkg.dram is None for pkg in amd_node.rapl)
        assert not amd_node.spec.has_dram_rapl

    def test_gpu_energy_integrates(self, gpu_node):
        gpu_node.place_task("j", "/system.slice/slurmstepd.scope/job_1", 4, 2**30, UsageProfile.constant(0.5, 0.5, 1.0), 0.0, ngpus=1)
        for i in range(10):
            gpu_node.advance((i + 1) * 5.0, 5.0)
        gpu = gpu_node.gpus[0]
        assert gpu.energy_mj == pytest.approx(gpu.profile.max_w * 50.0 * 1000, rel=0.01)
        assert gpu_node.gpus[1].energy_mj < gpu.energy_mj  # idle GPU draws less

    def test_time_cannot_go_backwards(self, cpu_node):
        cpu_node.advance(10.0, 5.0)
        with pytest.raises(SimulationError):
            cpu_node.advance(5.0, 5.0)

    def test_dt_must_be_positive(self, cpu_node):
        with pytest.raises(SimulationError):
            cpu_node.advance(10.0, 0.0)

    @settings(max_examples=25, deadline=None)
    @given(
        cpu=st.floats(min_value=0, max_value=1),
        mem=st.floats(min_value=0.05, max_value=0.9),
        steps=st.integers(min_value=1, max_value=20),
    )
    def test_energy_conservation_property(self, cpu, mem, steps):
        """Oracle-attributed energy never exceeds total node energy."""
        node = SimulatedNode(NodeSpec(name="p"), seed=1)
        node.place_task("j", "/system.slice/slurmstepd.scope/job_1", 8, 2**30, UsageProfile.constant(cpu, mem), 0.0)
        total = 0.0
        t = 0.0
        for _ in range(steps):
            t += 5.0
            bd = node.advance(t, 5.0)
            total += bd.total_w * 5.0
        assert 0 <= node.true_task_energy_j["j"] <= total + 1e-6


class TestUsageProfile:
    def test_constant_profile(self):
        sample = UsageProfile.constant(0.7, 0.4, 0.2).evaluate(1000.0)
        assert sample.cpu_util == pytest.approx(0.7)
        assert sample.mem_fraction == pytest.approx(0.4)
        assert sample.gpu_util == pytest.approx(0.2)

    def test_ramp(self):
        profile = UsageProfile(cpu_base=1.0, ramp_seconds=100.0)
        assert profile.evaluate(50.0).cpu_util == pytest.approx(0.5)
        assert profile.evaluate(200.0).cpu_util == pytest.approx(1.0)

    def test_sinusoid_bounded(self):
        profile = UsageProfile(cpu_base=0.5, cpu_amplitude=0.9, cpu_period=100.0)
        values = [profile.evaluate(t).cpu_util for t in range(0, 200, 5)]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert max(values) > 0.9 and min(values) < 0.1

    def test_memory_growth_clamped(self):
        profile = UsageProfile(mem_base=0.5, mem_growth_per_hour=0.5)
        assert profile.evaluate(10 * 3600.0).mem_fraction == pytest.approx(0.95)

    def test_deterministic(self):
        p = UsageProfile(cpu_base=0.6, cpu_amplitude=0.2, phase=1.0)
        assert p.evaluate(123.0) == p.evaluate(123.0)

    def test_node_spec_properties(self):
        spec = NodeSpec(name="x", sockets=2, cores_per_socket=24, memory_gb=256)
        assert spec.ncores == 48
        assert spec.memory_bytes == 256 * 1024**3
        assert math.isclose(spec.memory_bytes / 1024**3, 256)
