"""Property tests: the PromQL engine vs naive reference computations.

Hypothesis generates random series layouts and sample streams; each
engine result must match an independently-coded brute-force
implementation of the same semantics.

The second half of this module is the **differential harness** for the
columnar evaluator: every reference query runs through both
``strategy="columnar"`` and ``strategy="per_step"`` over randomized
series (including staleness markers and samples straddling the
lookback boundary), asserting bit-identical ``RangeResult``s — not
approximately equal; ``np.array_equal`` on timestamps and values.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tsdb.model import Labels
from repro.tsdb.promql.engine import DEFAULT_LOOKBACK, PromQLEngine
from repro.tsdb.storage import TSDB

# series: (group_label, series_label) -> list of (t, v)
_series_strategy = st.dictionaries(
    st.tuples(
        st.sampled_from(["a", "b", "c"]),
        st.integers(min_value=0, max_value=5).map(str),
    ),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2000),
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
        ),
        min_size=1,
        max_size=20,
    ),
    min_size=1,
    max_size=8,
)


def build_db(layout, head_layout: str = "columnar") -> TSDB:
    db = TSDB(head_layout=head_layout)
    for (group, idx), points in layout.items():
        labels = Labels({"__name__": "m", "grp": group, "idx": idx})
        dedup = sorted({t: v for t, v in points}.items())
        for t, v in dedup:
            db.append(labels, float(t), v)
    return db


def naive_instant(layout, at: float) -> dict[tuple[str, str], float]:
    """Reference instant-selector semantics (lookback scan)."""
    out = {}
    for key, points in layout.items():
        dedup = sorted({t: v for t, v in points}.items())
        eligible = [(t, v) for t, v in dedup if at - DEFAULT_LOOKBACK < t <= at]
        if eligible:
            out[key] = eligible[-1][1]
    return out


@settings(max_examples=60, deadline=None)
@given(layout=_series_strategy, at=st.integers(min_value=0, max_value=2400))
def test_instant_selector_matches_reference(layout, at):
    engine = PromQLEngine(build_db(layout))
    result = engine.query("m", at=float(at))
    observed = {
        (el.labels.get("grp"), el.labels.get("idx")): el.value for el in result.vector
    }
    assert observed == pytest.approx(naive_instant(layout, float(at)))


@settings(max_examples=60, deadline=None)
@given(layout=_series_strategy, at=st.integers(min_value=0, max_value=2400))
def test_sum_by_matches_reference(layout, at):
    engine = PromQLEngine(build_db(layout))
    result = engine.query("sum by (grp) (m)", at=float(at))
    observed = {el.labels.get("grp"): el.value for el in result.vector}
    reference: dict[str, float] = {}
    for (group, _idx), value in naive_instant(layout, float(at)).items():
        reference[group] = reference.get(group, 0.0) + value
    assert set(observed) == set(reference)
    for group in observed:
        assert observed[group] == pytest.approx(reference[group], rel=1e-9, abs=1e-6)


@settings(max_examples=60, deadline=None)
@given(layout=_series_strategy, at=st.integers(min_value=0, max_value=2400))
def test_topk_matches_reference(layout, at):
    engine = PromQLEngine(build_db(layout))
    result = engine.query("topk(2, m)", at=float(at))
    reference = naive_instant(layout, float(at))
    expected_values = sorted(reference.values(), reverse=True)[:2]
    observed_values = sorted((el.value for el in result.vector), reverse=True)
    assert observed_values == pytest.approx(expected_values)


@settings(max_examples=40, deadline=None)
@given(
    slope=st.floats(min_value=0.01, max_value=100.0),
    gap=st.integers(min_value=1, max_value=60),
    n=st.integers(min_value=3, max_value=40),
)
def test_rate_of_linear_counter_is_slope(slope, gap, n):
    """For a perfectly linear counter fully covering the window, the
    extrapolated rate equals the slope regardless of sample spacing."""
    db = TSDB()
    labels = Labels({"__name__": "c"})
    for i in range(n):
        db.append(labels, float(i * gap), slope * i * gap)
    engine = PromQLEngine(db)
    window = (n - 1) * gap
    at = float((n - 1) * gap)
    result = engine.query(f"rate(c[{window + gap}s])", at=at)
    if result.vector:
        assert result.vector[0].value == pytest.approx(slope, rel=0.6)
        # and increase() is consistent with rate() by definition
        inc = engine.query(f"increase(c[{window + gap}s])", at=at)
        assert inc.vector[0].value == pytest.approx(
            result.vector[0].value * (window + gap), rel=1e-9
        )


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-1e5, max_value=1e5, allow_nan=False, width=32),
        min_size=1,
        max_size=25,
    )
)
def test_over_time_family_matches_numpy(values):
    db = TSDB()
    labels = Labels({"__name__": "g"})
    for i, v in enumerate(values):
        db.append(labels, float(i * 10), v)
    engine = PromQLEngine(db)
    at = float((len(values) - 1) * 10)
    window = f"[{len(values) * 10}s]"
    checks = {
        f"avg_over_time(g{window})": np.mean(values),
        f"sum_over_time(g{window})": np.sum(values),
        f"min_over_time(g{window})": np.min(values),
        f"max_over_time(g{window})": np.max(values),
        f"count_over_time(g{window})": len(values),
        f"last_over_time(g{window})": values[-1],
    }
    for query, expected in checks.items():
        result = engine.query(query, at=at)
        assert result.vector[0].value == pytest.approx(expected, rel=1e-6, abs=1e-6), query


@settings(max_examples=40, deadline=None)
@given(layout=_series_strategy)
def test_binary_op_vector_scalar_elementwise(layout):
    engine = PromQLEngine(build_db(layout))
    at = 2400.0
    base = engine.query("m", at=at)
    doubled = engine.query("m * 2 + 1", at=at)
    base_map = {el.labels.without_name(): el.value for el in base.vector}
    for el in doubled.vector:
        assert el.value == pytest.approx(base_map[el.labels] * 2 + 1, rel=1e-12, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(layout=_series_strategy, threshold=st.floats(min_value=-1e5, max_value=1e5, allow_nan=False))
def test_comparison_filter_matches_reference(layout, threshold):
    engine = PromQLEngine(build_db(layout))
    at = 2400.0
    kept = engine.query(f"m > {threshold!r}", at=at)
    reference = {k: v for k, v in naive_instant(layout, at).items() if v > threshold}
    observed = {
        (el.labels.get("grp"), el.labels.get("idx")): el.value for el in kept.vector
    }
    assert observed == pytest.approx(reference)


# ---------------------------------------------------------------------------
# Differential harness: columnar evaluator vs per-step reference.
# ---------------------------------------------------------------------------

# Like _series_strategy, but values occasionally become staleness
# markers (NaN samples), and timestamps spread wide enough that some
# windows straddle the 300 s lookback boundary.
_stale_series_strategy = st.dictionaries(
    st.tuples(
        st.sampled_from(["a", "b", "c"]),
        st.integers(min_value=0, max_value=5).map(str),
    ),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2000),
            st.one_of(
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
                st.just(math.nan),  # staleness marker
            ),
        ),
        min_size=1,
        max_size=20,
    ),
    min_size=1,
    max_size=8,
)

#: Every construct the engine supports, exercised through both
#: evaluators.  Compositions whose result order is defined only for
#: instant presentation (aggregating *over* topk/sort output) are the
#: one documented divergence and are deliberately absent.
DIFFERENTIAL_QUERIES = [
    "m",
    "m offset 45",
    'm{grp="a"}',
    'm{grp=~"a|b", idx!="3"}',
    "rate(m[4m])",
    "increase(m[3m])",
    "delta(m[5m])",
    "irate(m[4m])",
    "idelta(m[4m])",
    "changes(m[6m])",
    "resets(m[6m])",
    "deriv(m[5m])",
    "avg_over_time(m[4m])",
    "sum_over_time(m[4m])",
    "min_over_time(m[4m])",
    "max_over_time(m[4m])",
    "count_over_time(m[4m])",
    "stddev_over_time(m[4m])",
    "stdvar_over_time(m[4m])",
    "last_over_time(m[4m])",
    "present_over_time(m[4m])",
    "quantile_over_time(0.9, m[5m])",
    "sum by (grp) (m)",
    "avg without (idx) (m)",
    "count(m)",
    "min(m)",
    "max(m)",
    "stddev by (grp) (m)",
    "stdvar(m)",
    "quantile(0.7, m)",
    "topk(2, m)",
    "bottomk(2, m)",
    "m * 2 + 1",
    "m % 7",
    "m ^ 2",
    "m > 0",
    "m >= bool 0",
    "m + on(grp, idx) m",
    "m * on(grp) group_left() sum by (grp) (m)",
    "sum by (grp) (m) - on(grp) group_right() m",
    'm and m{grp="a"}',
    "m or vector(0)",
    'm unless m{idx="1"}',
    "-m",
    "abs(m)",
    "clamp(m, -10, 10)",
    "sgn(m)",
    'label_replace(m, "dst", "$1-x", "grp", "(.*)")',
    'label_join(m, "j", "-", "grp", "idx")',
    'absent(m{grp="zz"})',
    "absent(m)",
    'scalar(m{grp="a", idx="0"})',
    "time()",
    "timestamp(m)",
    "vector(7)",
    "sort(m)",
    "sort_desc(m)",
    "max_over_time(m[4m:1m])",
    "rate(m[6m:47s])",
    "avg_over_time(sum by (grp) (m)[5m:90s])",
]


def _run_both_range(engine, query, start, end, step):
    outcomes = []
    for strategy in ("columnar", "per_step"):
        try:
            outcomes.append(engine.query_range(query, start, end, step, strategy=strategy))
        except Exception as exc:  # noqa: BLE001 - recorded for comparison
            outcomes.append((type(exc), str(exc)))
    return outcomes


def assert_range_identical(engine, query, start, end, step):
    col, ref = _run_both_range(engine, query, start, end, step)
    if isinstance(col, tuple) or isinstance(ref, tuple):
        # Both evaluators must fail identically (type and message).
        assert col == ref, f"{query}: divergent errors {col!r} vs {ref!r}"
        return
    assert set(col.series) == set(ref.series), query
    for labels in ref.series:
        col_ts, col_vs = col.series[labels]
        ref_ts, ref_vs = ref.series[labels]
        assert np.array_equal(col_ts, ref_ts), f"{query}: {labels}"
        assert np.array_equal(col_vs, ref_vs, equal_nan=True), f"{query}: {labels}"


def assert_instant_identical(engine, query, at):
    outcomes = []
    for strategy in ("columnar", "per_step"):
        try:
            outcomes.append(engine.query(query, at, strategy=strategy))
        except Exception as exc:  # noqa: BLE001
            outcomes.append((type(exc), str(exc)))
    col, ref = outcomes
    if isinstance(col, tuple) or isinstance(ref, tuple):
        assert col == ref, f"{query}: divergent errors {col!r} vs {ref!r}"
        return
    assert col.is_scalar == ref.is_scalar, query
    if col.is_scalar:
        assert col.scalar == ref.scalar or (
            math.isnan(col.scalar) and math.isnan(ref.scalar)
        ), query
        return
    assert len(col.vector) == len(ref.vector), query
    for c, r in zip(col.vector, ref.vector):
        assert c.labels == r.labels, query
        assert c.value == r.value or (
            math.isnan(c.value) and math.isnan(r.value)
        ), query


@pytest.mark.parametrize("query", DIFFERENTIAL_QUERIES)
@settings(max_examples=10, deadline=None)
@given(
    layout=_stale_series_strategy,
    start=st.integers(min_value=-100, max_value=500),
    span=st.integers(min_value=60, max_value=1800),
    step=st.sampled_from([7.3, 15.0, 37.0, 61.7, 290.0]),
)
def test_columnar_matches_per_step(query, layout, start, span, step):
    engine = PromQLEngine(build_db(layout))
    assert_range_identical(engine, query, float(start), float(start + span), step)
    assert_instant_identical(engine, query, float(start + span // 2))


def test_columnar_lookback_boundary_identical():
    """At exactly t + lookback the sample must drop out of both paths."""
    db = TSDB()
    labels = Labels({"__name__": "m", "grp": "a", "idx": "0"})
    db.append(labels, 0.0, 42.0)
    engine = PromQLEngine(db)
    for strategy in ("columnar", "per_step"):
        inside = engine.query("m", 299.0, strategy=strategy)
        at_boundary = engine.query("m", 300.0, strategy=strategy)
        assert [el.value for el in inside.vector] == [42.0], strategy
        assert at_boundary.vector == [], strategy
    # and over a range whose steps straddle the boundary
    assert_range_identical(engine, "m", 0.0, 600.0, 60.0)


def test_columnar_staleness_marker_identical():
    """A NaN sample hides the series immediately, in both evaluators."""
    db = TSDB()
    labels = Labels({"__name__": "m", "grp": "a", "idx": "0"})
    db.append(labels, 0.0, 5.0)
    db.append(labels, 10.0, math.nan)
    db.append(labels, 20.0, 7.0)
    engine = PromQLEngine(db)
    for strategy in ("columnar", "per_step"):
        assert [el.value for el in engine.query("m", 5.0, strategy=strategy).vector] == [5.0]
        assert engine.query("m", 12.0, strategy=strategy).vector == []
        assert [el.value for el in engine.query("m", 25.0, strategy=strategy).vector] == [7.0]
    for query in ("m", "rate(m[1m])", "count_over_time(m[30s])", "sum(m)"):
        assert_range_identical(engine, query, 0.0, 120.0, 5.0)


def test_columnar_many_to_many_error_identical():
    """Duplicate one-side signatures raise the same QueryError."""
    db = TSDB()
    db.append(Labels({"__name__": "m", "grp": "a", "idx": "0"}), 0.0, 1.0)
    db.append(Labels({"__name__": "m", "grp": "a", "idx": "1"}), 0.0, 2.0)
    db.append(Labels({"__name__": "n", "grp": "a"}), 0.0, 3.0)
    engine = PromQLEngine(db)
    assert_range_identical(engine, "n * on(grp) m", 0.0, 60.0, 15.0)
    assert_instant_identical(engine, "n * on(grp) m", 30.0)


# ---------------------------------------------------------------------------
# Differential harness: columnar head layout vs list head layout.
# ---------------------------------------------------------------------------
#
# The ring-buffer head (``head_layout="columnar"``) must be
# *observationally identical* to the original list-backed head: same
# PromQL answers, bit for bit, under both evaluation strategies.  The
# hypothesis sweep feeds the same random layout (staleness markers
# included) into one TSDB of each layout and compares engine output
# across layouts; a deterministic test then stresses the paths the
# small random layouts cannot reach — buffer growth, tail overwrite
# after sealing, retention trims that cut through sealed chunks.


def _range_outcome(engine, query, start, end, step, strategy):
    try:
        return engine.query_range(query, start, end, step, strategy=strategy)
    except Exception as exc:  # noqa: BLE001 - recorded for comparison
        return (type(exc), str(exc))


def assert_layouts_identical(engines, query, start, end, step):
    """Engine output over a list-head and a columnar-head TSDB match."""
    for strategy in ("columnar", "per_step"):
        ref = _range_outcome(engines["list"], query, start, end, step, strategy)
        got = _range_outcome(engines["columnar"], query, start, end, step, strategy)
        if isinstance(ref, tuple) or isinstance(got, tuple):
            assert ref == got, f"{query} [{strategy}]: {ref!r} vs {got!r}"
            continue
        assert set(ref.series) == set(got.series), f"{query} [{strategy}]"
        for labels in ref.series:
            ref_ts, ref_vs = ref.series[labels]
            got_ts, got_vs = got.series[labels]
            assert ref_ts.tobytes() == got_ts.tobytes(), f"{query} [{strategy}]: {labels}"
            assert ref_vs.tobytes() == got_vs.tobytes(), f"{query} [{strategy}]: {labels}"


#: A representative slice of DIFFERENTIAL_QUERIES — the full list runs
#: in the strategy differential above; the layout differential only
#: needs one query per selector/kernel shape the head serves.
LAYOUT_QUERIES = [
    "m",
    'm{grp=~"a|b", idx!="3"}',
    "m offset 45",
    "rate(m[4m])",
    "avg_over_time(m[4m])",
    "quantile_over_time(0.9, m[5m])",
    "sum by (grp) (m)",
    "topk(2, m)",
    "m + on(grp, idx) m",
    "avg_over_time(sum by (grp) (m)[5m:90s])",
]


@pytest.mark.parametrize("query", LAYOUT_QUERIES)
@settings(max_examples=8, deadline=None)
@given(
    layout=_stale_series_strategy,
    start=st.integers(min_value=-100, max_value=500),
    span=st.integers(min_value=60, max_value=1800),
    step=st.sampled_from([7.3, 15.0, 61.7, 290.0]),
)
def test_head_layouts_identical(query, layout, start, span, step):
    engines = {
        hl: PromQLEngine(build_db(layout, head_layout=hl)) for hl in ("list", "columnar")
    }
    assert_layouts_identical(engines, query, float(start), float(start + span), step)


def test_head_layouts_identical_dense_with_seal_and_trim():
    """Deterministic stress: growth, sealing, tail overwrite, trims.

    800 samples/series forces several ring-buffer doublings and (after
    an explicit ``chunks()`` call) six sealed 120-sample mini-chunks;
    retention trims land once on a chunk boundary and once mid-chunk,
    exercising the lazy-reseal path.  The list head sees the exact
    same mutations and every engine answer must stay bit-identical.
    """
    dbs = {hl: TSDB(head_layout=hl) for hl in ("list", "columnar")}
    rng = np.random.default_rng(7)
    all_labels = [
        Labels({"__name__": "m", "grp": g, "idx": str(i)})
        for g in ("a", "b")
        for i in range(3)
    ]
    for labels in all_labels:
        vs = rng.normal(100.0, 25.0, size=800)
        for k in range(800):
            for db in dbs.values():
                db.append(labels, 15.0 * k, float(vs[k]))
    # Tail overwrite (idempotent re-ingest) after sealing mini-chunks.
    for db in dbs.values():
        for series in db.all_series():
            series.chunks()  # seal full segments on the columnar head
        db.append(all_labels[0], 15.0 * 799, -1.0)
    # Trim exactly on a 120-sample chunk boundary, then mid-chunk.
    for db in dbs.values():
        for series in db.all_series():
            series.truncate_before(15.0 * 240)
            series.truncate_before(15.0 * 250)
    engines = {hl: PromQLEngine(db) for hl, db in dbs.items()}
    for query in LAYOUT_QUERIES:
        assert_layouts_identical(engines, query, 3000.0, 12000.0, 61.7)
