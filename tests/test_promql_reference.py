"""Property tests: the PromQL engine vs naive reference computations.

Hypothesis generates random series layouts and sample streams; each
engine result must match an independently-coded brute-force
implementation of the same semantics.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tsdb.model import Labels
from repro.tsdb.promql.engine import DEFAULT_LOOKBACK, PromQLEngine
from repro.tsdb.storage import TSDB

# series: (group_label, series_label) -> list of (t, v)
_series_strategy = st.dictionaries(
    st.tuples(
        st.sampled_from(["a", "b", "c"]),
        st.integers(min_value=0, max_value=5).map(str),
    ),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2000),
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
        ),
        min_size=1,
        max_size=20,
    ),
    min_size=1,
    max_size=8,
)


def build_db(layout) -> TSDB:
    db = TSDB()
    for (group, idx), points in layout.items():
        labels = Labels({"__name__": "m", "grp": group, "idx": idx})
        dedup = sorted({t: v for t, v in points}.items())
        for t, v in dedup:
            db.append(labels, float(t), v)
    return db


def naive_instant(layout, at: float) -> dict[tuple[str, str], float]:
    """Reference instant-selector semantics (lookback scan)."""
    out = {}
    for key, points in layout.items():
        dedup = sorted({t: v for t, v in points}.items())
        eligible = [(t, v) for t, v in dedup if at - DEFAULT_LOOKBACK < t <= at]
        if eligible:
            out[key] = eligible[-1][1]
    return out


@settings(max_examples=60, deadline=None)
@given(layout=_series_strategy, at=st.integers(min_value=0, max_value=2400))
def test_instant_selector_matches_reference(layout, at):
    engine = PromQLEngine(build_db(layout))
    result = engine.query("m", at=float(at))
    observed = {
        (el.labels.get("grp"), el.labels.get("idx")): el.value for el in result.vector
    }
    assert observed == pytest.approx(naive_instant(layout, float(at)))


@settings(max_examples=60, deadline=None)
@given(layout=_series_strategy, at=st.integers(min_value=0, max_value=2400))
def test_sum_by_matches_reference(layout, at):
    engine = PromQLEngine(build_db(layout))
    result = engine.query("sum by (grp) (m)", at=float(at))
    observed = {el.labels.get("grp"): el.value for el in result.vector}
    reference: dict[str, float] = {}
    for (group, _idx), value in naive_instant(layout, float(at)).items():
        reference[group] = reference.get(group, 0.0) + value
    assert set(observed) == set(reference)
    for group in observed:
        assert observed[group] == pytest.approx(reference[group], rel=1e-9, abs=1e-6)


@settings(max_examples=60, deadline=None)
@given(layout=_series_strategy, at=st.integers(min_value=0, max_value=2400))
def test_topk_matches_reference(layout, at):
    engine = PromQLEngine(build_db(layout))
    result = engine.query("topk(2, m)", at=float(at))
    reference = naive_instant(layout, float(at))
    expected_values = sorted(reference.values(), reverse=True)[:2]
    observed_values = sorted((el.value for el in result.vector), reverse=True)
    assert observed_values == pytest.approx(expected_values)


@settings(max_examples=40, deadline=None)
@given(
    slope=st.floats(min_value=0.01, max_value=100.0),
    gap=st.integers(min_value=1, max_value=60),
    n=st.integers(min_value=3, max_value=40),
)
def test_rate_of_linear_counter_is_slope(slope, gap, n):
    """For a perfectly linear counter fully covering the window, the
    extrapolated rate equals the slope regardless of sample spacing."""
    db = TSDB()
    labels = Labels({"__name__": "c"})
    for i in range(n):
        db.append(labels, float(i * gap), slope * i * gap)
    engine = PromQLEngine(db)
    window = (n - 1) * gap
    at = float((n - 1) * gap)
    result = engine.query(f"rate(c[{window + gap}s])", at=at)
    if result.vector:
        assert result.vector[0].value == pytest.approx(slope, rel=0.6)
        # and increase() is consistent with rate() by definition
        inc = engine.query(f"increase(c[{window + gap}s])", at=at)
        assert inc.vector[0].value == pytest.approx(
            result.vector[0].value * (window + gap), rel=1e-9
        )


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-1e5, max_value=1e5, allow_nan=False, width=32),
        min_size=1,
        max_size=25,
    )
)
def test_over_time_family_matches_numpy(values):
    db = TSDB()
    labels = Labels({"__name__": "g"})
    for i, v in enumerate(values):
        db.append(labels, float(i * 10), v)
    engine = PromQLEngine(db)
    at = float((len(values) - 1) * 10)
    window = f"[{len(values) * 10}s]"
    checks = {
        f"avg_over_time(g{window})": np.mean(values),
        f"sum_over_time(g{window})": np.sum(values),
        f"min_over_time(g{window})": np.min(values),
        f"max_over_time(g{window})": np.max(values),
        f"count_over_time(g{window})": len(values),
        f"last_over_time(g{window})": values[-1],
    }
    for query, expected in checks.items():
        result = engine.query(query, at=at)
        assert result.vector[0].value == pytest.approx(expected, rel=1e-6, abs=1e-6), query


@settings(max_examples=40, deadline=None)
@given(layout=_series_strategy)
def test_binary_op_vector_scalar_elementwise(layout):
    engine = PromQLEngine(build_db(layout))
    at = 2400.0
    base = engine.query("m", at=at)
    doubled = engine.query("m * 2 + 1", at=at)
    base_map = {el.labels.without_name(): el.value for el in base.vector}
    for el in doubled.vector:
        assert el.value == pytest.approx(base_map[el.labels] * 2 + 1, rel=1e-12, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(layout=_series_strategy, threshold=st.floats(min_value=-1e5, max_value=1e5, allow_nan=False))
def test_comparison_filter_matches_reference(layout, threshold):
    engine = PromQLEngine(build_db(layout))
    at = 2400.0
    kept = engine.query(f"m > {threshold!r}", at=at)
    reference = {k: v for k, v in naive_instant(layout, at).items() if v > threshold}
    observed = {
        (el.labels.get("grp"), el.labels.get("idx")): el.value for el in kept.vector
    }
    assert observed == pytest.approx(reference)
