"""Tests for the PromQL lexer and parser."""

import pytest

from repro.common.errors import QueryError
from repro.tsdb.model import MatchOp
from repro.tsdb.promql.ast import (
    Aggregation,
    BinaryOp,
    Call,
    MatrixSelector,
    NumberLiteral,
    Paren,
    UnaryOp,
    VectorSelector,
)
from repro.tsdb.promql.lexer import TokenType, tokenize
from repro.tsdb.promql.parser import parse_expr


class TestLexer:
    def test_simple_tokens(self):
        tokens = tokenize("sum(rate(up[5m]))")
        types = [t.type for t in tokens]
        assert types[0] == TokenType.IDENT
        assert TokenType.DURATION in types
        assert types[-1] == TokenType.EOF

    def test_operators(self):
        tokens = tokenize("a == b != c =~ d !~ e >= f <= g")
        ops = [t.text for t in tokens if t.type == TokenType.OP]
        assert ops == ["==", "!=", "=~", "!~", ">=", "<="]

    def test_numbers(self):
        tokens = tokenize("1 2.5 1e3 1.5e-2 .5")
        values = [t.text for t in tokens if t.type == TokenType.NUMBER]
        assert values == ["1", "2.5", "1e3", "1.5e-2", ".5"]

    def test_durations(self):
        tokens = tokenize("[5m] [1h30m] [90s] [500ms]")
        durations = [t.text for t in tokens if t.type == TokenType.DURATION]
        assert durations == ["5m", "1h30m", "90s", "500ms"]

    def test_strings_with_escapes(self):
        tokens = tokenize(r'"a\"b" ' + r"'c\nd'")
        strings = [t.text for t in tokens if t.type == TokenType.STRING]
        assert strings == ['a"b', "c\nd"]

    def test_metric_name_with_colons(self):
        tokens = tokenize("ceems:compute_unit:power_watts")
        assert tokens[0].text == "ceems:compute_unit:power_watts"

    def test_comment_skipped(self):
        tokens = tokenize("up # a comment\n+ 1")
        texts = [t.text for t in tokens if t.type != TokenType.EOF]
        assert texts == ["up", "+", "1"]

    def test_unterminated_string_rejected(self):
        with pytest.raises(QueryError):
            tokenize('"never ends')

    def test_unexpected_character_rejected(self):
        with pytest.raises(QueryError):
            tokenize("up @ 5")


class TestSelectorParsing:
    def test_bare_metric(self):
        ast = parse_expr("up")
        assert isinstance(ast, VectorSelector)
        assert ast.name == "up"
        assert ast.matchers[0].value == "up"

    def test_matchers(self):
        ast = parse_expr('metric{a="1", b!="2", c=~"x.*", d!~"y"}')
        assert isinstance(ast, VectorSelector)
        ops = {m.name: m.op for m in ast.matchers if m.name != "__name__"}
        assert ops == {"a": MatchOp.EQ, "b": MatchOp.NEQ, "c": MatchOp.RE, "d": MatchOp.NRE}

    def test_nameless_selector(self):
        ast = parse_expr('{job="ceems"}')
        assert isinstance(ast, VectorSelector)
        assert ast.name == ""

    def test_empty_nameless_selector_rejected(self):
        with pytest.raises(QueryError):
            parse_expr("{}")

    def test_matrix_selector(self):
        ast = parse_expr("up[5m]")
        assert isinstance(ast, MatrixSelector)
        assert ast.range_seconds == 300.0

    def test_offset(self):
        ast = parse_expr("up offset 1h")
        assert isinstance(ast, VectorSelector)
        assert ast.offset == 3600.0

    def test_matrix_with_offset(self):
        ast = parse_expr("up[5m] offset 30m")
        assert isinstance(ast, MatrixSelector)
        assert ast.selector.offset == 1800.0

    def test_range_on_expression_rejected(self):
        with pytest.raises(QueryError):
            parse_expr("(up + 1)[5m]")


class TestFunctionParsing:
    def test_rate_call(self):
        ast = parse_expr("rate(up[5m])")
        assert isinstance(ast, Call)
        assert ast.func == "rate"
        assert isinstance(ast.args[0], MatrixSelector)

    def test_nested_calls(self):
        ast = parse_expr("clamp_min(rate(x[1m]), 0)")
        assert isinstance(ast, Call) and ast.func == "clamp_min"
        assert isinstance(ast.args[0], Call)
        assert isinstance(ast.args[1], NumberLiteral)

    def test_label_replace_strings(self):
        ast = parse_expr('label_replace(m, "dst", "$1", "src", "(.*)")')
        assert isinstance(ast, Call)
        assert len(ast.args) == 5

    def test_unknown_function_is_selector(self):
        """An unknown ident followed by parens is an error, not a call."""
        with pytest.raises(QueryError):
            parse_expr("frobnicate(up)")


class TestAggregationParsing:
    def test_sum_by(self):
        ast = parse_expr("sum by (job, instance) (up)")
        assert isinstance(ast, Aggregation)
        assert ast.op == "sum" and ast.grouping == ("job", "instance") and not ast.without

    def test_trailing_by(self):
        ast = parse_expr("sum(up) by (job)")
        assert isinstance(ast, Aggregation)
        assert ast.grouping == ("job",)

    def test_without(self):
        ast = parse_expr("avg without (instance) (up)")
        assert ast.without and ast.grouping == ("instance",)

    def test_topk_param(self):
        ast = parse_expr("topk(3, rate(x[1m]))")
        assert isinstance(ast, Aggregation)
        assert isinstance(ast.param, NumberLiteral) and ast.param.value == 3

    def test_quantile_param(self):
        ast = parse_expr("quantile(0.99, x)")
        assert ast.param.value == 0.99

    def test_topk_without_param_rejected(self):
        with pytest.raises(QueryError):
            parse_expr("topk(rate(x[1m]))")

    def test_sum_with_two_args_rejected(self):
        with pytest.raises(QueryError):
            parse_expr("sum(a, b)")


class TestBinaryOps:
    def test_precedence_mul_over_add(self):
        ast = parse_expr("1 + 2 * 3")
        assert isinstance(ast, BinaryOp) and ast.op == "+"
        assert isinstance(ast.rhs, BinaryOp) and ast.rhs.op == "*"

    def test_power_right_assoc(self):
        ast = parse_expr("2 ^ 3 ^ 2")
        assert ast.op == "^"
        assert isinstance(ast.rhs, BinaryOp) and ast.rhs.op == "^"

    def test_parens_override(self):
        ast = parse_expr("(1 + 2) * 3")
        assert ast.op == "*"
        assert isinstance(ast.lhs, Paren)

    def test_comparison_with_bool(self):
        ast = parse_expr("up > bool 0")
        assert ast.op == ">" and ast.return_bool

    def test_set_ops_precedence(self):
        ast = parse_expr("a and b or c")
        assert ast.op == "or"
        assert isinstance(ast.lhs, BinaryOp) and ast.lhs.op == "and"

    def test_vector_matching_on(self):
        ast = parse_expr("a * on(instance) b")
        assert ast.matching is not None
        assert ast.matching.on and ast.matching.labels == ("instance",)

    def test_vector_matching_ignoring(self):
        ast = parse_expr("a / ignoring(uuid) b")
        assert not ast.matching.on
        assert ast.matching.labels == ("uuid",)

    def test_group_left_with_include(self):
        ast = parse_expr("a * on(host) group_left(extra) b")
        assert ast.matching.group == "left"
        assert ast.matching.include == ("extra",)

    def test_group_right(self):
        ast = parse_expr("a * on(host) group_right() b")
        assert ast.matching.group == "right"

    def test_unary_minus(self):
        ast = parse_expr("-up")
        assert isinstance(ast, UnaryOp)
        assert parse_expr("-5") == NumberLiteral(-5.0)

    def test_bare_duration_is_seconds(self):
        ast = parse_expr("rate(x[1m]) * 1h")
        assert isinstance(ast.rhs, NumberLiteral) and ast.rhs.value == 3600.0


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "up +",
            "sum(",
            "up{a=}",
            "up[]",
            "up[5x]",
            "rate(up)",  # checked at eval time? parser allows; engine rejects
            "up)",
            "1 +* 2",
        ],
    )
    def test_malformed_queries(self, bad):
        if bad == "rate(up)":
            pytest.skip("arity of range functions is checked at evaluation")
        with pytest.raises(QueryError):
            parse_expr(bad)

    def test_error_carries_position(self):
        with pytest.raises(QueryError) as excinfo:
            parse_expr("up{a=}")
        assert "offset" in str(excinfo.value)

    def test_eq1_shape_parses(self):
        """The full Eq. (1) recording-rule expression must parse."""
        query = (
            '0.9 * (instance:ipmi_watts{nodegroup="intel-cpu"} * on(hostname, nodegroup) '
            '(instance:rapl_package_watts / on(hostname, nodegroup) '
            "(instance:rapl_package_watts + on(hostname, nodegroup) instance:rapl_dram_watts)))"
            " * on(hostname, nodegroup) group_right() "
            "(instance:unit_cpu_rate / on(hostname, nodegroup) group_left() instance:cpu_rate)"
        )
        ast = parse_expr(query)
        assert isinstance(ast, BinaryOp)
