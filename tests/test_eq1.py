"""Numerical fidelity tests for the paper's Eq. (1) recording rules.

Each test wires a single node with the real exporter → scrape → rules
pipeline and compares the recorded per-unit power against the
simulation's ground-truth attribution oracle.  Eq. (1) is an
*approximation* (the paper: it "stays a very good approximation"), so
the assertions check conserved totals tightly and per-job shares
loosely.
"""

import pytest

from repro.common.clock import SimClock
from repro.common.config import ExporterConfig
from repro.emissions import OWIDProvider, ProviderRegistry, RTEProvider
from repro.emissions.pipeline import EmissionsExporter
from repro.energy import (
    EMISSIONS_METRIC,
    POWER_METRIC,
    NodeGroup,
    emissions_rules,
    rules_for_group,
    standard_rule_groups,
)
from repro.energy.rules_library import JEAN_ZAY_GROUPS, NODE_POWER_METRIC
from repro.exporter import CEEMSExporter, DCGMExporter
from repro.hwsim import NodeSpec, SimulatedNode, UsageProfile
from repro.tsdb import ScrapeConfig, ScrapeManager, ScrapeTarget, TSDB
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.rules import RuleManager


class Rig:
    """One node + full measurement pipeline + rules."""

    def __init__(self, spec: NodeSpec, group: NodeGroup, seed: int = 5) -> None:
        self.clock = SimClock(start=0.0)
        self.node = SimulatedNode(spec, seed=seed)
        self.db = TSDB()
        self.scrapes = ScrapeManager(self.db, ScrapeConfig(interval=15.0))
        labels = {"hostname": spec.name, "nodegroup": group.name}
        exporter = CEEMSExporter(
            self.node,
            self.clock,
            ExporterConfig(collectors=("cgroup", "rapl", "ipmi", "node", "gpu_map")),
        )
        self.scrapes.add_target(
            ScrapeTarget(app=exporter.app, instance=f"{spec.name}:9010", job="ceems", group_labels=dict(labels))
        )
        if spec.gpus:
            dcgm = DCGMExporter(self.node, self.clock)
            self.scrapes.add_target(
                ScrapeTarget(app=dcgm.app, instance=f"{spec.name}:9400", job="dcgm", group_labels=dict(labels))
            )
        registry = ProviderRegistry()
        registry.register(RTEProvider(seed=1))
        registry.register(OWIDProvider())
        emissions = EmissionsExporter(registry, "FR", self.clock)
        self.scrapes.add_target(
            ScrapeTarget(app=emissions.app, instance="em:9020", job="emissions")
        )
        self.rules = RuleManager(self.db)
        self.rules.add_group(rules_for_group(group, interval=30.0))
        self.rules.add_group(emissions_rules(interval=30.0))
        self.clock.every(5.0, lambda now: self.node.advance(now, 5.0))
        self.scrapes.register_timer(self.clock)
        self.rules.register_timers(self.clock)
        self.engine = PromQLEngine(self.db)

    def run(self, seconds: float) -> None:
        self.clock.advance(seconds)

    def estimated_power(self, at: float) -> dict[str, float]:
        result = self.engine.query(POWER_METRIC, at=at)
        return {el.labels.get("uuid"): el.value for el in result.vector}

    def oracle_power(self) -> dict[str, float]:
        return {u: self.node.true_task_power(u) for u in self.node.tasks}


def job_path(uuid: str) -> str:
    return f"/system.slice/slurmstepd.scope/job_{uuid}"


class TestIntelDramVariant:
    """Full Eq. (1): IPMI split by RAPL CPU/DRAM ratio, then by shares."""

    @pytest.fixture(scope="class")
    def rig(self):
        rig = Rig(NodeSpec(name="intel0"), NodeGroup("intel-cpu", True, False, True))
        rig.node.place_task("1", job_path("1"), 24, 96 * 2**30, UsageProfile.constant(0.95, 0.7), 0.0)
        rig.node.place_task("2", job_path("2"), 8, 16 * 2**30, UsageProfile.constant(0.25, 0.3), 0.0)
        rig.run(1200.0)
        return rig

    def test_all_units_estimated(self, rig):
        assert set(rig.estimated_power(1200.0)) == {"1", "2"}

    def test_total_conserved_vs_ipmi(self, rig):
        """Per-job estimates sum to ≈ the IPMI node power."""
        estimates = rig.estimated_power(1200.0)
        ipmi = rig.engine.query("instance:ipmi_watts", at=1200.0).vector[0].value
        # 0.9 share follows CPU-time fractions (jobs own almost all CPU
        # time; the OS sliver is unattributed) + full 0.1 network share.
        assert sum(estimates.values()) <= ipmi * 1.001
        assert sum(estimates.values()) == pytest.approx(ipmi, rel=0.1)

    def test_heavier_job_gets_more_power(self, rig):
        estimates = rig.estimated_power(1200.0)
        assert estimates["1"] > 2.5 * estimates["2"]

    def test_shares_track_oracle(self, rig):
        """Eq. (1) share of each job is within 20 pp of ground truth.

        The systematic error source: Eq. (1) distributes *all* of the
        0.9·IPMI share by CPU-time/memory fractions, idle power
        included, while the oracle splits idle power evenly among
        jobs.  For a 24-core@95% vs 8-core@25% pair this costs ~15 pp
        — the price of the paper's simple model (measured in bench E1).
        """
        estimates = rig.estimated_power(1200.0)
        oracle = rig.oracle_power()
        est_total = sum(estimates.values())
        oracle_total = sum(oracle.values())
        for uuid in estimates:
            est_share = estimates[uuid] / est_total
            true_share = oracle[uuid] / oracle_total
            assert abs(est_share - true_share) < 0.20, uuid

    def test_node_power_metric_recorded(self, rig):
        result = rig.engine.query(NODE_POWER_METRIC, at=1200.0)
        assert result.vector[0].value > 0

    def test_emissions_metric_recorded(self, rig):
        result = rig.engine.query(EMISSIONS_METRIC, at=1200.0)
        values = {el.labels.get("uuid"): el.value for el in result.vector}
        assert set(values) == {"1", "2"}
        # g/s = W * factor / 3.6e6; with FR factors this is tiny
        power = rig.estimated_power(1200.0)
        for uuid in values:
            implied_factor = values[uuid] / power[uuid] * 3.6e6
            assert 15.0 < implied_factor < 160.0  # plausible FR factor


class TestAmdVariant:
    """Package-only RAPL: the 0.9 share follows CPU time alone."""

    @pytest.fixture(scope="class")
    def rig(self):
        spec = NodeSpec(name="amd0", cpu_model="amd-milan", cores_per_socket=32, memory_gb=256, dram_profile="ddr4-384g")
        rig = Rig(spec, NodeGroup("amd-cpu", False, False, True))
        rig.node.place_task("1", job_path("1"), 48, 128 * 2**30, UsageProfile.constant(0.9, 0.6), 0.0)
        rig.node.place_task("2", job_path("2"), 16, 32 * 2**30, UsageProfile.constant(0.9, 0.1), 0.0)
        rig.run(1200.0)
        return rig

    def test_estimates_exist_without_dram_rapl(self, rig):
        estimates = rig.estimated_power(1200.0)
        assert set(estimates) == {"1", "2"}

    def test_split_follows_cpu_time_only(self, rig):
        """Same utilisation, 3x cores -> ~3x the 0.9-share power."""
        estimates = rig.estimated_power(1200.0)
        ipmi = rig.engine.query("instance:ipmi_watts", at=1200.0).vector[0].value
        network_each = 0.1 * ipmi / 2
        share_1 = estimates["1"] - network_each
        share_2 = estimates["2"] - network_each
        assert share_1 / share_2 == pytest.approx(3.0, rel=0.05)

    def test_total_conserved(self, rig):
        estimates = rig.estimated_power(1200.0)
        ipmi = rig.engine.query("instance:ipmi_watts", at=1200.0).vector[0].value
        assert sum(estimates.values()) == pytest.approx(ipmi, rel=0.1)


class TestGpuIpmiInclusiveVariant:
    """IPMI covers GPU rails: GPU power subtracted then re-credited."""

    @pytest.fixture(scope="class")
    def rig(self):
        spec = NodeSpec(name="gpu0", gpus=("A100",) * 4, memory_gb=384, dram_profile="ddr4-384g", ipmi_includes_gpu=True)
        rig = Rig(spec, NodeGroup("gpu-ipmi-incl", True, True, True))
        rig.node.place_task("1", job_path("1"), 16, 128 * 2**30, UsageProfile.constant(0.6, 0.5, 0.9), 0.0, ngpus=2)
        rig.node.place_task("2", job_path("2"), 16, 128 * 2**30, UsageProfile.constant(0.6, 0.5), 0.0)
        rig.run(1200.0)
        return rig

    def test_gpu_job_dominates(self, rig):
        estimates = rig.estimated_power(1200.0)
        assert estimates["1"] > estimates["2"] + 300.0  # ~2 busy A100s

    def test_gpu_power_credited_to_bound_unit(self, rig):
        unit_gpu = rig.engine.query('instance:unit_gpu_watts{uuid="1"}', at=1200.0)
        assert unit_gpu.vector[0].value > 2 * 200.0  # two A100s at 90% util
        none_for_cpu_job = rig.engine.query('instance:unit_gpu_watts{uuid="2"}', at=1200.0)
        assert none_for_cpu_job.vector == []

    def test_total_conserved_incl_gpu(self, rig):
        estimates = rig.estimated_power(1200.0)
        ipmi = rig.engine.query("instance:ipmi_watts", at=1200.0).vector[0].value
        # idle power of the two unbound GPUs stays unattributed
        idle_unbound = sum(rig.node.gpus[i].power_w for i in (2, 3))
        assert sum(estimates.values()) == pytest.approx(ipmi - idle_unbound, rel=0.12)

    def test_cpu_only_job_unaffected_by_gpu(self, rig):
        """The CPU job's estimate is in CPU-node territory."""
        estimates = rig.estimated_power(1200.0)
        assert estimates["2"] < 400.0


class TestGpuIpmiExclusiveVariant:
    """IPMI excludes GPU rails: no subtraction, GPU added on top."""

    @pytest.fixture(scope="class")
    def rig(self):
        spec = NodeSpec(name="gpu1", gpus=("A100",) * 4, memory_gb=384, dram_profile="ddr4-384g", ipmi_includes_gpu=False)
        rig = Rig(spec, NodeGroup("gpu-ipmi-excl", True, True, False))
        rig.node.place_task("1", job_path("1"), 16, 128 * 2**30, UsageProfile.constant(0.6, 0.5, 0.9), 0.0, ngpus=2)
        rig.run(1200.0)
        return rig

    def test_estimate_exceeds_ipmi_reading(self, rig):
        """With GPU outside IPMI, unit power > node IPMI power."""
        estimates = rig.estimated_power(1200.0)
        ipmi = rig.engine.query("instance:ipmi_watts", at=1200.0).vector[0].value
        assert estimates["1"] > ipmi

    def test_total_is_ipmi_plus_bound_gpu(self, rig):
        estimates = rig.estimated_power(1200.0)
        ipmi = rig.engine.query("instance:ipmi_watts", at=1200.0).vector[0].value
        bound_gpu = sum(rig.node.gpus[i].power_w for i in (0, 1))
        assert sum(estimates.values()) == pytest.approx(ipmi + bound_gpu, rel=0.12)


class TestRuleLibraryShape:
    def test_jean_zay_groups_cover_paper_cases(self):
        names = {g.name for g in JEAN_ZAY_GROUPS}
        assert names == {"intel-cpu", "amd-cpu", "gpu-ipmi-incl", "gpu-ipmi-excl"}

    def test_standard_groups_include_emissions(self):
        groups = standard_rule_groups()
        assert any(g.name == "ceems-emissions" for g in groups)
        assert len(groups) == len(JEAN_ZAY_GROUPS) + 1

    def test_rules_parse(self):
        """Every rule in the library must be valid PromQL."""
        for group in standard_rule_groups():
            for rule in group.rules:
                rule.ast()  # raises on parse error

    def test_amd_group_has_no_dram_rules(self):
        group = rules_for_group(NodeGroup("amd-cpu", False, False, True))
        records = [r.record for r in group.rules]
        assert "instance:rapl_dram_watts" not in records

    def test_gpu_group_has_gpu_rules(self):
        group = rules_for_group(NodeGroup("gpu-ipmi-incl", True, True, True))
        records = [r.record for r in group.rules]
        assert "instance:unit_gpu_watts" in records
