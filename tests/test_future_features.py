"""Tests for the §IV future-work features: perf + eBPF + extensions."""

import pytest

from repro.common.clock import SimClock
from repro.common.config import ExporterConfig
from repro.energy import (
    DRAM_BW_METRIC,
    FLOPS_PER_WATT_METRIC,
    POWER_METRIC,
    POWER_METRIC_NETAWARE,
    NodeGroup,
    efficiency_rules,
    network_aware_rules,
    rules_for_group,
)
from repro.exporter import CEEMSExporter
from repro.exporter.future_collectors import EBPFNetCollector, PerfCollector
from repro.hwsim import NodeSpec, SimulatedNode, UsageProfile
from repro.hwsim.perf import CORE_HZ, TaskTelemetry, WorkloadSignature
from repro.tsdb import ScrapeConfig, ScrapeManager, ScrapeTarget, TSDB
from repro.tsdb import exposition
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.rules import RuleManager

JOB = "/system.slice/slurmstepd.scope/job_{}"


class TestWorkloadSignature:
    def test_deterministic_per_uuid(self):
        assert WorkloadSignature.from_uuid("1234") == WorkloadSignature.from_uuid("1234")

    def test_different_uuids_differ(self):
        assert WorkloadSignature.from_uuid("1") != WorkloadSignature.from_uuid("2")

    def test_network_heavy_scaling(self):
        light = WorkloadSignature.from_uuid("7")
        heavy = WorkloadSignature.from_uuid("7", network_heavy=True)
        assert heavy.net_tx_per_core_s == pytest.approx(light.net_tx_per_core_s * 10)

    def test_plausible_ranges(self):
        for uuid in map(str, range(50)):
            sig = WorkloadSignature.from_uuid(uuid)
            assert 0.5 <= sig.ipc <= 3.5
            assert 0.0 < sig.flop_fraction < 0.5
            assert 0.0 < sig.llc_miss_rate < 0.7


class TestPerfCounters:
    def test_charging_scales_with_busy_time(self):
        telemetry = TaskTelemetry.for_task("42")
        telemetry.perf.charge(10.0)
        once = telemetry.perf.instructions
        telemetry.perf.charge(10.0)
        assert telemetry.perf.instructions == pytest.approx(2 * once, rel=1e-6)

    def test_ipc_matches_signature(self):
        telemetry = TaskTelemetry.for_task("42")
        telemetry.perf.charge(100.0)
        assert telemetry.perf.ipc == pytest.approx(telemetry.perf.signature.ipc, rel=1e-3)
        assert telemetry.perf.cycles == pytest.approx(100.0 * CORE_HZ, rel=1e-6)

    def test_miss_ratio_matches_signature(self):
        telemetry = TaskTelemetry.for_task("42")
        telemetry.perf.charge(50.0)
        assert telemetry.perf.llc_miss_ratio == pytest.approx(
            telemetry.perf.signature.llc_miss_rate, rel=1e-2
        )

    def test_zero_charge_is_noop(self):
        telemetry = TaskTelemetry.for_task("42")
        telemetry.perf.charge(0.0)
        telemetry.net.charge(-1.0)
        assert telemetry.perf.cycles == 0
        assert telemetry.net.tx_bytes == 0

    def test_net_packets_derived(self):
        telemetry = TaskTelemetry.for_task("42")
        telemetry.net.charge(100.0)
        assert telemetry.net.tx_packets == pytest.approx(
            telemetry.net.tx_bytes / 1450.0, rel=0.01
        )


class TestCollectors:
    def make_node(self):
        node = SimulatedNode(NodeSpec(name="n"), seed=1)
        node.place_task("101", JOB.format("101"), 8, 2**30, UsageProfile.constant(0.8), 0.0)
        node.place_task("102", JOB.format("102"), 4, 2**30, UsageProfile.constant(0.4), 0.0)
        for i in range(12):
            node.advance((i + 1) * 5.0, 5.0)
        return node

    def test_perf_collector_families(self):
        node = self.make_node()
        families = {f.name: f for f in PerfCollector(node).collect(60.0)}
        assert len(families) == 6
        instructions = families["ceems_compute_unit_perf_instructions_total"]
        assert {p.labels["uuid"] for p in instructions.points} == {"101", "102"}
        by_uuid = {p.labels["uuid"]: p.value for p in instructions.points}
        # 8 cores @80% vs 4 cores @40%: more busy time -> more instructions
        # unless IPC skews it; compare cycles instead which are pure time.
        cycles = {p.labels["uuid"]: p.value for p in families["ceems_compute_unit_perf_cycles_total"].points}
        assert cycles["101"] == pytest.approx(4 * cycles["102"], rel=0.01)
        del by_uuid

    def test_ebpf_collector_families(self):
        node = self.make_node()
        families = {f.name: f for f in EBPFNetCollector(node).collect(60.0)}
        assert len(families) == 4
        tx = families["ceems_compute_unit_net_tx_bytes_total"]
        assert all(p.value > 0 for p in tx.points)

    def test_counters_removed_with_task(self):
        node = self.make_node()
        node.remove_task("101")
        families = {f.name: f for f in PerfCollector(node).collect(60.0)}
        uuids = {p.labels["uuid"] for p in families["ceems_compute_unit_perf_cycles_total"].points}
        assert uuids == {"102"}

    def test_exporter_integration(self):
        node = self.make_node()
        exporter = CEEMSExporter(
            node,
            SimClock(start=60.0),
            ExporterConfig(collectors=("cgroup", "ebpf_net", "perf")),
        )
        families = {f.name for f in exposition.parse(exporter.app.get("/metrics").body.decode())}
        assert "ceems_compute_unit_net_tx_bytes_total" in families
        assert "ceems_compute_unit_perf_flops_total" in families


class FullRig:
    """Exporter + scrape + standard/netaware/efficiency rules."""

    def __init__(self):
        self.clock = SimClock(start=0.0)
        self.node = SimulatedNode(NodeSpec(name="n1"), seed=4)
        self.db = TSDB()
        scrapes = ScrapeManager(self.db, ScrapeConfig(interval=15.0))
        exporter = CEEMSExporter(
            self.node,
            self.clock,
            ExporterConfig(collectors=("cgroup", "rapl", "ipmi", "node", "gpu_map", "ebpf_net", "perf")),
        )
        scrapes.add_target(
            ScrapeTarget(app=exporter.app, instance="n1:9010", job="ceems",
                         group_labels={"hostname": "n1", "nodegroup": "intel-cpu"})
        )
        group = NodeGroup("intel-cpu", True, False, True)
        rules = RuleManager(self.db)
        rules.add_group(rules_for_group(group, 30.0))
        rules.add_group(network_aware_rules(group, 30.0))
        rules.add_group(efficiency_rules(30.0))
        self.clock.every(5.0, lambda now: self.node.advance(now, 5.0))
        scrapes.register_timer(self.clock)
        rules.register_timers(self.clock)
        self.engine = PromQLEngine(self.db)


class TestExtensionRules:
    @pytest.fixture(scope="class")
    def rig(self):
        rig = FullRig()
        rig.node.place_task("1", JOB.format("1"), 16, 32 * 2**30, UsageProfile.constant(0.8, 0.4), 0.0)
        rig.node.place_task("2", JOB.format("2"), 16, 32 * 2**30, UsageProfile.constant(0.8, 0.4), 0.0)
        rig.clock.advance(900.0)
        return rig

    def test_netaware_power_recorded(self, rig):
        result = rig.engine.query(POWER_METRIC_NETAWARE, at=900.0)
        assert {el.labels.get("uuid") for el in result.vector} == {"1", "2"}

    def test_netaware_conserves_total(self, rig):
        """Both variants attribute the same total; only the split moves."""
        std = sum(el.value for el in rig.engine.query(POWER_METRIC, at=900.0).vector)
        net = sum(el.value for el in rig.engine.query(POWER_METRIC_NETAWARE, at=900.0).vector)
        assert net == pytest.approx(std, rel=0.02)

    def test_netaware_split_follows_traffic(self, rig):
        """Identical CPU/memory profiles: any per-job difference in the
        two variants comes from the network term following traffic."""
        def by_uuid(metric):
            return {
                el.labels.get("uuid"): el.value
                for el in rig.engine.query(metric, at=900.0).vector
            }

        std = by_uuid(POWER_METRIC)
        net = by_uuid(POWER_METRIC_NETAWARE)
        traffic = by_uuid("instance:unit_net_rate")
        ipmi = rig.engine.query("instance:ipmi_watts", at=900.0).vector[0].value
        total_traffic = sum(traffic.values())
        for uuid, std_watts in std.items():
            expected_shift = 0.1 * ipmi * (traffic[uuid] / total_traffic - 0.5)
            assert net[uuid] - std_watts == pytest.approx(expected_shift, abs=2.0)

    def test_flops_per_watt_recorded(self, rig):
        result = rig.engine.query(FLOPS_PER_WATT_METRIC, at=900.0)
        assert len(result.vector) == 2
        for el in result.vector:
            assert 1e6 < el.value < 1e12  # GFLOPS/W territory

    def test_dram_bandwidth_recorded(self, rig):
        result = rig.engine.query(DRAM_BW_METRIC, at=900.0)
        assert len(result.vector) == 2
        assert all(el.value > 0 for el in result.vector)

    def test_standalone_netaware_group(self):
        """The ablation mode records its own intermediates."""
        group = network_aware_rules(NodeGroup("intel-cpu", True, False, True), standalone=True)
        records = [r.record for r in group.rules]
        assert "instance:ipmi_watts" in records
        assert POWER_METRIC_NETAWARE in records
        for rule in group.rules:
            rule.ast()  # parses
