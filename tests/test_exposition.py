"""Tests for the Prometheus text exposition format."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ScrapeError
from repro.tsdb.exposition import (
    Exemplar,
    MetricFamily,
    MetricPoint,
    clear_render_caches,
    parse,
    parse_exemplar,
    parse_sample_line,
    render,
    split_exemplar,
    to_labels,
)


class TestRender:
    def test_basic_family(self):
        family = MetricFamily("up", help="Target up.", type="gauge")
        family.add(1.0, job="ceems")
        text = render([family])
        assert "# HELP up Target up." in text
        assert "# TYPE up gauge" in text
        assert 'up{job="ceems"} 1' in text

    def test_no_labels(self):
        family = MetricFamily("total", type="counter")
        family.add(42.5)
        assert "total 42.5" in render([family])

    def test_label_escaping(self):
        family = MetricFamily("m", type="gauge")
        family.add(1.0, path='C:\\dir "quoted"\nnewline')
        text = render([family])
        assert '\\\\' in text and '\\"' in text and "\\n" in text

    def test_special_values(self):
        family = MetricFamily("m", type="gauge")
        family.points = [
            MetricPoint({"k": "nan"}, math.nan),
            MetricPoint({"k": "inf"}, math.inf),
            MetricPoint({"k": "ninf"}, -math.inf),
        ]
        text = render([family])
        assert " NaN" in text and " +Inf" in text and " -Inf" in text

    def test_timestamp_rendering(self):
        family = MetricFamily("m", type="gauge")
        family.add(1.0, timestamp_ms=1700000000000)
        assert "m 1 1700000000000" in render([family])

    def test_labels_sorted(self):
        family = MetricFamily("m", type="gauge")
        family.add(1.0, zeta="1", alpha="2")
        assert 'm{alpha="2",zeta="1"}' in render([family])


class TestParse:
    def test_parse_basic(self):
        families = parse('# TYPE up gauge\nup{job="x"} 1\n')
        assert len(families) == 1
        assert families[0].name == "up"
        assert families[0].type == "gauge"
        assert families[0].points[0].labels == {"job": "x"}
        assert families[0].points[0].value == 1.0

    def test_parse_help(self):
        families = parse("# HELP up Target is up\n# TYPE up gauge\nup 1\n")
        assert families[0].help == "Target is up"

    def test_parse_without_metadata(self):
        families = parse("raw_metric 3.5\n")
        assert families[0].type == "untyped"
        assert families[0].points[0].value == 3.5

    def test_parse_special_values(self):
        families = parse("m NaN\n")
        assert math.isnan(families[0].points[0].value)
        families = parse("m +Inf\nm2 -Inf\n")
        assert families[0].points[0].value == math.inf

    def test_parse_timestamp(self):
        families = parse("m 1 1700000000000\n")
        assert families[0].points[0].timestamp_ms == 1700000000000

    def test_parse_escaped_labels(self):
        families = parse('m{path="a\\\\b\\"c\\nd"} 1\n')
        assert families[0].points[0].labels["path"] == 'a\\b"c\nd'

    def test_blank_lines_and_comments_skipped(self):
        families = parse("\n# random comment\nm 1\n\n")
        assert len(families) == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "m{a=} 1",
            'm{a="unterminated} 1',
            "m{=x} 1",
            "m",
            "m{} notanumber",
            "# TYPE m sometype\nm 1",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ScrapeError):
            parse(bad)

    def test_multiple_families(self):
        text = "# TYPE a counter\na 1\n# TYPE b gauge\nb{x=\"1\"} 2\nb{x=\"2\"} 3\n"
        families = {f.name: f for f in parse(text)}
        assert families["a"].type == "counter"
        assert len(families["b"].points) == 2


class TestToLabels:
    def test_metric_labels_win_over_target_labels(self):
        """honor_labels semantics for exporter-supplied identity."""
        point = MetricPoint({"uuid": "123", "instance": "from-metric"}, 1.0)
        labels = to_labels("m", point, {"instance": "target:9010", "job": "ceems"})
        assert labels.get("instance") == "from-metric"
        assert labels.get("job") == "ceems"
        assert labels.get("uuid") == "123"
        assert labels.metric_name == "m"


# The text format escapes only ``\n`` — other line-breaking
# characters (``\r``, U+2028/U+2029, category Zl/Zp) would split the
# rendered line at parse time.  That is a (pre-existing) limitation of
# the exposition format itself, so the fuzz alphabet excludes them.
_label_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc", "Zl", "Zp")),
    min_size=0,
    max_size=15,
)


@given(
    st.lists(
        st.tuples(
            st.from_regex(r"[a-z_][a-z0-9_]{0,6}", fullmatch=True),
            _label_values,
            st.floats(allow_nan=False, allow_infinity=False, width=32),
        ),
        min_size=1,
        max_size=8,
        unique_by=lambda t: (t[0], t[1]),
    )
)
def test_render_parse_roundtrip_property(points):
    """Anything rendered must parse back identically."""
    family = MetricFamily("test_metric", help="h", type="gauge")
    for label_name, label_value, value in points:
        family.add(value, **{label_name: label_value})
    parsed = parse(render([family]))
    assert len(parsed) == 1
    reparsed = parsed[0]
    assert reparsed.name == "test_metric"
    originals = {tuple(sorted(p.labels.items())): p.value for p in family.points}
    observed = {tuple(sorted(p.labels.items())): p.value for p in reparsed.points}
    assert set(observed) == set(originals)
    for key, value in observed.items():
        assert value == pytest.approx(originals[key], rel=1e-6)


# Deliberately nasty label values: quote/backslash escapes, '}' and
# ',' inside quoted values, leading/trailing spaces — everything the
# scrape fast lane's prefix splitter has to survive.
_nasty_values = st.text(
    alphabet=st.one_of(
        st.sampled_from(list('\\"\n}{,= ')),
        st.characters(blacklist_categories=("Cs", "Cc", "Zl", "Zp")),
    ),
    min_size=0,
    max_size=12,
)
_any_value = st.one_of(
    st.floats(allow_nan=True, allow_infinity=True),
    st.integers(min_value=-(10**14), max_value=10**14).map(float),
)


@given(
    st.lists(
        st.tuples(
            st.from_regex(r"[a-z_][a-z0-9_]{0,5}", fullmatch=True),
            st.lists(
                st.tuples(st.from_regex(r"[a-z_][a-z0-9_]{0,5}", fullmatch=True), _nasty_values),
                min_size=0,
                max_size=3,
                unique_by=lambda kv: kv[0],
            ),
            _any_value,
            st.one_of(st.none(), st.integers(min_value=0, max_value=2**50)),
        ),
        min_size=1,
        max_size=10,
    )
)
def test_render_parse_roundtrip_nasty(samples):
    """Exact roundtrip for hostile escapes, NaN/±Inf and timestamps.

    Values compare *exactly* (render emits ``repr``-precision floats),
    and every (labels, value, timestamp) triple must survive — this is
    the contract the scrape cache's raw-text keying leans on.
    """
    families: list[MetricFamily] = []
    by_name: dict[str, MetricFamily] = {}
    for name, labelitems, value, ts in samples:
        fam = by_name.get(name)
        if fam is None:
            fam = by_name[name] = MetricFamily(name, type="gauge")
            families.append(fam)
        fam.points.append(MetricPoint(labels=dict(labelitems), value=value, timestamp_ms=ts))

    def normalize(fams):
        out = set()
        for fam in fams:
            for p in fam.points:
                key = "NaN" if math.isnan(p.value) else p.value
                out.add((fam.name, tuple(sorted(p.labels.items())), key, p.timestamp_ms))
        return out

    parsed = parse(render(families))
    assert normalize(parsed) == normalize(families)


# -- exemplars ---------------------------------------------------------------


class TestExemplars:
    def test_render_counter_exemplar(self):
        fam = MetricFamily("hits_total", type="counter")
        fam.add(5.0, exemplar=Exemplar({"trace_id": "abc"}, 1.0, 12.5), path="/x")
        text = render([fam])
        assert 'hits_total{path="/x"} 5 # {trace_id="abc"} 1 12.5\n' in text

    def test_render_exemplar_without_timestamp(self):
        fam = MetricFamily("m", type="counter")
        fam.add(1.0, exemplar=Exemplar({"trace_id": "t"}, 0.25))
        assert 'm 1 # {trace_id="t"} 0.25\n' in render([fam])

    def test_parse_attaches_exemplar(self):
        text = 'lat_bucket{le="0.5"} 3 # {trace_id="deadbeef"} 0.42 99.5\n'
        fams = parse(text)
        point = fams[0].points[0]
        assert point.exemplar is not None
        assert point.exemplar.labels == {"trace_id": "deadbeef"}
        assert point.exemplar.value == 0.42
        assert point.exemplar.timestamp == 99.5

    def test_split_exemplar_ignores_quoted_hash(self):
        line = 'm{path="/x#frag"} 1 # {trace_id="a"} 2'
        sample, ex = split_exemplar(line)
        assert sample == 'm{path="/x#frag"} 1'
        assert ex == '# {trace_id="a"} 2'

    def test_sample_timestamp_and_exemplar_coexist(self):
        name, labels, value, ts, ex = parse_sample_line(
            'm{a="b"} 2 1500 # {trace_id="t"} 2'
        )
        assert (value, ts) == (2.0, 1500)
        assert ex.value == 2.0 and ex.timestamp is None

    @pytest.mark.parametrize(
        "bad",
        [
            "# trace 1",  # no label set
            '# {trace_id="a" 1',  # unterminated
            '# {trace_id="a"}',  # no value
            '# {trace_id="a"} 1 2 3',  # trailing tokens
            '# {trace_id="a"} 1 x',  # bad timestamp
            '# {trace_id=a} 1',  # unquoted label value
        ],
    )
    def test_malformed_exemplars_rejected(self, bad):
        with pytest.raises(ScrapeError):
            parse_exemplar(bad, 1)

    def test_empty_exemplar_labelset_allowed(self):
        ex = parse_exemplar("# {} 1.5", 1)
        assert ex.labels == {} and ex.value == 1.5

    def test_exemplar_special_values(self):
        for text, check in [
            ("# {} NaN", lambda v: math.isnan(v)),
            ("# {} +Inf", lambda v: v == math.inf),
            ("# {} -Inf", lambda v: v == -math.inf),
        ]:
            assert check(parse_exemplar(text, 1).value)


_exemplar_ts = st.one_of(
    st.none(),
    st.floats(min_value=0, max_value=2**31, allow_nan=False, width=32),
)


@given(
    st.lists(
        st.tuples(
            st.from_regex(r"[a-z_][a-z0-9_]{0,5}", fullmatch=True),
            st.lists(
                st.tuples(st.from_regex(r"[a-z_][a-z0-9_]{0,5}", fullmatch=True), _nasty_values),
                min_size=0,
                max_size=2,
                unique_by=lambda kv: kv[0],
            ),
            _any_value,
            st.one_of(st.none(), st.integers(min_value=0, max_value=2**50)),
            st.one_of(
                st.none(),
                st.tuples(
                    st.lists(
                        st.tuples(
                            st.from_regex(r"[a-z_][a-z0-9_]{0,5}", fullmatch=True),
                            _nasty_values,
                        ),
                        min_size=0,
                        max_size=2,
                        unique_by=lambda kv: kv[0],
                    ),
                    _any_value,
                    _exemplar_ts,
                ),
            ),
        ),
        min_size=1,
        max_size=8,
    )
)
def test_render_parse_roundtrip_exemplars(samples):
    """Exemplar-carrying lines roundtrip exactly — hostile escapes,
    NaN/±Inf exemplar values and missing timestamps included."""
    families: list[MetricFamily] = []
    by_name: dict[str, MetricFamily] = {}
    for name, labelitems, value, ts, extuple in samples:
        fam = by_name.get(name)
        if fam is None:
            fam = by_name[name] = MetricFamily(name, type="counter")
            families.append(fam)
        exemplar = None
        if extuple is not None:
            ex_labels, ex_value, ex_ts = extuple
            exemplar = Exemplar(dict(ex_labels), ex_value, ex_ts)
        fam.points.append(
            MetricPoint(
                labels=dict(labelitems),
                value=value,
                timestamp_ms=ts,
                exemplar=exemplar,
            )
        )

    def norm_value(v):
        return "NaN" if isinstance(v, float) and math.isnan(v) else v

    def norm_exemplar(ex):
        if ex is None:
            return None
        return (
            tuple(sorted(ex.labels.items())),
            norm_value(ex.value),
            norm_value(ex.timestamp),
        )

    def normalize(fams):
        out = set()
        for fam in fams:
            for p in fam.points:
                out.add(
                    (
                        fam.name,
                        tuple(sorted(p.labels.items())),
                        norm_value(p.value),
                        p.timestamp_ms,
                        norm_exemplar(p.exemplar),
                    )
                )
        return out

    parsed = parse(render(families))
    assert normalize(parsed) == normalize(families)


def test_render_cache_cold_warm_identical():
    """Repeat renders must be byte-identical, cold or warm cache."""
    fam = MetricFamily("m", help="h", type="gauge")
    fam.add(1.5, path='a\\b"c\nd', zone="fr")
    fam.add(math.nan, uuid="x")
    fam2 = MetricFamily("plain", type="counter")
    fam2.add(7.0)
    clear_render_caches()
    cold = render([fam, fam2])
    warm = render([fam, fam2])
    clear_render_caches()
    recold = render([fam, fam2])
    assert cold == warm == recold


def test_render_cache_not_stale_after_value_and_label_change():
    fam = MetricFamily("m", type="gauge")
    fam.add(1.0, uuid="a")
    first = render([fam])
    fam.points[0].value = 2.0
    assert " 2" in render([fam])
    fam.points[0].labels["uuid"] = "b"
    changed = render([fam])
    assert 'uuid="b"' in changed and 'uuid="a"' not in changed
    assert first != changed
