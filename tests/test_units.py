"""Unit tests for repro.common.units."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.units import (
    JOULES_PER_KWH,
    Energy,
    Power,
    format_bytes,
    format_co2,
    format_duration,
    format_energy,
    format_power,
    parse_duration,
)


class TestEnergy:
    def test_from_microjoules(self):
        assert Energy.from_microjoules(2_000_000).joules == pytest.approx(2.0)

    def test_from_kwh(self):
        assert Energy.from_kwh(1.0).joules == pytest.approx(3.6e6)

    def test_kwh_roundtrip(self):
        assert Energy(7.2e6).kwh == pytest.approx(2.0)

    def test_wh(self):
        assert Energy(3600.0).wh == pytest.approx(1.0)

    def test_emissions(self):
        # 1 kWh at 56 g/kWh (France) = 56 g
        assert Energy.from_kwh(1.0).emissions(56.0) == pytest.approx(56.0)

    def test_add_sub(self):
        assert (Energy(3.0) + Energy(4.0)).joules == 7.0
        assert (Energy(3.0) - Energy(4.0)).joules == -1.0

    def test_scalar_mul(self):
        assert (Energy(3.0) * 2).joules == 6.0
        assert (2 * Energy(3.0)).joules == 6.0

    def test_div_by_energy_is_ratio(self):
        assert Energy(6.0) / Energy(3.0) == 2.0

    def test_div_by_scalar(self):
        assert (Energy(6.0) / 3).joules == 2.0

    def test_over_gives_power(self):
        assert Energy(100.0).over(10.0).watts == 10.0

    def test_ordering(self):
        assert Energy(1.0) < Energy(2.0)
        assert Energy(2.0) <= Energy(2.0)

    def test_zero(self):
        assert Energy.zero().joules == 0.0

    def test_add_non_energy_raises(self):
        with pytest.raises(TypeError):
            Energy(1.0) + 3.0  # type: ignore[operator]

    @given(st.floats(min_value=0, max_value=1e12, allow_nan=False))
    def test_microjoule_roundtrip_property(self, uj):
        e = Energy.from_microjoules(uj)
        assert e.microjoules == pytest.approx(uj, rel=1e-9, abs=1e-6)


class TestPower:
    def test_milliwatts(self):
        assert Power.from_milliwatts(1500).watts == pytest.approx(1.5)
        assert Power(1.5).milliwatts == pytest.approx(1500)

    def test_kilowatts(self):
        assert Power(2500.0).kilowatts == pytest.approx(2.5)

    def test_times_gives_energy(self):
        assert Power(100.0).times(60).joules == pytest.approx(6000.0)

    def test_arithmetic(self):
        assert (Power(3.0) + Power(4.0)).watts == 7.0
        assert (Power(4.0) - Power(3.0)).watts == 1.0
        assert (Power(4.0) * 2.0).watts == 8.0
        assert Power(8.0) / Power(4.0) == 2.0
        assert (Power(8.0) / 4).watts == 2.0

    @given(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
    )
    def test_power_energy_inverse_property(self, watts, seconds):
        p = Power(watts)
        assert p.times(seconds).over(seconds).watts == pytest.approx(watts, rel=1e-9, abs=1e-9)


class TestFormatting:
    @pytest.mark.parametrize(
        "joules,expected",
        [
            (0.5, "0.50 J"),
            (1500.0, "1.50 kJ"),
            (2.5e6, "2.50 MJ"),
            (7.2e6, "2.00 kWh"),
            (JOULES_PER_KWH, "1.00 kWh"),
        ],
    )
    def test_format_energy(self, joules, expected):
        assert format_energy(joules) == expected

    @pytest.mark.parametrize(
        "watts,expected",
        [(0.005, "5.00 mW"), (5.0, "5.00 W"), (1234.0, "1.23 kW"), (2.5e6, "2.50 MW")],
    )
    def test_format_power(self, watts, expected):
        assert format_power(watts) == expected

    def test_format_power_nan(self):
        assert format_power(math.nan) == "nan"

    @pytest.mark.parametrize(
        "grams,expected",
        [(10.0, "10.00 gCO2e"), (2500.0, "2.50 kgCO2e"), (3.2e6, "3.20 tCO2e")],
    )
    def test_format_co2(self, grams, expected):
        assert format_co2(grams) == expected

    @pytest.mark.parametrize(
        "n,expected",
        [(512, "512 B"), (2048, "2.00 KiB"), (3 * 1024**2, "3.00 MiB"), (5 * 1024**3, "5.00 GiB")],
    )
    def test_format_bytes(self, n, expected):
        assert format_bytes(n) == expected


class TestDurations:
    @pytest.mark.parametrize(
        "text,seconds",
        [
            ("15s", 15.0),
            ("5m", 300.0),
            ("1h30m", 5400.0),
            ("2d", 172800.0),
            ("1w", 604800.0),
            ("500ms", 0.5),
            ("1y", 31536000.0),
            ("1h30m15s", 5415.0),
        ],
    )
    def test_parse(self, text, seconds):
        assert parse_duration(text) == pytest.approx(seconds)

    @pytest.mark.parametrize("bad", ["", "5", "m5", "5x", "5m3", "abc"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_duration(bad)

    @pytest.mark.parametrize(
        "seconds,expected",
        [(0, "0s"), (45, "45s"), (3600, "1h"), (93784, "1d2h3m4s"), (-60, "-1m")],
    )
    def test_format(self, seconds, expected):
        assert format_duration(seconds) == expected

    @given(st.integers(min_value=1, max_value=10**7))
    def test_format_parse_roundtrip_property(self, seconds):
        assert parse_duration(format_duration(seconds)) == pytest.approx(seconds)
