"""Tests for basic auth, TLS config, and the HTTP abstraction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.auth import (
    BasicAuth,
    TLSConfig,
    hash_password,
    make_basic_auth_header,
    verify_password,
)
from repro.common.errors import AuthError, ConfigError
from repro.common.httpx import (
    App,
    Request,
    Response,
    Router,
    http_get,
    serve_threading,
)


class TestPasswordHashing:
    def test_roundtrip(self):
        assert verify_password("s3cret", hash_password("s3cret"))

    def test_wrong_password(self):
        assert not verify_password("wrong", hash_password("s3cret"))

    def test_salts_differ(self):
        assert hash_password("x") != hash_password("x")

    def test_malformed_hash_is_false(self):
        assert not verify_password("x", "notahash")
        assert not verify_password("x", "zz$zz")

    @given(st.text(min_size=0, max_size=40))
    def test_any_password_roundtrips_property(self, password):
        assert verify_password(password, hash_password(password))


class TestBasicAuth:
    def test_disabled_auth_allows_everything(self):
        auth = BasicAuth()
        assert auth.check_header(None) == ""

    def test_valid_credentials(self):
        auth = BasicAuth.single_user("alice", "pw")
        header = make_basic_auth_header("alice", "pw")
        assert auth.check_header(header) == "alice"

    def test_missing_header_rejected(self):
        auth = BasicAuth.single_user("alice", "pw")
        with pytest.raises(AuthError):
            auth.check_header(None)

    def test_wrong_password_rejected(self):
        auth = BasicAuth.single_user("alice", "pw")
        with pytest.raises(AuthError):
            auth.check_header(make_basic_auth_header("alice", "nope"))

    def test_unknown_user_rejected(self):
        auth = BasicAuth.single_user("alice", "pw")
        with pytest.raises(AuthError):
            auth.check_header(make_basic_auth_header("bob", "pw"))

    def test_malformed_scheme_rejected(self):
        auth = BasicAuth.single_user("alice", "pw")
        with pytest.raises(AuthError):
            auth.check_header("Bearer token")

    def test_garbage_base64_rejected(self):
        auth = BasicAuth.single_user("alice", "pw")
        with pytest.raises(AuthError):
            auth.check_header("Basic !!!notbase64!!!")

    def test_add_user(self):
        auth = BasicAuth()
        auth.add_user("bob", "pw2")
        assert auth.check_header(make_basic_auth_header("bob", "pw2")) == "bob"


class TestTLSConfig:
    def test_disabled_is_valid(self):
        TLSConfig().validate()

    def test_enabled_requires_files(self):
        with pytest.raises(ConfigError):
            TLSConfig(enabled=True).validate()

    def test_enabled_with_files_ok(self):
        TLSConfig(enabled=True, cert_file="a.pem", key_file="b.pem").validate()

    def test_bad_min_version(self):
        with pytest.raises(ConfigError):
            TLSConfig(enabled=True, cert_file="a", key_file="b", min_version="SSL3").validate()


class TestRequest:
    def test_from_url_parses_query(self):
        req = Request.from_url("GET", "/x?a=1&a=2&b=hello")
        assert req.params("a") == ["1", "2"]
        assert req.param("b") == "hello"
        assert req.param("missing") is None
        assert req.param("missing", "d") == "d"

    def test_headers_lowercased(self):
        req = Request.from_url("GET", "/", headers={"X-Grafana-User": "u"})
        assert req.header("x-grafana-user") == "u"

    def test_form_parsing(self):
        req = Request.from_url(
            "POST",
            "/q",
            headers={"content-type": "application/x-www-form-urlencoded"},
            body=b"query=up&time=5",
        )
        assert req.form["query"] == ["up"]

    def test_form_requires_content_type(self):
        req = Request.from_url("POST", "/q", body=b"query=up")
        assert req.form == {}

    def test_json_body(self):
        req = Request.from_url("POST", "/", body=b'{"a": 1}')
        assert req.json() == {"a": 1}


class TestRouter:
    def test_path_params_captured(self):
        router = Router()
        router.get("/api/v1/units/{uuid}", lambda req: Response.text(req.path_params["uuid"]))
        response = router.dispatch(Request.from_url("GET", "/api/v1/units/1234"))
        assert response.body == b"1234"

    def test_404_for_unknown_path(self):
        router = Router()
        router.get("/a", lambda req: Response.text("a"))
        assert router.dispatch(Request.from_url("GET", "/b")).status == 404

    def test_405_for_wrong_method(self):
        router = Router()
        router.get("/a", lambda req: Response.text("a"))
        assert router.dispatch(Request.from_url("POST", "/a")).status == 405

    def test_url_decoding_of_path_params(self):
        router = Router()
        router.get("/u/{name}", lambda req: Response.text(req.path_params["name"]))
        response = router.dispatch(Request.from_url("GET", "/u/hello%20world"))
        assert response.body == b"hello world"


class TestApp:
    def test_auth_enforced(self):
        app = App("t", auth=BasicAuth.single_user("u", "p"))
        app.router.get("/", lambda req: Response.text("ok"))
        denied = app.get("/")
        assert denied.status == 401
        assert "www-authenticate" in denied.headers
        allowed = app.get("/", headers={"authorization": make_basic_auth_header("u", "p")})
        assert allowed.status == 200

    def test_tls_required(self):
        app = App("t", tls=TLSConfig(enabled=True, cert_file="c", key_file="k"))
        app.router.get("/", lambda req: Response.text("ok"))
        assert app.get("/").status == 400
        assert app.handle(Request.from_url("GET", "/", secure=True)).status == 200

    def test_error_counting(self):
        app = App("t")
        app.router.get("/", lambda req: Response.text("ok"))
        app.get("/")
        app.get("/missing")
        assert app.requests_total == 2
        assert app.errors_total == 1

    def test_response_helpers(self):
        r = Response.json({"a": 1}, status=201)
        assert r.status == 201 and r.decode_json() == {"a": 1}
        assert Response.error(403, "no").status == 403
        assert not Response.error(403, "no").ok


class TestRealSocketServer:
    def test_app_served_over_real_http(self):
        """The same App code must work over an actual TCP socket."""
        app = App("sock")
        app.router.get("/hello", lambda req: Response.json({"msg": "hi"}))
        server = serve_threading(app)
        try:
            status, body = http_get(f"{server.url}/hello")
            assert status == 200
            assert b'"msg"' in body
            status, _ = http_get(f"{server.url}/nope")
            assert status == 404
        finally:
            server.close()

    def test_basic_auth_over_real_http(self):
        app = App("sock-auth", auth=BasicAuth.single_user("u", "p"))
        app.router.get("/", lambda req: Response.text("ok"))
        server = serve_threading(app)
        try:
            status, _ = http_get(server.url + "/")
            assert status == 401
            status, body = http_get(
                server.url + "/", headers={"Authorization": make_basic_auth_header("u", "p")}
            )
            assert status == 200 and body == b"ok"
        finally:
            server.close()
