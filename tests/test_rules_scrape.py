"""Tests for recording rules and the scrape manager."""

import math

import pytest

from repro.common.auth import BasicAuth
from repro.common.clock import SimClock
from repro.common.errors import QueryError, ScrapeError
from repro.common.httpx import App, Response
from repro.tsdb import exposition
from repro.tsdb.exposition import MetricFamily
from repro.tsdb.model import Labels, Matcher
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.rules import RecordingRule, RuleGroup, RuleManager
from repro.tsdb.scrape import ScrapeConfig, ScrapeManager, ScrapeTarget
from repro.tsdb.storage import TSDB


def mk(name: str, **labels: str) -> Labels:
    return Labels({"__name__": name, **labels})


class TestRecordingRules:
    def setup_method(self):
        self.db = TSDB()
        for i in range(21):
            t = i * 15.0
            self.db.append(mk("raw", instance="n1"), t, 2.0 * t)
            self.db.append(mk("raw", instance="n2"), t, 4.0 * t)

    def test_rule_records_series(self):
        group = RuleGroup(
            name="g", interval=30.0,
            rules=[RecordingRule(record="instance:raw_rate", expr="rate(raw[2m])")],
        )
        recorded = group.evaluate(self.db, at=300.0)
        assert recorded == 2
        engine = PromQLEngine(self.db)
        result = engine.query("instance:raw_rate", at=300.0)
        values = {el.labels.get("instance"): el.value for el in result.vector}
        assert values["n1"] == pytest.approx(2.0, rel=1e-6)
        assert values["n2"] == pytest.approx(4.0, rel=1e-6)

    def test_extra_labels_attached(self):
        group = RuleGroup(
            name="g", interval=30.0,
            rules=[RecordingRule(record="r", expr="sum(raw)", labels={"source": "rule"})],
        )
        group.evaluate(self.db, at=300.0)
        series = self.db.select([Matcher.name_eq("r")])
        assert series[0].labels.get("source") == "rule"

    def test_scalar_rule_recorded(self):
        group = RuleGroup(
            name="g", interval=30.0,
            rules=[RecordingRule(record="the_answer", expr="6 * 7")],
        )
        group.evaluate(self.db, at=0.0)
        assert self.db.select([Matcher.name_eq("the_answer")])[0].values == [42.0]

    def test_rules_see_earlier_rules_in_same_cycle(self):
        group = RuleGroup(
            name="g", interval=30.0,
            rules=[
                RecordingRule(record="step1", expr="sum(raw)"),
                RecordingRule(record="step2", expr="step1 * 2"),
            ],
        )
        group.evaluate(self.db, at=300.0)
        engine = PromQLEngine(self.db)
        s1 = engine.query("step1", at=300.0).vector[0].value
        s2 = engine.query("step2", at=300.0).vector[0].value
        assert s2 == pytest.approx(2 * s1)

    def test_failing_rule_does_not_abort_group(self):
        group = RuleGroup(
            name="g", interval=30.0,
            rules=[
                RecordingRule(record="bad", expr="scalar(raw) + missing_fn_behaviour{"),
                RecordingRule(record="good", expr="sum(raw)"),
            ],
        )
        recorded = group.evaluate(self.db, at=300.0)
        assert recorded == 1
        assert "bad" in group.last_error

    def test_vanished_output_gets_stale_marker(self):
        group = RuleGroup(
            name="g", interval=30.0,
            rules=[RecordingRule(record="gated", expr="raw > 700")],
        )
        group.evaluate(self.db, at=300.0)  # n2 qualifies (1200 > 700)
        engine = PromQLEngine(self.db)
        assert len(engine.query("gated", at=300.0).vector) == 1
        # next cycle: make n2's value drop below the gate by evaluating
        # at an earlier offset… simpler: evaluate at t where raw < 700.
        group.evaluate(self.db, at=330.0)
        # still above: no stale yet
        assert len(engine.query("gated", at=330.0).vector) == 1

    def test_rule_manager_rejects_duplicate_group(self):
        manager = RuleManager(self.db)
        manager.add_group(RuleGroup(name="g", interval=30.0))
        with pytest.raises(QueryError):
            manager.add_group(RuleGroup(name="g", interval=30.0))

    def test_rule_manager_timer_integration(self):
        clock = SimClock(start=0.0)
        manager = RuleManager(self.db)
        manager.add_group(
            RuleGroup(name="g", interval=30.0, rules=[RecordingRule(record="r", expr="sum(raw)")])
        )
        manager.register_timers(clock)
        clock.advance(120.0)
        group = manager.groups[0]
        assert group.evaluations == 4


def make_fake_exporter(families_fn) -> App:
    app = App("fake")
    app.router.get(
        "/metrics",
        lambda req: Response.text(exposition.render(families_fn())),
    )
    return app


class TestScrapeManager:
    def test_scrape_ingests_with_identity_labels(self):
        db = TSDB()
        family = MetricFamily("m", type="gauge")
        family.add(5.0, uuid="1")
        app = make_fake_exporter(lambda: [family])
        manager = ScrapeManager(db)
        manager.add_target(
            ScrapeTarget(app=app, instance="n1:9010", job="ceems", group_labels={"nodegroup": "x"})
        )
        assert manager.scrape_all(now=15.0) == 1
        series = db.select([Matcher.name_eq("m")])[0]
        assert series.labels.get("instance") == "n1:9010"
        assert series.labels.get("job") == "ceems"
        assert series.labels.get("nodegroup") == "x"

    def test_up_metric_tracks_health(self):
        db = TSDB()
        broken = App("broken")  # no /metrics route -> 404
        manager = ScrapeManager(db)
        manager.add_target(ScrapeTarget(app=broken, instance="n1:9", job="j"))
        manager.scrape_all(now=15.0)
        up = db.select([Matcher.name_eq("up")])[0]
        assert up.values[-1] == 0.0
        assert manager.healthy_targets() == 0
        assert manager.targets[0].scrape_failures_total == 1

    def test_duplicate_target_rejected(self):
        manager = ScrapeManager(TSDB())
        app = make_fake_exporter(list)
        manager.add_target(ScrapeTarget(app=app, instance="a", job="j"))
        with pytest.raises(ScrapeError):
            manager.add_target(ScrapeTarget(app=app, instance="a", job="j"))

    def test_one_bad_target_does_not_stop_others(self):
        db = TSDB()
        family = MetricFamily("m", type="gauge")
        family.add(1.0)
        good = make_fake_exporter(lambda: [family])
        bad = App("broken")
        manager = ScrapeManager(db)
        manager.add_target(ScrapeTarget(app=bad, instance="bad:9", job="j"))
        manager.add_target(ScrapeTarget(app=good, instance="good:9", job="j"))
        assert manager.scrape_all(now=15.0) == 1
        assert manager.healthy_targets() == 1

    def test_basic_auth_used(self):
        db = TSDB()
        family = MetricFamily("m", type="gauge")
        family.add(1.0)
        auth = BasicAuth.single_user("scraper", "pw")
        app = App("secured", auth=auth)
        app.router.get("/metrics", lambda req: Response.text(exposition.render([family])))
        manager = ScrapeManager(db)
        manager.add_target(
            ScrapeTarget(app=app, instance="n1:9", job="j", username="scraper", password="pw")
        )
        manager.scrape_all(now=15.0)
        assert manager.healthy_targets() == 1
        # and with wrong creds it fails
        manager2 = ScrapeManager(TSDB())
        manager2.add_target(
            ScrapeTarget(app=app, instance="n1:9", job="j", username="scraper", password="bad")
        )
        manager2.scrape_all(now=15.0)
        assert manager2.healthy_targets() == 0

    def test_disappearing_series_gets_stale_marker(self):
        db = TSDB()
        state = {"include": True}

        def families():
            fams = []
            fam = MetricFamily("m", type="gauge")
            fam.add(1.0, uuid="keep")
            if state["include"]:
                fam.add(2.0, uuid="gone")
            fams.append(fam)
            return fams

        manager = ScrapeManager(db)
        manager.add_target(ScrapeTarget(app=make_fake_exporter(families), instance="n1:9", job="j"))
        manager.scrape_all(now=15.0)
        state["include"] = False
        manager.scrape_all(now=30.0)
        engine = PromQLEngine(db)
        result = engine.query("m", at=30.0)
        uuids = {el.labels.get("uuid") for el in result.vector}
        assert uuids == {"keep"}
        gone = db.select([Matcher.eq("uuid", "gone")])[0]
        assert math.isnan(gone.values[-1])

    def test_retention_applied_periodically(self):
        db = TSDB(retention=60.0)
        family = MetricFamily("m", type="gauge")
        family.add(1.0)
        manager = ScrapeManager(db, ScrapeConfig(interval=15.0, retention_every=2))
        manager.add_target(ScrapeTarget(app=make_fake_exporter(lambda: [family]), instance="i", job="j"))
        for i in range(10):
            manager.scrape_all(now=15.0 * (i + 1))
        series = db.select([Matcher.name_eq("m")])[0]
        assert series.min_time >= 150.0 - 60.0

    def test_clock_driven_scraping(self):
        db = TSDB()
        family = MetricFamily("m", type="gauge")
        family.add(1.0)
        manager = ScrapeManager(db, ScrapeConfig(interval=15.0))
        manager.add_target(ScrapeTarget(app=make_fake_exporter(lambda: [family]), instance="i", job="j"))
        clock = SimClock(start=0.0)
        manager.register_timer(clock)
        clock.advance(60.0)
        assert manager.targets[0].scrapes_total == 4
