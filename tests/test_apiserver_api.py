"""Tests for the CEEMS API server HTTP API and the updater."""

import pytest

from repro.apiserver.api import USER_HEADER, APIServer
from repro.apiserver.db import Database
from repro.apiserver.updater import Updater
from repro.common.clock import SimClock
from repro.resourcemgr.base import UnitState
from tests.test_apiserver_db import FakeUsage, unit


@pytest.fixture
def db() -> Database:
    db = Database()
    db.upsert_units(
        [
            unit("1", user="alice", project="p1", state=UnitState.COMPLETED, ended_at=110.0),
            unit("2", user="alice", project="p1"),
            unit("3", user="bob", project="p2", state=UnitState.COMPLETED, ended_at=300.0),
        ],
        now=500.0,
    )
    db.add_unit_usage("test", {"1": FakeUsage(100.0, 1.0), "3": FakeUsage(900.0, 9.0)}, now=500.0)
    db.rebuild_usage_rollups("test", now=500.0)
    return db


@pytest.fixture
def api(db) -> APIServer:
    return APIServer(db, admin_users=("admin",))


def get(api, path, user=None):
    headers = {USER_HEADER: user} if user else {}
    return api.app.get(path, headers=headers)


class TestIdentity:
    def test_header_required(self, api):
        assert get(api, "/api/v1/units").status == 401

    def test_healthy_is_public(self, api):
        assert get(api, "/-/healthy").ok


class TestUnits:
    def test_user_sees_own_units(self, api):
        data = get(api, "/api/v1/units", user="alice").decode_json()["data"]
        assert {u["uuid"] for u in data} == {"1", "2"}

    def test_user_cannot_query_others(self, api):
        assert get(api, "/api/v1/units?user=bob", user="alice").status == 403

    def test_admin_can_query_anyone(self, api):
        data = get(api, "/api/v1/units?user=bob", user="admin").decode_json()["data"]
        assert [u["uuid"] for u in data] == ["3"]

    def test_admin_all_units(self, api):
        data = get(api, "/api/v1/units?all=true", user="admin").decode_json()["data"]
        assert len(data) == 3

    def test_state_filter(self, api):
        data = get(api, "/api/v1/units?state=running", user="alice").decode_json()["data"]
        assert [u["uuid"] for u in data] == ["2"]

    def test_single_unit_owner_only(self, api):
        assert get(api, "/api/v1/units/1", user="alice").ok
        assert get(api, "/api/v1/units/1", user="bob").status == 403
        assert get(api, "/api/v1/units/1", user="admin").ok

    def test_unknown_unit_404(self, api):
        assert get(api, "/api/v1/units/404", user="alice").status == 404

    def test_nodelist_decoded(self, api, db):
        db.upsert_units([unit("4", nodelist=("n1", "n2"))], now=500.0)
        data = get(api, "/api/v1/units/4", user="alice").decode_json()["data"]
        assert data["nodelist"] == ["n1", "n2"]

    def test_bad_numeric_params(self, api):
        assert get(api, "/api/v1/units?from=abc", user="alice").status == 400


class TestUsage:
    def test_current_usage(self, api):
        data = get(api, "/api/v1/usage/current", user="alice").decode_json()["data"]
        assert len(data) == 1
        assert data[0]["total_energy_joules"] == 100.0

    def test_global_usage_admin_only(self, api):
        assert get(api, "/api/v1/usage/global", user="alice").status == 403
        data = get(api, "/api/v1/usage/global", user="admin").decode_json()["data"]
        assert len(data) == 2

    def test_user_usage_endpoint(self, api):
        assert get(api, "/api/v1/users/bob/usage", user="alice").status == 403
        data = get(api, "/api/v1/users/bob/usage", user="bob").decode_json()["data"]
        assert data[0]["total_energy_joules"] == 900.0

    def test_project_usage_requires_membership(self, api):
        assert get(api, "/api/v1/projects/p1/usage", user="alice").ok
        assert get(api, "/api/v1/projects/p1/usage", user="bob").status == 403
        assert get(api, "/api/v1/projects/p1/usage", user="admin").ok


class TestVerify:
    def test_owner_allowed(self, api):
        assert get(api, "/api/v1/verify?uuid=1", user="alice").ok

    def test_non_owner_denied(self, api):
        assert get(api, "/api/v1/verify?uuid=1", user="bob").status == 403

    def test_multiple_uuids_all_must_match(self, api):
        assert get(api, "/api/v1/verify?uuid=1&uuid=2", user="alice").ok
        assert get(api, "/api/v1/verify?uuid=1&uuid=3", user="alice").status == 403

    def test_unknown_uuid_denied(self, api):
        assert get(api, "/api/v1/verify?uuid=404", user="alice").status == 403

    def test_admin_always_allowed(self, api):
        assert get(api, "/api/v1/verify?uuid=3", user="admin").ok

    def test_uuid_param_required(self, api):
        assert get(api, "/api/v1/verify", user="alice").status == 400

    def test_clusters_endpoint(self, api):
        data = get(api, "/api/v1/clusters", user="alice").decode_json()["data"]
        assert data == ["test"]


class FakeManager:
    """Minimal resource manager stub for updater tests."""

    manager = "slurm"
    cluster_name = "test"

    def __init__(self, units):
        self._units = units

    def list_units(self, start, end):
        return self._units


class FakeEstimator:
    def __init__(self, usage):
        self.usage = usage
        self.windows = []

    def usage_window(self, start, end):
        self.windows.append((start, end))
        return self.usage


class TestUpdater:
    def test_sync_and_usage(self):
        db = Database()
        units = [unit("1"), unit("2", user="bob")]
        updater = Updater(
            db,
            FakeEstimator({"1": FakeUsage(100.0)}),
            [FakeManager(units)],
            interval=900.0,
        )
        updater.run_once(now=1000.0)
        assert db.count_units() == 2
        assert db.get_unit("test", "1")["energy_joules"] == 100.0
        assert db.last_sync("test") == 1000.0
        rows = db.usage_rows(user="alice")
        assert rows[0].total_energy_joules == 100.0

    def test_usage_windows_tile_without_overlap(self):
        db = Database()
        estimator = FakeEstimator({})
        updater = Updater(db, estimator, [FakeManager([])], interval=900.0)
        updater.run_once(now=1000.0)
        updater.run_once(now=1900.0)
        updater.run_once(now=2800.0)
        # energy windows: first bootstrap, then [1000,1900], [1900,2800]
        assert estimator.windows[1] == (1000.0, 1900.0)
        assert estimator.windows[2] == (1900.0, 2800.0)

    def test_timer_registration(self):
        clock = SimClock(start=0.0)
        db = Database()
        updater = Updater(db, FakeEstimator({}), [FakeManager([])], interval=900.0)
        updater.register_timer(clock)
        clock.advance(3600.0)
        assert updater.stats.passes == 4

    def test_energy_accumulates_across_passes(self):
        db = Database()
        estimator = FakeEstimator({"1": FakeUsage(100.0)})
        updater = Updater(db, estimator, [FakeManager([unit("1")])], interval=900.0)
        updater.run_once(now=1000.0)
        updater.run_once(now=1900.0)
        assert db.get_unit("test", "1")["energy_joules"] == 200.0


class TestPaginationAndProjects:
    def test_offset_pagination(self, api, db):
        from tests.test_apiserver_db import unit as mkunit
        db.upsert_units([mkunit(str(100 + i), user="alice", created_at=float(i)) for i in range(10)], now=500.0)
        page1 = get(api, "/api/v1/units?limit=4", user="alice").decode_json()["data"]
        page2 = get(api, "/api/v1/units?limit=4&offset=4", user="alice").decode_json()["data"]
        assert len(page1) == 4 and len(page2) == 4
        assert {u["uuid"] for u in page1}.isdisjoint({u["uuid"] for u in page2})

    def test_bad_offset_rejected(self, api):
        assert get(api, "/api/v1/units?offset=x", user="alice").status == 400

    def test_projects_scoped_for_users(self, api):
        data = get(api, "/api/v1/projects", user="alice").decode_json()["data"]
        assert data == ["p1"]

    def test_projects_admin_sees_all(self, api):
        data = get(api, "/api/v1/projects", user="admin").decode_json()["data"]
        assert data == ["p1", "p2"]

    def test_projects_requires_identity(self, api):
        assert get(api, "/api/v1/projects").status == 401
