"""Tests for the CLI."""

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.topology == "small"
        assert args.hours == 1.0


class TestSimulate:
    def test_small_run_report(self):
        code, output = run_cli("simulate", "--hours", "0.5", "--seed", "3")
        assert code == 0
        assert "deployment:" in output
        assert "jobs_submitted" in output
        assert "top consumers:" in output

    def test_jean_zay_topology(self):
        code, output = run_cli(
            "simulate", "--topology", "jean-zay", "--scale", "0.004", "--hours", "0.3"
        )
        assert code == 0
        assert "node power by class:" in output


class TestDashboards:
    def test_stdout_export(self):
        code, output = run_cli("dashboards")
        assert code == 0
        bundle = json.loads(output)
        assert "ceems-fig2a" in bundle

    def test_file_export(self, tmp_path):
        target = tmp_path / "dashboards.json"
        code, output = run_cli("dashboards", "--output", str(target))
        assert code == 0
        assert "wrote" in output
        assert json.loads(target.read_text())


class TestValidateConfig:
    def test_valid_config(self, tmp_path):
        path = tmp_path / "ceems.yml"
        path.write_text(
            "exporter:\n  port: 9010\n"
            "tsdb:\n  scrape_interval: 15s\n"
            "lb:\n  strategy: round-robin\n"
        )
        code, output = run_cli("validate-config", str(path))
        assert code == 0
        assert "ok:" in output

    def test_invalid_config(self, tmp_path):
        path = tmp_path / "bad.yml"
        path.write_text("lb:\n  strategy: chaos\n")
        code, output = run_cli("validate-config", str(path))
        assert code == 1
        assert "invalid" in output

    def test_missing_file(self):
        code, output = run_cli("validate-config", "/does/not/exist.yml")
        assert code == 1


class TestExportRules:
    def test_stdout_export_parses_back(self):
        from repro.energy.export import parse_rules_file

        code, output = run_cli("export-rules")
        assert code == 0
        groups = parse_rules_file(output)
        assert any(g.name.startswith("ceems-power-") for g in groups)

    def test_file_export(self, tmp_path):
        target = tmp_path / "rules.yml"
        code, _output = run_cli("export-rules", "--output", str(target))
        assert code == 0
        assert "groups:" in target.read_text()

    def test_shipped_artifact_current(self):
        """etc/prometheus-rules.yml matches the executable library."""
        import pathlib

        _code, output = run_cli("export-rules")
        shipped = pathlib.Path("etc/prometheus-rules.yml").read_text()
        assert output.strip() == shipped.strip()
