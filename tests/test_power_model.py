"""Tests for the ground-truth node power model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hwsim.power_model import (
    CPU_PROFILES,
    DRAM_PROFILES,
    CPUPowerParams,
    DRAMPowerParams,
    NodePowerModel,
    PlatformPowerParams,
    PowerBreakdown,
)


class TestCPUCurve:
    def test_idle_at_zero(self):
        params = CPUPowerParams(idle_w=30, max_w=200)
        assert params.power(0.0) == 30.0

    def test_max_at_full(self):
        params = CPUPowerParams(idle_w=30, max_w=200)
        assert params.power(1.0) == pytest.approx(200.0)

    def test_sublinear_response(self):
        """alpha < 1: half utilisation draws more than half the dynamic range."""
        params = CPUPowerParams(idle_w=0, max_w=100, alpha=0.85)
        assert params.power(0.5) > 50.0

    def test_clamps_out_of_range(self):
        params = CPUPowerParams(idle_w=30, max_w=200)
        assert params.power(-0.5) == 30.0
        assert params.power(1.5) == pytest.approx(200.0)

    @given(st.floats(min_value=0, max_value=1))
    def test_monotone_property(self, util):
        params = CPUPowerParams()
        assert params.power(util) <= params.power(min(util + 0.05, 1.0)) + 1e-9


class TestDRAMAndPlatform:
    def test_dram_range(self):
        params = DRAMPowerParams(idle_w=8, max_w=40)
        assert params.power(0.0) == 8.0
        assert params.power(1.0) == 40.0

    def test_platform_floor(self):
        params = PlatformPowerParams(floor_w=60, activity_w=25)
        assert params.power(0.0) == 60.0
        assert params.power(1.0) == 85.0


class TestNodePowerModel:
    def test_idle_node_draws_floor_power(self):
        model = NodePowerModel(sockets=2)
        bd = model.evaluate(cpu_util=0.0, mem_activity=0.0)
        assert bd.cpu_w == 2 * model.cpu.idle_w
        assert bd.dram_w == 2 * model.dram.idle_w
        assert bd.gpu_w == 0.0
        assert bd.platform_w == model.platform.floor_w

    def test_total_is_sum_of_components(self):
        model = NodePowerModel()
        bd = model.evaluate(0.7, 0.4, gpu_power_w=300.0)
        assert bd.total_w == pytest.approx(bd.cpu_w + bd.dram_w + bd.gpu_w + bd.platform_w)

    def test_rapl_visible_excludes_gpu_and_platform(self):
        bd = PowerBreakdown(cpu_w=100, dram_w=30, gpu_w=400, platform_w=70)
        assert bd.rapl_visible_w == 130.0

    def test_gpu_activity_raises_platform_power(self):
        """Fans spin up for GPU load even when CPUs idle."""
        model = NodePowerModel()
        with_gpu = model.evaluate(0.0, 0.0, gpu_power_w=500.0)
        without = model.evaluate(0.0, 0.0, gpu_power_w=0.0)
        assert with_gpu.platform_w > without.platform_w

    @given(
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=2000),
    )
    def test_power_always_positive_and_bounded_property(self, cpu, mem, gpu):
        model = NodePowerModel(sockets=2)
        bd = model.evaluate(cpu, mem, gpu)
        assert bd.total_w > 0
        ceiling = 2 * (model.cpu.max_w + model.dram.max_w) + gpu + model.platform.floor_w + model.platform.activity_w
        assert bd.total_w <= ceiling + 1e-6


class TestProfiles:
    def test_profiles_are_physically_ordered(self):
        """Newer/larger parts draw more power at full tilt."""
        assert CPU_PROFILES["intel-sapphirerapids"].max_w > CPU_PROFILES["intel-cascadelake"].max_w
        assert CPU_PROFILES["amd-milan"].max_w > CPU_PROFILES["amd-rome"].max_w

    def test_all_profiles_have_idle_below_max(self):
        for name, params in CPU_PROFILES.items():
            assert params.idle_w < params.max_w, name
        for name, params in DRAM_PROFILES.items():
            assert params.idle_w < params.max_w, name
