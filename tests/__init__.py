"""Test suite for the CEEMS reproduction."""
