"""Tests for time-aware LB routing and exporter rate limiting."""

import urllib.parse

import pytest

from repro.apiserver.db import Database
from repro.common.clock import SimClock
from repro.common.config import ExporterConfig
from repro.common.httpx import App, Request, Response
from repro.exporter import CEEMSExporter
from repro.exporter.security import RateLimiter, TokenBucket
from repro.hwsim import NodeSpec, SimulatedNode
from repro.lb import Backend, DBAuthorizer, LoadBalancer
from tests.test_apiserver_db import unit

DAY = 86400.0


def echo(name: str) -> App:
    app = App(name)
    for path in ("/api/v1/query", "/api/v1/query_range"):
        app.router.get(path, lambda req, n=name: Response.json({"from": n}))
    return app


@pytest.fixture
def routing_lb():
    db = Database()
    db.upsert_units([unit("1", user="alice")], now=0.0)
    clock = SimClock(start=100 * DAY)
    hot = [Backend("hot-0", echo("hot-0")), Backend("hot-1", echo("hot-1"))]
    cold = [Backend("thanos-0", echo("thanos-0"))]
    lb = LoadBalancer(
        hot,
        DBAuthorizer(db),
        longterm_backends=cold,
        hot_retention=30 * DAY,
        clock=clock,
    )
    return lb, clock


def q(lb, at: float | None = None, start: float | None = None):
    promql = urllib.parse.quote('x{uuid="1"}')
    if start is not None:
        url = f"/api/v1/query_range?query={promql}&start={start}&end={start + 3600}&step=60"
    else:
        url = f"/api/v1/query?query={promql}&time={at}"
    return lb.app.get(url, headers={"x-grafana-user": "alice"})


class TestTimeAwareRouting:
    def test_recent_instant_query_goes_hot(self, routing_lb):
        lb, clock = routing_lb
        response = q(lb, at=clock.now() - DAY)
        assert response.headers["x-ceems-backend"].startswith("hot")
        assert lb.longterm_routed == 0

    def test_old_instant_query_goes_longterm(self, routing_lb):
        lb, clock = routing_lb
        response = q(lb, at=clock.now() - 60 * DAY)
        assert response.headers["x-ceems-backend"] == "thanos-0"
        assert lb.longterm_routed == 1

    def test_range_query_routed_by_start(self, routing_lb):
        lb, clock = routing_lb
        recent = q(lb, start=clock.now() - 2 * DAY)
        assert recent.headers["x-ceems-backend"].startswith("hot")
        old = q(lb, start=clock.now() - 90 * DAY)
        assert old.headers["x-ceems-backend"] == "thanos-0"

    def test_boundary_is_retention(self, routing_lb):
        lb, clock = routing_lb
        just_inside = q(lb, at=clock.now() - 30 * DAY + 10)
        assert just_inside.headers["x-ceems-backend"].startswith("hot")
        just_outside = q(lb, at=clock.now() - 30 * DAY - 10)
        assert just_outside.headers["x-ceems-backend"] == "thanos-0"

    def test_no_longterm_pool_means_everything_hot(self):
        db = Database()
        db.upsert_units([unit("1", user="alice")], now=0.0)
        lb = LoadBalancer([Backend("hot", echo("hot"))], DBAuthorizer(db))
        response = q(lb, at=0.0)
        assert response.headers["x-ceems-backend"] == "hot"

    def test_hot_pool_still_balances(self, routing_lb):
        lb, clock = routing_lb
        names = [q(lb, at=clock.now()).headers["x-ceems-backend"] for _ in range(4)]
        assert names == ["hot-0", "hot-1", "hot-0", "hot-1"]


class TestTokenBucket:
    def test_burst_then_throttle(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        assert all(bucket.allow(0.0) for _ in range(3))
        assert not bucket.allow(0.0)

    def test_refill_over_time(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        for _ in range(3):
            bucket.allow(0.0)
        assert not bucket.allow(0.5)
        assert bucket.allow(2.0)

    def test_capacity_capped(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        bucket.allow(0.0)
        assert bucket.allow(100.0)
        assert bucket.allow(100.0)
        assert not bucket.allow(100.0)  # burst, not rate*elapsed

    def test_retry_after(self):
        bucket = TokenBucket(rate=0.5, burst=1.0)
        bucket.allow(0.0)
        assert bucket.retry_after() == pytest.approx(2.0)


class TestExporterRateLimiting:
    def make_exporter(self, clock, rate=1.0, burst=2.0):
        node = SimulatedNode(NodeSpec(name="n"), seed=1)
        node.advance(5.0, 5.0)
        limiter = RateLimiter(clock, rate=rate, burst=burst)
        return CEEMSExporter(node, clock, ExporterConfig(), rate_limiter=limiter), limiter

    def test_burst_allowed_then_429(self):
        clock = SimClock(start=10.0)
        exporter, limiter = self.make_exporter(clock)
        assert exporter.app.get("/metrics").status == 200
        assert exporter.app.get("/metrics").status == 200
        rejected = exporter.app.get("/metrics")
        assert rejected.status == 429
        assert "retry-after" in rejected.headers
        assert limiter.rejected_total == 1

    def test_tokens_refill_with_clock(self):
        clock = SimClock(start=10.0)
        exporter, _ = self.make_exporter(clock, rate=1.0, burst=1.0)
        assert exporter.app.get("/metrics").status == 200
        assert exporter.app.get("/metrics").status == 429
        clock.advance(2.0)
        assert exporter.app.get("/metrics").status == 200

    def test_per_client_buckets(self):
        clock = SimClock(start=10.0)
        exporter, _ = self.make_exporter(clock, rate=0.1, burst=1.0)
        a = {"x-forwarded-for": "10.0.0.1"}
        b = {"x-forwarded-for": "10.0.0.2"}
        assert exporter.app.get("/metrics", headers=a).status == 200
        assert exporter.app.get("/metrics", headers=a).status == 429
        assert exporter.app.get("/metrics", headers=b).status == 200  # own bucket

    def test_client_table_bounded(self):
        clock = SimClock(start=10.0)
        limiter = RateLimiter(clock, rate=1.0, burst=1.0, max_clients=4)
        for i in range(20):
            request = Request.from_url("GET", "/metrics", headers={"x-forwarded-for": f"10.0.0.{i}"})
            limiter.check(request)
        assert len(limiter._buckets) <= 4

    def test_health_endpoint_not_limited(self):
        clock = SimClock(start=10.0)
        exporter, _ = self.make_exporter(clock, rate=0.1, burst=1.0)
        exporter.app.get("/metrics")
        assert exporter.app.get("/metrics").status == 429
        assert exporter.app.get("/health").status == 200  # monitoring stays up
