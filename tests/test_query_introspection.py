"""Query & storage introspection: stats, tracker, slow log, profiler.

Covers the :mod:`repro.obs.log` / :mod:`repro.obs.query` /
:mod:`repro.obs.prof` trio and its wiring through the PromQL engine,
the Prometheus HTTP API (``stats=all``, ``/debug/queries``,
``/debug/prof``) and the persist layer's new duration metrics.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import Telemetry
from repro.obs.log import StructuredLogger
from repro.obs.prof import PROFILER, Profiler, profile
from repro.obs.query import (
    ActiveQueryTracker,
    QueryQueueFullError,
    QueryStats,
    SlowQueryLog,
    activate_stats,
    current_stats,
    deactivate_stats,
    tracked_select,
)
from repro.obs.registry import MetricsRegistry
from repro.tsdb.http import PromAPI
from repro.tsdb.model import Labels, Matcher, MatchOp
from repro.tsdb.persist import PersistentTSDB
from repro.tsdb.promql.ast import iter_selectors
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.promql.parser import parse_expr
from repro.tsdb.storage import TSDB
from repro.thanos.store import ObjectStore


@pytest.fixture
def db() -> TSDB:
    tsdb = TSDB()
    for i in range(20):
        t = i * 15.0
        tsdb.append(Labels({"__name__": "power", "uuid": "1"}), t, 100.0 + i)
        tsdb.append(Labels({"__name__": "power", "uuid": "2"}), t, 200.0 + i)
    return tsdb


@pytest.fixture(autouse=True)
def _clean_profiler():
    """Every test starts and ends with the global profiler off/empty."""
    PROFILER.disable()
    PROFILER.reset()
    yield
    PROFILER.disable()
    PROFILER.reset()


class TestStructuredLogger:
    def test_records_fields_and_counts(self):
        log = StructuredLogger("test-component")
        record = log.info("thing happened", count=3, name="x")
        assert record is not None
        assert record.component == "test-component"
        assert record.level == "info"
        assert record.fields == {"count": 3, "name": "x"}
        assert log.total_logged == 1
        assert log.counts == {"info": 1}
        assert log.records("info") == [record]

    def test_level_threshold_drops_records(self):
        log = StructuredLogger("c", level="warning")
        assert log.debug("noise") is None
        assert log.info("noise") is None
        assert log.warning("signal") is not None
        assert log.error("signal") is not None
        assert log.total_logged == 2

    def test_ring_stays_bounded(self):
        log = StructuredLogger("c", capacity=8)
        for i in range(30):
            log.info("e", i=i)
        assert len(log) == 8
        # Oldest records are evicted first.
        assert [r.fields["i"] for r in log.records()] == list(range(22, 30))
        assert log.total_logged == 30

    def test_jsonl_sink(self, tmp_path):
        path = str(tmp_path / "app.log")
        log = StructuredLogger("sink", sink_path=path)
        log.info("first", a=1)
        log.warning("second", b="two")
        log.close()
        lines = [json.loads(l) for l in open(path, encoding="utf-8")]
        assert [l["event"] for l in lines] == ["first", "second"]
        assert lines[0]["component"] == "sink"
        assert lines[0]["a"] == 1
        assert lines[1]["level"] == "warning"

    def test_trace_correlation(self):
        tel = Telemetry("traced")
        log = StructuredLogger("traced")
        with tel.span("outer") as span:
            record = log.info("inside trace")
        outside = log.info("outside trace")
        assert record.trace_id == span.trace_id
        assert record.span_id == span.span_id
        assert outside.trace_id == ""
        assert log.for_trace(span.trace_id) == [record]


class TestProfiler:
    def test_disabled_is_shared_noop(self):
        p = Profiler()
        assert p.profile("a") is p.profile("b")
        with p.profile("a"):
            pass
        assert p.snapshot() == {}

    def test_enabled_aggregates_flat_profile(self):
        p = Profiler()
        p.enable()
        for _ in range(3):
            with p.profile("phase.x"):
                pass
        snap = p.snapshot()
        assert snap["phase.x"]["count"] == 3
        assert snap["phase.x"]["total_seconds"] >= 0.0
        assert snap["phase.x"]["max_seconds"] <= snap["phase.x"]["total_seconds"]
        p.reset()
        assert p.snapshot() == {}

    def test_module_hook_records_into_global(self):
        PROFILER.enable()
        with profile("test.phase"):
            pass
        assert "test.phase" in PROFILER.snapshot()


class TestQueryStats:
    def test_phase_timings_accumulate(self):
        stats = QueryStats(query="up", strategy="per_step")
        with stats.phase("parse"):
            pass
        with stats.phase("eval"):
            pass
        with stats.phase("eval"):
            pass
        d = stats.to_dict()
        assert set(d["timings"]) == {
            "parseSeconds",
            "selectSeconds",
            "evalSeconds",
            "renderSeconds",
        }
        assert d["strategy"] == "per_step"
        assert stats.total_seconds() >= d["timings"]["evalSeconds"]

    def test_tracked_select_free_without_stats(self, db):
        matchers = [Matcher("__name__", MatchOp.EQ, "power")]
        assert current_stats() is None
        series = tracked_select(db, matchers)
        assert len(series) == 2

    def test_tracked_select_counts_into_active_stats(self, db):
        matchers = [Matcher("__name__", MatchOp.EQ, "power")]
        stats = QueryStats()
        token = activate_stats(stats)
        try:
            tracked_select(db, matchers)
        finally:
            deactivate_stats(token)
        assert stats.series_selected == 2
        assert stats.phases["select"] >= 0.0

    @pytest.mark.parametrize("strategy", ["per_step", "columnar"])
    def test_engine_reports_samples_touched(self, db, strategy):
        engine = PromQLEngine(db)
        stats = QueryStats(strategy=strategy)
        token = activate_stats(stats)
        try:
            engine.query_range("rate(power[60s])", 60.0, 285.0, 15.0, strategy=strategy)
        finally:
            deactivate_stats(token)
        assert stats.series_selected >= 2
        assert stats.samples_touched > 0

    def test_iter_selectors_fingerprint(self):
        ast = parse_expr('sum by (uuid) (rate(power{uuid="1"}[60s])) / scalar(count(up))')
        names = [sel.name for sel in iter_selectors(ast)]
        assert names == ["power", "up"]


class TestActiveQueryTracker:
    def test_lifecycle_states(self):
        tracker = ActiveQueryTracker(max_concurrent=2)
        with tracker.track("up", fingerprint=("up",), strategy="per_step") as record:
            assert record.state == "running"
            assert [r.id for r in tracker.active()] == [record.id]
        assert record.state == "done"
        assert record.duration_seconds >= 0.0
        assert tracker.active() == []
        assert tracker.recent() == [record]
        d = tracker.to_dict()
        assert d["queries_tracked"] == 1
        assert d["recent"][0]["fingerprint"] == ["up"]

    def test_error_state_releases_slot(self):
        tracker = ActiveQueryTracker(max_concurrent=1)
        with pytest.raises(RuntimeError):
            with tracker.track("boom"):
                raise RuntimeError("eval failed")
        assert tracker.recent()[0].state == "error"
        # The slot was released: the next query is admitted.
        with tracker.track("ok"):
            pass

    def test_queue_timeout_raises_503_error(self):
        tracker = ActiveQueryTracker(max_concurrent=1, queue_timeout=0.01)
        with tracker.track("holder"):
            with pytest.raises(QueryQueueFullError):
                with tracker.track("starved"):
                    pass
        assert tracker.queue_timeouts == 1

    def test_done_ring_bounded(self):
        tracker = ActiveQueryTracker(done_capacity=3)
        for i in range(10):
            with tracker.track(f"q{i}"):
                pass
        assert [r.query for r in tracker.recent()] == ["q7", "q8", "q9"]

    def test_journal_clean_shutdown_leaves_nothing(self, tmp_path):
        path = str(tmp_path / "queries.active")
        tracker = ActiveQueryTracker(journal_path=path)
        with tracker.track("up"):
            pass
        tracker.close()
        reopened = ActiveQueryTracker(journal_path=path)
        assert reopened.unclean_queries == []

    def test_journal_unclean_shutdown_logged_and_cleared(self, tmp_path):
        path = str(tmp_path / "queries.active")
        tracker = ActiveQueryTracker(journal_path=path)
        # Simulate a process killed mid-query: enter but never exit.
        cm = tracker.track("sum(rate(power[5m]))")
        cm.__enter__()
        # No close(), no __exit__ — the "end" record is never written.

        reopened = ActiveQueryTracker(journal_path=path)
        assert [q["query"] for q in reopened.unclean_queries] == [
            "sum(rate(power[5m]))"
        ]
        warnings = reopened.log.records("warning")
        assert any("unclean shutdown" in r.event for r in warnings)
        assert reopened.to_dict()["unclean_shutdown"]
        # ... and the stale entries never reappear as running.
        assert reopened.active() == []
        reopened.close()
        third = ActiveQueryTracker(journal_path=path)
        assert third.unclean_queries == []

    def test_torn_journal_tail_is_tolerated(self, tmp_path):
        path = str(tmp_path / "queries.active")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"op": "start", "id": 1, "query": "up", "ts": 1.0}) + "\n")
            fh.write('{"op": "sta')  # torn tail of a killed writer
        tracker = ActiveQueryTracker(journal_path=path)
        assert [q["query"] for q in tracker.unclean_queries] == ["up"]


class TestSlowQueryLog:
    def test_threshold_filters(self):
        log = SlowQueryLog(threshold_ms=50.0)
        assert log.observe("fast", 0.001) is None
        entry = log.observe("slow", 0.2, endpoint="/api/v1/query")
        assert entry is not None
        assert entry["duration_seconds"] == 0.2
        assert len(log) == 1
        assert log.total_observed == 2
        assert log.total_slow == 1

    def test_negative_threshold_disables(self):
        log = SlowQueryLog(threshold_ms=-1.0)
        assert log.observe("anything", 100.0) is None
        assert len(log) == 0

    def test_zero_threshold_logs_everything(self):
        log = SlowQueryLog(threshold_ms=0.0)
        assert log.observe("q", 0.0) is not None

    def test_entry_carries_stats_and_trace(self):
        log = SlowQueryLog(threshold_ms=0.0)
        stats = QueryStats(strategy="columnar")
        stats.samples_touched = 42
        entry = log.observe("q", 0.5, stats=stats, trace_id="ab" * 16)
        assert entry["trace_id"] == "ab" * 16
        assert entry["stats"]["samples"]["samplesTouched"] == 42
        warning = log.log.records("warning")[-1]
        assert warning.fields["samples_touched"] == 42

    def test_ring_bounded(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=4)
        for i in range(10):
            log.observe(f"q{i}", 1.0)
        assert [e["query"] for e in log.entries()] == ["q6", "q7", "q8", "q9"]


class TestPromAPIIntrospection:
    @pytest.fixture
    def api(self, db) -> PromAPI:
        # threshold 0: every query lands in the slow-query log.
        return PromAPI(db, slow_query_ms=0.0)

    def test_stats_all_on_instant_query(self, api):
        resp = api.app.get("/api/v1/query?query=power&time=150&stats=all")
        assert resp.status == 200
        payload = resp.decode_json()
        stats = payload["data"]["stats"]
        assert stats["samples"]["seriesSelected"] >= 2
        assert stats["samples"]["samplesTouched"] > 0
        assert stats["timings"]["evalSeconds"] >= 0.0

    @pytest.mark.parametrize("strategy", ["per_step", "columnar"])
    def test_stats_all_on_range_query(self, api, strategy):
        resp = api.app.get(
            "/api/v1/query_range?query=rate(power[60s])"
            f"&start=60&end=285&step=15&stats=all&strategy={strategy}"
        )
        assert resp.status == 200
        stats = resp.decode_json()["data"]["stats"]
        assert stats["strategy"] == strategy
        assert stats["samples"]["samplesTouched"] > 0

    def test_no_stats_without_param(self, api):
        resp = api.app.get("/api/v1/query?query=power&time=150")
        assert resp.status == 200
        assert "stats" not in resp.decode_json()["data"]

    def test_debug_queries_shows_finished_queries(self, api):
        api.app.get("/api/v1/query?query=sum(power)&time=150")
        resp = api.app.get("/debug/queries")
        assert resp.status == 200
        payload = resp.decode_json()
        assert payload["queries_tracked"] == 1
        done = payload["recent"][0]
        assert done["state"] == "done"
        assert done["query"] == "sum(power)"
        assert done["fingerprint"] == ["power"]
        assert done["stats"]["samples"]["seriesSelected"] >= 2
        # threshold 0 → the query is also in the slow-query log
        assert payload["slow_queries"][0]["query"] == "sum(power)"

    def test_slow_query_entry_carries_trace_id(self, api):
        trace_id = "ee" * 16
        resp = api.app.get(
            "/api/v1/query?query=power&time=150",
            headers={"traceparent": f"00-{trace_id}-{'01' * 8}-01"},
        )
        assert resp.status == 200
        entry = api.slow_log.entries()[-1]
        assert entry["trace_id"] == trace_id
        # The eval span of the same trace carries the stats payload.
        spans = api.app.telemetry.spans.for_trace(trace_id)
        eval_spans = [s for s in spans if s.name == "promql.eval"]
        assert eval_spans and "stats" in eval_spans[0].attrs

    def test_queue_full_returns_503(self, db):
        api = PromAPI(db, max_concurrent_queries=1, queue_timeout=0.01)
        with api.tracker.track("holder"):
            resp = api.app.get("/api/v1/query?query=power&time=150")
        assert resp.status == 503
        assert "queue full" in resp.decode_json()["error"]

    def test_parse_error_still_400(self, api):
        resp = api.app.get("/api/v1/query?query=power(&time=150")
        assert resp.status == 400

    def test_query_log_sink(self, db, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        api = PromAPI(db, slow_query_ms=0.0, query_log_path=path)
        api.app.get("/api/v1/query?query=power&time=150")
        lines = [json.loads(l) for l in open(path, encoding="utf-8")]
        assert lines and lines[0]["event"] == "slow query"
        assert lines[0]["query"] == "power"

    def test_active_query_journal_recovery(self, db, tmp_path):
        path = str(tmp_path / "queries.active")
        api = PromAPI(db, active_query_journal=path)
        api.app.get("/api/v1/query?query=power&time=150")
        api.tracker.close()
        reopened = PromAPI(db, active_query_journal=path)
        assert reopened.tracker.unclean_queries == []

    def test_debug_prof_toggles_and_reports(self, api):
        resp = api.app.get("/debug/prof?enable=1")
        assert resp.decode_json()["enabled"] is True
        api.app.get(
            "/api/v1/query_range?query=rate(power[60s])&start=60&end=285&step=15"
        )
        snap = api.app.get("/debug/prof").decode_json()["profile"]
        assert "promql.kernel.rate" in snap
        assert snap["promql.kernel.rate"]["count"] >= 1
        resp = api.app.get("/debug/prof?enable=0&reset=1")
        assert resp.decode_json()["enabled"] is False
        assert resp.decode_json()["profile"] == {}

    def test_tracker_metrics_exposed(self, api):
        api.app.get("/api/v1/query?query=power&time=150")
        text = api.app.get("/metrics").body.decode()
        assert "ceems_promapi_queries_inflight 0" in text
        assert "ceems_promapi_slow_queries_total 1" in text


class TestPersistDurationMetrics:
    def test_fsync_and_checkpoint_histograms(self, tmp_path):
        head = PersistentTSDB(str(tmp_path / "hot"), fsync="batch")
        for i in range(50):
            head.append(Labels({"__name__": "power", "uuid": "1"}), i * 15.0, 1.0)
        head.wal.sync()
        head.checkpoint(300.0)
        registry = MetricsRegistry()
        head.register_metrics(registry)
        text = registry.render()
        assert "ceems_tsdb_wal_fsync_seconds_bucket" in text
        assert "ceems_tsdb_wal_fsync_seconds_count" in text
        assert "ceems_tsdb_checkpoint_seconds_count 1" in text
        assert head.wal.fsync_seconds._data  # at least one observation
        head.close()

    def test_replay_seconds_gauge(self, tmp_path):
        path = str(tmp_path / "hot")
        head = PersistentTSDB(path)
        head.append(Labels({"__name__": "power"}), 0.0, 1.0)
        head.close()
        reopened = PersistentTSDB(path)
        assert reopened.replay_seconds >= 0.0
        registry = MetricsRegistry()
        reopened.register_metrics(registry)
        assert "ceems_tsdb_wal_replay_seconds" in registry.render()
        reopened.close()

    def test_chunk_compression_ratio_gauge(self, tmp_path):
        import numpy as np

        store = ObjectStore(persist_dir=str(tmp_path / "store"))
        ts = np.arange(0.0, 1800.0, 15.0)
        vs = np.full_like(ts, 42.0)
        store.persist_block(
            store.new_ulid(),
            [(Labels({"__name__": "power"}), ts, vs)],
            min_time=0.0,
            max_time=1800.0,
            resolution="raw",
        )
        registry = MetricsRegistry()
        store.register_metrics(registry)
        text = registry.render()
        assert "ceems_tsdb_chunk_compression_ratio" in text
        assert store.compression_ratio() > 1.0

    def test_profiler_sees_persist_phases(self, tmp_path):
        PROFILER.enable()
        head = PersistentTSDB(str(tmp_path / "hot"), fsync="always")
        head.append(Labels({"__name__": "power"}), 0.0, 1.0)
        head.checkpoint(100.0)
        head.close()
        snap = PROFILER.snapshot()
        assert {"wal.append", "wal.fsync", "head.checkpoint"} <= set(snap)

    def test_profiler_sees_block_write(self, tmp_path):
        import numpy as np

        PROFILER.enable()
        store = ObjectStore(persist_dir=str(tmp_path / "store"))
        ts = np.arange(0.0, 300.0, 15.0)
        store.persist_block(
            store.new_ulid(),
            [(Labels({"__name__": "power"}), ts, ts)],
            min_time=0.0,
            max_time=300.0,
            resolution="raw",
        )
        assert "block.write" in PROFILER.snapshot()
