"""Blackbox prober, SLO burn-rate compilation, the shipped-rule
compile/evaluate CI guard, and the ``export-rules --check`` drift
gate."""

import json

import pytest

from repro.cli import generate_rules_text, main
from repro.common.clock import SimClock
from repro.common.httpx import App, Response
from repro.obs.probe import BlackboxProber, ProbeTarget
from repro.obs.slo import (
    SLO,
    BurnRateWindow,
    slo_alert_group,
    slo_recording_group,
    standard_slos,
)
from repro.tsdb.model import Labels
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.promql.parser import parse_expr
from repro.tsdb.storage import TSDB


def make_app(name: str = "svc", status: int = 200) -> App:
    app = App(name)
    app.router.get("/-/healthy", lambda req: Response.error(status, "x") if status >= 400 else Response.text("ok"))
    return app


class TestBlackboxProber:
    def test_probe_records_series(self):
        db = TSDB()
        prober = BlackboxProber(db, interval=60.0)
        prober.add_target(ProbeTarget(app=make_app(), instance="svc:1"))
        prober.add_target(ProbeTarget(app=make_app(status=500), instance="bad:2"))
        prober.probe_all(120.0)

        engine = PromQLEngine(db, lookback=300.0)
        res = engine.query("probe_success", at=121.0)
        by_instance = {el.labels.get("instance"): el.value for el in res.vector}
        assert by_instance == {"svc:1": 1.0, "bad:2": 0.0}
        res = engine.query("probe_duration_seconds", at=121.0)
        assert len(res.vector) == 2
        assert all(el.value >= 0.0 for el in res.vector)
        res = engine.query("probe_http_status_code", at=121.0)
        codes = {el.labels.get("instance"): el.value for el in res.vector}
        assert codes == {"svc:1": 200.0, "bad:2": 500.0}
        assert prober.probes_total == 2 and prober.failures_total == 1

    def test_handler_exception_counts_as_failure(self):
        db = TSDB()
        app = App("svc")
        prober = BlackboxProber(db)
        prober.add_target(ProbeTarget(app=app, instance="svc:1", path="/missing"))
        prober.probe_all(0.0)  # 404 from the router
        assert prober.failures_total == 1

        def boom(req):
            raise RuntimeError("crash")

        app.router.get("/explode", boom)
        prober.targets[0].path = "/explode"
        prober.probe_all(60.0)
        assert prober.failures_total == 2
        assert prober.targets[0].last_status == 0

    def test_duplicate_instance_rejected(self):
        prober = BlackboxProber(TSDB())
        prober.add_target(ProbeTarget(app=make_app(), instance="svc:1"))
        with pytest.raises(ValueError):
            prober.add_target(ProbeTarget(app=make_app(), instance="svc:1"))

    def test_clock_registration(self):
        db = TSDB()
        clock = SimClock(start=0.0)
        prober = BlackboxProber(db, interval=30.0)
        prober.add_target(ProbeTarget(app=make_app(), instance="svc:1"))
        prober.register_timer(clock)
        clock.advance(95.0)
        assert prober.probes_total == 3  # t=30, 60, 90
        series = [s for s in db.all_series() if s.labels.metric_name == "probe_success"]
        assert len(series) == 1
        assert list(series[0].timestamps) == [30.0, 60.0, 90.0]


class TestSLOCompilation:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLO(name="x", objective=1.5, selector='job="j"')
        with pytest.raises(ValueError):
            SLO(name="x", objective=0.99, selector='job="j"', kind="throughput")

    def test_recording_rules_cover_all_windows(self):
        slo = SLO(name="svc", objective=0.999, selector='job="j"')
        records = [r.record for r in slo.recording_rules()]
        assert records == [
            "slo:svc:error_ratio_rate5m",
            "slo:svc:error_ratio_rate1h",
            "slo:svc:error_ratio_rate30m",
            "slo:svc:error_ratio_rate6h",
            "slo:svc:error_budget_remaining",
        ]

    def test_alert_bounds_scale_with_objective(self):
        slo = SLO(
            name="svc",
            objective=0.99,
            selector='job="j"',
            windows=(BurnRateWindow("5m", "1h", 10.0, "critical"),),
        )
        (rule,) = slo.alerting_rules()
        assert "> 0.1" in rule.expr  # 10 x (1 - 0.99)
        assert rule.labels == {"severity": "critical", "slo": "svc"}

    def test_all_shipped_slo_exprs_parse(self):
        for slo in standard_slos():
            for rule in slo.recording_rules():
                parse_expr(rule.expr)
            for rule in slo.alerting_rules():
                parse_expr(rule.expr)

    def test_burn_rate_fires_end_to_end(self):
        """Error traffic above the burn threshold on both windows
        drives the compiled alert pending → firing."""
        db = TSDB()
        slo = SLO(name="svc", objective=0.999, selector='job="j"')
        recording = slo_recording_group([slo], interval=30.0)
        alerts = slo_alert_group([slo], interval=60.0)
        engine = PromQLEngine(db, lookback=300.0)

        def push(t):
            # 50% errors: way past every burn-rate bound for objective 0.999
            db.append(
                Labels({"__name__": "ceems_http_requests_total", "job": "j", "code": "200"}),
                t,
                t / 15.0,
            )
            db.append(
                Labels({"__name__": "ceems_http_requests_total", "job": "j", "code": "500"}),
                t,
                t / 15.0,
            )

        transitions = []
        for t in range(0, 1300, 15):
            push(float(t))
            if t % 30 == 0:
                recording.evaluate(db, float(t), engine=engine)
            if t % 60 == 0:
                transitions.extend(alerts.evaluate(engine, float(t)))
        assert recording.last_error == ""
        fired = [tr for tr in transitions if tr.state.value == "firing"]
        assert {f.name for f in fired} == {
            "SLOErrorBudgetBurn_svc_5m_1h",
            "SLOErrorBudgetBurn_svc_30m_6h",
        }
        # error budget is exhausted (ratio 0.5 against a 0.1 budget)
        res = engine.query('slo:svc:error_budget_remaining{slo="svc"}', at=1290.0)
        assert res.vector and res.vector[0].value < 0.0

    def test_no_errors_records_zero_ratio(self):
        db = TSDB()
        slo = SLO(name="svc", objective=0.999, selector='job="j"')
        recording = slo_recording_group([slo])
        engine = PromQLEngine(db, lookback=300.0)
        for t in range(0, 600, 15):
            db.append(
                Labels({"__name__": "ceems_http_requests_total", "job": "j", "code": "200"}),
                float(t),
                t / 15.0,
            )
        recording.evaluate(db, 585.0, engine=engine)
        res = engine.query('slo:svc:error_ratio_rate5m{slo="svc"}', at=585.0)
        assert [el.value for el in res.vector] == [0.0]


class TestShippedRulesCompile:
    """Satellite: every shipped recording AND alerting rule parses
    through ``parse_expr`` and evaluates on a seeded sim TSDB."""

    def test_all_rules_parse(self):
        from repro.energy import standard_rule_groups
        from repro.tsdb.alerts import ceems_alert_rules

        for group in standard_rule_groups() + [slo_recording_group(standard_slos())]:
            for rule in group.rules:
                parse_expr(rule.expr)
        for rule in ceems_alert_rules() + slo_alert_group(standard_slos()).rules:
            parse_expr(rule.expr)

    def test_all_rules_evaluate_on_seeded_sim(self, small_sim):
        """No shipped expression may error against real sim data —
        QueryError on evaluation means the rule references series the
        stack does not produce."""
        from repro.tsdb.alerts import ceems_alert_rules

        engine = PromQLEngine(small_sim.hot_tsdb, lookback=small_sim.lookback)
        at = small_sim.now
        for group in small_sim.rule_evaluator.groups:
            for rule in group.rules:
                engine.query(rule.ast(), at, strategy="columnar")
        for rule in ceems_alert_rules():
            engine.query(rule.ast(), at)
        for group in small_sim.rule_evaluator.alert_groups:
            for rule in group.rules:
                engine.query(rule.ast(), at)

    def test_sim_rule_groups_report_no_errors(self, small_sim):
        for group in small_sim.rule_evaluator.groups:
            assert group.last_error == "", group.name
        for group in small_sim.rule_evaluator.alert_groups:
            assert group.last_error == "", group.name


class TestExportRulesCheck:
    def test_check_passes_on_fresh_export(self, tmp_path):
        path = tmp_path / "rules.yml"
        assert main(["export-rules", "--output", str(path)]) == 0
        assert main(["export-rules", "--check", "--output", str(path)]) == 0

    def test_check_fails_on_drift(self, tmp_path):
        import io

        path = tmp_path / "rules.yml"
        main(["export-rules", "--output", str(path)])
        path.write_text(path.read_text() + "# local edit\n")
        out = io.StringIO()
        assert main(["export-rules", "--check", "--output", str(path)], out=out) == 1
        assert "drifted" in out.getvalue()

    def test_check_fails_on_missing_file(self, tmp_path):
        assert (
            main(["export-rules", "--check", "--output", str(tmp_path / "nope.yml")])
            == 1
        )

    def test_checked_in_file_matches_library(self):
        """The repo's etc/prometheus-rules.yml is the generated text
        (the drift gate CI runs)."""
        with open("etc/prometheus-rules.yml", encoding="utf-8") as fh:
            assert fh.read() == generate_rules_text()

    def test_slo_groups_exported(self):
        text = generate_rules_text()
        assert "slo-rules" in text
        assert "slo-alerts" in text
        assert "SLOErrorBudgetBurn_lb_availability_5m_1h" in text
