"""Tests for the CEEMS exporter and its collectors."""

import pytest

from repro.common.auth import make_basic_auth_header
from repro.common.clock import SimClock
from repro.common.config import ExporterConfig
from repro.common.errors import CollectorError
from repro.exporter import (
    AMDSMIExporter,
    CEEMSExporter,
    CgroupCollector,
    CollectorRegistry,
    DCGMExporter,
    GPUMapCollector,
    IPMICollector,
    NodeCollector,
    RAPLCollector,
)
from repro.exporter.collector import Collector
from repro.exporter.collectors import extract_unit_uuid
from repro.hwsim import GPU_PROFILES, NodeSpec, SimulatedNode, UsageProfile
from repro.tsdb import exposition


class TestUnitPatterns:
    @pytest.mark.parametrize(
        "path,expected",
        [
            ("/system.slice/slurmstepd.scope/job_12345", ("slurm", "12345")),
            (
                "/machine.slice/machine-qemu-7-instance-0000abcd.scope",
                ("libvirt", "0000abcd"),
            ),
            (
                "/kubepods.slice/kubepods-burstable-pod0a1b2c3d_0000_4000_8000_000000000000.slice",
                ("k8s", "0a1b2c3d-0000-4000-8000-000000000000"),
            ),
            ("/system.slice/sshd.service", None),
            ("/system.slice/slurmstepd.scope", None),
            ("/user.slice/user-1000.slice", None),
        ],
    )
    def test_extraction(self, path, expected):
        assert extract_unit_uuid(path) == expected


def place_jobs(node: SimulatedNode) -> None:
    node.place_task("101", "/system.slice/slurmstepd.scope/job_101", 8, 16 * 2**30, UsageProfile.constant(0.9, 0.5), 0.0)
    node.place_task("102", "/system.slice/slurmstepd.scope/job_102", 4, 8 * 2**30, UsageProfile(cpu_base=0.4, read_bps=1e6, write_bps=5e5), 0.0)


def advance(node: SimulatedNode, steps: int = 12) -> None:
    for i in range(steps):
        node.advance((i + 1) * 5.0, 5.0)


class TestCgroupCollector:
    def test_per_unit_metrics(self, cpu_node):
        place_jobs(cpu_node)
        advance(cpu_node)
        families = {f.name: f for f in CgroupCollector(cpu_node).collect(60.0)}
        cpu_user = families["ceems_compute_unit_cpu_user_seconds_total"]
        assert {p.labels["uuid"] for p in cpu_user.points} == {"101", "102"}
        assert all(p.labels["manager"] == "slurm" for p in cpu_user.points)
        by_uuid = {p.labels["uuid"]: p.value for p in cpu_user.points}
        assert by_uuid["101"] == pytest.approx(0.9 * 8 * 60 * 0.92, rel=0.01)

    def test_memory_and_limit(self, cpu_node):
        place_jobs(cpu_node)
        advance(cpu_node)
        families = {f.name: f for f in CgroupCollector(cpu_node).collect(60.0)}
        mem = {p.labels["uuid"]: p.value for p in families["ceems_compute_unit_memory_current_bytes"].points}
        assert mem["101"] == pytest.approx(0.5 * 16 * 2**30, rel=0.01)
        limits = {p.labels["uuid"]: p.value for p in families["ceems_compute_unit_memory_limit_bytes"].points}
        assert limits["101"] == 16 * 2**30

    def test_io_only_when_nonzero(self, cpu_node):
        place_jobs(cpu_node)
        advance(cpu_node)
        families = {f.name: f for f in CgroupCollector(cpu_node).collect(60.0)}
        reads = families["ceems_compute_unit_io_read_bytes_total"].points
        assert {p.labels["uuid"] for p in reads} == {"102"}
        assert reads[0].value == pytest.approx(1e6 * 60, rel=0.01)

    def test_cpus_gauge(self, cpu_node):
        place_jobs(cpu_node)
        advance(cpu_node, 1)
        families = {f.name: f for f in CgroupCollector(cpu_node).collect(5.0)}
        cpus = {p.labels["uuid"]: p.value for p in families["ceems_compute_unit_cpus"].points}
        assert cpus == {"101": 8.0, "102": 4.0}


class TestRAPLCollector:
    def test_intel_exports_package_and_dram(self, cpu_node):
        advance(cpu_node, 2)
        families = {f.name: f for f in RAPLCollector(cpu_node).collect(10.0)}
        assert len(families["ceems_rapl_package_joules_total"].points) == 2
        assert len(families["ceems_rapl_dram_joules_total"].points) == 2
        pkg = families["ceems_rapl_package_joules_total"].points[0]
        assert pkg.value > 0
        assert pkg.labels["socket"] == "0"

    def test_amd_has_no_dram_points(self, amd_node):
        advance(amd_node, 2)
        families = {f.name: f for f in RAPLCollector(amd_node).collect(10.0)}
        assert families["ceems_rapl_dram_joules_total"].points == []

    def test_wraparound_delta_helper(self):
        # 262143 J range; counter wrapped from 262000 to 500
        delta = RAPLCollector.wraparound_delta(262000.0, 500.0, 262_143_328_850)
        assert delta == pytest.approx(643.3, rel=0.01)


class TestIPMICollector:
    def test_reports_dcmi_fields(self, cpu_node):
        advance(cpu_node, 4)
        families = {f.name: f for f in IPMICollector(cpu_node).collect(20.0)}
        current = families["ceems_ipmi_dcmi_current_watts"].points[0].value
        assert current > 100  # at least idle power
        assert families["ceems_ipmi_dcmi_min_watts"].points[0].value <= current

    def test_inactive_sensor_exports_nothing(self, cpu_node):
        families = {f.name: f for f in IPMICollector(cpu_node).collect(0.0)}
        assert families["ceems_ipmi_dcmi_current_watts"].points == []


class TestNodeCollector:
    def test_cpu_modes_sum_to_capacity(self, cpu_node):
        place_jobs(cpu_node)
        advance(cpu_node)
        families = {f.name: f for f in NodeCollector(cpu_node).collect(60.0)}
        by_mode = {p.labels["mode"]: p.value for p in families["ceems_cpu_seconds_total"].points}
        capacity = cpu_node.spec.ncores * 60.0
        total = sum(by_mode.values())
        assert total == pytest.approx(capacity, rel=0.02)

    def test_memory_metrics(self, cpu_node):
        place_jobs(cpu_node)
        advance(cpu_node)
        families = {f.name: f for f in NodeCollector(cpu_node).collect(60.0)}
        total = families["ceems_meminfo_total_bytes"].points[0].value
        used = families["ceems_meminfo_used_bytes"].points[0].value
        assert total == cpu_node.spec.memory_bytes
        assert 0 < used < total


class TestGPUMapCollector:
    def test_flag_series(self, gpu_node):
        gpu_node.place_task("7", "/system.slice/slurmstepd.scope/job_7", 4, 2**30, UsageProfile.constant(0.5, 0.5, 0.9), 0.0, ngpus=2)
        families = {f.name: f for f in GPUMapCollector(gpu_node).collect(0.0)}
        points = families["ceems_compute_unit_gpu_index_flag"].points
        assert len(points) == 2
        assert {p.labels["index"] for p in points} == {"0", "1"}
        assert all(p.value == 1.0 and p.labels["uuid"] == "7" for p in points)


class TestRegistry:
    def test_duplicate_collector_rejected(self, cpu_node):
        registry = CollectorRegistry()
        registry.register(RAPLCollector(cpu_node))
        with pytest.raises(CollectorError):
            registry.register(RAPLCollector(cpu_node))

    def test_unregister(self, cpu_node):
        registry = CollectorRegistry()
        registry.register(RAPLCollector(cpu_node))
        registry.unregister("rapl")
        assert registry.names == []
        with pytest.raises(CollectorError):
            registry.unregister("rapl")

    def test_failing_collector_degrades_to_success_zero(self, cpu_node):
        class Broken(Collector):
            name = "broken"

            def collect(self, now):
                raise RuntimeError("boom")

        registry = CollectorRegistry()
        registry.register(Broken())
        registry.register(RAPLCollector(cpu_node))
        families = {f.name: f for f in registry.collect(0.0)}
        success = {p.labels["collector"]: p.value for p in families["ceems_exporter_collector_success"].points}
        assert success == {"broken": 0.0, "rapl": 1.0}


class TestExporterServer:
    def test_metrics_endpoint(self, cpu_node):
        place_jobs(cpu_node)
        advance(cpu_node)
        clock = SimClock(start=60.0)
        exporter = CEEMSExporter(cpu_node, clock, ExporterConfig())
        response = exporter.app.get("/metrics")
        assert response.ok
        families = {f.name for f in exposition.parse(response.body.decode())}
        assert "ceems_compute_unit_cpu_user_seconds_total" in families
        assert "ceems_rapl_package_joules_total" in families
        assert "ceems_exporter_collector_success" in families

    def test_collectors_configurable(self, cpu_node):
        clock = SimClock()
        exporter = CEEMSExporter(cpu_node, clock, ExporterConfig(collectors=("rapl",)))
        assert exporter.registry.names == ["rapl"]

    def test_self_metrics(self, cpu_node):
        clock = SimClock()
        exporter = CEEMSExporter(cpu_node, clock, ExporterConfig(collectors=("self",)))
        exporter.app.get("/metrics")
        response = exporter.app.get("/metrics")
        families = {f.name: f for f in exposition.parse(response.body.decode())}
        assert families["ceems_exporter_scrapes_total"].points[0].value == 1.0

    def test_basic_auth_from_config(self, cpu_node):
        clock = SimClock()
        config = ExporterConfig.from_dict(
            {"basic_auth": {"username": "s", "password": "p"}}
        )
        exporter = CEEMSExporter(cpu_node, clock, config)
        assert exporter.app.get("/metrics").status == 401
        ok = exporter.app.get("/metrics", headers={"authorization": make_basic_auth_header("s", "p")})
        assert ok.status == 200

    def test_index_and_health(self, cpu_node):
        exporter = CEEMSExporter(cpu_node, SimClock())
        assert b"collectors" in exporter.app.get("/").body
        assert exporter.app.get("/health").ok


class TestGPUExporters:
    def test_dcgm_metric_names(self, gpu_node):
        gpu_node.place_task("7", "/system.slice/slurmstepd.scope/job_7", 4, 2**30, UsageProfile.constant(0.5, 0.5, 0.8), 0.0, ngpus=1)
        advance(gpu_node, 2)
        exporter = DCGMExporter(gpu_node, SimClock(start=10.0))
        response = exporter.app.get("/metrics")
        families = {f.name: f for f in exposition.parse(response.body.decode())}
        assert set(families) == {
            "DCGM_FI_DEV_POWER_USAGE",
            "DCGM_FI_DEV_GPU_UTIL",
            "DCGM_FI_DEV_FB_USED",
            "DCGM_FI_DEV_TOTAL_ENERGY_CONSUMPTION",
        }
        power = families["DCGM_FI_DEV_POWER_USAGE"].points
        assert len(power) == 4  # all devices report
        busy = [p for p in power if p.labels["gpu"] == "0"][0]
        assert busy.value > GPU_PROFILES["A100"].idle_w

    def test_amd_smi_exporter(self):
        node = SimulatedNode(NodeSpec(name="amd-gpu", cpu_model="amd-milan", gpus=("MI250",) * 2, memory_gb=256, dram_profile="ddr4-384g"), seed=5)
        node.place_task("9", "/system.slice/slurmstepd.scope/job_9", 4, 2**30, UsageProfile.constant(0.5, 0.5, 0.7), 0.0, ngpus=1)
        advance(node, 2)
        exporter = AMDSMIExporter(node, SimClock(start=10.0))
        families = {f.name: f for f in exposition.parse(exporter.app.get("/metrics").body.decode())}
        assert "amd_gpu_power" in families
        # µW exposition unit
        assert families["amd_gpu_power"].points[0].value > 1e6

    def test_dcgm_ignores_amd_devices(self):
        node = SimulatedNode(NodeSpec(name="mixed", gpus=("MI250",)), seed=1)
        exporter = DCGMExporter(node, SimClock())
        families = exposition.parse(exporter.app.get("/metrics").body.decode())
        assert all(not f.points for f in families)


class TestCgroupV1Mode:
    """CEEMS supports clusters still on cgroup v1."""

    def make_node(self):
        node = SimulatedNode(NodeSpec(name="legacy"), seed=2)
        node.place_task("501", "/system.slice/slurmstepd.scope/job_501", 8, 16 * 2**30, UsageProfile.constant(0.75, 0.5), 0.0)
        advance(node)
        return node

    def test_v1_exports_cpu_and_memory(self):
        node = self.make_node()
        collector = CgroupCollector(node, cgroup_version="v1")
        families = {f.name: f for f in collector.collect(60.0)}
        user = families["ceems_compute_unit_cpu_user_seconds_total"].points[0]
        assert user.labels["uuid"] == "501"
        # v1 counts USER_HZ ticks: value within a tick of the v2 number
        v2 = {f.name: f for f in CgroupCollector(node).collect(60.0)}
        v2_user = v2["ceems_compute_unit_cpu_user_seconds_total"].points[0]
        assert user.value == pytest.approx(v2_user.value, abs=0.02)
        mem = families["ceems_compute_unit_memory_current_bytes"].points[0]
        assert mem.value == pytest.approx(0.5 * 16 * 2**30, rel=0.01)

    def test_v1_has_no_io_or_cpuset(self):
        node = self.make_node()
        families = {f.name for f in CgroupCollector(node, cgroup_version="v1").collect(60.0)}
        assert "ceems_compute_unit_io_read_bytes_total" not in families
        assert "ceems_compute_unit_cpus" not in families

    def test_v1_memory_limit(self):
        node = self.make_node()
        families = {f.name: f for f in CgroupCollector(node, cgroup_version="v1").collect(60.0)}
        limit = families["ceems_compute_unit_memory_limit_bytes"].points[0]
        assert limit.value == 16 * 2**30

    def test_unknown_version_rejected(self):
        node = self.make_node()
        with pytest.raises(ValueError):
            CgroupCollector(node, cgroup_version="v3")

    def test_same_metric_names_both_versions(self):
        """Rules work unchanged regardless of the node's cgroup version."""
        node = self.make_node()
        v1_names = {f.name for f in CgroupCollector(node, cgroup_version="v1").collect(60.0)}
        v2_names = {f.name for f in CgroupCollector(node).collect(60.0)}
        assert v1_names <= v2_names
