"""The alerting control plane end to end: kill one exporter mid-run
and follow the blast radius through every layer the PR adds.

The dead target must show up as ``probe_success 0`` from the blackbox
prober, drive the ``CEEMSTargetDown`` rule pending → firing on the
live evaluator, surface at ``/api/v1/alerts`` through the LB, produce
exactly one grouped notification in the JSONL receiver (deduped
across repeated evaluations), be suppressible via a silence posted
through the LB, and resolve — with a resolved notification — once the
exporter returns.
"""

import json

import pytest

from repro.cluster import StackSimulation, small_topology
from repro.cluster.simulation import SimulationConfig
from repro.common.httpx import Request, Response
from repro.resourcemgr.workload import SizeClass, WorkloadMix

ADMIN = {"x-grafana-user": "admin"}
MIX = WorkloadMix(
    mean_interarrival=300.0,
    sizes=(SizeClass("s", weight=1.0, ncores=4, memory_gb=8),),
)


def lb_request(sim, method, url, **kwargs):
    kwargs.setdefault("headers", ADMIN)
    return sim.lb.app.handle(Request.from_url(method, url, **kwargs))


def target_down_alerts(sim):
    resp = lb_request(sim, "GET", "/api/v1/alerts")
    assert resp.status == 200
    data = resp.decode_json()["data"]["alerts"]
    return [a for a in data if a["labels"]["alertname"] == "CEEMSTargetDown"]


def target_down_notifications(path):
    if not path.exists():
        return []
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    return [n for n in lines if n["groupLabels"].get("alertname") == "CEEMSTargetDown"]


@pytest.fixture(scope="module")
def outage_run(tmp_path_factory):
    """One long scripted run; the test methods below assert on the
    recorded checkpoints so the expensive simulation happens once."""
    notify_path = tmp_path_factory.mktemp("am") / "notifications.jsonl"
    sim = StackSimulation(
        small_topology(cpu_nodes=2, gpu_nodes=1),
        SimulationConfig(seed=11, update_interval=600.0, notify_log=str(notify_path)),
        workload=MIX,
    )
    # Short repeat so the silence phase demonstrably swallows a
    # re-notification (default is 4 h — far beyond this run).
    sim.alertmanager.route.repeat_interval = 900.0
    checkpoints = {}

    # -- healthy baseline ------------------------------------------------
    sim.run(900.0)
    victim = sim.exporters[0]
    instance = f"{victim.node.spec.name}:9010"
    checkpoints["baseline_alerts"] = target_down_alerts(sim)
    checkpoints["baseline_probes"] = {
        el.labels.get("instance"): el.value
        for el in sim.engine.query("probe_success", at=sim.now).vector
    }

    # -- outage: every request to the victim's app now 500s ---------------
    original_dispatch = victim.app.router.dispatch
    victim.app.router.dispatch = lambda req: Response.error(500, "exporter crashed")
    sim.run(75.0)  # one scrape + one alert evaluation past the kill
    checkpoints["pending_alerts"] = target_down_alerts(sim)
    checkpoints["probe_after_kill"] = sim.engine.query(
        f'probe_success{{instance="{instance}"}}', at=sim.now
    ).vector

    sim.run(225.0)  # past the 120 s hold and the 30 s group_wait
    checkpoints["firing_alerts"] = target_down_alerts(sim)
    checkpoints["firing_notifications"] = target_down_notifications(notify_path)
    checkpoints["alerts_series"] = sim.engine.query(
        'ALERTS{alertname="CEEMSTargetDown", alertstate="firing"}', at=sim.now
    ).vector
    checkpoints["firing_gauge"] = sim.engine.query(
        "max(ceems_alerts_firing)", at=sim.now
    ).vector

    # -- dedup: repeated evaluations must not re-notify -------------------
    sim.run(600.0)
    checkpoints["deduped_notifications"] = target_down_notifications(notify_path)

    # -- silence the alert through the LB ---------------------------------
    resp = lb_request(
        sim,
        "POST",
        "/api/v1/silences",
        body=json.dumps(
            {
                "matchers": [
                    {"name": "alertname", "value": "CEEMSTargetDown", "isRegex": False}
                ],
                "endsAt": sim.now + 7200.0,
                "createdBy": "oncall",
                "comment": "known outage",
            }
        ).encode(),
    )
    checkpoints["silence_post_status"] = resp.status
    silence_id = resp.decode_json()["data"]["silenceID"]
    sim.run(60.0)
    checkpoints["silenced_alerts"] = target_down_alerts(sim)
    # run well past repeat_interval: the due re-notification is silenced
    sim.run(540.0)
    checkpoints["silenced_notifications"] = target_down_notifications(notify_path)

    # -- lift the silence, restore the exporter ---------------------------
    resp = lb_request(sim, "DELETE", f"/api/v1/silence/{silence_id}")
    checkpoints["silence_delete_status"] = resp.status
    victim.app.router.dispatch = original_dispatch
    sim.run(600.0)
    checkpoints["recovered_alerts"] = target_down_alerts(sim)
    checkpoints["final_notifications"] = target_down_notifications(notify_path)
    checkpoints["probe_after_recovery"] = sim.engine.query(
        f'probe_success{{instance="{instance}"}}', at=sim.now
    ).vector
    checkpoints["instance"] = instance
    return sim, checkpoints


class TestOutageLifecycle:
    def test_baseline_is_healthy(self, outage_run):
        sim, cp = outage_run
        assert cp["baseline_alerts"] == []
        probes = cp["baseline_probes"]
        # LB + API + N prometheis + every exporter target get probed
        assert len(probes) == len(sim.prober.targets) >= 7
        assert set(probes.values()) == {1.0}

    def test_probe_success_zero_for_dead_target(self, outage_run):
        _, cp = outage_run
        (el,) = cp["probe_after_kill"]
        assert el.value == 0.0

    def test_alert_goes_pending_then_firing_via_lb(self, outage_run):
        _, cp = outage_run
        (pending,) = cp["pending_alerts"]
        assert pending["state"] == "pending"
        assert pending["labels"]["instance"] == cp["instance"]
        (firing,) = cp["firing_alerts"]
        assert firing["state"] == "firing"
        assert firing["status"]["state"] == "active"

    def test_alerts_series_and_gauge_visible_in_tsdb(self, outage_run):
        _, cp = outage_run
        assert [el.value for el in cp["alerts_series"]] == [1.0]
        # the self-telemetry gauge is scraped like any other metric
        assert cp["firing_gauge"] and cp["firing_gauge"][0].value >= 1.0

    def test_exactly_one_grouped_notification(self, outage_run):
        _, cp = outage_run
        (notification,) = cp["firing_notifications"]
        assert notification["status"] == "firing"
        assert notification["groupLabels"] == {"alertname": "CEEMSTargetDown"}
        (alert,) = notification["alerts"]
        assert alert["labels"]["instance"] == cp["instance"]

    def test_repeat_evaluations_are_deduped(self, outage_run):
        _, cp = outage_run
        assert len(cp["deduped_notifications"]) == 1

    def test_silence_suppresses_alert_and_repeat(self, outage_run):
        _, cp = outage_run
        assert cp["silence_post_status"] == 200
        (silenced,) = cp["silenced_alerts"]
        assert silenced["status"]["state"] == "suppressed"
        assert silenced["status"]["silencedBy"]
        # the repeat_interval elapsed under the silence: still one send
        assert len(cp["silenced_notifications"]) == 1

    def test_recovery_resolves_and_notifies(self, outage_run):
        _, cp = outage_run
        assert cp["silence_delete_status"] == 200
        assert cp["recovered_alerts"] == []
        (el,) = cp["probe_after_recovery"]
        assert el.value == 1.0
        statuses = [n["status"] for n in cp["final_notifications"]]
        assert statuses == ["firing", "resolved"]
