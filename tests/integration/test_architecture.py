"""Integration tests: the full Fig. 1 architecture, end to end.

These tests exercise the assembled stack (the shared 2-hour
simulation) across component boundaries, plus one pass over real TCP
sockets to prove the components genuinely speak HTTP.
"""

import pytest

from repro.common.httpx import http_get, serve_threading
from repro.energy.rules_library import EMISSIONS_METRIC, POWER_METRIC


class TestPipelineConsistency:
    def test_every_running_job_has_power_series(self, small_sim):
        """Each running unit must have a recorded power estimate."""
        running = small_sim.slurm.active_units()
        result = small_sim.engine.query(POWER_METRIC, at=small_sim.now)
        estimated = {el.labels.get("uuid") for el in result.vector}
        for unit in running:
            if small_sim.now - (unit.started_at or small_sim.now) > 180:
                assert unit.uuid in estimated, unit.uuid

    def test_no_power_series_for_long_finished_jobs(self, small_sim):
        """Staleness: jobs finished >5 min ago have no live estimate."""
        result = small_sim.engine.query(POWER_METRIC, at=small_sim.now)
        estimated = {el.labels.get("uuid") for el in result.vector}
        for unit in small_sim.slurm.list_units(0, small_sim.now):
            if unit.ended_at is not None and small_sim.now - unit.ended_at > 360:
                assert unit.uuid not in estimated, unit.uuid

    def test_cluster_power_attribution_conserves_energy(self, small_sim):
        """Sum of unit power ≈ sum of node IPMI power (minus idle nodes)."""
        at = small_sim.now
        units = small_sim.engine.query(f"sum({POWER_METRIC})", at=at)
        nodes = small_sim.engine.query("sum(instance:ipmi_watts)", at=at)
        gpus_idle = sum(
            gpu.power_w
            for node in small_sim.nodes
            for i, gpu in enumerate(node.gpus)
            if not any(i in t.gpu_indices for t in node.tasks.values())
        )
        # Nodes with no jobs contribute IPMI power but no unit power,
        # so unit power must be below node power, but within the idle
        # floor of the deployment.
        assert units.vector[0].value < nodes.vector[0].value
        idle_floor = sum(
            n.power_model.platform.floor_w
            + n.power_model.sockets * (n.power_model.cpu.idle_w + n.power_model.dram.idle_w)
            for n in small_sim.nodes
            if not n.tasks
        )
        assert units.vector[0].value + idle_floor + gpus_idle >= 0.5 * nodes.vector[0].value

    def test_db_energy_matches_tsdb_integral(self, small_sim):
        """The API server's accumulated energy tracks the TSDB series."""
        rows = small_sim.db.list_units(state="completed", limit=200)
        checked = 0
        for row in rows:
            if row["elapsed"] < 900 or row["energy_joules"] <= 0:
                continue
            integral = small_sim.estimator.unit_energy_joules(
                row["uuid"], row["started_at"], row["ended_at"] + 60
            )
            if integral <= 0:
                continue  # series already beyond hot retention
            assert row["energy_joules"] == pytest.approx(integral, rel=0.35), row["uuid"]
            checked += 1
        assert checked >= 1

    def test_emissions_follow_power(self, small_sim):
        at = small_sim.now
        power = small_sim.engine.query(POWER_METRIC, at=at).by_labels()
        emissions = small_sim.engine.query(EMISSIONS_METRIC, at=at).by_labels()
        factor = small_sim.emission_registry.factor("FR", at).value
        for labels, co2_rate in emissions.items():
            matching_power = power.get(labels)
            if matching_power:
                assert co2_rate == pytest.approx(matching_power * factor / 3.6e6, rel=0.3)

    def test_thanos_holds_history(self, small_sim):
        assert small_sim.object_store.tsdb("raw").num_samples > 0
        assert len(small_sim.object_store.blocks) >= 1

    def test_updater_ran_and_synced(self, small_sim):
        assert small_sim.updater.stats.passes >= 2
        assert small_sim.db.count_units() == small_sim.slurm.jobs_submitted

    def test_backup_taken(self, small_sim):
        assert small_sim.litestream.generations
        restored = small_sim.litestream.restore()
        assert restored.count_units() > 0

    def test_scrape_health_all_up(self, small_sim):
        assert small_sim.scrape_manager.healthy_targets() == len(small_sim.scrape_manager.targets)

    def test_rule_groups_healthy(self, small_sim):
        for group in small_sim.rule_manager.groups:
            assert group.evaluations > 100
            assert group.last_error == "", group.name


class TestAccessControlEndToEnd:
    def test_user_isolation_matrix(self, small_sim):
        """Every user can read own units, no one else's."""
        units = small_sim.db.list_units(limit=500)
        by_user: dict[str, list[str]] = {}
        for row in units:
            by_user.setdefault(row["user"], []).append(row["uuid"])
        users = list(by_user)[:3]
        for user in users:
            prom = small_sim.prometheus_datasource(user)
            own = by_user[user][0]
            prom.query(f'{POWER_METRIC}{{uuid="{own}"}}', small_sim.now)  # no raise
            for other in users:
                if other == user:
                    continue
                foreign = by_user[other][0]
                from repro.common.errors import AuthError

                with pytest.raises(AuthError):
                    prom.query(f'{POWER_METRIC}{{uuid="{foreign}"}}', small_sim.now)


class TestRealSockets:
    def test_prom_api_and_api_server_over_tcp(self, small_sim):
        """Both HTTP services answer over real sockets."""
        prom_server = serve_threading(small_sim.prom_apis[0].app)
        api_server = serve_threading(small_sim.api_server.app)
        try:
            status, body = http_get(
                f"{prom_server.url}/api/v1/query?query=sum(up)&time={small_sim.now}"
            )
            assert status == 200 and b"success" in body
            status, body = http_get(
                f"{api_server.url}/api/v1/clusters", headers={"X-Grafana-User": "admin"}
            )
            assert status == 200 and b"sim-cluster" in body
        finally:
            prom_server.close()
            api_server.close()

    def test_lb_access_control_over_tcp(self, small_sim):
        lb_server = serve_threading(small_sim.lb.app)
        try:
            import urllib.parse

            row = small_sim.db.list_units(limit=1)[0]
            query = urllib.parse.quote(f'{POWER_METRIC}{{uuid="{row["uuid"]}"}}')
            url = f"{lb_server.url}/api/v1/query?query={query}&time={small_sim.now}"
            status, _ = http_get(url, headers={"X-Grafana-User": row["user"]})
            assert status == 200
            status, _ = http_get(url, headers={"X-Grafana-User": "intruder"})
            assert status == 403
            status, _ = http_get(url)
            assert status == 401
        finally:
            lb_server.close()
