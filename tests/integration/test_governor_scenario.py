"""The carbon-aware control plane end to end.

One scripted run through a high-carbon evening into the low-carbon
night: the governor must defer every deferrable submission while the
RTE intensity sits above threshold, write carbon caps that visibly
clamp package power, release the parked jobs when the window clears,
and report a positive avoided-emissions figure — all while its 10 Hz
accumulator tracks ground-truth energy to well under 0.1% and its
``ceems_governor_*`` families ride the ordinary scrape pipeline into
the queryable TSDB.
"""

import pytest

from repro.cluster import StackSimulation, small_topology
from repro.cluster.simulation import SimulationConfig
from repro.common.clock import SimClock
from repro.resourcemgr.workload import SizeClass, WorkloadMix

#: 17:00 on the seeded start day: the RTE evening demand peak holds
#: the FR intensity near ~85 g/kWh until ~21:00, dropping to ~64 by
#: 23:00 — one 6 h run crosses a full high→low transition.
EVENING = SimClock.DEFAULT_START + 17 * 3600.0

MIX = WorkloadMix(
    mean_interarrival=600.0,
    duration_mu=7.0,
    deferrable_fraction=0.6,
    sizes=(SizeClass("s", weight=1.0, ncores=8, memory_gb=16),),
)


@pytest.fixture(scope="module")
def governed_run():
    sim = StackSimulation(
        small_topology(cpu_nodes=2, gpu_nodes=0),
        SimulationConfig(
            seed=9,
            start_time=EVENING,
            governor=True,
            # 0.5 s polls keep the run fast; still ~30 polls per node
            # step, far inside the single-wrap regime.
            governor_poll_interval=0.5,
            governor_interval=60.0,
            carbon_policy="threshold",
            carbon_threshold=75.0,
            carbon_cap_w=90.0,
            with_emissions_providers=("rte",),
            meta_monitoring=False,
            probe_interval=0.0,
        ),
        workload=MIX,
    )
    sim.run(6 * 3600.0)
    return sim


class TestGovernorScenario:
    def test_high_window_defers_then_low_window_releases(self, governed_run):
        sim = governed_run
        gov = sim.governor
        assert gov is not None
        assert gov.jobs_deferred_total > 0
        assert gov.jobs_released_total > 0
        # By the end of the night every parked job has been released.
        assert not gov.high_carbon
        assert sim.slurm.deferred_count == 0

    def test_carbon_caps_written_and_enforced(self, governed_run):
        sim = governed_run
        gov = sim.governor
        assert gov.cap_writes_total > 0
        # The cap visibly clamped package power during the high window.
        assert any(node.cap_throttled_seconds > 0.0 for node in sim.nodes)
        # The window cleared, so the caps are released again.
        assert all(w == 0.0 for w in gov._written_w.values())

    def test_positive_avoided_emissions(self, governed_run):
        gov = governed_run.governor
        assert gov.co2e_avoided_g > 0.0

    def test_accumulator_tracks_ground_truth(self, governed_run):
        sim = governed_run
        for name, acc in sim.governor.accumulators.items():
            node = acc.node
            truth = sum(
                pkg.package.total_energy_joules
                + (pkg.dram.total_energy_joules if pkg.dram is not None else 0.0)
                for pkg in node.rapl
            )
            assert acc.wraps > 0, f"{name} never crossed a wrap"
            assert acc.joules == pytest.approx(truth, rel=1e-3)
            # The fold is in fact exact to counter quantisation.
            assert abs(acc.joules - truth) < 1e-2

    def test_governor_metrics_flow_through_the_scrape_pipeline(self, governed_run):
        sim = governed_run
        power = sim.engine.query("ceems_governor_power_watts", at=sim.now)
        assert len(power.vector) == 2  # one series per node
        assert all(el.value > 0 for el in power.vector)

        avoided = sim.engine.query(
            "ceems_governor_co2e_avoided_grams_total", at=sim.now
        )
        assert avoided.vector and avoided.vector[0].value > 0

        deferred = sim.engine.query(
            "ceems_governor_jobs_deferred_total", at=sim.now
        )
        assert deferred.vector and deferred.vector[0].value > 0

        energy = sim.engine.query(
            'sum(ceems_governor_accumulated_joules_total{domain="package"})',
            at=sim.now,
        )
        assert energy.vector and energy.vector[0].value > 1e5

    def test_exporter_serves_accumulator_energy(self, governed_run):
        sim = governed_run
        # The exporter's RAPL family now carries aliasing-free values:
        # summed over sockets it must match the accumulator's package
        # total, despite the raw counters having wrapped.
        for name, acc in sim.governor.accumulators.items():
            served = sim.engine.query(
                f'sum(ceems_rapl_package_joules_total{{hostname="{name}"}})',
                at=sim.now,
            )
            expected = sum(
                d.joules for d in acc.domains if d.domain == "package"
            )
            assert served.vector
            # The scrape lags the freshest accumulator state by up to
            # one interval; compare loosely.
            assert served.vector[0].value == pytest.approx(expected, rel=0.01)

    def test_cli_stats_expose_the_control_loop(self, governed_run):
        stats = governed_run.stats()
        assert stats["governor_polls"] > 0
        assert stats["governor_cap_writes"] > 0
        assert stats["jobs_deferred"] > 0
        assert stats["jobs_released"] > 0
        assert stats["co2e_avoided_g"] > 0
