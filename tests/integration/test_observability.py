"""Integration tests: the stack observes itself.

Meta-monitoring (the sim Prometheus scrapes the LB, the API server
and its own query endpoints) and trace propagation across component
boundaries — both through the in-process HTTP model and over a real
TCP socket.
"""

import math

import pytest

from repro.cluster import StackSimulation, small_topology
from repro.cluster.simulation import SimulationConfig
from repro.common.httpx import Request, http_get, serve_threading
from repro.lb.authz import Authorizer
from repro.lb.server import LoadBalancer
from repro.lb.strategies import Backend
from repro.obs import Telemetry
from repro.resourcemgr.workload import SizeClass, WorkloadMix
from repro.tsdb.http import PromAPI
from repro.tsdb.model import Labels
from repro.tsdb.storage import TSDB

OBS_MIX = WorkloadMix(
    mean_interarrival=200.0,
    duration_mu=6.9,
    sizes=(
        SizeClass("small", weight=0.7, ncores=4, memory_gb=8),
        SizeClass("gpu", weight=0.3, ncores=8, ngpus=1, memory_gb=64, partition="gpu"),
    ),
)

ADMIN = {"x-grafana-user": "admin"}


@pytest.fixture(scope="module")
def obs_sim() -> StackSimulation:
    """A short deployment run, then user traffic, then more scrapes.

    Module scoped and deliberately separate from ``small_sim``: these
    tests send requests through the LB, which mutates its telemetry.
    """
    sim = StackSimulation(
        small_topology(cpu_nodes=2, gpu_nodes=1),
        SimulationConfig(seed=7, update_interval=600.0),
        workload=OBS_MIX,
    )
    sim.run(1800.0)
    for _ in range(4):
        resp = sim.lb.app.handle(
            Request.from_url("GET", f"/api/v1/query?query=up&time={sim.now}", headers=ADMIN)
        )
        assert resp.status == 200
    # Let the next scrape cycles capture the counters that traffic bumped.
    sim.run(60.0)
    return sim


class TestMetaMonitoring:
    def test_meta_targets_are_up(self, obs_sim):
        for job in ("ceems-lb", "ceems-api", "prometheus"):
            result = obs_sim.engine.query(f'up{{job="{job}"}}', at=obs_sim.now)
            assert result.vector, job
            assert all(el.value == 1.0 for el in result.vector), job

    def test_lb_latency_histogram_single_query(self, obs_sim):
        """One PromQL query answers "what is the p99 LB latency"."""
        result = obs_sim.engine.query(
            'histogram_quantile(0.99, ceems_http_request_duration_seconds_bucket{job="ceems-lb"})',
            at=obs_sim.now,
        )
        assert result.vector
        handlers = {el.labels.get("handler") for el in result.vector}
        assert "/metrics" in handlers  # the scrape loop's own requests
        assert "/api/v1/query" in handlers  # the traffic driven above
        for el in result.vector:
            assert math.isfinite(el.value) and el.value >= 0.0

    def test_cache_hit_ratio_single_query(self, obs_sim):
        """The columnar-evaluator selector cache ratio, one expression."""
        expr = (
            "ceems_tsdb_select_cache_hits_total"
            " / (ceems_tsdb_select_cache_hits_total + ceems_tsdb_select_cache_misses_total)"
        )
        result = obs_sim.engine.query(expr, at=obs_sim.now)
        assert result.vector
        for el in result.vector:
            assert 0.0 <= el.value <= 1.0
        # The rule manager re-evaluates identical selectors every
        # interval, so the memo must actually be earning its keep.
        assert max(el.value for el in result.vector) > 0.0

    def test_eval_strategy_timings_scraped(self, obs_sim):
        result = obs_sim.engine.query(
            'ceems_promql_eval_queries_total{job="prometheus"}', at=obs_sim.now
        )
        strategies = {el.labels.get("strategy") for el in result.vector}
        assert "per_step" in strategies or "columnar" in strategies

    def test_scrape_loop_counters_scraped(self, obs_sim):
        result = obs_sim.engine.query(
            'ceems_scrape_samples_appended_total{job="prometheus"}', at=obs_sim.now
        )
        assert result.vector
        assert max(el.value for el in result.vector) > 0.0


class TestTracePropagationInProcess:
    def test_one_trace_spans_lb_to_storage(self, obs_sim):
        trace_id = "ab" * 16
        header = f"00-{trace_id}-{'cd' * 8}-01"
        resp = obs_sim.lb.app.handle(
            Request.from_url(
                "GET",
                f"/api/v1/query?query=up&time={obs_sim.now}",
                headers={**ADMIN, "traceparent": header},
            )
        )
        assert resp.status == 200
        assert resp.headers["x-trace-id"] == trace_id

        lb_spans = obs_sim.lb.app.telemetry.spans.for_trace(trace_id)
        assert lb_spans and lb_spans[0].parent_id == "cd" * 8
        backend_spans = [
            s for api in obs_sim.prom_apis for s in api.app.telemetry.spans.for_trace(trace_id)
        ]
        # The backend hop is parented on the LB's span, not the caller's.
        assert any(s.parent_id == lb_spans[0].span_id for s in backend_spans)
        assert obs_sim.fanout.telemetry.spans.for_trace(trace_id)
        storage_spans = obs_sim.hot_tsdb.telemetry.spans.for_trace(trace_id)
        assert any(s.name == "tsdb.select" for s in storage_spans)


class TestTracePropagationThreaded:
    def test_trace_id_crosses_real_socket(self):
        """The same trace id survives client → LB over TCP → TSDB."""

        class AllowAll(Authorizer):
            def _check(self, user, uuids):
                return True

        db = TSDB(name="threaded")
        db.telemetry = Telemetry("tsdb-threaded")
        db.append(Labels({"__name__": "up", "instance": "n1"}), 0.0, 1.0)
        api = PromAPI(db, name="prom-threaded")
        lb = LoadBalancer([Backend(name="prom-threaded", app=api.app)], AllowAll())

        trace_id = "f0" * 16
        header = f"00-{trace_id}-{'0d' * 8}-01"
        server = serve_threading(lb.app)
        try:
            status, body = http_get(
                server.url + "/api/v1/query?query=up&time=0",
                headers={"X-Grafana-User": "admin", "Traceparent": header},
            )
        finally:
            server.close()
        assert status == 200
        assert b'"status": "success"' in body

        lb_spans = lb.app.telemetry.spans.for_trace(trace_id)
        assert lb_spans
        backend_spans = api.app.telemetry.spans.for_trace(trace_id)
        assert any(s.parent_id == lb_spans[0].span_id for s in backend_spans)
        assert db.telemetry.spans.for_trace(trace_id)


class TestSlowQueryEndToEnd:
    def test_slow_query_carries_resolvable_trace(self, obs_sim):
        """LB → API backend → TSDB eval is one trace, and the backend's
        slow-query entry carries that trace id — the operator's "why was
        this dashboard panel slow" loop is two lookups."""
        saved = [api.slow_log.threshold_ms for api in obs_sim.prom_apis]
        for api in obs_sim.prom_apis:
            api.slow_log.threshold_ms = 0.0  # every query counts as slow
        trace_id = "5a" * 16
        header = f"00-{trace_id}-{'1b' * 8}-01"
        url = (
            "/api/v1/query_range?query=rate(ceems_scrape_samples_appended_total[10m])"
            f"&start={obs_sim.now - 1800.0}&end={obs_sim.now}&step=60&stats=all"
        )
        try:
            resp = obs_sim.lb.app.handle(
                Request.from_url("GET", url, headers={**ADMIN, "traceparent": header})
            )
        finally:
            for api, threshold in zip(obs_sim.prom_apis, saved):
                api.slow_log.threshold_ms = threshold
        assert resp.status == 200
        assert resp.headers["x-trace-id"] == trace_id
        payload = resp.decode_json()
        assert payload["data"]["stats"]["samples"]["samplesTouched"] > 0

        backend = next(
            api for api in obs_sim.prom_apis if api.app.name == resp.headers["x-ceems-backend"]
        )
        entry = next(e for e in backend.slow_log.entries() if e["trace_id"] == trace_id)
        assert entry["endpoint"] == "/api/v1/query_range"
        assert entry["stats"]["samples"]["samplesTouched"] > 0

        # The entry's trace id resolves on the backend's own /debug/traces,
        # with the eval-phase spans carrying the per-query stats.
        data = backend.app.get(f"/debug/traces?trace_id={trace_id}").decode_json()
        names = {s["name"] for s in data["spans"]}
        assert {"promql.parse", "promql.eval"} <= names
        eval_span = next(s for s in data["spans"] if s["name"] == "promql.eval")
        assert eval_span["attrs"]["stats"]["samples"]["samplesTouched"] > 0
        assert eval_span["attrs"]["stats"]["timings"]["evalSeconds"] >= 0.0
        # The LB's spans share the trace: one request, one trace end-to-end.
        assert obs_sim.lb.app.telemetry.spans.for_trace(trace_id)


class TestPeriodicSpans:
    def test_updater_passes_are_traced(self, obs_sim):
        names = {s.name for s in obs_sim.api_server.app.telemetry.spans.spans()}
        assert "updater.pass" in names

    def test_scrape_cycles_are_traced(self, obs_sim):
        spans = obs_sim.scrape_manager.telemetry.spans.spans()
        cycle = [s for s in spans if s.name == "scrape.cycle"]
        assert cycle
        assert cycle[-1].attrs["samples"] > 0
