"""Integration tests."""
