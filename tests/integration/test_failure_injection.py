"""Failure injection: the stack under partial outages.

Monitoring exists for bad days; these tests break one component at a
time mid-run and assert the degradation the design promises: failed
scrapes surface as ``up == 0`` and alerts, dead sensors degrade to
missing series (not wrong numbers), emission-provider outages fall
back to the static table, unhealthy LB backends stop receiving
traffic, and a crashed API server restores from the continuous
backup with its authorization data intact.
"""

import pytest

from repro.cluster import StackSimulation, small_topology
from repro.cluster.simulation import SimulationConfig
from repro.common.httpx import Response
from repro.energy.rules_library import POWER_METRIC
from repro.lb import Backend, DBAuthorizer, LoadBalancer
from repro.resourcemgr.workload import SizeClass, WorkloadMix
from repro.tsdb.alerts import AlertManager, ceems_alert_rules
from repro.tsdb.model import Matcher

MIX = WorkloadMix(
    mean_interarrival=200.0,
    sizes=(SizeClass("s", weight=1.0, ncores=4, memory_gb=8),),
)


def make_sim(**overrides) -> StackSimulation:
    config = SimulationConfig(seed=13, update_interval=600.0, **overrides)
    return StackSimulation(small_topology(cpu_nodes=2, gpu_nodes=0), config, workload=MIX)


class TestExporterOutage:
    def test_down_target_up_zero_and_alert(self):
        sim = make_sim()
        alerts = AlertManager(sim.engine, interval=60.0)
        for rule in ceems_alert_rules():
            alerts.add_rule(rule)
        alerts.register_timer(sim.clock)
        sim.run(1200.0)
        assert "CEEMSTargetDown" not in alerts.firing()

        # break node 0's exporter: every request now 500s
        victim = sim.exporters[0]
        original = victim.app.router.dispatch
        victim.app.router.dispatch = lambda req: Response.error(500, "exporter crashed")
        sim.run(600.0)

        up = sim.engine.query('up{job="ceems"}', at=sim.now).vector
        by_instance = {el.labels.get("instance"): el.value for el in up}
        assert by_instance[f"{victim.node.spec.name}:9010"] == 0.0
        assert sum(v for v in by_instance.values()) == len(by_instance) - 1
        assert alerts.firing().get("CEEMSTargetDown") == 1

        # recovery clears the alert
        victim.app.router.dispatch = original
        sim.run(600.0)
        assert "CEEMSTargetDown" not in alerts.firing()

    def test_other_nodes_keep_reporting_power(self):
        sim = make_sim()
        sim.run(1200.0)
        victim = sim.exporters[0]
        victim.app.router.dispatch = lambda req: Response.error(500, "dead")
        sim.run(600.0)
        healthy_host = sim.exporters[1].node.spec.name
        result = sim.engine.query(
            f'ceems:node:power_watts{{hostname="{healthy_host}"}}', at=sim.now
        )
        assert result.vector and result.vector[0].value > 0


class TestSensorFailure:
    def test_dead_bmc_degrades_to_missing_power(self):
        """A dead BMC must yield *no* estimates, never stale/wrong ones."""
        sim = make_sim()
        sim.run(1200.0)
        node = sim.nodes[0]
        host = node.spec.name
        had_power = sim.engine.query(
            f'instance:ipmi_watts{{hostname="{host}"}}', at=sim.now
        )
        assert had_power.vector

        # kill the BMC: reads report inactive from now on
        node.ipmi.reset_statistics()
        node.ipmi.observe = lambda now, total, gpu: None  # type: ignore[assignment]
        node.ipmi._window_count = 0
        sim.run(600.0)

        after = sim.engine.query(f'instance:ipmi_watts{{hostname="{host}"}}', at=sim.now)
        assert after.vector == []
        power = sim.engine.query(POWER_METRIC, at=sim.now)
        assert all(el.labels.get("hostname") != host for el in power.vector)

    def test_broken_collector_reports_success_zero(self):
        sim = make_sim(with_workload=False)
        exporter = sim.exporters[0]
        rapl = next(c for c in exporter.registry._collectors if c.name == "rapl")
        rapl.collect = lambda now: (_ for _ in ()).throw(RuntimeError("msr gone"))  # type: ignore[assignment]
        sim.run(300.0)
        result = sim.engine.query(
            f'ceems_exporter_collector_success{{collector="rapl", '
            f'hostname="{exporter.node.spec.name}"}}',
            at=sim.now,
        )
        assert result.vector[0].value == 0.0
        # scrape overall still succeeds
        up = sim.engine.query(
            f'up{{instance="{exporter.node.spec.name}:9010"}}', at=sim.now
        )
        assert up.vector[0].value == 1.0


class TestProviderOutage:
    def test_emissions_fall_back_mid_run(self):
        sim = make_sim(with_workload=False)
        sim.run(600.0)
        resolved = sim.engine.query(
            'ceems_emissions_gCo2_kWh{provider="resolved"}', at=sim.now
        )
        rte = sim.engine.query('ceems_emissions_gCo2_kWh{provider="rte"}', at=sim.now)
        assert resolved.vector[0].value == rte.vector[0].value

        # RTE API goes dark
        for provider in sim.emission_registry.providers:
            if provider.name == "rte":
                provider.available = False
        sim.run(600.0)
        resolved = sim.engine.query(
            'ceems_emissions_gCo2_kWh{provider="resolved"}', at=sim.now
        )
        em = sim.engine.query(
            'ceems_emissions_gCo2_kWh{provider="electricity_maps"}', at=sim.now
        )
        assert resolved.vector[0].value == em.vector[0].value  # next in chain
        rte_series = sim.engine.query('ceems_emissions_gCo2_kWh{provider="rte"}', at=sim.now)
        assert rte_series.vector == []  # stale-marked away


class TestLBBackendFailure:
    def test_unhealthy_backend_stops_receiving(self, small_sim):
        backends = [Backend(f"b{i}", small_sim.prom_apis[i % 2].app) for i in range(3)]
        lb = LoadBalancer(backends, DBAuthorizer(small_sim.db))
        row = small_sim.db.list_units(limit=1)[0]
        import urllib.parse

        selector = POWER_METRIC + '{uuid="' + row["uuid"] + '"}'
        url = f"/api/v1/query?query={urllib.parse.quote(selector)}&time={small_sim.now}"
        headers = {"x-grafana-user": row["user"]}
        backends[1].healthy = False
        seen = {lb.app.get(url, headers=headers).headers["x-ceems-backend"] for _ in range(6)}
        assert seen == {"b0", "b2"}


class TestAPIServerCrashRecovery:
    def test_restore_from_litestream_preserves_authz(self):
        sim = make_sim()
        sim.run(2400.0)
        assert sim.litestream.generations
        row = sim.db.list_units(limit=1)[0]

        # "crash": rebuild the authorizer against a restored DB
        restored = sim.litestream.restore()
        assert restored.integrity_check()
        authz = DBAuthorizer(restored)
        assert authz.allowed(row["user"], {row["uuid"]}, unbounded=False)
        assert not authz.allowed("intruder", {row["uuid"]}, unbounded=False)
        assert restored.count_units() == sim.db.count_units()


class TestCleanupUnderChurn:
    def test_cleanup_in_live_stack(self):
        """Cleanup wired into the updater removes short jobs' series."""
        mix = WorkloadMix(
            mean_interarrival=120.0,
            duration_mu=4.5,  # median ~90 s: most jobs are short
            duration_sigma=0.8,
            sizes=(SizeClass("s", weight=1.0, ncores=2, memory_gb=4),),
        )
        sim = StackSimulation(
            small_topology(cpu_nodes=2, gpu_nodes=0),
            SimulationConfig(seed=3, update_interval=600.0, cleanup_cutoff=300.0),
            workload=mix,
        )
        sim.run(2 * 3600.0)
        stats = sim.cleaner.stats
        assert stats.units_cleaned > 0
        # cleaned units have no series left in the hot TSDB
        for uuid in list(stats.cleaned_uuids)[:5]:
            assert sim.hot_tsdb.select([Matcher.eq("uuid", uuid)]) == []
        # but remain accounted in SQLite
        some_uuid = next(iter(stats.cleaned_uuids))
        assert sim.db.get_unit(sim.config.cluster_name, some_uuid) is not None


class TestNodeCrashInStack:
    def test_node_crash_end_to_end(self):
        """A node dies: its jobs fail in accounting, its series go
        stale, the target-down alert fires, and the Fig. 2b job list
        shows the failed state."""
        sim = make_sim()
        alerts = AlertManager(sim.engine, interval=60.0)
        for rule in ceems_alert_rules():
            alerts.add_rule(rule)
        alerts.register_timer(sim.clock)
        sim.run(1800.0)
        running = sim.slurm.active_units()
        if not running:
            pytest.skip("no running jobs at crash time for this seed")
        victim_host = running[0].nodelist[0]
        victim_node = next(n for n in sim.nodes if n.spec.name == victim_host)
        victim_exporter = next(e for e in sim.exporters if e.node is victim_node)

        failed_ids = sim.slurm.fail_node(victim_host, sim.now)
        victim_exporter.app.router.dispatch = lambda req: Response.error(500, "node crashed")
        sim.run(900.0)

        # accounting: the jobs are FAILED with exit code 1
        for uuid in failed_ids:
            row = sim.db.get_unit(sim.config.cluster_name, uuid)
            assert row["state"] == "failed"
            assert row["exit_code"] == 1
        # monitoring: the node's unit power series are gone
        power = sim.engine.query(POWER_METRIC, at=sim.now)
        assert all(el.labels.get("hostname") != victim_host for el in power.vector)
        # alerting: target down fired
        assert alerts.firing().get("CEEMSTargetDown") == 1
        # scheduling: the dead node takes no new jobs
        assert victim_host in sim.slurm.down_nodes
        sim.run(600.0)
        assert not victim_node.tasks
