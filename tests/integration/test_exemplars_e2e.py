"""Integration: trace↔metric correlation end to end.

Drive real traffic through the LB, let the sim's meta-monitoring
scrape the LB's own latency histogram (whose buckets now carry
exemplars), then drill down: query_exemplars through the LB →
trace_id → /debug/traces resolves the originating span.
"""

import json

import pytest

from repro.cluster import StackSimulation, small_topology
from repro.cluster.simulation import SimulationConfig
from repro.common.httpx import Request
from repro.resourcemgr.workload import SizeClass, WorkloadMix

ADMIN = {"x-grafana-user": "admin"}

E2E_MIX = WorkloadMix(
    mean_interarrival=200.0,
    duration_mu=6.9,
    sizes=(
        SizeClass("small", weight=0.7, ncores=4, memory_gb=8),
        SizeClass("gpu", weight=0.3, ncores=8, ngpus=1, memory_gb=64, partition="gpu"),
    ),
)


@pytest.fixture(scope="module")
def exemplar_sim() -> StackSimulation:
    """Run with an aggressive tail sampler: every span counts as slow,
    so every request leaves a span for its exemplar to resolve to."""
    sim = StackSimulation(
        small_topology(cpu_nodes=2, gpu_nodes=1),
        SimulationConfig(
            seed=7,
            update_interval=600.0,
            trace_sample_rate=0.0,
            trace_keep_slow_ms=0.001,
        ),
        workload=E2E_MIX,
    )
    sim.run(1800.0)
    for _ in range(4):
        resp = sim.lb.app.handle(
            Request.from_url(
                "GET", f"/api/v1/query?query=up&time={sim.now}", headers=ADMIN
            )
        )
        assert resp.status == 200
    # Let the next scrape cycles pick up the exemplars those requests minted.
    sim.run(60.0)
    return sim


def _lb_get(sim, url):
    resp = sim.lb.app.handle(Request.from_url("GET", url, headers=ADMIN))
    assert resp.status == 200, resp.body
    return json.loads(resp.body)


class TestExemplarDrilldown:
    def test_slow_request_resolves_to_trace(self, exemplar_sim):
        sim = exemplar_sim
        body = _lb_get(
            sim,
            "/api/v1/query_exemplars?query="
            'ceems_http_request_duration_seconds_bucket{job="ceems-lb"}'
            f"&start=0&end={sim.now + 1}",
        )
        assert body["status"] == "success"
        assert body["data"], "no exemplar series for the LB latency histogram"
        series = body["data"][0]
        assert series["seriesLabels"]["__name__"] == (
            "ceems_http_request_duration_seconds_bucket"
        )
        exemplar = series["exemplars"][-1]
        trace_id = exemplar["labels"]["trace_id"]
        assert len(trace_id) == 32
        float(exemplar["value"])  # stringly-typed, Prometheus style

        # The Grafana data-link target: the trace resolves on the LB.
        traces = _lb_get(sim, f"/debug/traces?trace_id={trace_id}")
        assert traces["spans"], f"trace {trace_id} not found in span store"
        assert all(s["trace_id"] == trace_id for s in traces["spans"])

    def test_exemplars_stored_for_lb_histogram_only_when_scraped(self, exemplar_sim):
        stored = exemplar_sim.hot_tsdb.exemplars
        assert len(stored) > 0
        assert stored.appended_total > 0

    def test_self_telemetry_series_exist(self, exemplar_sim):
        sim = exemplar_sim
        for metric in (
            "ceems_exemplars_appended_total",
            "ceems_exemplar_storage_exemplars",
            "ceems_trace_sampler_kept_total",
        ):
            body = _lb_get(
                sim, f"/api/v1/query?query={metric}&time={sim.now}"
            )
            assert body["data"]["result"], f"{metric} missing from hot TSDB"

    def test_sampler_saw_traffic(self, exemplar_sim):
        sampler = exemplar_sim.tail_sampler
        assert sampler.kept_total > 0
        # rate=0 but keep_slow_ms=0.001: everything qualifies as slow.
        assert sampler.dropped_total == 0

    def test_status_endpoints_through_lb(self, exemplar_sim):
        sim = exemplar_sim
        build = _lb_get(sim, "/api/v1/status/buildinfo")
        assert build["data"]["features"]["exemplar-storage"] == "true"
        runtime = _lb_get(sim, "/api/v1/status/runtimeinfo")
        assert runtime["data"]["timeSeriesCount"] > 0
        assert runtime["data"]["exemplarCount"] == len(sim.hot_tsdb.exemplars)


class TestSamplingModes:
    def test_zero_rate_high_threshold_drops_fast_spans(self):
        sim = StackSimulation(
            small_topology(cpu_nodes=1, gpu_nodes=1),
            SimulationConfig(
                seed=3,
                update_interval=600.0,
                trace_sample_rate=0.0,
                trace_keep_slow_ms=1e9,
            ),
            workload=E2E_MIX,
        )
        sim.run(900.0)
        assert sim.tail_sampler.dropped_total > 0
        # Dropped spans never enter any store.
        total_stored = sum(
            len(t.spans) for t in sim._all_telemetry()
        )
        assert total_stored < sim.tail_sampler.kept_total + sim.tail_sampler.dropped_total
