"""Integration: resource-manager agnosticism (the paper's title claim).

One API server syncs units from SLURM, OpenStack and Kubernetes
simultaneously; one exporter format serves all three; the LB
authorizes uniformly across manager kinds.
"""

import pytest

from repro.apiserver.api import APIServer
from repro.apiserver.db import Database
from repro.apiserver.updater import Updater
from repro.common.clock import SimClock
from repro.common.config import ExporterConfig
from repro.energy.estimator import UnitEnergyEstimator
from repro.energy.rules_library import NodeGroup, rules_for_group
from repro.exporter import CEEMSExporter
from repro.hwsim import NodeSpec, SimulatedNode, UsageProfile
from repro.lb import Backend, DBAuthorizer, LoadBalancer
from repro.resourcemgr import (
    KubernetesCluster,
    OpenStackCluster,
    PodSpec,
    ServerSpec,
    SlurmCluster,
    JobSpec,
)
from repro.tsdb import ScrapeConfig, ScrapeManager, ScrapeTarget, TSDB
from repro.tsdb.http import PromAPI
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.rules import RuleManager


@pytest.fixture(scope="module")
def multi_rm():
    clock = SimClock(start=0.0)
    slurm_nodes = [SimulatedNode(NodeSpec(name="hpc0"), seed=1)]
    os_nodes = [SimulatedNode(NodeSpec(name="cloud0"), seed=2)]
    k8s_nodes = [SimulatedNode(NodeSpec(name="kube0"), seed=3)]
    all_nodes = slurm_nodes + os_nodes + k8s_nodes

    slurm = SlurmCluster("hpc", {"cpu": slurm_nodes})
    openstack = OpenStackCluster("cloud", os_nodes)
    kube = KubernetesCluster("kube", k8s_nodes)

    db = TSDB()
    scrapes = ScrapeManager(db, ScrapeConfig(interval=15.0))
    for node in all_nodes:
        exporter = CEEMSExporter(node, clock, ExporterConfig())
        scrapes.add_target(
            ScrapeTarget(
                app=exporter.app,
                instance=f"{node.spec.name}:9010",
                job="ceems",
                group_labels={"hostname": node.spec.name, "nodegroup": "intel-cpu"},
            )
        )
    rules = RuleManager(db)
    rules.add_group(rules_for_group(NodeGroup("intel-cpu", True, False, True), 30.0))

    clock.every(15.0, lambda now: [n.advance(now, 15.0) for n in all_nodes])
    scrapes.register_timer(clock)
    rules.register_timers(clock)
    clock.every(30.0, slurm.step)
    clock.every(30.0, kube.step)

    # Workloads on all three managers.
    slurm.submit(
        JobSpec(user="alice", account="proj", ncores=8, memory_bytes=8 * 2**30, walltime=7200, duration=3600, profile=UsageProfile.constant(0.8, 0.4)),
        now=0.0,
    )
    vm = openstack.create_server(ServerSpec(user="bob", project="tenant"), now=0.0)
    pod = kube.create_pod(PodSpec(user="carol", namespace="ml", cpus=4, duration=None), now=0.0)

    clock.advance(1800.0)

    sqlite = Database()
    estimator = UnitEnergyEstimator(PromQLEngine(db))
    updater = Updater(sqlite, estimator, [slurm, openstack, kube], interval=900.0)
    updater.run_once(now=clock.now())
    return {
        "clock": clock,
        "tsdb": db,
        "sqlite": sqlite,
        "slurm": slurm,
        "openstack": openstack,
        "kube": kube,
        "vm": vm,
        "pod": pod,
        "engine": PromQLEngine(db),
    }


class TestUnifiedSchema:
    def test_all_managers_in_one_table(self, multi_rm):
        db = multi_rm["sqlite"]
        managers = {row["manager"] for row in db.list_units()}
        assert managers == {"slurm", "openstack", "k8s"}
        assert set(db.clusters()) == {"hpc", "cloud", "kube"}

    def test_projects_map_across_managers(self, multi_rm):
        db = multi_rm["sqlite"]
        projects = {row["manager"]: row["project"] for row in db.list_units()}
        assert projects["slurm"] == "proj"
        assert projects["openstack"] == "tenant"
        assert projects["k8s"] == "ml"

    def test_power_estimated_for_all_kinds(self, multi_rm):
        result = multi_rm["engine"].query(
            "ceems:compute_unit:power_watts", at=multi_rm["clock"].now()
        )
        managers = {el.labels.get("manager") for el in result.vector}
        assert managers == {"slurm", "libvirt", "k8s"}

    def test_energy_accumulated_for_all_kinds(self, multi_rm):
        db = multi_rm["sqlite"]
        for row in db.list_units():
            assert row["energy_joules"] > 0, row["manager"]

    def test_unit_metrics_have_manager_label(self, multi_rm):
        result = multi_rm["engine"].query(
            "ceems_compute_unit_cpu_user_seconds_total", at=multi_rm["clock"].now()
        )
        assert len(result.vector) == 3
        managers = {el.labels.get("manager") for el in result.vector}
        assert managers == {"slurm", "libvirt", "k8s"}


class TestCrossManagerAccessControl:
    def test_lb_denies_across_managers(self, multi_rm):
        """An HPC user cannot read a cloud tenant's VM metrics."""
        api = PromAPI(multi_rm["tsdb"])
        lb = LoadBalancer([Backend("p", api.app)], DBAuthorizer(multi_rm["sqlite"]))
        import urllib.parse

        vm_query = urllib.parse.quote(
            f'ceems_compute_unit_cpu_user_seconds_total{{uuid="{multi_rm["vm"]}"}}'
        )
        now = multi_rm["clock"].now()
        allowed = lb.app.get(
            f"/api/v1/query?query={vm_query}&time={now}", headers={"x-grafana-user": "bob"}
        )
        assert allowed.ok
        denied = lb.app.get(
            f"/api/v1/query?query={vm_query}&time={now}", headers={"x-grafana-user": "alice"}
        )
        assert denied.status == 403

    def test_api_server_scopes_units_per_user(self, multi_rm):
        api = APIServer(multi_rm["sqlite"])
        response = api.app.get("/api/v1/units", headers={"x-grafana-user": "carol"})
        data = response.decode_json()["data"]
        assert len(data) == 1
        assert data[0]["manager"] == "k8s"
