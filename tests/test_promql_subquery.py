"""Tests for PromQL subqueries (``expr[range:step]``)."""

import pytest

from repro.common.errors import QueryError
from repro.lb import extract_uuids
from repro.tsdb.model import Labels
from repro.tsdb.promql.ast import Subquery
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.promql.parser import parse_expr
from repro.tsdb.storage import TSDB


def mk(name: str, **labels: str) -> Labels:
    return Labels({"__name__": name, **labels})


@pytest.fixture
def db() -> TSDB:
    """A counter with a rate step: 1/s until t=600, then 5/s."""
    db = TSDB()
    labels = mk("c", uuid="1")
    value = 0.0
    for i in range(0, 1201, 15):
        rate = 1.0 if i <= 600 else 5.0
        if i:
            value += rate * 15.0
        db.append(labels, float(i), value)
        db.append(mk("g"), float(i), float(i % 100))
    return db


class TestParsing:
    def test_subquery_on_expression(self):
        ast = parse_expr("max_over_time(rate(c[2m])[10m:30s])")
        inner = ast.args[0]
        assert isinstance(inner, Subquery)
        assert inner.range_seconds == 600.0
        assert inner.step_seconds == 30.0

    def test_default_step(self):
        ast = parse_expr("avg_over_time(g[10m:])")
        assert isinstance(ast.args[0], Subquery)
        assert ast.args[0].step_seconds == 60.0  # range/10

    def test_subquery_offset(self):
        ast = parse_expr("max_over_time(g[10m:1m] offset 5m)")
        assert ast.args[0].offset == 300.0

    def test_range_on_expression_still_rejected(self):
        with pytest.raises(QueryError):
            parse_expr("(a + b)[5m]")

    def test_bare_subquery_rejected_at_eval(self, db):
        engine = PromQLEngine(db)
        with pytest.raises(QueryError):
            engine.query("g[5m:1m]", at=600.0)

    def test_recording_rule_names_still_parse(self):
        """Removing ':' from ident-start must not break rule names."""
        ast = parse_expr("ceems:compute_unit:power_watts")
        assert ast.name == "ceems:compute_unit:power_watts"


class TestEvaluation:
    def test_max_over_time_of_rate_catches_peak(self, db):
        """The canonical use: peak rate over a long window."""
        engine = PromQLEngine(db)
        result = engine.query("max_over_time(rate(c[2m])[15m:30s])", at=1200.0)
        assert result.vector[0].value == pytest.approx(5.0, rel=0.05)
        # while the plain rate over the full window sees the average
        flat = engine.query("rate(c[15m])", at=1200.0)
        assert flat.vector[0].value < 4.0

    def test_min_over_time_of_rate(self, db):
        engine = PromQLEngine(db)
        result = engine.query("min_over_time(rate(c[2m])[15m:30s])", at=1200.0)
        assert result.vector[0].value == pytest.approx(1.0, rel=0.05)

    def test_subquery_of_scalar_expression(self, db):
        engine = PromQLEngine(db)
        result = engine.query("avg_over_time(vector(3)[5m:1m])", at=600.0)
        assert result.vector[0].value == pytest.approx(3.0)

    def test_step_alignment_stable(self, db):
        """Aligned steps: eval times within the same step bucket see
        identical inner points (Prometheus absolute-step alignment)."""
        engine = PromQLEngine(db)
        # [421, 601] and [459, 639] both contain steps 480..600
        a = engine.query("sum_over_time(g[3m:1m])", at=601.0).vector[0].value
        b = engine.query("sum_over_time(g[3m:1m])", at=639.0).vector[0].value
        assert a == b

    def test_labels_flow_through(self, db):
        engine = PromQLEngine(db)
        result = engine.query("max_over_time(rate(c[2m])[10m:1m])", at=1200.0)
        assert result.vector[0].labels.get("uuid") == "1"

    def test_quantile_over_time_subquery(self, db):
        engine = PromQLEngine(db)
        result = engine.query("quantile_over_time(0.5, rate(c[2m])[15m:30s])", at=1200.0)
        assert 1.0 <= result.vector[0].value <= 5.0


class TestLBIntrospection:
    def test_uuid_found_inside_subquery(self):
        scope = extract_uuids('max_over_time(rate(c{uuid="42"}[2m])[30m:1m])')
        assert scope.uuids == {"42"} and not scope.unbounded
