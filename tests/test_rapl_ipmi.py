"""Tests for the RAPL counter and IPMI-DCMI sensor simulations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.hwsim.ipmi import IPMIDCMISensor
from repro.hwsim.rapl import DEFAULT_MAX_ENERGY_RANGE_UJ, RAPLDomain, RAPLPackage


class TestRAPLDomain:
    def test_energy_accumulates(self):
        domain = RAPLDomain(name="package-0")
        domain.add_energy(1.5)
        domain.add_energy(2.5)
        assert domain.energy_uj == 4_000_000
        assert domain.total_energy_joules == pytest.approx(4.0)

    def test_negative_energy_rejected(self):
        domain = RAPLDomain(name="package-0")
        with pytest.raises(SimulationError):
            domain.add_energy(-1.0)

    def test_counter_wraps(self):
        domain = RAPLDomain(name="package-0", max_energy_range_uj=1_000_000)
        domain.add_energy(1.75)  # 1.75 J = 1_750_000 µJ -> wraps once
        assert domain.energy_uj == 750_000
        assert domain.total_energy_joules == pytest.approx(1.75)

    def test_counter_delta_no_wrap(self):
        assert RAPLDomain.counter_delta(100, 400, 1000) == 300

    def test_counter_delta_with_wrap(self):
        assert RAPLDomain.counter_delta(900, 100, 1000) == 200

    @given(
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=0, max_value=10**9),
    )
    def test_delta_reconstructs_true_energy_property(self, start_uj, delta_uj):
        """Wraparound-corrected reads recover the true consumption."""
        max_range = 2**30
        domain = RAPLDomain(name="d", max_energy_range_uj=max_range)
        domain.add_energy(start_uj / 1e6)
        first = domain.energy_uj
        domain.add_energy(delta_uj / 1e6)
        second = domain.energy_uj
        if delta_uj < max_range:  # single-wrap assumption of the decoder
            recovered = RAPLDomain.counter_delta(first, second, max_range)
            assert abs(recovered - delta_uj) <= 1  # µJ truncation


class TestRAPLPackage:
    def test_intel_has_dram(self):
        pkg = RAPLPackage.intel(0)
        assert pkg.has_dram
        assert len(pkg.domains()) == 2

    def test_amd_has_no_dram(self):
        pkg = RAPLPackage.amd(1)
        assert not pkg.has_dram
        assert len(pkg.domains()) == 1

    def test_sysfs_entries_intel(self):
        pkg = RAPLPackage.intel(0)
        pkg.package.add_energy(1.0)
        pkg.dram.add_energy(0.5)
        entries = pkg.sysfs_entries()
        assert entries["intel-rapl:0/energy_uj"] == 1_000_000
        assert entries["intel-rapl:0:0/energy_uj"] == 500_000
        assert entries["intel-rapl:0/name"] == "package-0"
        assert entries["intel-rapl:0/max_energy_range_uj"] == DEFAULT_MAX_ENERGY_RANGE_UJ

    def test_sysfs_entries_amd_lack_dram(self):
        entries = RAPLPackage.amd(0).sysfs_entries()
        assert not any(":0:0" in key for key in entries)


class TestIPMISensor:
    def test_no_reading_before_first_sample(self):
        sensor = IPMIDCMISensor(seed=1)
        reading = sensor.read(0.0)
        assert not reading.active
        assert reading.current_watts == 0

    def test_reports_after_observe(self):
        sensor = IPMIDCMISensor(seed=1, noise_pct=0.0)
        sensor.observe(0.0, true_total_w=400.0, gpu_w=0.0)
        reading = sensor.read(0.0)
        assert reading.active
        assert reading.current_watts == 400

    def test_sampling_floor_returns_stale_data(self):
        """Reads between BMC samples see the previous sample."""
        sensor = IPMIDCMISensor(seed=1, noise_pct=0.0, sample_interval=1.0)
        sensor.observe(0.0, 400.0, 0.0)
        sensor.observe(0.5, 900.0, 0.0)  # within the sampling floor
        assert sensor.read(0.5).current_watts == 400
        sensor.observe(1.0, 900.0, 0.0)  # new sample due
        assert sensor.read(1.0).current_watts == 900

    def test_gpu_exclusion(self):
        incl = IPMIDCMISensor(includes_gpu=True, seed=1, noise_pct=0.0)
        excl = IPMIDCMISensor(includes_gpu=False, seed=1, noise_pct=0.0)
        incl.observe(0.0, 1000.0, 600.0)
        excl.observe(0.0, 1000.0, 600.0)
        assert incl.read(0.0).current_watts == 1000
        assert excl.read(0.0).current_watts == 400

    def test_window_statistics(self):
        sensor = IPMIDCMISensor(seed=1, noise_pct=0.0)
        for i, watts in enumerate([100.0, 300.0, 200.0]):
            sensor.observe(float(i), watts, 0.0)
        reading = sensor.read(3.0)
        assert reading.minimum_watts == 100
        assert reading.maximum_watts == 300
        assert reading.average_watts == 200

    def test_reset_statistics(self):
        sensor = IPMIDCMISensor(seed=1, noise_pct=0.0)
        sensor.observe(0.0, 500.0, 0.0)
        sensor.reset_statistics()
        assert not sensor.read(1.0).active

    def test_noise_is_deterministic_per_seed(self):
        a, b = IPMIDCMISensor(seed=9), IPMIDCMISensor(seed=9)
        a.observe(0.0, 500.0, 0.0)
        b.observe(0.0, 500.0, 0.0)
        assert a.read(0.0).current_watts == b.read(0.0).current_watts

    def test_noise_stays_reasonable(self):
        sensor = IPMIDCMISensor(seed=3, noise_pct=0.02)
        for i in range(200):
            sensor.observe(float(i), 500.0, 0.0)
        reading = sensor.read(200.0)
        assert 400 < reading.average_watts < 600

    def test_never_negative(self):
        sensor = IPMIDCMISensor(seed=4, noise_pct=5.0)  # absurd noise
        for i in range(50):
            sensor.observe(float(i), 10.0, 0.0)
        assert sensor.read(50.0).minimum_watts >= 0
