"""Alertmanager semantics: routing, grouping, throttling, silences,
inhibition, receivers, the notification log, and the HTTP surface
(both the Alertmanager app and the PromAPI delegation)."""

import json

import pytest

from repro.common.clock import SimClock
from repro.common.httpx import Request
from repro.obs.alertmanager import (
    Alertmanager,
    InhibitRule,
    JSONLReceiver,
    Route,
    Silence,
)
from repro.tsdb.alerts import AlertInstance, AlertState, AlertingRule, AlertingRuleGroup
from repro.tsdb.model import Labels
from repro.tsdb.rules import RuleEvaluator
from repro.tsdb.storage import TSDB


def firing(name: str, **labels: str) -> AlertInstance:
    return AlertInstance(
        name=name,
        labels=Labels(labels),
        state=AlertState.FIRING,
        active_since=0.0,
        value=1.0,
    )


def resolved(name: str, **labels: str) -> AlertInstance:
    return AlertInstance(
        name=name,
        labels=Labels(labels),
        state=AlertState.RESOLVED,
        active_since=0.0,
        value=0.0,
    )


class TestRouting:
    def test_root_route_catches_everything(self):
        root = Route(receiver="default")
        assert [r.receiver for r in root.route(Labels({"alertname": "X"}))] == ["default"]

    def test_child_match_wins_over_root(self):
        root = Route(
            receiver="default",
            routes=[Route(receiver="pager", match={"severity": "critical"})],
        )
        assert [
            r.receiver for r in root.route(Labels({"severity": "critical"}))
        ] == ["pager"]
        assert [
            r.receiver for r in root.route(Labels({"severity": "info"}))
        ] == ["default"]

    def test_match_re_is_anchored(self):
        root = Route(
            receiver="default",
            routes=[Route(receiver="team-energy", match_re={"alertname": "CEEMS.*"})],
        )
        assert [
            r.receiver for r in root.route(Labels({"alertname": "CEEMSTargetDown"}))
        ] == ["team-energy"]
        # full-match: a mid-string hit is not enough
        assert [
            r.receiver for r in root.route(Labels({"alertname": "NotCEEMS"}))
        ] == ["default"]

    def test_continue_fans_out_to_siblings(self):
        root = Route(
            receiver="default",
            routes=[
                Route(receiver="audit", match={"severity": "critical"}, continue_=True),
                Route(receiver="pager", match={"severity": "critical"}),
            ],
        )
        receivers = [r.receiver for r in root.route(Labels({"severity": "critical"}))]
        assert receivers == ["audit", "pager"]

    def test_nested_children(self):
        root = Route(
            receiver="default",
            routes=[
                Route(
                    receiver="team",
                    match={"team": "energy"},
                    routes=[Route(receiver="pager", match={"severity": "critical"})],
                )
            ],
        )
        labels = Labels({"team": "energy", "severity": "critical"})
        assert [r.receiver for r in root.route(labels)] == ["pager"]
        labels = Labels({"team": "energy", "severity": "info"})
        assert [r.receiver for r in root.route(labels)] == ["team"]


class TestGroupingAndThrottling:
    def make_am(self, **route_kw):
        clock = SimClock(start=0.0)
        route = Route(
            receiver="default",
            group_by=("alertname",),
            group_wait=30.0,
            group_interval=120.0,
            repeat_interval=600.0,
            **route_kw,
        )
        am = Alertmanager(clock, route=route)
        am.register_timer(clock)
        sent = []
        am.receivers["default"] = sent.append
        return clock, am, sent

    def test_group_wait_batches_one_notification(self):
        clock, am, sent = self.make_am()
        am.receive([firing("TargetDown", instance="a")], 0.0)
        am.receive([firing("TargetDown", instance="b")], 10.0)
        clock.advance(20.0)
        assert sent == []  # still inside group_wait
        clock.advance(20.0)
        assert len(sent) == 1
        assert sent[0].status == "firing"
        assert [a["labels"]["instance"] for a in sent[0].alerts] == ["a", "b"]
        assert sent[0].group_labels == {"alertname": "TargetDown"}

    def test_unchanged_group_is_deduplicated(self):
        clock, am, sent = self.make_am()
        am.receive([firing("TargetDown", instance="a")], 0.0)
        clock.advance(400.0)  # several group_interval flushes
        assert len(sent) == 1

    def test_repeat_interval_renotifies(self):
        clock, am, sent = self.make_am()
        am.receive([firing("TargetDown", instance="a")], 0.0)
        clock.advance(700.0)  # past repeat_interval=600
        assert len(sent) == 2
        assert all(n.status == "firing" for n in sent)

    def test_new_alert_in_group_notifies_at_group_interval(self):
        clock, am, sent = self.make_am()
        am.receive([firing("TargetDown", instance="a")], 0.0)
        clock.advance(45.0)
        assert len(sent) == 1
        am.receive([firing("TargetDown", instance="b")], 50.0)
        # second notification waits for group_interval, not group_wait
        clock.advance(60.0)
        assert len(sent) == 1
        clock.advance(120.0)
        assert len(sent) == 2
        assert [a["labels"]["instance"] for a in sent[1].alerts] == ["a", "b"]

    def test_resolution_produces_resolved_notification(self):
        clock, am, sent = self.make_am()
        am.receive([firing("TargetDown", instance="a")], 0.0)
        clock.advance(45.0)
        am.receive([resolved("TargetDown", instance="a")], 60.0)
        clock.advance(200.0)
        assert [n.status for n in sent] == ["firing", "resolved"]
        # the emptied group is garbage-collected
        assert am._groups == {}

    def test_different_alertnames_group_separately(self):
        clock, am, sent = self.make_am()
        am.receive([firing("TargetDown", instance="a"), firing("PowerHigh", instance="a")], 0.0)
        clock.advance(45.0)
        assert {n.group_labels["alertname"] for n in sent} == {"TargetDown", "PowerHigh"}

    def test_notification_log_is_bounded(self):
        clock = SimClock(start=0.0)
        am = Alertmanager(clock, notification_log_size=3)
        am.register_timer(clock)
        for i in range(6):
            am.receive([firing("A", instance=f"n{i}")], clock.now())
            clock.advance(400.0)
        assert am.notifications_total > 3
        assert len(am.notification_log) == 3


class TestSilences:
    def test_silence_suppresses_notification(self):
        clock = SimClock(start=0.0)
        am = Alertmanager(clock)
        am.register_timer(clock)
        sent = []
        am.receivers["default"] = sent.append
        am.add_silence(
            [{"name": "alertname", "value": "TargetDown"}], ends_at=1000.0
        )
        am.receive([firing("TargetDown", instance="a")], 0.0)
        clock.advance(120.0)
        assert sent == []
        status = am.status_of(Labels({"alertname": "TargetDown", "instance": "a"}))
        assert status["state"] == "suppressed"
        assert status["silencedBy"] == ["silence-1"]

    def test_silence_ttl_expiry_lets_alerts_through(self):
        clock = SimClock(start=0.0)
        am = Alertmanager(clock)
        am.register_timer(clock)
        sent = []
        am.receivers["default"] = sent.append
        am.add_silence([{"name": "alertname", "value": "TargetDown"}], ends_at=100.0)
        am.receive([firing("TargetDown", instance="a")], 0.0)
        clock.advance(90.0)
        assert sent == []
        clock.advance(300.0)  # silence expired; next flush delivers
        assert len(sent) == 1

    def test_regex_matchers(self):
        silence = Silence(
            id="s",
            matchers=[{"name": "instance", "value": "node-[0-9]+", "isRegex": True}],
            starts_at=0.0,
            ends_at=100.0,
        )
        assert silence.matches(Labels({"instance": "node-7"}))
        assert not silence.matches(Labels({"instance": "node-x"}))
        assert not silence.matches(Labels({"instance": "xnode-7x"}))

    def test_expire_and_gc(self):
        clock = SimClock(start=0.0)
        am = Alertmanager(clock)
        s = am.add_silence([{"name": "a", "value": "b"}], ends_at=1e9)
        am._now = 50.0
        assert am.expire_silence(s.id)
        assert s.state(51.0) == "expired"
        assert not am.expire_silence("nope")
        am._now = 50.0 + 7200.0
        assert am.gc_silences(keep_expired_for=3600.0) == 1
        assert am.silences == {}


class TestInhibition:
    def make_am(self):
        clock = SimClock(start=0.0)
        am = Alertmanager(
            clock,
            inhibit_rules=[
                InhibitRule(
                    source_match={"alertname": "TargetDown"},
                    target_match={"alertname": "CollectorFailed"},
                    equal=("instance",),
                )
            ],
        )
        am.register_timer(clock)
        sent = []
        am.receivers["default"] = sent.append
        return clock, am, sent

    def test_source_inhibits_target_on_equal_labels(self):
        clock, am, sent = self.make_am()
        am.receive(
            [firing("TargetDown", instance="a"), firing("CollectorFailed", instance="a")],
            0.0,
        )
        clock.advance(120.0)
        names = {n.group_labels["alertname"] for n in sent}
        assert names == {"TargetDown"}
        status = am.status_of(Labels({"alertname": "CollectorFailed", "instance": "a"}))
        assert status["state"] == "suppressed"
        assert status["inhibitedBy"] == ["TargetDown"]

    def test_no_inhibition_across_instances(self):
        clock, am, sent = self.make_am()
        am.receive(
            [firing("TargetDown", instance="a"), firing("CollectorFailed", instance="b")],
            0.0,
        )
        clock.advance(120.0)
        assert {n.group_labels["alertname"] for n in sent} == {
            "TargetDown",
            "CollectorFailed",
        }

    def test_silenced_source_does_not_inhibit(self):
        clock, am, sent = self.make_am()
        am.add_silence([{"name": "alertname", "value": "TargetDown"}], ends_at=1e9)
        am.receive(
            [firing("TargetDown", instance="a"), firing("CollectorFailed", instance="a")],
            0.0,
        )
        clock.advance(120.0)
        assert {n.group_labels["alertname"] for n in sent} == {"CollectorFailed"}


class TestJSONLReceiver:
    def test_appends_one_object_per_notification(self, tmp_path):
        path = tmp_path / "notify.jsonl"
        clock = SimClock(start=0.0)
        am = Alertmanager(clock)
        am.register_timer(clock)
        am.receivers["default"] = JSONLReceiver(str(path))
        am.receive([firing("TargetDown", instance="a")], 0.0)
        clock.advance(60.0)
        am.receive([resolved("TargetDown", instance="a")], 70.0)
        clock.advance(400.0)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [entry["status"] for entry in lines] == ["firing", "resolved"]
        assert lines[0]["alerts"][0]["labels"]["alertname"] == "TargetDown"


class TestHTTPSurface:
    def make_am(self):
        clock = SimClock(start=0.0)
        am = Alertmanager(clock)
        am.register_timer(clock)
        return clock, am

    def test_silence_crud_roundtrip(self):
        _clock, am = self.make_am()
        resp = am.app.post(
            "/api/v1/silences",
            body=json.dumps(
                {
                    "matchers": [{"name": "alertname", "value": "X"}],
                    "endsAt": 500.0,
                    "createdBy": "ops",
                    "comment": "maintenance",
                }
            ).encode(),
        )
        assert resp.status == 200
        sid = json.loads(resp.body)["data"]["silenceID"]

        resp = am.app.get("/api/v1/silences")
        data = json.loads(resp.body)["data"]
        assert [s["id"] for s in data] == [sid]
        assert data[0]["status"]["state"] == "active"

        resp = am.app.get(f"/api/v1/silence/{sid}")
        assert json.loads(resp.body)["data"]["createdBy"] == "ops"

        resp = am.app.handle(Request.from_url("DELETE", f"/api/v1/silence/{sid}"))
        assert resp.status == 200
        assert am.silences[sid].state(1.0) == "expired"

        resp = am.app.handle(Request.from_url("DELETE", "/api/v1/silence/unknown"))
        assert resp.status == 404

    def test_post_silence_validation(self):
        _clock, am = self.make_am()
        assert am.app.post("/api/v1/silences", body=b"{").status == 400
        assert am.app.post("/api/v1/silences", body=b"{}").status == 400
        assert (
            am.app.post(
                "/api/v1/silences",
                body=json.dumps({"matchers": [{"name": "a", "value": "b"}]}).encode(),
            ).status
            == 400
        )  # missing endsAt

    def test_alerts_endpoint_reflects_active_and_suppressed(self):
        clock, am = self.make_am()
        am.receive([firing("TargetDown", instance="a")], 0.0)
        am.add_silence([{"name": "instance", "value": "a"}], ends_at=1e9)
        data = json.loads(am.app.get("/api/v1/alerts").body)["data"]
        assert len(data) == 1
        assert data[0]["labels"]["alertname"] == "TargetDown"
        assert data[0]["status"]["state"] == "suppressed"

    def test_external_alert_post(self):
        clock, am = self.make_am()
        sent = []
        am.receivers["default"] = sent.append
        resp = am.app.post(
            "/api/v1/alerts",
            body=json.dumps(
                [{"labels": {"alertname": "DiskFull", "instance": "n1"}}]
            ).encode(),
        )
        assert resp.status == 200
        clock.advance(60.0)
        assert len(sent) == 1
        assert sent[0].alerts[0]["labels"]["alertname"] == "DiskFull"

    def test_status_endpoint(self):
        _clock, am = self.make_am()
        data = json.loads(am.app.get("/api/v1/status").body)["data"]
        assert data["activeAlerts"] == 0
        assert data["notificationsTotal"] == 0


class TestRuleEvaluatorIntegration:
    def make_stack(self):
        db = TSDB()
        evaluator = RuleEvaluator(db, lookback=300.0)
        evaluator.add_alert_group(
            AlertingRuleGroup(
                name="test-alerts",
                interval=30.0,
                rules=[AlertingRule(name="CondHigh", expr="cond == 1", hold=60.0)],
            )
        )
        return db, evaluator

    def set_cond(self, db, at, value, instance="n0"):
        db.append(Labels({"__name__": "cond", "instance": instance}), at, value)

    def test_alerts_series_lifecycle(self):
        db, evaluator = self.make_stack()
        engine_db = db
        self.set_cond(db, 0.0, 1.0)
        evaluator.evaluate_alerts(0.0)
        from repro.tsdb.promql.engine import PromQLEngine

        engine = PromQLEngine(engine_db, lookback=300.0)
        res = engine.query('ALERTS{alertname="CondHigh"}', at=1.0)
        assert [el.labels.get("alertstate") for el in res.vector] == ["pending"]

        self.set_cond(db, 60.0, 1.0)
        evaluator.evaluate_alerts(65.0)
        res = engine.query('ALERTS{alertname="CondHigh"}', at=66.0)
        assert [el.labels.get("alertstate") for el in res.vector] == ["firing"]
        assert evaluator.firing_count == 1 and evaluator.pending_count == 0

        # resolution stale-marks the firing series
        self.set_cond(db, 90.0, 0.0)
        evaluator.evaluate_alerts(95.0)
        res = engine.query("ALERTS", at=96.0)
        assert res.vector == []
        assert evaluator.firing_count == 0

    def test_notifier_receives_transitions(self):
        db, evaluator = self.make_stack()
        received = []
        evaluator.notifier = lambda transitions, now: received.append(
            (now, [t.state for t in transitions])
        )
        self.set_cond(db, 0.0, 1.0)
        evaluator.evaluate_alerts(0.0)  # pending only: no notification
        self.set_cond(db, 60.0, 1.0)
        evaluator.evaluate_alerts(65.0)
        assert received == [(65.0, [AlertState.FIRING])]

    def test_duplicate_alert_group_rejected(self):
        _db, evaluator = self.make_stack()
        from repro.common.errors import QueryError

        with pytest.raises(QueryError):
            evaluator.add_alert_group(AlertingRuleGroup(name="test-alerts", interval=30.0))

    def test_register_metrics_gauges(self):
        from repro.obs.registry import MetricsRegistry

        db, evaluator = self.make_stack()
        registry = MetricsRegistry()
        evaluator.register_metrics(registry)
        self.set_cond(db, 0.0, 1.0)
        evaluator.evaluate_alerts(0.0)
        rendered = {
            f"{fam.name}": {pt.value for pt in fam.points} for fam in registry.collect()
        }
        assert rendered["ceems_alerts_pending"] == {1.0}
        assert rendered["ceems_alerts_firing"] == {0.0}
        assert rendered["ceems_alert_rule_evaluations_total"] == {1.0}


class TestPromAPIDelegation:
    def make_api(self):
        from repro.tsdb.http import PromAPI

        db = TSDB()
        clock = SimClock(start=0.0)
        evaluator = RuleEvaluator(db, lookback=300.0)
        evaluator.add_alert_group(
            AlertingRuleGroup(
                name="test-alerts",
                interval=30.0,
                rules=[AlertingRule(name="CondHigh", expr="cond == 1", hold=0.0)],
            )
        )
        am = Alertmanager(clock)
        evaluator.notifier = am.receive
        api = PromAPI(db, rules=evaluator, alertmanager=am)
        return db, evaluator, am, api

    def test_rules_endpoint_lists_groups_and_state(self):
        db, evaluator, _am, api = self.make_api()
        db.append(Labels({"__name__": "cond", "instance": "n0"}), 0.0, 1.0)
        evaluator.evaluate_alerts(1.0)
        data = json.loads(api.app.get("/api/v1/rules").body)["data"]
        groups = {g["name"]: g for g in data["groups"]}
        rule = groups["test-alerts"]["rules"][0]
        assert rule["type"] == "alerting"
        assert rule["state"] == "firing"
        assert rule["alerts"][0]["labels"]["instance"] == "n0"

    def test_alerts_endpoint_includes_am_status(self):
        db, evaluator, am, api = self.make_api()
        db.append(Labels({"__name__": "cond", "instance": "n0"}), 0.0, 1.0)
        evaluator.evaluate_alerts(1.0)
        am.add_silence([{"name": "alertname", "value": "CondHigh"}], ends_at=1e9)
        data = json.loads(api.app.get("/api/v1/alerts").body)["data"]["alerts"]
        assert data[0]["state"] == "firing"
        assert data[0]["status"]["state"] == "suppressed"

    def test_silences_delegated(self):
        _db, _ev, am, api = self.make_api()
        resp = api.app.post(
            "/api/v1/silences",
            body=json.dumps(
                {"matchers": [{"name": "a", "value": "b"}], "endsAt": 100.0}
            ).encode(),
        )
        assert resp.status == 200
        assert len(am.silences) == 1

    def test_silences_404_without_alertmanager(self):
        from repro.tsdb.http import PromAPI

        api = PromAPI(TSDB())
        assert api.app.get("/api/v1/silences").status == 404
        # rules/alerts endpoints degrade to empty rather than erroring
        assert json.loads(api.app.get("/api/v1/rules").body)["data"]["groups"] == []
        assert json.loads(api.app.get("/api/v1/alerts").body)["data"]["alerts"] == []
