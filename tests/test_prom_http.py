"""Tests for the Prometheus HTTP API facade."""

import pytest

from repro.common.httpx import Request
from repro.tsdb.http import PromAPI, delete_series_matchers
from repro.tsdb.model import Labels
from repro.tsdb.storage import TSDB


@pytest.fixture
def api() -> PromAPI:
    db = TSDB()
    for i in range(11):
        t = i * 15.0
        db.append(Labels({"__name__": "power", "uuid": "1"}), t, 100.0)
        db.append(Labels({"__name__": "power", "uuid": "2"}), t, 200.0)
    return PromAPI(db)


class TestInstantQuery:
    def test_vector_result(self, api):
        response = api.app.get("/api/v1/query?query=power&time=150")
        data = response.decode_json()["data"]
        assert data["resultType"] == "vector"
        assert len(data["result"]) == 2
        assert data["result"][0]["metric"]["__name__"] == "power"
        assert data["result"][0]["value"][1] in ("100.0", "100")

    def test_scalar_result(self, api):
        response = api.app.get("/api/v1/query?query=1%2B1&time=0")
        data = response.decode_json()["data"]
        assert data["resultType"] == "scalar"
        assert float(data["result"][1]) == 2.0

    def test_missing_query_param(self, api):
        assert api.app.get("/api/v1/query?time=0").status == 400

    def test_missing_time_param(self, api):
        assert api.app.get("/api/v1/query?query=power").status == 400

    def test_bad_query_is_400(self, api):
        response = api.app.get("/api/v1/query?query=power{&time=0")
        assert response.status == 400

    def test_post_form_body(self, api):
        response = api.app.handle(
            Request.from_url(
                "POST",
                "/api/v1/query",
                headers={"content-type": "application/x-www-form-urlencoded"},
                body=b"query=sum(power)&time=150",
            )
        )
        assert response.ok
        data = response.decode_json()["data"]
        assert float(data["result"][0]["value"][1]) == 300.0


class TestRangeQuery:
    def test_matrix_result(self, api):
        response = api.app.get("/api/v1/query_range?query=power&start=0&end=150&step=15")
        data = response.decode_json()["data"]
        assert data["resultType"] == "matrix"
        assert len(data["result"]) == 2
        assert len(data["result"][0]["values"]) == 11

    def test_bad_params(self, api):
        assert api.app.get("/api/v1/query_range?query=power&start=x&end=1&step=1").status == 400
        assert api.app.get("/api/v1/query_range?query=power&start=0&end=1").status == 400


class TestMetadata:
    def test_series_endpoint(self, api):
        response = api.app.get("/api/v1/series?match[]=power")
        data = response.decode_json()["data"]
        assert len(data) == 2
        assert {d["uuid"] for d in data} == {"1", "2"}

    def test_series_requires_selector(self, api):
        assert api.app.get("/api/v1/series").status == 400

    def test_series_rejects_expressions(self, api):
        assert api.app.get("/api/v1/series?match[]=sum(power)").status == 400

    def test_label_values(self, api):
        response = api.app.get("/api/v1/label/uuid/values")
        assert response.decode_json()["data"] == ["1", "2"]

    def test_healthy(self, api):
        assert api.app.get("/-/healthy").ok

    def test_queries_counted(self, api):
        api.app.get("/api/v1/query?query=power&time=0")
        api.app.get("/api/v1/query_range?query=power&start=0&end=10&step=5")
        assert api.queries_served == 2


def test_delete_series_matchers():
    matchers = delete_series_matchers("1234")
    assert len(matchers) == 1
    assert matchers[0].name == "uuid" and matchers[0].value == "1234"


class TestCacheMetricsExposition:
    def test_snapshot_and_decode_cache_counters_exported(self, api):
        # prime the snapshot cache so hits > 0 is observable
        api.app.get("/api/v1/query?query=power&time=150")
        api.app.get("/api/v1/query?query=power&time=150")
        body = api.app.get("/metrics").body
        text = body.decode() if isinstance(body, bytes) else body
        for name in (
            "ceems_tsdb_snapshot_cache_hits_total",
            "ceems_tsdb_snapshot_cache_misses_total",
            "ceems_tsdb_chunk_decode_cache_hits_total",
            "ceems_tsdb_chunk_decode_cache_misses_total",
            "ceems_tsdb_chunk_decode_cache_evictions_total",
        ):
            matching = [
                line for line in text.splitlines()
                if line.startswith(name + " ") or line.startswith(name + "{")
            ]
            assert matching, name
            assert float(matching[0].rsplit(" ", 1)[1]) >= 0.0
