"""Scrape fast lane: differential proof, cache behaviour, resilience.

The fast lane (per-target scrape cache + append-by-ref + optional
worker pool) must be **bit-identical** to the cache-disabled reference
path: same series set, same sample values, same staleness markers —
across structure churn, retention, and series deletion.  These tests
are the harness behind that claim.
"""

import math
import tempfile

import pytest

from repro.common.httpx import App, Response
from repro.tsdb import exposition
from repro.tsdb.model import Labels, Matcher
from repro.tsdb.scrape import ScrapeCache, ScrapeConfig, ScrapeManager, ScrapeTarget
from repro.tsdb.storage import TSDB


def make_exporter(families_fn) -> App:
    app = App("fake")
    app.router.get("/metrics", lambda req: Response.text(exposition.render(families_fn())))
    return app


def dump(db: TSDB):
    """Canonical TSDB contents; NaN-safe via repr of values."""
    return [
        (tuple(s.labels), tuple(s.timestamps), tuple(repr(v) for v in s.values))
        for s in db.all_series()
    ]


def churn_families(cycle: int):
    """A payload whose structure changes every cycle."""
    fam = exposition.MetricFamily("power_watts", help="w", type="gauge")
    fam.add(100.0 + cycle, hostname="n0", sensor='we"ird\\x,y}{')
    if cycle % 2 == 0:
        fam.add(50.0, hostname="n0", uuid=f"job-{cycle}")
    if cycle == 3:
        fam.add(math.nan, hostname="n0", uuid="nan-job")
    counters = exposition.MetricFamily("energy_joules_total", type="counter")
    counters.add(1000.0 * cycle)
    return [fam, counters]


def run_cycles(use_cache: bool, workers: int = 0, cycles: int = 6, db: TSDB | None = None):
    db = db if db is not None else TSDB()
    manager = ScrapeManager(db, ScrapeConfig(use_cache=use_cache, workers=workers))
    state = {"n": -1}

    def families():
        state["n"] += 1
        return churn_families(state["n"])

    manager.add_target(ScrapeTarget(app=make_exporter(families), instance="n0:9010", job="ceems"))
    for i in range(cycles):
        manager.scrape_all(now=15.0 * (i + 1))
    return db, manager


class TestDifferential:
    def test_bit_identical_across_structure_churn(self):
        ref, _ = run_cycles(use_cache=False)
        fast, _ = run_cycles(use_cache=True)
        par, _ = run_cycles(use_cache=True, workers=4)
        assert dump(ref) == dump(fast) == dump(par)
        # staleness markers must be part of the identical contents
        gone = [s for s in fast.all_series() if "uuid" in s.labels and "job-" in s.labels.get("uuid")]
        assert gone and all(math.isnan(s.values[-1]) for s in gone)

    def test_bit_identical_across_retention(self):
        def run(use_cache):
            db = TSDB(retention=40.0)
            # retention every cycle: refs die constantly under the cache
            manager = ScrapeManager(db, ScrapeConfig(use_cache=use_cache, retention_every=1))
            state = {"n": -1}

            def families():
                state["n"] += 1
                return churn_families(state["n"])

            manager.add_target(ScrapeTarget(app=make_exporter(families), instance="i", job="j"))
            for i in range(8):
                manager.scrape_all(now=15.0 * (i + 1))
            return db

        assert dump(run(False)) == dump(run(True))

    def test_bit_identical_across_delete_series(self):
        def run(use_cache):
            db = TSDB()
            manager = ScrapeManager(db, ScrapeConfig(use_cache=use_cache))
            fam = exposition.MetricFamily("m", type="gauge")
            fam.add(1.0, uuid="x")
            fam.add(2.0, uuid="y")
            manager.add_target(
                ScrapeTarget(app=make_exporter(lambda: [fam]), instance="i", job="j")
            )
            manager.scrape_all(now=15.0)
            # cardinality cleanup between cycles: cached refs go stale
            db.delete_series([Matcher.eq("uuid", "x")])
            manager.scrape_all(now=30.0)
            manager.scrape_all(now=45.0)
            return db

        ref, fast = run(False), run(True)
        assert dump(ref) == dump(fast)
        # the deleted-then-rescraped series must be recreated with
        # only post-delete samples in both paths
        x = ref.select([Matcher.eq("uuid", "x")])[0]
        assert x.timestamps == [30.0, 45.0]

    def test_stale_ref_never_appends_to_recreated_series(self):
        """A dead prev-ref whose labels reappeared under a fresh ref
        must NOT produce a staleness marker (the reference path
        compares label sets and sees the series as alive)."""

        def run(use_cache):
            db = TSDB()
            manager = ScrapeManager(db, ScrapeConfig(use_cache=use_cache))
            fam = exposition.MetricFamily("m", type="gauge")
            fam.add(1.0, uuid="x")
            manager.add_target(
                ScrapeTarget(app=make_exporter(lambda: [fam]), instance="i", job="j")
            )
            manager.scrape_all(now=15.0)
            db.delete_series([Matcher.eq("uuid", "x")])  # prev ref now dead
            manager.scrape_all(now=30.0)  # same labels under a new ref
            return db

        for db in (run(False), run(True)):
            x = db.select([Matcher.eq("uuid", "x")])[0]
            assert x.timestamps == [30.0]
            assert x.values == [1.0]  # a NaN here would be the bug


class TestBrokenTargets:
    def test_non_utf8_body_counts_as_failure(self):
        """Regression: a non-UTF-8 body used to escape the ScrapeError
        handler and stall the whole cycle."""
        db = TSDB()
        bad = App("binary")
        bad.router.get("/metrics", lambda req: Response(status=200, body=b"\xff\xfe power 1\n"))
        fam = exposition.MetricFamily("m", type="gauge")
        fam.add(1.0)
        manager = ScrapeManager(db)
        manager.add_target(ScrapeTarget(app=bad, instance="bad:9", job="j"))
        manager.add_target(ScrapeTarget(app=make_exporter(lambda: [fam]), instance="good:9", job="j"))
        assert manager.scrape_all(now=15.0) == 1  # good target unaffected
        assert manager.targets[0].scrape_failures_total == 1
        assert manager.healthy_targets() == 1
        ups = {s.labels.get("instance"): s.values[-1] for s in db.select([Matcher.name_eq("up")])}
        assert ups == {"bad:9": 0.0, "good:9": 1.0}

    @pytest.mark.parametrize("use_cache", [False, True])
    def test_handler_crash_counts_as_failure(self, use_cache):
        db = TSDB()
        crash = App("crash")

        def boom(req):
            raise ValueError("collector exploded")

        crash.router.get("/metrics", boom)
        manager = ScrapeManager(db, ScrapeConfig(use_cache=use_cache))
        manager.add_target(ScrapeTarget(app=crash, instance="c:9", job="j"))
        manager.scrape_all(now=15.0)
        assert manager.targets[0].scrape_failures_total == 1

    @pytest.mark.parametrize("use_cache", [False, True])
    def test_invalid_metric_name_counts_as_failure(self, use_cache):
        # parses fine but fails Labels validation (ValueError, not
        # ScrapeError) — must be contained like any other bad payload
        db = TSDB()
        bad = App("badname")
        bad.router.get("/metrics", lambda req: Response.text("m} 1\n"))
        manager = ScrapeManager(db, ScrapeConfig(use_cache=use_cache))
        manager.add_target(ScrapeTarget(app=bad, instance="b:9", job="j"))
        manager.scrape_all(now=15.0)
        assert manager.targets[0].scrape_failures_total == 1


class TestFailureStaleness:
    @pytest.mark.parametrize("use_cache", [False, True])
    def test_failed_scrape_marks_all_series_stale(self, use_cache):
        """Prometheus behaviour: a dead target's series get staleness
        markers immediately, not after the lookback window."""
        db = TSDB()
        state = {"alive": True}
        fam = exposition.MetricFamily("power_watts", type="gauge")
        fam.add(240.0, uuid="a")
        fam.add(260.0, uuid="b")

        def handler(req):
            if not state["alive"]:
                return Response(status=500)
            return Response.text(exposition.render([fam]))

        app = App("flaky")
        app.router.get("/metrics", handler)
        manager = ScrapeManager(db, ScrapeConfig(use_cache=use_cache))
        manager.add_target(ScrapeTarget(app=app, instance="i", job="j"))
        manager.scrape_all(now=15.0)
        state["alive"] = False
        manager.scrape_all(now=30.0)
        for s in db.select([Matcher.name_eq("power_watts")]):
            assert s.timestamps == [15.0, 30.0]
            assert math.isnan(s.values[-1])
        # the marker set was cleared: a third failing cycle appends
        # nothing further
        manager.scrape_all(now=45.0)
        for s in db.select([Matcher.name_eq("power_watts")]):
            assert s.timestamps == [15.0, 30.0]
        # recovery starts a fresh series history
        state["alive"] = True
        manager.scrape_all(now=60.0)
        for s in db.select([Matcher.name_eq("power_watts")]):
            assert s.timestamps == [15.0, 30.0, 60.0]
            assert not math.isnan(s.values[-1])


class TestScrapeCache:
    def test_hits_after_first_cycle(self):
        _db, manager = run_cycles(use_cache=True, cycles=3)
        assert manager.cache_misses_total > 0
        assert manager.cache_hits_total > 0
        # steady series ('power_watts' sensor line, counter line) hit
        # on cycles 2-3
        assert manager.cache_hits_total >= 4

    def test_value_change_is_still_a_hit(self):
        db = TSDB()
        manager = ScrapeManager(db, ScrapeConfig(use_cache=True))
        state = {"v": 0.0}

        def families():
            state["v"] += 1.5
            fam = exposition.MetricFamily("m", type="gauge")
            fam.add(state["v"], uuid="x")
            return [fam]

        manager.add_target(ScrapeTarget(app=make_exporter(families), instance="i", job="j"))
        manager.scrape_all(now=15.0)
        manager.scrape_all(now=30.0)
        assert manager.cache_misses_total == 1
        assert manager.cache_hits_total == 1
        assert db.select([Matcher.name_eq("m")])[0].values == [1.5, 3.0]

    def test_label_change_misses_and_evicts(self):
        db = TSDB()
        manager = ScrapeManager(db, ScrapeConfig(use_cache=True))
        state = {"uuid": "a"}

        def families():
            fam = exposition.MetricFamily("m", type="gauge")
            fam.add(1.0, uuid=state["uuid"])
            return [fam]

        manager.add_target(ScrapeTarget(app=make_exporter(families), instance="i", job="j"))
        manager.scrape_all(now=15.0)
        state["uuid"] = "b"
        manager.scrape_all(now=30.0)
        assert manager.cache_misses_total == 2
        assert manager.cache_evictions_total == 1  # the uuid="a" line
        cache = manager.targets[0]._cache
        assert len(cache.entries) == 1
        # and the disappeared series got its staleness marker
        a = db.select([Matcher.eq("uuid", "a")])[0]
        assert math.isnan(a.values[-1])

    def test_eviction_generation_bookkeeping(self):
        cache = ScrapeCache()
        from repro.tsdb.scrape import _CacheEntry

        cache.gen = 1
        cache.entries["live"] = _CacheEntry(labels=Labels({"__name__": "m"}), ref=1, last_gen=1)
        cache.entries["dead"] = _CacheEntry(labels=Labels({"__name__": "n"}), ref=2, last_gen=0)
        assert cache.evict_stale() == 1
        assert set(cache.entries) == {"live"}
        assert cache.evictions == 1


class TestObservability:
    def test_cycle_histogram_and_cache_counters_exposed(self):
        from repro.obs.registry import MetricsRegistry

        _db, manager = run_cycles(use_cache=True, cycles=2)
        registry = MetricsRegistry()
        manager.register_metrics(registry)
        text = exposition.render(registry.collect())
        assert "ceems_scrape_cache_hits_total" in text
        assert "ceems_scrape_cache_misses_total" in text
        assert "ceems_scrape_cache_evictions_total" in text
        assert "ceems_scrape_cycle_seconds_bucket" in text
        assert manager.cycle_seconds.collect()


class TestPersistentHead:
    def test_fast_lane_survives_restart(self):
        """Ref appends on the durable head journal to the WAL: a
        reopened head replays exactly what the fast lane ingested."""
        from repro.tsdb.persist.head import PersistentTSDB

        with tempfile.TemporaryDirectory() as d:
            db = PersistentTSDB(d)
            _db, manager = run_cycles(use_cache=True, cycles=4, db=db)
            expected = dump(db)
            db.wal.close()
            reopened = PersistentTSDB(d)
            assert dump(reopened) == expected
            reopened.wal.close()
        # and the durable contents match the plain in-memory fast path
        mem, _ = run_cycles(use_cache=True, cycles=4)
        assert expected == dump(mem)


class TestSimulationDifferential:
    """End-to-end: the full stack produces identical *data-plane*
    contents with the cache on, off, and with a worker pool.

    Self-telemetry is excluded: wall-clock series (request-latency
    histograms, CPU seconds) differ between any two runs regardless
    of mode, and the scrape-cache counters differ by construction.
    The alerting control plane rides on those wall-clock series too
    (probe durations, latency-SLO ratios, the ALERTS state series
    they can trigger), so its jobs and series prefixes are excluded
    for the same reason.
    """

    META_JOBS = ("prometheus", "ceems-api", "ceems-lb", "alertmanager", "blackbox")
    SELF_PREFIXES = ("ceems_http_", "ceems_exporter_", "probe_", "slo:", "ALERTS")

    @classmethod
    def data_plane(cls, db):
        out = []
        for s in db.all_series():
            if s.labels.get("job") in cls.META_JOBS:
                continue
            if s.labels.metric_name.startswith(cls.SELF_PREFIXES):
                continue
            out.append((tuple(s.labels), tuple(s.timestamps), tuple(repr(v) for v in s.values)))
        return out

    def test_small_topology_identical(self):
        from repro.cluster.simulation import SimulationConfig, StackSimulation
        from repro.cluster.topology import small_topology

        def run(**kw):
            sim = StackSimulation(
                small_topology(cpu_nodes=2, gpu_nodes=1),
                SimulationConfig(seed=11, **kw),
            )
            sim.run(450.0)
            return self.data_plane(sim.hot_tsdb)

        ref = run(scrape_cache=False)
        fast = run(scrape_cache=True)
        par = run(scrape_cache=True, scrape_workers=3)
        assert len(ref) > 100  # the comparison is over real content
        assert ref == fast == par
