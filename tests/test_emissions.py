"""Tests for emission-factor providers and the emissions pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ProviderError
from repro.common.clock import SimClock
from repro.emissions import (
    ElectricityMapsProvider,
    EmissionsCalculator,
    EmissionsCollector,
    OWIDProvider,
    ProviderRegistry,
    RTEProvider,
)
from repro.emissions.owid_data import OWID_FACTORS, WORLD_AVERAGE
from repro.emissions.pipeline import EmissionsExporter
from repro.tsdb import exposition


class TestOWID:
    def test_known_zone(self):
        factor = OWIDProvider().factor("FR", now=0.0)
        assert factor.value == OWID_FACTORS["FR"]
        assert factor.provider == "owid"

    def test_case_insensitive(self):
        assert OWIDProvider().factor("fr", now=0.0).zone == "FR"

    def test_unknown_zone_rejected_by_default(self):
        with pytest.raises(ProviderError):
            OWIDProvider().factor("XX", now=0.0)

    def test_world_fallback(self):
        factor = OWIDProvider(world_fallback=True).factor("XX", now=0.0)
        assert factor.value == WORLD_AVERAGE

    def test_zone_list(self):
        zones = OWIDProvider().zones()
        assert "FR" in zones and "US" in zones and len(zones) >= 25

    def test_nuclear_and_coal_grids_ordered(self):
        """Sanity of the embedded data: FR << DE << PL."""
        assert OWID_FACTORS["FR"] < OWID_FACTORS["DE"] < OWID_FACTORS["PL"]


class TestRTE:
    def test_france_only(self):
        with pytest.raises(ProviderError, match="only covers FR"):
            RTEProvider().factor("DE", now=0.0)

    def test_quantised_to_15_minutes(self):
        provider = RTEProvider(seed=1)
        a = provider.factor("FR", now=1000.0)
        b = provider.factor("FR", now=1400.0)  # same 15-min window
        assert a.value == b.value
        c = provider.factor("FR", now=2000.0)  # next window
        assert c.timestamp != a.timestamp

    def test_deterministic(self):
        assert RTEProvider(seed=2).factor("FR", 5e5).value == RTEProvider(seed=2).factor("FR", 5e5).value

    def test_plausible_range(self):
        provider = RTEProvider(seed=3)
        values = [provider.factor("FR", t * 900.0).value for t in range(400)]
        assert all(15.0 <= v <= 160.0 for v in values)

    def test_evening_peak_above_night(self):
        """Average factor at 19h exceeds the 3h one (gas peakers)."""
        provider = RTEProvider(seed=4)
        nights, evenings = [], []
        for day in range(30):
            base = day * 86400.0
            nights.append(provider.factor("FR", base + 3 * 3600.0).value)
            evenings.append(provider.factor("FR", base + 19 * 3600.0).value)
        assert np.mean(evenings) > np.mean(nights)

    def test_outage_mode(self):
        provider = RTEProvider(available=False)
        with pytest.raises(ProviderError, match="unavailable"):
            provider.factor("FR", now=0.0)


class TestElectricityMaps:
    def test_many_zones(self):
        provider = ElectricityMapsProvider(seed=1)
        for zone in ("FR", "DE", "US", "NO"):
            assert provider.factor(zone, now=0.0).value > 0

    def test_unknown_zone(self):
        with pytest.raises(ProviderError):
            ElectricityMapsProvider().factor("ZZ", now=0.0)

    def test_token_required(self):
        with pytest.raises(ProviderError):
            ElectricityMapsProvider(token="")

    def test_hourly_quantisation(self):
        provider = ElectricityMapsProvider(seed=1)
        a = provider.factor("DE", now=100.0)
        b = provider.factor("DE", now=3500.0)
        assert a.value == b.value

    def test_values_orbit_owid_average(self):
        provider = ElectricityMapsProvider(seed=2)
        values = [provider.factor("DE", t * 3600.0).value for t in range(24 * 14)]
        assert np.mean(values) == pytest.approx(OWID_FACTORS["DE"], rel=0.25)

    def test_fossil_grids_swing_more(self):
        provider = ElectricityMapsProvider(seed=3)
        def relative_swing(zone):
            values = np.array([provider.factor(zone, t * 3600.0).value for t in range(24 * 7)])
            return values.std() / values.mean()
        assert relative_swing("PL") > relative_swing("NO")

    def test_rate_limit(self):
        provider = ElectricityMapsProvider(seed=1, rate_limit_per_hour=3)
        for _ in range(3):
            provider.factor("FR", now=100.0)
        with pytest.raises(ProviderError, match="rate limit"):
            provider.factor("FR", now=200.0)
        # next hour window resets the budget
        assert provider.factor("FR", now=3700.0).value > 0


class TestRegistry:
    def test_fallback_chain(self):
        registry = ProviderRegistry()
        registry.register(RTEProvider(available=False))
        registry.register(OWIDProvider())
        factor = registry.factor("FR", now=0.0)
        assert factor.provider == "owid"

    def test_first_provider_wins_when_available(self):
        registry = ProviderRegistry()
        registry.register(RTEProvider(seed=1))
        registry.register(OWIDProvider())
        assert registry.factor("FR", now=0.0).provider == "rte"

    def test_no_provider_raises_with_details(self):
        registry = ProviderRegistry()
        registry.register(RTEProvider())
        with pytest.raises(ProviderError, match="rte"):
            registry.factor("DE", now=0.0)

    def test_duplicate_provider_rejected(self):
        registry = ProviderRegistry()
        registry.register(OWIDProvider())
        with pytest.raises(ProviderError):
            registry.register(OWIDProvider())

    def test_all_factors_for_comparison(self):
        registry = ProviderRegistry()
        registry.register(RTEProvider(seed=1))
        registry.register(ElectricityMapsProvider(seed=1))
        registry.register(OWIDProvider())
        factors = registry.all_factors("FR", now=0.0)
        assert {f.provider for f in factors} == {"rte", "electricity_maps", "owid"}


class TestCalculator:
    def make_registry(self):
        registry = ProviderRegistry()
        registry.register(OWIDProvider())
        return registry

    def test_point_conversion(self):
        calc = EmissionsCalculator(self.make_registry(), "FR")
        grams = calc.emissions_g(3.6e6, at=0.0)  # 1 kWh
        assert grams == pytest.approx(OWID_FACTORS["FR"])

    def test_integration_constant_power(self):
        calc = EmissionsCalculator(self.make_registry(), "FR")
        ts = np.arange(0, 3601.0, 60.0)
        pw = np.full_like(ts, 1000.0)  # 1 kW for 1 h = 1 kWh
        assert calc.integrate(ts, pw) == pytest.approx(OWID_FACTORS["FR"], rel=1e-6)

    def test_integration_respects_time_varying_factor(self):
        registry = ProviderRegistry()
        registry.register(RTEProvider(seed=1))
        calc = EmissionsCalculator(registry, "FR")
        ts = np.arange(0, 86400.0, 900.0)
        pw = np.full_like(ts, 1000.0)
        static = EmissionsCalculator(self.make_registry(), "FR").integrate(ts, pw)
        dynamic = calc.integrate(ts, pw)
        assert dynamic != pytest.approx(static, rel=0.01)

    def test_mismatched_arrays_rejected(self):
        calc = EmissionsCalculator(self.make_registry(), "FR")
        with pytest.raises(ValueError):
            calc.integrate(np.arange(3.0), np.arange(4.0))

    def test_short_series_is_zero(self):
        calc = EmissionsCalculator(self.make_registry(), "FR")
        assert calc.integrate(np.array([0.0]), np.array([100.0])) == 0.0

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0, max_value=1e6))
    def test_emissions_proportional_to_energy_property(self, joules):
        calc = EmissionsCalculator(self.make_registry(), "DE")
        assert calc.emissions_g(joules, 0.0) == pytest.approx(
            joules / 3.6e6 * OWID_FACTORS["DE"], rel=1e-9, abs=1e-12
        )


class TestCollectorAndExporter:
    def make_registry(self):
        registry = ProviderRegistry()
        registry.register(RTEProvider(seed=1))
        registry.register(OWIDProvider())
        return registry

    def test_collector_exports_all_and_resolved(self):
        collector = EmissionsCollector(self.make_registry(), "FR")
        families = collector.collect(now=0.0)
        points = families[0].points
        providers = {p.labels["provider"] for p in points}
        assert providers == {"rte", "owid", "resolved"}
        resolved = [p for p in points if p.labels["provider"] == "resolved"][0]
        rte = [p for p in points if p.labels["provider"] == "rte"][0]
        assert resolved.value == rte.value  # RTE preferred for FR

    def test_exporter_scrapeable(self):
        exporter = EmissionsExporter(self.make_registry(), "FR", SimClock(start=0.0))
        response = exporter.app.get("/metrics")
        families = exposition.parse(response.body.decode())
        assert families[0].name == "ceems_emissions_gCo2_kWh"
        assert len(families[0].points) == 3
