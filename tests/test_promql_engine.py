"""Tests for the PromQL evaluation engine."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import QueryError
from repro.tsdb.model import Labels
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.storage import TSDB


def mk(name: str, **labels: str) -> Labels:
    return Labels({"__name__": name, **labels})


@pytest.fixture
def db() -> TSDB:
    """Counters and gauges for two jobs on one node, 15 s cadence."""
    db = TSDB()
    for i in range(101):
        t = i * 15.0
        db.append(mk("cpu_total", uuid="j1", instance="n1"), t, 0.9 * t)
        db.append(mk("cpu_total", uuid="j2", instance="n1"), t, 0.3 * t)
        db.append(mk("node_cpu", instance="n1"), t, 1.25 * t)
        db.append(mk("power", instance="n1"), t, 500.0)
        db.append(mk("power", instance="n2"), t, 300.0)
    return db


@pytest.fixture
def engine(db) -> PromQLEngine:
    return PromQLEngine(db)


class TestSelectors:
    def test_instant_selector(self, engine):
        result = engine.query("power", at=1500.0)
        assert {el.labels.get("instance"): el.value for el in result.vector} == {
            "n1": 500.0,
            "n2": 300.0,
        }

    def test_selector_keeps_metric_name(self, engine):
        result = engine.query("power", at=1500.0)
        assert all(el.labels.metric_name == "power" for el in result.vector)

    def test_label_filter(self, engine):
        result = engine.query('power{instance="n2"}', at=1500.0)
        assert len(result.vector) == 1 and result.vector[0].value == 300.0

    def test_lookback_window(self, engine):
        # samples end at t=1500; within 5m lookback they are visible
        assert len(engine.query("power", at=1500.0 + 299).vector) == 2
        assert len(engine.query("power", at=1500.0 + 301).vector) == 0

    def test_offset(self, engine):
        result = engine.query('cpu_total{uuid="j1"} offset 5m', at=1500.0)
        assert result.vector[0].value == pytest.approx(0.9 * 1200.0)

    def test_scalar_literal(self, engine):
        result = engine.query("42", at=0.0)
        assert result.is_scalar and result.scalar == 42.0

    def test_range_selector_alone_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.query("power[5m]", at=1500.0)


class TestRateFamily:
    def test_rate_of_linear_counter(self, engine):
        result = engine.query('rate(cpu_total{uuid="j1"}[5m])', at=1500.0)
        assert result.vector[0].value == pytest.approx(0.9, rel=1e-6)

    def test_rate_drops_metric_name(self, engine):
        result = engine.query('rate(cpu_total{uuid="j1"}[5m])', at=1500.0)
        assert result.vector[0].labels.metric_name == ""

    def test_increase_is_rate_times_range(self, engine):
        result = engine.query('increase(cpu_total{uuid="j1"}[5m])', at=1500.0)
        assert result.vector[0].value == pytest.approx(0.9 * 300.0, rel=1e-6)

    def test_rate_handles_counter_reset(self):
        db = TSDB()
        labels = mk("c")
        values = [0, 100, 200, 50, 150]  # reset after 200
        for i, v in enumerate(values):
            db.append(labels, i * 15.0, float(v))
        engine = PromQLEngine(db)
        result = engine.query("increase(c[1m])", at=60.0)
        # true increase: 200 + 150 = 350 over 60s window (extrapolated)
        assert result.vector[0].value == pytest.approx(350.0, rel=0.15)

    def test_irate_uses_last_two_samples(self, engine):
        result = engine.query('irate(cpu_total{uuid="j2"}[5m])', at=1500.0)
        assert result.vector[0].value == pytest.approx(0.3, rel=1e-6)

    def test_rate_needs_two_samples(self):
        db = TSDB()
        db.append(mk("c"), 0.0, 1.0)
        engine = PromQLEngine(db)
        assert engine.query("rate(c[5m])", at=0.0).vector == []

    def test_delta_on_gauge(self):
        db = TSDB()
        labels = mk("g")
        for i in range(11):
            db.append(labels, i * 10.0, 100.0 - i * 5.0)
        engine = PromQLEngine(db)
        result = engine.query("delta(g[100s])", at=100.0)
        assert result.vector[0].value == pytest.approx(-50.0, rel=0.1)

    def test_deriv_least_squares(self):
        db = TSDB()
        labels = mk("g")
        for i in range(11):
            db.append(labels, i * 10.0, 3.0 * (i * 10.0) + 7)
        engine = PromQLEngine(db)
        result = engine.query("deriv(g[100s])", at=100.0)
        assert result.vector[0].value == pytest.approx(3.0, rel=1e-9)

    def test_changes_and_resets(self):
        db = TSDB()
        labels = mk("c")
        for i, v in enumerate([1, 1, 2, 0, 5]):
            db.append(labels, i * 10.0, float(v))
        engine = PromQLEngine(db)
        assert engine.query("changes(c[1m])", at=40.0).vector[0].value == 3.0
        assert engine.query("resets(c[1m])", at=40.0).vector[0].value == 1.0


class TestOverTime:
    def setup_method(self):
        self.db = TSDB()
        labels = mk("g")
        for i, v in enumerate([1.0, 5.0, 3.0, 9.0, 2.0]):
            self.db.append(labels, i * 10.0, v)
        self.engine = PromQLEngine(self.db)

    def test_avg_over_time(self):
        assert self.engine.query("avg_over_time(g[1m])", at=40.0).vector[0].value == 4.0

    def test_minmax_over_time(self):
        assert self.engine.query("min_over_time(g[1m])", at=40.0).vector[0].value == 1.0
        assert self.engine.query("max_over_time(g[1m])", at=40.0).vector[0].value == 9.0

    def test_sum_count_last(self):
        assert self.engine.query("sum_over_time(g[1m])", at=40.0).vector[0].value == 20.0
        assert self.engine.query("count_over_time(g[1m])", at=40.0).vector[0].value == 5.0
        assert self.engine.query("last_over_time(g[1m])", at=40.0).vector[0].value == 2.0

    def test_quantile_over_time(self):
        result = self.engine.query("quantile_over_time(0.5, g[1m])", at=40.0)
        assert result.vector[0].value == 3.0

    def test_stddev_over_time(self):
        result = self.engine.query("stddev_over_time(g[1m])", at=40.0)
        assert result.vector[0].value == pytest.approx(np.std([1, 5, 3, 9, 2]))

    def test_present_over_time(self):
        assert self.engine.query("present_over_time(g[1m])", at=40.0).vector[0].value == 1.0


class TestAggregations:
    def test_sum(self, engine):
        result = engine.query("sum(power)", at=1500.0)
        assert result.vector[0].value == 800.0
        assert result.vector[0].labels == Labels()

    def test_sum_by(self, engine):
        result = engine.query("sum by (instance) (power)", at=1500.0)
        assert {el.labels.get("instance"): el.value for el in result.vector} == {
            "n1": 500.0,
            "n2": 300.0,
        }

    def test_avg_min_max_count(self, engine):
        assert engine.query("avg(power)", at=1500.0).vector[0].value == 400.0
        assert engine.query("min(power)", at=1500.0).vector[0].value == 300.0
        assert engine.query("max(power)", at=1500.0).vector[0].value == 500.0
        assert engine.query("count(power)", at=1500.0).vector[0].value == 2.0

    def test_without(self, engine):
        result = engine.query("sum without (uuid) (cpu_total)", at=1500.0)
        assert len(result.vector) == 1
        assert result.vector[0].labels.get("instance") == "n1"
        assert result.vector[0].value == pytest.approx(1.2 * 1500.0)

    def test_topk(self, engine):
        result = engine.query("topk(1, power)", at=1500.0)
        assert len(result.vector) == 1
        assert result.vector[0].labels.get("instance") == "n1"

    def test_bottomk(self, engine):
        result = engine.query("bottomk(1, power)", at=1500.0)
        assert result.vector[0].labels.get("instance") == "n2"

    def test_quantile(self, engine):
        result = engine.query("quantile(0.5, power)", at=1500.0)
        assert result.vector[0].value == 400.0

    def test_stddev(self, engine):
        result = engine.query("stddev(power)", at=1500.0)
        assert result.vector[0].value == pytest.approx(100.0)


class TestBinaryOps:
    def test_vector_scalar_arithmetic(self, engine):
        result = engine.query("power * 2", at=1500.0)
        assert sorted(el.value for el in result.vector) == [600.0, 1000.0]

    def test_scalar_vector(self, engine):
        result = engine.query("1000 - power", at=1500.0)
        assert sorted(el.value for el in result.vector) == [500.0, 700.0]

    def test_arithmetic_drops_name(self, engine):
        result = engine.query("power + 0", at=1500.0)
        assert all(el.labels.metric_name == "" for el in result.vector)

    def test_one_to_one_matching(self, engine):
        result = engine.query(
            'cpu_total{uuid="j1"} / ignoring(uuid) node_cpu', at=1500.0
        )
        assert result.vector[0].value == pytest.approx(0.9 / 1.25)

    def test_on_matching_keeps_only_on_labels(self, engine):
        result = engine.query('cpu_total{uuid="j1"} / on(instance) node_cpu', at=1500.0)
        assert result.vector[0].labels == Labels({"instance": "n1"})

    def test_group_left_many_to_one(self, engine):
        result = engine.query("cpu_total / on(instance) group_left() node_cpu", at=1500.0)
        values = {el.labels.get("uuid"): el.value for el in result.vector}
        assert values["j1"] == pytest.approx(0.72)
        assert values["j2"] == pytest.approx(0.24)

    def test_group_right_mirrors_group_left(self, engine):
        result = engine.query("node_cpu * on(instance) group_right() cpu_total", at=1500.0)
        values = {el.labels.get("uuid"): el.value for el in result.vector}
        assert values["j1"] == pytest.approx(1.25 * 1500 * 0.9 * 1500)

    def test_group_left_include_copies_label(self):
        db = TSDB()
        db.append(mk("child", instance="n1", uuid="j"), 0.0, 2.0)
        db.append(mk("parent", instance="n1", role="gpu"), 0.0, 3.0)
        engine = PromQLEngine(db)
        result = engine.query("child * on(instance) group_left(role) parent", at=0.0)
        assert result.vector[0].labels.get("role") == "gpu"
        assert result.vector[0].value == 6.0

    def test_many_to_many_rejected(self, engine):
        with pytest.raises(QueryError, match="many-to-many"):
            engine.query("cpu_total + on(instance) cpu_total", at=1500.0)

    def test_unmatched_elements_dropped(self, engine):
        result = engine.query('power * on(instance) node_cpu', at=1500.0)
        assert len(result.vector) == 1  # n2 has no node_cpu

    def test_comparison_filters(self, engine):
        result = engine.query("power > 400", at=1500.0)
        assert len(result.vector) == 1
        assert result.vector[0].labels.metric_name == "power"  # name kept
        assert result.vector[0].value == 500.0

    def test_comparison_bool(self, engine):
        result = engine.query("power > bool 400", at=1500.0)
        values = {el.labels.get("instance"): el.value for el in result.vector}
        assert values == {"n1": 1.0, "n2": 0.0}

    def test_scalar_comparison_requires_bool(self, engine):
        with pytest.raises(QueryError):
            engine.query("1 > 2", at=0.0)
        assert engine.query("1 > bool 2", at=0.0).scalar == 0.0

    def test_division_by_zero_vector(self):
        db = TSDB()
        db.append(mk("a"), 0.0, 1.0)
        db.append(mk("z"), 0.0, 0.0)
        engine = PromQLEngine(db)
        result = engine.query("a / ignoring() z", at=0.0)
        assert math.isinf(result.vector[0].value)

    def test_and_or_unless(self, engine):
        both = engine.query("power and power", at=1500.0)
        assert len(both.vector) == 2
        neither = engine.query("power unless power", at=1500.0)
        assert neither.vector == []
        merged = engine.query('power{instance="n1"} or power', at=1500.0)
        assert len(merged.vector) == 2

    def test_unary_minus_on_vector(self, engine):
        result = engine.query("-power", at=1500.0)
        assert sorted(el.value for el in result.vector) == [-500.0, -300.0]


class TestFunctions:
    def test_clamp_family(self, engine):
        result = engine.query("clamp_max(power, 400)", at=1500.0)
        assert sorted(el.value for el in result.vector) == [300.0, 400.0]
        result = engine.query("clamp(power, 350, 450)", at=1500.0)
        assert sorted(el.value for el in result.vector) == [350.0, 450.0]

    def test_math_functions(self, engine):
        result = engine.query("sqrt(power)", at=1500.0)
        assert sorted(el.value for el in result.vector) == pytest.approx(
            [math.sqrt(300), math.sqrt(500)]
        )

    def test_scalar_and_vector_conversion(self, engine):
        assert engine.query('scalar(power{instance="n1"})', at=1500.0).scalar == 500.0
        assert math.isnan(engine.query("scalar(power)", at=1500.0).scalar)  # 2 series
        result = engine.query("vector(7)", at=0.0)
        assert result.vector[0].value == 7.0

    def test_time(self, engine):
        assert engine.query("time()", at=123.0).scalar == 123.0

    def test_absent(self, engine):
        assert engine.query("absent(power)", at=1500.0).vector == []
        result = engine.query('absent(missing_metric{uuid="9"})', at=1500.0)
        assert result.vector[0].value == 1.0
        assert result.vector[0].labels.get("uuid") == "9"

    def test_sort(self, engine):
        values = [el.value for el in engine.query("sort(power)", at=1500.0).vector]
        assert values == [300.0, 500.0]
        values = [el.value for el in engine.query("sort_desc(power)", at=1500.0).vector]
        assert values == [500.0, 300.0]

    def test_label_replace(self, engine):
        result = engine.query(
            'label_replace(power, "host", "$1", "instance", "(n.)")', at=1500.0
        )
        hosts = {el.labels.get("host") for el in result.vector}
        assert hosts == {"n1", "n2"}

    def test_label_replace_no_match_keeps_element(self, engine):
        result = engine.query(
            'label_replace(power, "host", "$1", "instance", "(zzz)")', at=1500.0
        )
        assert len(result.vector) == 2
        assert all("host" not in el.labels for el in result.vector)

    def test_label_join(self, engine):
        result = engine.query(
            'label_join(power, "combined", "-", "instance", "__name__")', at=1500.0
        )
        combined = {el.labels.get("combined") for el in result.vector}
        assert combined == {"n1-power", "n2-power"}

    def test_round(self, engine):
        result = engine.query("round(power / 7, 0.1)", at=1500.0)
        for el in result.vector:
            assert el.value == pytest.approx(round(el.value, 1))


class TestRangeQueries:
    def test_range_of_gauge(self, engine):
        result = engine.query_range("power", 0.0, 150.0, 15.0)
        assert len(result.series) == 2
        for _labels, (ts, vs) in result.series.items():
            assert len(ts) == 11

    def test_range_of_expression(self, engine):
        result = engine.query_range("sum(power)", 0.0, 60.0, 30.0)
        (_labels, (ts, vs)), = result.series.items()
        assert vs.tolist() == [800.0, 800.0, 800.0]

    def test_range_of_scalar(self, engine):
        result = engine.query_range("1 + 1", 0.0, 30.0, 15.0)
        (_labels, (ts, vs)), = result.series.items()
        assert vs.tolist() == [2.0, 2.0, 2.0]

    def test_bad_step_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.query_range("power", 0.0, 100.0, 0.0)
        with pytest.raises(QueryError):
            engine.query_range("power", 100.0, 0.0, 10.0)

    def test_timestamps_are_aligned(self, engine):
        result = engine.query_range("power", 0.0, 45.0, 15.0)
        for _labels, (ts, _vs) in result.series.items():
            assert ts.tolist() == [0.0, 15.0, 30.0, 45.0]


class TestStaleness:
    def test_stale_marker_ends_series_in_instant_queries(self):
        db = TSDB()
        labels = mk("m", uuid="gone")
        db.append(labels, 0.0, 5.0)
        db.append(labels, 15.0, 5.0)
        db.append(labels, 30.0, math.nan)  # stale
        engine = PromQLEngine(db)
        assert len(engine.query("m", at=20.0).vector) == 1
        assert engine.query("m", at=35.0).vector == []

    def test_rate_ignores_stale_markers(self):
        db = TSDB()
        labels = mk("c")
        for i in range(5):
            db.append(labels, i * 15.0, i * 10.0)
        db.append(labels, 75.0, math.nan)
        engine = PromQLEngine(db)
        result = engine.query("rate(c[2m])", at=75.0)
        # Window [-45, 75] holds samples 0..40 at t=0..60 (NaN dropped).
        # Counter starts at 0, so the zero-point rule forbids start
        # extrapolation; end gap (15 s) is fully extrapolated:
        # delta 40 * (60+0+15)/60 = 50 over the 120 s window.
        assert result.vector[0].value == pytest.approx(50.0 / 120.0, rel=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2, max_size=30
    )
)
def test_aggregation_consistency_property(values):
    """sum/avg/count over a vector agree with numpy on the same data."""
    db = TSDB()
    for i, v in enumerate(values):
        db.append(mk("m", series=str(i)), 0.0, v)
    engine = PromQLEngine(db)
    assert engine.query("sum(m)", at=0.0).vector[0].value == pytest.approx(sum(values), rel=1e-9, abs=1e-6)
    assert engine.query("avg(m)", at=0.0).vector[0].value == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
    assert engine.query("count(m)", at=0.0).vector[0].value == len(values)
    assert engine.query("max(m)", at=0.0).vector[0].value == max(values)
    assert engine.query("min(m)", at=0.0).vector[0].value == min(values)
