"""Tests for the SLURM / OpenStack / Kubernetes resource managers."""

import pytest

from repro.common.errors import SimulationError
from repro.hwsim import NodeSpec, SimulatedNode
from repro.resourcemgr import (
    JobSpec,
    KubernetesCluster,
    OpenStackCluster,
    PodSpec,
    ServerSpec,
    SlurmCluster,
    UnitState,
    WorkloadGenerator,
    WorkloadMix,
)
from repro.resourcemgr.openstack import DEFAULT_FLAVORS
from repro.resourcemgr.workload import SizeClass


def make_slurm(n_cpu: int = 2, n_gpu: int = 1) -> SlurmCluster:
    cpu = [SimulatedNode(NodeSpec(name=f"c{i}"), seed=i) for i in range(n_cpu)]
    gpu = [
        SimulatedNode(NodeSpec(name=f"g{i}", gpus=("A100",) * 4, memory_gb=384, dram_profile="ddr4-384g"), seed=10 + i)
        for i in range(n_gpu)
    ]
    return SlurmCluster("test", {"cpu": cpu, "gpu": gpu})


def job(ncores=4, duration=600.0, walltime=None, **kwargs) -> JobSpec:
    return JobSpec(
        user=kwargs.pop("user", "alice"),
        account=kwargs.pop("account", "proj1"),
        ncores=ncores,
        memory_bytes=kwargs.pop("memory_bytes", 8 * 2**30),
        walltime=walltime if walltime is not None else duration * 2,
        duration=duration,
        **kwargs,
    )


class TestSlurmLifecycle:
    def test_submit_then_schedule(self):
        cluster = make_slurm()
        job_id = cluster.submit(job(), now=0.0)
        unit = cluster.get_unit(job_id)
        assert unit.state is UnitState.PENDING
        cluster.step(now=30.0)
        unit = cluster.get_unit(job_id)
        assert unit.state is UnitState.RUNNING
        assert unit.started_at == 30.0
        assert len(unit.nodelist) == 1

    def test_cgroup_created_on_start(self):
        cluster = make_slurm()
        job_id = cluster.submit(job(), now=0.0)
        cluster.step(now=30.0)
        unit = cluster.get_unit(job_id)
        node = cluster.nodes[unit.nodelist[0]]
        assert node.cgroupfs.exists(f"/system.slice/slurmstepd.scope/job_{job_id}")

    def test_completion(self):
        cluster = make_slurm()
        job_id = cluster.submit(job(duration=100.0), now=0.0)
        cluster.step(now=30.0)
        cluster.step(now=200.0)
        unit = cluster.get_unit(job_id)
        assert unit.state is UnitState.COMPLETED
        assert unit.exit_code == 0
        assert unit.ended_at == pytest.approx(130.0)
        node = cluster.nodes[unit.nodelist[0]]
        assert not node.cgroupfs.exists(f"/system.slice/slurmstepd.scope/job_{job_id}")

    def test_timeout(self):
        cluster = make_slurm()
        job_id = cluster.submit(job(duration=1000.0, walltime=100.0), now=0.0)
        cluster.step(now=0.0)
        cluster.step(now=200.0)
        unit = cluster.get_unit(job_id)
        assert unit.state is UnitState.TIMEOUT
        assert unit.exit_code == 1

    def test_cancel_pending(self):
        cluster = make_slurm(n_cpu=1, n_gpu=0)
        # fill the cluster so the job stays pending
        blocker = cluster.submit(job(ncores=40, duration=5000.0), now=0.0)
        cluster.step(now=0.0)
        job_id = cluster.submit(job(ncores=40), now=1.0)
        cluster.step(now=2.0)
        assert cluster.get_unit(job_id).state is UnitState.PENDING
        cluster.cancel(job_id, now=3.0)
        assert cluster.get_unit(job_id).state is UnitState.CANCELLED
        del blocker

    def test_cancel_running(self):
        cluster = make_slurm()
        job_id = cluster.submit(job(duration=5000.0), now=0.0)
        cluster.step(now=0.0)
        cluster.cancel(job_id, now=100.0)
        unit = cluster.get_unit(job_id)
        assert unit.state is UnitState.CANCELLED
        assert unit.exit_code == 130

    def test_cancel_unknown_raises(self):
        with pytest.raises(SimulationError):
            make_slurm().cancel("999", now=0.0)

    def test_gpu_job_gets_devices(self):
        cluster = make_slurm()
        job_id = cluster.submit(job(ncores=8, ngpus=2, partition="gpu"), now=0.0)
        cluster.step(now=0.0)
        unit = cluster.get_unit(job_id)
        node = cluster.nodes[unit.nodelist[0]]
        assert node.tasks[job_id].gpu_indices == (0, 1)

    def test_multinode_job(self):
        cluster = make_slurm(n_cpu=3)
        job_id = cluster.submit(job(ncores=40, nnodes=2), now=0.0)
        cluster.step(now=0.0)
        unit = cluster.get_unit(job_id)
        assert len(unit.nodelist) == 2
        for name in unit.nodelist:
            assert cluster.nodes[name].cgroupfs.exists(
                f"/system.slice/slurmstepd.scope/job_{job_id}"
            )
        assert unit.cpus == 80

    def test_fifo_queueing_when_full(self):
        cluster = make_slurm(n_cpu=1, n_gpu=0)
        first = cluster.submit(job(ncores=40, duration=500.0), now=0.0)
        second = cluster.submit(job(ncores=40, duration=500.0), now=1.0)
        cluster.step(now=10.0)
        assert cluster.get_unit(first).state is UnitState.RUNNING
        assert cluster.get_unit(second).state is UnitState.PENDING
        assert cluster.queue_depth == 1
        cluster.step(now=600.0)  # first finishes, second starts
        assert cluster.get_unit(first).state is UnitState.COMPLETED
        assert cluster.get_unit(second).state is UnitState.RUNNING

    def test_unknown_partition_rejected(self):
        with pytest.raises(SimulationError):
            make_slurm().submit(job(partition="bigmem"), now=0.0)

    def test_bad_specs_rejected(self):
        with pytest.raises(SimulationError):
            JobSpec(user="u", account="a", ncores=0, memory_bytes=1, walltime=10, duration=5)
        with pytest.raises(SimulationError):
            JobSpec(user="u", account="a", ncores=1, memory_bytes=1, walltime=0, duration=5)


class TestSacct:
    def test_time_window_query(self):
        cluster = make_slurm()
        early = cluster.submit(job(duration=100.0), now=0.0)
        cluster.step(now=0.0)
        cluster.step(now=150.0)  # early done at 100
        late = cluster.submit(job(duration=100.0), now=1000.0)
        cluster.step(now=1000.0)
        units = cluster.sacct(0.0, 500.0)
        assert [u.uuid for u in units] == [early]
        units = cluster.sacct(0.0, 2000.0)
        assert {u.uuid for u in units} == {early, late}

    def test_user_filter(self):
        cluster = make_slurm()
        a = cluster.submit(job(user="alice"), now=0.0)
        b = cluster.submit(job(user="bob"), now=0.0)
        cluster.step(now=0.0)
        assert [u.uuid for u in cluster.sacct(0, 100, user="alice")] == [a]
        del b

    def test_running_units_included(self):
        cluster = make_slurm()
        job_id = cluster.submit(job(duration=10000.0), now=0.0)
        cluster.step(now=0.0)
        units = cluster.sacct(500.0, 600.0)
        assert [u.uuid for u in units] == [job_id]


class TestOpenStack:
    def make(self, n=2):
        nodes = [SimulatedNode(NodeSpec(name=f"os{i}"), seed=i) for i in range(n)]
        return OpenStackCluster("cloud", nodes)

    def test_create_server_places_vm(self):
        cloud = self.make()
        uuid = cloud.create_server(ServerSpec(user="alice", project="t1"), now=0.0)
        unit = cloud.get_unit(uuid)
        assert unit.state is UnitState.RUNNING
        assert unit.manager == "openstack"
        node = cloud.nodes[unit.nodelist[0]]
        assert any("machine-qemu" in c.path for c in node.cgroupfs.leaves())

    def test_flavor_sizing(self):
        cloud = self.make()
        uuid = cloud.create_server(ServerSpec(user="a", project="t", flavor="m1.xlarge"), now=0.0)
        unit = cloud.get_unit(uuid)
        assert unit.cpus == DEFAULT_FLAVORS["m1.xlarge"].vcpus

    def test_unknown_flavor_rejected(self):
        with pytest.raises(SimulationError):
            self.make().create_server(ServerSpec(user="a", project="t", flavor="m9"), now=0.0)

    def test_spread_scheduling(self):
        cloud = self.make(n=2)
        first = cloud.create_server(ServerSpec(user="a", project="t"), now=0.0)
        second = cloud.create_server(ServerSpec(user="a", project="t"), now=1.0)
        assert cloud.get_unit(first).nodelist != cloud.get_unit(second).nodelist

    def test_delete_server(self):
        cloud = self.make()
        uuid = cloud.create_server(ServerSpec(user="a", project="t"), now=0.0)
        cloud.delete_server(uuid, now=100.0)
        unit = cloud.get_unit(uuid)
        assert unit.state is UnitState.COMPLETED
        assert unit.ended_at == 100.0
        with pytest.raises(SimulationError):
            cloud.delete_server(uuid, now=101.0)

    def test_capacity_exhaustion(self):
        nodes = [SimulatedNode(NodeSpec(name="tiny", sockets=1, cores_per_socket=4), seed=1)]
        cloud = OpenStackCluster("small", nodes)
        cloud.create_server(ServerSpec(user="a", project="t", flavor="m1.small"), now=0.0)
        cloud.create_server(ServerSpec(user="a", project="t", flavor="m1.small"), now=0.0)
        with pytest.raises(SimulationError, match="no valid host"):
            cloud.create_server(ServerSpec(user="a", project="t", flavor="m1.large"), now=0.0)

    def test_list_servers_by_project(self):
        cloud = self.make()
        cloud.create_server(ServerSpec(user="a", project="t1"), now=0.0)
        cloud.create_server(ServerSpec(user="b", project="t2"), now=1.0)
        assert len(cloud.list_servers(project="t1")) == 1
        assert len(cloud.list_servers()) == 2


class TestKubernetes:
    def make(self, n=2):
        nodes = [SimulatedNode(NodeSpec(name=f"k{i}"), seed=i) for i in range(n)]
        return KubernetesCluster("kube", nodes)

    def test_pod_cgroup_path_by_qos(self):
        kube = self.make()
        uid = kube.create_pod(PodSpec(user="a", namespace="ml", qos="guaranteed"), now=0.0)
        unit = kube.get_unit(uid)
        node = kube.nodes[unit.nodelist[0]]
        paths = [c.path for c in node.cgroupfs.leaves()]
        assert any("kubepods-guaranteed-pod" in p for p in paths)

    def test_bad_qos_rejected(self):
        with pytest.raises(SimulationError):
            PodSpec(user="a", namespace="x", qos="platinum")

    def test_batch_pod_completes(self):
        kube = self.make()
        uid = kube.create_pod(PodSpec(user="a", namespace="ml", duration=100.0), now=0.0)
        kube.step(now=150.0)
        assert kube.get_unit(uid).state is UnitState.COMPLETED

    def test_service_pod_runs_until_deleted(self):
        kube = self.make()
        uid = kube.create_pod(PodSpec(user="a", namespace="web"), now=0.0)
        kube.step(now=1e6)
        assert kube.get_unit(uid).state is UnitState.RUNNING
        kube.delete_pod(uid, now=1e6)
        assert kube.get_unit(uid).state is UnitState.CANCELLED

    def test_namespace_is_project(self):
        kube = self.make()
        kube.create_pod(PodSpec(user="a", namespace="ml"), now=0.0)
        kube.create_pod(PodSpec(user="b", namespace="web"), now=0.0)
        assert len(kube.list_pods(namespace="ml")) == 1


class TestWorkloadGenerator:
    def test_deterministic_per_seed(self):
        a = WorkloadGenerator(seed=5)
        b = WorkloadGenerator(seed=5)
        for _ in range(10):
            ja, jb = a.sample_job(), b.sample_job()
            assert (ja.user, ja.ncores, ja.duration) == (jb.user, jb.ncores, jb.duration)

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(seed=1)
        b = WorkloadGenerator(seed=2)
        jobs_a = [(a.sample_job().duration) for _ in range(5)]
        jobs_b = [(b.sample_job().duration) for _ in range(5)]
        assert jobs_a != jobs_b

    def test_user_project_stable(self):
        gen = WorkloadGenerator(seed=3)
        for _ in range(50):
            job = gen.sample_job()
            assert job.account == gen.user_project(job.user)

    def test_zipf_skew(self):
        """Few users dominate submissions."""
        gen = WorkloadGenerator(WorkloadMix(mean_interarrival=1.0), seed=7)
        users = [gen.sample_job().user for _ in range(500)]
        from collections import Counter

        counts = Counter(users).most_common()
        assert counts[0][1] > 5 * counts[-1][1]

    def test_durations_bounded(self):
        mix = WorkloadMix(max_duration=3600.0)
        gen = WorkloadGenerator(mix, seed=1)
        for _ in range(100):
            job = gen.sample_job()
            assert 60.0 <= job.duration <= 3600.0
            assert job.walltime == pytest.approx(job.duration * mix.walltime_factor)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WorkloadMix(sizes=(SizeClass("a", weight=0.5, ncores=1),))

    def test_submit_stream(self):
        cluster = make_slurm()
        gen = WorkloadGenerator(WorkloadMix(mean_interarrival=60.0), seed=9)
        ids = gen.submit_stream(cluster, 0.0, 3600.0)
        assert len(ids) > 20
        assert cluster.jobs_submitted == len(ids)

    def test_gpu_jobs_request_gpus(self):
        mix = WorkloadMix(
            sizes=(SizeClass("gpu", weight=1.0, ncores=4, ngpus=2, partition="gpu"),)
        )
        gen = WorkloadGenerator(mix, seed=1)
        job = gen.sample_job()
        assert job.ngpus == 2 and job.partition == "gpu"
        assert job.profile.gpu_base > 0


class TestNodeFailure:
    def test_jobs_on_failed_node_fail(self):
        cluster = make_slurm()
        job_id = cluster.submit(job(duration=5000.0), now=0.0)
        cluster.step(now=0.0)
        node = cluster.get_unit(job_id).nodelist[0]
        affected = cluster.fail_node(node, now=100.0)
        assert affected == [job_id]
        unit_record = cluster.get_unit(job_id)
        assert unit_record.state is UnitState.FAILED
        assert unit_record.exit_code == 1
        assert node in cluster.down_nodes

    def test_down_node_excluded_from_scheduling(self):
        cluster = make_slurm(n_cpu=1, n_gpu=0)
        cluster.fail_node("c0", now=0.0)
        job_id = cluster.submit(job(), now=1.0)
        cluster.step(now=30.0)
        assert cluster.get_unit(job_id).state is UnitState.PENDING
        cluster.resume_node("c0")
        cluster.step(now=60.0)
        assert cluster.get_unit(job_id).state is UnitState.RUNNING

    def test_requeue_resubmits(self):
        cluster = make_slurm()
        job_id = cluster.submit(job(duration=5000.0), now=0.0)
        cluster.step(now=0.0)
        node = cluster.get_unit(job_id).nodelist[0]
        cluster.fail_node(node, now=100.0, requeue=True)
        cluster.step(now=130.0)
        # a fresh job id is running on a surviving node
        running = cluster.active_units()
        assert len(running) == 1
        assert running[0].uuid != job_id
        assert running[0].nodelist[0] != node

    def test_multinode_job_dies_with_any_node(self):
        cluster = make_slurm(n_cpu=3)
        job_id = cluster.submit(job(ncores=40, nnodes=2, duration=5000.0), now=0.0)
        cluster.step(now=0.0)
        nodes = cluster.get_unit(job_id).nodelist
        cluster.fail_node(nodes[1], now=50.0)
        assert cluster.get_unit(job_id).state is UnitState.FAILED
        # the surviving node's resources are freed
        assert cluster.nodes[nodes[0]].can_fit(40)

    def test_unknown_node_rejected(self):
        with pytest.raises(SimulationError):
            make_slurm().fail_node("ghost", now=0.0)


class TestDiurnalModulation:
    def test_flat_by_default(self):
        gen = WorkloadGenerator(seed=1)
        assert gen.arrival_intensity(0.0) == 1.0
        assert gen.arrival_intensity(50000.0) == 1.0

    def test_peak_at_14h_trough_at_2h(self):
        gen = WorkloadGenerator(WorkloadMix(diurnal_amplitude=0.6), seed=1)
        assert gen.arrival_intensity(14 * 3600.0) == pytest.approx(1.6)
        assert gen.arrival_intensity(2 * 3600.0) == pytest.approx(0.4)

    def test_daytime_gets_more_submissions(self):
        mix = WorkloadMix(mean_interarrival=60.0, diurnal_amplitude=0.8)
        gen = WorkloadGenerator(mix, seed=5)
        cluster = make_slurm(n_cpu=8, n_gpu=0)
        ids = gen.submit_stream(cluster, 0.0, 2 * 86400.0)
        day, night = 0, 0
        for unit_record in cluster.list_units(0, 2 * 86400.0):
            hour = (unit_record.created_at % 86400.0) / 3600.0
            if 9 <= hour < 19:
                day += 1
            elif hour < 5 or hour >= 23:
                night += 1
        # 10 day-hours vs 7 night-hours, but the rate ratio dominates
        assert day > 2.0 * night
        del ids
