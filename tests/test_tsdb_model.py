"""Tests for the TSDB data model (labels, matchers)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tsdb.model import (
    METRIC_NAME_LABEL,
    Labels,
    Matcher,
    MatchOp,
    match_all,
)


class TestLabels:
    def test_metric_name(self):
        labels = Labels({"__name__": "up", "job": "ceems"})
        assert labels.metric_name == "up"

    def test_equality_is_order_independent(self):
        assert Labels({"a": "1", "b": "2"}) == Labels({"b": "2", "a": "1"})
        assert hash(Labels({"a": "1", "b": "2"})) == hash(Labels({"b": "2", "a": "1"}))

    def test_invalid_label_name_rejected(self):
        with pytest.raises(ValueError):
            Labels({"not-valid": "x"})
        with pytest.raises(ValueError):
            Labels({"0start": "x"})

    def test_colons_allowed_in_metric_name_only(self):
        Labels({"__name__": "ceems:unit:power"})  # ok
        with pytest.raises(ValueError):
            Labels({"a:b": "x"})

    def test_non_string_value_rejected(self):
        with pytest.raises(ValueError):
            Labels({"a": 5})  # type: ignore[dict-item]

    def test_get_and_contains(self):
        labels = Labels({"a": "1"})
        assert labels.get("a") == "1"
        assert labels.get("z", "dflt") == "dflt"
        assert "a" in labels and "z" not in labels

    def test_drop_keep_without_name(self):
        labels = Labels({"__name__": "m", "a": "1", "b": "2"})
        assert labels.without_name() == Labels({"a": "1", "b": "2"})
        assert labels.drop("a") == Labels({"__name__": "m", "b": "2"})
        assert labels.keep(["a"]) == Labels({"a": "1"})

    def test_with_name_and_merge(self):
        labels = Labels({"a": "1"})
        named = labels.with_name("metric")
        assert named.metric_name == "metric"
        merged = labels.merge({"b": "2"})
        assert merged == Labels({"a": "1", "b": "2"})

    def test_str_rendering(self):
        labels = Labels({"__name__": "up", "job": "x"})
        assert str(labels) == 'up{job="x"}'
        assert str(Labels({"__name__": "up"})) == "up"

    def test_iteration_sorted(self):
        labels = Labels({"z": "1", "a": "2"})
        assert [k for k, _ in labels] == ["a", "z"]


class TestMatchers:
    def test_eq(self):
        m = Matcher.eq("job", "ceems")
        assert m.matches(Labels({"job": "ceems"}))
        assert not m.matches(Labels({"job": "other"}))
        assert not m.matches(Labels({}))

    def test_neq(self):
        m = Matcher("job", MatchOp.NEQ, "ceems")
        assert not m.matches(Labels({"job": "ceems"}))
        assert m.matches(Labels({"job": "other"}))
        assert m.matches(Labels({}))  # absent label != value

    def test_regex_fully_anchored(self):
        m = Matcher.re("uuid", "12")
        assert m.matches(Labels({"uuid": "12"}))
        assert not m.matches(Labels({"uuid": "123"}))  # anchored

    def test_regex_alternation(self):
        m = Matcher.re("uuid", "a|b")
        assert m.matches(Labels({"uuid": "a"}))
        assert m.matches(Labels({"uuid": "b"}))
        assert not m.matches(Labels({"uuid": "c"}))

    def test_nre(self):
        m = Matcher("uuid", MatchOp.NRE, "1.*")
        assert not m.matches(Labels({"uuid": "123"}))
        assert m.matches(Labels({"uuid": "456"}))

    def test_name_eq_helper(self):
        m = Matcher.name_eq("up")
        assert m.name == METRIC_NAME_LABEL
        assert m.matches(Labels({"__name__": "up"}))

    def test_match_all(self):
        labels = Labels({"__name__": "up", "job": "x", "instance": "n1"})
        assert match_all([Matcher.name_eq("up"), Matcher.eq("job", "x")], labels)
        assert not match_all([Matcher.name_eq("up"), Matcher.eq("job", "y")], labels)

    def test_str(self):
        assert str(Matcher.re("a", "b.*")) == 'a=~"b.*"'


@given(
    st.dictionaries(
        st.from_regex(r"[a-z_][a-z0-9_]{0,8}", fullmatch=True),
        st.text(min_size=0, max_size=10),
        max_size=5,
    )
)
def test_labels_roundtrip_property(mapping):
    labels = Labels(mapping)
    assert labels.as_dict() == mapping
    assert Labels(labels.as_dict()) == labels
