"""Shared builders for the benchmark harness.

Benchmarks regenerate the paper's tables/figures/claims (see
DESIGN.md's experiment index).  Expensive deployments are built once
per module via session fixtures; the timed sections are the
operations whose cost the paper talks about.
"""

from __future__ import annotations

import pytest

from repro.cluster import StackSimulation, small_topology
from repro.cluster.simulation import SimulationConfig
from repro.resourcemgr.workload import SizeClass, WorkloadMix

BENCH_MIX = WorkloadMix(
    mean_interarrival=150.0,
    duration_mu=7.0,
    sizes=(
        SizeClass("small", weight=0.55, ncores=4, memory_gb=8),
        SizeClass("medium", weight=0.30, ncores=16, memory_gb=32),
        SizeClass("gpu", weight=0.15, ncores=8, ngpus=1, memory_gb=64, partition="gpu"),
    ),
)


@pytest.fixture(scope="session")
def bench_sim() -> StackSimulation:
    """A 2-hour small deployment shared by dashboard/LB benches."""
    sim = StackSimulation(
        small_topology(cpu_nodes=3, gpu_nodes=1),
        SimulationConfig(seed=7, update_interval=600.0),
        workload=BENCH_MIX,
    )
    sim.run(2 * 3600)
    return sim


def heaviest_user(sim: StackSimulation) -> str:
    usage = sim.ceems_datasource("admin").global_usage()
    return max(usage, key=lambda r: r["num_units"])["user"]
