"""Benchmark harness (one module per paper experiment)."""
