"""E19 — serving: the query frontend under closed-loop dashboard load.

The paper's deployment serves Grafana dashboards for a whole HPC
center through one LB → Prometheus path; every refresh used to
re-evaluate full long-range PromQL queries with zero reuse across the
users staring at the same panels.  PR 10 adds the query frontend
(range splitting, step-aligned results cache, settled-response memo,
single-flight coalescing, worker-pool admission) between the LB and
the backends.

Methodology.  One simulated deployment (2 h of cluster life) backs
two complete serving paths over the *same* PromQL backends:

* **direct** — an LB wired straight to the backends (the pre-PR-10
  path);
* **frontend** — the LB dispatching query paths through the frontend.

The workload replays the shipped Grafana panel queries (extracted
from the provisioning bundle, ``$job`` bound to a live unit) as
long-range ``query_range`` dashboard refreshes.  Two window shapes:

* **settled** — the window ends at ``now - freshness`` (completed-job
  detail pages, capacity reviews, anything a user reopens): entirely
  immutable history, so repeats are served from the frontend's caches
  with zero backend evaluations.  This is the guarded workload.
* **live** — the window ends at ``now``: the uncacheable tail
  re-evaluates every refresh, so the frontend can only save the
  history prefix.  Reported, not guarded.

Hundreds of closed-loop users (one thread each, next request only
after the previous answer) hammer both paths; per-request latencies
and wall-clock throughput are recorded.

Guards (hard asserts, CI-enforced):

* every frontend response — cold, split, warm, settled, live — is
  byte-identical to the direct path (the differential contract);
* warm p50 speedup ``>= MIN_WARM_P50_SPEEDUP`` (issue target: 3x) on
  repeated settled dashboard queries — the cache serves everything,
  identical in-flight requests coalesce;
* cold-path single-query aggregate latency ratio ``<=
  MAX_COLD_SLOWDOWN`` (1.05x): one user asking once must not pay for
  the machinery.

Cycles interleave direct/frontend so machine-load drift hits both
alike; best-of per cycle.  Numbers land in ``BENCH_serving.json``.
Reduced CI configuration via ``BENCH_SERVING_USERS`` /
``BENCH_SERVING_REQUESTS`` / ``BENCH_SERVING_CYCLES``.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
import urllib.parse

import pytest

from repro.cluster import StackSimulation, small_topology
from repro.cluster.simulation import SimulationConfig
from repro.dashboard.grafana_json import export_provisioning_bundle
from repro.frontend import QueryFrontend
from repro.frontend.cache import DEFAULT_FRESHNESS
from repro.lb.authz import DBAuthorizer
from repro.lb.server import LoadBalancer
from repro.lb.strategies import Backend

from benchmarks.conftest import BENCH_MIX

ARTIFACT_PATH = "BENCH_serving.json"

USERS = int(os.environ.get("BENCH_SERVING_USERS", "200"))
REQUESTS_PER_USER = int(os.environ.get("BENCH_SERVING_REQUESTS", "5"))
COLD_CYCLES = int(os.environ.get("BENCH_SERVING_CYCLES", "5"))

#: Dashboard refresh shape: a 100-step trailing window of the 2 h
#: history (kept inside one day-split bucket so the cold guard
#: measures frontend overhead, not the cost of a genuine 2-way split).
RANGE_SECONDS = 6000.0
STEP = 60.0

#: Hard guards.
MIN_WARM_P50_SPEEDUP = 3.0
MAX_COLD_SLOWDOWN = 1.05

ADMIN = {"x-grafana-user": "admin"}


@pytest.fixture(scope="module")
def serving_sim() -> StackSimulation:
    sim = StackSimulation(
        small_topology(cpu_nodes=3, gpu_nodes=1),
        SimulationConfig(
            seed=7,
            update_interval=600.0,
            frontend=True,
            # Big enough pools that neither path 503s under the
            # thread herd — this bench measures latency, not shedding.
            frontend_max_inflight=64,
            frontend_queue_timeout=60.0,
            max_concurrent_queries=512,
            probe_interval=0,
        ),
        workload=BENCH_MIX,
    )
    sim.run(2 * 3600)
    return sim


def panel_queries(sim: StackSimulation) -> list[str]:
    """Every PromQL expression the shipped dashboards would fire,
    with ``$job`` bound to a unit that actually ran."""
    uuids = sim.prom_apis[0].app.get(
        "/api/v1/label/uuid/values", headers=ADMIN
    ).decode_json()["data"]
    uuid = uuids[len(uuids) // 2]
    bundle = json.loads(export_provisioning_bundle())
    queries: list[str] = []
    for key, dashboard in bundle.items():
        if key == "datasources":
            continue
        for panel in dashboard.get("panels", []):
            for target in panel.get("targets", []):
                expr = target.get("expr")
                if expr:
                    queries.append(expr.replace("$job", uuid))
    # Stable dedup, preserving dashboard order.
    return list(dict.fromkeys(queries))


def refresh_urls(
    sim: StackSimulation, queries: list[str], end_offset: float = 0.0
) -> list[str]:
    end = sim.clock.now() - end_offset
    return [
        "/api/v1/query_range?"
        + urllib.parse.urlencode(
            {"query": q, "start": end - RANGE_SECONDS, "end": end, "step": STEP}
        )
        for q in queries
    ]


def direct_lb(sim: StackSimulation) -> LoadBalancer:
    """The pre-frontend serving path over the same backends."""
    backends = [Backend(name=api.app.name, app=api.app) for api in sim.prom_apis]
    return LoadBalancer(
        backends,
        DBAuthorizer(sim.db, admin_users=("admin",)),
        slow_request_ms=-1.0,
    )


def clear_frontend(frontend: QueryFrontend) -> None:
    frontend.cache.clear()
    frontend.memo.clear()


def closed_loop(
    app, urls: list[str], users: int, requests_per_user: int
) -> tuple[list[float], float]:
    """Each user thread issues its next request only after the
    previous one answered; returns per-request latencies + wall time."""
    latencies: list[list[float]] = [[] for _ in range(users)]
    failures: list[str] = []

    def worker(uid: int) -> None:
        for i in range(requests_per_user):
            url = urls[(uid + i) % len(urls)]
            started = time.perf_counter()
            response = app.get(url, headers=ADMIN)
            latencies[uid].append(time.perf_counter() - started)
            if response.status != 200:
                failures.append(f"{response.status} on {url[:80]}")

    threads = [
        threading.Thread(target=worker, args=(uid,), name=f"user-{uid}")
        for uid in range(users)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - started
    assert not failures, failures[:5]
    return [lat for per_user in latencies for lat in per_user], wall


def percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def test_serving_frontend_speedup(serving_sim):
    sim = serving_sim
    queries = panel_queries(sim)
    settled_urls = refresh_urls(sim, queries, end_offset=DEFAULT_FRESHNESS)
    live_urls = refresh_urls(sim, queries)
    frontend = sim.frontend
    direct = direct_lb(sim)

    # -- differential parity: cold, then warm, every panel query,
    #    both window shapes ------------------------------------------
    for urls in (settled_urls, live_urls):
        clear_frontend(frontend)
        for url in urls:
            reference = direct.app.get(url, headers=ADMIN).body
            assert sim.lb.app.get(url, headers=ADMIN).body == reference, url
            assert sim.lb.app.get(url, headers=ADMIN).body == reference, url

    # -- and across split boundaries (15-min split of the same range) -
    split_fe = QueryFrontend(
        [Backend(name=a.app.name, app=a.app) for a in sim.prom_apis],
        split_interval=900.0,
        clock=sim.clock,
    )
    for url in settled_urls + live_urls:
        reference = direct.app.get(url, headers=ADMIN).body
        assert split_fe.app.get(url, headers=ADMIN).body == reference, url
        assert split_fe.app.get(url, headers=ADMIN).body == reference, url
    assert split_fe.split_requests > 0

    # -- cold guard: one user, one query, nothing cached --------------
    # Interleaved best-of; the aggregate over the panel set must stay
    # within MAX_COLD_SLOWDOWN of the direct path.
    direct_best = [math.inf] * len(settled_urls)
    frontend_best = [math.inf] * len(settled_urls)
    for _cycle in range(COLD_CYCLES):
        for i, url in enumerate(settled_urls):
            started = time.perf_counter()
            direct.app.get(url, headers=ADMIN)
            direct_best[i] = min(direct_best[i], time.perf_counter() - started)
            clear_frontend(frontend)
            started = time.perf_counter()
            sim.lb.app.get(url, headers=ADMIN)
            frontend_best[i] = min(frontend_best[i], time.perf_counter() - started)
    cold_ratio = sum(frontend_best) / sum(direct_best)

    # -- closed-loop load: hundreds of users refreshing settled
    #    dashboards (the guarded workload) ----------------------------
    direct_lat, direct_wall = closed_loop(
        direct.app, settled_urls, USERS, REQUESTS_PER_USER
    )
    clear_frontend(frontend)
    coalesced_before = frontend.single_flight.coalesced
    frontend_lat, frontend_wall = closed_loop(
        sim.lb.app, settled_urls, USERS, REQUESTS_PER_USER
    )
    coalesced = frontend.single_flight.coalesced - coalesced_before

    direct_p50 = percentile(direct_lat, 0.50)
    frontend_p50 = percentile(frontend_lat, 0.50)
    p50_speedup = direct_p50 / frontend_p50

    # -- live-tail refreshes: reported, not guarded -------------------
    # The tail window re-evaluates on every request by design (the
    # freshness contract), so the frontend can only save the history
    # prefix here.
    live_direct = []
    live_frontend = []
    clear_frontend(frontend)
    for url in live_urls:  # warm the prefix once
        sim.lb.app.get(url, headers=ADMIN)
    for url in live_urls:
        started = time.perf_counter()
        direct.app.get(url, headers=ADMIN)
        live_direct.append(time.perf_counter() - started)
        started = time.perf_counter()
        sim.lb.app.get(url, headers=ADMIN)
        live_frontend.append(time.perf_counter() - started)

    report = {
        "users": USERS,
        "requests_per_user": REQUESTS_PER_USER,
        "panel_queries": len(settled_urls),
        "range_seconds": RANGE_SECONDS,
        "step_seconds": STEP,
        "cold_cycles": COLD_CYCLES,
        "cold_direct_seconds": sum(direct_best),
        "cold_frontend_seconds": sum(frontend_best),
        "cold_ratio": cold_ratio,
        "direct": {
            "p50_ms": direct_p50 * 1e3,
            "p95_ms": percentile(direct_lat, 0.95) * 1e3,
            "p99_ms": percentile(direct_lat, 0.99) * 1e3,
            "wall_seconds": direct_wall,
            "requests_per_second": len(direct_lat) / direct_wall,
        },
        "frontend": {
            "p50_ms": frontend_p50 * 1e3,
            "p95_ms": percentile(frontend_lat, 0.95) * 1e3,
            "p99_ms": percentile(frontend_lat, 0.99) * 1e3,
            "wall_seconds": frontend_wall,
            "requests_per_second": len(frontend_lat) / frontend_wall,
            "coalesced_requests": coalesced,
            "cache": frontend.cache.stats(),
            "memo_hits": frontend.memo.hits,
            "memo_bytes": frontend.memo.total_bytes,
            "split_subqueries": frontend.subqueries,
        },
        "live_tail": {
            "direct_warm_seconds": sum(live_direct),
            "frontend_warm_seconds": sum(live_frontend),
            "warm_ratio": sum(live_frontend) / sum(live_direct),
        },
        "p50_speedup": p50_speedup,
        "throughput_speedup": (len(frontend_lat) / frontend_wall)
        / (len(direct_lat) / direct_wall),
        "min_warm_p50_speedup_guard": MIN_WARM_P50_SPEEDUP,
        "max_cold_slowdown_guard": MAX_COLD_SLOWDOWN,
    }
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
    print(
        f"\n[serving] users={USERS} queries={len(settled_urls)} "
        f"direct-p50={direct_p50 * 1e3:.2f}ms "
        f"frontend-p50={frontend_p50 * 1e3:.2f}ms "
        f"speedup={p50_speedup:.1f}x cold-ratio={cold_ratio:.3f} "
        f"coalesced={coalesced}"
    )

    assert p50_speedup >= MIN_WARM_P50_SPEEDUP, report
    assert cold_ratio <= MAX_COLD_SLOWDOWN, report
