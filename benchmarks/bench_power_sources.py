"""E11 — RAPL vs IPMI as energy sources (paper §II.A.b).

The paper's trade-off: RAPL counters are available at microsecond
granularity but only cover CPU/DRAM; IPMI covers the whole node but
*"is not suitable to use at a high frequency"* (slow BMC sampling).

We drive one node with a bursty workload (30 s power bursts), read
both sensors at a sweep of sampling intervals, and report each
source's error against ground truth: RAPL tracks the fast transients
IPMI misses; IPMI sees the platform/GPU power RAPL cannot.  The timed
sections are the sensor reads themselves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hwsim import NodeSpec, SimulatedNode, UsageProfile
from repro.hwsim.rapl import RAPLDomain


def bursty_node(seed: int = 9) -> SimulatedNode:
    node = SimulatedNode(NodeSpec(name="burst"), seed=seed)
    node.place_task(
        "1",
        "/system.slice/slurmstepd.scope/job_1",
        32,
        64 * 2**30,
        UsageProfile(cpu_base=0.5, cpu_amplitude=0.45, cpu_period=60.0, mem_base=0.4),
        0.0,
    )
    return node


def simulate(node: SimulatedNode, seconds: float, dt: float = 1.0):
    """Step the node, recording ground truth + sensor views at dt."""
    times, truth_cpu_dram, truth_total = [], [], []
    rapl_reads, ipmi_reads = [], []
    t = 0.0
    while t < seconds:
        t += dt
        bd = node.advance(t, dt)
        times.append(t)
        truth_cpu_dram.append(bd.rapl_visible_w)
        truth_total.append(bd.total_w)
        rapl_reads.append(sum(p.package.energy_uj + (p.dram.energy_uj if p.dram else 0) for p in node.rapl))
        ipmi_reads.append(node.ipmi.read(t).current_watts)
    return (
        np.array(times),
        np.array(truth_cpu_dram),
        np.array(truth_total),
        np.array(rapl_reads, dtype=np.float64),
        np.array(ipmi_reads, dtype=np.float64),
    )


@pytest.mark.parametrize("interval", [1, 15, 60])
def test_source_error_vs_sampling_interval(benchmark, interval):
    node = bursty_node()
    times, truth_cd, truth_total, rapl_uj, ipmi_w = simulate(node, 600.0)

    # subsample at the scrape interval and reconstruct power
    idx = np.arange(0, len(times), interval)
    t_s = times[idx]
    rapl_power = np.diff(rapl_uj[idx]) / 1e6 / np.diff(t_s)
    ipmi_power = ipmi_w[idx][1:]
    truth_cd_avg = np.array(
        [truth_cd[a:b].mean() for a, b in zip(idx[:-1], idx[1:])]
    )
    truth_total_avg = np.array(
        [truth_total[a:b].mean() for a, b in zip(idx[:-1], idx[1:])]
    )

    rapl_rms = float(np.sqrt(np.mean((rapl_power - truth_cd_avg) ** 2)))
    ipmi_rms = float(np.sqrt(np.mean((ipmi_power - truth_total_avg) ** 2)))
    coverage_gap = float(np.mean(truth_total_avg - truth_cd_avg))
    print(
        f"\n[E11] interval {interval:3d} s: RAPL RMS {rapl_rms:6.1f} W (vs cpu+dram truth), "
        f"IPMI RMS {ipmi_rms:6.1f} W (vs total truth); "
        f"RAPL blind spot {coverage_gap:.0f} W (platform power)"
    )
    benchmark.extra_info["rapl_rms_w"] = rapl_rms
    benchmark.extra_info["ipmi_rms_w"] = ipmi_rms
    benchmark.extra_info["rapl_blind_spot_w"] = coverage_gap

    # RAPL energy counters integrate exactly: their window-average
    # error stays small at every interval.
    assert rapl_rms < 10.0
    # The structural gap RAPL cannot see (platform) is large.
    assert coverage_gap > 50.0

    # the timed section: the sensor reads themselves
    def read_both():
        node.ipmi.read(600.0)
        return [p.sysfs_entries() for p in node.rapl]

    benchmark(read_both)


def test_ipmi_misses_fast_transients():
    """At 1 s BMC sampling + noise, IPMI cannot follow 60 s bursts as
    faithfully as RAPL's exact counters do."""
    node = bursty_node()
    times, truth_cd, truth_total, rapl_uj, ipmi_w = simulate(node, 600.0)
    # per-second RAPL power vs per-second truth
    rapl_power = np.diff(rapl_uj) / 1e6 / np.diff(times)
    rapl_err = np.sqrt(np.mean((rapl_power - truth_cd[1:]) ** 2))
    ipmi_rel = np.sqrt(np.mean(((ipmi_w - truth_total) / truth_total) ** 2))
    rapl_rel = rapl_err / truth_cd.mean()
    print(f"\n[E11] 1 s cadence: RAPL relative RMS {rapl_rel * 100:.2f}% "
          f"vs IPMI relative RMS {ipmi_rel * 100:.2f}% (sensor noise + staleness)")
    assert rapl_rel < ipmi_rel


def test_rapl_wraparound_handled_over_long_runs(benchmark):
    """A multi-hour window wraps the package counter several times;
    wrap-corrected deltas still reconstruct the true energy."""
    domain = RAPLDomain(name="package-0", max_energy_range_uj=262_143_328)  # tiny: wraps often
    true_joules = 0.0
    reads = []
    for _step in range(2000):
        domain.add_energy(1.7)
        true_joules += 1.7
        reads.append(domain.energy_uj)

    def reconstruct():
        total = 0
        for prev, curr in zip(reads, reads[1:]):
            total += RAPLDomain.counter_delta(prev, curr, domain.max_energy_range_uj)
        return total / 1e6

    recovered = benchmark(reconstruct)
    wraps = int(true_joules * 1e6 // domain.max_energy_range_uj)
    print(f"\n[E11] {wraps} counter wraps over the run; "
          f"recovered {recovered:.1f} J of {true_joules:.1f} J true")
    assert recovered == pytest.approx(true_joules - 1.7, abs=2.0)
