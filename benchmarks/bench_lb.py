"""E9 — the CEEMS load balancer: access-control overhead and balancing.

The LB's value is access control; its cost is the per-request query
introspection + ownership check.  We measure: a direct backend query,
the same query through the LB (both authz modes), and the balancing
fairness of both strategies under concurrent-ish load.
"""

from __future__ import annotations

import urllib.parse

import pytest

from repro.apiserver.api import APIServer
from repro.lb import APIAuthorizer, Backend, DBAuthorizer, LoadBalancer

QUERY_PATH = "/api/v1/query"


@pytest.fixture(scope="module")
def env(bench_sim):
    row = bench_sim.db.list_units(limit=1)[0]
    promql = urllib.parse.quote(f'ceems:compute_unit:power_watts{{uuid="{row["uuid"]}"}}')
    url = f"{QUERY_PATH}?query={promql}&time={bench_sim.now}"
    headers = {"x-grafana-user": row["user"]}
    return {"sim": bench_sim, "url": url, "headers": headers, "user": row["user"]}


def test_direct_backend_query(benchmark, env):
    backend_app = env["sim"].prom_apis[0].app
    response = benchmark(backend_app.get, env["url"], headers=env["headers"])
    assert response.ok


def test_via_lb_db_authz(benchmark, env):
    lb_app = env["sim"].lb.app
    response = benchmark(lb_app.get, env["url"], headers=env["headers"])
    assert response.ok
    print(f"\n[E9] LB (direct-DB authz) adds introspection+ownership check per query")


def test_via_lb_api_authz(benchmark, env):
    """The fallback mode: ownership via an API-server HTTP round trip."""
    sim = env["sim"]
    api = APIServer(sim.db)
    backends = [Backend(a.app.name, a.app) for a in sim.prom_apis]
    lb = LoadBalancer(backends, APIAuthorizer(api.app))
    response = benchmark(lb.app.get, env["url"], headers=env["headers"])
    assert response.ok


def test_denied_query_cost(benchmark, env):
    """Denials are cheap: no backend round trip happens."""
    lb_app = env["sim"].lb.app
    response = benchmark(lb_app.get, env["url"], headers={"x-grafana-user": "intruder"})
    assert response.status == 403


def test_round_robin_fairness(benchmark, env):
    """Round-robin spreads sequential traffic exactly evenly."""
    sim = env["sim"]
    backends = [Backend(f"prom-{i}", sim.prom_apis[i % len(sim.prom_apis)].app) for i in range(4)]
    lb = LoadBalancer(backends, DBAuthorizer(sim.db), strategy="round-robin")

    def burst():
        for _ in range(40):
            lb.app.get(env["url"], headers=env["headers"])

    benchmark.pedantic(burst, rounds=3, iterations=1)
    counts = [b.total_requests for b in backends]
    print(f"\n[E9] round-robin: requests per backend = {counts}")
    benchmark.extra_info["per_backend"] = counts
    assert max(counts) == min(counts)


def test_least_connection_adapts_to_slow_backend(benchmark, env):
    """Least-connection steers traffic away from busy backends.

    Concurrency is modelled by pinning long-lived in-flight requests
    on some backends (a slow dashboard query occupying a replica);
    sequential traffic must then prefer the idle replicas — the exact
    behaviour round-robin lacks.
    """
    sim = env["sim"]
    backends = [Backend(f"prom-{i}", sim.prom_apis[i % len(sim.prom_apis)].app) for i in range(4)]
    lb = LoadBalancer(backends, DBAuthorizer(sim.db), strategy="least-connection")
    # Two stuck long queries on prom-0, one on prom-1.
    backends[0].acquire()
    backends[0].acquire()
    backends[1].acquire()

    def burst():
        for _ in range(30):
            lb.app.get(env["url"], headers=env["headers"])

    benchmark.pedantic(burst, rounds=3, iterations=1)
    counts = [b.total_requests - c for b, c in zip(backends, (2, 1, 0, 0))]
    print(f"\n[E9] least-connection with busy prom-0/prom-1: "
          f"requests per backend = {counts}")
    benchmark.extra_info["per_backend"] = counts
    # idle replicas take the bulk of the traffic
    assert counts[2] + counts[3] > counts[0] + counts[1]
