"""E3 / E4 / E5 — regenerate the data behind the paper's Fig. 2.

Fig. 2a: a user's aggregate usage stats; Fig. 2b: the user's job list
with per-job aggregates; Fig. 2c: time-series CPU metrics of one job.
Each bench prints the regenerated panel and times its data path
(API-server reads for 2a/2b, an LB-authorized range query for 2c).
"""

from __future__ import annotations

from benchmarks.conftest import heaviest_user
from repro.dashboard import (
    fig2a_user_overview,
    fig2b_job_list,
    fig2c_job_timeseries,
)


def test_fig2a_aggregate_usage(benchmark, bench_sim):
    user = heaviest_user(bench_sim)
    ceems = bench_sim.ceems_datasource(user)

    panels = benchmark(fig2a_user_overview, ceems)

    print(f"\n[E3/Fig.2a] aggregate usage of {user}:")
    for panel in panels:
        print(f"  {panel.render()}")
    by_title = {p.title: p for p in panels}
    benchmark.extra_info["total_energy_joules"] = by_title["Total energy"].value
    benchmark.extra_info["emissions_g"] = by_title["Emissions"].value
    assert by_title["Total energy"].value > 0
    assert by_title["Emissions"].value > 0


def test_fig2b_job_list(benchmark, bench_sim):
    user = heaviest_user(bench_sim)
    ceems = bench_sim.ceems_datasource(user)

    panel = benchmark(fig2b_job_list, ceems, None, 10)

    print(f"\n[E4/Fig.2b] job list of {user}:")
    print(panel.render())
    benchmark.extra_info["rows"] = len(panel.rows)
    assert panel.rows


def test_fig2c_job_timeseries(benchmark, bench_sim):
    user = heaviest_user(bench_sim)
    ceems = bench_sim.ceems_datasource(user)
    finished = [u for u in ceems.units() if u["state"] == "completed" and u["elapsed"] > 900]
    if not finished:
        finished = [u for u in ceems.units() if u["elapsed"] > 900]
    job = finished[0]
    prom = bench_sim.prometheus_datasource(user)

    panel = benchmark(
        fig2c_job_timeseries, prom, job["uuid"], job["started_at"],
        job["ended_at"] or bench_sim.now, 60.0
    )

    print(f"\n[E5/Fig.2c] time series of job {job['uuid']} ({job['name']}):")
    print(panel.render())
    summary = panel.summary()
    benchmark.extra_info["series"] = len(summary)
    assert "cpu_cores_used" in summary
    assert summary["cpu_cores_used"]["max"] <= job["cpus"] + 0.5
