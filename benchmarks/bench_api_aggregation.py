"""E8 — why the API server exists: long-range aggregates.

Paper §II.B.b: *"Although Prometheus is a highly performant TSDB, it
is not suitable to make queries that span a long duration.  An
example of such a query can be the total energy usage of a given user
or a project on a given cluster for all the workloads during the last
year."*

We materialise one year of recorded per-unit power (300 units, 20
users) at Thanos's 1-hour downsampled resolution, then answer the
same question three ways:

1. raw PromQL over the TSDB: a year-long ``sum_over_time`` range
   aggregation per query;
2. the same query over 5m-resolution data (more points — worse);
3. the CEEMS API server: one indexed SQLite rollup lookup.

The paper's claim reproduces as an orders-of-magnitude gap.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apiserver.api import APIServer
from repro.apiserver.db import Database
from repro.resourcemgr.base import ComputeUnit, UnitState
from repro.tsdb.model import Labels
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.storage import TSDB

YEAR = 365 * 86400.0
NUNITS = 300
NUSERS = 20
STEP_1H = 3600.0


@pytest.fixture(scope="module")
def year_env():
    rng = np.random.default_rng(7)
    tsdb_1h = TSDB(name="thanos-1h")
    db = Database()
    units = []
    ts_grid = np.arange(0.0, YEAR, STEP_1H)
    user_energy: dict[str, float] = {}
    for i in range(NUNITS):
        uuid = str(2000 + i)
        user = f"user{i % NUSERS:03d}"
        start = float(rng.uniform(0, YEAR * 0.9))
        duration = float(rng.uniform(3600, 14 * 86400))
        end = min(start + duration, YEAR)
        power = float(rng.uniform(50, 800))
        labels = Labels({"__name__": "ceems:compute_unit:power_watts", "uuid": uuid, "user": user})
        window = ts_grid[(ts_grid >= start) & (ts_grid <= end)]
        for t in window:
            tsdb_1h.append(labels, float(t), power)
        energy = power * max(end - start, 0.0)
        user_energy[user] = user_energy.get(user, 0.0) + energy
        units.append(
            ComputeUnit(
                uuid=uuid, name=f"job-{uuid}", manager="slurm", cluster="jz",
                user=user, project=f"proj{i % 7}", created_at=start,
                started_at=start, ended_at=end, state=UnitState.COMPLETED,
                cpus=8, memory_bytes=2**33,
            )
        )
    db.upsert_units(units, now=YEAR)
    # fold the energy into unit records the way the updater does
    class U:
        def __init__(self, e):
            self.energy_joules = e
            self.emissions_g = e / 3.6e6 * 56
            self.avg_power_watts = 0.0
            self.avg_cpu_usage = 0.0
            self.avg_memory_bytes = 0.0
            self.peak_memory_bytes = 0.0
            self.avg_gpu_power_watts = 0.0

    per_unit = {}
    for i in range(NUNITS):
        uuid = str(2000 + i)
        series = tsdb_1h.select([__import__("repro.tsdb.model", fromlist=["Matcher"]).Matcher.eq("uuid", uuid)])
        total = sum(float(np.sum(np.asarray(s.values)) * STEP_1H) for s in series)
        per_unit[uuid] = U(total)
    db.add_unit_usage("jz", per_unit, now=YEAR)
    db.rebuild_usage_rollups("jz", now=YEAR)
    return {"tsdb_1h": tsdb_1h, "db": db, "user_energy": user_energy}


def test_raw_tsdb_year_query(benchmark, year_env):
    """PromQL over 1h-downsampled data: the 'fast' raw path."""
    engine = PromQLEngine(year_env["tsdb_1h"])
    query = 'sum by (user) (sum_over_time(ceems:compute_unit:power_watts{user="user000"}[366d])) * 3600'

    result = benchmark(engine.query, query, YEAR)

    energy = result.vector[0].value
    print(f"\n[E8] raw year query (1h resolution): user000 = {energy / 3.6e6:.1f} kWh")
    benchmark.extra_info["samples_scanned"] = year_env["tsdb_1h"].num_samples
    assert energy == pytest.approx(year_env["user_energy"]["user000"], rel=0.05)


def test_api_server_rollup_lookup(benchmark, year_env):
    """The CEEMS answer: one indexed read of the usage table."""
    api = APIServer(year_env["db"])

    def lookup():
        response = api.app.get(
            "/api/v1/users/user000/usage", headers={"x-grafana-user": "user000"}
        )
        return sum(r["total_energy_joules"] for r in response.decode_json()["data"])

    energy = benchmark(lookup)
    print(f"\n[E8] API-server rollup lookup: user000 = {energy / 3.6e6:.1f} kWh")
    assert energy == pytest.approx(year_env["user_energy"]["user000"], rel=0.05)


@pytest.fixture(scope="module")
def year_5m(year_env):
    """One user's units re-materialised at Thanos 5m resolution.

    The realistic raw path: CEEMS series carry no ``user`` label (the
    unit→user mapping lives only in the API server's DB), so a raw
    per-user query must enumerate the user's uuids in a regex matcher
    and scan twelve times more points than the 1h resolution.
    """
    tsdb_5m = TSDB(name="thanos-5m")
    uuids = []
    for series in year_env["tsdb_1h"].all_series():
        if series.labels.get("user") != "user000":
            continue
        uuids.append(series.labels.get("uuid"))
        labels = series.labels.drop("user")
        ts = np.asarray(series.timestamps)
        vs = np.asarray(series.values)
        for t, v in zip(ts.tolist(), vs.tolist()):
            for sub in range(12):
                tsdb_5m.append(labels, t + sub * 300.0, v)
    return {"tsdb": tsdb_5m, "uuids": uuids}


def test_raw_tsdb_year_query_5m(benchmark, year_env, year_5m):
    """The realistic raw path: uuid-regex over 5m-resolution data."""
    engine = PromQLEngine(year_5m["tsdb"])
    selector = "|".join(year_5m["uuids"])
    query = (
        f'sum(sum_over_time(ceems:compute_unit:power_watts{{uuid=~"{selector}"}}[367d])) * 300'
    )

    result = benchmark(engine.query, query, YEAR + 3600.0)

    energy = result.vector[0].value
    print(f"\n[E8] raw year query (5m resolution, uuid regex): "
          f"user000 = {energy / 3.6e6:.1f} kWh over "
          f"{year_5m['tsdb'].num_samples} samples")
    benchmark.extra_info["samples_scanned"] = year_5m["tsdb"].num_samples
    assert energy == pytest.approx(year_env["user_energy"]["user000"], rel=0.05)


def test_speedup_summary(benchmark, year_env, year_5m):
    """Head-to-head: identical answers, orders-of-magnitude apart."""
    import time

    engine_1h = PromQLEngine(year_env["tsdb_1h"])
    engine_5m = PromQLEngine(year_5m["tsdb"])
    api = APIServer(year_env["db"])
    selector = "|".join(year_5m["uuids"])

    t0 = time.perf_counter()
    engine_5m.query(
        f'sum(sum_over_time(ceems:compute_unit:power_watts{{uuid=~"{selector}"}}[367d])) * 300',
        YEAR + 3600.0,
    )
    raw_5m_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    engine_1h.query(
        'sum(sum_over_time(ceems:compute_unit:power_watts{user="user000"}[366d])) * 3600',
        YEAR,
    )
    raw_1h_s = time.perf_counter() - t0

    def lookup():
        return api.app.get(
            "/api/v1/users/user000/usage", headers={"x-grafana-user": "user000"}
        )

    benchmark(lookup)
    api_s = benchmark.stats.stats.mean

    print(f"\n[E8] year-long per-user energy query (identical answers):")
    print(f"  raw TSDB, 5m resolution:   {raw_5m_s * 1000:9.2f} ms")
    print(f"  raw TSDB, 1h downsampled:  {raw_1h_s * 1000:9.2f} ms")
    print(f"  CEEMS API server rollup:   {api_s * 1000:9.2f} ms")
    print(f"  speedup vs 5m raw: {raw_5m_s / api_s:,.0f}x — the paper's case "
          f"for the API server")
    benchmark.extra_info["raw_5m_ms"] = raw_5m_s * 1000
    benchmark.extra_info["raw_1h_ms"] = raw_1h_s * 1000
    benchmark.extra_info["speedup_vs_5m"] = raw_5m_s / api_s
    assert raw_5m_s / api_s > 20.0
