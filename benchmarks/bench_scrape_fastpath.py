"""E17 — scrape fast lane: steady-state ingest speedup at Jean-Zay scale.

The paper's deployment story is one stack scraping all of Jean-Zay
(>1400 nodes).  PR 5 gives the ingest path a Prometheus-style fast
lane: per-target scrape caches resolve each raw sample line straight
to an interned ``Labels`` + series ref and samples are applied through
the batched append-by-ref API.

Methodology — what is timed.  In the real deployment the exporters
run on the compute nodes; the scrape manager's cost per cycle is
parsing 1,869 payloads and appending ~77k samples.  The in-process
simulation would otherwise charge every exporter's collect+render to
the scrape cycle, drowning the manager-side work this PR optimises.
So, like Prometheus's own ``BenchmarkScrapeLoopAppend``, each cycle
snapshots every target's payload once (untimed — that work happens on
remote nodes) and then times each mode's *ingest* of the identical
bodies: parse, cache resolution, append, staleness.  Because both
managers consume byte-identical snapshots, the differential check is
exact over **all** series — self-telemetry included.

The hard CI guard is *never slower*; the headline number (target from
the issue: >=5x) is recorded in ``BENCH_scrape_fastpath.json``.
"""

from __future__ import annotations

import json
import math
import time

from repro.cluster import jean_zay_topology
from repro.cluster.simulation import SimulationConfig, StackSimulation
from repro.common.auth import make_basic_auth_header
from repro.common.httpx import Request, Response
from repro.tsdb.scrape import ScrapeConfig, ScrapeManager, ScrapeTarget
from repro.tsdb.storage import TSDB

ARTIFACT_PATH = "BENCH_scrape_fastpath.json"

#: Jean-Zay scale factor.  1.0 is the paper's full deployment; the
#: bench uses it so the headline number is the deployment claim.
SCALE = 1.0
#: Measured scrape cycles (best-of, interleaved ref/fast per cycle so
#: machine-load drift hits both modes alike).
CYCLES = 5
#: Hard guard: the cached path may never be slower than the reference.
MIN_SPEEDUP = 1.0


class _ReplayApp:
    """Serves the last snapshotted response of a real exporter app.

    Fetch cost through this stub is a dict lookup, so the timed cycle
    is the scrape manager's own work — the real app's collect/render
    runs once per cycle in :func:`_snapshot`, outside the timers.
    """

    def __init__(self, app) -> None:
        self._app = app
        self._response: Response | None = None

    def snapshot(self, request: Request) -> None:
        self._response = self._app.handle(request)

    def handle(self, request: Request) -> Response:
        return self._response


def _replays(targets: list[ScrapeTarget]) -> list[tuple[_ReplayApp, ScrapeTarget]]:
    return [(_ReplayApp(t.app), t) for t in targets]


def _snapshot(replays) -> None:
    for replay, target in replays:
        headers = {}
        if target.username:
            headers["authorization"] = make_basic_auth_header(target.username, target.password)
        replay.snapshot(Request.from_url("GET", target.metrics_path, headers=headers))


def _manager(replays, use_cache: bool, workers: int = 0) -> ScrapeManager:
    """A manager whose targets point at the replay stubs.

    Each manager needs its own target objects — targets carry the
    scrape cache and staleness bookkeeping.
    """
    manager = ScrapeManager(TSDB(), ScrapeConfig(use_cache=use_cache, workers=workers))
    manager.add_targets(
        [
            ScrapeTarget(
                app=replay,
                instance=t.instance,
                job=t.job,
                group_labels=dict(t.group_labels),
                metrics_path=t.metrics_path,
                username=t.username,
                password=t.password,
            )
            for replay, t in replays
        ]
    )
    return manager


def _dump(db: TSDB):
    return sorted(
        (tuple(s.labels), tuple(s.timestamps), tuple(repr(v) for v in s.values))
        for s in db.all_series()
    )


def test_scrape_fastpath_speedup():
    sim = StackSimulation(
        jean_zay_topology(scale=SCALE),
        SimulationConfig(seed=42, meta_monitoring=False, with_workload=True),
    )
    replays = _replays(sim.scrape_manager.targets)
    n_targets = len(replays)

    reference = _manager(replays, use_cache=False)
    fast = _manager(replays, use_cache=True)

    # Two warm-up cycles: the first is all misses by construction,
    # and the exporters' own middleware series (request counters)
    # first appear in the payload one cycle after the first request,
    # missing once more.  Steady state starts at cycle three.
    t = 0.0
    for _ in range(2):
        t += 15.0
        _snapshot(replays)
        reference.scrape_all(t)
        fast.scrape_all(t)
    # Steady-state accounting only: drop the warm-up misses.
    fast.cache_hits_total = fast.cache_misses_total = 0

    ref_best = fast_best = math.inf
    for _ in range(CYCLES):
        t += 15.0
        _snapshot(replays)
        started = time.perf_counter()
        reference.scrape_all(t)
        ref_best = min(ref_best, time.perf_counter() - started)
        started = time.perf_counter()
        fast.scrape_all(t)
        fast_best = min(fast_best, time.perf_counter() - started)

    speedup = ref_best / fast_best
    samples = fast.samples_appended_total // fast.cycles_total
    hit_ratio = fast.cache_hits_total / max(1, fast.cache_hits_total + fast.cache_misses_total)

    # Differential proof: both managers ingested byte-identical
    # payload snapshots, so their TSDBs must match exactly — every
    # series, self-telemetry included.
    identical = _dump(reference.storage) == _dump(fast.storage)

    report = {
        "scale": SCALE,
        "targets": n_targets,
        "samples_per_cycle": int(samples),
        "cycles_measured": CYCLES,
        "reference_cycle_seconds": ref_best,
        "fast_cycle_seconds": fast_best,
        "speedup": speedup,
        "cache_hit_ratio": hit_ratio,
        "min_speedup_guard": MIN_SPEEDUP,
        "contents_identical": identical,
    }
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
    print(
        f"\n[scrape-fastpath] targets={n_targets} samples/cycle={samples} "
        f"reference={ref_best * 1e3:.0f}ms fast={fast_best * 1e3:.0f}ms "
        f"speedup={speedup:.1f}x hit-ratio={hit_ratio * 100:.1f}%"
    )

    assert identical, "fast path diverged from reference TSDB contents"
    assert hit_ratio > 0.99, "steady state should be nearly all cache hits"
    assert speedup >= MIN_SPEEDUP, report
