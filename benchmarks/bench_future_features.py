"""E15 — cost and value of the §IV future-work collectors.

The paper plans eBPF network stats and perf metrics "in the pipeline".
This bench measures what adopting them costs the exporter (scrape CPU
and payload growth) and what they buy (the FLOPS/W efficiency signal
and the operator's efficiency report).
"""

from __future__ import annotations

import pytest

from repro.analytics import efficiency_report
from repro.common.clock import SimClock
from repro.common.config import ExporterConfig
from repro.common.httpx import Request
from repro.exporter import CEEMSExporter
from repro.hwsim import NodeSpec, SimulatedNode, UsageProfile

BASE = ("cgroup", "rapl", "ipmi", "node", "gpu_map")
FULL = BASE + ("ebpf_net", "perf")


def loaded_node(njobs: int = 32) -> SimulatedNode:
    node = SimulatedNode(
        NodeSpec(name="bench", sockets=2, cores_per_socket=32, memory_gb=256, dram_profile="ddr4-384g"),
        seed=3,
    )
    for i in range(njobs):
        node.place_task(
            str(3000 + i),
            f"/system.slice/slurmstepd.scope/job_{3000 + i}",
            2,
            2 * 2**30,
            UsageProfile.constant(0.7, 0.5),
            0.0,
        )
    for step in range(12):
        node.advance((step + 1) * 5.0, 5.0)
    return node


@pytest.mark.parametrize("collectors", [BASE, FULL], ids=["paper-baseline", "with-ebpf-perf"])
def test_scrape_cost_with_future_collectors(benchmark, collectors):
    node = loaded_node()
    exporter = CEEMSExporter(node, SimClock(start=60.0), ExporterConfig(collectors=collectors))
    request = Request.from_url("GET", "/metrics")

    response = benchmark(exporter.app.handle, request)

    assert response.status == 200
    per_scrape_ms = exporter.scrape_cpu_seconds / exporter.scrapes_total * 1000
    print(f"\n[E15] {len(collectors)} collectors: payload "
          f"{exporter.last_payload_bytes / 1024:.1f} KiB, {per_scrape_ms:.2f} ms CPU/scrape")
    benchmark.extra_info["payload_bytes"] = exporter.last_payload_bytes
    benchmark.extra_info["cpu_ms"] = per_scrape_ms
    assert per_scrape_ms < 100.0


def test_efficiency_report_generation(benchmark, bench_sim):
    """The §III.B operator report over the live deployment's DB."""
    report = benchmark(efficiency_report, bench_sim.db)
    print(f"\n[E15] efficiency report: {len(report.rows)} users, "
          f"{len(report.flagged)} flagged below 25% CPU efficiency")
    print(report.render())
    assert report.rows
    total_energy = sum(r.energy_joules for r in report.rows)
    assert total_energy > 0
