"""Durable storage engine: codec throughput and compression ratio.

Measures the Gorilla chunk codec on workloads shaped like the stack's
own scrapes — steady 15 s cadence, slowly drifting gauges and
monotone counters — and reports:

* encode throughput (samples/s, pure-Python bit writer),
* decode throughput (samples/s, numpy-assisted bit reader),
* compression ratio vs raw float64 pairs (16 bytes/sample).

The ratio assertion is the load-bearing one: the whole point of the
chunk format is that persisted blocks are several times smaller than
the arrays they encode.  Throughput numbers are printed for the CI
log rather than asserted — wall-clock bounds are too noisy across
runners.
"""

from __future__ import annotations

import random
import time

from repro.tsdb.persist import decode_chunk, encode_chunk

SAMPLES = 24 * 240  # one day at 15 s cadence
RAW_BYTES_PER_SAMPLE = 16  # float64 timestamp + float64 value

#: Steady-cadence gauge data must beat raw float64 by at least this
#: much; noisy decimals leave XOR residue, so the floor is modest.
MIN_GAUGE_RATIO = 2.0
#: Monotone counters compress far better (small value deltas); the
#: observed ratio is ~7-8x.
MIN_COUNTER_RATIO = 5.0


def _gauge_workload() -> tuple[list[float], list[float]]:
    rng = random.Random(7)
    ts = [1.7e9 + 15.0 * i for i in range(SAMPLES)]
    value = 40.0
    vs = []
    for _ in range(SAMPLES):
        value = max(0.0, value + rng.uniform(-0.5, 0.5))
        vs.append(round(value, 1))
    return ts, vs


def _counter_workload() -> tuple[list[float], list[float]]:
    rng = random.Random(8)
    ts = [1.7e9 + 15.0 * i for i in range(SAMPLES)]
    total = 0.0
    vs = []
    for _ in range(SAMPLES):
        total += rng.randint(0, 50)
        vs.append(total)
    return ts, vs


def _chunked(ts, vs, size=120):
    for i in range(0, len(ts), size):
        yield ts[i : i + size], vs[i : i + size]


def _measure(name: str, ts: list[float], vs: list[float]) -> float:
    encoded = [encode_chunk(cts, cvs) for cts, cvs in _chunked(ts, vs)]  # warm

    started = time.perf_counter()
    encoded = [encode_chunk(cts, cvs) for cts, cvs in _chunked(ts, vs)]
    encode_s = time.perf_counter() - started

    started = time.perf_counter()
    for chunk in encoded:
        decode_chunk(chunk)
    decode_s = time.perf_counter() - started

    raw = len(ts) * RAW_BYTES_PER_SAMPLE
    packed = sum(len(c) for c in encoded)
    ratio = raw / packed
    print(
        f"\n[persist] {name}: encode {len(ts) / encode_s:,.0f} samples/s, "
        f"decode {len(ts) / decode_s:,.0f} samples/s, "
        f"{packed / len(ts):.2f} B/sample ({ratio:.2f}x vs raw float64)"
    )
    return ratio


def test_gauge_compression_beats_raw():
    ts, vs = _gauge_workload()
    assert _measure("gauge", ts, vs) >= MIN_GAUGE_RATIO


def test_counter_compression_beats_raw():
    ts, vs = _counter_workload()
    assert _measure("counter", ts, vs) >= MIN_COUNTER_RATIO


def test_encode_throughput(benchmark):
    ts, vs = _gauge_workload()
    chunks = list(_chunked(ts, vs))
    benchmark(lambda: [encode_chunk(cts, cvs) for cts, cvs in chunks])


def test_decode_throughput(benchmark):
    ts, vs = _gauge_workload()
    encoded = [encode_chunk(cts, cvs) for cts, cvs in _chunked(ts, vs)]
    benchmark(lambda: [decode_chunk(c) for c in encoded])


def test_roundtrip_lossless_at_scale():
    import numpy as np

    ts, vs = _counter_workload()
    got_ts = []
    got_vs = []
    for cts, cvs in _chunked(ts, vs):
        dts, dvs = decode_chunk(encode_chunk(cts, cvs))
        got_ts.extend(dts.tolist())
        got_vs.extend(dvs.tolist())
    assert (
        np.asarray(ts).view(np.uint64).tolist()
        == np.asarray(got_ts).view(np.uint64).tolist()
    )
    assert (
        np.asarray(vs).view(np.uint64).tolist()
        == np.asarray(got_vs).view(np.uint64).tolist()
    )
