"""E12 — emission-factor sources: OWID static vs RTE vs Electricity Maps.

Paper §II.A.c: emission factors are dynamic because the grid mix is;
CEEMS therefore supports a static baseline (OWID) and two real-time
sources.  We push the same 24 h / 1 kW energy profile through all
three providers and report how much the resulting CO2e diverges —
the reason real-time factors matter.  Timed sections: factor
resolution through the fallback chain, and the integration pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.emissions import (
    ElectricityMapsProvider,
    EmissionsCalculator,
    OWIDProvider,
    ProviderRegistry,
    RTEProvider,
)

DAY = 86400.0


def registry_for(provider_name: str) -> ProviderRegistry:
    registry = ProviderRegistry()
    if provider_name == "rte":
        registry.register(RTEProvider(seed=3))
    elif provider_name == "electricity_maps":
        registry.register(ElectricityMapsProvider(seed=3))
    registry.register(OWIDProvider(world_fallback=True))
    return registry


@pytest.mark.parametrize("provider", ["owid", "rte", "electricity_maps"])
def test_daily_co2_per_provider(benchmark, provider):
    """One day of 1 kW through each provider."""
    calc = EmissionsCalculator(registry_for(provider), "FR")
    ts = np.arange(0.0, DAY + 1, 900.0)
    power = np.full_like(ts, 1000.0)

    grams = benchmark(calc.integrate, ts, power)

    print(f"\n[E12] 24 kWh day in FR via {provider:18s}: {grams:8.1f} gCO2e")
    benchmark.extra_info["g_co2e_per_day"] = grams
    assert 300.0 < grams < 4000.0  # plausible for FR


def test_provider_divergence_summary():
    """How wrong is the static factor hour by hour?"""
    registries = {name: registry_for(name) for name in ("owid", "rte", "electricity_maps")}
    hours = np.arange(0, 24 * 14)  # two weeks hourly
    series = {
        name: np.array([reg.factor("FR", float(h) * 3600.0).value for h in hours])
        for name, reg in registries.items()
    }
    print("\n[E12] FR emission factor over two weeks (gCO2e/kWh):")
    for name, values in series.items():
        print(f"  {name:18s} mean {values.mean():6.1f}  min {values.min():6.1f}  max {values.max():6.1f}")
    rte_vs_owid = np.abs(series["rte"] - series["owid"]) / series["owid"]
    print(f"  static-vs-RTE hourly error: mean {rte_vs_owid.mean() * 100:.1f}%, "
          f"max {rte_vs_owid.max() * 100:.1f}%")
    assert series["owid"].std() == 0.0  # static is static
    assert series["rte"].std() > 0.0  # real-time moves
    assert rte_vs_owid.max() > 0.10  # static can be >10% off at peaks


def test_fallback_chain_cost(benchmark):
    """Resolution cost when the preferred provider is down."""
    registry = ProviderRegistry()
    registry.register(RTEProvider(available=False))
    registry.register(ElectricityMapsProvider(seed=1))
    registry.register(OWIDProvider(world_fallback=True))

    factor = benchmark(registry.factor, "FR", 1234.0)
    assert factor.provider == "electricity_maps"


def test_multi_zone_factor_table(benchmark):
    """The operator's cross-site table (Electricity Maps strength)."""
    provider = ElectricityMapsProvider(seed=5)
    zones = ("FR", "DE", "PL", "NO", "US")

    def table():
        return {z: provider.factor(z, 12 * 3600.0).value for z in zones}

    factors = benchmark(table)
    print("\n[E12] midday factors by zone (gCO2e/kWh):")
    for zone, value in factors.items():
        print(f"  {zone}: {value:6.1f}")
    assert factors["NO"] < factors["FR"] < factors["DE"] < factors["PL"]
