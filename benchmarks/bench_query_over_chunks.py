"""E18 — query-over-chunks: cold long-range queries over persisted blocks.

The paper's long-history problem (§V, the 30-day dashboard cliff):
answering a query over weeks of persisted data should not require
decoding *every* block back into memory first.  PR 6 teaches the
store to serve blocks straight from mmap'd chunk files — decoded on
demand, chunk-granular, behind a bounded LRU — and moves the head to
columnar ring buffers.

Methodology — what is timed.  The on-disk block set is written once
(untimed; both modes read byte-identical directories).  A *cold
cycle* is what an operator pays after a restart: open the store from
``persist_dir`` and answer one long-range PromQL query over the
recent tail of a much longer history.

* **baseline** — eager store: opening decodes every chunk of every
  block into per-resolution TSDBs using the original list-backed head
  (``head_layout="list"``), then the engine queries those series.
* **new** — lazy store (``lazy_blocks=True``): opening registers
  chunk references only; the query decodes just the chunks
  overlapping its window through the decoded-chunk LRU.

Cycles interleave baseline/new so machine-load drift hits both modes
alike; best-of is reported.  The differential proof runs the same
query set through both stores and requires bit-identical results
(``tobytes`` on every series).  A second guard re-times the ingest
hot loop (``append_refs``, the scrape lane) on a columnar-head vs a
list-head TSDB — the columnar head must never be slower.

The hard CI guards are ``>= MIN_QUERY_SPEEDUP`` (issue target: 5x)
and ingest never slower; numbers land in
``BENCH_query_over_chunks.json``.
"""

from __future__ import annotations

import json
import math
import time

import numpy as np

from repro.tsdb.model import Labels
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.storage import TSDB
from repro.thanos.store import RESOLUTIONS, ObjectStore

ARTIFACT_PATH = "BENCH_query_over_chunks.json"

#: History shape: Jean-Zay-style node metrics, 300 s cadence.
N_SERIES = 45
DAYS = 40
CADENCE = 300.0
BLOCK_SPAN = 2 * 86400.0  # one block per two days on disk
#: The timed query covers the trailing window only — the motivating
#: case: a dashboard over recent days backed by a long history.
QUERY_DAYS = 5
TIMED_QUERY = "avg_over_time(m[30m])"
STEP = 3600.0

#: Interleaved cold cycles (each one re-opens both stores); best-of.
CYCLES = 3
#: Hard guards.
MIN_QUERY_SPEEDUP = 5.0
MIN_INGEST_SPEEDUP = 1.0

#: Differential set: selector, range function, aggregation, instant.
PARITY_QUERIES = [
    "m",
    TIMED_QUERY,
    "sum by (grp) (m)",
    "rate(m[20m])",
]


def _series_labels(i: int) -> Labels:
    return Labels({"__name__": "m", "grp": chr(ord("a") + i % 3), "idx": str(i)})


def _write_blocks(persist_dir: str) -> int:
    """One immutable block per BLOCK_SPAN window; returns total samples."""
    writer = ObjectStore(persist_dir=persist_dir)
    rng = np.random.default_rng(42)
    horizon = DAYS * 86400.0
    ts = np.arange(0.0, horizon, CADENCE)
    data = [
        (_series_labels(i), ts, rng.normal(100.0 + i, 10.0, size=ts.size))
        for i in range(N_SERIES)
    ]
    total = 0
    lo = 0.0
    while lo < horizon:
        hi = min(lo + BLOCK_SPAN, horizon)
        block = []
        for labels, all_ts, all_vs in data:
            a = int(np.searchsorted(all_ts, lo, side="left"))
            b = int(np.searchsorted(all_ts, hi, side="left"))
            if b > a:
                block.append((labels, all_ts[a:b], all_vs[a:b]))
                total += b - a
        writer.persist_block(
            writer.new_ulid(), block, min_time=lo, max_time=hi, resolution="raw"
        )
        lo = hi
    return total


def _open_eager_list(persist_dir: str) -> ObjectStore:
    """Baseline open: full decode into list-head TSDBs.

    ``ObjectStore`` builds its resolution TSDBs in ``__post_init__``,
    so the list-head baseline swaps them in before replaying the
    persisted blocks — the same work an eager open does, charged to
    the original head layout.
    """
    store = ObjectStore()
    store.tsdbs = {
        res: TSDB(name=f"thanos-{res}", head_layout="list") for res in RESOLUTIONS
    }
    store.persist_dir = persist_dir
    store._load_persisted()
    return store


def _open_lazy(persist_dir: str) -> ObjectStore:
    return ObjectStore(persist_dir=persist_dir, lazy_blocks=True)


def _query_window() -> tuple[float, float]:
    end = DAYS * 86400.0 - CADENCE
    return end - QUERY_DAYS * 86400.0, end


def _run_query(store: ObjectStore):
    start, end = _query_window()
    return PromQLEngine(store).query_range(TIMED_QUERY, start, end, STEP)


def _dump(store: ObjectStore):
    """Engine output for every parity query, as raw bytes."""
    engine = PromQLEngine(store)
    start, end = _query_window()
    out = []
    for query in PARITY_QUERIES:
        result = engine.query_range(query, start, end, STEP)
        out.append(
            sorted(
                (tuple(labels), ts.tobytes(), vs.tobytes())
                for labels, (ts, vs) in result.series.items()
            )
        )
        instant = engine.query(query, at=end)
        out.append([(tuple(el.labels), repr(el.value)) for el in instant.vector])
    return out


def _bench_ingest(db: TSDB, n_series: int = 300, cycles: int = 300) -> float:
    """Best-of scrape-lane cycle time on a fresh TSDB.

    Cycle one creates every series and is never the best; steady
    state dominates, so no separate warm-up phase is needed."""
    labels = [Labels({"__name__": "ingest", "i": str(i)}) for i in range(n_series)]
    for lb in labels:
        db.append(lb, 0.0, 1.0)
    pairs = [(db.get_ref(lb), 1.5) for lb in labels]
    best = math.inf
    for c in range(1, cycles + 1):
        started = time.perf_counter()
        db.append_refs(float(c * 15), pairs)
        best = min(best, time.perf_counter() - started)
    return best


def test_query_over_chunks_speedup(tmp_path):
    persist_dir = str(tmp_path / "store")
    total_samples = _write_blocks(persist_dir)

    eager_best = lazy_best = math.inf
    for _ in range(CYCLES):
        started = time.perf_counter()
        eager = _open_eager_list(persist_dir)
        _run_query(eager)
        eager_best = min(eager_best, time.perf_counter() - started)

        started = time.perf_counter()
        lazy = _open_lazy(persist_dir)
        _run_query(lazy)
        lazy_best = min(lazy_best, time.perf_counter() - started)

    cold_speedup = eager_best / lazy_best

    # Warm repeats on the final stores: the decoded-chunk LRU makes a
    # repeat lazy query decode nothing.
    eager_warm = lazy_warm = math.inf
    for _ in range(CYCLES):
        started = time.perf_counter()
        _run_query(eager)
        eager_warm = min(eager_warm, time.perf_counter() - started)
        started = time.perf_counter()
        _run_query(lazy)
        lazy_warm = min(lazy_warm, time.perf_counter() - started)

    # Differential proof over the full parity query set.
    identical = _dump(eager) == _dump(lazy)

    # Ingest guard: columnar head must never be slower than list head
    # on the scrape hot lane (interleaved best-of, fresh TSDBs).
    list_best = columnar_best = math.inf
    for _ in range(3):
        list_best = min(list_best, _bench_ingest(TSDB(head_layout="list")))
        columnar_best = min(columnar_best, _bench_ingest(TSDB(head_layout="columnar")))
    ingest_speedup = list_best / columnar_best

    report = {
        "series": N_SERIES,
        "days": DAYS,
        "cadence_seconds": CADENCE,
        "total_samples": total_samples,
        "query": TIMED_QUERY,
        "query_days": QUERY_DAYS,
        "cycles_measured": CYCLES,
        "eager_cold_seconds": eager_best,
        "lazy_cold_seconds": lazy_best,
        "cold_speedup": cold_speedup,
        "eager_warm_seconds": eager_warm,
        "lazy_warm_seconds": lazy_warm,
        "ingest_list_cycle_seconds": list_best,
        "ingest_columnar_cycle_seconds": columnar_best,
        "ingest_speedup": ingest_speedup,
        "min_query_speedup_guard": MIN_QUERY_SPEEDUP,
        "min_ingest_speedup_guard": MIN_INGEST_SPEEDUP,
        "contents_identical": identical,
    }
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
    print(
        f"\n[query-over-chunks] samples={total_samples} "
        f"eager={eager_best * 1e3:.0f}ms lazy={lazy_best * 1e3:.0f}ms "
        f"cold-speedup={cold_speedup:.1f}x ingest-speedup={ingest_speedup:.2f}x"
    )

    assert identical, "lazy store diverged from eager store results"
    assert cold_speedup >= MIN_QUERY_SPEEDUP, report
    assert ingest_speedup >= MIN_INGEST_SPEEDUP, report
