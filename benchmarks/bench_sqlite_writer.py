"""E13 — the single-writer SQLite argument (paper §II.D).

Paper: SQLite suffices because *"there is only one go routine that
writes to DB at a configured interval"*.  We measure the write path at
Jean-Zay-like batch sizes (an updater pass upserting thousands of
units) and show that concurrent readers — API handlers and the LB's
ownership checks — proceed unharmed during the write cadence.
"""

from __future__ import annotations

import threading

import pytest

from repro.apiserver.db import Database
from repro.resourcemgr.base import ComputeUnit, UnitState


def make_units(n: int, offset: int = 0) -> list[ComputeUnit]:
    return [
        ComputeUnit(
            uuid=str(50_000 + offset + i),
            name=f"job-{i}",
            manager="slurm",
            cluster="jz",
            user=f"user{i % 40:03d}",
            project=f"proj{i % 10}",
            created_at=float(i),
            started_at=float(i),
            ended_at=float(i + 600),
            state=UnitState.COMPLETED,
            cpus=8,
            memory_bytes=2**33,
        )
        for i in range(n)
    ]


@pytest.mark.parametrize("batch", [500, 2000, 8000])
def test_updater_batch_upsert(benchmark, batch):
    """One updater pass at various unit-batch sizes."""
    db = Database()
    units = make_units(batch)
    state = {"round": 0}

    def upsert():
        state["round"] += 1
        db.upsert_units(units, now=float(state["round"]))
        db.rebuild_usage_rollups("jz", now=float(state["round"]))

    benchmark.pedantic(upsert, rounds=5, iterations=1)
    per_unit_us = benchmark.stats.stats.mean / batch * 1e6
    print(f"\n[E13] batch {batch}: {per_unit_us:.1f} µs/unit "
          f"(a 15-minute updater pass at Jean-Zay churn is milliseconds of DB time)")
    benchmark.extra_info["us_per_unit"] = per_unit_us
    assert benchmark.stats.stats.mean < 5.0  # far below the 15 min cadence


def test_readers_during_writes(benchmark):
    """LB-style ownership lookups proceed while the updater writes."""
    db = Database()
    db.upsert_units(make_units(4000), now=0.0)
    db.rebuild_usage_rollups("jz", now=0.0)
    stop = threading.Event()
    read_errors: list[Exception] = []
    reads = {"count": 0}

    def reader():
        while not stop.is_set():
            try:
                assert db.find_unit_owner("50123") is not None
                db.usage_rows(user="user003")
                reads["count"] += 1
            except Exception as exc:  # noqa: BLE001
                read_errors.append(exc)
                return

    threads = [threading.Thread(target=reader, daemon=True) for _ in range(4)]
    for t in threads:
        t.start()

    fresh = make_units(2000, offset=10_000)
    state = {"round": 0}

    def write_pass():
        state["round"] += 1
        db.upsert_units(fresh, now=float(state["round"]))
        db.rebuild_usage_rollups("jz", now=float(state["round"]))

    try:
        benchmark.pedantic(write_pass, rounds=5, iterations=1)
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=5)

    print(f"\n[E13] {reads['count']} reader operations completed during write passes, "
          f"{len(read_errors)} errors")
    benchmark.extra_info["concurrent_reads"] = reads["count"]
    assert not read_errors
    assert reads["count"] > 50


def test_ownership_lookup_hot_path(benchmark):
    """The LB's per-query lookup must be microseconds (it is indexed)."""
    db = Database()
    db.upsert_units(make_units(8000), now=0.0)

    owner = benchmark(db.find_unit_owner, "54321")
    assert owner is not None
    assert benchmark.stats.stats.mean < 1e-3
