"""E6 — exporter footprint: the paper's §II.B.a claims.

Paper: *"On average the exporter consumes 15-20 MB of memory and each
scrape request takes less than 1 microsecond of CPU time"* (the CPU
figure is surely a misprint for milliseconds; we report both walls).

We measure, for our Python exporter on a node with a realistic job
count: per-scrape CPU time and wall time vs number of jobs, payload
size, and the per-exporter heap footprint (tracemalloc).  Absolute
numbers differ from the Go binary; the *shape* — scrape cost far
below the scrape interval, footprint in the tens of MB even at high
job counts — is the claim under test.
"""

from __future__ import annotations

import time
import tracemalloc

import pytest

from repro.common.clock import SimClock
from repro.common.config import ExporterConfig
from repro.common.httpx import Request
from repro.exporter import CEEMSExporter
from repro.hwsim import NodeSpec, SimulatedNode, UsageProfile

COLLECTORS = ("cgroup", "rapl", "ipmi", "node", "gpu_map", "self")


def loaded_node(njobs: int, seed: int = 3) -> SimulatedNode:
    spec = NodeSpec(name="bench", sockets=2, cores_per_socket=64, memory_gb=512, dram_profile="ddr5-512g")
    node = SimulatedNode(spec, seed=seed)
    for i in range(njobs):
        node.place_task(
            str(1000 + i),
            f"/system.slice/slurmstepd.scope/job_{1000 + i}",
            1,
            2 * 2**30,
            UsageProfile.constant(0.7, 0.5),
            0.0,
        )
    for step in range(12):
        node.advance((step + 1) * 5.0, 5.0)
    return node


@pytest.mark.parametrize("njobs", [8, 32, 96])
def test_scrape_cost_vs_job_count(benchmark, njobs):
    node = loaded_node(njobs)
    clock = SimClock(start=60.0)
    exporter = CEEMSExporter(node, clock, ExporterConfig(collectors=COLLECTORS))
    request = Request.from_url("GET", "/metrics")

    cpu_before = time.process_time()
    response = benchmark(exporter.app.handle, request)
    cpu_total = time.process_time() - cpu_before

    assert response.status == 200
    per_scrape_cpu = exporter.scrape_cpu_seconds / exporter.scrapes_total
    print(
        f"\n[E6] {njobs} jobs: payload {exporter.last_payload_bytes / 1024:.1f} KiB, "
        f"CPU/scrape {per_scrape_cpu * 1000:.2f} ms "
        f"(paper claims 'less than 1 µs CPU', i.e. negligible vs 15 s interval)"
    )
    benchmark.extra_info["payload_bytes"] = exporter.last_payload_bytes
    benchmark.extra_info["cpu_ms_per_scrape"] = per_scrape_cpu * 1000
    # Shape claim: scrape cost negligible vs the 15 s scrape interval.
    assert per_scrape_cpu < 0.5
    del cpu_total


def test_exporter_memory_footprint(benchmark):
    """Heap attributable to one exporter + its node accounting state."""
    node = loaded_node(64)

    def build() -> CEEMSExporter:
        return CEEMSExporter(node, SimClock(start=60.0), ExporterConfig(collectors=COLLECTORS))

    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    exporter = build()
    exporter.app.handle(Request.from_url("GET", "/metrics"))
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    footprint_mb = (after - before) / 1024 / 1024
    print(f"\n[E6] exporter heap footprint: {footprint_mb:.2f} MiB "
          f"(paper: Go exporter RSS 15-20 MB)")

    benchmark(build)
    benchmark.extra_info["heap_mib"] = footprint_mb
    # Shape claim: tens of MB at most, not hundreds.
    assert footprint_mb < 50.0


def test_scrape_throughput_sustained(benchmark):
    """A scrape every 15 s is ~0.007% duty cycle at this cost."""
    node = loaded_node(32)
    exporter = CEEMSExporter(node, SimClock(start=60.0), ExporterConfig(collectors=COLLECTORS))
    request = Request.from_url("GET", "/metrics")

    def hundred_scrapes():
        for _ in range(100):
            exporter.app.handle(request)

    benchmark.pedantic(hundred_scrapes, rounds=3, iterations=1)
    per_scrape = exporter.scrape_cpu_seconds / exporter.scrapes_total
    duty_cycle_pct = per_scrape / 15.0 * 100
    print(f"\n[E6] sustained: {per_scrape * 1000:.2f} ms CPU/scrape = "
          f"{duty_cycle_pct:.4f}% duty cycle at 15 s interval")
    benchmark.extra_info["duty_cycle_pct"] = duty_cycle_pct
    assert duty_cycle_pct < 5.0
