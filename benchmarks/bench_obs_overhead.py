"""E16 — self-telemetry overhead: the middleware must stay cheap.

Every request through every component pays the observability
middleware (trace resolution, in-flight gauge, counter + histogram
update, span record).  The stack scrapes itself every 15 s on top of
user traffic, so this cost multiplies across the whole deployment —
this bench guards it with a hard per-request bound.

The second half guards the query-introspection hooks: the profiler
and per-query-stats call sites left inside the PromQL evaluators must
add <5% to a range eval when disabled.  The baseline monkeypatches
the hooks away entirely (possible because every call site goes
through a module attribute); the guarded run takes the normal path
with no stats active and the profiler off.  Results land in
``BENCH_obs_overhead.json`` for the CI artifact.
"""

from __future__ import annotations

import contextlib
import json
import math
import time

from repro.common.httpx import App, Request, Response
from repro.obs import prof as prof_mod
from repro.obs import query as query_mod
from repro.obs.prof import PROFILER
from repro.obs.query import QueryStats, activate_stats, deactivate_stats
from repro.tsdb.model import Labels
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.storage import TSDB

#: Mean extra cost the middleware may add per request.  Generous
#: against CI-runner noise — the observed overhead is ~10–30 µs.
OVERHEAD_BOUND_SECONDS = 500e-6

REQUESTS = 2000


def build_app() -> App:
    app = App(name="bench")
    app.router.get("/ping/{name}", lambda req: Response.text("pong"))
    return app


def _time_per_request(fn) -> float:
    fn()  # warm caches / lazy imports outside the timed section
    started = time.perf_counter()
    for _ in range(REQUESTS):
        fn()
    return (time.perf_counter() - started) / REQUESTS


def test_middleware_overhead_bounded():
    app = build_app()
    request = Request(method="GET", path="/ping/a")

    bare = _time_per_request(lambda: app._handle_inner(request))
    full = _time_per_request(lambda: app.handle(request))
    overhead = full - bare
    print(
        f"\n[E16] per-request: bare={bare * 1e6:.1f}µs "
        f"full={full * 1e6:.1f}µs overhead={overhead * 1e6:.1f}µs"
    )
    assert overhead < OVERHEAD_BOUND_SECONDS


def test_full_request_with_middleware(benchmark):
    app = build_app()
    request = Request(method="GET", path="/ping/a")
    response = benchmark(lambda: app.handle(request))
    assert response.status == 200


def test_span_store_stays_bounded():
    """The span ring must not grow without limit under load."""
    app = build_app()
    request = Request(method="GET", path="/ping/a")
    for _ in range(REQUESTS):
        app.handle(request)
    assert len(app.telemetry.spans) <= app.telemetry.spans.capacity
    assert app.telemetry.spans.total_recorded >= REQUESTS


# -- query-introspection hook overhead ----------------------------------

#: Relative slowdown the disabled profiler/query-stats hooks may add
#: to a PromQL range eval versus having no hooks at all.
HOOK_OVERHEAD_BOUND = 0.05

BENCH_SERIES = 50
BENCH_SAMPLES = 2000
BENCH_SCRAPE_STEP = 15.0
EVAL_RUNS = 7

ARTIFACT_PATH = "BENCH_obs_overhead.json"


def _merge_artifact(section: str, payload: dict) -> None:
    """Read-modify-write one section of the shared CI artifact so the
    hook bench and the control-plane bench don't clobber each other."""
    try:
        with open(ARTIFACT_PATH, encoding="utf-8") as fh:
            artifact = json.load(fh)
        if not isinstance(artifact, dict):
            artifact = {}
    except (OSError, ValueError):
        artifact = {}
    artifact[section] = payload
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=2)


def build_query_engine() -> PromQLEngine:
    db = TSDB(name="bench-obs-hooks")
    for i in range(BENCH_SERIES):
        labels = Labels({"__name__": "power", "uuid": str(i)})
        for j in range(BENCH_SAMPLES):
            db.append(labels, j * BENCH_SCRAPE_STEP, float((i * 31 + j) % 97))
    return PromQLEngine(db)


def _min_eval_seconds(engine: PromQLEngine, strategy: str) -> float:
    """Best-of-N wall time for one realistic dashboard range eval."""
    end = (BENCH_SAMPLES - 1) * BENCH_SCRAPE_STEP

    def run() -> None:
        engine.query_range(
            "sum by (uuid) (rate(power[120s]))", 120.0, end, 60.0, strategy=strategy
        )

    run()  # warm parser caches / lazy imports outside the timed runs
    best = math.inf
    for _ in range(EVAL_RUNS):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


@contextlib.contextmanager
def _hooks_bypassed():
    """Replace every introspection hook with a no-op.

    Call sites reference the hooks as module attributes precisely so
    this baseline can exist: it measures the evaluator as if the
    instrumentation had never been written.
    """
    saved = (query_mod.tracked_select, query_mod.record_samples, prof_mod.profile)
    query_mod.tracked_select = lambda storage, matchers: storage.select(matchers)
    query_mod.record_samples = lambda n: None
    prof_mod.profile = lambda name: prof_mod._NULL_TIMER
    try:
        yield
    finally:
        query_mod.tracked_select, query_mod.record_samples, prof_mod.profile = saved


def test_query_hook_overhead_disabled_under_bound():
    """Disabled hooks must cost <5% of a range eval — per strategy."""
    engine = build_query_engine()
    PROFILER.disable()
    PROFILER.reset()
    report: dict[str, dict[str, float]] = {}
    try:
        for strategy in ("columnar", "per_step"):
            with _hooks_bypassed():
                bypassed = _min_eval_seconds(engine, strategy)
            disabled = _min_eval_seconds(engine, strategy)
            PROFILER.enable()
            token = activate_stats(QueryStats(query="bench", strategy=strategy))
            try:
                enabled = _min_eval_seconds(engine, strategy)
            finally:
                deactivate_stats(token)
                PROFILER.disable()
            report[strategy] = {
                "bypassed_seconds": bypassed,
                "disabled_seconds": disabled,
                "enabled_seconds": enabled,
                "disabled_overhead_ratio": disabled / bypassed - 1.0,
                "enabled_overhead_ratio": enabled / bypassed - 1.0,
            }
            print(
                f"\n[obs-hooks] {strategy}: bypassed={bypassed * 1e3:.2f}ms "
                f"disabled={disabled * 1e3:.2f}ms enabled={enabled * 1e3:.2f}ms "
                f"disabled-overhead={report[strategy]['disabled_overhead_ratio'] * 100:+.2f}%"
            )
    finally:
        PROFILER.reset()
        _merge_artifact(
            "query_hooks",
            {
                "series": BENCH_SERIES,
                "samples_per_series": BENCH_SAMPLES,
                "eval_runs": EVAL_RUNS,
                "bound": HOOK_OVERHEAD_BOUND,
                "strategies": report,
            },
        )
    for strategy, row in report.items():
        assert row["disabled_overhead_ratio"] < HOOK_OVERHEAD_BOUND, (strategy, row)


# -- exemplar capture overhead -------------------------------------------

#: Relative slowdown exemplar capture may add to the request path.
#: Capture fires inside Counter.inc/Histogram.observe while a span is
#: active, so the middleware bench above is the realistic workload.
EXEMPLAR_OVERHEAD_BOUND = 0.05

EXEMPLAR_RUNS = 9


def test_exemplar_capture_overhead_bounded():
    """Exemplar capture on the hot request path must cost <5%.

    Every handled request updates one counter and one histogram while
    its span is active, so each request pays exactly two capture
    attempts (rate-limited to a monotonic-clock read after the first).
    """
    from repro.obs.registry import set_exemplars_enabled

    app = build_app()
    request = Request(method="GET", path="/ping/a")

    def drive() -> None:
        for _ in range(REQUESTS):
            app.handle(request)

    # Pair the two configurations back to back within each round and
    # take the median paired ratio: machine-speed drift between rounds
    # (CPU frequency scaling, noisy CI neighbours) hits both halves of
    # a pair roughly equally, and the median shrugs off the odd round
    # that lands on a scheduling hiccup.
    old = set_exemplars_enabled(False)
    ratios: list[float] = []
    disabled_best = enabled_best = math.inf
    try:
        drive()  # warm caches outside the timed rounds
        for _ in range(EXEMPLAR_RUNS):
            set_exemplars_enabled(False)
            started = time.perf_counter()
            drive()
            disabled = time.perf_counter() - started
            set_exemplars_enabled(True)
            started = time.perf_counter()
            drive()
            enabled = time.perf_counter() - started
            ratios.append(enabled / disabled - 1.0)
            disabled_best = min(disabled_best, disabled)
            enabled_best = min(enabled_best, enabled)
    finally:
        set_exemplars_enabled(old)
    ratio = sorted(ratios)[len(ratios) // 2]
    print(
        f"\n[exemplars] per-{REQUESTS}-requests: disabled={disabled_best * 1e3:.2f}ms "
        f"enabled={enabled_best * 1e3:.2f}ms median-overhead={ratio * 100:+.2f}%"
    )
    _merge_artifact(
        "exemplars",
        {
            "requests": REQUESTS,
            "runs": EXEMPLAR_RUNS,
            "disabled_seconds": disabled_best,
            "enabled_seconds": enabled_best,
            "overhead_ratio": ratio,
            "bound": EXEMPLAR_OVERHEAD_BOUND,
        },
    )
    assert ratio < EXEMPLAR_OVERHEAD_BOUND, ratio


# -- alerting control plane overhead -------------------------------------

#: Amortized per-second cost the alerting control plane (live alert
#: evaluation + blackbox probing) may add relative to the monitoring
#: data plane (scraping + recording rules) it rides alongside.
CONTROL_PLANE_BOUND = 0.05

CONTROL_PLANE_RUNS = 7


def _best_of(fn, runs: int = CONTROL_PLANE_RUNS) -> float:
    fn()  # warm caches outside the timed runs
    best = math.inf
    for _ in range(runs):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_alerting_control_plane_overhead_bounded():
    """Alert evaluation + probing must stay <5% of the data plane.

    Each loop runs on its own interval, so costs are amortized to
    per-second rates before comparing: a 60 s alert cycle may cost
    4x a 15 s scrape cycle and still be the cheaper loop.
    """
    from repro.cluster import StackSimulation, small_topology
    from repro.cluster.simulation import SimulationConfig

    sim = StackSimulation(
        small_topology(cpu_nodes=2, gpu_nodes=1),
        SimulationConfig(seed=5, update_interval=600.0),
    )
    sim.run(600.0)  # realistic series population before timing
    now, cfg = sim.now, sim.config

    scrape = _best_of(lambda: sim.scrape_manager.scrape_all(now))
    record = _best_of(lambda: sim.rule_evaluator.evaluate_all(now))
    alert = _best_of(lambda: sim.rule_evaluator.evaluate_alerts(now))
    probe = _best_of(lambda: sim.prober.probe_all(now))

    data_plane = scrape / cfg.scrape_interval + record / cfg.rule_interval
    control_plane = alert / cfg.alert_interval + probe / cfg.probe_interval
    ratio = control_plane / data_plane
    print(
        f"\n[control-plane] per-cycle: scrape={scrape * 1e3:.2f}ms "
        f"record={record * 1e3:.2f}ms alert={alert * 1e3:.2f}ms "
        f"probe={probe * 1e3:.2f}ms ratio={ratio * 100:.2f}%"
    )
    _merge_artifact(
        "control_plane",
        {
            "scrape_cycle_seconds": scrape,
            "recording_cycle_seconds": record,
            "alert_cycle_seconds": alert,
            "probe_cycle_seconds": probe,
            "intervals": {
                "scrape": cfg.scrape_interval,
                "rules": cfg.rule_interval,
                "alerts": cfg.alert_interval,
                "probes": cfg.probe_interval,
            },
            "bound": CONTROL_PLANE_BOUND,
            "overhead_ratio": ratio,
        },
    )
    assert ratio < CONTROL_PLANE_BOUND, ratio
