"""E16 — self-telemetry overhead: the middleware must stay cheap.

Every request through every component pays the observability
middleware (trace resolution, in-flight gauge, counter + histogram
update, span record).  The stack scrapes itself every 15 s on top of
user traffic, so this cost multiplies across the whole deployment —
this bench guards it with a hard per-request bound.
"""

from __future__ import annotations

import time

from repro.common.httpx import App, Request, Response

#: Mean extra cost the middleware may add per request.  Generous
#: against CI-runner noise — the observed overhead is ~10–30 µs.
OVERHEAD_BOUND_SECONDS = 500e-6

REQUESTS = 2000


def build_app() -> App:
    app = App(name="bench")
    app.router.get("/ping/{name}", lambda req: Response.text("pong"))
    return app


def _time_per_request(fn) -> float:
    fn()  # warm caches / lazy imports outside the timed section
    started = time.perf_counter()
    for _ in range(REQUESTS):
        fn()
    return (time.perf_counter() - started) / REQUESTS


def test_middleware_overhead_bounded():
    app = build_app()
    request = Request(method="GET", path="/ping/a")

    bare = _time_per_request(lambda: app._handle_inner(request))
    full = _time_per_request(lambda: app.handle(request))
    overhead = full - bare
    print(
        f"\n[E16] per-request: bare={bare * 1e6:.1f}µs "
        f"full={full * 1e6:.1f}µs overhead={overhead * 1e6:.1f}µs"
    )
    assert overhead < OVERHEAD_BOUND_SECONDS


def test_full_request_with_middleware(benchmark):
    app = build_app()
    request = Request(method="GET", path="/ping/a")
    response = benchmark(lambda: app.handle(request))
    assert response.status == 200


def test_span_store_stays_bounded():
    """The span ring must not grow without limit under load."""
    app = build_app()
    request = Request(method="GET", path="/ping/a")
    for _ in range(REQUESTS):
        app.handle(request)
    assert len(app.telemetry.spans) <= app.telemetry.spans.capacity
    assert app.telemetry.spans.total_recorded >= REQUESTS
