"""Governor guards: daemon overhead and the carbon dividend.

Two promises ride with the carbon-aware control plane:

1. **It is cheap.**  A 10 Hz accumulator daemon sounds expensive next
   to a 15 s scrape loop; amortized to per-second rates it must stay
   under 5% of the monitoring data plane (scraping + recording rules)
   it runs beside.  The unchanged-counter fast path in
   ``NodeAccumulator.poll`` is what this bound protects.

2. **It pays for itself.**  On a seeded 24 h run, deferring
   deferrable jobs out of high-carbon windows must yield a positive
   avoided-gCO2e figure, and the governed fleet must emit less than
   the identical ungoverned baseline (same seed, same submissions).

Results land in ``BENCH_governor.json`` for the CI artifact.
"""

from __future__ import annotations

import json
import math
import time

from repro.cluster import StackSimulation, small_topology
from repro.cluster.simulation import SimulationConfig
from repro.energy.rules_library import EMISSIONS_METRIC
from repro.resourcemgr.workload import SizeClass, WorkloadMix

ARTIFACT_PATH = "BENCH_governor.json"

#: Amortized per-second daemon cost (10 Hz polls + policy steps)
#: relative to the data plane (scrape + recording cycles).
OVERHEAD_BOUND = 0.05

#: Poll calls per timing batch — one poll is ~1-2 µs, far too small
#: to time individually against perf_counter granularity.
POLL_BATCH = 2000
BEST_OF_RUNS = 7

DAY = 24 * 3600.0


def _merge_artifact(section: str, payload: dict) -> None:
    try:
        with open(ARTIFACT_PATH, encoding="utf-8") as fh:
            artifact = json.load(fh)
        if not isinstance(artifact, dict):
            artifact = {}
    except (OSError, ValueError):
        artifact = {}
    artifact[section] = payload
    with open(ARTIFACT_PATH, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=2)


def _best_of(fn, runs: int = BEST_OF_RUNS) -> float:
    fn()  # warm caches outside the timed runs
    best = math.inf
    for _ in range(runs):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


# -- 1. daemon overhead ----------------------------------------------------


def test_daemon_overhead_under_bound():
    """10 Hz polls + policy steps must stay <5% of the data plane."""
    sim = StackSimulation(
        small_topology(cpu_nodes=2, gpu_nodes=1),
        SimulationConfig(
            seed=5,
            governor=True,
            governor_poll_interval=0.1,
            carbon_policy="threshold",
            carbon_cap_w=90.0,
            meta_monitoring=False,
            probe_interval=0.0,
            with_alerting=False,
        ),
    )
    sim.run(600.0)  # realistic series population before timing
    gov, now, cfg = sim.governor, sim.now, sim.config

    scrape = _best_of(lambda: sim.scrape_manager.scrape_all(now))
    record = _best_of(lambda: sim.rule_evaluator.evaluate_all(now))

    def poll_batch():
        for _ in range(POLL_BATCH):
            gov.poll(now)

    poll = _best_of(poll_batch) / POLL_BATCH
    policy = _best_of(lambda: gov.policy_step(now))

    data_plane = scrape / cfg.scrape_interval + record / cfg.rule_interval
    daemon = poll / cfg.governor_poll_interval + policy / cfg.governor_interval
    ratio = daemon / data_plane
    print(
        f"\n[governor] scrape={scrape * 1e3:.2f}ms record={record * 1e3:.2f}ms "
        f"poll={poll * 1e6:.2f}µs policy={policy * 1e6:.1f}µs "
        f"daemon={daemon * 1e6:.1f}µs/s ratio={ratio * 100:.2f}%"
    )
    _merge_artifact(
        "daemon_overhead",
        {
            "scrape_cycle_seconds": scrape,
            "recording_cycle_seconds": record,
            "poll_seconds": poll,
            "policy_step_seconds": policy,
            "intervals": {
                "scrape": cfg.scrape_interval,
                "rules": cfg.rule_interval,
                "poll": cfg.governor_poll_interval,
                "policy": cfg.governor_interval,
            },
            "bound": OVERHEAD_BOUND,
            "overhead_ratio": ratio,
        },
    )
    assert ratio < OVERHEAD_BOUND, ratio


# -- 2. avoided emissions vs an ungoverned baseline ------------------------

#: One deliberately deferral-friendly workload: over half the jobs are
#: carbon-deferrable, so a 24 h run moves a meaningful share of the
#: fleet's energy out of the morning/evening intensity peaks.
MIX = WorkloadMix(
    mean_interarrival=900.0,
    duration_mu=7.2,
    deferrable_fraction=0.6,
    sizes=(SizeClass("s", weight=1.0, ncores=8, memory_gb=16),),
)


def _lean_config(**overrides) -> SimulationConfig:
    return SimulationConfig(
        seed=17,
        with_emissions_providers=("rte",),
        meta_monitoring=False,
        probe_interval=0.0,
        with_alerting=False,
        update_interval=3600.0,
        **overrides,
    )


def _fleet_emissions_g(sim) -> float:
    """Integral of fleet power × grid intensity over the run.

    Deliberately *node*-level: Eq. 1's per-unit attribution splits
    shared/idle power by allocated cores, so packing jobs tighter
    (exactly what deferral release bursts do) attributes *more* of
    the constant idle power to units — an artifact that would mask
    the real fleet-level reduction an external watt-meter sees.
    """
    step = sim.config.rule_interval
    start = sim.config.start_time + step
    end = sim.now
    power = sim.engine.query_range("sum(ceems:node:power_watts)", start, end, step)
    intensity = sim.engine.query_range(
        'ceems_emissions_gCo2_kWh{provider="resolved"}', start, end, step
    )
    if not power.series or not intensity.series:
        return 0.0
    (p_ts, p_vals) = next(iter(power.series.values()))
    (i_ts, i_vals) = next(iter(intensity.series.values()))
    by_ts = dict(zip(i_ts.tolist(), i_vals.tolist()))
    total_g = 0.0
    for t, watts in zip(p_ts.tolist(), p_vals.tolist()):
        g_per_kwh = by_ts.get(t)
        if g_per_kwh is None or watts != watts or g_per_kwh != g_per_kwh:
            continue  # missing or NaN sample
        total_g += watts * g_per_kwh / 3.6e6 * step
    return total_g


def _attributed_emissions_g(sim) -> float:
    """Integral of the per-unit emission-rate series (Eq. 1 view)."""
    result = sim.engine.query(
        f"sum(sum_over_time({EMISSIONS_METRIC}[{int(DAY)}s]))", at=sim.now
    )
    if not result.vector:
        return 0.0
    return result.vector[0].value * sim.config.rule_interval


def test_governed_day_avoids_emissions():
    baseline = StackSimulation(
        small_topology(cpu_nodes=2, gpu_nodes=0), _lean_config(), workload=MIX
    )
    baseline.run(DAY)

    governed = StackSimulation(
        small_topology(cpu_nodes=2, gpu_nodes=0),
        _lean_config(
            governor=True,
            # 1 s polls keep a 24 h bench affordable; still 15 polls
            # per node step, far inside the single-wrap regime.
            governor_poll_interval=1.0,
            carbon_policy="threshold",
            carbon_threshold=75.0,
            carbon_cap_w=90.0,
        ),
        workload=MIX,
    )
    governed.run(DAY)
    gov = governed.governor

    baseline_g = _fleet_emissions_g(baseline)
    governed_g = _fleet_emissions_g(governed)
    print(
        f"\n[governor] 24h fleet emissions: baseline={baseline_g:.1f}g "
        f"governed={governed_g:.1f}g "
        f"(deferred={gov.jobs_deferred_total} released={gov.jobs_released_total} "
        f"claimed_avoided={gov.co2e_avoided_g:.2f}g)"
    )
    _merge_artifact(
        "carbon_dividend",
        {
            "hours": 24.0,
            "baseline_fleet_emissions_g": baseline_g,
            "governed_fleet_emissions_g": governed_g,
            "reduction_g": baseline_g - governed_g,
            "baseline_attributed_g": _attributed_emissions_g(baseline),
            "governed_attributed_g": _attributed_emissions_g(governed),
            "jobs_deferred": gov.jobs_deferred_total,
            "jobs_released": gov.jobs_released_total,
            "claimed_avoided_g": gov.co2e_avoided_g,
            "cap_writes": gov.cap_writes_total,
        },
    )
    # The control loop actually engaged...
    assert gov.jobs_deferred_total > 0
    assert gov.jobs_released_total > 0
    # ...claims a positive dividend...
    assert gov.co2e_avoided_g > 0.0
    # ...and the governed fleet really emitted less than the identical
    # ungoverned day.
    assert governed_g < baseline_g
