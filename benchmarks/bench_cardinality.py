"""E10 — TSDB cardinality cleanup of short-lived workloads.

Paper (Fig. 1 discussion): removing the metrics of workloads that did
not outlast a configured cutoff *"helps in reducing the cardinality
of metrics"*.  We generate a churny history whose job durations are
log-normal (many tiny jobs, few long ones — the canonical HPC shape),
sweep the cutoff, and report the series-count reduction; the timed
section is the cleanup pass itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apiserver.cleanup import CardinalityCleaner
from repro.apiserver.db import Database
from repro.resourcemgr.base import ComputeUnit, UnitState
from repro.tsdb.model import Labels
from repro.tsdb.storage import TSDB

NJOBS = 2000
SERIES_PER_JOB = 9  # the exporter's per-unit metric families


def churny_env():
    """A DB + TSDB with 2000 finished jobs of log-normal duration."""
    rng = np.random.default_rng(11)
    db = Database()
    tsdb = TSDB()
    units = []
    durations = np.clip(rng.lognormal(5.5, 1.6, NJOBS), 10.0, 86400.0)
    for i, duration in enumerate(durations):
        uuid = str(10_000 + i)
        units.append(
            ComputeUnit(
                uuid=uuid, name=f"j{i}", manager="slurm", cluster="jz",
                user=f"user{i % 30:03d}", project=f"p{i % 9}",
                created_at=0.0, started_at=0.0, ended_at=float(duration),
                state=UnitState.COMPLETED, cpus=4, memory_bytes=2**30,
            )
        )
        for m in range(SERIES_PER_JOB):
            tsdb.append(
                Labels({"__name__": f"ceems_unit_metric_{m}", "uuid": uuid}), 0.0, 1.0
            )
    db.upsert_units(units, now=86400.0)
    return db, tsdb, durations


@pytest.mark.parametrize("cutoff", [60.0, 300.0, 1800.0])
def test_cleanup_cutoff_sweep(benchmark, cutoff):
    db, tsdb, durations = churny_env()
    before = tsdb.num_series
    cleaner = CardinalityCleaner(db, [tsdb], cutoff)

    stats = benchmark.pedantic(cleaner.run, args=(86400.0,), rounds=1, iterations=1)

    after = tsdb.num_series
    short_fraction = float(np.mean(durations < cutoff))
    reduction = 1 - after / before
    print(
        f"\n[E10] cutoff {cutoff:6.0f} s: {before} -> {after} series "
        f"({reduction * 100:.1f}% reduction; {short_fraction * 100:.1f}% of jobs are short)"
    )
    benchmark.extra_info["series_before"] = before
    benchmark.extra_info["series_after"] = after
    benchmark.extra_info["reduction_pct"] = reduction * 100
    # every short job's series must be gone, long jobs untouched
    assert stats.units_cleaned == int(np.sum(durations < cutoff))
    assert after == before - stats.units_cleaned * SERIES_PER_JOB


def test_reduction_monotone_in_cutoff():
    """Bigger cutoff -> strictly more cleanup (sanity of the sweep)."""
    results = []
    for cutoff in (60.0, 300.0, 1800.0, 7200.0):
        db, tsdb, _ = churny_env()
        CardinalityCleaner(db, [tsdb], cutoff).run(86400.0)
        results.append(tsdb.num_series)
    assert results == sorted(results, reverse=True)
    print(f"\n[E10] series remaining by cutoff (60s/5m/30m/2h): {results}")
