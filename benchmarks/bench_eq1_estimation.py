"""E1 / E14 — Eq. (1) power estimation: fidelity and rule-variant cost.

Regenerates the paper's §III.A content: per-job power estimated by
the recording rules on each Jean-Zay node class, compared against the
simulation's ground-truth attribution.  The printed table is the
evaluation artifact; the timed section is one recording-rule
evaluation cycle (the recurring cost Prometheus pays every interval).
"""

from __future__ import annotations

import pytest

from repro.common.clock import SimClock
from repro.common.config import ExporterConfig
from repro.emissions import OWIDProvider, ProviderRegistry, RTEProvider
from repro.emissions.pipeline import EmissionsExporter
from repro.energy import NodeGroup, POWER_METRIC, emissions_rules, rules_for_group
from repro.exporter import CEEMSExporter, DCGMExporter
from repro.hwsim import NodeSpec, SimulatedNode, UsageProfile
from repro.tsdb import ScrapeConfig, ScrapeManager, ScrapeTarget, TSDB
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.rules import RuleManager

JOB = "/system.slice/slurmstepd.scope/job_{}"

VARIANTS = {
    "intel-cpu": (
        NodeSpec(name="intel0"),
        NodeGroup("intel-cpu", True, False, True),
        [("101", 24, 32, UsageProfile.constant(0.95, 0.2), 0),
         ("102", 8, 96, UsageProfile.constant(0.35, 0.9), 0),
         ("103", 8, 16, UsageProfile.constant(0.05, 0.1), 0)],
    ),
    "amd-cpu": (
        NodeSpec(name="amd0", cpu_model="amd-milan", cores_per_socket=32, memory_gb=256, dram_profile="ddr4-384g"),
        NodeGroup("amd-cpu", False, False, True),
        [("201", 48, 64, UsageProfile.constant(0.9, 0.5), 0),
         ("202", 16, 32, UsageProfile.constant(0.9, 0.5), 0)],
    ),
    "gpu-ipmi-incl": (
        NodeSpec(name="gpu0", gpus=("A100",) * 4, memory_gb=384, dram_profile="ddr4-384g", ipmi_includes_gpu=True),
        NodeGroup("gpu-ipmi-incl", True, True, True),
        [("301", 16, 128, UsageProfile.constant(0.6, 0.5, 0.9), 2),
         ("302", 16, 64, UsageProfile.constant(0.6, 0.3), 0)],
    ),
    "gpu-ipmi-excl": (
        NodeSpec(name="gpu1", gpus=("A100",) * 4, memory_gb=384, dram_profile="ddr4-384g", ipmi_includes_gpu=False),
        NodeGroup("gpu-ipmi-excl", True, True, False),
        [("401", 16, 128, UsageProfile.constant(0.6, 0.5, 0.9), 2)],
    ),
}


def build(variant: str):
    spec, group, jobs = VARIANTS[variant]
    clock = SimClock(start=0.0)
    node = SimulatedNode(spec, seed=5)
    db = TSDB()
    scrapes = ScrapeManager(db, ScrapeConfig(interval=15.0))
    labels = {"hostname": spec.name, "nodegroup": group.name}
    exporter = CEEMSExporter(node, clock, ExporterConfig(collectors=("cgroup", "rapl", "ipmi", "node", "gpu_map")))
    scrapes.add_target(ScrapeTarget(app=exporter.app, instance="n:9010", job="ceems", group_labels=dict(labels)))
    if spec.gpus:
        scrapes.add_target(ScrapeTarget(app=DCGMExporter(node, clock).app, instance="n:9400", job="dcgm", group_labels=dict(labels)))
    registry = ProviderRegistry()
    registry.register(RTEProvider(seed=1))
    registry.register(OWIDProvider())
    scrapes.add_target(ScrapeTarget(app=EmissionsExporter(registry, "FR", clock).app, instance="em:9020", job="emissions"))
    manager = RuleManager(db)
    manager.add_group(rules_for_group(group, 30.0))
    manager.add_group(emissions_rules(30.0))
    for uuid, cores, mem_gb, profile, ngpus in jobs:
        node.place_task(uuid, JOB.format(uuid), cores, mem_gb * 2**30, profile, 0.0, ngpus=ngpus)
    clock.every(5.0, lambda now: node.advance(now, 5.0))
    scrapes.register_timer(clock)
    manager.register_timers(clock)
    clock.advance(1200.0)
    return clock, node, db, manager, PromQLEngine(db)


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_eq1_variant(benchmark, variant):
    clock, node, db, manager, engine = build(variant)
    at = clock.now()

    estimates = {el.labels.get("uuid"): el.value for el in engine.query(POWER_METRIC, at=at).vector}
    oracle = {u: node.true_task_power(u) for u in node.tasks}
    print(f"\n[E1/{variant}] per-job power: Eq.(1) estimate vs ground truth")
    errors = []
    for uuid in sorted(estimates):
        true = oracle.get(uuid, 0.0)
        err = (estimates[uuid] - true) / true * 100 if true else 0.0
        errors.append(abs(err))
        print(f"  job {uuid}: est {estimates[uuid]:8.1f} W  true {true:8.1f} W  err {err:+6.1f}%")
    total_est, total_true = sum(estimates.values()), sum(oracle.values())
    print(f"  TOTAL    est {total_est:8.1f} W  true {total_true:8.1f} W  "
          f"(conservation gap {100 * (total_est - total_true) / total_true:+.1f}%)")

    # the recurring cost: one rules evaluation cycle
    def evaluate_cycle():
        return manager.evaluate_all(at)

    samples = benchmark(evaluate_cycle)
    benchmark.extra_info["samples_per_cycle"] = samples
    benchmark.extra_info["max_abs_error_pct"] = max(errors)
    benchmark.extra_info["conservation_gap_pct"] = abs(total_est - total_true) / total_true * 100

    assert total_est == pytest.approx(total_true, rel=0.15)
