"""E7 — Jean-Zay scale: >1400 nodes, >3500 GPUs, high daily job churn.

The paper's headline deployment claim is that one CEEMS stack monitors
the whole of Jean-Zay.  We reproduce the *shape* at two scales:

* a 5%-scale deployment runs live (scrapes + rules + updater) for 30
  simulated minutes and reports sustained churn;
* the full 1424-node topology is constructed and a single complete
  scrape cycle over all ~1700 targets is timed, extrapolating the
  scrape duty cycle at the paper's interval.
"""

from __future__ import annotations

import pytest

from repro.cluster import StackSimulation, jean_zay_topology
from repro.cluster.jean_zay import topology_stats
from repro.cluster.simulation import SimulationConfig
from repro.resourcemgr.workload import SizeClass, WorkloadMix

SCALE_MIX = WorkloadMix(
    mean_interarrival=30.0,
    duration_mu=6.5,
    nusers=50,
    sizes=(
        SizeClass("small", weight=0.5, ncores=8, memory_gb=16),
        SizeClass("medium", weight=0.3, ncores=40, memory_gb=64),
        SizeClass("gpu", weight=0.2, ncores=16, ngpus=4, memory_gb=128, partition="gpu"),
    ),
)


@pytest.fixture(scope="module")
def jz_small() -> StackSimulation:
    sim = StackSimulation(
        jean_zay_topology(scale=0.05),
        SimulationConfig(seed=2024, cluster_name="jean-zay", update_interval=600.0,
                         scrape_interval=30.0, node_step=30.0, rule_interval=60.0),
        workload=SCALE_MIX,
    )
    sim.run(1800.0)
    return sim


def test_live_deployment_churn(benchmark, jz_small):
    """Sustained operation: one more full minute of deployment life."""
    stats = jz_small.stats()
    print(f"\n[E7] 5%-scale Jean-Zay after 30 sim-minutes:")
    print(f"  nodes={stats['nodes']:.0f} gpus={stats['gpus']:.0f} "
          f"series={stats['tsdb_series']:.0f} samples={stats['tsdb_samples']:.0f}")
    print(f"  jobs: {stats['jobs_submitted']:.0f} submitted, "
          f"{stats['jobs_completed']:.0f} completed, {stats['jobs_running']:.0f} running")
    churn_per_day = stats["jobs_submitted"] / 1800.0 * 86400.0
    print(f"  implied churn: {churn_per_day:.0f} jobs/day at this scale")
    benchmark.extra_info.update({k: v for k, v in stats.items()})
    benchmark.extra_info["jobs_per_day"] = churn_per_day

    benchmark.pedantic(jz_small.run, args=(60.0,), rounds=3, iterations=1)
    assert stats["jobs_submitted"] > 30
    assert jz_small.scrape_manager.healthy_targets() == len(jz_small.scrape_manager.targets)


@pytest.fixture(scope="module")
def jz_full() -> StackSimulation:
    """The full 1424-node topology (construction only; no history)."""
    sim = StackSimulation(
        jean_zay_topology(scale=1.0),
        SimulationConfig(seed=1, with_workload=False, scrape_interval=30.0, node_step=30.0),
    )
    return sim


def test_full_scale_scrape_cycle(benchmark, jz_full):
    """One complete scrape of all ~1700 targets at paper scale."""
    stats = topology_stats(jean_zay_topology(scale=1.0))
    ntargets = len(jz_full.scrape_manager.targets)
    print(f"\n[E7] full Jean-Zay: {stats['nodes']} nodes, {stats['gpus']} GPUs, "
          f"{ntargets} scrape targets")
    # Let nodes accumulate some state first (one integration step).
    jz_full.clock.advance(30.0)

    state = {"t": jz_full.now}

    def one_cycle():
        state["t"] += 30.0
        for node in jz_full.nodes:
            node.advance(state["t"], 30.0)
        return jz_full.scrape_manager.scrape_all(state["t"])

    samples = benchmark.pedantic(one_cycle, rounds=3, iterations=1)
    print(f"  samples per cycle: {samples}")
    benchmark.extra_info["targets"] = ntargets
    benchmark.extra_info["samples_per_cycle"] = samples
    assert samples > 30_000  # full-cluster cycle ingests tens of thousands

    # Duty-cycle shape claim: the scrape cycle fits inside the interval.
    mean_s = benchmark.stats.stats.mean
    print(f"  cycle wall time {mean_s:.2f} s vs 30 s interval "
          f"({mean_s / 30.0 * 100:.1f}% duty cycle, single-threaded Python)")
