"""E3-long — the paper's actual Fig. 2a window: three months of history.

Fig. 2a shows a user's aggregate usage *"during the last 3 months"*.
The short benches use 2-hour histories; this one runs a genuine 90-day
deployment (coarsened cadences — 15 min scrapes, 30 min rules — 2 nodes, diurnal workload) through the
complete stack — scrapes, rules, Thanos replication + downsampling,
hot-TSDB retention, API-server accumulation — and then regenerates the
90-day Fig. 2a panels and checks the long-term storage answered where
the hot TSDB no longer could.
"""

from __future__ import annotations

import pytest

from repro.cluster import StackSimulation, small_topology
from repro.cluster.simulation import SimulationConfig
from repro.common.units import format_co2, format_energy
from repro.dashboard import fig2a_user_overview
from repro.resourcemgr.workload import SizeClass, WorkloadMix

DAY = 86400.0


@pytest.fixture(scope="module")
def ninety_days() -> StackSimulation:
    mix = WorkloadMix(
        mean_interarrival=3000.0,
        duration_mu=8.6,
        duration_sigma=1.0,
        diurnal_amplitude=0.5,
        nusers=12,
        sizes=(
            SizeClass("small", weight=0.7, ncores=8, memory_gb=16),
            SizeClass("medium", weight=0.3, ncores=16, memory_gb=32),
        ),
    )
    config = SimulationConfig(
        seed=99,
        scrape_interval=900.0,
        node_step=900.0,
        rule_interval=1800.0,
        update_interval=6 * 3600.0,
        sidecar_interval=12 * 3600.0,
        compactor_interval=24 * 3600.0,
        hot_retention=14 * DAY,
    )
    sim = StackSimulation(small_topology(cpu_nodes=2, gpu_nodes=0), config, workload=mix)
    sim.run(90 * DAY)
    return sim


def test_fig2a_over_three_months(benchmark, ninety_days):
    sim = ninety_days
    stats = sim.stats()
    print(f"\n[E3-long] 90 days simulated: {stats['jobs_submitted']:.0f} jobs, "
          f"{stats['tsdb_samples']:.0f} hot samples "
          f"(retention {sim.config.hot_retention / DAY:.0f} d), "
          f"{len(sim.object_store.blocks)} Thanos blocks")
    user = max(sim.ceems_datasource("admin").global_usage(), key=lambda r: r["num_units"])["user"]
    ceems = sim.ceems_datasource(user)

    panels = benchmark(fig2a_user_overview, ceems)

    by_title = {p.title: p for p in panels}
    print(f"[E3-long] Fig. 2a for {user} over 3 months:")
    for panel in panels:
        print(f"  {panel.render()}")
    assert by_title["Total jobs"].value > 20
    assert by_title["Total energy"].value > 0
    # over 3 months a steady user lands in the kWh range, not J or MWh
    assert 0.2 < by_title["Total energy"].value / 3.6e6 < 5000


def test_history_survives_hot_retention(ninety_days):
    """Data older than hot retention is only in Thanos — and queryable."""
    sim = ninety_days
    hot_min = sim.hot_tsdb.min_time
    assert hot_min is not None
    assert sim.now - hot_min <= sim.config.hot_retention * 1.2
    # a query 60 days back must be answered by the fan-out (Thanos raw)
    at = sim.now - 60 * DAY
    result = sim.engine.query("sum(ceems:node:power_watts)", at=at)
    assert result.vector and result.vector[0].value > 0
    print(f"\n[E3-long] day-30 power answered from Thanos: "
          f"{result.vector[0].value:.0f} W "
          f"(hot TSDB only holds the last {(sim.now - hot_min) / DAY:.1f} days)")


def test_downsampled_resolutions_populated(ninety_days):
    sim = ninety_days
    five_m = sim.object_store.tsdb("5m").num_samples
    one_h = sim.object_store.tsdb("1h").num_samples
    raw = sim.object_store.tsdb("raw").num_samples
    print(f"\n[E3-long] Thanos samples: raw {raw}, 5m {five_m}, 1h {one_h}")
    # with 15-minute raw cadence the 5m resolution is skipped for any
    # series sparser than the bucket; only single-point stragglers
    # (short-lived units) land there — a tiny fraction of raw.
    assert five_m < raw * 0.05
    assert raw > 100_000
    assert one_h > 0


def test_energy_conservation_over_quarter(ninety_days):
    """Total accounted energy ≈ integral of cluster power over 90 d."""
    sim = ninety_days
    total_accounted = sum(
        r["energy_joules"] for r in sim.db.list_units(limit=100000)
    )
    result = sim.engine.query_range(
        "sum(ceems:node:power_watts)", sim.now - 90 * DAY + 3600, sim.now, 6 * 3600.0
    )
    import numpy as np

    (_labels, (ts, vs)), = result.series.items()
    node_energy = float(np.trapezoid(vs, ts))
    ratio = total_accounted / node_energy
    print(f"\n[E3-long] accounted {format_energy(total_accounted)} vs node total "
          f"{format_energy(node_energy)} -> {ratio * 100:.0f}% attributed")
    # jobs only run part of the time on 2 nodes; idle power unattributed
    assert 0.1 < ratio <= 1.01


def test_selector_memo_effective_during_rule_evaluation(ninety_days):
    """Rule groups hammer the same selectors every interval; after 90
    simulated days the hot TSDB's selector memo must be doing real
    work.  The memo is invalidated whenever series appear/disappear,
    and with jobs arriving every ~50 min each unit's new series wipe
    it — so the steady-state hit rate sits well below 1 (~28% at
    seed 99), but must stay clearly above zero."""
    sim = ninety_days
    stats = sim.rule_manager.selector_cache_stats()
    print(f"\n[E3-long] hot-TSDB selector memo: {stats['hits']:.0f} hits, "
          f"{stats['misses']:.0f} misses ({stats['hit_rate'] * 100:.0f}% hit rate)")
    assert stats["hits"] > 0
    assert stats["hit_rate"] > 0.1
    fanout = sim.fanout.selector_cache_stats()
    print(f"[E3-long] fan-out selector memo: {fanout['hits']:.0f} hits, "
          f"{fanout['misses']:.0f} misses")


def test_quarterly_emissions_plausible(ninety_days):
    sim = ninety_days
    total_emissions = sum(r["total_emissions_g"] for r in sim.ceems_datasource("admin").global_usage())
    total_energy = sum(r["total_energy_joules"] for r in sim.ceems_datasource("admin").global_usage())
    implied = total_emissions / (total_energy / 3.6e6)
    print(f"\n[E3-long] quarter: {format_energy(total_energy)}, "
          f"{format_co2(total_emissions)}, implied factor {implied:.0f} g/kWh")
    assert 15.0 < implied < 160.0  # French grid, seasonally averaged
