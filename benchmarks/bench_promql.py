"""PromQL engine micro-benchmarks: query cost vs series count.

Not a paper table, but the foundation every other latency number
stands on: how instant selectors, rate() and aggregations scale with
the number of matching series — the quantity the Jean-Zay deployment
multiplies by 1400.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.tsdb.model import Labels
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.storage import TSDB

SAMPLES_PER_SERIES = 120  # 30 min at 15 s


def make_db(nseries: int) -> TSDB:
    db = TSDB()
    for s in range(nseries):
        labels = Labels(
            {
                "__name__": "m",
                "uuid": str(s),
                "hostname": f"n{s % 100:03d}",
                "nodegroup": "intel-cpu",
            }
        )
        for i in range(SAMPLES_PER_SERIES):
            db.append(labels, i * 15.0, float(s + i))
    return db


AT = (SAMPLES_PER_SERIES - 1) * 15.0


@pytest.mark.parametrize("nseries", [100, 1000, 5000])
def test_instant_selector_scaling(benchmark, nseries):
    engine = PromQLEngine(make_db(nseries))
    result = benchmark(engine.query, "m", AT)
    assert len(result.vector) == nseries


@pytest.mark.parametrize("nseries", [100, 1000, 5000])
def test_rate_scaling(benchmark, nseries):
    engine = PromQLEngine(make_db(nseries))
    result = benchmark(engine.query, "rate(m[2m])", AT)
    assert len(result.vector) == nseries


@pytest.mark.parametrize("nseries", [100, 1000, 5000])
def test_sum_by_scaling(benchmark, nseries):
    engine = PromQLEngine(make_db(nseries))
    result = benchmark(engine.query, "sum by (hostname) (rate(m[2m]))", AT)
    assert len(result.vector) == min(nseries, 100)


def test_indexed_selection_beats_scan(benchmark):
    """The inverted label index: selecting 1 of 5000 series is O(1)-ish."""
    engine = PromQLEngine(make_db(5000))
    result = benchmark(engine.query, 'm{uuid="42"}', AT)
    assert len(result.vector) == 1
    assert benchmark.stats.stats.mean < 1e-3


def test_group_left_join_scaling(benchmark):
    """The Eq. (1) join shape at 1000 units over 100 hosts."""
    db = make_db(1000)
    for h in range(100):
        labels = Labels({"__name__": "node_m", "hostname": f"n{h:03d}", "nodegroup": "intel-cpu"})
        for i in range(SAMPLES_PER_SERIES):
            db.append(labels, i * 15.0, 500.0)
    engine = PromQLEngine(db)
    result = benchmark(
        engine.query, "m / on(hostname) group_left() node_m", AT
    )
    assert len(result.vector) == 1000


# -- columnar vs per-step range evaluation ------------------------------
#
# The tentpole claim: a Grafana-shaped range query (rate + aggregation
# + group_left join) over a long window must not cost one full instant
# evaluation per step.  The columnar evaluator resolves selectors once
# and walks the step axis with ndarray ops; the per-step path is kept
# as the differential reference.  The recorded ``speedup`` lands in the
# bench JSON via extra_info.

RANGE_QUERY = (
    "sum by (hostname) (rate(m[4m])) "
    "/ on(hostname) group_left() rate(node_m[4m])"
)
RANGE_SAMPLES = 10_500  # ~44 h at 15 s, enough history for 10k steps
RANGE_HOSTS = 5
RANGE_UNITS = 20


def make_range_db() -> TSDB:
    db = TSDB()
    rng = np.random.default_rng(3)
    for s in range(RANGE_UNITS):
        labels = Labels(
            {
                "__name__": "m",
                "uuid": str(s),
                "hostname": f"n{s % RANGE_HOSTS:03d}",
            }
        )
        counter = 0.0
        for i in range(RANGE_SAMPLES):
            counter += float(rng.uniform(0.0, 2.0))
            db.append(labels, i * 15.0, counter)
    for h in range(RANGE_HOSTS):
        labels = Labels({"__name__": "node_m", "hostname": f"n{h:03d}"})
        counter = 0.0
        for i in range(RANGE_SAMPLES):
            counter += float(rng.uniform(50.0, 100.0))
            db.append(labels, i * 15.0, counter)
    return db


@pytest.mark.parametrize("nsteps", [1000, 10_000])
def test_columnar_range_speedup(benchmark, nsteps):
    """Columnar range evaluation: identical results, 10×+ at 10k steps."""
    engine = PromQLEngine(make_range_db())
    start = 300.0
    step = 15.0
    end = start + (nsteps - 1) * step

    t0 = time.perf_counter()
    reference = engine.query_range(RANGE_QUERY, start, end, step, strategy="per_step")
    per_step_seconds = time.perf_counter() - t0

    columnar = benchmark(
        engine.query_range, RANGE_QUERY, start, end, step, strategy="columnar"
    )

    # Differential check on the benchmarked workload itself.
    assert set(columnar.series) == set(reference.series) and columnar.series
    for labels, (ref_ts, ref_vs) in reference.series.items():
        col_ts, col_vs = columnar.series[labels]
        assert np.array_equal(col_ts, ref_ts)
        assert np.array_equal(col_vs, ref_vs, equal_nan=True)

    columnar_seconds = benchmark.stats.stats.mean
    speedup = per_step_seconds / columnar_seconds
    benchmark.extra_info["nsteps"] = nsteps
    benchmark.extra_info["per_step_seconds"] = per_step_seconds
    benchmark.extra_info["speedup"] = speedup
    print(f"\n[promql-columnar] {nsteps} steps: per-step {per_step_seconds:.3f}s, "
          f"columnar {columnar_seconds:.3f}s -> {speedup:.1f}x")
    # Perf-regression guard: the columnar path must never lose to the
    # reference it exists to replace...
    assert columnar_seconds < per_step_seconds
    # ...and at dashboard scale the win must stay an order of magnitude.
    if nsteps >= 10_000:
        assert speedup > 10.0
