"""PromQL engine micro-benchmarks: query cost vs series count.

Not a paper table, but the foundation every other latency number
stands on: how instant selectors, rate() and aggregations scale with
the number of matching series — the quantity the Jean-Zay deployment
multiplies by 1400.
"""

from __future__ import annotations

import pytest

from repro.tsdb.model import Labels
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.storage import TSDB

SAMPLES_PER_SERIES = 120  # 30 min at 15 s


def make_db(nseries: int) -> TSDB:
    db = TSDB()
    for s in range(nseries):
        labels = Labels(
            {
                "__name__": "m",
                "uuid": str(s),
                "hostname": f"n{s % 100:03d}",
                "nodegroup": "intel-cpu",
            }
        )
        for i in range(SAMPLES_PER_SERIES):
            db.append(labels, i * 15.0, float(s + i))
    return db


AT = (SAMPLES_PER_SERIES - 1) * 15.0


@pytest.mark.parametrize("nseries", [100, 1000, 5000])
def test_instant_selector_scaling(benchmark, nseries):
    engine = PromQLEngine(make_db(nseries))
    result = benchmark(engine.query, "m", AT)
    assert len(result.vector) == nseries


@pytest.mark.parametrize("nseries", [100, 1000, 5000])
def test_rate_scaling(benchmark, nseries):
    engine = PromQLEngine(make_db(nseries))
    result = benchmark(engine.query, "rate(m[2m])", AT)
    assert len(result.vector) == nseries


@pytest.mark.parametrize("nseries", [100, 1000, 5000])
def test_sum_by_scaling(benchmark, nseries):
    engine = PromQLEngine(make_db(nseries))
    result = benchmark(engine.query, "sum by (hostname) (rate(m[2m]))", AT)
    assert len(result.vector) == min(nseries, 100)


def test_indexed_selection_beats_scan(benchmark):
    """The inverted label index: selecting 1 of 5000 series is O(1)-ish."""
    engine = PromQLEngine(make_db(5000))
    result = benchmark(engine.query, 'm{uuid="42"}', AT)
    assert len(result.vector) == 1
    assert benchmark.stats.stats.mean < 1e-3


def test_group_left_join_scaling(benchmark):
    """The Eq. (1) join shape at 1000 units over 100 hosts."""
    db = make_db(1000)
    for h in range(100):
        labels = Labels({"__name__": "node_m", "hostname": f"n{h:03d}", "nodegroup": "intel-cpu"})
        for i in range(SAMPLES_PER_SERIES):
            db.append(labels, i * 15.0, 500.0)
    engine = PromQLEngine(db)
    result = benchmark(
        engine.query, "m / on(hostname) group_left() node_m", AT
    )
    assert len(result.vector) == 1000
