"""Ablations of the estimation design choices DESIGN.md calls out.

Three knobs the paper fixes by fiat, each swept here against the
simulation's ground truth:

* **network-share policy** — Eq. (1) splits the 0.1·IPMI network
  share equally ("the total power usage by networking is distributed
  equally among the running jobs") because the exporter had no
  network stats; with the §IV eBPF collector, traffic-weighted
  splitting becomes possible.  How much does it matter when
  colocation is network-skewed?
* **rate window** — the recording rules use ``rate(...[2m])``; longer
  windows smooth transients but lag job starts/stops.
* **scrape interval** — the whole pipeline samples at 15 s; coarser
  scraping is cheaper but aliases bursts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.clock import SimClock
from repro.common.config import ExporterConfig
from repro.energy import (
    POWER_METRIC,
    POWER_METRIC_NETAWARE,
    NodeGroup,
    network_aware_rules,
    rules_for_group,
)
from repro.exporter import CEEMSExporter
from repro.hwsim import NodeSpec, SimulatedNode, UsageProfile
from repro.hwsim.perf import WorkloadSignature
from repro.tsdb import ScrapeConfig, ScrapeManager, ScrapeTarget, TSDB
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.rules import RuleManager

JOB = "/system.slice/slurmstepd.scope/job_{}"
GROUP = NodeGroup("intel-cpu", True, False, True)


def build_rig(scrape_interval: float = 15.0, rate_window: str | None = None):
    clock = SimClock(start=0.0)
    node = SimulatedNode(NodeSpec(name="n1"), seed=8)
    db = TSDB()
    scrapes = ScrapeManager(db, ScrapeConfig(interval=scrape_interval))
    exporter = CEEMSExporter(
        node, clock,
        ExporterConfig(collectors=("cgroup", "rapl", "ipmi", "node", "gpu_map", "ebpf_net")),
    )
    scrapes.add_target(
        ScrapeTarget(app=exporter.app, instance="n1:9010", job="ceems",
                     group_labels={"hostname": "n1", "nodegroup": GROUP.name})
    )
    rules = RuleManager(db)
    std_group = rules_for_group(GROUP, 30.0)
    net_group = network_aware_rules(GROUP, 30.0)
    if rate_window is not None:
        for group in (std_group, net_group):
            for rule in group.rules:
                rule.expr = rule.expr.replace("[2m]", f"[{rate_window}]")
                rule._ast = None
    rules.add_group(std_group)
    rules.add_group(net_group)
    clock.every(5.0, lambda now: node.advance(now, 5.0))
    scrapes.register_timer(clock)
    rules.register_timers(clock)
    return clock, node, db, PromQLEngine(db)


def test_network_share_policy_ablation(benchmark):
    """Equal vs traffic-weighted split of the 0.1·IPMI network share.

    Two jobs with identical CPU/memory profiles but a 10x network
    asymmetry (one runs a communication-heavy code).  Under equal
    split both get identical power; traffic weighting moves most of
    the network share onto the chatty job.
    """
    clock, node, db, engine = build_rig()
    node.place_task("1", JOB.format("1"), 16, 32 * 2**30, UsageProfile.constant(0.8, 0.4), 0.0)
    node.place_task("2", JOB.format("2"), 16, 32 * 2**30, UsageProfile.constant(0.8, 0.4), 0.0)
    # make job 1 network-heavy by patching its telemetry signature
    chatty = node.telemetry["1"]
    base = chatty.net.signature
    heavy = WorkloadSignature(
        ipc=base.ipc, flop_fraction=base.flop_fraction,
        llc_refs_per_kinst=base.llc_refs_per_kinst, llc_miss_rate=base.llc_miss_rate,
        net_tx_per_core_s=base.net_tx_per_core_s * 10,
        net_rx_per_core_s=base.net_rx_per_core_s * 10,
    )
    chatty.net.signature = heavy
    clock.advance(900.0)

    def query_both():
        std = {el.labels.get("uuid"): el.value for el in engine.query(POWER_METRIC, at=900.0).vector}
        net = {el.labels.get("uuid"): el.value for el in engine.query(POWER_METRIC_NETAWARE, at=900.0).vector}
        return std, net

    std, net = benchmark(query_both)
    ipmi = engine.query("instance:ipmi_watts", at=900.0).vector[0].value
    print("\n[ablation/network-share] identical compute, 10x traffic skew:")
    print(f"  equal split (paper):   job1 {std['1']:6.1f} W, job2 {std['2']:6.1f} W")
    print(f"  traffic-weighted:      job1 {net['1']:6.1f} W, job2 {net['2']:6.1f} W")
    shift = net["1"] - std["1"]
    print(f"  shift: {shift:+.1f} W = {shift / ipmi * 100:.1f}% of node power "
          f"(bounded by the 0.1 share)")
    benchmark.extra_info["shift_watts"] = shift
    assert abs(std["1"] - std["2"]) < 3.0  # equal split can't see traffic
    assert net["1"] > net["2"] + 0.5 * 0.1 * ipmi * 0.5  # weighting does
    assert shift < 0.1 * ipmi + 1.0  # bounded by the network share


@pytest.mark.parametrize("window", ["1m", "2m", "5m", "15m"])
def test_rate_window_ablation(benchmark, window):
    """Longer rate windows delay attribution after a job starts.

    ``rate()`` over window W needs ~W of samples before a new job's
    CPU-time share reflects its real level, so a longer window shifts
    attribution from a freshly-started busy job to incumbents.  We
    start job 2 at t=1200 next to an incumbent and measure how long
    its estimate takes to reach 80 % of its steady-state power.
    """
    clock, node, db, engine = build_rig(rate_window=window)
    node.place_task("1", JOB.format("1"), 16, 32 * 2**30, UsageProfile.constant(0.6, 0.4), 0.0)
    clock.advance(1200.0)
    node.place_task("2", JOB.format("2"), 16, 32 * 2**30, UsageProfile.constant(0.9, 0.4), 1200.0)
    clock.advance(2400.0)  # to t=3600

    result = benchmark(
        engine.query_range, f'sum by (uuid) ({POWER_METRIC}{{uuid="2"}})', 1230.0, 3600.0, 30.0
    )

    (_labels, (ts, vs)), = result.series.items()
    steady = float(np.mean(vs[-10:]))
    above = np.flatnonzero(vs >= 0.8 * steady)
    settle_s = float(ts[above[0]] - 1200.0) if len(above) else float("inf")
    print(f"\n[ablation/rate-window] window {window}: job-2 estimate reaches "
          f"80% of steady state {settle_s:.0f} s after start "
          f"(steady {steady:.0f} W)")
    benchmark.extra_info["settle_seconds"] = settle_s
    benchmark.extra_info["steady_watts"] = steady
    # settle time scales with the rate window
    from repro.common.units import parse_duration

    window_s = parse_duration(window)
    assert settle_s <= window_s + 90.0  # within a window (+rule/scrape lag)
    if window == "15m":
        assert settle_s > 240.0  # long windows demonstrably lag


@pytest.mark.parametrize("interval", [15.0, 60.0, 120.0])
def test_scrape_interval_ablation(benchmark, interval):
    """Coarser scraping is cheaper but blurs energy attribution."""
    clock, node, db, engine = build_rig(scrape_interval=interval, rate_window="5m")
    node.place_task("1", JOB.format("1"), 24, 32 * 2**30, UsageProfile.constant(0.9, 0.5), 0.0)
    node.place_task("2", JOB.format("2"), 8, 16 * 2**30, UsageProfile.constant(0.3, 0.3), 0.0)
    clock.advance(1800.0)

    result = benchmark(engine.query, POWER_METRIC, 1800.0)

    estimates = {el.labels.get("uuid"): el.value for el in result.vector}
    oracle = {u: node.true_task_power(u) for u in node.tasks}
    total_err = abs(sum(estimates.values()) - sum(oracle.values())) / sum(oracle.values())
    samples = db.num_samples
    print(f"\n[ablation/scrape-interval] {interval:.0f} s: "
          f"conservation error {total_err * 100:.1f}%, samples stored {samples}")
    benchmark.extra_info["conservation_error_pct"] = total_err * 100
    benchmark.extra_info["samples"] = samples
    assert total_err < 0.15
