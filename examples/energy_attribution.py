#!/usr/bin/env python3
"""Deep dive into the paper's Eq. (1): per-job power attribution.

Places three jobs with contrasting resource profiles on one Intel
node (compute-bound, memory-bound, idle-ish), runs the full
measurement pipeline (exporter → scrape → recording rules), and
compares the Eq. (1) estimates against the simulation's ground-truth
power attribution — then repeats on the other Jean-Zay node classes
to show how the rule *variants* adapt to the hardware.

Run:  python examples/energy_attribution.py
"""

from repro.common.clock import SimClock
from repro.common.config import ExporterConfig
from repro.emissions import OWIDProvider, ProviderRegistry, RTEProvider
from repro.emissions.pipeline import EmissionsExporter
from repro.energy import NodeGroup, POWER_METRIC, emissions_rules, rules_for_group
from repro.exporter import CEEMSExporter, DCGMExporter
from repro.hwsim import NodeSpec, SimulatedNode, UsageProfile
from repro.tsdb import ScrapeConfig, ScrapeManager, ScrapeTarget, TSDB
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.rules import RuleManager

JOB = "/system.slice/slurmstepd.scope/job_{}"


def build_rig(spec: NodeSpec, group: NodeGroup, seed: int = 11):
    clock = SimClock(start=0.0)
    node = SimulatedNode(spec, seed=seed)
    db = TSDB()
    scrapes = ScrapeManager(db, ScrapeConfig(interval=15.0))
    labels = {"hostname": spec.name, "nodegroup": group.name}
    exporter = CEEMSExporter(node, clock, ExporterConfig(collectors=("cgroup", "rapl", "ipmi", "node", "gpu_map")))
    scrapes.add_target(ScrapeTarget(app=exporter.app, instance=f"{spec.name}:9010", job="ceems", group_labels=dict(labels)))
    if spec.gpus:
        dcgm = DCGMExporter(node, clock)
        scrapes.add_target(ScrapeTarget(app=dcgm.app, instance=f"{spec.name}:9400", job="dcgm", group_labels=dict(labels)))
    registry = ProviderRegistry()
    registry.register(RTEProvider(seed=1))
    registry.register(OWIDProvider())
    scrapes.add_target(ScrapeTarget(app=EmissionsExporter(registry, "FR", clock).app, instance="em:9020", job="emissions"))
    rules = RuleManager(db)
    rules.add_group(rules_for_group(group, 30.0))
    rules.add_group(emissions_rules(30.0))
    clock.every(5.0, lambda now: node.advance(now, 5.0))
    scrapes.register_timer(clock)
    rules.register_timers(clock)
    return clock, node, PromQLEngine(db)


def report(title: str, node: SimulatedNode, engine: PromQLEngine, at: float) -> None:
    print(f"\n=== {title} ===")
    estimates = {
        el.labels.get("uuid"): el.value
        for el in engine.query(POWER_METRIC, at=at).vector
    }
    ipmi = engine.query("instance:ipmi_watts", at=at).vector[0].value
    print(f"  IPMI node power: {ipmi:.0f} W")
    print(f"  {'job':<10} {'Eq.(1) est.':>12} {'ground truth':>13} {'error':>8}")
    for uuid in sorted(estimates):
        true = node.true_task_power(uuid)
        est = estimates[uuid]
        err = 100.0 * (est - true) / true if true else 0.0
        print(f"  {uuid:<10} {est:>10.1f} W {true:>11.1f} W {err:>+7.1f}%")
    print(f"  {'SUM':<10} {sum(estimates.values()):>10.1f} W "
          f"{sum(node.true_task_power(u) for u in node.tasks):>11.1f} W")


def main() -> None:
    # --- Intel node with CPU+DRAM RAPL: the paper's full Eq. (1) ------
    clock, node, engine = build_rig(
        NodeSpec(name="intel0"), NodeGroup("intel-cpu", True, False, True)
    )
    node.place_task("101", JOB.format("101"), 24, 32 * 2**30, UsageProfile.constant(0.95, 0.2), 0.0)
    node.place_task("102", JOB.format("102"), 8, 96 * 2**30, UsageProfile.constant(0.35, 0.9), 0.0)
    node.place_task("103", JOB.format("103"), 8, 16 * 2**30, UsageProfile.constant(0.05, 0.1), 0.0)
    clock.advance(1200.0)
    report("Intel node (RAPL cpu+dram) — full Eq. (1)", node, engine, 1200.0)
    print("  note: Eq.(1) splits the 0.9·IPMI share by CPU-time and memory")
    print("  fractions, so near-idle jobs are under-credited for their share")
    print("  of node idle power — the approximation the paper accepts.")

    # --- AMD node: package-only RAPL, CPU-time-only split ---------------
    clock, node, engine = build_rig(
        NodeSpec(name="amd0", cpu_model="amd-milan", cores_per_socket=32, memory_gb=256, dram_profile="ddr4-384g"),
        NodeGroup("amd-cpu", False, False, True),
    )
    node.place_task("201", JOB.format("201"), 48, 64 * 2**30, UsageProfile.constant(0.9, 0.5), 0.0)
    node.place_task("202", JOB.format("202"), 16, 32 * 2**30, UsageProfile.constant(0.9, 0.5), 0.0)
    clock.advance(1200.0)
    report("AMD node (package-only RAPL) — CPU-time variant", node, engine, 1200.0)

    # --- GPU node, IPMI includes GPU power ---------------------------------
    clock, node, engine = build_rig(
        NodeSpec(name="gpu0", gpus=("A100",) * 4, memory_gb=384, dram_profile="ddr4-384g", ipmi_includes_gpu=True),
        NodeGroup("gpu-ipmi-incl", True, True, True),
    )
    node.place_task("301", JOB.format("301"), 16, 128 * 2**30, UsageProfile.constant(0.6, 0.5, 0.9), 0.0, ngpus=2)
    node.place_task("302", JOB.format("302"), 16, 64 * 2**30, UsageProfile.constant(0.6, 0.3), 0.0)
    clock.advance(1200.0)
    report("GPU node (IPMI includes GPUs) — subtract & re-credit", node, engine, 1200.0)

    # --- GPU node, IPMI excludes GPU power ------------------------------------
    clock, node, engine = build_rig(
        NodeSpec(name="gpu1", gpus=("A100",) * 4, memory_gb=384, dram_profile="ddr4-384g", ipmi_includes_gpu=False),
        NodeGroup("gpu-ipmi-excl", True, True, False),
    )
    node.place_task("301", JOB.format("301"), 16, 128 * 2**30, UsageProfile.constant(0.6, 0.5, 0.9), 0.0, ngpus=2)
    clock.advance(1200.0)
    report("GPU node (IPMI excludes GPUs) — DCGM power added on top", node, engine, 1200.0)
    print("\nEach node class uses a different recording-rule group, selected by")
    print("the scrape target's `nodegroup` label — the paper's §III.A mechanism.")


if __name__ == "__main__":
    main()
