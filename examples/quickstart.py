#!/usr/bin/env python3
"""Quickstart: the full CEEMS stack on a four-node cluster.

Builds the paper's Fig. 1 architecture end to end — simulated nodes,
CEEMS + DCGM exporters, a hot TSDB scraping them, Eq. (1) recording
rules, Thanos replication, the API server and the access-controlled
load balancer — runs two hours of cluster life with a generated SLURM
workload, then shows what a user and an operator each see.

Run:  python examples/quickstart.py
"""

from repro.cluster import StackSimulation, small_topology
from repro.cluster.simulation import SimulationConfig
from repro.common.errors import AuthError
from repro.common.units import format_co2, format_energy
from repro.dashboard import fig2a_user_overview, fig2b_job_list, fig2c_job_timeseries
from repro.resourcemgr.workload import SizeClass, WorkloadMix


def main() -> None:
    mix = WorkloadMix(
        mean_interarrival=150.0,
        duration_mu=7.0,
        sizes=(
            SizeClass("small", weight=0.55, ncores=4, memory_gb=8),
            SizeClass("medium", weight=0.30, ncores=16, memory_gb=32),
            SizeClass("gpu", weight=0.15, ncores=8, ngpus=1, memory_gb=64, partition="gpu"),
        ),
    )
    sim = StackSimulation(
        small_topology(cpu_nodes=3, gpu_nodes=1),
        SimulationConfig(seed=7, update_interval=600.0),
        workload=mix,
    )

    print("Running 2 hours of cluster life...")
    sim.run(2 * 3600)
    stats = sim.stats()
    print(f"  {stats['nodes']:.0f} nodes, {stats['gpus']:.0f} GPUs")
    print(f"  {stats['jobs_submitted']:.0f} jobs submitted, {stats['jobs_completed']:.0f} completed")
    print(f"  TSDB: {stats['tsdb_series']:.0f} series, {stats['tsdb_samples']:.0f} samples")

    # --- the operator's view: cluster-wide rollups --------------------
    admin = sim.ceems_datasource("admin")
    print("\n=== Operator view: top energy consumers ===")
    for row in admin.global_usage()[:5]:
        print(
            f"  {row['user']:<10} {row['project']:<10} "
            f"{row['num_units']:>4} units  "
            f"{format_energy(row['total_energy_joules']):>12}  "
            f"{format_co2(row['total_emissions_g']):>12}"
        )

    # --- a user's view: Fig. 2 dashboards -----------------------------
    usage = admin.global_usage()
    user = max(usage, key=lambda r: r["num_units"])["user"]
    ceems_ds = sim.ceems_datasource(user)
    print(f"\n=== Fig. 2a — aggregate usage of {user} ===")
    for panel in fig2a_user_overview(ceems_ds):
        print(f"  {panel.render()}")

    print(f"\n=== Fig. 2b — jobs of {user} ===")
    print(fig2b_job_list(ceems_ds, limit=8).render())

    finished = [u for u in ceems_ds.units() if u["state"] == "completed" and u["elapsed"] > 900]
    if finished:
        job = finished[0]
        prom = sim.prometheus_datasource(user)
        panel = fig2c_job_timeseries(
            prom, job["uuid"], job["started_at"], job["ended_at"], step=60.0
        )
        print(f"\n=== Fig. 2c — time series of job {job['uuid']} ===")
        print(panel.render())

    # --- access control: the load balancer at work ---------------------
    print("\n=== Access control (CEEMS LB) ===")
    other_units = [u for u in sim.db.list_units(limit=50) if u["user"] != user]
    if other_units:
        foreign = other_units[0]
        prom = sim.prometheus_datasource(user)
        try:
            prom.query(f'ceems:compute_unit:power_watts{{uuid="{foreign["uuid"]}"}}', sim.now)
            print("  UNEXPECTED: foreign query allowed!")
        except AuthError as exc:
            print(f"  {user} asking for {foreign['user']}'s job {foreign['uuid']}: DENIED ({exc})")
        admin_prom = sim.prometheus_datasource("admin")
        result = admin_prom.query(
            f'ceems:compute_unit:power_watts{{uuid="{foreign["uuid"]}"}}', sim.now
        )
        print(f"  admin asking for the same job: ALLOWED ({len(result)} series)")


if __name__ == "__main__":
    main()
