#!/usr/bin/env python3
"""Resource-manager agnosticism: SLURM + OpenStack + Kubernetes, one stack.

The paper's title claim: the same monitoring stack serves HPC batch
jobs, cloud VMs and container pods, because all three are just cgroups
plus an accounting source.  This example runs one node pool per
manager, a single TSDB/rules pipeline, and a single API server with
the unified compute-unit schema — then prints the cross-manager view
an operator gets.

Run:  python examples/multi_rm.py
"""

from repro.apiserver.api import APIServer
from repro.apiserver.db import Database
from repro.apiserver.updater import Updater
from repro.common.clock import SimClock
from repro.common.config import ExporterConfig
from repro.common.units import format_energy
from repro.dashboard.datasource import CEEMSDataSource
from repro.energy import NodeGroup, rules_for_group
from repro.energy.estimator import UnitEnergyEstimator
from repro.exporter import CEEMSExporter
from repro.hwsim import NodeSpec, SimulatedNode, UsageProfile
from repro.resourcemgr import (
    JobSpec,
    KubernetesCluster,
    OpenStackCluster,
    PodSpec,
    ServerSpec,
    SlurmCluster,
)
from repro.tsdb import ScrapeConfig, ScrapeManager, ScrapeTarget, TSDB
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.rules import RuleManager


def main() -> None:
    clock = SimClock(start=0.0)
    pools = {
        "hpc": [SimulatedNode(NodeSpec(name=f"hpc{i}"), seed=i) for i in range(2)],
        "cloud": [SimulatedNode(NodeSpec(name=f"cloud{i}"), seed=10 + i) for i in range(2)],
        "kube": [SimulatedNode(NodeSpec(name=f"kube{i}"), seed=20 + i) for i in range(2)],
    }
    slurm = SlurmCluster("hpc", {"cpu": pools["hpc"]})
    openstack = OpenStackCluster("cloud", pools["cloud"])
    kube = KubernetesCluster("kube", pools["kube"])

    tsdb = TSDB()
    scrapes = ScrapeManager(tsdb, ScrapeConfig(interval=15.0))
    all_nodes = [n for nodes in pools.values() for n in nodes]
    for node in all_nodes:
        exporter = CEEMSExporter(node, clock, ExporterConfig())
        scrapes.add_target(
            ScrapeTarget(
                app=exporter.app,
                instance=f"{node.spec.name}:9010",
                job="ceems",
                group_labels={"hostname": node.spec.name, "nodegroup": "intel-cpu"},
            )
        )
    rules = RuleManager(tsdb)
    rules.add_group(rules_for_group(NodeGroup("intel-cpu", True, False, True), 30.0))

    clock.every(15.0, lambda now: [n.advance(now, 15.0) for n in all_nodes])
    scrapes.register_timer(clock)
    rules.register_timers(clock)
    clock.every(30.0, slurm.step)
    clock.every(30.0, kube.step)

    # One workload per manager kind.
    slurm.submit(
        JobSpec(user="alice", account="astro", ncores=16, memory_bytes=32 * 2**30,
                walltime=7200, duration=3000, profile=UsageProfile.constant(0.85, 0.5),
                name="nbody-sim"),
        now=0.0,
    )
    openstack.create_server(
        ServerSpec(user="bob", project="webshop", flavor="m1.xlarge",
                   profile=UsageProfile(cpu_base=0.35, cpu_amplitude=0.2, cpu_period=900.0)),
        now=0.0,
    )
    kube.create_pod(
        PodSpec(user="carol", namespace="inference", cpus=8, memory_bytes=16 * 2**30,
                qos="guaranteed", profile=UsageProfile.constant(0.6, 0.4), name="llm-serving"),
        now=0.0,
    )

    print("Running 1 hour across three resource managers...")
    clock.advance(3600.0)

    db = Database()
    estimator = UnitEnergyEstimator(PromQLEngine(tsdb))
    updater = Updater(db, estimator, [slurm, openstack, kube], interval=900.0)
    updater.run_once(now=clock.now())

    api = APIServer(db)
    admin = CEEMSDataSource(api.app, "admin")

    print("\n=== Unified compute-unit table (one schema, three managers) ===")
    print(f"{'cluster':<8} {'manager':<10} {'uuid':<38} {'user':<7} {'project':<10} {'state':<10} {'energy':>10}")
    for row in db.list_units(limit=10):
        print(
            f"{row['cluster']:<8} {row['manager']:<10} {row['uuid']:<38} "
            f"{row['user']:<7} {row['project']:<10} {row['state']:<10} "
            f"{format_energy(row['energy_joules']):>10}"
        )

    print("\n=== Per-user rollups across managers ===")
    for usage in admin.global_usage():
        print(
            f"  {usage['user']:<7} {usage['project']:<10} "
            f"{usage['num_units']} unit(s)  {format_energy(usage['total_energy_joules'])}"
        )

    print("\n=== Per-manager power right now (PromQL over one TSDB) ===")
    engine = PromQLEngine(tsdb)
    result = engine.query(
        "sum by (manager) (ceems:compute_unit:power_watts)", at=clock.now()
    )
    for el in result.vector:
        print(f"  {el.labels.get('manager'):<10} {el.value:7.1f} W")


if __name__ == "__main__":
    main()
