#!/usr/bin/env python3
"""Trace-driven accounting: replay a Standard Workload Format trace.

Generates a synthetic-but-realistic SWF trace (the Parallel Workloads
Archive format real clusters publish their histories in), replays it
through the SLURM simulator under the full monitoring stack, and
produces the two operator reports: per-user efficiency (who wastes
allocated cores) and the cluster-utilisation snapshot.

To run against a real archive trace, point ``--trace`` at any ``.swf``
file.

Run:  python examples/swf_replay.py [--trace path.swf]
"""

import argparse

import numpy as np

from repro.analytics import cluster_utilisation_report, efficiency_report
from repro.cluster import StackSimulation, small_topology
from repro.cluster.simulation import SimulationConfig
from repro.resourcemgr.swf import SWFJob, parse_swf, replay, to_job_specs, write_swf


def synthetic_trace(njobs: int = 60, seed: int = 5) -> str:
    """A plausible SWF trace: log-normal runtimes, Zipf-ish users."""
    rng = np.random.default_rng(seed)
    jobs = []
    t = 0.0
    for i in range(njobs):
        t += float(rng.exponential(120.0))
        runtime = float(np.clip(rng.lognormal(6.8, 1.0), 120, 6 * 3600))
        procs = int(rng.choice([2, 4, 8, 16, 32], p=[0.3, 0.3, 0.2, 0.15, 0.05]))
        # some users run efficient codes, some don't
        user = int(rng.zipf(1.6)) % 8
        efficiency = 0.9 if user % 3 else 0.15
        jobs.append(
            SWFJob(
                job_id=i + 1,
                submit_time=t,
                wait_time=-1,
                run_time=runtime,
                allocated_procs=procs,
                avg_cpu_time=runtime * efficiency,
                used_memory_kb=float(rng.uniform(0.5, 3.0)) * 1024 * 1024,
                requested_procs=procs,
                requested_time=runtime * 2,
                requested_memory_kb=-1,
                status=1,
                user_id=user,
                group_id=user % 3,
                executable=user,
                queue=1,
                partition=1,
                preceding_job=-1,
                think_time=-1,
            )
        )
    return write_swf(jobs, comment="synthetic CEEMS demo trace")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--trace", default="", help="path to an SWF file")
    parser.add_argument("--hours", type=float, default=3.0)
    args = parser.parse_args()

    if args.trace:
        with open(args.trace, "r", encoding="utf-8") as fh:
            text = fh.read()
        print(f"replaying {args.trace}")
    else:
        text = synthetic_trace()
        print("replaying a synthetic 60-job SWF trace "
              "(pass --trace to use a real archive file)")

    trace_jobs = parse_swf(text)
    print(f"  {len(trace_jobs)} jobs, "
          f"{sum(j.allocated_procs for j in trace_jobs)} processor allocations")

    sim = StackSimulation(
        small_topology(cpu_nodes=4, gpu_nodes=0),
        SimulationConfig(seed=17, update_interval=600.0, with_workload=False),
    )
    cores_per_node = sim.nodes[0].spec.ncores
    specs = to_job_specs(trace_jobs, cores_per_node=cores_per_node)
    scheduled = replay(sim.clock, sim.slurm, specs)
    print(f"  scheduled {scheduled} submissions onto "
          f"{len(sim.nodes)} x {cores_per_node}-core nodes")

    sim.run(args.hours * 3600.0)
    stats = sim.stats()
    print(f"\nafter {args.hours:.0f} h: {stats['jobs_submitted']:.0f} submitted, "
          f"{stats['jobs_completed']:.0f} completed, {stats['jobs_running']:.0f} running")

    print("\n=== Per-user efficiency (operator view, §III.B) ===")
    report = efficiency_report(sim.db, inefficiency_threshold=0.25)
    print(report.render())
    if report.flagged:
        flagged = ", ".join(r.user for r in report.flagged)
        print(f"\nflagged as inefficient (cpu-eff < 25%): {flagged}")

    print("\n=== Cluster snapshot ===")
    print(cluster_utilisation_report(sim.engine, sim.now).render())


if __name__ == "__main__":
    main()
