#!/usr/bin/env python3
"""Jean-Zay at reduced scale: the paper's §III deployment.

Builds the heterogeneous Jean-Zay topology (all five node classes,
scaled down so the example runs in about a minute), drives it with a
realistic workload stream, and reproduces the operator's view the
paper describes: energy accounting across Intel/AMD/GPU partitions
with per-node-class estimation rules, plus the Fig. 2 dashboards for
the busiest user.

Run:  python examples/jean_zay.py [scale]   (default scale 0.01)
"""

import sys

from repro.cluster import StackSimulation, jean_zay_topology
from repro.cluster.jean_zay import topology_stats
from repro.cluster.simulation import SimulationConfig
from repro.common.units import format_co2, format_energy
from repro.dashboard import fig2a_user_overview, fig2b_job_list
from repro.resourcemgr.workload import SizeClass, WorkloadMix


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    topology = jean_zay_topology(scale=scale)
    stats = topology_stats(topology)
    print(f"Jean-Zay at scale {scale}: {stats['nodes']} nodes, "
          f"{stats['cores']} cores, {stats['gpus']} GPUs")
    print("(scale=1.0 reproduces the paper's ~1400 nodes / >3500 GPUs)")

    mix = WorkloadMix(
        mean_interarrival=90.0,
        duration_mu=7.2,
        nusers=25,
        nprojects=8,
        sizes=(
            SizeClass("small", weight=0.45, ncores=8, memory_gb=16),
            SizeClass("medium", weight=0.25, ncores=40, memory_gb=64),
            SizeClass("large", weight=0.10, ncores=40, nnodes=2, memory_gb=96),
            SizeClass("gpu-v100", weight=0.12, ncores=16, ngpus=4, memory_gb=128, partition="gpu"),
            SizeClass("gpu-a100", weight=0.08, ncores=16, ngpus=2, memory_gb=128, partition="gpu"),
        ),
    )
    sim = StackSimulation(
        topology,
        SimulationConfig(seed=2024, cluster_name="jean-zay", update_interval=900.0),
        workload=mix,
    )
    print("Simulating 3 hours of cluster life...")
    sim.run(3 * 3600)
    s = sim.stats()
    print(f"  jobs: {s['jobs_submitted']:.0f} submitted, {s['jobs_completed']:.0f} completed, "
          f"{s['jobs_running']:.0f} running")
    print(f"  TSDB: {s['tsdb_series']:.0f} series, {s['tsdb_samples']:.0f} samples")

    # --- operator view: energy per node class (rules per class) --------
    print("\n=== Node power by class (each class has its own Eq. 1 variant) ===")
    result = sim.engine.query("sum by (nodegroup) (ceems:node:power_watts)", at=sim.now)
    for el in sorted(result.vector, key=lambda e: -e.value):
        print(f"  {el.labels.get('nodegroup'):<16} {el.value / 1000:8.1f} kW")

    print("\n=== Attributed job power by class ===")
    result = sim.engine.query(
        "sum by (nodegroup) (ceems:compute_unit:power_watts)", at=sim.now
    )
    for el in sorted(result.vector, key=lambda e: -e.value):
        print(f"  {el.labels.get('nodegroup'):<16} {el.value / 1000:8.1f} kW")

    # --- operator view: top consumers -----------------------------------
    admin = sim.ceems_datasource("admin")
    print("\n=== Top-5 energy consumers ===")
    for row in admin.global_usage()[:5]:
        print(
            f"  {row['user']:<10} {row['project']:<11} {row['num_units']:>4} jobs  "
            f"{format_energy(row['total_energy_joules']):>12}  "
            f"{format_co2(row['total_emissions_g']):>12}"
        )

    # --- user view: Fig. 2a / 2b dashboards -------------------------------
    heavy = admin.global_usage()[0]["user"]
    user_ds = sim.ceems_datasource(heavy)
    print(f"\n=== Fig. 2a — aggregate usage of {heavy} ===")
    for panel in fig2a_user_overview(user_ds):
        print(f"  {panel.render()}")
    print(f"\n=== Fig. 2b — jobs of {heavy} (top 6) ===")
    print(fig2b_job_list(user_ds, limit=6).render())


if __name__ == "__main__":
    main()
