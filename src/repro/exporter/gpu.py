"""Companion GPU exporters: NVIDIA DCGM-style and AMD SMI-style.

The paper (§II.B.a): *"When using GPU clusters, either DCGM exporter
or AMD SMI exporter must be deployed alongside the CEEMS exporter to
collect GPU metrics."*  These two apps reproduce the metric names of
those exporters so the recording rules and dashboards join against the
same series the real stack would see.
"""

from __future__ import annotations

from repro.common.httpx import App, Request, Response
from repro.hwsim.node import SimulatedNode
from repro.tsdb import exposition
from repro.tsdb.exposition import MetricFamily


class DCGMExporter:
    """NVIDIA DCGM exporter facade over the node's NVIDIA devices."""

    def __init__(self, node: SimulatedNode, clock=None) -> None:
        self.node = node
        self.clock = clock
        self.app = App(name=f"dcgm-{node.spec.name}")
        self.app.router.get("/metrics", self._metrics)

    def _now(self) -> float:
        return self.clock.now() if self.clock is not None else 0.0

    def families(self, now: float) -> list[MetricFamily]:
        power = MetricFamily(
            "DCGM_FI_DEV_POWER_USAGE", help="Power draw (W).", type="gauge"
        )
        util = MetricFamily(
            "DCGM_FI_DEV_GPU_UTIL", help="GPU utilization (%).", type="gauge"
        )
        fb_used = MetricFamily(
            "DCGM_FI_DEV_FB_USED", help="Framebuffer used (MiB).", type="gauge"
        )
        energy = MetricFamily(
            "DCGM_FI_DEV_TOTAL_ENERGY_CONSUMPTION",
            help="Total energy consumption since boot (mJ).",
            type="counter",
        )
        for gpu in self.node.gpus:
            if gpu.profile.vendor != "nvidia":
                continue
            labels = {
                "gpu": str(gpu.index),
                "UUID": gpu.uuid,
                "modelName": gpu.profile.model,
            }
            power.add(gpu.power_w, **labels)
            util.add(round(gpu.sm_util * 100.0), **labels)
            fb_used.add(gpu.mem_used_bytes / 1024**2, **labels)
            energy.add(float(gpu.energy_mj), **labels)
        return [power, util, fb_used, energy]

    def _metrics(self, request: Request) -> Response:
        return Response.text(exposition.render(self.families(self._now())), content_type="text/plain; version=0.0.4")


class AMDSMIExporter:
    """AMD SMI exporter facade over the node's AMD devices."""

    def __init__(self, node: SimulatedNode, clock=None) -> None:
        self.node = node
        self.clock = clock
        self.app = App(name=f"amd-smi-{node.spec.name}")
        self.app.router.get("/metrics", self._metrics)

    def _now(self) -> float:
        return self.clock.now() if self.clock is not None else 0.0

    def families(self, now: float) -> list[MetricFamily]:
        power = MetricFamily(
            "amd_gpu_power", help="GPU package power (µW).", type="gauge"
        )
        util = MetricFamily(
            "amd_gpu_use_percent", help="GPU busy percent.", type="gauge"
        )
        mem = MetricFamily(
            "amd_gpu_memory_use_percent", help="GPU memory used percent.", type="gauge"
        )
        for gpu in self.node.gpus:
            if gpu.profile.vendor != "amd":
                continue
            labels = {"gpu_use_percent": "", "productname": gpu.profile.model, "gpu_id": str(gpu.index)}
            labels.pop("gpu_use_percent")
            power.add(gpu.power_w * 1e6, **labels)
            util.add(round(gpu.sm_util * 100.0), **labels)
            mem.add(round(gpu.mem_util * 100.0), **labels)
        return [power, util, mem]

    def _metrics(self, request: Request) -> Response:
        return Response.text(exposition.render(self.families(self._now())), content_type="text/plain; version=0.0.4")
