"""The CEEMS exporter HTTP server.

Wires a collector registry to an HTTP app with optional basic auth
and TLS (paper: *"The exporter supports basic auth and TLS to protect
it from DoS/DDoS attacks"*).  Tracks its own scrape cost — CPU time
per scrape and payload bytes — which the E6 benchmark reads back to
reproduce the paper's footprint claims (15–20 MB memory, tiny CPU
time per scrape).
"""

from __future__ import annotations

import time

from repro.common.auth import BasicAuth, TLSConfig
from repro.common.config import ExporterConfig
from repro.common.httpx import App, Request, Response
from repro.hwsim.node import SimulatedNode
from repro.obs import prof
from repro.tsdb import exposition

from repro.exporter.collector import CollectorRegistry
from repro.exporter.collectors import (
    CgroupCollector,
    GPUMapCollector,
    IPMICollector,
    NodeCollector,
    RAPLCollector,
    SelfCollector,
)
from repro.exporter.future_collectors import EBPFNetCollector, PerfCollector

_COLLECTOR_FACTORIES = {
    "cgroup": CgroupCollector,
    "rapl": RAPLCollector,
    "ipmi": IPMICollector,
    "node": NodeCollector,
    "gpu_map": GPUMapCollector,
    "ebpf_net": EBPFNetCollector,
    "perf": PerfCollector,
}


class CEEMSExporter:
    """One exporter instance bound to one simulated node."""

    def __init__(
        self,
        node: SimulatedNode,
        clock,
        config: ExporterConfig | None = None,
        *,
        auth: BasicAuth | None = None,
        tls: TLSConfig | None = None,
        rate_limiter: "RateLimiter | None" = None,
    ) -> None:
        self.node = node
        self.clock = clock
        self.config = config or ExporterConfig()
        self.rate_limiter = rate_limiter
        if auth is None and self.config.basic_auth.enabled:
            auth = BasicAuth.single_user(self.config.basic_auth.username, self.config.basic_auth.password)
        self.app = App(name=f"ceems-exporter-{node.spec.name}", auth=auth, tls=tls)
        self.registry = CollectorRegistry()
        for name in self.config.collectors:
            if name == "self":
                self.registry.register(SelfCollector(self))
            elif name in _COLLECTOR_FACTORIES:
                self.registry.register(_COLLECTOR_FACTORIES[name](node))
        self.scrapes_total = 0
        self.scrape_cpu_seconds = 0.0
        self.last_payload_bytes = 0
        self.app.router.get("/metrics", self._handle_metrics)
        self.app.router.get("/", self._handle_index)
        self.app.router.get("/health", self._handle_health)
        # The exporter keeps its own /metrics (the scrape payload);
        # middleware metrics are appended to it below, so only the
        # trace endpoint comes from the shared telemetry plumbing.
        self.app.expose_telemetry(metrics=False)

    # -- handlers -----------------------------------------------------------
    def _handle_metrics(self, request: Request) -> Response:
        if self.rate_limiter is not None:
            rejection = self.rate_limiter.check(request)
            if rejection is not None:
                return rejection
        started = time.process_time()
        with prof.profile("exporter.collect"):
            families = self.registry.collect(self.clock.now())
            families.extend(self.app.telemetry.collect())
        with prof.profile("exporter.render"):
            payload = exposition.render(families)
        self.scrape_cpu_seconds += time.process_time() - started
        self.scrapes_total += 1
        self.last_payload_bytes = len(payload)
        return Response.text(payload, content_type="text/plain; version=0.0.4; charset=utf-8")

    def _handle_index(self, request: Request) -> Response:
        lines = [f"CEEMS exporter on {self.node.spec.name}", "collectors:"]
        lines += [f"  - {name}" for name in self.registry.names]
        return Response.text("\n".join(lines) + "\n")

    def _handle_health(self, request: Request) -> Response:
        return Response.json({"status": "ok"})
