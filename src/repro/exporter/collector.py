"""Collector interface and registry.

A collector turns one hardware/OS data source into metric families.
The registry runs every enabled collector per scrape and adds the
``ceems_exporter_collector_success`` health gauge — a failing
collector reports 0 there instead of failing the whole scrape,
matching the resilience contract of the Go exporter.
"""

from __future__ import annotations

import abc

from repro.common.errors import CollectorError
from repro.obs import prof
from repro.tsdb.exposition import MetricFamily


class Collector(abc.ABC):
    """One metrics source inside the exporter."""

    #: Collector name used in CLI options and the success gauge.
    name: str = "collector"

    @abc.abstractmethod
    def collect(self, now: float) -> list[MetricFamily]:
        """Produce this collector's metric families at logical time ``now``."""

    def describe(self) -> str:
        """One-line description for the exporter's landing page."""
        return self.__class__.__doc__.splitlines()[0] if self.__class__.__doc__ else self.name


class CollectorRegistry:
    """Runs collectors and assembles the full scrape payload."""

    def __init__(self) -> None:
        self._collectors: list[Collector] = []
        #: Cumulative collect() failures per collector name.
        self.errors_total: dict[str, int] = {}
        #: 1.0/0.0 outcome of each collector's most recent run.
        self.last_success: dict[str, float] = {}

    def register(self, collector: Collector) -> None:
        if any(c.name == collector.name for c in self._collectors):
            raise CollectorError(f"duplicate collector {collector.name!r}")
        collector._prof_phase = f"exporter.collect.{collector.name}"
        self._collectors.append(collector)

    def unregister(self, name: str) -> None:
        before = len(self._collectors)
        self._collectors = [c for c in self._collectors if c.name != name]
        if len(self._collectors) == before:
            raise CollectorError(f"no collector named {name!r}")

    @property
    def names(self) -> list[str]:
        return [c.name for c in self._collectors]

    def collect(self, now: float) -> list[MetricFamily]:
        """Run every collector; failures degrade to success=0."""
        families: list[MetricFamily] = []
        success = MetricFamily(
            name="ceems_exporter_collector_success",
            help="1 if the collector succeeded on the last scrape.",
            type="gauge",
        )
        for collector in self._collectors:
            try:
                with prof.profile(collector._prof_phase):
                    families.extend(collector.collect(now))
                success.add(1.0, collector=collector.name)
                self.last_success[collector.name] = 1.0
            except Exception:  # noqa: BLE001 - collector isolation is the point
                success.add(0.0, collector=collector.name)
                self.last_success[collector.name] = 0.0
                self.errors_total[collector.name] = self.errors_total.get(collector.name, 0) + 1
        families.append(success)
        return families
