"""Exporter-side DoS protection: a token-bucket rate limiter.

Paper §II.B.a: *"The exporter supports basic auth and TLS to protect
it from DoS/DDoS attacks from malicious users."*  Auth and TLS live
in :mod:`repro.common.auth`; this module adds the third standard
guard, a per-client token bucket, because authenticated users can
still hammer the endpoint and a compute node must never spend its
cycles answering scrapes.

Clients are keyed by the ``X-Forwarded-For`` header when present
(the scraper fleet sits behind it) and fall back to a single global
bucket.  Over-limit requests get HTTP 429 with a ``Retry-After``
hint, which Prometheus treats as a failed scrape — exactly the
degradation we want under abuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.httpx import Request, Response


@dataclass
class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    rate: float
    burst: float
    tokens: float = field(default=-1.0)
    last_refill: float = 0.0

    def __post_init__(self) -> None:
        if self.tokens < 0:
            self.tokens = self.burst

    def allow(self, now: float, cost: float = 1.0) -> bool:
        elapsed = max(now - self.last_refill, 0.0)
        self.tokens = min(self.tokens + elapsed * self.rate, self.burst)
        self.last_refill = now
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    def retry_after(self, cost: float = 1.0) -> float:
        """Seconds until ``cost`` tokens will be available."""
        deficit = max(cost - self.tokens, 0.0)
        return deficit / self.rate if self.rate > 0 else float("inf")


class RateLimiter:
    """Per-client request limiter for the exporter's HTTP app."""

    def __init__(self, clock, *, rate: float = 1.0, burst: float = 5.0, max_clients: int = 1024) -> None:
        self.clock = clock
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self._buckets: dict[str, TokenBucket] = {}
        self.rejected_total = 0

    def _client_key(self, request: Request) -> str:
        return request.header("x-forwarded-for", "") or "global"

    def check(self, request: Request) -> Response | None:
        """None when allowed; a 429 response when over the limit."""
        key = self._client_key(request)
        bucket = self._buckets.get(key)
        if bucket is None:
            if len(self._buckets) >= self.max_clients:
                # Bound memory under address-spraying abuse: evict the
                # fullest bucket (the least-active client).
                victim = max(self._buckets, key=lambda k: self._buckets[k].tokens)
                del self._buckets[victim]
            bucket = TokenBucket(rate=self.rate, burst=self.burst)
            self._buckets[key] = bucket
        if bucket.allow(self.clock.now()):
            return None
        self.rejected_total += 1
        return Response(
            status=429,
            headers={
                "content-type": "application/json",
                "retry-after": f"{bucket.retry_after():.0f}",
            },
            body=b'{"status": "error", "error": "rate limit exceeded"}',
        )
