"""The paper's §IV pipeline features: eBPF network and perf collectors.

*"Some of the important features in the pipeline are adding network
and IO stats to CEEMS exporter using extended Berkley Packet
Filtering (eBPF) framework and adding performance metrics like FLOPS,
caching, and memory IO bandwidth … from Linux's perf framework."*

Both are implemented here against the simulated substrate
(:mod:`repro.hwsim.perf`):

* :class:`EBPFNetCollector` — per-unit TX/RX bytes and packets, as a
  cgroup-attached eBPF probe would account them.  These series enable
  the Eq. (1) *network-share ablation*: distributing the 0.1·IPMI
  network share by observed traffic instead of equally (see
  :func:`repro.energy.rules_library.network_aware_power_rule`).
* :class:`PerfCollector` — instructions, cycles, FLOPs, LLC
  references/misses and DRAM traffic per unit, enabling the
  efficiency dashboards the paper sketches (FLOPS/W follows directly
  from these series joined with the power series).
"""

from __future__ import annotations

from repro.hwsim.node import SimulatedNode
from repro.tsdb.exposition import MetricFamily

from repro.exporter.collector import Collector
from repro.exporter.collectors import extract_unit_uuid


def _unit_labels(node: SimulatedNode, uuid: str) -> dict[str, str] | None:
    task = node.tasks.get(uuid)
    if task is None:
        return None
    ident = extract_unit_uuid(task.cgroup_path)
    manager = ident[0] if ident else "unknown"
    return {"uuid": uuid, "manager": manager}


class EBPFNetCollector(Collector):
    """Per-unit network accounting from the (simulated) eBPF probes."""

    name = "ebpf_net"

    def __init__(self, node: SimulatedNode) -> None:
        self.node = node

    def collect(self, now: float) -> list[MetricFamily]:
        tx = MetricFamily(
            "ceems_compute_unit_net_tx_bytes_total",
            help="Bytes transmitted by the compute unit (eBPF cgroup probe).",
            type="counter",
        )
        rx = MetricFamily(
            "ceems_compute_unit_net_rx_bytes_total",
            help="Bytes received by the compute unit (eBPF cgroup probe).",
            type="counter",
        )
        tx_pkts = MetricFamily(
            "ceems_compute_unit_net_tx_packets_total",
            help="Packets transmitted by the compute unit.",
            type="counter",
        )
        rx_pkts = MetricFamily(
            "ceems_compute_unit_net_rx_packets_total",
            help="Packets received by the compute unit.",
            type="counter",
        )
        for uuid, telemetry in self.node.telemetry.items():
            labels = _unit_labels(self.node, uuid)
            if labels is None:
                continue
            tx.add(float(telemetry.net.tx_bytes), **labels)
            rx.add(float(telemetry.net.rx_bytes), **labels)
            tx_pkts.add(float(telemetry.net.tx_packets), **labels)
            rx_pkts.add(float(telemetry.net.rx_packets), **labels)
        return [tx, rx, tx_pkts, rx_pkts]


class PerfCollector(Collector):
    """Per-unit perf-events counters (instructions, FLOPs, caches)."""

    name = "perf"

    def __init__(self, node: SimulatedNode) -> None:
        self.node = node

    def collect(self, now: float) -> list[MetricFamily]:
        cycles = MetricFamily(
            "ceems_compute_unit_perf_cycles_total",
            help="CPU cycles consumed by the compute unit.",
            type="counter",
        )
        instructions = MetricFamily(
            "ceems_compute_unit_perf_instructions_total",
            help="Instructions retired by the compute unit.",
            type="counter",
        )
        flops = MetricFamily(
            "ceems_compute_unit_perf_flops_total",
            help="Floating-point operations retired by the compute unit.",
            type="counter",
        )
        llc_refs = MetricFamily(
            "ceems_compute_unit_perf_llc_references_total",
            help="Last-level cache references.",
            type="counter",
        )
        llc_misses = MetricFamily(
            "ceems_compute_unit_perf_llc_misses_total",
            help="Last-level cache misses.",
            type="counter",
        )
        dram = MetricFamily(
            "ceems_compute_unit_perf_dram_bytes_total",
            help="DRAM traffic caused by the compute unit (miss * line).",
            type="counter",
        )
        for uuid, telemetry in self.node.telemetry.items():
            labels = _unit_labels(self.node, uuid)
            if labels is None:
                continue
            perf = telemetry.perf
            cycles.add(float(perf.cycles), **labels)
            instructions.add(float(perf.instructions), **labels)
            flops.add(float(perf.flops), **labels)
            llc_refs.add(float(perf.llc_references), **labels)
            llc_misses.add(float(perf.llc_misses), **labels)
            dram.add(float(perf.dram_bytes), **labels)
        return [cycles, instructions, flops, llc_refs, llc_misses, dram]
