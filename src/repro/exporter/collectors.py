"""The CEEMS exporter's collectors.

Each collector reads its pseudo-filesystem / sensor *through the same
textual interfaces the real exporter uses* (kernel-format cgroup
files, ``/proc`` text, DCMI readings, powercap counters) rather than
reaching into simulation objects, so the parsing logic being tested is
real.

Compute-unit identity: the cgroup collector extracts the workload
``uuid`` from the cgroup path with per-resource-manager patterns —
SLURM job cgroups (``…/slurmstepd.scope/job_<id>``), libvirt machine
slices and kubelet pod slices — which is precisely how CEEMS stays
resource-manager agnostic while exporting one unified metric set.
"""

from __future__ import annotations

import re

from repro.hwsim.node import SimulatedNode
from repro.hwsim.procfs import parse_meminfo, parse_proc_stat
from repro.hwsim.rapl import RAPLDomain
from repro.tsdb.exposition import MetricFamily

from repro.exporter.collector import Collector

#: cgroup path -> uuid extraction, one pattern per resource manager.
UNIT_PATTERNS: dict[str, re.Pattern[str]] = {
    "slurm": re.compile(r"/system\.slice/slurmstepd\.scope/job_(?P<uuid>\d+)$"),
    "libvirt": re.compile(r"/machine\.slice/machine-qemu[^/]*?instance-(?P<uuid>[0-9a-f][0-9a-f-]*)\.scope$"),
    "k8s": re.compile(r"/kubepods\.slice/(?:[^/]+/)?kubepods-[a-z]+-pod(?P<uuid>[0-9a-f_]+)\.slice$"),
}


def extract_unit_uuid(cgroup_path: str) -> tuple[str, str] | None:
    """Identify a compute-unit cgroup.

    Returns ``(manager, uuid)`` or ``None`` when the path is not a
    workload cgroup (parent slices, system services…).
    """
    for manager, pattern in UNIT_PATTERNS.items():
        match = pattern.search(cgroup_path)
        if match:
            uuid = match.group("uuid")
            if manager == "k8s":
                uuid = uuid.replace("_", "-")
            return manager, uuid
    return None


def _parse_kv_file(text: str) -> dict[str, int]:
    """Parse a flat ``key value`` cgroup file (``cpu.stat`` etc.)."""
    out: dict[str, int] = {}
    for line in text.splitlines():
        parts = line.split()
        if len(parts) == 2:
            try:
                out[parts[0]] = int(parts[1])
            except ValueError:
                continue
    return out


class CgroupCollector(Collector):
    """Per-compute-unit CPU/memory/IO/pids metrics from the cgroup tree.

    ``cgroup_version`` selects the hierarchy flavour: ``"v2"`` (the
    unified hierarchy, default) or ``"v1"`` (per-controller
    hierarchies with ``cpuacct.stat`` in USER_HZ ticks and
    ``memory.usage_in_bytes``), since CEEMS supports clusters that
    have not migrated.  v1 exposes fewer controllers: IO and cpuset
    metrics are absent, exactly as on a real v1 node where those
    controllers are often unmounted for jobs.
    """

    name = "cgroup"

    def __init__(self, node: SimulatedNode, cgroup_version: str = "v2") -> None:
        if cgroup_version not in ("v1", "v2"):
            raise ValueError(f"unknown cgroup version {cgroup_version!r}")
        self.node = node
        self.cgroup_version = cgroup_version

    def collect(self, now: float) -> list[MetricFamily]:
        if self.cgroup_version == "v1":
            return self._collect_v1(now)
        return self._collect_v2(now)

    def _collect_v1(self, now: float) -> list[MetricFamily]:
        """The per-controller (legacy) hierarchy path."""
        cpu_user = MetricFamily(
            "ceems_compute_unit_cpu_user_seconds_total",
            help="Total user CPU time of the compute unit.",
            type="counter",
        )
        cpu_system = MetricFamily(
            "ceems_compute_unit_cpu_system_seconds_total",
            help="Total system CPU time of the compute unit.",
            type="counter",
        )
        mem_current = MetricFamily(
            "ceems_compute_unit_memory_current_bytes",
            help="Resident memory of the compute unit.",
            type="gauge",
        )
        mem_peak = MetricFamily(
            "ceems_compute_unit_memory_peak_bytes",
            help="Peak resident memory of the compute unit.",
            type="gauge",
        )
        mem_limit = MetricFamily(
            "ceems_compute_unit_memory_limit_bytes",
            help="cgroup memory limit of the compute unit.",
            type="gauge",
        )
        pids = MetricFamily(
            "ceems_compute_unit_pids",
            help="Processes/threads in the compute unit.",
            type="gauge",
        )
        for cgroup in self.node.cgroupfs.leaves():
            ident = extract_unit_uuid(cgroup.path)
            if ident is None:
                continue
            manager, uuid = ident
            labelset = {"uuid": uuid, "manager": manager}
            v1 = cgroup.v1_files()
            stat = _parse_kv_file(v1["cpuacct/cpuacct.stat"])
            # cpuacct.stat counts USER_HZ (100 Hz) ticks.
            cpu_user.add(stat["user"] / 100.0, **labelset)
            cpu_system.add(stat["system"] / 100.0, **labelset)
            mem_current.add(float(v1["memory/memory.usage_in_bytes"].strip()), **labelset)
            mem_peak.add(float(v1["memory/memory.max_usage_in_bytes"].strip()), **labelset)
            limit = int(v1["memory/memory.limit_in_bytes"].strip())
            if limit < 2**62:  # v1's "unlimited" sentinel
                mem_limit.add(float(limit), **labelset)
            pids.add(float(v1["pids/pids.current"].strip()), **labelset)
        return [cpu_user, cpu_system, mem_current, mem_peak, mem_limit, pids]

    def _collect_v2(self, now: float) -> list[MetricFamily]:
        cpu_user = MetricFamily(
            "ceems_compute_unit_cpu_user_seconds_total",
            help="Total user CPU time of the compute unit.",
            type="counter",
        )
        cpu_system = MetricFamily(
            "ceems_compute_unit_cpu_system_seconds_total",
            help="Total system CPU time of the compute unit.",
            type="counter",
        )
        cpus = MetricFamily(
            "ceems_compute_unit_cpus",
            help="Number of CPUs allocated to the compute unit.",
            type="gauge",
        )
        mem_current = MetricFamily(
            "ceems_compute_unit_memory_current_bytes",
            help="Resident memory of the compute unit.",
            type="gauge",
        )
        mem_peak = MetricFamily(
            "ceems_compute_unit_memory_peak_bytes",
            help="Peak resident memory of the compute unit.",
            type="gauge",
        )
        mem_limit = MetricFamily(
            "ceems_compute_unit_memory_limit_bytes",
            help="cgroup memory limit of the compute unit.",
            type="gauge",
        )
        io_read = MetricFamily(
            "ceems_compute_unit_io_read_bytes_total",
            help="Bytes read by the compute unit.",
            type="counter",
        )
        io_write = MetricFamily(
            "ceems_compute_unit_io_write_bytes_total",
            help="Bytes written by the compute unit.",
            type="counter",
        )
        pids = MetricFamily(
            "ceems_compute_unit_pids",
            help="Processes/threads in the compute unit.",
            type="gauge",
        )
        for cgroup in self.node.cgroupfs.leaves():
            ident = extract_unit_uuid(cgroup.path)
            if ident is None:
                continue
            manager, uuid = ident
            labelset = {"uuid": uuid, "manager": manager}
            files = cgroup.files()
            cpu_stat = _parse_kv_file(files["cpu.stat"])
            cpu_user.add(cpu_stat["user_usec"] / 1e6, **labelset)
            cpu_system.add(cpu_stat["system_usec"] / 1e6, **labelset)
            from repro.hwsim.cgroupfs import parse_cpuset

            cpus.add(float(len(parse_cpuset(files["cpuset.cpus"]))), **labelset)
            mem_current.add(float(files["memory.current"].strip()), **labelset)
            mem_peak.add(float(files["memory.peak"].strip()), **labelset)
            limit_text = files["memory.max"].strip()
            if limit_text != "max":
                mem_limit.add(float(limit_text), **labelset)
            rbytes = wbytes = 0
            for line in files["io.stat"].splitlines():
                fields = dict(
                    part.split("=", 1) for part in line.split()[1:] if "=" in part
                )
                rbytes += int(fields.get("rbytes", 0))
                wbytes += int(fields.get("wbytes", 0))
            if rbytes or wbytes:
                io_read.add(float(rbytes), **labelset)
                io_write.add(float(wbytes), **labelset)
            pids.add(float(files["pids.current"].strip()), **labelset)
        return [cpu_user, cpu_system, cpus, mem_current, mem_peak, mem_limit, io_read, io_write, pids]


class RAPLCollector(Collector):
    """RAPL package/DRAM energy counters from the powercap interface.

    Two data paths:

    * **raw** (default): the wrapped ``energy_uj`` counters, exactly
      what the real exporter reads.  Wrap subtraction downstream is
      only safe while at most one wrap fits in a scrape interval, so
      every scrape also emits ``ceems_rapl_counter_trustworthy`` — an
      ``up 0``-style guard that drops to 0 whenever the elapsed
      interval could hide a full counter range (small
      ``max_energy_range_uj``, long scrape gap, missed scrapes).
    * **accumulator**: when a governor daemon has attached its
      high-rate accumulator to the node
      (``node.governor_accumulator``), energy is served aliasing-free
      from the accumulator under the same names/labels, and
      per-compute-unit attributed energy
      (``ceems_compute_unit_rapl_joules_total``) appears alongside.
    """

    name = "rapl"

    #: No RAPL domain in this simulation plausibly sustains more than
    #: 1 kW; used to bound how much energy one scrape interval can
    #: hide (the double-wrap guard).
    MAX_PLAUSIBLE_DOMAIN_WATTS = 1000.0

    def __init__(self, node: SimulatedNode) -> None:
        self.node = node
        #: powercap path -> (scrape time, raw µJ) of the previous
        #: collect, for the trustworthiness verdict.
        self._last_raw: dict[str, tuple[float, int]] = {}

    def collect(self, now: float) -> list[MetricFamily]:
        package = MetricFamily(
            "ceems_rapl_package_joules_total",
            help="RAPL package domain energy counter (handles wraparound upstream).",
            type="counter",
        )
        dram = MetricFamily(
            "ceems_rapl_dram_joules_total",
            help="RAPL DRAM domain energy counter.",
            type="counter",
        )
        trust = MetricFamily(
            "ceems_rapl_counter_trustworthy",
            help="0 when the scrape interval could hide a full counter "
            "range (wrap subtraction no longer safe).",
            type="gauge",
        )
        acc = getattr(self.node, "governor_accumulator", None)
        for pkg in self.node.rapl:
            entries = pkg.sysfs_entries()
            base = f"intel-rapl:{pkg.socket}"
            labels = {"socket": str(pkg.socket), "path": base}
            raw_uj = int(entries[f"{base}/energy_uj"])
            joules = (
                acc.domain_joules("package", pkg.socket)
                if acc is not None
                else raw_uj / 1e6
            )
            package.add(joules, **labels)
            trust.add(
                self._trustworthy(base, now, raw_uj, pkg.package.max_energy_range_uj),
                **labels,
            )
            if pkg.dram is not None:
                sub = f"{base}:0"
                labels = {"socket": str(pkg.socket), "path": sub}
                raw_uj = int(entries[f"{sub}/energy_uj"])
                joules = (
                    acc.domain_joules("dram", pkg.socket)
                    if acc is not None
                    else raw_uj / 1e6
                )
                dram.add(joules, **labels)
                trust.add(
                    self._trustworthy(sub, now, raw_uj, pkg.dram.max_energy_range_uj),
                    **labels,
                )
        families = [package, dram, trust]
        if acc is not None:
            families.append(self._collect_units(acc))
        return families

    def _trustworthy(self, path: str, now: float, raw_uj: int, max_range_uj: int) -> float:
        """Double-wrap guard for one domain's raw counter path."""
        prev = self._last_raw.get(path)
        self._last_raw[path] = (now, raw_uj)
        if prev is None:
            return 1.0
        prev_at, prev_uj = prev
        _delta, ok = RAPLDomain.counter_delta_checked(
            prev_uj, raw_uj, max_range_uj, now - prev_at, self.MAX_PLAUSIBLE_DOMAIN_WATTS
        )
        return 1.0 if ok else 0.0

    def _collect_units(self, acc) -> MetricFamily:
        """Per-compute-unit RAPL energy by allocation ratio."""
        family = MetricFamily(
            "ceems_compute_unit_rapl_joules_total",
            help="Aliasing-free RAPL energy attributed to the compute "
            "unit by allocation ratio (governor accumulator).",
            type="counter",
        )
        for task in self.node.tasks.values():
            ident = extract_unit_uuid(task.cgroup_path)
            manager = ident[0] if ident else "unknown"
            family.add(acc.unit_joules(task.uuid), uuid=task.uuid, manager=manager)
        return family

    @staticmethod
    def wraparound_delta(prev_joules: float, curr_joules: float, max_range_uj: int) -> float:
        """Joule-domain counter delta with wraparound handling."""
        return (
            RAPLDomain.counter_delta(int(prev_joules * 1e6), int(curr_joules * 1e6), max_range_uj)
            / 1e6
        )


class IPMICollector(Collector):
    """Whole-node power from the BMC's DCMI *Get Power Reading*."""

    name = "ipmi"

    def __init__(self, node: SimulatedNode) -> None:
        self.node = node

    def collect(self, now: float) -> list[MetricFamily]:
        reading = self.node.ipmi.read(now)
        current = MetricFamily(
            "ceems_ipmi_dcmi_current_watts",
            help="Current node power reported by IPMI DCMI.",
            type="gauge",
        )
        avg = MetricFamily(
            "ceems_ipmi_dcmi_avg_watts",
            help="Average node power over the DCMI statistics window.",
            type="gauge",
        )
        minimum = MetricFamily(
            "ceems_ipmi_dcmi_min_watts",
            help="Minimum node power over the DCMI statistics window.",
            type="gauge",
        )
        maximum = MetricFamily(
            "ceems_ipmi_dcmi_max_watts",
            help="Maximum node power over the DCMI statistics window.",
            type="gauge",
        )
        if reading.active:
            current.add(float(reading.current_watts))
            avg.add(float(reading.average_watts))
            minimum.add(float(reading.minimum_watts))
            maximum.add(float(reading.maximum_watts))
        return [current, avg, minimum, maximum]


class NodeCollector(Collector):
    """Node totals from ``/proc/stat`` and ``/proc/meminfo``."""

    name = "node"

    def __init__(self, node: SimulatedNode) -> None:
        self.node = node

    def collect(self, now: float) -> list[MetricFamily]:
        stat = parse_proc_stat(self.node.procfs.render_stat())
        meminfo = parse_meminfo(self.node.procfs.render_meminfo())
        cpu = MetricFamily(
            "ceems_cpu_seconds_total",
            help="Node CPU time by mode.",
            type="counter",
        )
        cpu.add(stat["user_usec"] / 1e6, mode="user")
        cpu.add(stat["system_usec"] / 1e6, mode="system")
        cpu.add(stat["idle_usec"] / 1e6, mode="idle")
        cpu.add(stat["iowait_usec"] / 1e6, mode="iowait")
        ncpus = MetricFamily("ceems_cpu_count", help="Number of CPUs on the node.", type="gauge")
        ncpus.add(float(self.node.spec.ncores))
        mem_total = MetricFamily(
            "ceems_meminfo_total_bytes", help="Node MemTotal.", type="gauge"
        )
        mem_total.add(float(meminfo["MemTotal"]))
        mem_available = MetricFamily(
            "ceems_meminfo_available_bytes", help="Node MemAvailable.", type="gauge"
        )
        mem_available.add(float(meminfo["MemAvailable"]))
        mem_used = MetricFamily(
            "ceems_meminfo_used_bytes",
            help="Node memory in use (MemTotal - MemAvailable).",
            type="gauge",
        )
        mem_used.add(float(meminfo["MemTotal"] - meminfo["MemAvailable"]))
        return [cpu, ncpus, mem_total, mem_available, mem_used]


class GPUMapCollector(Collector):
    """The workload→GPU index map (paper §II.A.d).

    GPU ordinals bound to a job are not available post-mortem from the
    resource manager, so CEEMS snapshots the mapping as a metric while
    the unit runs.  Dashboards join this flag series against DCGM /
    AMD-SMI device metrics on (instance, index).
    """

    name = "gpu_map"

    def __init__(self, node: SimulatedNode) -> None:
        self.node = node

    def collect(self, now: float) -> list[MetricFamily]:
        family = MetricFamily(
            "ceems_compute_unit_gpu_index_flag",
            help="1 for each GPU index bound to the compute unit.",
            type="gauge",
        )
        for task in self.node.tasks.values():
            ident = extract_unit_uuid(task.cgroup_path)
            manager = ident[0] if ident else "unknown"
            for index in task.gpu_indices:
                gpu = self.node.gpus[index]
                family.add(
                    1.0,
                    uuid=task.uuid,
                    manager=manager,
                    index=str(index),
                    gpu_uuid=gpu.uuid,
                )
        return [family]


class SelfCollector(Collector):
    """The exporter's own footprint (backs the paper's E6 claims)."""

    name = "self"

    def __init__(self, exporter) -> None:
        # weak coupling: anything with scrapes_total / scrape_cpu_seconds
        self.exporter = exporter

    def collect(self, now: float) -> list[MetricFamily]:
        scrapes = MetricFamily(
            "ceems_exporter_scrapes_total",
            help="Scrapes served by this exporter.",
            type="counter",
        )
        scrapes.add(float(self.exporter.scrapes_total))
        cpu = MetricFamily(
            "ceems_exporter_scrape_cpu_seconds_total",
            help="CPU time spent answering scrapes.",
            type="counter",
        )
        cpu.add(self.exporter.scrape_cpu_seconds)
        families = [scrapes, cpu]
        registry = getattr(self.exporter, "registry", None)
        if registry is not None:
            errors = MetricFamily(
                "ceems_exporter_collector_errors_total",
                help="Collector failures since exporter start.",
                type="counter",
            )
            for name, count in sorted(registry.errors_total.items()):
                errors.add(float(count), collector=name)
            last = MetricFamily(
                "ceems_exporter_collector_last_scrape_success",
                help="Outcome (1/0) of each collector's previous run.",
                type="gauge",
            )
            # last_success reflects the *previous* registry.collect()
            # pass; the current pass finishes after this collector runs.
            for name, ok in sorted(registry.last_success.items()):
                last.add(ok, collector=name)
            families.extend([errors, last])
        return families
