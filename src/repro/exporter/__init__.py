"""The CEEMS exporter and companion GPU exporters.

One exporter instance runs per compute node (paper §II.B.a).  It is an
HTTP server answering ``/metrics`` in the Prometheus exposition
format, composed of independently enable-able *collectors*:

``cgroup``
    Walks the node's cgroup tree, extracts the compute-unit ``uuid``
    from the cgroup path (SLURM job id / libvirt instance / k8s pod)
    and exports per-unit CPU, memory, IO and pid metrics.
``rapl``
    Package and DRAM energy counters from the powercap interface.
``ipmi``
    Node power from the BMC's DCMI *Get Power Reading*.
``node``
    Node-level totals from ``/proc/stat`` and ``/proc/meminfo`` — the
    denominators of the paper's Eq. (1).
``gpu_map``
    The workload→GPU-index map (§II.A.d) that lets dashboards join
    DCGM/AMD-SMI device metrics to compute units.
``self``
    The exporter's own resource footprint, backing the paper's
    15–20 MB / sub-millisecond-CPU claims (bench E6).

GPU telemetry itself comes from the separate DCGM-style and
AMD-SMI-style exporters in :mod:`repro.exporter.gpu`, deployed
alongside the CEEMS exporter exactly as the paper prescribes.
"""

from repro.exporter.collector import Collector, CollectorRegistry
from repro.exporter.collectors import (
    CgroupCollector,
    GPUMapCollector,
    IPMICollector,
    NodeCollector,
    RAPLCollector,
    SelfCollector,
)
from repro.exporter.gpu import AMDSMIExporter, DCGMExporter
from repro.exporter.server import CEEMSExporter

__all__ = [
    "Collector",
    "CollectorRegistry",
    "CgroupCollector",
    "RAPLCollector",
    "IPMICollector",
    "NodeCollector",
    "GPUMapCollector",
    "SelfCollector",
    "CEEMSExporter",
    "DCGMExporter",
    "AMDSMIExporter",
]
