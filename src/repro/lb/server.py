"""The load balancer itself: reverse proxy + access control + balancing.

Request flow for ``/api/v1/query`` and ``/api/v1/query_range``:

1. read the user identity from ``X-Grafana-User`` (reject if absent —
   without an identity there is nothing to authorize against);
2. extract the query (GET parameter or POST form), introspect it for
   the unit uuids it touches;
3. authorize: admins pass, regular users must own every touched unit
   and the query scope must be bounded;
4. pick a backend by the configured strategy and forward the request,
   tracking in-flight connections for least-connection.

Non-query endpoints (``/api/v1/label/...``, ``/-/healthy``) pass
through with only the identity requirement, as they expose no
per-unit samples (series metadata is considered public here, matching
the CEEMS deployment default).
"""

from __future__ import annotations

import time

from repro.common.errors import CEEMSError, QueryError
from repro.common.httpx import App, Request, Response
from repro.lb.authz import Authorizer
from repro.lb.introspect import extract_uuids
from repro.lb.strategies import Backend, Strategy, make_strategy

USER_HEADER = "x-grafana-user"
_QUERY_PATHS = ("/api/v1/query", "/api/v1/query_range", "/api/v1/query_exemplars")


class LoadBalancer:
    """CEEMS LB over one or more Prometheus/Thanos backends.

    Optional time-range-aware routing: when ``longterm_backends`` and
    ``hot_retention`` are set, queries whose evaluation time (or range
    start) reaches further back than the hot TSDB's retention are
    routed to the long-term (Thanos) pool instead — so dashboard
    queries on recent data never pay the object-store path and
    year-scale queries never miss data the hot instance dropped.
    ``clock`` provides "now" for the age computation (logical time in
    the simulation).
    """

    def __init__(
        self,
        backends: list[Backend],
        authorizer: Authorizer,
        *,
        strategy: str = "round-robin",
        longterm_backends: list[Backend] | None = None,
        hot_retention: float = 0.0,
        clock=None,
        slow_request_ms: float = 250.0,
        frontend=None,
    ) -> None:
        self.strategy: Strategy = make_strategy(strategy, backends)
        self.longterm_strategy: Strategy | None = (
            make_strategy(strategy, longterm_backends) if longterm_backends else None
        )
        self.hot_retention = hot_retention
        self.clock = clock
        self.authorizer = authorizer
        #: Optional :class:`repro.frontend.QueryFrontend`.  When set,
        #: authorized ``/api/v1/query`` and ``/api/v1/query_range``
        #: requests are dispatched into the frontend (split + cache +
        #: coalesce + admission) instead of straight to a backend; all
        #: other paths keep the plain proxy path.
        self.frontend = frontend
        self.app = App(name="ceems-lb")
        # Telemetry and readiness must be registered before the
        # catch-all /{rest} proxy route — the router matches in
        # registration order.
        self.app.expose_telemetry()
        self.app.router.get("/-/ready", self._ready)
        self.app.router.add("GET", "/{rest}", self._proxy)
        self.app.router.add("POST", "/{rest}", self._proxy)
        # Router patterns match single segments; register the API paths
        # explicitly so nested paths route too.
        for path in (
            "/api/v1/query",
            "/api/v1/query_range",
            "/api/v1/query_exemplars",
            "/api/v1/series",
            "/api/v1/rules",
            "/api/v1/alerts",
            "/api/v1/silences",
            "/-/healthy",
        ):
            self.app.router.get(path, self._proxy)
            self.app.router.post(path, self._proxy)
        # Grafana probes these on data-source load; read-only, so GET
        # only (no query introspection — they carry no PromQL).
        self.app.router.get("/api/v1/status/buildinfo", self._proxy)
        self.app.router.get("/api/v1/status/runtimeinfo", self._proxy)
        self.app.router.get("/api/v1/label/{name}/values", self._proxy)
        self.app.router.get("/api/v1/silence/{id}", self._proxy)
        self.app.router.delete("/api/v1/silence/{id}", self._proxy)
        self.requests_proxied = 0
        self.requests_denied = 0
        self.longterm_routed = 0
        self.upstream_errors = 0
        #: Proxied requests slower than this log a structured warning
        #: (trace-correlated, so the backend's eval spans are one
        #: ``/debug/traces?trace_id=`` lookup away).  ``<0`` disables.
        self.slow_request_ms = slow_request_ms
        self.slow_requests = 0
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Expose routing decisions and per-backend state on /metrics."""
        registry = self.app.telemetry.registry
        registry.gauge_func(
            "ceems_lb_requests_proxied_total",
            lambda: float(self.requests_proxied),
            help="Requests forwarded to a backend.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_lb_requests_denied_total",
            lambda: float(self.requests_denied),
            help="Requests rejected before reaching a backend.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_lb_longterm_routed_total",
            lambda: float(self.longterm_routed),
            help="Queries routed to the long-term (Thanos) pool.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_lb_upstream_errors_total",
            lambda: float(self.upstream_errors),
            help="Requests that found no healthy backend (503) or a crashing one (502).",
            type="counter",
        )
        registry.gauge_func(
            "ceems_lb_slow_requests_total",
            lambda: float(self.slow_requests),
            help="Proxied requests slower than the slow-request threshold.",
            type="counter",
        )
        registry.collector(self._collect_backends)

    def _collect_backends(self):
        from repro.tsdb.exposition import MetricFamily

        healthy = MetricFamily(
            "ceems_lb_backend_healthy",
            help="Whether the backend is considered healthy (1/0).",
            type="gauge",
        )
        in_flight = MetricFamily(
            "ceems_lb_backend_in_flight",
            help="In-flight requests per backend.",
            type="gauge",
        )
        total = MetricFamily(
            "ceems_lb_backend_requests_total",
            help="Requests forwarded, per backend.",
            type="counter",
        )
        pools: list[tuple[str, Strategy]] = [("hot", self.strategy)]
        if self.longterm_strategy is not None:
            pools.append(("longterm", self.longterm_strategy))
        for pool, strategy in pools:
            for backend in strategy.backends:
                healthy.add(1.0 if backend.healthy else 0.0, backend=backend.name, pool=pool)
                in_flight.add(float(backend.active_connections), backend=backend.name, pool=pool)
                total.add(float(backend.total_requests), backend=backend.name, pool=pool)
        return [healthy, in_flight, total]

    def _ready(self, request: Request) -> Response:
        """503 until at least one hot backend is healthy."""
        if not self.strategy.healthy_backends():
            return Response.error(503, "no healthy backends")
        return Response.json({"status": "success", "ready": True})

    # -- core ---------------------------------------------------------------
    def _deny(self, request: Request, status: int, reason: str, user: str = "") -> Response:
        self.requests_denied += 1
        self.app.telemetry.log.warning(
            "request denied",
            path=request.path,
            status=status,
            user=user,
            reason=reason,
        )
        return Response.error(status, reason)

    def _proxy(self, request: Request) -> Response:
        user = request.header(USER_HEADER, "") or ""
        if not user:
            return self._deny(request, 401, f"missing {USER_HEADER} header")
        if request.path in _QUERY_PATHS:
            query = request.param("query")
            if query is None:
                form = request.form
                values = form.get("query")
                query = values[0] if values else None
            if not query:
                return self._deny(request, 400, "missing query parameter", user)
            try:
                scope = extract_uuids(query)
            except QueryError as exc:
                return self._deny(request, 400, f"unparseable query: {exc}", user)
            if not self.authorizer.allowed(user, scope.uuids, unbounded=scope.unbounded):
                return self._deny(
                    request,
                    403,
                    f"user {user} is not allowed to query units {sorted(scope.uuids) or '(all)'}",
                    user,
                )
        if self.frontend is not None and request.path in (
            "/api/v1/query",
            "/api/v1/query_range",
        ):
            # Age-based routing wins over the frontend: the frontend's
            # backend pool is the hot pool, so queries older than the
            # hot retention must keep going to the long-term (Thanos)
            # backends via the plain proxy path below.
            if not self._routes_longterm(request):
                return self._frontend_dispatch(request)
        try:
            backend = self._pick_backend(request)
        except CEEMSError as exc:
            # No healthy backend to forward to: a retryable outage, not
            # a crash — tell the client when to come back.
            self.upstream_errors += 1
            return Response.json(
                {"status": "error", "errorType": "unavailable", "error": str(exc)},
                status=503,
                retry_after="1",
            )
        backend.acquire()
        started = time.perf_counter()
        try:
            response = backend.app.handle(request)
        except Exception as exc:  # backend crashed mid-request
            self.upstream_errors += 1
            self.app.telemetry.log.error(
                "backend error",
                path=request.path,
                backend=backend.name,
                error=str(exc),
            )
            response = Response.json(
                {"status": "error", "errorType": "internal", "error": f"backend {backend.name} failed: {exc}"},
                status=502,
            )
        finally:
            backend.release()
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        if 0 <= self.slow_request_ms <= elapsed_ms:
            self.slow_requests += 1
            self.app.telemetry.log.warning(
                "slow proxied request",
                path=request.path,
                backend=backend.name,
                duration_ms=elapsed_ms,
                threshold_ms=self.slow_request_ms,
            )
        self.requests_proxied += 1
        response.headers["x-ceems-backend"] = backend.name
        return response

    def _frontend_dispatch(self, request: Request) -> Response:
        """Hand an authorized query-path request to the frontend."""
        try:
            response = self.frontend.handle_query(request)
        except CEEMSError as exc:
            # No healthy backend behind the frontend (strategy.choose
            # raised): the same retryable outage the plain proxy path
            # maps to 503 + Retry-After — not a 502 crash.
            self.upstream_errors += 1
            response = Response.json(
                {"status": "error", "errorType": "unavailable", "error": str(exc)},
                status=503,
                retry_after="1",
            )
        except Exception as exc:  # frontend/backend crashed mid-request
            self.upstream_errors += 1
            self.app.telemetry.log.error(
                "frontend error", path=request.path, error=str(exc)
            )
            response = Response.json(
                {
                    "status": "error",
                    "errorType": "internal",
                    "error": f"query frontend failed: {exc}",
                },
                status=502,
            )
        self.requests_proxied += 1
        response.headers["x-ceems-backend"] = self.frontend.app.name
        return response

    def _routes_longterm(self, request: Request) -> bool:
        """Would age-based routing send this query to the long-term pool?"""
        if (
            self.longterm_strategy is None
            or self.hot_retention <= 0
            or self.clock is None
        ):
            return False
        earliest = self._query_earliest_time(request)
        return (
            earliest is not None
            and self.clock.now() - earliest > self.hot_retention
        )

    def _pick_backend(self, request: Request) -> Backend:
        """Route by query age when a long-term pool is configured."""
        if request.path in _QUERY_PATHS and self._routes_longterm(request):
            self.longterm_routed += 1
            return self.longterm_strategy.choose()
        return self.strategy.choose()

    @staticmethod
    def _query_earliest_time(request: Request) -> float | None:
        """Earliest timestamp a query touches (time / start params)."""

        def param(name: str) -> str | None:
            value = request.param(name)
            if value is None:
                values = request.form.get(name)
                value = values[0] if values else None
            return value

        raw = param("start") if request.path.endswith("query_range") else param("time")
        if raw is None:
            return None
        try:
            return float(raw)
        except ValueError:
            return None
