"""The CEEMS load balancer.

Paper §II.B.c: Prometheus + Grafana lack **access control** — any user
with a Grafana data source can query any workload's metrics.  The
CEEMS LB fixes that as a reverse proxy in front of Prometheus/Thanos:

1. it extracts the compute-unit ``uuid`` from every PromQL query it
   proxies (:mod:`repro.lb.introspect`);
2. it checks ownership of those units against the API server — either
   directly against the SQLite DB file when accessible, or via the
   API server's HTTP endpoint (:mod:`repro.lb.authz`);
3. allowed queries are forwarded to a backend chosen by the balancing
   strategy — round-robin or least-connection
   (:mod:`repro.lb.strategies`).

The user identity comes from the ``X-Grafana-User`` header Grafana
attaches to every data-source request (``send_user_header``).
"""

from repro.lb.authz import Authorizer, DBAuthorizer, APIAuthorizer
from repro.lb.introspect import extract_uuids
from repro.lb.server import LoadBalancer
from repro.lb.strategies import Backend, LeastConnection, RoundRobin, make_strategy

__all__ = [
    "LoadBalancer",
    "extract_uuids",
    "Authorizer",
    "DBAuthorizer",
    "APIAuthorizer",
    "Backend",
    "RoundRobin",
    "LeastConnection",
    "make_strategy",
]
