"""PromQL query introspection: which compute units does a query touch?

The LB *"intercepts the query request to the backend Prometheus
instance [and] retrieves the workload unique identifier"* (§II.B.c).
Rather than regex-scraping the query string, the query is parsed with
the real PromQL parser and the AST walked for matchers on the ``uuid``
label:

* ``uuid="123"`` contributes ``123``;
* ``uuid=~"123|456"`` contributes both (the alternation form Grafana's
  multi-select variables generate);
* a query with **no** uuid matcher touches node-level or other users'
  series, so it is only allowed for admins — the conservative default
  the access-control argument requires;
* an unparseable query is rejected outright (fail closed).
"""

from __future__ import annotations

from repro.tsdb.model import MatchOp
from repro.tsdb.promql.ast import (
    Aggregation,
    BinaryOp,
    Call,
    Expr,
    MatrixSelector,
    Paren,
    Subquery,
    UnaryOp,
    VectorSelector,
)
from repro.tsdb.promql.parser import parse_expr

#: Characters allowed in a regex matcher we are willing to expand into
#: an explicit uuid list.  Anything fancier (wildcards, classes) could
#: match arbitrary units, so it is treated as "touches everything".
_SAFE_ALTERNATION = set("0123456789abcdefABCDEF-|_")


class QueryScope:
    """The set of uuids a query touches, or 'unbounded'."""

    def __init__(self) -> None:
        self.uuids: set[str] = set()
        #: True when at least one selector has no uuid constraint or a
        #: non-enumerable regex — i.e. the query can see other units.
        self.unbounded: bool = False

    def add_selector(self, selector: VectorSelector) -> None:
        found = False
        for matcher in selector.matchers:
            if matcher.name != "uuid":
                continue
            if matcher.op is MatchOp.EQ and matcher.value:
                self.uuids.add(matcher.value)
                found = True
            elif matcher.op is MatchOp.RE and set(matcher.value) <= _SAFE_ALTERNATION:
                parts = [p for p in matcher.value.split("|") if p]
                if parts:
                    self.uuids.update(parts)
                    found = True
            # NEQ/NRE and exotic regexes don't bound the scope.
        if not found:
            self.unbounded = True


def _walk(node: Expr, scope: QueryScope) -> None:
    if isinstance(node, VectorSelector):
        scope.add_selector(node)
    elif isinstance(node, MatrixSelector):
        scope.add_selector(node.selector)
    elif isinstance(node, Paren):
        _walk(node.expr, scope)
    elif isinstance(node, Subquery):
        _walk(node.expr, scope)
    elif isinstance(node, UnaryOp):
        _walk(node.expr, scope)
    elif isinstance(node, Call):
        for arg in node.args:
            _walk(arg, scope)
    elif isinstance(node, Aggregation):
        _walk(node.expr, scope)
        if node.param is not None:
            _walk(node.param, scope)
    elif isinstance(node, BinaryOp):
        _walk(node.lhs, scope)
        _walk(node.rhs, scope)
    # literals contribute nothing


def extract_uuids(query: str) -> QueryScope:
    """Analyse one PromQL query string.

    Raises :class:`QueryError` when the query does not parse — the LB
    turns that into an HTTP 400 before any backend sees the query.
    """
    scope = QueryScope()
    _walk(parse_expr(query), scope)
    return scope
