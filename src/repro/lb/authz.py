"""Ownership authorization for the LB.

Two modes, matching the paper's architecture paragraph: the LB checks
ownership *"by directly querying the CEEMS API server's DB, when
available.  If the DB file is not accessible, CEEMS LB makes an API
request to the CEEMS API server."*
"""

from __future__ import annotations

import abc

from repro.apiserver.api import USER_HEADER
from repro.apiserver.db import Database
from repro.common.httpx import App, Request


class Authorizer(abc.ABC):
    """Decides whether ``user`` may read units ``uuids``."""

    def __init__(self, admin_users: tuple[str, ...] = ("admin",)) -> None:
        self.admin_users = set(admin_users)
        self.checks = 0
        self.denials = 0

    def allowed(self, user: str, uuids: set[str], *, unbounded: bool) -> bool:
        self.checks += 1
        if user in self.admin_users:
            return True
        if unbounded:
            self.denials += 1
            return False
        verdict = self._check(user, uuids)
        if not verdict:
            self.denials += 1
        return verdict

    @abc.abstractmethod
    def _check(self, user: str, uuids: set[str]) -> bool:
        """Non-admin ownership check for an enumerated uuid set."""


class DBAuthorizer(Authorizer):
    """Direct SQLite lookups (the fast path)."""

    def __init__(self, db: Database, admin_users: tuple[str, ...] = ("admin",)) -> None:
        super().__init__(admin_users)
        self.db = db

    def _check(self, user: str, uuids: set[str]) -> bool:
        for uuid in uuids:
            owner = self.db.find_unit_owner(uuid)
            if owner is None or owner[0] != user:
                return False
        return True


class APIAuthorizer(Authorizer):
    """HTTP calls to the API server's ``/api/v1/verify`` endpoint."""

    def __init__(self, api_app: App, admin_users: tuple[str, ...] = ("admin",)) -> None:
        super().__init__(admin_users)
        self.api_app = api_app

    def _check(self, user: str, uuids: set[str]) -> bool:
        query = "&".join(f"uuid={uuid}" for uuid in sorted(uuids))
        response = self.api_app.handle(
            Request.from_url("GET", f"/api/v1/verify?{query}", headers={USER_HEADER: user})
        )
        return response.ok
