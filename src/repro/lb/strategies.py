"""Load-balancing strategies: round-robin and least-connection.

The paper names exactly these two ("classic strategies like
round-robin and least connection").  Backends track in-flight request
counts; least-connection picks the emptiest backend, with stable
tie-breaking by registration order so tests are deterministic.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.common.errors import CEEMSError
from repro.common.httpx import App


@dataclass
class Backend:
    """One Prometheus/Thanos backend behind the LB."""

    name: str
    app: App
    healthy: bool = True
    active_connections: int = 0
    total_requests: int = 0

    def acquire(self) -> None:
        self.active_connections += 1
        self.total_requests += 1

    def release(self) -> None:
        if self.active_connections <= 0:
            raise CEEMSError(f"release without acquire on backend {self.name}")
        self.active_connections -= 1


class Strategy(abc.ABC):
    """Backend selection policy."""

    name = "strategy"

    def __init__(self, backends: list[Backend]) -> None:
        if not backends:
            raise CEEMSError("load balancer needs at least one backend")
        self.backends = backends

    def healthy_backends(self) -> list[Backend]:
        return [b for b in self.backends if b.healthy]

    @abc.abstractmethod
    def choose(self) -> Backend:
        """Pick the backend for the next request."""


class RoundRobin(Strategy):
    """Strict rotation over healthy backends."""

    name = "round-robin"

    def __init__(self, backends: list[Backend]) -> None:
        super().__init__(backends)
        self._next = 0

    def choose(self) -> Backend:
        healthy = self.healthy_backends()
        if not healthy:
            raise CEEMSError("no healthy backends")
        backend = healthy[self._next % len(healthy)]
        self._next = (self._next + 1) % len(healthy)
        return backend


class LeastConnection(Strategy):
    """Pick the backend with the fewest in-flight requests."""

    name = "least-connection"

    def choose(self) -> Backend:
        healthy = self.healthy_backends()
        if not healthy:
            raise CEEMSError("no healthy backends")
        return min(healthy, key=lambda b: b.active_connections)


def make_strategy(name: str, backends: list[Backend]) -> Strategy:
    if name == "round-robin":
        return RoundRobin(backends)
    if name == "least-connection":
        return LeastConnection(backends)
    raise CEEMSError(f"unknown LB strategy {name!r}")
