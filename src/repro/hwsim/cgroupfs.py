"""In-memory cgroup pseudo-filesystem (v2 layout, v1-compat views).

Resource managers create one cgroup per compute workload (paper
§II.A.a: a batch job for SLURM, a VM for OpenStack/libvirt, a pod for
Kubernetes) and the kernel maintains per-controller accounting files
under ``/sys/fs/cgroup``.  The CEEMS exporter's cgroup collector walks
this tree and parses those files.

This module reproduces the part of cgroup v2 the stack observes:

* a hierarchy with create/delete and path lookup,
* accounting files rendered **byte-compatibly** with the kernel
  formats: ``cpu.stat``, ``memory.current``, ``memory.peak``,
  ``memory.max``, ``memory.stat``, ``io.stat``, ``pids.current``,
  ``cpuset.cpus``, ``cpu.max``,
* charge APIs the node simulation uses to account CPU time, memory
  and IO to a workload's cgroup,
* a cgroup v1 compatibility view (``cpuacct.usage`` et al.) since the
  real CEEMS supports clusters still on v1.

The file *contents* are strings exactly as the kernel writes them, so
the exporter parses text rather than peeking at Python attributes —
keeping the collector honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.common.errors import SimulationError


def _format_cpuset(cpus: tuple[int, ...]) -> str:
    """Render a CPU list the way ``cpuset.cpus`` does (``0-3,8,10-11``)."""
    if not cpus:
        return ""
    sorted_cpus = sorted(set(cpus))
    ranges: list[tuple[int, int]] = []
    start = prev = sorted_cpus[0]
    for cpu in sorted_cpus[1:]:
        if cpu == prev + 1:
            prev = cpu
            continue
        ranges.append((start, prev))
        start = prev = cpu
    ranges.append((start, prev))
    return ",".join(f"{a}-{b}" if a != b else f"{a}" for a, b in ranges)


def parse_cpuset(text: str) -> tuple[int, ...]:
    """Inverse of :func:`_format_cpuset`."""
    text = text.strip()
    if not text:
        return ()
    cpus: list[int] = []
    for part in text.split(","):
        if "-" in part:
            a, b = part.split("-")
            cpus.extend(range(int(a), int(b) + 1))
        else:
            cpus.append(int(part))
    return tuple(cpus)


@dataclass
class IOStat:
    """Per-device IO accounting (``io.stat`` line)."""

    rbytes: int = 0
    wbytes: int = 0
    rios: int = 0
    wios: int = 0

    def render(self, device: str) -> str:
        return (
            f"{device} rbytes={self.rbytes} wbytes={self.wbytes} "
            f"rios={self.rios} wios={self.wios} dbytes=0 dios=0"
        )


@dataclass
class Cgroup:
    """One cgroup directory with its controller accounting state."""

    path: str
    controllers: tuple[str, ...] = ("cpu", "memory", "io", "pids", "cpuset")

    # cpu controller
    usage_usec: int = 0
    user_usec: int = 0
    system_usec: int = 0
    nr_periods: int = 0
    nr_throttled: int = 0
    throttled_usec: int = 0
    #: cpu.max quota: (max_usec_per_period or None, period_usec)
    cpu_quota_usec: int | None = None
    cpu_period_usec: int = 100000

    # memory controller
    memory_current: int = 0
    memory_peak: int = 0
    memory_limit: int | None = None
    memory_anon: int = 0
    memory_file: int = 0
    memory_kernel: int = 0
    memory_oom_events: int = 0

    # io controller: device ("major:minor") -> IOStat
    io: dict[str, IOStat] = field(default_factory=dict)

    # pids controller
    pids_current: int = 0
    pids_max: int | None = None

    # cpuset controller
    cpuset_cpus: tuple[int, ...] = ()

    children: dict[str, "Cgroup"] = field(default_factory=dict)

    # -- charging API (used by the node simulation) --------------------
    def charge_cpu(self, user_usec: int, system_usec: int) -> None:
        if user_usec < 0 or system_usec < 0:
            raise SimulationError(f"negative CPU charge on {self.path}")
        self.user_usec += user_usec
        self.system_usec += system_usec
        self.usage_usec += user_usec + system_usec

    def set_memory(self, current: int, anon: int | None = None, file: int | None = None) -> None:
        if current < 0:
            raise SimulationError(f"negative memory on {self.path}")
        if self.memory_limit is not None and current > self.memory_limit:
            # Model the OOM-killer boundary: usage is clamped at the
            # limit and an oom event is recorded.
            current = self.memory_limit
            self.memory_oom_events += 1
        self.memory_current = current
        self.memory_peak = max(self.memory_peak, current)
        self.memory_anon = anon if anon is not None else int(current * 0.9)
        self.memory_file = file if file is not None else current - self.memory_anon
        self.memory_kernel = max(int(current * 0.01), 0)

    def charge_io(self, device: str, rbytes: int = 0, wbytes: int = 0, rios: int = 0, wios: int = 0) -> None:
        stat = self.io.setdefault(device, IOStat())
        stat.rbytes += rbytes
        stat.wbytes += wbytes
        stat.rios += rios
        stat.wios += wios

    # -- kernel-format file rendering ----------------------------------
    def files(self) -> dict[str, str]:
        """All readable files of this cgroup, kernel-formatted."""
        out: dict[str, str] = {
            "cgroup.controllers": " ".join(self.controllers),
        }
        if "cpu" in self.controllers:
            out["cpu.stat"] = (
                f"usage_usec {self.usage_usec}\n"
                f"user_usec {self.user_usec}\n"
                f"system_usec {self.system_usec}\n"
                f"nr_periods {self.nr_periods}\n"
                f"nr_throttled {self.nr_throttled}\n"
                f"throttled_usec {self.throttled_usec}\n"
            )
            quota = "max" if self.cpu_quota_usec is None else str(self.cpu_quota_usec)
            out["cpu.max"] = f"{quota} {self.cpu_period_usec}\n"
        if "memory" in self.controllers:
            out["memory.current"] = f"{self.memory_current}\n"
            out["memory.peak"] = f"{self.memory_peak}\n"
            out["memory.max"] = ("max" if self.memory_limit is None else str(self.memory_limit)) + "\n"
            out["memory.stat"] = (
                f"anon {self.memory_anon}\n"
                f"file {self.memory_file}\n"
                f"kernel {self.memory_kernel}\n"
                f"kernel_stack 0\nslab {self.memory_kernel}\n"
            )
            out["memory.events"] = (
                f"low 0\nhigh 0\nmax 0\noom {self.memory_oom_events}\noom_kill {self.memory_oom_events}\n"
            )
        if "io" in self.controllers:
            out["io.stat"] = "".join(stat.render(dev) + "\n" for dev, stat in sorted(self.io.items()))
        if "pids" in self.controllers:
            out["pids.current"] = f"{self.pids_current}\n"
            out["pids.max"] = ("max" if self.pids_max is None else str(self.pids_max)) + "\n"
        if "cpuset" in self.controllers:
            out["cpuset.cpus"] = _format_cpuset(self.cpuset_cpus) + "\n"
            out["cpuset.cpus.effective"] = _format_cpuset(self.cpuset_cpus) + "\n"
        return out

    def v1_files(self) -> dict[str, str]:
        """cgroup v1 compatibility view (per-controller hierarchies)."""
        usage_ns = self.usage_usec * 1000
        # v1 cpuacct.stat counts in USER_HZ (100 Hz) ticks.
        return {
            "cpuacct/cpuacct.usage": f"{usage_ns}\n",
            "cpuacct/cpuacct.stat": (
                f"user {self.user_usec // 10000}\nsystem {self.system_usec // 10000}\n"
            ),
            "memory/memory.usage_in_bytes": f"{self.memory_current}\n",
            "memory/memory.max_usage_in_bytes": f"{self.memory_peak}\n",
            "memory/memory.limit_in_bytes": (
                str(self.memory_limit) if self.memory_limit is not None else str(2**63 - 4096)
            )
            + "\n",
            "pids/pids.current": f"{self.pids_current}\n",
        }


class CgroupFS:
    """The cgroup hierarchy of one node.

    Paths are slash-separated and rooted at ``/`` (standing for
    ``/sys/fs/cgroup``).  The root cgroup exists implicitly and
    aggregates nothing by itself — node-level totals come from procfs,
    mirroring how the real exporter works.
    """

    def __init__(self) -> None:
        self.root = Cgroup(path="/")

    # -- hierarchy management ------------------------------------------
    @staticmethod
    def _parts(path: str) -> list[str]:
        parts = [p for p in path.split("/") if p]
        if not parts:
            raise SimulationError("cannot address the root cgroup here")
        return parts

    def create(self, path: str, **attrs: object) -> Cgroup:
        """Create a cgroup (and missing ancestors), returning it.

        ``attrs`` set initial attributes on the leaf (e.g.
        ``memory_limit=…``, ``cpuset_cpus=…``).
        """
        node = self.root
        for part in self._parts(path):
            if part not in node.children:
                child_path = (node.path.rstrip("/") + "/" + part) if node.path != "/" else "/" + part
                node.children[part] = Cgroup(path=child_path)
            node = node.children[part]
        for key, value in attrs.items():
            if not hasattr(node, key):
                raise SimulationError(f"unknown cgroup attribute {key!r}")
            setattr(node, key, value)
        return node

    def get(self, path: str) -> Cgroup:
        node = self.root
        for part in self._parts(path):
            try:
                node = node.children[part]
            except KeyError:
                raise SimulationError(f"no such cgroup: {path}") from None
        return node

    def exists(self, path: str) -> bool:
        try:
            self.get(path)
            return True
        except SimulationError:
            return False

    def delete(self, path: str) -> None:
        """Remove a cgroup; it must have no children (kernel rule)."""
        parts = self._parts(path)
        parent = self.root
        for part in parts[:-1]:
            try:
                parent = parent.children[part]
            except KeyError:
                raise SimulationError(f"no such cgroup: {path}") from None
        leaf = parent.children.get(parts[-1])
        if leaf is None:
            raise SimulationError(f"no such cgroup: {path}")
        if leaf.children:
            raise SimulationError(f"cgroup {path} has children; cannot delete")
        del parent.children[parts[-1]]

    # -- traversal -------------------------------------------------------
    def walk(self) -> Iterator[Cgroup]:
        """Depth-first traversal of all cgroups below the root."""
        stack = sorted(self.root.children.values(), key=lambda c: c.path, reverse=True)
        while stack:
            node = stack.pop()
            yield node
            stack.extend(sorted(node.children.values(), key=lambda c: c.path, reverse=True))

    def leaves(self) -> Iterator[Cgroup]:
        """Only cgroups with no children (where processes actually live)."""
        for node in self.walk():
            if not node.children:
                yield node

    def read(self, cgroup_path: str, filename: str) -> str:
        """Read one accounting file, as the collector would."""
        node = self.get(cgroup_path)
        files = node.files()
        if filename not in files:
            raise SimulationError(f"no file {filename!r} in cgroup {cgroup_path}")
        return files[filename]
