"""IPMI-DCMI power-reading simulation.

Models the BMC's *Get Power Reading* DCMI command that the CEEMS
exporter's IPMI collector issues (paper §II.A.b):

* readings cover the **whole node** — including components RAPL cannot
  see (fans, VRMs, NIC, board) — which is why the paper's Eq. (1)
  anchors on IPMI and only uses RAPL for the CPU/DRAM split;
* per server class, GPU power is either included in or excluded from
  the reading (both variants exist on Jean-Zay, §III.A);
* the BMC samples power at a slow internal cadence (~1 s or slower)
  and answering the command is itself slow — *"the IPMI-DCMI command
  is not suitable to use at a high frequency"*.  We model a sampling
  floor: reads between BMC samples return the previous sample;
* sensor quantisation (integer watts) and a small calibration noise.

The DCMI response carries current/min/max/average power over a
statistics window, all of which are reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class DCMIPowerReading:
    """One DCMI *Get Power Reading* response."""

    current_watts: int
    minimum_watts: int
    maximum_watts: int
    average_watts: int
    timestamp: float
    #: Statistics reporting period, milliseconds (DCMI field).
    period_ms: int = 1000
    #: Power measurement active state.
    active: bool = True


@dataclass
class IPMIDCMISensor:
    """The BMC power sensor of one node.

    Parameters
    ----------
    includes_gpu:
        Whether the node's power rails feeding the GPUs pass through
        the BMC-monitored PSU measurement (server-class dependent).
    sample_interval:
        BMC internal sampling cadence in seconds; reads between
        samples return stale data.
    noise_pct:
        Gaussian calibration error applied per sample (1σ, relative).
    command_latency:
        Time the DCMI command itself takes; exported as a metric so
        the exporter bench can show why IPMI is not scraped fast.
    """

    includes_gpu: bool = True
    sample_interval: float = 1.0
    noise_pct: float = 0.02
    command_latency: float = 0.15
    seed: int = 0

    _rng: np.random.Generator = field(init=False, repr=False)
    _last_sample_time: float = field(default=float("-inf"), init=False, repr=False)
    _last_sample_watts: float = field(default=0.0, init=False, repr=False)
    _window_min: float = field(default=float("inf"), init=False, repr=False)
    _window_max: float = field(default=float("-inf"), init=False, repr=False)
    _window_sum: float = field(default=0.0, init=False, repr=False)
    _window_count: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def observe(self, now: float, true_total_w: float, gpu_w: float) -> None:
        """Feed the ground-truth power at time ``now``.

        The node simulation calls this every integration step; the
        sensor decides internally whether a new BMC sample is due.
        """
        if now - self._last_sample_time < self.sample_interval:
            return
        visible = true_total_w if self.includes_gpu else true_total_w - gpu_w
        noisy = visible * (1.0 + self.noise_pct * float(self._rng.standard_normal()))
        sample = max(noisy, 0.0)
        self._last_sample_time = now
        self._last_sample_watts = sample
        self._window_min = min(self._window_min, sample)
        self._window_max = max(self._window_max, sample)
        self._window_sum += sample
        self._window_count += 1

    def read(self, now: float) -> DCMIPowerReading:
        """Issue the DCMI *Get Power Reading* command.

        Returns the most recent BMC sample (integer watts) along with
        window statistics.  ``now`` is accepted for interface symmetry;
        the reading's timestamp is the BMC sample time, not the read
        time — real BMCs behave the same way.
        """
        current = int(round(self._last_sample_watts))
        if self._window_count == 0:
            return DCMIPowerReading(
                current_watts=0,
                minimum_watts=0,
                maximum_watts=0,
                average_watts=0,
                timestamp=now,
                active=False,
            )
        return DCMIPowerReading(
            current_watts=current,
            minimum_watts=int(round(self._window_min)),
            maximum_watts=int(round(self._window_max)),
            average_watts=int(round(self._window_sum / self._window_count)),
            timestamp=self._last_sample_time,
            period_ms=int(self.sample_interval * 1000),
        )

    def reset_statistics(self) -> None:
        """Reset the min/max/avg statistics window (DCMI supports this)."""
        self._window_min = float("inf")
        self._window_max = float("-inf")
        self._window_sum = 0.0
        self._window_count = 0
