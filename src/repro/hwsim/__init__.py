"""Simulated node hardware.

This package is the stand-in for the physical substrate CEEMS runs on:
server-class compute nodes with RAPL energy counters, a BMC exposing
IPMI-DCMI power readings, optional NVIDIA/AMD GPUs, and the Linux
``/sys/fs/cgroup`` + ``/proc`` pseudo-filesystems that resource
managers populate.

The simulation is *physically closed*: a single ground-truth power
model (:mod:`repro.hwsim.power_model`) converts workload activity into
per-component power, and every measurement channel (RAPL, IPMI, GPU
telemetry) derives from that ground truth with its own realistic
artefacts — counter wraparound, sampling floors, sensor noise,
inclusion/exclusion of GPU power per server class.  Because the ground
truth is known, the tests can quantify exactly how well the CEEMS
estimation rules (paper Eq. 1) recover per-job power.
"""

from repro.hwsim.cgroupfs import CgroupFS
from repro.hwsim.gpu import GPU_PROFILES, GPUDevice
from repro.hwsim.ipmi import IPMIDCMISensor
from repro.hwsim.node import NodeSpec, SimulatedNode, Task, UsageProfile
from repro.hwsim.power_model import NodePowerModel, PowerBreakdown
from repro.hwsim.rapl import RAPLDomain, RAPLPackage

__all__ = [
    "CgroupFS",
    "GPUDevice",
    "GPU_PROFILES",
    "IPMIDCMISensor",
    "NodeSpec",
    "SimulatedNode",
    "Task",
    "UsageProfile",
    "NodePowerModel",
    "PowerBreakdown",
    "RAPLDomain",
    "RAPLPackage",
]
