"""``/proc`` pseudo-filesystem rendering for node-level metrics.

Besides per-workload cgroup metrics, the exporter collects node-level
totals — total CPU usage and total memory usage — from ``/proc`` and
``/sys`` (paper §II.A.a).  Those totals are the denominators of the
paper's Eq. (1): ``T_node,t`` and ``M_node,t``.

The renderers produce the exact kernel text formats, so the exporter's
node collector parses ``/proc/stat`` and ``/proc/meminfo`` the way the
Go original does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Kernel USER_HZ: jiffies per second in /proc/stat.
USER_HZ = 100


@dataclass
class ProcFS:
    """Node-level accounting backing ``/proc/stat`` and ``/proc/meminfo``.

    The node simulation charges CPU time and sets memory occupancy;
    idle time is derived from wall time so that
    ``user + system + idle == ncpus * elapsed`` exactly — an invariant
    the property tests check and Eq. (1) silently relies on.
    """

    ncpus: int
    memory_total_bytes: int
    boot_time: float = 0.0

    user_usec: int = 0
    system_usec: int = 0
    iowait_usec: int = 0
    memory_used_bytes: int = 0
    #: Page cache; counts as available memory, as MemAvailable does.
    cached_bytes: int = 0
    _elapsed: float = field(default=0.0, repr=False)

    # -- charging -------------------------------------------------------
    def advance(self, dt: float) -> None:
        self._elapsed += dt

    def charge_cpu(self, user_usec: int, system_usec: int) -> None:
        self.user_usec += user_usec
        self.system_usec += system_usec

    def set_memory(self, used_bytes: int, cached_bytes: int | None = None) -> None:
        self.memory_used_bytes = min(max(used_bytes, 0), self.memory_total_bytes)
        if cached_bytes is not None:
            self.cached_bytes = min(max(cached_bytes, 0), self.memory_total_bytes - self.memory_used_bytes)

    # -- derived totals ---------------------------------------------------
    @property
    def busy_usec(self) -> int:
        return self.user_usec + self.system_usec

    @property
    def idle_usec(self) -> int:
        total_capacity = int(self._elapsed * 1e6) * self.ncpus
        return max(total_capacity - self.busy_usec - self.iowait_usec, 0)

    @property
    def cpu_util(self) -> float:
        """Instantaneous-ish utilisation over the whole history."""
        capacity = self._elapsed * 1e6 * self.ncpus
        return self.busy_usec / capacity if capacity > 0 else 0.0

    # -- kernel-format rendering ------------------------------------------
    def render_stat(self) -> str:
        """``/proc/stat`` — aggregate ``cpu`` line (jiffies, USER_HZ)."""

        def jiffies(usec: int) -> int:
            return usec * USER_HZ // 1_000_000

        user = jiffies(self.user_usec)
        system = jiffies(self.system_usec)
        idle = jiffies(self.idle_usec)
        iowait = jiffies(self.iowait_usec)
        lines = [f"cpu  {user} 0 {system} {idle} {iowait} 0 0 0 0 0"]
        # Per-cpu lines: distribute evenly; collectors only use the sum.
        for cpu in range(self.ncpus):
            lines.append(
                f"cpu{cpu} {user // self.ncpus} 0 {system // self.ncpus} "
                f"{idle // self.ncpus} {iowait // self.ncpus} 0 0 0 0 0"
            )
        lines.append(f"btime {int(self.boot_time)}")
        return "\n".join(lines) + "\n"

    def render_meminfo(self) -> str:
        """``/proc/meminfo`` — the fields node collectors parse (kB)."""
        total_kb = self.memory_total_bytes // 1024
        used_kb = self.memory_used_bytes // 1024
        cached_kb = self.cached_bytes // 1024
        free_kb = max(total_kb - used_kb - cached_kb, 0)
        available_kb = free_kb + cached_kb
        return (
            f"MemTotal:       {total_kb} kB\n"
            f"MemFree:        {free_kb} kB\n"
            f"MemAvailable:   {available_kb} kB\n"
            f"Buffers:        0 kB\n"
            f"Cached:         {cached_kb} kB\n"
        )


def parse_proc_stat(text: str) -> dict[str, int]:
    """Parse the aggregate ``cpu`` line of ``/proc/stat`` into usec.

    Returns ``{"user_usec": …, "system_usec": …, "idle_usec": …,
    "iowait_usec": …}``, converting jiffies back to microseconds.
    """
    for line in text.splitlines():
        if line.startswith("cpu "):
            fields = line.split()
            to_usec = 1_000_000 // USER_HZ
            return {
                "user_usec": int(fields[1]) * to_usec,
                "system_usec": int(fields[3]) * to_usec,
                "idle_usec": int(fields[4]) * to_usec,
                "iowait_usec": int(fields[5]) * to_usec,
            }
    raise ValueError("no aggregate cpu line in /proc/stat text")


def parse_meminfo(text: str) -> dict[str, int]:
    """Parse ``/proc/meminfo`` into a name → bytes mapping."""
    out: dict[str, int] = {}
    for line in text.splitlines():
        name, _, rest = line.partition(":")
        value = rest.strip().split()
        if value:
            out[name] = int(value[0]) * 1024
    return out
