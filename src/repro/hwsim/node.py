"""One simulated compute node: hardware + workloads + accounting.

:class:`SimulatedNode` is where the physical closure happens.  Each
integration step (:meth:`SimulatedNode.advance`):

1. evaluates every running task's :class:`UsageProfile` to get its CPU
   utilisation, memory footprint, GPU activity and IO rates;
2. charges the task's cgroup (CPU µs, memory bytes, IO bytes) and the
   node's procfs totals — the numerators and denominators of the
   paper's Eq. (1);
3. computes ground-truth component power from the
   :class:`~repro.hwsim.power_model.NodePowerModel` and integrates it
   into the RAPL counters, the IPMI sensor and the GPU energy
   counters.

The node also exposes a per-task *ground-truth power attribution*
oracle (:meth:`SimulatedNode.true_task_power`) used by the tests and
benchmarks to quantify how well the CEEMS estimation recovers reality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.common.errors import SimulationError
from repro.hwsim.cgroupfs import CgroupFS
from repro.hwsim.gpu import GPU_PROFILES, GPUDevice
from repro.hwsim.ipmi import IPMIDCMISensor
from repro.hwsim.power_model import (
    CPU_PROFILES,
    DRAM_PROFILES,
    CPUPowerParams,
    DRAMPowerParams,
    NodePowerModel,
    PowerBreakdown,
    PowerCapState,
)
from repro.hwsim.perf import TaskTelemetry
from repro.hwsim.procfs import ProcFS
from repro.hwsim.rapl import RAPLPackage


@dataclass(frozen=True)
class ActivitySample:
    """One task's instantaneous activity."""

    cpu_util: float  # fraction of the task's allocated cores in use
    mem_fraction: float  # fraction of the task's memory limit resident
    gpu_util: float  # SM utilisation on each bound GPU
    gpu_mem_fraction: float
    read_bps: float = 0.0
    write_bps: float = 0.0


@dataclass(frozen=True)
class UsageProfile:
    """Deterministic parametric activity profile for a task.

    Activity at relative time ``t`` (seconds since task start) is a
    base level plus an optional sinusoidal modulation plus an optional
    initial ramp, clamped to [0, 1].  This family covers the workload
    shapes the benches need (steady solvers, bursty pipelines,
    ramp-up trainings) while staying fully deterministic.
    """

    cpu_base: float = 0.8
    cpu_amplitude: float = 0.0
    cpu_period: float = 3600.0
    mem_base: float = 0.5
    mem_growth_per_hour: float = 0.0  # linear growth, clamped at 0.95
    gpu_base: float = 0.0
    gpu_amplitude: float = 0.0
    gpu_period: float = 1800.0
    ramp_seconds: float = 0.0
    read_bps: float = 0.0
    write_bps: float = 0.0
    phase: float = 0.0

    def evaluate(self, t: float) -> ActivitySample:
        ramp = 1.0 if self.ramp_seconds <= 0 else min(t / self.ramp_seconds, 1.0)
        cpu = self.cpu_base + self.cpu_amplitude * math.sin(2 * math.pi * (t / self.cpu_period) + self.phase)
        gpu = self.gpu_base + self.gpu_amplitude * math.sin(2 * math.pi * (t / self.gpu_period) + self.phase)
        mem = self.mem_base + self.mem_growth_per_hour * (t / 3600.0)
        return ActivitySample(
            cpu_util=min(max(cpu * ramp, 0.0), 1.0),
            mem_fraction=min(max(mem, 0.0), 0.95),
            gpu_util=min(max(gpu * ramp, 0.0), 1.0),
            gpu_mem_fraction=min(max(0.8 * gpu, 0.0), 0.9),
            read_bps=self.read_bps,
            write_bps=self.write_bps,
        )

    @classmethod
    def constant(cls, cpu: float, mem: float = 0.5, gpu: float = 0.0) -> "UsageProfile":
        return cls(cpu_base=cpu, mem_base=mem, gpu_base=gpu)


@dataclass
class Task:
    """A workload placed on this node by a resource manager."""

    uuid: str
    cgroup_path: str
    cores: tuple[int, ...]
    memory_limit_bytes: int
    profile: UsageProfile
    start_time: float
    gpu_indices: tuple[int, ...] = ()
    nprocs: int = 4

    def activity(self, now: float) -> ActivitySample:
        return self.profile.evaluate(now - self.start_time)


@dataclass(frozen=True)
class NodeSpec:
    """Static description of a node's hardware."""

    name: str
    cpu_model: str = "intel-cascadelake"
    sockets: int = 2
    cores_per_socket: int = 20
    memory_gb: int = 192
    gpus: tuple[str, ...] = ()
    #: Whether the BMC's DCMI reading includes GPU power (both server
    #: classes exist on Jean-Zay, paper §III.A).
    ipmi_includes_gpu: bool = True
    dram_profile: str = "ddr4-192g"

    @property
    def ncores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def memory_bytes(self) -> int:
        return self.memory_gb * 1024**3

    @property
    def has_dram_rapl(self) -> bool:
        """Intel parts expose a DRAM RAPL domain; AMD parts do not."""
        return self.cpu_model.startswith("intel")


class SimulatedNode:
    """A live compute node: hardware simulation + task accounting."""

    #: Baseline OS noise: a sliver of CPU and memory not owned by any
    #: task (system daemons).  Keeps node totals strictly above the
    #: sum of task usage, like a real node.
    OS_CPU_UTIL = 0.004
    OS_MEMORY_FRACTION = 0.02

    def __init__(self, spec: NodeSpec, *, seed: int = 0) -> None:
        self.spec = spec
        self.cgroupfs = CgroupFS()
        self.procfs = ProcFS(ncpus=spec.ncores, memory_total_bytes=spec.memory_bytes)
        cpu_params: CPUPowerParams = CPU_PROFILES[spec.cpu_model]
        dram_params: DRAMPowerParams = DRAM_PROFILES[spec.dram_profile]
        self.power_model = NodePowerModel(sockets=spec.sockets, cpu=cpu_params, dram=dram_params)
        maker = RAPLPackage.intel if spec.has_dram_rapl else RAPLPackage.amd
        self.rapl: list[RAPLPackage] = [maker(s) for s in range(spec.sockets)]
        for pkg in self.rapl:
            # The long_term constraint accepts writes up to the part's
            # peak package power (what real firmware advertises).
            pkg.package.max_power_uw = int(cpu_params.max_w * 1e6)
        #: Per-socket RAPL cap enforcement state (see PowerCapState).
        self.cap_states: list[PowerCapState] = [PowerCapState() for _ in range(spec.sockets)]
        #: Seconds this node spent with its package draw clamped.
        self.cap_throttled_seconds = 0.0
        self.ipmi = IPMIDCMISensor(includes_gpu=spec.ipmi_includes_gpu, seed=seed)
        self.gpus: list[GPUDevice] = [
            GPUDevice(index=i, profile=GPU_PROFILES[sku]) for i, sku in enumerate(spec.gpus)
        ]
        self.tasks: dict[str, Task] = {}
        #: perf/eBPF counters per task (paper §IV future work).
        self.telemetry: dict[str, TaskTelemetry] = {}
        self._free_cores: set[int] = set(range(spec.ncores))
        self._free_gpus: set[int] = set(range(len(self.gpus)))
        self.last_breakdown = PowerBreakdown(0.0, 0.0, 0.0, 0.0)
        self._now: float | None = None
        #: Ground-truth accumulated energy per task uuid (test oracle).
        self.true_task_energy_j: dict[str, float] = {}
        #: Set by the governor daemon when its high-rate RAPL
        #: accumulator is attached to this node; the exporter's RAPL
        #: collector then serves aliasing-free energy from it.
        self.governor_accumulator = None

    # -- placement -------------------------------------------------------
    def can_fit(self, ncores: int, ngpus: int = 0) -> bool:
        return len(self._free_cores) >= ncores and len(self._free_gpus) >= ngpus

    def place_task(
        self,
        uuid: str,
        cgroup_path: str,
        ncores: int,
        memory_limit_bytes: int,
        profile: UsageProfile,
        start_time: float,
        ngpus: int = 0,
    ) -> Task:
        """Allocate cores/GPUs, create the cgroup, register the task."""
        if uuid in self.tasks:
            raise SimulationError(f"duplicate task uuid {uuid} on {self.spec.name}")
        if not self.can_fit(ncores, ngpus):
            raise SimulationError(
                f"node {self.spec.name} cannot fit task {uuid} "
                f"({ncores} cores / {ngpus} GPUs requested)"
            )
        cores = tuple(sorted(self._free_cores)[:ncores])
        self._free_cores -= set(cores)
        gpu_indices = tuple(sorted(self._free_gpus)[:ngpus])
        self._free_gpus -= set(gpu_indices)
        self.cgroupfs.create(
            cgroup_path,
            memory_limit=memory_limit_bytes,
            cpuset_cpus=cores,
            pids_current=4,
        )
        task = Task(
            uuid=uuid,
            cgroup_path=cgroup_path,
            cores=cores,
            memory_limit_bytes=memory_limit_bytes,
            profile=profile,
            start_time=start_time,
            gpu_indices=gpu_indices,
        )
        self.tasks[uuid] = task
        self.telemetry[uuid] = TaskTelemetry.for_task(uuid, network_heavy=ngpus > 0)
        self.true_task_energy_j.setdefault(uuid, 0.0)
        return task

    def remove_task(self, uuid: str) -> Task:
        """Tear the task down (resource manager epilogue)."""
        task = self.tasks.pop(uuid, None)
        if task is None:
            raise SimulationError(f"no task {uuid} on node {self.spec.name}")
        self._free_cores |= set(task.cores)
        self._free_gpus |= set(task.gpu_indices)
        for gi in task.gpu_indices:
            self.gpus[gi].idle()
        if self.cgroupfs.exists(task.cgroup_path):
            self.cgroupfs.delete(task.cgroup_path)
        self.telemetry.pop(uuid, None)
        return task

    # -- simulation step ---------------------------------------------------
    def advance(self, now: float, dt: float) -> PowerBreakdown:
        """Integrate the node state from ``now - dt`` to ``now``.

        Activity is evaluated at the *end* of the step (right-endpoint
        rule); with the default 5 s step and the slow profile dynamics
        used in the experiments the integration error is negligible
        compared to the sensor artefacts being modelled.
        """
        if dt <= 0:
            raise SimulationError("dt must be positive")
        if self._now is not None and now < self._now:
            raise SimulationError("node time went backwards")
        self._now = now

        busy_core_seconds = self.OS_CPU_UTIL * self.spec.ncores * dt
        os_mem = int(self.OS_MEMORY_FRACTION * self.spec.memory_bytes)
        total_mem = os_mem
        task_busy: dict[str, float] = {}
        task_mem: dict[str, int] = {}

        for task in self.tasks.values():
            sample = task.activity(now)
            core_seconds = sample.cpu_util * len(task.cores) * dt
            task_busy[task.uuid] = core_seconds
            busy_core_seconds += core_seconds
            mem_bytes = int(sample.mem_fraction * task.memory_limit_bytes)
            task_mem[task.uuid] = mem_bytes
            total_mem += mem_bytes

            cg = self.cgroupfs.get(task.cgroup_path)
            usec = int(core_seconds * 1e6)
            # Typical HPC split: ~92% user, 8% system time.
            cg.charge_cpu(user_usec=int(usec * 0.92), system_usec=usec - int(usec * 0.92))
            cg.set_memory(mem_bytes)
            if sample.read_bps or sample.write_bps:
                cg.charge_io(
                    "259:0",
                    rbytes=int(sample.read_bps * dt),
                    wbytes=int(sample.write_bps * dt),
                    rios=int(sample.read_bps * dt / 65536) if sample.read_bps else 0,
                    wios=int(sample.write_bps * dt / 65536) if sample.write_bps else 0,
                )
            for gi in task.gpu_indices:
                gpu = self.gpus[gi]
                gpu.set_activity(sample.gpu_util, int(sample.gpu_mem_fraction * gpu.profile.memory_bytes))
            telemetry = self.telemetry[task.uuid]
            telemetry.perf.charge(core_seconds)
            telemetry.net.charge(core_seconds)

        # Node totals (procfs).
        self.procfs.advance(dt)
        busy_usec = int(busy_core_seconds * 1e6)
        self.procfs.charge_cpu(user_usec=int(busy_usec * 0.92), system_usec=busy_usec - int(busy_usec * 0.92))
        self.procfs.set_memory(min(total_mem, self.spec.memory_bytes))

        # Ground-truth power and sensor integration.
        cpu_util = busy_core_seconds / (self.spec.ncores * dt)
        mem_activity_struct = total_mem / self.spec.memory_bytes
        # Memory activity blends footprint with compute intensity.
        mem_activity = min(0.5 * mem_activity_struct + 0.5 * cpu_util, 1.0)
        gpu_w = sum(gpu.advance(dt) for gpu in self.gpus)
        breakdown = self.power_model.evaluate(cpu_util, mem_activity, gpu_w)
        breakdown = self._enforce_power_caps(breakdown, dt)
        self.last_breakdown = breakdown

        per_socket_cpu_j = breakdown.cpu_w * dt / self.spec.sockets
        per_socket_dram_j = breakdown.dram_w * dt / self.spec.sockets
        for package in self.rapl:
            package.package.add_energy(per_socket_cpu_j)
            if package.dram is not None:
                package.dram.add_energy(per_socket_dram_j)
        self.ipmi.observe(now, breakdown.total_w, gpu_w)

        # Ground-truth per-task attribution (oracle).
        self._accumulate_true_energy(dt, breakdown, task_busy, task_mem, busy_core_seconds, total_mem)
        return breakdown

    def _enforce_power_caps(self, breakdown: PowerBreakdown, dt: float) -> PowerBreakdown:
        """Apply written RAPL package limits to the evaluated draw.

        Limits arrive through the powercap sysfs writes
        (``constraint_0_power_limit_uw``); each socket's
        :class:`PowerCapState` turns the written limit into the ceiling
        the silicon enforces *this* step (first-order settle), and the
        package share of ``cpu_w`` is clamped to it.  The clamp happens
        before RAPL/IPMI integration and before the attribution oracle,
        so every downstream measurement sees the capped reality.
        """
        per_socket_prev = self.last_breakdown.cpu_w / self.spec.sockets
        per_socket_now = breakdown.cpu_w / self.spec.sockets
        clamped = 0.0
        for pkg, cap in zip(self.rapl, self.cap_states):
            cap.limit_w = pkg.package.power_limit_uw / 1e6
            cap.advance(dt, from_w=per_socket_prev)
            clamped += cap.clamp(per_socket_now)
        if clamped < breakdown.cpu_w - 1e-9:
            self.cap_throttled_seconds += dt
            breakdown = replace(breakdown, cpu_w=clamped)
        return breakdown

    def _accumulate_true_energy(
        self,
        dt: float,
        breakdown: PowerBreakdown,
        task_busy: dict[str, float],
        task_mem: dict[str, int],
        busy_core_seconds: float,
        total_mem: int,
    ) -> None:
        """Attribute ground-truth power to tasks.

        The oracle's convention: dynamic CPU power splits by busy-core
        share, DRAM by resident-memory share, each task owns its bound
        GPUs' power, and platform + idle power splits equally among
        running tasks (there is no non-arbitrary owner for it — the
        same choice the paper makes for network power).
        """
        if not self.tasks:
            return
        ntasks = len(self.tasks)
        sockets_idle_w = self.power_model.sockets * self.power_model.cpu.idle_w
        cpu_dyn_w = max(breakdown.cpu_w - sockets_idle_w, 0.0)
        dram_idle_w = self.power_model.sockets * self.power_model.dram.idle_w
        dram_dyn_w = max(breakdown.dram_w - dram_idle_w, 0.0)
        shared_w = breakdown.platform_w + sockets_idle_w + dram_idle_w
        for uuid, task in self.tasks.items():
            cpu_share = task_busy[uuid] / busy_core_seconds if busy_core_seconds > 0 else 0.0
            mem_share = task_mem[uuid] / total_mem if total_mem > 0 else 0.0
            gpu_power = sum(self.gpus[i].power_w for i in task.gpu_indices)
            watts = cpu_dyn_w * cpu_share + dram_dyn_w * mem_share + gpu_power + shared_w / ntasks
            self.true_task_energy_j[uuid] += watts * dt

    # -- oracle ------------------------------------------------------------
    def true_task_power(self, uuid: str) -> float:
        """Instantaneous ground-truth power of a task (last step), watts."""
        if uuid not in self.tasks:
            raise SimulationError(f"no task {uuid}")
        # Recompute from the last breakdown with current shares.
        if self._now is None:
            return 0.0
        task = self.tasks[uuid]
        sample = task.activity(self._now)
        busy = {u: t.activity(self._now).cpu_util * len(t.cores) for u, t in self.tasks.items()}
        mem = {
            u: t.activity(self._now).mem_fraction * t.memory_limit_bytes for u, t in self.tasks.items()
        }
        total_busy = sum(busy.values()) + self.OS_CPU_UTIL * self.spec.ncores
        total_mem = sum(mem.values()) + self.OS_MEMORY_FRACTION * self.spec.memory_bytes
        bd = self.last_breakdown
        sockets_idle_w = self.power_model.sockets * self.power_model.cpu.idle_w
        dram_idle_w = self.power_model.sockets * self.power_model.dram.idle_w
        cpu_dyn = max(bd.cpu_w - sockets_idle_w, 0.0)
        dram_dyn = max(bd.dram_w - dram_idle_w, 0.0)
        shared = bd.platform_w + sockets_idle_w + dram_idle_w
        gpu_power = sum(self.gpus[i].power_w for i in task.gpu_indices)
        del sample  # activity already folded into busy/mem maps
        return (
            cpu_dyn * (busy[uuid] / total_busy if total_busy else 0.0)
            + dram_dyn * (mem[uuid] / total_mem if total_mem else 0.0)
            + gpu_power
            + shared / len(self.tasks)
        )
