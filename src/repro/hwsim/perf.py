"""Per-task performance and network counters (paper §IV future work).

The paper's pipeline: *"adding network and IO stats to CEEMS exporter
using extended Berkley Packet Filtering (eBPF) framework and adding
performance metrics like FLOPS, caching, and memory IO bandwidth …
from Linux's perf framework."*

This module provides the kernel-side substrate for both:

* :class:`TaskNetCounters` — what an eBPF cgroup-egress/ingress probe
  would accumulate: TX/RX bytes and packets per compute unit;
* :class:`TaskPerfCounters` — what a perf-events group would count:
  instructions, cycles, FLOPs, LLC references/misses and DRAM
  traffic, derived deterministically from the task's activity profile
  and a per-task *workload signature* (IPC, FLOP intensity, cache
  behaviour) so different jobs look like different codes.

The signature is sampled once per task from its uuid (stable hash →
rng), making counters reproducible without threading extra state
through the resource managers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

#: Nominal core frequency used to convert busy time into cycles.
CORE_HZ = 2.5e9


@dataclass(frozen=True)
class WorkloadSignature:
    """Micro-architectural character of one task's code."""

    ipc: float  # instructions per cycle
    flop_fraction: float  # FLOPs per instruction
    llc_refs_per_kinst: float  # LLC references per 1000 instructions
    llc_miss_rate: float  # misses / references
    bytes_per_miss: float = 64.0  # cache line
    #: network character: bytes per core-second of compute
    net_tx_per_core_s: float = 0.0
    net_rx_per_core_s: float = 0.0

    @classmethod
    def from_uuid(cls, uuid: str, *, network_heavy: bool = False) -> "WorkloadSignature":
        """Deterministic signature derived from the unit id."""
        digest = hashlib.sha256(uuid.encode()).digest()
        rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
        net_scale = 5e6 if network_heavy else 5e5
        return cls(
            ipc=float(rng.uniform(0.6, 3.2)),
            flop_fraction=float(rng.uniform(0.05, 0.45)),
            llc_refs_per_kinst=float(rng.uniform(2.0, 40.0)),
            llc_miss_rate=float(rng.uniform(0.02, 0.6)),
            net_tx_per_core_s=float(rng.uniform(0.1, 1.0)) * net_scale,
            net_rx_per_core_s=float(rng.uniform(0.1, 1.0)) * net_scale,
        )


@dataclass
class TaskPerfCounters:
    """perf-events style counters for one compute unit."""

    signature: WorkloadSignature

    cycles: int = 0
    instructions: int = 0
    flops: int = 0
    llc_references: int = 0
    llc_misses: int = 0
    dram_bytes: int = 0

    def charge(self, busy_core_seconds: float) -> None:
        """Accumulate counters for ``busy_core_seconds`` of compute."""
        if busy_core_seconds <= 0:
            return
        sig = self.signature
        cycles = busy_core_seconds * CORE_HZ
        instructions = cycles * sig.ipc
        references = instructions / 1000.0 * sig.llc_refs_per_kinst
        misses = references * sig.llc_miss_rate
        self.cycles += int(cycles)
        self.instructions += int(instructions)
        self.flops += int(instructions * sig.flop_fraction)
        self.llc_references += int(references)
        self.llc_misses += int(misses)
        self.dram_bytes += int(misses * sig.bytes_per_miss)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def llc_miss_ratio(self) -> float:
        return self.llc_misses / self.llc_references if self.llc_references else 0.0


@dataclass
class TaskNetCounters:
    """eBPF-style per-cgroup network accounting."""

    signature: WorkloadSignature
    #: Mean packet size used to derive packet counts.
    packet_bytes: float = 1450.0

    tx_bytes: int = 0
    rx_bytes: int = 0
    tx_packets: int = 0
    rx_packets: int = 0

    def charge(self, busy_core_seconds: float) -> None:
        if busy_core_seconds <= 0:
            return
        tx = self.signature.net_tx_per_core_s * busy_core_seconds
        rx = self.signature.net_rx_per_core_s * busy_core_seconds
        self.tx_bytes += int(tx)
        self.rx_bytes += int(rx)
        self.tx_packets += int(tx / self.packet_bytes)
        self.rx_packets += int(rx / self.packet_bytes)


@dataclass
class TaskTelemetry:
    """Bundle attached to every task by the node simulation."""

    perf: TaskPerfCounters
    net: TaskNetCounters

    @classmethod
    def for_task(cls, uuid: str, *, network_heavy: bool = False) -> "TaskTelemetry":
        signature = WorkloadSignature.from_uuid(uuid, network_heavy=network_heavy)
        return cls(perf=TaskPerfCounters(signature), net=TaskNetCounters(signature))
