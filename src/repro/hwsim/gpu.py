"""GPU accelerator simulation (NVIDIA DCGM / AMD SMI telemetry).

CEEMS does not talk to GPUs itself — it relies on the NVIDIA DCGM
exporter or the AMD SMI exporter running alongside it (paper §II.B.a)
and on a workload→GPU-index map it collects from the resource manager
(§II.A.d).  This module provides the device model those exporters
read: utilisation, memory occupancy, power and total energy per
device, for the GPU generations deployed on Jean-Zay (V100, A100,
H100) plus an AMD Instinct profile so the AMD SMI path is exercised.

Power model: idle floor plus a dynamic term that scales with SM/CU
utilisation, lightly super-linear (tensor-heavy kernels push HBM and
VRs harder), capped at the board power limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SimulationError


@dataclass(frozen=True)
class GPUProfile:
    """Static characteristics of one GPU SKU."""

    model: str
    vendor: str  # "nvidia" | "amd"
    memory_bytes: int
    idle_w: float
    max_w: float
    beta: float = 1.15  # super-linearity of power vs utilisation

    def power(self, util: float) -> float:
        util = min(max(util, 0.0), 1.0)
        return min(self.idle_w + (self.max_w - self.idle_w) * util**self.beta, self.max_w)


GPU_PROFILES: dict[str, GPUProfile] = {
    "V100": GPUProfile("Tesla V100-SXM2-32GB", "nvidia", 32 * 1024**3, idle_w=40.0, max_w=300.0),
    "A100": GPUProfile("NVIDIA A100-SXM4-80GB", "nvidia", 80 * 1024**3, idle_w=55.0, max_w=400.0),
    "H100": GPUProfile("NVIDIA H100 80GB HBM3", "nvidia", 80 * 1024**3, idle_w=70.0, max_w=700.0),
    "MI250": GPUProfile("AMD Instinct MI250X", "amd", 128 * 1024**3, idle_w=90.0, max_w=560.0),
}


@dataclass
class GPUDevice:
    """One GPU device on a node.

    The node simulation sets the activity (``sm_util``, ``mem_used``)
    from the task bound to the device and calls :meth:`advance` every
    integration step; the DCGM / AMD SMI exporters read the public
    telemetry fields.
    """

    index: int
    profile: GPUProfile
    uuid: str = ""

    sm_util: float = 0.0
    mem_used_bytes: int = 0
    #: µJ energy counter, as DCGM's DCGM_FI_DEV_TOTAL_ENERGY_CONSUMPTION
    #: exposes (in mJ there; we keep µJ and convert on export).
    energy_uj: float = field(default=0.0, repr=False)
    power_w: float = 0.0

    def __post_init__(self) -> None:
        if not self.uuid:
            prefix = "GPU" if self.profile.vendor == "nvidia" else "AMD"
            self.uuid = f"{prefix}-{self.profile.model.split()[0]}-{self.index:08x}"

    def set_activity(self, sm_util: float, mem_used_bytes: int) -> None:
        if mem_used_bytes < 0 or mem_used_bytes > self.profile.memory_bytes:
            raise SimulationError(
                f"GPU {self.uuid}: mem_used {mem_used_bytes} outside [0, {self.profile.memory_bytes}]"
            )
        self.sm_util = min(max(sm_util, 0.0), 1.0)
        self.mem_used_bytes = mem_used_bytes

    def idle(self) -> None:
        self.set_activity(0.0, 0)

    def advance(self, dt: float) -> float:
        """Integrate energy over ``dt`` seconds; returns watts drawn."""
        self.power_w = self.profile.power(self.sm_util)
        self.energy_uj += self.power_w * dt * 1e6
        return self.power_w

    @property
    def mem_util(self) -> float:
        return self.mem_used_bytes / self.profile.memory_bytes

    @property
    def energy_mj(self) -> int:
        """Total energy in millijoules (DCGM exposition unit)."""
        return int(self.energy_uj / 1e3)
