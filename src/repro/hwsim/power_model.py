"""Ground-truth node power model.

Converts instantaneous workload activity into per-component power.
This is the *physical reality* of the simulation; RAPL, IPMI and GPU
telemetry all measure (imperfectly) what this model produces, and the
CEEMS estimation rules are evaluated against it.

The model follows the standard affine server power decomposition used
across the DC energy literature (Dayarathna et al., ref. [24] of the
paper):

* CPU package power: ``idle + (max - idle) * util^alpha`` per socket,
  with ``alpha`` slightly below 1 to capture the sub-linear frequency/
  voltage response of real parts.
* DRAM power: ``idle + slope * bandwidth_proxy`` where the proxy is a
  blend of resident-set fraction and CPU activity (memory traffic
  correlates with both footprint and compute intensity).
* GPU power: per-device, delegated to the device model.
* "Other" (VRMs, fans, NIC, board): a constant platform floor plus a
  small activity-dependent term; this is the part RAPL cannot see but
  IPMI can, which is exactly why the paper's Eq. (1) redistributes
  IPMI power using RAPL ratios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CPUPowerParams:
    """Per-socket CPU power curve parameters (watts)."""

    idle_w: float = 35.0
    max_w: float = 180.0
    alpha: float = 0.85

    def power(self, util: float) -> float:
        """Package power at a given utilisation in [0, 1]."""
        util = min(max(util, 0.0), 1.0)
        return self.idle_w + (self.max_w - self.idle_w) * util**self.alpha


@dataclass(frozen=True)
class DRAMPowerParams:
    """Per-socket DRAM power curve parameters (watts)."""

    idle_w: float = 8.0
    max_w: float = 40.0

    def power(self, activity: float) -> float:
        """DRAM power at a memory-activity level in [0, 1]."""
        activity = min(max(activity, 0.0), 1.0)
        return self.idle_w + (self.max_w - self.idle_w) * activity


@dataclass(frozen=True)
class PlatformPowerParams:
    """Non-RAPL node components: fans, VRM losses, NIC, board."""

    floor_w: float = 60.0
    #: Extra platform power at full node activity (fan speed-up, VRM
    #: losses grow with load).
    activity_w: float = 25.0

    def power(self, activity: float) -> float:
        activity = min(max(activity, 0.0), 1.0)
        return self.floor_w + self.activity_w * activity


@dataclass
class PowerCapState:
    """One package's RAPL power cap with first-order settle dynamics.

    Real RAPL enforcement is a running-average PID: after a limit
    write the package draw converges to the cap over a few seconds
    rather than stepping instantly.  The model reproduces that shape:

    * tightening the cap moves the *enforced* ceiling exponentially
      from the current draw toward the target with time constant
      ``settle_seconds``;
    * relaxing or clearing the cap releases instantly (a ceiling that
      rises cannot throttle anything on the way up).

    ``limit_w == 0`` means unconstrained.  ``enforced_w`` is the
    ceiling the silicon applies *right now* — :class:`SimulatedNode`
    clamps each socket's package power to it every integration step.
    """

    settle_seconds: float = 5.0
    limit_w: float = 0.0
    enforced_w: float = math.inf

    def advance(self, dt: float, from_w: float) -> float:
        """Advance the enforcement dynamics by ``dt`` seconds.

        ``from_w`` seeds the ceiling when a cap first engages: the
        running average starts from the draw the package had before
        the write, which is what makes the settle time observable.
        """
        target = self.limit_w if self.limit_w > 0 else math.inf
        if math.isinf(target) or target >= self.enforced_w:
            self.enforced_w = target
            return self.enforced_w
        if math.isinf(self.enforced_w):
            self.enforced_w = max(from_w, target)
        decay = math.exp(-dt / self.settle_seconds) if self.settle_seconds > 0 else 0.0
        self.enforced_w = target + (self.enforced_w - target) * decay
        if self.enforced_w - target < 0.25:
            self.enforced_w = target
        return self.enforced_w

    def clamp(self, power_w: float) -> float:
        return min(power_w, self.enforced_w)

    @property
    def capped(self) -> bool:
        return self.limit_w > 0


@dataclass(frozen=True)
class PowerBreakdown:
    """Instantaneous per-component node power, in watts.

    ``total`` is the wall power an external watt-meter would read;
    IPMI-DCMI reads either ``total`` or ``total - gpu`` depending on
    the server class (both exist on Jean-Zay, paper §III.A).
    """

    cpu_w: float
    dram_w: float
    gpu_w: float
    platform_w: float

    @property
    def total_w(self) -> float:
        return self.cpu_w + self.dram_w + self.gpu_w + self.platform_w

    @property
    def rapl_visible_w(self) -> float:
        """Power visible to RAPL (package + dram domains)."""
        return self.cpu_w + self.dram_w


@dataclass(frozen=True)
class NodePowerModel:
    """Complete ground-truth power model for one node.

    Parameters are per-socket for CPU/DRAM; ``sockets`` scales them.
    GPU power is computed by the caller per device and passed in, so
    the same model serves CPU-only and GPU nodes.
    """

    sockets: int = 2
    cpu: CPUPowerParams = CPUPowerParams()
    dram: DRAMPowerParams = DRAMPowerParams()
    platform: PlatformPowerParams = PlatformPowerParams()

    def evaluate(
        self,
        cpu_util: float,
        mem_activity: float,
        gpu_power_w: float = 0.0,
    ) -> PowerBreakdown:
        """Compute node power at the given activity levels.

        Parameters
        ----------
        cpu_util:
            Node-wide CPU utilisation in [0, 1] (busy cores / cores).
        mem_activity:
            Memory activity proxy in [0, 1].
        gpu_power_w:
            Sum of per-device GPU power, already computed.
        """
        node_activity = min(max(max(cpu_util, 0.6 * (gpu_power_w > 0.0)), 0.0), 1.0)
        return PowerBreakdown(
            cpu_w=self.sockets * self.cpu.power(cpu_util),
            dram_w=self.sockets * self.dram.power(mem_activity),
            gpu_w=gpu_power_w,
            platform_w=self.platform.power(node_activity),
        )


#: Per-socket profiles for the node families used in the Jean-Zay
#: topology.  Values are in the realistic range for the parts named in
#: the paper (Intel Cascade Lake / AMD Milan era, DDR4).
CPU_PROFILES: dict[str, CPUPowerParams] = {
    "intel-cascadelake": CPUPowerParams(idle_w=38.0, max_w=165.0, alpha=0.85),
    "intel-sapphirerapids": CPUPowerParams(idle_w=55.0, max_w=350.0, alpha=0.88),
    "amd-milan": CPUPowerParams(idle_w=45.0, max_w=280.0, alpha=0.82),
    "amd-rome": CPUPowerParams(idle_w=42.0, max_w=225.0, alpha=0.82),
}

DRAM_PROFILES: dict[str, DRAMPowerParams] = {
    "ddr4-192g": DRAMPowerParams(idle_w=9.0, max_w=36.0),
    "ddr4-384g": DRAMPowerParams(idle_w=14.0, max_w=55.0),
    "ddr5-512g": DRAMPowerParams(idle_w=16.0, max_w=60.0),
}
