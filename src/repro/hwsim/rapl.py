"""RAPL (Running Average Power Limit) counter simulation.

Models the Linux *powercap* sysfs interface
(``/sys/class/powercap/intel-rapl:<socket>[:<sub>]/energy_uj``) that
the CEEMS exporter's RAPL collector reads:

* energy is an integer **microjoule** counter,
* each domain wraps at ``max_energy_range_uj`` (a real constraint —
  package counters wrap every few hours under load, and naive
  subtraction goes negative; the exporter must handle this),
* Intel parts expose ``package`` and ``dram`` domains; AMD parts
  expose only ``package`` (paper §III.A: *"on AMD compute nodes, only
  CPU energy counters are reported by RAPL"*),
* counters are available at effectively arbitrary read granularity
  (the paper contrasts this with IPMI's slow sampling).

Energy accumulation is exact: the node simulation integrates the
ground-truth power model into the counters, so the only measurement
artefacts are quantisation to 1 µJ and wraparound.

The interface is also *writable* where the kernel's is: each domain
exposes ``constraint_0_power_limit_uw`` (the ``long_term`` RAPL
constraint), and :meth:`RAPLPackage.write_sysfs` accepts the same
path/value writes a privileged governor daemon performs on real
hardware.  The node simulation enforces written package limits inside
its power model (see :mod:`repro.hwsim.power_model`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SimulationError

#: Default counter range: the common 32-bit-scaled package window
#: (~262 kJ, wraps in ~20 min at 200 W — deliberately small enough
#: that long simulations exercise wraparound handling).
DEFAULT_MAX_ENERGY_RANGE_UJ = 262_143_328_850


@dataclass
class RAPLDomain:
    """One RAPL power domain (``package``, ``dram``, ``psys``…)."""

    name: str
    max_energy_range_uj: int = DEFAULT_MAX_ENERGY_RANGE_UJ
    #: ``constraint_0_power_limit_uw`` — the writable ``long_term``
    #: power limit in microwatts; 0 means unconstrained.
    power_limit_uw: int = 0
    #: Upper bound the hardware accepts for the constraint (µW);
    #: 0 = unknown (writes are then unclamped).
    max_power_uw: int = 0
    #: Exact accumulated energy in microjoules (never wraps; the
    #: counter view wraps).
    _energy_uj_exact: float = field(default=0.0, repr=False)

    def add_energy(self, joules: float) -> None:
        """Integrate ground-truth energy into the counter."""
        if joules < 0:
            raise SimulationError(f"negative energy into RAPL domain {self.name}")
        self._energy_uj_exact += joules * 1e6

    @property
    def energy_uj(self) -> int:
        """The wrapped microjoule counter, as ``energy_uj`` exposes it."""
        return int(self._energy_uj_exact) % self.max_energy_range_uj

    @property
    def total_energy_joules(self) -> float:
        """Ground-truth (unwrapped) energy — test oracle only."""
        return self._energy_uj_exact * 1e-6

    def write_power_limit(self, limit_uw: int) -> int:
        """Write ``constraint_0_power_limit_uw``; returns the value kept.

        Like the kernel, negative writes are rejected and writes above
        the constraint maximum are clamped to it.  0 clears the cap.
        """
        if limit_uw < 0:
            raise SimulationError(
                f"negative power limit for RAPL domain {self.name}"
            )
        if self.max_power_uw and limit_uw > self.max_power_uw:
            limit_uw = self.max_power_uw
        self.power_limit_uw = int(limit_uw)
        return self.power_limit_uw

    @staticmethod
    def counter_delta(previous_uj: int, current_uj: int, max_range_uj: int) -> int:
        """Wraparound-correct difference between two counter reads.

        This is the arithmetic the exporter/TSDB ``rate()`` pipeline
        must perform.  Assumes at most one wrap between reads — with
        two or more wraps inside one interval the missing full ranges
        are unrecoverable from the counter alone.  Callers that know
        the elapsed time should use :meth:`counter_delta_checked` to
        detect when that assumption is no longer safe.
        """
        if current_uj >= previous_uj:
            return current_uj - previous_uj
        return current_uj + max_range_uj - previous_uj

    @staticmethod
    def counter_delta_checked(
        previous_uj: int,
        current_uj: int,
        max_range_uj: int,
        elapsed_seconds: float,
        max_plausible_watts: float,
    ) -> tuple[int, bool]:
        """Wrap-correct delta plus a trustworthiness verdict.

        The single-wrap assumption of :meth:`counter_delta` holds only
        while the domain cannot traverse a full counter range between
        reads: ``elapsed * max_plausible_power < max_range``.  Returns
        ``(delta_uj, trustworthy)``; when ``trustworthy`` is False the
        delta may silently be short by one or more full ranges and the
        reader should degrade to an explicit health signal instead of
        publishing a confident number.
        """
        delta = RAPLDomain.counter_delta(previous_uj, current_uj, max_range_uj)
        budget_uj = elapsed_seconds * max_plausible_watts * 1e6
        return delta, budget_uj < max_range_uj


@dataclass
class RAPLPackage:
    """The RAPL domains of one CPU socket.

    ``dram`` is ``None`` on AMD-style parts.
    """

    socket: int
    package: RAPLDomain
    dram: RAPLDomain | None = None

    @classmethod
    def intel(cls, socket: int) -> "RAPLPackage":
        return cls(
            socket=socket,
            package=RAPLDomain(name=f"package-{socket}"),
            dram=RAPLDomain(name=f"dram-{socket}", max_energy_range_uj=65_712_999_613),
        )

    @classmethod
    def amd(cls, socket: int) -> "RAPLPackage":
        return cls(socket=socket, package=RAPLDomain(name=f"package-{socket}"), dram=None)

    @property
    def has_dram(self) -> bool:
        return self.dram is not None

    def domains(self) -> list[RAPLDomain]:
        out = [self.package]
        if self.dram is not None:
            out.append(self.dram)
        return out

    def sysfs_entries(self) -> dict[str, int]:
        """Render the powercap sysfs view of this package.

        Returns a mapping of pseudo-paths to counter values, e.g.::

            intel-rapl:0/energy_uj -> 12345
            intel-rapl:0/max_energy_range_uj -> ...
            intel-rapl:0:0/energy_uj -> ...      (dram sub-domain)
        """
        base = f"intel-rapl:{self.socket}"
        entries = {
            f"{base}/name": self.package.name,
            f"{base}/energy_uj": self.package.energy_uj,
            f"{base}/max_energy_range_uj": self.package.max_energy_range_uj,
            f"{base}/constraint_0_name": "long_term",
            f"{base}/constraint_0_power_limit_uw": self.package.power_limit_uw,
            f"{base}/constraint_0_max_power_uw": self.package.max_power_uw,
        }
        if self.dram is not None:
            sub = f"{base}:0"
            entries.update(
                {
                    f"{sub}/name": self.dram.name,
                    f"{sub}/energy_uj": self.dram.energy_uj,
                    f"{sub}/max_energy_range_uj": self.dram.max_energy_range_uj,
                    f"{sub}/constraint_0_name": "long_term",
                    f"{sub}/constraint_0_power_limit_uw": self.dram.power_limit_uw,
                    f"{sub}/constraint_0_max_power_uw": self.dram.max_power_uw,
                }
            )
        return entries

    def write_sysfs(self, path: str, value: int) -> int:
        """Write one powercap sysfs file (governor actuation path).

        Only the ``constraint_0_power_limit_uw`` files are writable,
        exactly as for an unprivileged-file write on real hardware.
        Returns the value the "kernel" kept (clamped to the constraint
        maximum).
        """
        base = f"intel-rapl:{self.socket}"
        if path == f"{base}/constraint_0_power_limit_uw":
            return self.package.write_power_limit(value)
        if self.dram is not None and path == f"{base}:0/constraint_0_power_limit_uw":
            return self.dram.write_power_limit(value)
        raise SimulationError(f"powercap file {path!r} is not writable")
