"""RAPL (Running Average Power Limit) counter simulation.

Models the Linux *powercap* sysfs interface
(``/sys/class/powercap/intel-rapl:<socket>[:<sub>]/energy_uj``) that
the CEEMS exporter's RAPL collector reads:

* energy is an integer **microjoule** counter,
* each domain wraps at ``max_energy_range_uj`` (a real constraint —
  package counters wrap every few hours under load, and naive
  subtraction goes negative; the exporter must handle this),
* Intel parts expose ``package`` and ``dram`` domains; AMD parts
  expose only ``package`` (paper §III.A: *"on AMD compute nodes, only
  CPU energy counters are reported by RAPL"*),
* counters are available at effectively arbitrary read granularity
  (the paper contrasts this with IPMI's slow sampling).

Energy accumulation is exact: the node simulation integrates the
ground-truth power model into the counters, so the only measurement
artefacts are quantisation to 1 µJ and wraparound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SimulationError

#: Default counter range: the common 32-bit-scaled package window
#: (~262 kJ, wraps in ~20 min at 200 W — deliberately small enough
#: that long simulations exercise wraparound handling).
DEFAULT_MAX_ENERGY_RANGE_UJ = 262_143_328_850


@dataclass
class RAPLDomain:
    """One RAPL power domain (``package``, ``dram``, ``psys``…)."""

    name: str
    max_energy_range_uj: int = DEFAULT_MAX_ENERGY_RANGE_UJ
    #: Exact accumulated energy in microjoules (never wraps; the
    #: counter view wraps).
    _energy_uj_exact: float = field(default=0.0, repr=False)

    def add_energy(self, joules: float) -> None:
        """Integrate ground-truth energy into the counter."""
        if joules < 0:
            raise SimulationError(f"negative energy into RAPL domain {self.name}")
        self._energy_uj_exact += joules * 1e6

    @property
    def energy_uj(self) -> int:
        """The wrapped microjoule counter, as ``energy_uj`` exposes it."""
        return int(self._energy_uj_exact) % self.max_energy_range_uj

    @property
    def total_energy_joules(self) -> float:
        """Ground-truth (unwrapped) energy — test oracle only."""
        return self._energy_uj_exact * 1e-6

    @staticmethod
    def counter_delta(previous_uj: int, current_uj: int, max_range_uj: int) -> int:
        """Wraparound-correct difference between two counter reads.

        This is the arithmetic the exporter/TSDB ``rate()`` pipeline
        must perform.  Assumes at most one wrap between reads.
        """
        if current_uj >= previous_uj:
            return current_uj - previous_uj
        return current_uj + max_range_uj - previous_uj


@dataclass
class RAPLPackage:
    """The RAPL domains of one CPU socket.

    ``dram`` is ``None`` on AMD-style parts.
    """

    socket: int
    package: RAPLDomain
    dram: RAPLDomain | None = None

    @classmethod
    def intel(cls, socket: int) -> "RAPLPackage":
        return cls(
            socket=socket,
            package=RAPLDomain(name=f"package-{socket}"),
            dram=RAPLDomain(name=f"dram-{socket}", max_energy_range_uj=65_712_999_613),
        )

    @classmethod
    def amd(cls, socket: int) -> "RAPLPackage":
        return cls(socket=socket, package=RAPLDomain(name=f"package-{socket}"), dram=None)

    @property
    def has_dram(self) -> bool:
        return self.dram is not None

    def domains(self) -> list[RAPLDomain]:
        out = [self.package]
        if self.dram is not None:
            out.append(self.dram)
        return out

    def sysfs_entries(self) -> dict[str, int]:
        """Render the powercap sysfs view of this package.

        Returns a mapping of pseudo-paths to counter values, e.g.::

            intel-rapl:0/energy_uj -> 12345
            intel-rapl:0/max_energy_range_uj -> ...
            intel-rapl:0:0/energy_uj -> ...      (dram sub-domain)
        """
        base = f"intel-rapl:{self.socket}"
        entries = {
            f"{base}/name": self.package.name,
            f"{base}/energy_uj": self.package.energy_uj,
            f"{base}/max_energy_range_uj": self.package.max_energy_range_uj,
        }
        if self.dram is not None:
            sub = f"{base}:0"
            entries.update(
                {
                    f"{sub}/name": self.dram.name,
                    f"{sub}/energy_uj": self.dram.energy_uj,
                    f"{sub}/max_energy_range_uj": self.dram.max_energy_range_uj,
                }
            )
        return entries
