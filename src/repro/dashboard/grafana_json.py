"""Grafana dashboard JSON generation.

The real CEEMS ships provisioned Grafana dashboards; this module
generates the equivalent dashboard-model JSON for the three Fig. 2
dashboards, wired to the two data sources (the Prometheus one hitting
the CEEMS LB, and the CEEMS API server one).  The output follows the
Grafana dashboard schema (schemaVersion 39): panels with ``gridPos``,
``targets`` carrying PromQL expressions, templating variables for the
cluster/user/job selection, and the time range the figure uses.

The JSON is deterministic (stable panel ids), and every embedded
PromQL expression is validated against this repo's parser at build
time — a dashboard with an unparseable query cannot be generated.
"""

from __future__ import annotations

import json
from typing import Any

from repro.energy.rules_library import EMISSIONS_METRIC, POWER_METRIC
from repro.tsdb.promql.parser import parse_expr

PROMETHEUS_DS = {"type": "prometheus", "uid": "ceems-lb"}
CEEMS_DS = {"type": "ceems-api", "uid": "ceems-api"}

_GRID_W = 24


def _validate_promql(expr: str) -> str:
    """Dashboard queries must parse (with variables substituted)."""
    substituted = expr.replace("$job", "12345").replace("$user", "u").replace(
        "$cluster", "c"
    )
    parse_expr(substituted)
    return expr


def _stat_panel(panel_id: int, title: str, expr_or_field: str, unit: str, x: int, y: int, *, ceems: bool = False) -> dict[str, Any]:
    if ceems:
        target = {"datasource": CEEMS_DS, "field": expr_or_field, "refId": "A"}
    else:
        target = {
            "datasource": PROMETHEUS_DS,
            "expr": _validate_promql(expr_or_field),
            "instant": True,
            "refId": "A",
        }
    return {
        "id": panel_id,
        "type": "stat",
        "title": title,
        "gridPos": {"h": 4, "w": 4, "x": x, "y": y},
        "datasource": CEEMS_DS if ceems else PROMETHEUS_DS,
        "fieldConfig": {"defaults": {"unit": unit}},
        "targets": [target],
    }


def _timeseries_panel(panel_id: int, title: str, exprs: list[tuple[str, str]], unit: str, y: int, h: int = 8, *, exemplar: bool = False) -> dict[str, Any]:
    targets = []
    for i, (legend, expr) in enumerate(exprs):
        target = {
            "datasource": PROMETHEUS_DS,
            "expr": _validate_promql(expr),
            "legendFormat": legend,
            "refId": chr(ord("A") + i),
        }
        if exemplar:
            # Grafana issues a parallel /api/v1/query_exemplars call
            # for this expression and overlays the returned trace
            # references as clickable points.
            target["exemplar"] = True
        targets.append(target)
    return {
        "id": panel_id,
        "type": "timeseries",
        "title": title,
        "gridPos": {"h": h, "w": _GRID_W, "x": 0, "y": y},
        "datasource": PROMETHEUS_DS,
        "fieldConfig": {"defaults": {"unit": unit}},
        "targets": targets,
    }


def _table_panel(panel_id: int, title: str, path: str, columns: list[str], y: int) -> dict[str, Any]:
    return {
        "id": panel_id,
        "type": "table",
        "title": title,
        "gridPos": {"h": 10, "w": _GRID_W, "x": 0, "y": y},
        "datasource": CEEMS_DS,
        "targets": [{"datasource": CEEMS_DS, "path": path, "columns": columns, "refId": "A"}],
    }


def _dashboard(uid: str, title: str, panels: list[dict[str, Any]], variables: list[dict[str, Any]], time_from: str) -> dict[str, Any]:
    return {
        "uid": uid,
        "title": title,
        "schemaVersion": 39,
        "tags": ["ceems", "energy"],
        "timezone": "utc",
        "time": {"from": time_from, "to": "now"},
        "templating": {"list": variables},
        "panels": panels,
    }


def _user_variable() -> dict[str, Any]:
    return {
        "name": "user",
        "type": "constant",
        "label": "User",
        # Grafana sends X-Grafana-User; the variable mirrors it so
        # panel titles can show the identity being displayed.
        "query": "${__user.login}",
    }


def fig2a_dashboard_json() -> dict[str, Any]:
    """Fig. 2a: aggregate usage metrics of a user."""
    panels = [
        _stat_panel(1, "Total jobs", "num_units", "none", 0, 0, ceems=True),
        _stat_panel(2, "CPU hours", "total_cpu_hours", "h", 4, 0, ceems=True),
        _stat_panel(3, "GPU hours", "total_gpu_hours", "h", 8, 0, ceems=True),
        _stat_panel(4, "Total energy", "total_energy_joules", "joule", 12, 0, ceems=True),
        _stat_panel(5, "Emissions", "total_emissions_g", "mass", 16, 0, ceems=True),
        _timeseries_panel(
            6,
            "Power of running jobs",
            [("{{uuid}}", f"sum by (uuid) ({POWER_METRIC})")],
            "watt",
            4,
        ),
        _timeseries_panel(
            7,
            "Emission rate of running jobs",
            [("{{uuid}}", f"sum by (uuid) ({EMISSIONS_METRIC})")],
            "mass",
            12,
        ),
    ]
    return _dashboard("ceems-fig2a", "CEEMS / User overview", panels, [_user_variable()], "now-90d")


def fig2b_dashboard_json() -> dict[str, Any]:
    """Fig. 2b: the user's job list with aggregate metrics."""
    panels = [
        _table_panel(
            1,
            "Jobs",
            "/api/v1/units",
            [
                "uuid",
                "name",
                "project",
                "state",
                "elapsed",
                "cpus",
                "gpus",
                "avg_power_watts",
                "energy_joules",
                "emissions_g",
            ],
            0,
        )
    ]
    return _dashboard("ceems-fig2b", "CEEMS / Job list", panels, [_user_variable()], "now-7d")


def fig2c_dashboard_json() -> dict[str, Any]:
    """Fig. 2c: time-series CPU metrics of one job."""
    job_variable = {
        "name": "job",
        "type": "query",
        "label": "Job",
        "datasource": CEEMS_DS,
        "query": "/api/v1/units?state=running",
    }
    panels = [
        _stat_panel(
            0,
            "Peak power (24h)",
            f'max_over_time((sum by (uuid) ({POWER_METRIC}{{uuid="$job"}}))[24h:5m])',
            "watt",
            0,
            0,
        ),
        _timeseries_panel(
            1,
            "CPU cores used",
            [("cores", 'sum by (uuid) (instance:unit_cpu_rate{uuid="$job"})')],
            "none",
            4,
        ),
        _timeseries_panel(
            2,
            "Power",
            [("watts", f'sum by (uuid) ({POWER_METRIC}{{uuid="$job"}})')],
            "watt",
            12,
        ),
        _timeseries_panel(
            3,
            "Memory",
            [("resident", 'sum by (uuid) (ceems_compute_unit_memory_current_bytes{uuid="$job"})')],
            "bytes",
            20,
        ),
    ]
    return _dashboard("ceems-fig2c", "CEEMS / Job detail", panels, [_user_variable(), job_variable], "now-24h")


def ops_alerting_dashboard_json() -> dict[str, Any]:
    """The meta-monitoring dashboard: alert state, probe status,
    silences and SLO error-budget burn — the operator's view of the
    stack watching itself."""
    panels = [
        _stat_panel(1, "Firing alerts", "sum(ceems_alerts_firing)", "none", 0, 0),
        _stat_panel(2, "Pending alerts", "sum(ceems_alerts_pending)", "none", 4, 0),
        _stat_panel(
            3,
            "Notifications sent",
            'sum(ceems_alert_notifications_total{job="alertmanager"})',
            "none",
            8,
            0,
        ),
        _stat_panel(
            4,
            "Active silences",
            'sum(ceems_am_silences_active{job="alertmanager"})',
            "none",
            12,
            0,
        ),
        _stat_panel(5, "Failed probes", "count(probe_success == 0)", "none", 16, 0),
        _timeseries_panel(
            6,
            "Alert state",
            [("{{alertname}} ({{alertstate}})", "sum by (alertname, alertstate) (ALERTS)")],
            "none",
            4,
        ),
        _timeseries_panel(
            7,
            "Probe success by target",
            [("{{instance}}", "min by (instance) (probe_success)")],
            "none",
            12,
        ),
        _timeseries_panel(
            8,
            "Probe duration",
            [("{{instance}}", "max by (instance) (probe_duration_seconds)")],
            "s",
            20,
        ),
        _timeseries_panel(
            9,
            "SLO error-budget remaining",
            [("{{slo}}", "slo:lb_availability:error_budget_remaining or slo:lb_latency:error_budget_remaining")],
            "percentunit",
            28,
        ),
        _timeseries_panel(
            10,
            "SLO burn rate (fast windows)",
            [
                (
                    "{{slo}} 5m",
                    'slo:lb_availability:error_ratio_rate5m or slo:lb_latency:error_ratio_rate5m',
                )
            ],
            "percentunit",
            36,
        ),
        _timeseries_panel(
            11,
            "LB request latency p99 (click exemplars to open the trace)",
            [
                (
                    "p99",
                    'histogram_quantile(0.99, sum by (le) (rate(ceems_http_request_duration_seconds_bucket{job="ceems-lb"}[5m])))',
                )
            ],
            "s",
            44,
            exemplar=True,
        ),
        _timeseries_panel(
            12,
            "Exemplar & tail-sampler throughput",
            [
                ("exemplars appended", "sum(rate(ceems_exemplars_appended_total[5m]))"),
                ("exemplars dropped", "sum(rate(ceems_exemplars_dropped_total[5m]))"),
                ("spans kept", "sum(rate(ceems_trace_sampler_kept_total[5m]))"),
                ("spans dropped", "sum(rate(ceems_trace_sampler_dropped_total[5m]))"),
            ],
            "none",
            52,
        ),
    ]
    return _dashboard(
        "ceems-ops-alerting",
        "CEEMS / Ops: alerting & probes",
        panels,
        [_user_variable()],
        "now-6h",
    )


def governor_dashboard_json() -> dict[str, Any]:
    """The carbon-aware control plane: intensity, caps, deferrals."""
    panels = [
        _stat_panel(1, "CO2e avoided", "ceems_governor_co2e_avoided_grams_total", "mass", 0, 0),
        _stat_panel(2, "Jobs deferred", "ceems_governor_jobs_deferred_total", "none", 4, 0),
        _stat_panel(3, "Jobs parked now", "ceems_governor_deferred_jobs", "none", 8, 0),
        _stat_panel(4, "Cap writes", "ceems_governor_cap_writes_total", "none", 12, 0),
        _stat_panel(5, "High-carbon window", "ceems_governor_high_carbon", "none", 16, 0),
        _timeseries_panel(
            6,
            "Grid intensity vs governor threshold",
            [
                ("intensity", "ceems_governor_intensity_gco2_kwh"),
                ("threshold", "ceems_governor_intensity_threshold_gco2_kwh"),
            ],
            "none",
            4,
        ),
        _timeseries_panel(
            7,
            "Node power vs written cap",
            [
                ("{{hostname}} power", "sum by (hostname) (ceems_governor_power_watts)"),
                (
                    "{{hostname}} cap",
                    "sum by (hostname) (ceems_governor_cap_limit_watts > 0)",
                ),
            ],
            "watt",
            12,
        ),
        _timeseries_panel(
            8,
            "Accumulated energy rate (aliasing-free)",
            [
                (
                    "{{hostname}}/{{domain}}",
                    "sum by (hostname, domain) (rate(ceems_governor_accumulated_joules_total[5m]))",
                )
            ],
            "watt",
            20,
        ),
        _timeseries_panel(
            9,
            "Accumulator staleness",
            [("{{hostname}}", "max by (hostname) (ceems_governor_accumulator_staleness_seconds)")],
            "s",
            28,
        ),
        _timeseries_panel(
            10,
            "Counter wraps folded",
            [("{{hostname}}", "sum by (hostname) (rate(ceems_governor_wraps_total[30m]))")],
            "none",
            36,
        ),
    ]
    return _dashboard(
        "ceems-governor",
        "CEEMS / Governor: carbon-aware control",
        panels,
        [_user_variable()],
        "now-24h",
    )


def all_dashboards() -> dict[str, dict[str, Any]]:
    """uid -> dashboard JSON for every shipped dashboard."""
    dashboards = [
        fig2a_dashboard_json(),
        fig2b_dashboard_json(),
        fig2c_dashboard_json(),
        ops_alerting_dashboard_json(),
        governor_dashboard_json(),
    ]
    return {d["uid"]: d for d in dashboards}


def datasources_provisioning() -> list[dict[str, Any]]:
    """Grafana datasource provisioning entries.

    The Prometheus datasource carries the exemplar trace-id
    destination: clicking an exemplar point in any panel deep-links to
    the stack's own trace viewer for that trace — the metric→trace hop
    of the drill-down story.
    """
    return [
        {
            "name": "CEEMS LB",
            "type": PROMETHEUS_DS["type"],
            "uid": PROMETHEUS_DS["uid"],
            "url": "http://ceems-lb:9030",
            "jsonData": {
                "exemplarTraceIdDestinations": [
                    {
                        "name": "trace_id",
                        "url": "/debug/traces?trace_id=${__value.raw}",
                    }
                ]
            },
        },
        {
            "name": "CEEMS API",
            "type": CEEMS_DS["type"],
            "uid": CEEMS_DS["uid"],
            "url": "http://ceems-api:9040",
            "jsonData": {},
        },
    ]


def export_provisioning_bundle() -> str:
    """The JSON bundle a Grafana provisioning directory would hold:
    every dashboard keyed by uid, plus the datasource entries under
    the (non-uid) ``datasources`` key."""
    bundle: dict[str, Any] = dict(all_dashboards())
    bundle["datasources"] = datasources_provisioning()
    return json.dumps(bundle, indent=2, sort_keys=True)
