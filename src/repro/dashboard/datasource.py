"""Grafana data sources: Prometheus (via the LB) and the CEEMS API.

Both attach the ``X-Grafana-User`` header to every request, the way
Grafana's ``send_user_header`` option does (paper §II.B.c ref. [19]) —
which is exactly what lets the LB authorize per-user.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.common.errors import AuthError, QueryError
from repro.common.httpx import App, Request

USER_HEADER = "X-Grafana-User"


class PrometheusDataSource:
    """Query-side client for the Prometheus API (usually via the LB)."""

    def __init__(self, app: App, user: str) -> None:
        self.app = app
        self.user = user

    def _get(self, url: str) -> Any:
        response = self.app.handle(
            Request.from_url("GET", url, headers={USER_HEADER: self.user})
        )
        payload = response.decode_json()
        if response.status in (401, 403):
            raise AuthError(payload.get("error", "denied"), status=response.status)
        if not response.ok:
            raise QueryError(payload.get("error", f"HTTP {response.status}"))
        return payload["data"]

    def query(self, promql: str, at: float) -> list[dict[str, Any]]:
        """Instant query → list of ``{"metric": {...}, "value": [t, v]}``."""
        import urllib.parse

        encoded = urllib.parse.quote(promql)
        data = self._get(f"/api/v1/query?query={encoded}&time={at}")
        if data["resultType"] == "scalar":
            return [{"metric": {}, "value": data["result"]}]
        return data["result"]

    def query_range(
        self, promql: str, start: float, end: float, step: float
    ) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Range query → series-key → (timestamps, values) arrays."""
        import urllib.parse

        encoded = urllib.parse.quote(promql)
        data = self._get(
            f"/api/v1/query_range?query={encoded}&start={start}&end={end}&step={step}"
        )
        out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for item in data["result"]:
            key = ",".join(f"{k}={v}" for k, v in sorted(item["metric"].items()))
            ts = np.array([float(t) for t, _v in item["values"]])
            vs = np.array([float(v) for _t, v in item["values"]])
            out[key] = (ts, vs)
        return out


class CEEMSDataSource:
    """Client for the CEEMS API server data source."""

    def __init__(self, app: App, user: str) -> None:
        self.app = app
        self.user = user

    def _get(self, url: str) -> Any:
        response = self.app.handle(
            Request.from_url("GET", url, headers={USER_HEADER: self.user})
        )
        payload = response.decode_json()
        if response.status in (401, 403):
            raise AuthError(payload.get("error", "denied"), status=response.status)
        if not response.ok:
            raise QueryError(payload.get("error", f"HTTP {response.status}"))
        return payload["data"]

    def units(self, **filters: str) -> list[dict[str, Any]]:
        query = "&".join(f"{k}={v}" for k, v in filters.items())
        return self._get(f"/api/v1/units?{query}" if query else "/api/v1/units")

    def unit(self, uuid: str) -> dict[str, Any]:
        return self._get(f"/api/v1/units/{uuid}")

    def my_usage(self, cluster: str | None = None) -> list[dict[str, Any]]:
        suffix = f"?cluster={cluster}" if cluster else ""
        return self._get(f"/api/v1/usage/current{suffix}")

    def global_usage(self, cluster: str | None = None) -> list[dict[str, Any]]:
        suffix = f"?cluster={cluster}" if cluster else ""
        return self._get(f"/api/v1/usage/global{suffix}")
