"""Panel value objects: stat tiles, tables and time-series panels.

Panels are plain data plus a text renderer, so the examples can print
dashboard-shaped output and the tests can assert on panel contents
without a browser.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class StatPanel:
    """A single big-number tile (Fig. 2a style)."""

    title: str
    value: float
    unit: str = ""
    formatted: str = ""

    def render(self) -> str:
        shown = self.formatted if self.formatted else f"{self.value:g} {self.unit}".strip()
        return f"{self.title}: {shown}"


@dataclass
class TablePanel:
    """A rows-and-columns panel (Fig. 2b style)."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, ""]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)


@dataclass
class TimeSeriesPanel:
    """A chart panel (Fig. 2c style): named series over time."""

    title: str
    unit: str = ""
    series: dict[str, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)

    def add_series(self, name: str, ts: np.ndarray, vs: np.ndarray) -> None:
        self.series[name] = (np.asarray(ts), np.asarray(vs))

    def summary(self) -> dict[str, dict[str, float]]:
        """min/mean/max per series — what a chart legend shows."""
        out = {}
        for name, (_ts, vs) in self.series.items():
            if len(vs):
                out[name] = {
                    "min": float(vs.min()),
                    "mean": float(vs.mean()),
                    "max": float(vs.max()),
                    "points": float(len(vs)),
                }
        return out

    def render(self, width: int = 60) -> str:
        """ASCII sparkline rendering, one row per series."""
        blocks = " ▁▂▃▄▅▆▇█"
        lines = [f"{self.title} ({self.unit})" if self.unit else self.title]
        for name, (_ts, vs) in sorted(self.series.items()):
            if len(vs) == 0:
                lines.append(f"  {name}: (no data)")
                continue
            if len(vs) > width:
                # bucket-average down to the display width
                idx = np.linspace(0, len(vs), width + 1).astype(int)
                shown = np.array([vs[a:b].mean() if b > a else vs[min(a, len(vs) - 1)] for a, b in zip(idx[:-1], idx[1:])])
            else:
                shown = vs
            lo, hi = float(shown.min()), float(shown.max())
            span = (hi - lo) or 1.0
            chars = "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in shown)
            lines.append(f"  {name} [{lo:.3g}..{hi:.3g}]: {chars}")
        return "\n".join(lines)
