"""The three Fig. 2 dashboards as data-producing functions.

Each function takes the two data sources (Prometheus-via-LB and the
CEEMS API) plus its parameters and returns fully populated panels.
The E3/E4/E5 benchmarks call these and print the regenerated rows and
series.
"""

from __future__ import annotations

from repro.common.units import format_bytes, format_co2, format_duration, format_energy
from repro.dashboard.datasource import CEEMSDataSource, PrometheusDataSource
from repro.dashboard.panels import StatPanel, TablePanel, TimeSeriesPanel
from repro.energy.rules_library import POWER_METRIC


def fig2a_user_overview(
    ceems: CEEMSDataSource,
    cluster: str | None = None,
) -> list[StatPanel]:
    """Fig. 2a: aggregate usage metrics of the calling user.

    The paper's panel shows average CPU / GPU / memory usage, total
    energy usage and resulting equivalent emissions over the selected
    window (3 months in the figure).
    """
    rows = ceems.my_usage(cluster)
    units = ceems.units(**({"cluster": cluster} if cluster else {}))
    total_energy = sum(r["total_energy_joules"] for r in rows)
    total_emissions = sum(r["total_emissions_g"] for r in rows)
    total_cpu_hours = sum(r["total_cpu_hours"] for r in rows)
    total_gpu_hours = sum(r["total_gpu_hours"] for r in rows)
    num_units = sum(r["num_units"] for r in rows)
    finished = [u for u in units if u["elapsed"] > 0]
    avg_cpu = (
        sum(u["avg_cpu_usage"] / max(u["cpus"], 1) for u in finished) / len(finished)
        if finished
        else 0.0
    )
    avg_mem = (
        sum(u["avg_memory_bytes"] for u in finished) / len(finished) if finished else 0.0
    )
    return [
        StatPanel("Total jobs", float(num_units)),
        StatPanel("Avg CPU usage", avg_cpu * 100.0, "%", formatted=f"{avg_cpu * 100.0:.1f} %"),
        StatPanel("Avg memory", avg_mem, "B", formatted=format_bytes(avg_mem)),
        StatPanel("CPU hours", total_cpu_hours, "h", formatted=f"{total_cpu_hours:.1f} h"),
        StatPanel("GPU hours", total_gpu_hours, "h", formatted=f"{total_gpu_hours:.1f} h"),
        StatPanel("Total energy", total_energy, "J", formatted=format_energy(total_energy)),
        StatPanel("Emissions", total_emissions, "g", formatted=format_co2(total_emissions)),
    ]


def fig2b_job_list(
    ceems: CEEMSDataSource,
    cluster: str | None = None,
    limit: int = 20,
) -> TablePanel:
    """Fig. 2b: the user's SLURM jobs with per-job aggregate metrics."""
    filters = {"limit": str(limit)}
    if cluster:
        filters["cluster"] = cluster
    units = ceems.units(**filters)
    panel = TablePanel(
        title=f"Jobs of {ceems.user}",
        columns=[
            "JobID",
            "Name",
            "Project",
            "State",
            "Elapsed",
            "CPUs",
            "GPUs",
            "AvgPower",
            "Energy",
            "Emissions",
        ],
    )
    for unit in units:
        panel.rows.append(
            [
                unit["uuid"],
                unit["name"][:18],
                unit["project"],
                unit["state"],
                format_duration(unit["elapsed"]),
                str(unit["cpus"]),
                str(unit["gpus"]),
                f"{unit['avg_power_watts']:.0f} W",
                format_energy(unit["energy_joules"]),
                format_co2(unit["emissions_g"]),
            ]
        )
    return panel


def fig2c_job_timeseries(
    prom: PrometheusDataSource,
    uuid: str,
    start: float,
    end: float,
    step: float = 60.0,
) -> TimeSeriesPanel:
    """Fig. 2c: time-series CPU metrics of one job.

    Goes through the LB, so a user asking for someone else's job gets
    a 403 — the access-control behaviour the LB exists to provide.
    """
    panel = TimeSeriesPanel(title=f"Job {uuid} CPU metrics", unit="cores / W")
    cpu = prom.query_range(
        f'sum by (uuid) (instance:unit_cpu_rate{{uuid="{uuid}"}})', start, end, step
    )
    for _key, (ts, vs) in cpu.items():
        panel.add_series("cpu_cores_used", ts, vs)
    power = prom.query_range(
        f'sum by (uuid) ({POWER_METRIC}{{uuid="{uuid}"}})', start, end, step
    )
    for _key, (ts, vs) in power.items():
        panel.add_series("power_watts", ts, vs)
    memory = prom.query_range(
        f'sum by (uuid) (ceems_compute_unit_memory_current_bytes{{uuid="{uuid}"}}) / 2^30',
        start,
        end,
        step,
    )
    for _key, (ts, vs) in memory.items():
        panel.add_series("memory_gib", ts, vs)
    return panel
