"""Grafana-like data sources and the paper's Fig. 2 dashboards.

The paper's Fig. 2 shows three Grafana dashboards built on two data
sources: Prometheus (time-series panels) and the CEEMS API server
(aggregate/stat panels).  Figures are screenshots and cannot be
regenerated literally; what *can* be reproduced — and is, here — is
the data behind each panel:

* :func:`~repro.dashboard.dashboards.fig2a_user_overview` — a user's
  aggregate CPU/GPU/memory usage, total energy and equivalent
  emissions over a window (Fig. 2a);
* :func:`~repro.dashboard.dashboards.fig2b_job_list` — the user's
  SLURM jobs with per-job aggregate metrics (Fig. 2b);
* :func:`~repro.dashboard.dashboards.fig2c_job_timeseries` — the
  time-series CPU metrics of one job (Fig. 2c).

Data sources go through the LB (time series) and the API server
(aggregates) with the ``X-Grafana-User`` header set, so dashboards
exercise the full access-control path, not a backdoor.
"""

from repro.dashboard.datasource import CEEMSDataSource, PrometheusDataSource
from repro.dashboard.dashboards import (
    fig2a_user_overview,
    fig2b_job_list,
    fig2c_job_timeseries,
)
from repro.dashboard.panels import StatPanel, TablePanel, TimeSeriesPanel

__all__ = [
    "PrometheusDataSource",
    "CEEMSDataSource",
    "StatPanel",
    "TablePanel",
    "TimeSeriesPanel",
    "fig2a_user_overview",
    "fig2b_job_list",
    "fig2c_job_timeseries",
]
