"""Topology declarations: node groups and their estimation classes."""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.rules_library import NodeGroup
from repro.hwsim.node import NodeSpec


@dataclass(frozen=True)
class NodeGroupSpec:
    """A homogeneous set of nodes sharing one rule variant.

    ``nodegroup`` must match a :class:`~repro.energy.rules_library.
    NodeGroup` name so the scrape-group label routes these nodes to
    the right Eq. (1) variant.
    """

    nodegroup: str
    count: int
    partition: str
    cpu_model: str = "intel-cascadelake"
    sockets: int = 2
    cores_per_socket: int = 20
    memory_gb: int = 192
    gpus: tuple[str, ...] = ()
    ipmi_includes_gpu: bool = True
    dram_profile: str = "ddr4-192g"

    def node_spec(self, index: int) -> NodeSpec:
        return NodeSpec(
            name=f"{self.nodegroup}-{index:04d}",
            cpu_model=self.cpu_model,
            sockets=self.sockets,
            cores_per_socket=self.cores_per_socket,
            memory_gb=self.memory_gb,
            gpus=self.gpus,
            ipmi_includes_gpu=self.ipmi_includes_gpu,
            dram_profile=self.dram_profile,
        )

    def rule_group(self) -> NodeGroup:
        return NodeGroup(
            name=self.nodegroup,
            has_dram_rapl=self.cpu_model.startswith("intel"),
            has_gpu=bool(self.gpus),
            ipmi_includes_gpu=self.ipmi_includes_gpu,
        )


def small_topology(cpu_nodes: int = 3, gpu_nodes: int = 1) -> list[NodeGroupSpec]:
    """A laptop-sized topology for examples and tests."""
    groups = [
        NodeGroupSpec(
            nodegroup="intel-cpu",
            count=cpu_nodes,
            partition="cpu",
            cores_per_socket=16,
            memory_gb=128,
        )
    ]
    if gpu_nodes:
        groups.append(
            NodeGroupSpec(
                nodegroup="gpu-ipmi-incl",
                count=gpu_nodes,
                partition="gpu",
                cores_per_socket=16,
                memory_gb=256,
                gpus=("A100",) * 4,
                ipmi_includes_gpu=True,
                dram_profile="ddr4-384g",
            )
        )
    return groups
