"""The Jean-Zay topology (paper §III).

The paper describes Jean-Zay as *"a heterogeneous system with
approximately 1400 compute nodes (Intel and AMD) [and] more than 3500
NVIDIA GPUs (V100, A100 and H100) distributed among different
partitions"*, with at least two GPU server classes — one whose
IPMI-DCMI reading includes GPU power and one whose reading does not.

This declaration reproduces those headline numbers at ``scale=1.0``:

====================  =====  ======================  =============
group                 nodes  accelerators            IPMI covers
====================  =====  ======================  =============
intel-cpu               716  —                       whole node
amd-cpu                 264  —                       whole node
gpu-ipmi-incl           280  8 × V100 each (2240)    incl. GPUs
gpu-ipmi-excl           140  8 × A100 each (1120)    excl. GPUs
gpu-h100                 24  8 × H100 each (192)     excl. GPUs
====================  =====  ======================  =============

Totals: 1424 nodes, 3552 GPUs — matching the paper's ">1400 nodes"
and ">3500 GPUs".  ``scale`` shrinks every group proportionally (at
least one node each) so the same topology runs in tests.
"""

from __future__ import annotations

import math

from repro.cluster.topology import NodeGroupSpec
from repro.energy.rules_library import NodeGroup

#: The gpu-h100 group shares the gpu-ipmi-excl estimation rules; its
#: own nodegroup label keeps its scrape group distinct, as on the real
#: system where H100 nodes are a separate partition.
H100_RULE_GROUP = NodeGroup("gpu-h100", has_dram_rapl=True, has_gpu=True, ipmi_includes_gpu=False)


def jean_zay_topology(scale: float = 1.0) -> list[NodeGroupSpec]:
    """The Jean-Zay node groups, scaled by ``scale``."""

    def scaled(n: int) -> int:
        return max(int(math.ceil(n * scale)), 1)

    return [
        NodeGroupSpec(
            nodegroup="intel-cpu",
            count=scaled(716),
            partition="cpu",
            cpu_model="intel-cascadelake",
            cores_per_socket=20,
            memory_gb=192,
        ),
        NodeGroupSpec(
            nodegroup="amd-cpu",
            count=scaled(264),
            partition="cpu",
            cpu_model="amd-milan",
            sockets=2,
            cores_per_socket=32,
            memory_gb=256,
            dram_profile="ddr4-384g",
        ),
        NodeGroupSpec(
            nodegroup="gpu-ipmi-incl",
            count=scaled(280),
            partition="gpu",
            cpu_model="intel-cascadelake",
            cores_per_socket=20,
            memory_gb=384,
            gpus=("V100",) * 8,
            ipmi_includes_gpu=True,
            dram_profile="ddr4-384g",
        ),
        NodeGroupSpec(
            nodegroup="gpu-ipmi-excl",
            count=scaled(140),
            partition="gpu",
            cpu_model="amd-milan",
            sockets=2,
            cores_per_socket=32,
            memory_gb=512,
            gpus=("A100",) * 8,
            ipmi_includes_gpu=False,
            dram_profile="ddr5-512g",
        ),
        NodeGroupSpec(
            nodegroup="gpu-h100",
            count=scaled(24),
            partition="gpu",
            cpu_model="intel-sapphirerapids",
            sockets=2,
            cores_per_socket=24,
            memory_gb=512,
            gpus=("H100",) * 8,
            ipmi_includes_gpu=False,
            dram_profile="ddr5-512g",
        ),
    ]


def topology_stats(groups: list[NodeGroupSpec]) -> dict[str, int]:
    """Headline numbers of a topology (nodes, cores, GPUs)."""
    return {
        "nodes": sum(g.count for g in groups),
        "cores": sum(g.count * g.sockets * g.cores_per_socket for g in groups),
        "gpus": sum(g.count * len(g.gpus) for g in groups),
    }
