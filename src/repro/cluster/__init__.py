"""Deterministic full-stack cluster simulation.

:class:`~repro.cluster.simulation.StackSimulation` assembles the
complete Fig. 1 architecture over a declarative topology: simulated
nodes + CEEMS/DCGM exporters per node, the hot TSDB scraping them,
Eq. (1) recording rules per node group, the Thanos sidecar/compactor,
the API server (SQLite + updater + HTTP API), the load balancer, and
a SLURM cluster with a workload generator — all driven by one
:class:`~repro.common.clock.SimClock`.

:mod:`repro.cluster.jean_zay` provides the Jean-Zay topology from the
paper's §III (≈1400 heterogeneous nodes, >3500 GPUs across four node
classes), with a scale factor so tests can run a miniature and the E7
benchmark the full size.
"""

from repro.cluster.jean_zay import jean_zay_topology
from repro.cluster.simulation import StackSimulation
from repro.cluster.topology import NodeGroupSpec, small_topology

__all__ = ["StackSimulation", "NodeGroupSpec", "small_topology", "jean_zay_topology"]
