"""Full-stack simulation assembly (the paper's Fig. 1, end to end).

One :class:`StackSimulation` wires, in dependency order:

  nodes → exporters (CEEMS + DCGM + emissions) → hot TSDB (scrape
  manager) → recording rules (Eq. 1 per node group) → Thanos
  (sidecar, compactor) → API server (SQLite, updater, HTTP API) →
  load balancer → data sources / dashboards

plus the SLURM resource manager and a workload generator feeding it.
Every periodic activity registers on one :class:`SimClock`, so
``sim.run(hours=…)`` advances the whole deployment deterministically.

Timer cadence defaults follow the deployment the paper describes:
15 s scrapes, 30 s rule evaluation, 15 min API-server updates, 1 h
sidecar uploads, 6 h compaction.  Node physics integrate on the
scrape cadence (``node_step``) — finer steps change nothing the
sensors can see.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

from repro.apiserver.api import APIServer
from repro.apiserver.backup import BackupManager, LitestreamReplicator
from repro.apiserver.cleanup import CardinalityCleaner
from repro.apiserver.db import Database
from repro.apiserver.updater import Updater
from repro.cluster.topology import NodeGroupSpec
from repro.common.clock import SimClock
from repro.common.config import ExporterConfig
from repro.dashboard.datasource import CEEMSDataSource, PrometheusDataSource
from repro.emissions import (
    ElectricityMapsProvider,
    OWIDProvider,
    ProviderRegistry,
    RTEProvider,
)
from repro.emissions.pipeline import EmissionsExporter
from repro.energy.estimator import UnitEnergyEstimator
from repro.energy.rules_library import emissions_rules, rules_for_group
from repro.exporter import CEEMSExporter, DCGMExporter
from repro.hwsim.node import SimulatedNode
from repro.lb.authz import DBAuthorizer
from repro.lb.server import LoadBalancer
from repro.lb.strategies import Backend
from repro.obs import TailSampler, Telemetry
from repro.resourcemgr.slurm import SlurmCluster
from repro.resourcemgr.workload import WorkloadGenerator, WorkloadMix
from repro.thanos import Compactor, FanoutStorage, ObjectStore, Sidecar
from repro.tsdb.http import PromAPI
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.rules import RuleEvaluator
from repro.tsdb.scrape import ScrapeConfig, ScrapeManager, ScrapeTarget
from repro.tsdb.storage import TSDB


@dataclass
class SimulationConfig:
    """Cadences and sizes of the simulated deployment."""

    seed: int = 42
    start_time: float = SimClock.DEFAULT_START
    scrape_interval: float = 15.0
    rule_interval: float = 30.0
    node_step: float = 15.0
    slurm_step: float = 30.0
    update_interval: float = 900.0
    sidecar_interval: float = 3600.0
    compactor_interval: float = 6 * 3600.0
    hot_retention: float = 30 * 86400.0
    cleanup_cutoff: float = 0.0
    n_prom_backends: int = 2
    zone: str = "FR"
    cluster_name: str = "sim-cluster"
    lb_strategy: str = "round-robin"
    admin_users: tuple[str, ...] = ("admin",)
    #: Scrape the stack's own components (LB, Prometheus endpoints,
    #: API server) as ordinary targets of the sim Prometheus.
    meta_monitoring: bool = True
    with_workload: bool = True
    with_emissions_providers: tuple[str, ...] = ("rte", "electricity_maps", "owid")
    collectors: tuple[str, ...] = ("cgroup", "rapl", "ipmi", "node", "gpu_map", "self")
    #: Root directory for the durable storage engine ("" = in-memory).
    #: ``<dir>/hot`` holds the head WAL, ``<dir>/store`` the Thanos
    #: block directories.  Reopening a simulation on a populated
    #: directory replays the WAL, reloads the blocks and resumes
    #: logical time just after the last recovered sample.
    persist_dir: str = ""
    #: WAL fsync policy: "always", "batch" (default) or "never".
    persist_fsync: str = "batch"
    #: Slow-query threshold (ms) for every PromAPI backend; ``<0``
    #: disables the slow-query log, ``0`` records every query.
    slow_query_ms: float = 100.0
    #: JSONL sink for slow-query entries ("" = in-memory ring only).
    query_log: str = ""
    #: Base path for the crash-surviving active-query journals; each
    #: backend gets ``<base>.<name>`` (two backends cannot share one
    #: journal file).
    active_query_journal: str = ""
    max_concurrent_queries: int = 20
    #: Enable the process-wide phase profiler (``/debug/prof``).
    profiling: bool = False
    #: Scrape fetch-phase worker threads (``--scrape-workers``);
    #: <=1 scrapes serially.  Results are identical either way.
    scrape_workers: int = 0
    #: Per-target scrape cache (``--no-scrape-cache`` disables,
    #: forcing the reference parse-everything path).
    scrape_cache: bool = True
    #: Head series layout (``--head-layout``): "columnar" numpy ring
    #: buffers (default) or the "list" reference implementation.
    head_layout: str = "columnar"
    #: Serve persisted store blocks decode-on-demand from mmap'd chunk
    #: files (``--lazy-blocks``) instead of decoding them into memory
    #: at open.  Needs ``persist_dir``.
    lazy_blocks: bool = False
    #: Decoded-chunk LRU capacity in chunks (``--decode-cache-chunks``);
    #: <=0 keeps the default.
    decode_cache_chunks: int = 0
    #: Alerting rule evaluation cadence (``--alert-interval``).
    alert_interval: float = 60.0
    #: Blackbox prober cadence (``--probe-interval``); <=0 disables.
    probe_interval: float = 60.0
    #: JSONL sink for grouped Alertmanager notifications
    #: (``--notify-log``; "" keeps the in-memory log only).
    notify_log: str = ""
    #: Run the alerting control plane (rule evaluator alert groups,
    #: Alertmanager, SLO burn-rate rules).
    with_alerting: bool = True
    #: Run the carbon-aware governor daemon (``--governor``).
    governor: bool = False
    #: Accumulator poll cadence (10 Hz default — fast enough that a
    #: RAPL wrap can never hide between polls).
    governor_poll_interval: float = 0.1
    #: Governor policy-loop cadence (cap writes, carbon window
    #: classification, deferral release, avoided-CO2e accounting).
    governor_interval: float = 60.0
    #: Carbon admission policy (``--carbon-policy``): "" = off,
    #: "threshold" = fixed gCO2e/kWh cut-off, "percentile" = trailing
    #: 24 h percentile of the 15-min intensity curve.
    carbon_policy: str = ""
    #: Cut-off for carbon_policy="threshold" (gCO2e/kWh).
    carbon_threshold: float = 75.0
    #: Percentile for carbon_policy="percentile" (0-100).
    carbon_percentile: float = 75.0
    #: Per-socket package cap during high-carbon windows (W; 0 = defer
    #: only, no capping).
    carbon_cap_w: float = 0.0
    #: Static per-socket package cap, always on (W; 0 = off).
    power_cap_w: float = 0.0
    #: Tail-sampling keep probability for fast, successful spans
    #: (``--trace-sample-rate``); 1.0 keeps everything.  Error and
    #: slow spans are always kept regardless.
    trace_sample_rate: float = 1.0
    #: Spans at least this slow (ms) are always retained by the tail
    #: sampler (``--trace-keep-slow-ms``).
    trace_keep_slow_ms: float = 250.0
    #: Exemplar ring slots per series (``--exemplars-per-series``).
    exemplars_per_series: int = 10
    #: Put the query frontend — range splitting, step-aligned results
    #: cache, request coalescing, worker-pool admission — between the
    #: LB and the PromQL backends (``--frontend``).
    frontend: bool = False
    #: Range-splitting interval in seconds (``--split-interval``).
    split_interval: float = 86400.0
    #: Results-cache budget in MiB (``--results-cache-mb``).
    results_cache_mb: float = 64.0
    #: Live tail kept uncacheable by the results cache (seconds).
    frontend_freshness: float = 600.0
    #: Frontend worker-pool size; queue overflow answers 503.
    frontend_max_inflight: int = 16
    #: Per-tenant cap on frontend worker slots (0 = no per-tenant cap).
    frontend_max_per_tenant: int = 0
    #: How long a frontend request may queue for a worker slot.
    frontend_queue_timeout: float = 5.0
    #: Query guardrails (``--max-query-range`` seconds /
    #: ``--max-query-steps`` / ``--max-query-length`` chars; 0
    #: disables a bound).  Enforced at the frontend *and* the direct
    #: PromAPI paths, answering structured 422s.
    max_query_range: float = 0.0
    max_query_steps: int = 0
    max_query_length: int = 8192

    @classmethod
    def from_stack_config(cls, stack, **overrides) -> "SimulationConfig":
        """Derive simulation cadences from a single-file StackConfig.

        This is the deployment story the paper describes: one YAML
        file configures every component; here it configures the whole
        simulated deployment.
        """
        providers = tuple(stack.emissions.providers)
        base = dict(
            scrape_interval=stack.tsdb.scrape_interval,
            node_step=stack.tsdb.scrape_interval,
            hot_retention=stack.tsdb.retention,
            persist_dir=stack.tsdb.persist_dir,
            update_interval=stack.api_server.update_interval,
            cleanup_cutoff=stack.api_server.cleanup_cutoff,
            lb_strategy=stack.lb.strategy,
            zone=stack.emissions.country,
            with_emissions_providers=providers,
            collectors=tuple(stack.exporter.collectors) + (
                ("self",) if "self" not in stack.exporter.collectors else ()
            ),
        )
        base.update(overrides)
        return cls(**base)


class StackSimulation:
    """The assembled stack.  Public attributes are the components."""

    def __init__(
        self,
        topology: list[NodeGroupSpec],
        config: SimulationConfig | None = None,
        workload: WorkloadMix | None = None,
    ) -> None:
        self.config = cfg = config or SimulationConfig()
        self.topology = topology

        # -- hot TSDB (durable head when persist_dir is set) ------------
        # Built before the clock: a reopened head replays its WAL, and
        # logical time resumes on the next scrape tick after the last
        # recovered sample so re-ingest never appends out of order.
        start_time = cfg.start_time
        if cfg.persist_dir:
            from repro.tsdb.persist import PersistentTSDB

            self.hot_tsdb: TSDB = PersistentTSDB(
                os.path.join(cfg.persist_dir, "hot"),
                retention=cfg.hot_retention,
                name="hot",
                fsync=cfg.persist_fsync,
                head_layout=cfg.head_layout,
            )
            if self.hot_tsdb.max_time is not None:
                resumed = (
                    math.floor(self.hot_tsdb.max_time / cfg.scrape_interval) + 1
                ) * cfg.scrape_interval
                start_time = max(start_time, resumed)
        else:
            self.hot_tsdb = TSDB(
                retention=cfg.hot_retention, name="hot", head_layout=cfg.head_layout
            )
        if cfg.decode_cache_chunks > 0:
            from repro.tsdb.persist.chunkio import configure_decode_cache

            configure_decode_cache(cfg.decode_cache_chunks)
        self.hot_tsdb.telemetry = Telemetry("tsdb-hot")
        self.clock = SimClock(start=start_time)

        # -- nodes + exporters ------------------------------------------
        self.nodes: list[SimulatedNode] = []
        self.exporters: list[CEEMSExporter] = []
        self.gpu_exporters: list[DCGMExporter] = []
        partitions: dict[str, list[SimulatedNode]] = {}
        exporter_targets: list[ScrapeTarget] = []
        seed = cfg.seed
        for group in topology:
            for i in range(group.count):
                seed += 1
                node = SimulatedNode(group.node_spec(i), seed=seed)
                self.nodes.append(node)
                partitions.setdefault(group.partition, []).append(node)
                exporter = CEEMSExporter(
                    node, self.clock, ExporterConfig(collectors=cfg.collectors)
                )
                self.exporters.append(exporter)
                labels = {"hostname": node.spec.name, "nodegroup": group.nodegroup}
                exporter_targets.append(
                    ScrapeTarget(
                        app=exporter.app,
                        instance=f"{node.spec.name}:9010",
                        job="ceems",
                        group_labels=dict(labels),
                    )
                )
                if group.gpus:
                    dcgm = DCGMExporter(node, self.clock)
                    self.gpu_exporters.append(dcgm)
                    exporter_targets.append(
                        ScrapeTarget(
                            app=dcgm.app,
                            instance=f"{node.spec.name}:9400",
                            job="dcgm",
                            group_labels=dict(labels),
                        )
                    )

        # -- emissions ------------------------------------------------------
        self.emission_registry = ProviderRegistry()
        for provider_name in cfg.with_emissions_providers:
            if provider_name == "rte":
                self.emission_registry.register(RTEProvider(seed=cfg.seed))
            elif provider_name == "electricity_maps":
                self.emission_registry.register(ElectricityMapsProvider(seed=cfg.seed))
            elif provider_name == "owid":
                self.emission_registry.register(OWIDProvider(world_fallback=True))
        self.emissions_exporter = EmissionsExporter(
            self.emission_registry, cfg.zone, self.clock
        )
        exporter_targets.append(
            ScrapeTarget(
                app=self.emissions_exporter.app,
                instance="emissions:9020",
                job="emissions",
            )
        )

        # -- hot TSDB + scraping + rules -----------------------------------
        # Cadence-derived query parameters (real Prometheus deployment
        # rules): the instant lookback delta must exceed the scrape
        # interval, and rate() windows must hold >= ~4 samples.
        self.lookback = max(300.0, 2.5 * cfg.scrape_interval)
        from repro.common.units import format_duration

        self.rate_window = format_duration(max(120.0, 4.0 * cfg.scrape_interval))
        self.scrape_manager = ScrapeManager(
            self.hot_tsdb,
            ScrapeConfig(
                interval=cfg.scrape_interval,
                workers=cfg.scrape_workers,
                use_cache=cfg.scrape_cache,
            ),
            telemetry=Telemetry("scrape-manager"),
        )
        self.scrape_manager.add_targets(exporter_targets)
        # The rule evaluator runs recording AND alerting groups on the
        # sim clock; ``rule_manager`` stays as the historical name.
        self.rule_manager = self.rule_evaluator = RuleEvaluator(
            self.hot_tsdb, lookback=self.lookback
        )
        seen_rule_groups = set()
        for group in topology:
            if group.nodegroup in seen_rule_groups:
                continue
            seen_rule_groups.add(group.nodegroup)
            self.rule_manager.add_group(
                rules_for_group(group.rule_group(), cfg.rule_interval, self.rate_window)
            )
        self.rule_manager.add_group(emissions_rules(cfg.rule_interval))

        # -- alerting control plane -------------------------------------------
        self.alertmanager = None
        self.slos = []
        if cfg.with_alerting:
            from repro.obs.alertmanager import Alertmanager, InhibitRule, JSONLReceiver
            from repro.obs.slo import slo_alert_group, slo_recording_group, standard_slos
            from repro.tsdb.alerts import AlertingRuleGroup, ceems_alert_rules

            self.rule_evaluator.add_alert_group(
                AlertingRuleGroup(
                    name="ceems-alerts",
                    interval=cfg.alert_interval,
                    rules=ceems_alert_rules(),
                )
            )
            if cfg.meta_monitoring:
                # SLOs read the self-telemetry request histograms, which
                # only exist when the stack scrapes itself.
                self.slos = standard_slos()
                self.rule_evaluator.add_group(
                    slo_recording_group(self.slos, interval=cfg.rule_interval)
                )
                self.rule_evaluator.add_alert_group(
                    slo_alert_group(self.slos, interval=cfg.alert_interval)
                )
            self.alertmanager = Alertmanager(
                self.clock,
                inhibit_rules=[
                    # a dead target inhibits per-collector noise from
                    # the same instance
                    InhibitRule(
                        source_match={"alertname": "CEEMSTargetDown"},
                        target_match={"alertname": "CEEMSCollectorFailed"},
                        equal=("instance",),
                    )
                ],
            )
            if cfg.notify_log:
                self.alertmanager.receivers["default"] = JSONLReceiver(cfg.notify_log)
            self.rule_evaluator.notifier = self.alertmanager.receive

        # -- Thanos ------------------------------------------------------------
        self.object_store = ObjectStore(
            persist_dir=os.path.join(cfg.persist_dir, "store") if cfg.persist_dir else "",
            lazy_blocks=bool(cfg.lazy_blocks and cfg.persist_dir),
        )
        self.sidecar = Sidecar(self.hot_tsdb, self.object_store)
        self.compactor = Compactor(self.object_store)
        self.fanout = FanoutStorage(self.hot_tsdb, self.object_store)
        self.fanout.telemetry = Telemetry("thanos-query")
        self.engine = PromQLEngine(self.fanout, lookback=self.lookback)

        # -- resource manager + workload -------------------------------------
        self.slurm = SlurmCluster(cfg.cluster_name, partitions)
        self.workload_generator = (
            WorkloadGenerator(workload or WorkloadMix(), seed=cfg.seed)
            if cfg.with_workload
            else None
        )

        # -- carbon-aware governor ---------------------------------------------
        self.governor = None
        if cfg.governor:
            from repro.governor import (
                CarbonPolicy,
                GovernorDaemon,
                StaticCapPolicy,
                governor_alert_rules,
            )

            carbon_policy = None
            if cfg.carbon_policy:
                intensity = lambda t: self.emission_registry.factor(cfg.zone, t).value  # noqa: E731
                if cfg.carbon_policy == "threshold":
                    carbon_policy = CarbonPolicy(
                        intensity,
                        threshold_g_kwh=cfg.carbon_threshold,
                        high_cap_w=cfg.carbon_cap_w,
                    )
                elif cfg.carbon_policy == "percentile":
                    carbon_policy = CarbonPolicy(
                        intensity,
                        percentile=cfg.carbon_percentile,
                        high_cap_w=cfg.carbon_cap_w,
                    )
                else:
                    raise ValueError(f"unknown carbon policy {cfg.carbon_policy!r}")
            cap_policy = StaticCapPolicy(cfg.power_cap_w) if cfg.power_cap_w > 0 else None
            self.governor = GovernorDaemon(
                self.nodes,
                self.clock,
                slurm=self.slurm,
                cap_policy=cap_policy,
                carbon_policy=carbon_policy,
                poll_interval=cfg.governor_poll_interval,
                policy_interval=cfg.governor_interval,
            )
            governor_target = ScrapeTarget(
                app=self.governor.app, instance="governor:9050", job="governor"
            )
            # exporter_targets was already handed to the scrape
            # manager; register the new target with both (the prober
            # walks exporter_targets later).
            exporter_targets.append(governor_target)
            self.scrape_manager.add_targets([governor_target])
            if cfg.with_alerting:
                from repro.tsdb.alerts import AlertingRuleGroup

                self.rule_evaluator.add_alert_group(
                    AlertingRuleGroup(
                        name="governor-alerts",
                        interval=cfg.alert_interval,
                        rules=governor_alert_rules(),
                    )
                )

        # -- API server ----------------------------------------------------------
        self.db = Database(":memory:")
        self.estimator = UnitEnergyEstimator(self.engine, step=cfg.rule_interval)
        self.cleaner = (
            CardinalityCleaner(self.db, [self.hot_tsdb], cfg.cleanup_cutoff)
            if cfg.cleanup_cutoff > 0
            else None
        )
        self.backup_manager = BackupManager(self.db)
        self.litestream = LitestreamReplicator(self.db, segment_interval=cfg.update_interval)
        # API server before the updater: updater passes record spans
        # and stats into the API server's telemetry.
        self.api_server = APIServer(self.db, admin_users=cfg.admin_users)
        self.updater = Updater(
            self.db,
            self.estimator,
            [self.slurm],
            interval=cfg.update_interval,
            cleaner=self.cleaner,
            backup_manager=self.backup_manager,
            telemetry=self.api_server.app.telemetry,
        )

        # -- load balancer -----------------------------------------------------------
        if cfg.profiling:
            from repro.obs import PROFILER

            PROFILER.enabled = True
        if cfg.exemplars_per_series > 0:
            self.hot_tsdb.exemplars.per_series = cfg.exemplars_per_series
        from repro.frontend import QueryLimits

        query_limits = QueryLimits(
            max_query_length=cfg.max_query_length,
            max_range_seconds=cfg.max_query_range,
            max_resolved_steps=cfg.max_query_steps,
        )
        self.prom_apis = [
            PromAPI(
                self.fanout,
                name=f"prom-{i}",
                lookback=self.lookback,
                slow_query_ms=cfg.slow_query_ms,
                query_log_path=cfg.query_log,
                active_query_journal=(
                    f"{cfg.active_query_journal}.prom-{i}"
                    if cfg.active_query_journal
                    else ""
                ),
                max_concurrent_queries=cfg.max_concurrent_queries,
                limits=query_limits,
                rules=self.rule_evaluator,
                alertmanager=self.alertmanager,
                # Exemplars live in the hot TSDB's ring, not the
                # fan-out this endpoint queries samples through.
                exemplars=self.hot_tsdb.exemplars,
            )
            for i in range(cfg.n_prom_backends)
        ]
        for api in self.prom_apis:
            # Scrape-loop totals ride on each Prometheus endpoint's
            # /metrics (each PromAPI has its own registry).
            self.scrape_manager.register_metrics(api.app.telemetry.registry)
            # Alert state (pending/firing gauges) is itself scraped.
            self.rule_evaluator.register_metrics(api.app.telemetry.registry)
            if cfg.persist_dir:
                # WAL fsync/replay counters and block bytes/compression
                # gauges surface wherever Prometheus self-scrapes.
                self.hot_tsdb.register_metrics(api.app.telemetry.registry)
                self.object_store.register_metrics(api.app.telemetry.registry)
        backends = [Backend(name=api.app.name, app=api.app) for api in self.prom_apis]
        self.frontend = None
        if cfg.frontend:
            # The LB dispatches authorized query-path requests into
            # the frontend, which fans sub-queries out over the real
            # PromQL backends; every other path keeps the plain
            # LB-to-backend proxy.
            from repro.frontend import QueryFrontend

            self.frontend = QueryFrontend(
                backends,
                strategy=cfg.lb_strategy,
                split_interval=cfg.split_interval,
                cache_max_bytes=int(cfg.results_cache_mb * 1024 * 1024),
                freshness_seconds=cfg.frontend_freshness,
                clock=self.clock,
                limits=query_limits,
                max_inflight=cfg.frontend_max_inflight,
                max_per_tenant=cfg.frontend_max_per_tenant,
                queue_timeout=cfg.frontend_queue_timeout,
            )
        self.lb = LoadBalancer(
            backends,
            DBAuthorizer(self.db, admin_users=cfg.admin_users),
            strategy=cfg.lb_strategy,
            frontend=self.frontend,
        )

        # -- meta-monitoring ---------------------------------------------------
        # The stack scrapes itself: LB, Prometheus endpoints and the
        # API server become ordinary targets of the sim Prometheus, so
        # one PromQL query answers "what is the p99 LB latency".
        if cfg.meta_monitoring:
            meta_targets = [
                ScrapeTarget(app=self.lb.app, instance="lb:9030", job="ceems-lb"),
                ScrapeTarget(app=self.api_server.app, instance="api:9040", job="ceems-api"),
            ]
            meta_targets.extend(
                ScrapeTarget(app=api.app, instance=f"prom-{i}:9090", job="prometheus")
                for i, api in enumerate(self.prom_apis)
            )
            if self.frontend is not None:
                meta_targets.append(
                    ScrapeTarget(
                        app=self.frontend.app,
                        instance="frontend:9031",
                        job="ceems-frontend",
                    )
                )
            if self.alertmanager is not None:
                meta_targets.append(
                    ScrapeTarget(
                        app=self.alertmanager.app,
                        instance="alertmanager:9093",
                        job="alertmanager",
                    )
                )
            self.scrape_manager.add_targets(meta_targets)

        # -- blackbox probing --------------------------------------------------
        # Synthetic outside-in checks: meta-monitoring proves a
        # component renders telemetry, the prober proves it answers.
        self.prober = None
        if cfg.probe_interval > 0:
            from repro.obs.probe import BlackboxProber, ProbeTarget

            self.prober = BlackboxProber(self.hot_tsdb, interval=cfg.probe_interval)
            self.prober.add_target(
                ProbeTarget(app=self.lb.app, instance="lb:9030", path="/-/ready")
            )
            self.prober.add_target(
                ProbeTarget(app=self.api_server.app, instance="api:9040", path="/-/healthy")
            )
            for i, api in enumerate(self.prom_apis):
                self.prober.add_target(
                    ProbeTarget(app=api.app, instance=f"prom-{i}:9090", path="/-/healthy")
                )
            if self.frontend is not None:
                # /-/healthy proxies through the frontend to a backend,
                # so the probe proves the whole serving path answers.
                self.prober.add_target(
                    ProbeTarget(
                        app=self.frontend.app,
                        instance="frontend:9031",
                        path="/-/healthy",
                    )
                )
            for target in exporter_targets:
                # CEEMS exporters ship a cheap /health; DCGM and the
                # emissions exporter only expose /metrics.
                path = "/health" if target.job == "ceems" else "/metrics"
                self.prober.add_target(
                    ProbeTarget(app=target.app, instance=target.instance, path=path)
                )
            for api in self.prom_apis:
                self.prober.register_metrics(api.app.telemetry.registry)

        # -- tail-based span sampling -------------------------------------
        # One sampler shared by every component's span store: the keep
        # decision hashes the trace id, so a kept trace is retained
        # coherently across the LB, the backend and the storage spans
        # it fanned out to — the property exemplar drill-downs rely on.
        self.tail_sampler = TailSampler(
            rate=cfg.trace_sample_rate, keep_slow_ms=cfg.trace_keep_slow_ms
        )
        for telemetry in self._all_telemetry():
            telemetry.spans.sampler = self.tail_sampler

        self._register_timers()

    def _all_telemetry(self):
        """Every component telemetry whose span store exists today."""
        out = [
            self.hot_tsdb.telemetry,
            self.scrape_manager.telemetry,
            self.fanout.telemetry,
            self.lb.app.telemetry,
            self.api_server.app.telemetry,
        ]
        out.extend(api.app.telemetry for api in self.prom_apis)
        if self.frontend is not None:
            out.append(self.frontend.app.telemetry)
        if self.alertmanager is not None:
            out.append(self.alertmanager.app.telemetry)
        out.extend(e.app.telemetry for e in self.exporters)
        out.extend(e.app.telemetry for e in self.gpu_exporters)
        out.append(self.emissions_exporter.app.telemetry)
        return [t for t in out if t is not None]

    # -- wiring --------------------------------------------------------------
    def _register_timers(self) -> None:
        cfg = self.config
        # Ordering within a tick follows registration order: physics
        # first, then collection, then derivation, then aggregation.
        self.clock.every(cfg.node_step, self._advance_nodes)
        if self.governor is not None:
            # Accumulation right after physics, policy after scheduling.
            self.governor.register_timers(self.clock)
        if self.workload_generator is not None:
            self.workload_generator.register_timer(self.clock, self.slurm)
        self.clock.every(cfg.slurm_step, self.slurm.step)
        self.scrape_manager.register_timer(self.clock)
        self.rule_manager.register_timers(self.clock)
        if self.prober is not None:
            self.prober.register_timer(self.clock)
        if self.alertmanager is not None:
            self.alertmanager.register_timer(self.clock)
        self.sidecar.register_timer(self.clock, cfg.sidecar_interval)
        self.compactor.register_timer(self.clock, cfg.compactor_interval)
        self.updater.register_timer(self.clock)
        self.litestream.register_timer(self.clock)

    def _advance_nodes(self, now: float) -> None:
        dt = self.config.node_step
        for node in self.nodes:
            node.advance(now, dt)

    # -- driving ----------------------------------------------------------------
    def run(self, seconds: float) -> None:
        """Advance the whole deployment by ``seconds`` of logical time."""
        self.clock.advance(seconds)

    @property
    def now(self) -> float:
        return self.clock.now()

    # -- access -------------------------------------------------------------------
    def prometheus_datasource(self, user: str) -> PrometheusDataSource:
        """A Grafana-style Prometheus data source going through the LB."""
        return PrometheusDataSource(self.lb.app, user)

    def ceems_datasource(self, user: str) -> CEEMSDataSource:
        return CEEMSDataSource(self.api_server.app, user)

    def stats(self) -> dict[str, float]:
        """Headline deployment statistics (for examples and benches)."""
        out = {
            "nodes": len(self.nodes),
            "gpus": sum(len(n.gpus) for n in self.nodes),
            "tsdb_series": self.hot_tsdb.num_series,
            "tsdb_samples": self.hot_tsdb.num_samples,
            "jobs_submitted": self.slurm.jobs_submitted,
            "jobs_completed": self.slurm.jobs_completed,
            "jobs_running": self.slurm.running_count,
            "units_in_db": self.db.count_units(),
            "thanos_blocks": len(self.object_store.blocks),
        }
        if self.governor is not None:
            out.update(
                governor_polls=float(self.governor.polls_total),
                governor_cap_writes=float(self.governor.cap_writes_total),
                jobs_deferred=float(self.governor.jobs_deferred_total),
                jobs_released=float(self.governor.jobs_released_total),
                co2e_avoided_g=self.governor.co2e_avoided_g,
            )
        return out
