"""Unix-domain socket transport for the governor line protocol.

The daemon's protocol logic lives in
:meth:`~repro.governor.daemon.GovernorDaemon.handle_line`; this module
is only the wire.  One accept loop, one thread per connection, one
newline-terminated request per line, one ``OK …`` / ``ERR …`` response
line back — the shape of every small privileged-daemon socket API
(``rapl-daemon``, ``thermald``…), so a client is ``nc -U`` or four
lines of Python.

The server is intentionally independent of the sim clock: it serves
wall-clock clients (the ``serve`` CLI, tests) against whatever the
simulation state currently is.
"""

from __future__ import annotations

import os
import socket
import threading


class GovernorSocketServer:
    """Threaded AF_UNIX server over a ``handle_line`` callable."""

    def __init__(self, handler, path: str, *, backlog: int = 8) -> None:
        self.handler = handler
        self.path = path
        if os.path.exists(path):
            os.unlink(path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(path)
        self._sock.listen(backlog)
        self._closing = False
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # socket closed
            thread = threading.Thread(target=self._serve, args=(conn,), daemon=True)
            thread.start()
            self._threads.append(thread)

    def _serve(self, conn: socket.socket) -> None:
        try:
            with conn, conn.makefile("rwb") as stream:
                for raw in stream:
                    line = raw.decode("utf-8", errors="replace")
                    if not line.strip():
                        continue
                    response = self.handler(line)
                    stream.write((response + "\n").encode("utf-8"))
                    stream.flush()
        except (OSError, ValueError):
            pass  # client went away mid-request

    def close(self) -> None:
        self._closing = True
        try:
            self._sock.close()
        finally:
            if os.path.exists(self.path):
                os.unlink(self.path)
        for thread in self._threads:
            thread.join(timeout=1.0)


def request(path: str, line: str, *, timeout: float = 5.0) -> str:
    """One-shot client: send ``line``, return the response line."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(path)
        sock.sendall((line.rstrip("\n") + "\n").encode("utf-8"))
        with sock.makefile("rb") as stream:
            return stream.readline().decode("utf-8").rstrip("\n")
