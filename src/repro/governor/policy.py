"""Governor policy algebra: cap policies and carbon admission.

Two policy families compose inside the daemon:

* **cap policies** decide a per-socket package power limit (watts;
  0 = uncapped) each policy step — :class:`StaticCapPolicy` pins a
  constant limit, :class:`BudgetCapPolicy` tracks a rolling energy
  budget and engages a cap while the node runs ahead of it;
* the **carbon policy** classifies each step as high- or low-carbon
  from the RTE 15-minute intensity curve (fixed threshold or a
  trailing-24 h percentile) and tells the daemon to defer deferrable
  job admissions — and optionally cap nodes — until the window clears.

Policies are pure decision functions over (accumulator state, time);
all actuation (sysfs writes, queue surgery) stays in the daemon, so
each policy is unit-testable without a cluster.
"""

from __future__ import annotations

import math
from typing import Callable, Protocol

from repro.governor.accumulator import NodeAccumulator

# The decision enum lives with the scheduler seam it controls; the
# governor re-exports it so policy code imports one module.
from repro.resourcemgr.slurm import AdmissionDecision

__all__ = [
    "AdmissionDecision",
    "BudgetCapPolicy",
    "CapPolicy",
    "CarbonPolicy",
    "StaticCapPolicy",
]


class CapPolicy(Protocol):
    """Decides each node's per-socket package cap (W; 0 = uncapped)."""

    def desired_cap_w(self, acc: NodeAccumulator, now: float) -> float: ...


class StaticCapPolicy:
    """A fixed per-socket package limit, always on."""

    def __init__(self, cap_w: float) -> None:
        if cap_w < 0:
            raise ValueError("static cap must be >= 0")
        self.cap_w = float(cap_w)

    def desired_cap_w(self, acc: NodeAccumulator, now: float) -> float:
        return self.cap_w


class BudgetCapPolicy:
    """Cap while a node runs ahead of a rolling energy budget.

    The budget is expressed as a target average RAPL-visible power
    (``target_w``, whole node).  Each step the policy compares the
    accumulated energy against ``target_w × elapsed``: while actual
    consumption leads the allowance the package cap engages at
    ``target_w / sockets`` per socket (scaled by ``tighten_factor`` to
    claw the overshoot back); once consumption falls back under the
    allowance the cap clears.  Deterministic, memoryless beyond the
    accumulator itself.
    """

    def __init__(self, target_w: float, *, tighten_factor: float = 0.9) -> None:
        if target_w <= 0:
            raise ValueError("budget target power must be positive")
        if not 0.0 < tighten_factor <= 1.0:
            raise ValueError("tighten_factor must be in (0, 1]")
        self.target_w = float(target_w)
        self.tighten_factor = float(tighten_factor)
        self._started_at: dict[int, float] = {}
        self._baseline_j: dict[int, float] = {}

    def desired_cap_w(self, acc: NodeAccumulator, now: float) -> float:
        key = id(acc)
        if key not in self._started_at:
            self._started_at[key] = now
            self._baseline_j[key] = acc.joules
            return 0.0
        elapsed = now - self._started_at[key]
        if elapsed <= 0:
            return 0.0
        spent_j = acc.joules - self._baseline_j[key]
        allowance_j = self.target_w * elapsed
        if spent_j <= allowance_j:
            return 0.0
        sockets = max(acc.node.spec.sockets, 1)
        return self.target_w * self.tighten_factor / sockets


class CarbonPolicy:
    """High/low-carbon window classification on the intensity curve.

    ``intensity`` is a callable ``now -> gCO2e/kWh`` (the daemon wires
    the emission-provider registry in).  Exactly one of:

    * ``threshold_g_kwh`` — fixed cut-off, or
    * ``percentile`` — the threshold is that percentile of the
      trailing 24 h of 15-minute intensity samples, recomputed each
      query; with a deterministic provider curve this is itself a
      pure function of time.

    ``defer`` gates admission deferral; ``high_cap_w`` (per socket,
    0 = off) additionally caps node packages during high-carbon
    windows so even non-deferrable load emits less.
    """

    WINDOW = 900.0  # the RTE publication grid
    LOOKBACK = 24 * 3600.0

    def __init__(
        self,
        intensity: Callable[[float], float],
        *,
        threshold_g_kwh: float | None = None,
        percentile: float | None = None,
        defer: bool = True,
        high_cap_w: float = 0.0,
    ) -> None:
        if (threshold_g_kwh is None) == (percentile is None):
            raise ValueError("set exactly one of threshold_g_kwh / percentile")
        if percentile is not None and not 0.0 < percentile < 100.0:
            raise ValueError("percentile must be in (0, 100)")
        if high_cap_w < 0:
            raise ValueError("high_cap_w must be >= 0")
        self.intensity = intensity
        self.threshold_g_kwh = threshold_g_kwh
        self.percentile = percentile
        self.defer = defer
        self.high_cap_w = float(high_cap_w)

    def current_threshold(self, now: float) -> float:
        if self.threshold_g_kwh is not None:
            return self.threshold_g_kwh
        samples = sorted(
            self.intensity(t)
            for t in self._grid(now - self.LOOKBACK, now)
        )
        # Nearest-rank percentile over the trailing window.
        rank = max(
            0, min(len(samples) - 1, math.ceil(self.percentile / 100.0 * len(samples)) - 1)
        )
        return samples[rank]

    def _grid(self, start: float, end: float) -> list[float]:
        first = math.floor(start / self.WINDOW) * self.WINDOW
        out = []
        t = first
        while t <= end:
            out.append(t)
            t += self.WINDOW
        return out

    def is_high(self, now: float) -> bool:
        return self.intensity(now) > self.current_threshold(now)
