"""The governor daemon: accumulate, decide, actuate, report.

One daemon serves a whole deployment (mirroring the emissions
exporter: control decisions are site-wide).  Per node it owns a
:class:`~repro.governor.accumulator.NodeAccumulator` polled at high
rate on the sim clock; per policy step it

* evaluates the cap policies and writes per-socket package limits
  through the powercap sysfs write interface
  (``constraint_0_power_limit_uw``) — the same actuation path a
  privileged daemon uses on real hardware;
* classifies the carbon window and, via the SLURM admission hook,
  defers deferrable jobs while intensity is high, releasing them when
  the window clears;
* accounts **avoided emissions**: for every job it deferred, each
  step adds ``ΔE_unit × (I_defer − I_now)`` using its *own*
  allocation-ratio attribution (never the simulation oracle), clamped
  at zero so the counter stays monotonic.

The daemon is scraped like every other component (``job="governor"``):
its ``App`` exposes ``/metrics`` with the ``ceems_governor_*`` family
set, plus ``/-/healthy``.  The Unix-socket line protocol lives in
:meth:`GovernorDaemon.handle_line` (transport in
:mod:`repro.governor.socket`).
"""

from __future__ import annotations

import time

from repro.common.httpx import App, Request, Response
from repro.common.units import JOULES_PER_KWH
from repro.governor.accumulator import NodeAccumulator
from repro.governor.policy import AdmissionDecision, CapPolicy, CarbonPolicy
from repro.hwsim.node import SimulatedNode


class GovernorDaemon:
    """Site-wide energy/carbon governor over simulated nodes."""

    #: Tolerated overshoot before a cap counts as violated (RAPL is a
    #: running average; small excursions are normal).
    CAP_VIOLATION_FACTOR = 1.05

    def __init__(
        self,
        nodes: list[SimulatedNode],
        clock,
        *,
        slurm=None,
        cap_policy: CapPolicy | None = None,
        carbon_policy: CarbonPolicy | None = None,
        poll_interval: float = 0.1,
        policy_interval: float = 60.0,
        accumulator_window: float = 60.0,
        name: str = "ceems-governor",
    ) -> None:
        if poll_interval <= 0 or policy_interval <= 0:
            raise ValueError("governor intervals must be positive")
        self.clock = clock
        self.slurm = slurm
        self.cap_policy = cap_policy
        self.carbon_policy = carbon_policy
        self.poll_interval = poll_interval
        self.policy_interval = policy_interval

        self.accumulators: dict[str, NodeAccumulator] = {}
        for node in nodes:
            acc = NodeAccumulator(node, window_seconds=accumulator_window)
            self.accumulators[node.spec.name] = acc
            # The exporter's RAPL collector switches to aliasing-free
            # accumulator reads once this attribute is set.
            node.governor_accumulator = acc

        # -- control state ------------------------------------------------
        self.polls_total = 0
        self.poll_cpu_seconds = 0.0
        self.cap_writes_total = 0
        self.jobs_deferred_total = 0
        self.jobs_released_total = 0
        self.co2e_avoided_g = 0.0
        self.policy_steps = 0
        #: node name -> per-socket cap currently written (W, 0 = none).
        self._written_w: dict[str, float] = {name: 0.0 for name in self.accumulators}
        #: node name -> policy step index of the last cap change (the
        #: violation check skips one step of settle grace after it).
        self._cap_changed_step: dict[str, int] = {}
        self._violations: dict[str, float] = {}
        #: uuid -> intensity (g/kWh) at first deferral.
        self._defer_intensity: dict[str, float] = {}
        #: uuid -> (I_defer, attributed joules already accounted).
        self._tracked: dict[str, tuple[float, float]] = {}
        self.high_carbon = (
            carbon_policy.is_high(clock.now()) if carbon_policy is not None else False
        )

        if slurm is not None and carbon_policy is not None and carbon_policy.defer:
            slurm.admission_hook = self._admission

        # -- scrape surface -----------------------------------------------
        self.app = App(name)
        self.app.expose_telemetry()
        self._register_metrics(self.app.telemetry.registry)
        self.app.router.get("/-/healthy", lambda req: Response.text("ok"))
        #: socket command -> request count (line-protocol telemetry).
        self._socket_requests = self.app.telemetry.registry.counter(
            "ceems_governor_socket_requests_total",
            help="Line-protocol requests served, by command.",
        )

    # -- timers ------------------------------------------------------------
    def register_timers(self, clock) -> None:
        clock.every(self.poll_interval, self.poll)
        clock.every(self.policy_interval, self.policy_step)

    # -- high-rate accumulation --------------------------------------------
    def poll(self, now: float) -> None:
        started = time.perf_counter()
        for acc in self.accumulators.values():
            acc.poll(now)
        self.polls_total += 1
        self.poll_cpu_seconds += time.perf_counter() - started

    # -- the policy loop ---------------------------------------------------
    def policy_step(self, now: float) -> None:
        self.policy_steps += 1
        was_high = self.high_carbon
        if self.carbon_policy is not None:
            self.high_carbon = self.carbon_policy.is_high(now)
        self._apply_caps(now)
        self._check_violations()
        if was_high and not self.high_carbon:
            self._release(now)
        self._account_avoided(now)

    def _desired_cap_w(self, acc: NodeAccumulator, now: float) -> float:
        """Effective per-socket cap: tightest of the active policies."""
        candidates = []
        if self.cap_policy is not None:
            candidates.append(self.cap_policy.desired_cap_w(acc, now))
        if (
            self.carbon_policy is not None
            and self.high_carbon
            and self.carbon_policy.high_cap_w > 0
        ):
            candidates.append(self.carbon_policy.high_cap_w)
        positive = [c for c in candidates if c > 0]
        return min(positive) if positive else 0.0

    def _apply_caps(self, now: float) -> None:
        for name, acc in self.accumulators.items():
            cap_w = self._desired_cap_w(acc, now)
            if abs(cap_w - self._written_w[name]) < 1e-9:
                continue
            for pkg in acc.node.rapl:
                pkg.write_sysfs(
                    f"intel-rapl:{pkg.socket}/constraint_0_power_limit_uw",
                    int(cap_w * 1e6),
                )
                self.cap_writes_total += 1
            self._written_w[name] = cap_w
            self._cap_changed_step[name] = self.policy_steps

    def _check_violations(self) -> None:
        """Flag nodes whose package power exceeds their settled cap."""
        for name, acc in self.accumulators.items():
            cap_w = self._written_w[name]
            # One full policy interval of settle grace after any change.
            settled = self.policy_steps > self._cap_changed_step.get(name, 0)
            if cap_w <= 0 or not settled:
                self._violations[name] = 0.0
                continue
            package_w = sum(
                d.power_w() for d in acc.domains if d.domain == "package"
            )
            limit_w = cap_w * acc.node.spec.sockets
            self._violations[name] = (
                1.0 if package_w > self.CAP_VIOLATION_FACTOR * limit_w else 0.0
            )

    # -- carbon admission --------------------------------------------------
    def _admission(self, uuid: str, spec, now: float) -> AdmissionDecision:
        """SLURM admission hook: defer deferrable jobs in high windows."""
        if (
            self.high_carbon
            and self.carbon_policy is not None
            and getattr(spec, "deferrable", False)
        ):
            if uuid not in self._defer_intensity:
                self._defer_intensity[uuid] = self.carbon_policy.intensity(now)
                self.jobs_deferred_total += 1
            return AdmissionDecision.DEFER
        return AdmissionDecision.ADMIT

    def _release(self, now: float) -> None:
        if self.slurm is None:
            return
        released = self.slurm.release_deferred(now)
        self.jobs_released_total += len(released)
        for uuid in released:
            i_defer = self._defer_intensity.pop(uuid, None)
            if i_defer is not None:
                self._tracked[uuid] = (i_defer, self._unit_joules(uuid))

    def _unit_joules(self, uuid: str) -> float:
        return sum(acc.unit_joules(uuid) for acc in self.accumulators.values())

    def _account_avoided(self, now: float) -> None:
        """Convert deferred-then-released energy into avoided grams.

        Each released job's energy (the daemon's own allocation-ratio
        attribution) accrues at ``I_defer − I_now`` grams per kWh; the
        clamp keeps the counter monotonic if intensity later rises
        above the deferral level.
        """
        if self.carbon_policy is None or not self._tracked:
            return
        i_now = self.carbon_policy.intensity(now)
        for uuid, (i_defer, seen_j) in list(self._tracked.items()):
            cur_j = self._unit_joules(uuid)
            delta_j = cur_j - seen_j
            if delta_j <= 0:
                continue
            self.co2e_avoided_g += max(delta_j * (i_defer - i_now), 0.0) / JOULES_PER_KWH
            self._tracked[uuid] = (i_defer, cur_j)

    # -- line protocol ------------------------------------------------------
    def handle_line(self, line: str) -> str:
        """One request of the Unix-socket line protocol.

        Commands (whitespace-separated, response ``OK …`` / ``ERR …``):

        ``PING`` · ``NODES`` · ``ENERGY <node>`` · ``POWER <node>`` ·
        ``UNITS <node>`` · ``UNIT <node> <uuid>`` ·
        ``CAP <node> <watts>`` · ``STATS``
        """
        parts = line.strip().split()
        if not parts:
            return "ERR empty request"
        cmd = parts[0].upper()
        self._socket_requests.inc(command=cmd)
        if cmd == "PING":
            return "OK pong"
        if cmd == "NODES":
            return "OK " + " ".join(sorted(self.accumulators))
        if cmd == "STATS":
            return (
                f"OK polls={self.polls_total} wraps={sum(a.wraps for a in self.accumulators.values())} "
                f"cap_writes={self.cap_writes_total} deferred={self.jobs_deferred_total} "
                f"released={self.jobs_released_total} avoided_g={self.co2e_avoided_g:.3f}"
            )
        if cmd in ("ENERGY", "POWER", "UNITS") and len(parts) == 2:
            acc = self.accumulators.get(parts[1])
            if acc is None:
                return f"ERR no node {parts[1]}"
            if cmd == "ENERGY":
                return f"OK {acc.joules:.6f}"
            if cmd == "POWER":
                return f"OK {acc.power_w():.3f}"
            return "OK " + " ".join(sorted(acc.unit_uj))
        if cmd == "UNIT" and len(parts) == 3:
            acc = self.accumulators.get(parts[1])
            if acc is None:
                return f"ERR no node {parts[1]}"
            return f"OK {acc.unit_joules(parts[2]):.6f} {acc.allocation_ratio(parts[2]):.4f}"
        if cmd == "CAP" and len(parts) == 3:
            acc = self.accumulators.get(parts[1])
            if acc is None:
                return f"ERR no node {parts[1]}"
            try:
                cap_w = float(parts[2])
            except ValueError:
                return f"ERR bad watts {parts[2]!r}"
            if cap_w < 0:
                return "ERR cap must be >= 0"
            written = 0
            for pkg in acc.node.rapl:
                written = pkg.write_sysfs(
                    f"intel-rapl:{pkg.socket}/constraint_0_power_limit_uw",
                    int(cap_w * 1e6),
                )
                self.cap_writes_total += 1
            self._written_w[acc.node.spec.name] = written / 1e6
            self._cap_changed_step[acc.node.spec.name] = self.policy_steps
            return f"OK {written / 1e6:.3f}"
        return f"ERR unknown command {line.strip()!r}"

    # -- metrics ------------------------------------------------------------
    def _register_metrics(self, registry) -> None:
        registry.gauge_func(
            "ceems_governor_polls_total",
            lambda: float(self.polls_total),
            help="High-rate accumulator poll passes.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_governor_cap_writes_total",
            lambda: float(self.cap_writes_total),
            help="powercap sysfs limit writes issued.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_governor_jobs_deferred_total",
            lambda: float(self.jobs_deferred_total),
            help="Jobs deferred by the carbon admission policy.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_governor_jobs_released_total",
            lambda: float(self.jobs_released_total),
            help="Deferred jobs released into low-carbon windows.",
            type="counter",
        )
        registry.gauge_func(
            "ceems_governor_co2e_avoided_grams_total",
            lambda: self.co2e_avoided_g,
            help="Estimated emissions avoided by deferral (g CO2e).",
            type="counter",
        )
        registry.gauge_func(
            "ceems_governor_deferred_jobs",
            lambda: float(
                self.slurm.deferred_count if self.slurm is not None else 0
            ),
            help="Jobs currently parked by the admission policy.",
        )
        registry.gauge_func(
            "ceems_governor_high_carbon",
            lambda: 1.0 if self.high_carbon else 0.0,
            help="1 while the current window is classified high-carbon.",
        )
        registry.gauge_func(
            "ceems_governor_intensity_gco2_kwh",
            lambda: (
                self.carbon_policy.intensity(self.clock.now())
                if self.carbon_policy is not None
                else 0.0
            ),
            help="Grid intensity the governor is acting on.",
        )
        registry.gauge_func(
            "ceems_governor_intensity_threshold_gco2_kwh",
            lambda: (
                self.carbon_policy.current_threshold(self.clock.now())
                if self.carbon_policy is not None
                else 0.0
            ),
            help="Intensity above which windows classify high-carbon.",
        )
        registry.collector(self._collect_node_families)

    def _collect_node_families(self):
        from repro.tsdb.exposition import MetricFamily

        now = self.clock.now()
        energy = MetricFamily(
            "ceems_governor_accumulated_joules_total",
            help="Aliasing-free accumulated RAPL energy per domain.",
            type="counter",
        )
        wraps = MetricFamily(
            "ceems_governor_wraps_total",
            help="Counter wraps folded by the accumulator.",
            type="counter",
        )
        power = MetricFamily(
            "ceems_governor_power_watts",
            help="Windowed RAPL-visible node power.",
            type="gauge",
        )
        cap = MetricFamily(
            "ceems_governor_cap_limit_watts",
            help="Per-socket package cap currently written (0 = uncapped).",
            type="gauge",
        )
        stale = MetricFamily(
            "ceems_governor_accumulator_staleness_seconds",
            help="Seconds since the accumulator last polled the node.",
            type="gauge",
        )
        violation = MetricFamily(
            "ceems_governor_cap_violation",
            help="1 while settled package power exceeds the written cap.",
            type="gauge",
        )
        for name, acc in self.accumulators.items():
            for d in acc.domains:
                energy.add(d.joules, hostname=name, domain=d.domain, socket=str(d.socket))
            wraps.add(float(acc.wraps), hostname=name)
            power.add(acc.power_w(), hostname=name)
            cap.add(self._written_w[name], hostname=name)
            staleness = acc.staleness(now)
            stale.add(staleness if staleness != float("inf") else 1e9, hostname=name)
            violation.add(self._violations.get(name, 0.0), hostname=name)
        return [energy, wraps, power, cap, stale, violation]
