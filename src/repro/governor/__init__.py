"""Carbon-aware control plane (the actuation layer CEEMS lacks).

CEEMS observes energy and emissions; this package *acts* on them.
Three cooperating pieces:

* :mod:`repro.governor.accumulator` — a 10 Hz RAPL poller per node
  folding the wrapped ``energy_uj`` counters into monotonic joule
  accumulators, with per-compute-unit attribution by allocation
  ratio.  The exporter's RAPL collector reads aliasing-free energy
  from it instead of the raw wrapped counters.
* :mod:`repro.governor.policy` — cap policies (static, budget) and
  the carbon admission policy driven by the RTE 15-minute intensity
  curve.
* :mod:`repro.governor.daemon` — the governor daemon: owns the
  accumulators, runs the policy loop, writes power caps through the
  powercap sysfs interface, defers/releases deferrable SLURM jobs,
  answers the Unix-socket line protocol and exposes
  ``ceems_governor_*`` metrics as an ordinary scrape target.
"""

from repro.governor.accumulator import DomainAccumulator, NodeAccumulator
from repro.governor.daemon import GovernorDaemon
from repro.governor.policy import (
    AdmissionDecision,
    BudgetCapPolicy,
    CarbonPolicy,
    StaticCapPolicy,
)
from repro.governor.rules import governor_alert_rules
from repro.governor.socket import GovernorSocketServer

__all__ = [
    "AdmissionDecision",
    "BudgetCapPolicy",
    "CarbonPolicy",
    "DomainAccumulator",
    "GovernorDaemon",
    "GovernorSocketServer",
    "NodeAccumulator",
    "StaticCapPolicy",
    "governor_alert_rules",
]
