"""Alerting rules for the governor control plane.

Two operator-facing failure modes:

* **stale accumulator** — the poll loop stopped (daemon wedged, node
  unreachable); every aliasing-free reading downstream is now a lie,
  so this must page before the data does damage;
* **cap violation** — a node's settled package power exceeds the
  written limit, i.e. the actuation path is broken (firmware rejected
  the write, wrong domain, silicon not enforcing).

Both read ``ceems_governor_*`` series scraped from the daemon, so the
rules work in any Prometheus — the sim one or a real deployment.
"""

from __future__ import annotations

from repro.tsdb.alerts import AlertingRule


def governor_alert_rules() -> list[AlertingRule]:
    return [
        AlertingRule(
            name="GovernorAccumulatorStale",
            expr="ceems_governor_accumulator_staleness_seconds > 30",
            hold=60.0,
            labels={"severity": "critical", "component": "governor"},
            annotations={
                "summary": "governor accumulator stopped polling {{hostname}}",
                "description": "High-rate RAPL accumulation is stale; "
                "aliasing-free energy readings can no longer be trusted.",
            },
        ),
        AlertingRule(
            name="GovernorCapViolation",
            expr="ceems_governor_cap_violation > 0",
            hold=120.0,
            labels={"severity": "warning", "component": "governor"},
            annotations={
                "summary": "package power above the written cap on {{hostname}}",
                "description": "Settled package draw exceeds the powercap "
                "limit by more than 5%; the actuation path is not enforcing.",
            },
        ),
    ]
