"""High-rate RAPL accumulation: wrapped counters → monotonic joules.

A 15 s Prometheus scrape of ``energy_uj`` aliases: with the default
262 kJ package range a ~200 W socket wraps every ~20 minutes, and the
TSDB's counter-reset heuristic (``current < previous`` → treat
``current`` as the delta) silently loses ``max_range - previous``
microjoules at every wrap.  Steinke et al. (PAPERS.md) make the same
point for microgrid control: decisions need telemetry sampled fast
enough that a wrap can never hide inside one interval.

:class:`DomainAccumulator` closes the gap by polling at high rate
(10 Hz on the sim clock) and folding each reading modularly:

    ``delta = (current - previous) mod max_range``

which is *exact* while at most one wrap occurs between polls — at
10 Hz that would require a >2.6 GW package.  Totals telescope, so the
accumulated energy equals the ground-truth counter to within the 1 µJ
quantisation of the last read.

:class:`NodeAccumulator` aggregates a node's domains and attributes
package+DRAM energy to running compute units by **allocation ratio**
(unit's allocated cores / node cores) — the attribution the exporter's
RAPL collector serves per cgroup when a governor is attached.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.hwsim.node import SimulatedNode
from repro.hwsim.rapl import RAPLDomain


@dataclass
class DomainAccumulator:
    """Monotonic accumulator over one wrapped RAPL domain counter."""

    domain: str  #: "package" or "dram"
    path: str  #: powercap pseudo-path, e.g. "intel-rapl:0"
    socket: int
    max_range_uj: int
    #: Power-estimate window; must exceed the node physics step (the
    #: counters move stepwise, so shorter windows read 0 W between
    #: steps and a burst at each one).
    window_seconds: float = 60.0
    total_uj: int = 0
    wraps: int = 0
    last_raw_uj: int | None = None
    last_poll_at: float | None = None
    _window: deque = field(default_factory=deque, repr=False)

    def observe(self, now: float, raw_uj: int) -> int:
        """Fold one counter reading; returns the delta in µJ."""
        if self.last_raw_uj is None:
            delta = 0
        else:
            delta = RAPLDomain.counter_delta(self.last_raw_uj, raw_uj, self.max_range_uj)
            if raw_uj < self.last_raw_uj:
                self.wraps += 1
        self.last_raw_uj = raw_uj
        self.last_poll_at = now
        self.total_uj += delta
        self._window.append((now, self.total_uj))
        horizon = now - self.window_seconds
        while len(self._window) > 1 and self._window[0][0] < horizon:
            self._window.popleft()
        return delta

    @property
    def joules(self) -> float:
        return self.total_uj / 1e6

    def power_w(self) -> float:
        """Mean power over the sliding window, watts."""
        if len(self._window) < 2:
            return 0.0
        (t0, e0), (t1, e1) = self._window[0], self._window[-1]
        if t1 <= t0:
            return 0.0
        return (e1 - e0) / 1e6 / (t1 - t0)

    def staleness(self, now: float) -> float:
        """Seconds since the last poll (``inf`` before the first)."""
        if self.last_poll_at is None:
            return float("inf")
        return max(now - self.last_poll_at, 0.0)


class NodeAccumulator:
    """All RAPL domains of one node, plus per-unit attribution.

    Reads the same wrapped integer view of the counters a daemon would
    read from the ``energy_uj`` sysfs files; the exact float
    accumulator inside the simulation is never consulted (it is the
    test oracle, not an input).
    """

    def __init__(self, node: SimulatedNode, *, window_seconds: float = 60.0) -> None:
        self.node = node
        self.domains: list[DomainAccumulator] = []
        for pkg in node.rapl:
            self.domains.append(
                DomainAccumulator(
                    domain="package",
                    path=f"intel-rapl:{pkg.socket}",
                    socket=pkg.socket,
                    max_range_uj=pkg.package.max_energy_range_uj,
                    window_seconds=window_seconds,
                )
            )
            if pkg.dram is not None:
                self.domains.append(
                    DomainAccumulator(
                        domain="dram",
                        path=f"intel-rapl:{pkg.socket}:0",
                        socket=pkg.socket,
                        max_range_uj=pkg.dram.max_energy_range_uj,
                        window_seconds=window_seconds,
                    )
                )
        #: (hardware domain, its accumulator), flattened for the poll
        #: loop — at 10 Hz the iteration itself is on the cost budget.
        self._pairs = []
        it = iter(self.domains)
        for pkg in node.rapl:
            self._pairs.append((pkg.package, next(it)))
            if pkg.dram is not None:
                self._pairs.append((pkg.dram, next(it)))
        #: Change-detection stamps, aligned with ``_pairs``.  The raw
        #: attribute is compared (not its value used): unchanged stamp
        #: ⟺ unchanged ``energy_uj``, and the plain attribute read
        #: keeps the 10 Hz hot path off the wrapped-view arithmetic.
        self._last_stamp = [float("nan")] * len(self._pairs)
        #: uuid -> attributed µJ (allocation-ratio share of RAPL energy).
        self.unit_uj: dict[str, float] = {}
        self.polls = 0

    # -- polling -----------------------------------------------------------
    def poll(self, now: float) -> None:
        """One high-rate pass over every domain counter.

        An unchanged counter takes the cheap path: refresh the
        staleness stamp, skip the fold and window bookkeeping.  This
        is what keeps a 10 Hz daemon well under the data plane's cost
        — most polls land between energy updates.
        """
        self.polls += 1
        rapl_delta_uj = 0
        stamps = self._last_stamp
        for i, (domain, acc) in enumerate(self._pairs):
            stamp = domain._energy_uj_exact
            if stamp == stamps[i]:
                acc.last_poll_at = now
                continue
            stamps[i] = stamp
            rapl_delta_uj += acc.observe(now, domain.energy_uj)
        if rapl_delta_uj and self.node.tasks:
            ncores = self.node.spec.ncores
            for task in self.node.tasks.values():
                ratio = len(task.cores) / ncores
                self.unit_uj[task.uuid] = (
                    self.unit_uj.get(task.uuid, 0.0) + rapl_delta_uj * ratio
                )

    # -- reads -------------------------------------------------------------
    @property
    def joules(self) -> float:
        """Aliasing-free accumulated RAPL energy, all domains."""
        return sum(acc.joules for acc in self.domains)

    @property
    def wraps(self) -> int:
        return sum(acc.wraps for acc in self.domains)

    def power_w(self) -> float:
        """Windowed RAPL-visible node power, watts."""
        return sum(acc.power_w() for acc in self.domains)

    def domain_joules(self, domain: str, socket: int) -> float:
        for acc in self.domains:
            if acc.domain == domain and acc.socket == socket:
                return acc.joules
        return 0.0

    def unit_joules(self, uuid: str) -> float:
        """Allocation-ratio attributed energy for one compute unit."""
        return self.unit_uj.get(uuid, 0.0) / 1e6

    def staleness(self, now: float) -> float:
        return max(acc.staleness(now) for acc in self.domains)

    def allocation_ratio(self, uuid: str) -> float:
        task = self.node.tasks.get(uuid)
        if task is None:
            return 0.0
        return len(task.cores) / self.node.spec.ncores
