"""Query-side energy/usage aggregation over the recorded series.

The API server needs, per compute unit and update window: total
energy, total emissions, average CPU utilisation, average/peak memory
and GPU utilisation.  This module turns PromQL range queries over the
recorded Eq. (1) series into those aggregates.

Batch-first design: one range query returns every unit's power series
at once and integration is vectorized per series (trapezoid), so the
15-minute updater pass over thousands of live units is a handful of
queries, not thousands — the property the Jean-Zay bench (E7) leans
on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.energy.rules_library import EMISSIONS_METRIC, POWER_METRIC
from repro.tsdb.promql.engine import PromQLEngine, RangeResult


@dataclass
class UnitUsage:
    """Aggregates for one compute unit over one window."""

    uuid: str
    energy_joules: float = 0.0
    emissions_g: float = 0.0
    avg_power_watts: float = 0.0
    avg_cpu_usage: float = 0.0  # busy cores (not a fraction)
    avg_memory_bytes: float = 0.0
    peak_memory_bytes: float = 0.0
    avg_gpu_power_watts: float = 0.0
    samples: int = field(default=0, repr=False)


def _integrate(ts: np.ndarray, vs: np.ndarray) -> float:
    """Trapezoidal integral of a rate series (→ its cumulative total)."""
    if len(ts) < 2:
        return 0.0
    return float(np.trapezoid(vs, ts))


def _per_uuid(result: RangeResult) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for labels, (ts, vs) in result.series.items():
        uuid = labels.get("uuid")
        if uuid:
            out[uuid] = (ts, vs)
    return out


class UnitEnergyEstimator:
    """Batch aggregator over the recorded per-unit series."""

    def __init__(self, engine: PromQLEngine, step: float = 60.0) -> None:
        self.engine = engine
        self.step = step

    # -- batch queries -------------------------------------------------
    def usage_window(self, start: float, end: float) -> dict[str, UnitUsage]:
        """Aggregates for every unit with samples in ``[start, end]``.

        Multi-node units are handled by the ``sum by (uuid)`` in each
        query — per-host series collapse into one series per unit.
        """
        if end <= start:
            return {}
        step = min(self.step, max((end - start) / 4, 1.0))
        power = _per_uuid(
            self.engine.query_range(f"sum by (uuid) ({POWER_METRIC})", start, end, step)
        )
        emissions = _per_uuid(
            self.engine.query_range(f"sum by (uuid) ({EMISSIONS_METRIC})", start, end, step)
        )
        cpu = _per_uuid(
            self.engine.query_range("sum by (uuid) (instance:unit_cpu_rate)", start, end, step)
        )
        memory = _per_uuid(
            self.engine.query_range(
                "sum by (uuid) (ceems_compute_unit_memory_current_bytes)", start, end, step
            )
        )
        gpu = _per_uuid(
            self.engine.query_range("sum by (uuid) (instance:unit_gpu_watts)", start, end, step)
        )

        out: dict[str, UnitUsage] = {}
        for uuid, (ts, vs) in power.items():
            usage = UnitUsage(uuid=uuid)
            usage.energy_joules = _integrate(ts, vs)
            usage.avg_power_watts = float(vs.mean()) if len(vs) else 0.0
            usage.samples = len(vs)
            out[uuid] = usage
        for uuid, (ts, vs) in emissions.items():
            out.setdefault(uuid, UnitUsage(uuid=uuid)).emissions_g = _integrate(ts, vs)
        for uuid, (ts, vs) in cpu.items():
            out.setdefault(uuid, UnitUsage(uuid=uuid)).avg_cpu_usage = float(vs.mean())
        for uuid, (ts, vs) in memory.items():
            usage = out.setdefault(uuid, UnitUsage(uuid=uuid))
            usage.avg_memory_bytes = float(vs.mean())
            usage.peak_memory_bytes = float(vs.max())
        for uuid, (ts, vs) in gpu.items():
            out.setdefault(uuid, UnitUsage(uuid=uuid)).avg_gpu_power_watts = float(vs.mean())
        return out

    # -- single-unit conveniences (dashboards / tests) --------------------
    def unit_power_series(self, uuid: str, start: float, end: float) -> tuple[np.ndarray, np.ndarray]:
        result = self.engine.query_range(
            f'sum by (uuid) ({POWER_METRIC}{{uuid="{uuid}"}})', start, end, self.step
        )
        for _labels, (ts, vs) in result.series.items():
            return ts, vs
        return np.array([]), np.array([])

    def unit_energy_joules(self, uuid: str, start: float, end: float) -> float:
        ts, vs = self.unit_power_series(uuid, start, end)
        return _integrate(ts, vs)

    def unit_emissions_g(self, uuid: str, start: float, end: float) -> float:
        result = self.engine.query_range(
            f'sum by (uuid) ({EMISSIONS_METRIC}{{uuid="{uuid}"}})', start, end, self.step
        )
        for _labels, (ts, vs) in result.series.items():
            return _integrate(ts, vs)
        return 0.0
