"""Export the rule library as Prometheus rules files.

The paper points users at *"example recording rules for different
cases … in the etc/prometheus folder of CEEMS GitHub repository"*.
This module produces that artifact from the same
:class:`~repro.tsdb.rules.RuleGroup` objects the simulation evaluates,
so the shipped YAML can never drift from the executed rules.  The
output follows the Prometheus rules-file schema::

    groups:
      - name: ceems-power-intel-cpu
        interval: 30s
        rules:
          - record: instance:ipmi_watts
            expr: sum by (hostname, nodegroup) (...)

Alerting rules export the same way with ``alert``/``for`` keys.
"""

from __future__ import annotations

from repro.common import yamlite
from repro.common.units import format_duration
from repro.tsdb.alerts import AlertingRule
from repro.tsdb.rules import RuleGroup


def rule_group_to_dict(group: RuleGroup) -> dict:
    rules = []
    for rule in group.rules:
        entry: dict = {"record": rule.record, "expr": rule.expr}
        if rule.labels:
            entry["labels"] = dict(rule.labels)
        rules.append(entry)
    return {
        "name": group.name,
        "interval": format_duration(group.interval),
        "rules": rules,
    }


def alerting_rules_to_dict(name: str, rules: list[AlertingRule], interval: float = 60.0) -> dict:
    entries = []
    for rule in rules:
        entry: dict = {"alert": rule.name, "expr": rule.expr}
        if rule.hold:
            entry["for"] = format_duration(rule.hold)
        if rule.labels:
            entry["labels"] = dict(rule.labels)
        if rule.annotations:
            entry["annotations"] = dict(rule.annotations)
        entries.append(entry)
    return {"name": name, "interval": format_duration(interval), "rules": entries}


def rules_file(groups: list[RuleGroup], alert_groups: list[dict] | None = None) -> str:
    """Render a complete Prometheus rules file."""
    document = {"groups": [rule_group_to_dict(g) for g in groups] + (alert_groups or [])}
    return yamlite.dumps(document) + "\n"


def parse_rules_file(text: str) -> list[RuleGroup]:
    """Load recording-rule groups back from a rules file.

    Round-trips :func:`rules_file` output; operators can therefore
    maintain their site rules as YAML and load them into the engine.
    Alerting entries (``alert:`` instead of ``record:``) are skipped
    here — they are loaded by the alert manager.
    """
    from repro.common.units import parse_duration
    from repro.tsdb.rules import RecordingRule

    raw = yamlite.loads(text)
    groups: list[RuleGroup] = []
    for group_raw in (raw or {}).get("groups", []):
        rules = []
        for rule_raw in group_raw.get("rules", []):
            if "record" not in rule_raw:
                continue
            rules.append(
                RecordingRule(
                    record=rule_raw["record"],
                    expr=rule_raw["expr"],
                    labels=dict(rule_raw.get("labels") or {}),
                )
            )
        if rules:
            groups.append(
                RuleGroup(
                    name=group_raw["name"],
                    interval=parse_duration(str(group_raw.get("interval", "30s"))),
                    rules=rules,
                )
            )
    return groups
