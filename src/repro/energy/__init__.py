"""Per-workload energy estimation: the paper's Eq. (1) as rules.

The heart of the CEEMS contribution is *configurable* attribution of
node-level energy to workloads, expressed as Prometheus recording
rules so operators can adapt the formula to their hardware (paper
§III.A).  This package ships the rule library for every node class
deployed on Jean-Zay:

* Intel nodes with CPU+DRAM RAPL → the full Eq. (1);
* AMD nodes with package-only RAPL → CPU-time-share variant;
* GPU servers whose IPMI reading includes GPU power → GPU power is
  measured by DCGM, subtracted from IPMI before the CPU/DRAM split,
  and credited to the unit bound to each GPU;
* GPU servers whose IPMI reading excludes GPU power → as above minus
  the subtraction.

plus the emissions rules multiplying unit power by the live grid
factor, and :class:`~repro.energy.estimator.UnitEnergyEstimator`, the
query-side helper the API server uses to integrate recorded power
into per-unit energy and emissions.
"""

from repro.energy.estimator import UnitEnergyEstimator
from repro.energy.extensions import (
    DRAM_BW_METRIC,
    FLOPS_PER_WATT_METRIC,
    POWER_METRIC_NETAWARE,
    efficiency_rules,
    network_aware_rules,
)
from repro.energy.rules_library import (
    POWER_METRIC,
    EMISSIONS_METRIC,
    NodeGroup,
    emissions_rules,
    rules_for_group,
    standard_rule_groups,
)

__all__ = [
    "NodeGroup",
    "rules_for_group",
    "emissions_rules",
    "standard_rule_groups",
    "network_aware_rules",
    "efficiency_rules",
    "UnitEnergyEstimator",
    "POWER_METRIC",
    "POWER_METRIC_NETAWARE",
    "EMISSIONS_METRIC",
    "FLOPS_PER_WATT_METRIC",
    "DRAM_BW_METRIC",
]
