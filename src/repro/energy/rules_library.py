"""The recording-rule library implementing Eq. (1) and its variants.

The paper's Eq. (1), for a node where RAPL exposes CPU and DRAM
domains and IPMI covers the whole node::

    P_job = 0.9 * P_ipmi * (P_rapl_cpu / (P_rapl_cpu + P_rapl_dram)) * (T_job / T_node)
          + 0.9 * P_ipmi * (P_rapl_dram / (P_rapl_cpu + P_rapl_dram)) * (M_job / M_node)
          + 0.1 * P_ipmi / N_jobs

where T are CPU-time *rates*, M are memory usages, and the 0.1 share
models network power distributed equally among the node's jobs
(ref. [24] of the paper).  Local storage is assumed to draw nothing
(Jean-Zay nodes are diskless).

Every term is written in PromQL over the series the exporters expose,
organised as ordered recording rules so intermediate node-level
aggregates are recorded once and reused.  Node classes are selected
with a ``nodegroup`` scrape-group label, exactly how the paper routes
different hardware to different rules ("grouping them in different
scrape target groups and defining the recording rules accordingly").

GPU variants: DCGM/AMD-SMI power is joined to compute units through
the ``ceems_compute_unit_gpu_index_flag`` map series, credited 100 %
to the bound unit, and — on server classes whose BMC measures GPU
rails — subtracted from the IPMI reading before the CPU/DRAM split.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tsdb.rules import RecordingRule, RuleGroup

#: The final recorded per-unit power series.
POWER_METRIC = "ceems:compute_unit:power_watts"
#: The recorded per-unit emissions rate series (gCO2e/s).
EMISSIONS_METRIC = "ceems:compute_unit:co2_g_per_s"
#: Recorded node-level power (for operator dashboards).
NODE_POWER_METRIC = "ceems:node:power_watts"

#: Fraction of node power attributed to CPU+DRAM vs network (Eq. 1).
CPU_DRAM_SHARE = 0.9
NETWORK_SHARE = 0.1

RATE_WINDOW = "2m"


@dataclass(frozen=True)
class NodeGroup:
    """One scrape-target group with homogeneous estimation rules."""

    name: str  # value of the nodegroup label
    has_dram_rapl: bool
    has_gpu: bool
    ipmi_includes_gpu: bool


#: The four Jean-Zay classes from paper §III.A.
JEAN_ZAY_GROUPS = (
    NodeGroup("intel-cpu", has_dram_rapl=True, has_gpu=False, ipmi_includes_gpu=True),
    NodeGroup("amd-cpu", has_dram_rapl=False, has_gpu=False, ipmi_includes_gpu=True),
    NodeGroup("gpu-ipmi-incl", has_dram_rapl=True, has_gpu=True, ipmi_includes_gpu=True),
    NodeGroup("gpu-ipmi-excl", has_dram_rapl=True, has_gpu=True, ipmi_includes_gpu=False),
)


def _common_rules(group: NodeGroup, rate_window: str = RATE_WINDOW) -> list[RecordingRule]:
    """Node-level aggregates shared by all variants.

    ``rate_window`` must exceed ~4x the scrape interval or ``rate()``
    sees fewer than two samples and records nothing (a real
    Prometheus deployment rule, reproduced here).
    """
    g = f'nodegroup="{group.name}"'
    rules = [
        RecordingRule(
            record="instance:ipmi_watts",
            expr=f"sum by (hostname, nodegroup) (ceems_ipmi_dcmi_current_watts{{{g}}})",
        ),
        RecordingRule(
            record="instance:cpu_rate",
            expr=(
                f'sum by (hostname, nodegroup) (rate(ceems_cpu_seconds_total{{{g}, mode=~"user|system"}}[{rate_window}]))'
            ),
        ),
        RecordingRule(
            record="instance:unit_cpu_rate",
            expr=(
                f"sum by (hostname, nodegroup, uuid, manager) "
                f"(rate(ceems_compute_unit_cpu_user_seconds_total{{{g}}}[{rate_window}])) + "
                f"sum by (hostname, nodegroup, uuid, manager) "
                f"(rate(ceems_compute_unit_cpu_system_seconds_total{{{g}}}[{rate_window}]))"
            ),
        ),
        RecordingRule(
            record="instance:unit_count",
            expr=f'count by (hostname, nodegroup) (instance:unit_cpu_rate{{{g}}})',
        ),
    ]
    if group.has_dram_rapl:
        rules += [
            RecordingRule(
                record="instance:rapl_package_watts",
                expr=f"sum by (hostname, nodegroup) (rate(ceems_rapl_package_joules_total{{{g}}}[{rate_window}]))",
            ),
            RecordingRule(
                record="instance:rapl_dram_watts",
                expr=f"sum by (hostname, nodegroup) (rate(ceems_rapl_dram_joules_total{{{g}}}[{rate_window}]))",
            ),
            RecordingRule(
                record="instance:unit_memory",
                expr=f"sum by (hostname, nodegroup, uuid, manager) (ceems_compute_unit_memory_current_bytes{{{g}}})",
            ),
            RecordingRule(
                record="instance:node_memory",
                expr=f"sum by (hostname, nodegroup) (ceems_meminfo_used_bytes{{{g}}})",
            ),
        ]
    if group.has_gpu:
        rules += [
            RecordingRule(
                record="instance:gpu_watts",
                expr=(
                    f"sum by (hostname, nodegroup) (DCGM_FI_DEV_POWER_USAGE{{{g}}}) "
                    f"or sum by (hostname, nodegroup) (amd_gpu_power{{{g}}} / 1e6)"
                ),
            ),
            RecordingRule(
                record="instance:unit_gpu_watts",
                expr=(
                    f"sum by (hostname, nodegroup, uuid, manager) ("
                    f"ceems_compute_unit_gpu_index_flag{{{g}}} "
                    f"* on(hostname, index) group_left() "
                    f'label_replace(DCGM_FI_DEV_POWER_USAGE{{{g}}}, "index", "$1", "gpu", "(.*)")'
                    f")"
                ),
            ),
        ]
    return rules


def _power_rule(group: NodeGroup) -> RecordingRule:
    """The per-unit power rule for this node class."""
    g = f'nodegroup="{group.name}"'
    # The IPMI power available to the CPU/DRAM/network split.  On
    # server classes whose BMC measures GPU rails, the measured GPU
    # power is removed first; it is credited separately below.
    if group.has_gpu and group.ipmi_includes_gpu:
        host_power = (
            f"(instance:ipmi_watts{{{g}}} - on(hostname, nodegroup) instance:gpu_watts{{{g}}})"
        )
    else:
        host_power = f"instance:ipmi_watts{{{g}}}"

    cpu_time_share = (
        f"(instance:unit_cpu_rate{{{g}}} / on(hostname, nodegroup) group_left() instance:cpu_rate{{{g}}})"
    )
    network_term = (
        f"({NETWORK_SHARE} * {host_power} / on(hostname, nodegroup) group_left() instance:unit_count{{{g}}})"
        f" * on(hostname, nodegroup) group_right() "
        f"(instance:unit_cpu_rate{{{g}}} * 0 + 1)"
    )

    if group.has_dram_rapl:
        cpu_fraction = (
            f"(instance:rapl_package_watts{{{g}}} / on(hostname, nodegroup) "
            f"(instance:rapl_package_watts{{{g}}} + on(hostname, nodegroup) instance:rapl_dram_watts{{{g}}}))"
        )
        dram_fraction = (
            f"(instance:rapl_dram_watts{{{g}}} / on(hostname, nodegroup) "
            f"(instance:rapl_package_watts{{{g}}} + on(hostname, nodegroup) instance:rapl_dram_watts{{{g}}}))"
        )
        mem_share = (
            f"(instance:unit_memory{{{g}}} / on(hostname, nodegroup) group_left() instance:node_memory{{{g}}})"
        )
        cpu_term = (
            f"{CPU_DRAM_SHARE} * ({host_power} * on(hostname, nodegroup) {cpu_fraction})"
            f" * on(hostname, nodegroup) group_right() {cpu_time_share}"
        )
        dram_term = (
            f"{CPU_DRAM_SHARE} * ({host_power} * on(hostname, nodegroup) {dram_fraction})"
            f" * on(hostname, nodegroup) group_right() {mem_share}"
        )
        expr = f"{cpu_term} + {dram_term} + {network_term}"
    else:
        # AMD: no DRAM domain — the full 0.9 share follows CPU time.
        cpu_term = (
            f"{CPU_DRAM_SHARE} * {host_power}"
            f" * on(hostname, nodegroup) group_right() {cpu_time_share}"
        )
        expr = f"{cpu_term} + {network_term}"

    if group.has_gpu:
        # Credit measured GPU power to the bound unit.  Units with no
        # GPU still get their CPU/DRAM/network share via `or`.
        expr = (
            f"({expr}) + on(hostname, nodegroup, uuid, manager) instance:unit_gpu_watts{{{g}}}"
            f" or ({expr})"
        )
    return RecordingRule(record=POWER_METRIC, expr=expr)


def rules_for_group(
    group: NodeGroup, interval: float = 30.0, rate_window: str = RATE_WINDOW
) -> RuleGroup:
    """Build the full ordered rule group for one node class."""
    rules = _common_rules(group, rate_window)
    rules.append(_power_rule(group))
    rules.append(
        RecordingRule(
            record=NODE_POWER_METRIC,
            expr=f'sum by (hostname, nodegroup) (ceems_ipmi_dcmi_current_watts{{nodegroup="{group.name}"}})',
        )
    )
    return RuleGroup(name=f"ceems-power-{group.name}", interval=interval, rules=rules)


def emissions_rules(interval: float = 30.0) -> RuleGroup:
    """Unit power × live grid factor → emissions rate (gCO2e/s)."""
    return RuleGroup(
        name="ceems-emissions",
        interval=interval,
        rules=[
            RecordingRule(
                record=EMISSIONS_METRIC,
                expr=(
                    f"{POWER_METRIC} * on() group_left() "
                    f'(ceems_emissions_gCo2_kWh{{provider="resolved"}}) / 3.6e6'
                ),
            )
        ],
    )


def standard_rule_groups(
    groups: tuple[NodeGroup, ...] = JEAN_ZAY_GROUPS,
    interval: float = 30.0,
    *,
    rate_window: str = RATE_WINDOW,
    with_emissions: bool = True,
) -> list[RuleGroup]:
    """The default rule set: one group per node class + emissions."""
    out = [rules_for_group(g, interval, rate_window) for g in groups]
    if with_emissions:
        out.append(emissions_rules(interval))
    return out
