"""Estimation extensions beyond the paper's Eq. (1).

Two rule sets enabled by the §IV future-work collectors:

* **Traffic-weighted network share** — Eq. (1) distributes the
  0.1·IPMI network share *equally* among a node's jobs because the
  exporter "does not export any network-related statistics at the
  moment".  With the eBPF collector it does, so this variant
  distributes the share by observed TX+RX traffic.  The ablation
  bench (`benchmarks/bench_ablation.py`) quantifies how much this
  matters for network-skewed colocations.

* **Efficiency metrics** — FLOPS/W and DRAM bandwidth per unit,
  recorded by joining the perf counters with the Eq. (1) power
  series.  These are the job-efficiency signals the paper's operator
  use-case ("identify users and/or projects that are using the
  cluster resources inefficiently") needs.
"""

from __future__ import annotations

from repro.energy.rules_library import (
    CPU_DRAM_SHARE,
    NETWORK_SHARE,
    POWER_METRIC,
    RATE_WINDOW,
    NodeGroup,
    _common_rules,
)
from repro.tsdb.rules import RecordingRule, RuleGroup

#: Recorded by the traffic-weighted variant (kept distinct from the
#: paper-faithful POWER_METRIC so ablations can compare both).
POWER_METRIC_NETAWARE = "ceems:compute_unit:power_watts:netaware"
FLOPS_PER_WATT_METRIC = "ceems:compute_unit:flops_per_watt"
DRAM_BW_METRIC = "ceems:compute_unit:dram_bandwidth_bytes_per_s"


def _net_rules(group: NodeGroup, rate_window: str = RATE_WINDOW) -> list[RecordingRule]:
    """Per-unit and node network-traffic rates from the eBPF series."""
    g = f'nodegroup="{group.name}"'
    return [
        RecordingRule(
            record="instance:unit_net_rate",
            expr=(
                f"sum by (hostname, nodegroup, uuid, manager) "
                f"(rate(ceems_compute_unit_net_tx_bytes_total{{{g}}}[{rate_window}])) + "
                f"sum by (hostname, nodegroup, uuid, manager) "
                f"(rate(ceems_compute_unit_net_rx_bytes_total{{{g}}}[{rate_window}]))"
            ),
        ),
        RecordingRule(
            record="instance:net_rate",
            expr=f"sum by (hostname, nodegroup) (instance:unit_net_rate{{{g}}})",
        ),
    ]


def network_aware_power_rule(group: NodeGroup) -> RecordingRule:
    """Eq. (1) with the 0.1 share distributed by traffic.

    Only the network term changes; the 0.9·IPMI CPU/DRAM machinery is
    identical, so the rule reuses the intermediate series the standard
    group records (``instance:ipmi_watts`` etc.) and this group must
    therefore be evaluated *after* the standard group for the same
    ``nodegroup``.
    """
    g = f'nodegroup="{group.name}"'
    if group.has_gpu and group.ipmi_includes_gpu:
        host_power = (
            f"(instance:ipmi_watts{{{g}}} - on(hostname, nodegroup) instance:gpu_watts{{{g}}})"
        )
    else:
        host_power = f"instance:ipmi_watts{{{g}}}"
    cpu_time_share = (
        f"(instance:unit_cpu_rate{{{g}}} / on(hostname, nodegroup) group_left() instance:cpu_rate{{{g}}})"
    )
    net_share = (
        f"(instance:unit_net_rate{{{g}}} / on(hostname, nodegroup) group_left() instance:net_rate{{{g}}})"
    )
    network_term = (
        f"({NETWORK_SHARE} * {host_power})"
        f" * on(hostname, nodegroup) group_right() {net_share}"
    )
    if group.has_dram_rapl:
        cpu_fraction = (
            f"(instance:rapl_package_watts{{{g}}} / on(hostname, nodegroup) "
            f"(instance:rapl_package_watts{{{g}}} + on(hostname, nodegroup) instance:rapl_dram_watts{{{g}}}))"
        )
        dram_fraction = (
            f"(instance:rapl_dram_watts{{{g}}} / on(hostname, nodegroup) "
            f"(instance:rapl_package_watts{{{g}}} + on(hostname, nodegroup) instance:rapl_dram_watts{{{g}}}))"
        )
        mem_share = (
            f"(instance:unit_memory{{{g}}} / on(hostname, nodegroup) group_left() instance:node_memory{{{g}}})"
        )
        cpu_term = (
            f"{CPU_DRAM_SHARE} * ({host_power} * on(hostname, nodegroup) {cpu_fraction})"
            f" * on(hostname, nodegroup) group_right() {cpu_time_share}"
        )
        dram_term = (
            f"{CPU_DRAM_SHARE} * ({host_power} * on(hostname, nodegroup) {dram_fraction})"
            f" * on(hostname, nodegroup) group_right() {mem_share}"
        )
        expr = f"{cpu_term} + {dram_term} + on(hostname, nodegroup, uuid, manager) {network_term}"
    else:
        cpu_term = (
            f"{CPU_DRAM_SHARE} * {host_power}"
            f" * on(hostname, nodegroup) group_right() {cpu_time_share}"
        )
        expr = f"{cpu_term} + on(hostname, nodegroup, uuid, manager) {network_term}"
    if group.has_gpu:
        expr = (
            f"({expr}) + on(hostname, nodegroup, uuid, manager) instance:unit_gpu_watts{{{g}}}"
            f" or ({expr})"
        )
    return RecordingRule(record=POWER_METRIC_NETAWARE, expr=expr)


def network_aware_rules(
    group: NodeGroup,
    interval: float = 30.0,
    *,
    rate_window: str = RATE_WINDOW,
    standalone: bool = False,
) -> RuleGroup:
    """The traffic-weighted variant as its own rule group.

    With ``standalone=True`` the group also records all the common
    intermediate series, so it can run without the standard group
    (used by the ablation bench).
    """
    rules: list[RecordingRule] = []
    if standalone:
        rules.extend(_common_rules(group, rate_window))
    rules.extend(_net_rules(group, rate_window))
    rules.append(network_aware_power_rule(group))
    return RuleGroup(name=f"ceems-power-netaware-{group.name}", interval=interval, rules=rules)


def efficiency_rules(interval: float = 30.0, rate_window: str = RATE_WINDOW) -> RuleGroup:
    """FLOPS/W and DRAM bandwidth per unit (operator efficiency lens)."""
    return RuleGroup(
        name="ceems-efficiency",
        interval=interval,
        rules=[
            RecordingRule(
                record="instance:unit_flops_rate",
                expr=(
                    "sum by (hostname, nodegroup, uuid, manager) "
                    f"(rate(ceems_compute_unit_perf_flops_total[{rate_window}]))"
                ),
            ),
            RecordingRule(
                record=DRAM_BW_METRIC,
                expr=(
                    "sum by (hostname, nodegroup, uuid, manager) "
                    f"(rate(ceems_compute_unit_perf_dram_bytes_total[{rate_window}]))"
                ),
            ),
            RecordingRule(
                record=FLOPS_PER_WATT_METRIC,
                expr=(
                    "instance:unit_flops_rate "
                    f"/ on(hostname, nodegroup, uuid, manager) {POWER_METRIC}"
                ),
            ),
        ],
    )
