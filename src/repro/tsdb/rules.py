"""Prometheus recording rules.

Recording rules are the paper's configurability mechanism: *"using
recording rules, it is possible to estimate the same derived metric
using different rules according to the needs and underlying hardware
of the DC"* (§I).  The per-job power estimation of Eq. (1) is written
as recording rules, with a different rule group per node class
(§III.A) selected by label matchers on the scrape target group.

Rules in a group are evaluated **in order**, so later rules can use
series recorded by earlier rules in the same evaluation cycle — this
matches Prometheus, and the Eq. (1) rule set exploits it (per-job CPU
and DRAM power are recorded first, then summed into total job power).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import QueryError
from repro.tsdb.model import METRIC_NAME_LABEL, Labels
from repro.tsdb.promql.ast import Expr
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.promql.parser import parse_expr
from repro.tsdb.storage import TSDB


@dataclass
class RecordingRule:
    """One recording rule: evaluate ``expr``, store as ``record``."""

    record: str
    expr: str
    #: Extra labels attached to every recorded sample.
    labels: dict[str, str] = field(default_factory=dict)
    _ast: Expr | None = field(default=None, repr=False)
    #: Output series produced by the previous evaluation; outputs that
    #: vanish get staleness markers (Prometheus rule semantics).
    _previous_outputs: set = field(default_factory=set, repr=False)

    def ast(self) -> Expr:
        if self._ast is None:
            self._ast = parse_expr(self.expr)
        return self._ast


@dataclass
class RuleGroup:
    """A named group of rules sharing an evaluation interval."""

    name: str
    interval: float
    rules: list[RecordingRule] = field(default_factory=list)

    #: evaluation bookkeeping
    evaluations: int = 0
    last_samples: int = 0
    last_error: str = ""

    def evaluate(self, storage: TSDB, at: float, *, engine: PromQLEngine | None = None) -> int:
        """Evaluate every rule at timestamp ``at``, appending results.

        Returns the number of samples recorded.  A rule whose
        expression fails (e.g. its inputs have not been scraped yet)
        is skipped and reported via :attr:`last_error`, without
        aborting the group — Prometheus behaviour.
        """
        engine = engine or PromQLEngine(storage)
        recorded = 0
        self.last_error = ""
        for rule in self.rules:
            try:
                # Rules evaluate through the columnar path: a group's
                # rules repeatedly hit the same selectors, so they ride
                # the storage selector memo and the batched evaluator.
                result = engine.query(rule.ast(), at, strategy="columnar")
            except (QueryError, ZeroDivisionError) as exc:
                self.last_error = f"{rule.record}: {exc}"
                continue
            outputs: set[Labels] = set()
            if result.is_scalar:
                labels = Labels({METRIC_NAME_LABEL: rule.record, **rule.labels})
                storage.append(labels, at, float(result.scalar))
                outputs.add(labels)
                recorded += 1
            else:
                for el in result.vector:
                    d = el.labels.as_dict()
                    d[METRIC_NAME_LABEL] = rule.record
                    d.update(rule.labels)
                    labels = Labels(d)
                    storage.append(labels, at, el.value)
                    outputs.add(labels)
                    recorded += 1
            # Stale-mark output series that vanished this evaluation
            # (e.g. a finished unit's power series) so downstream
            # reads don't see zombie values for the lookback window.
            # Series already deleted from storage (cardinality
            # cleanup) are skipped — marking them would re-create
            # exactly what the cleanup removed.
            for labels in rule._previous_outputs - outputs:
                if storage.has_series(labels):
                    storage.append(labels, at, float("nan"))
            rule._previous_outputs = outputs
        self.evaluations += 1
        self.last_samples = recorded
        return recorded


class RuleManager:
    """Evaluates rule groups on their intervals against one storage.

    ``lookback`` is the instant-query lookback delta the rule engine
    uses; it must exceed the scrape interval (Prometheus's
    ``--query.lookback-delta`` deployment rule).
    """

    def __init__(self, storage: TSDB, lookback: float = 300.0) -> None:
        self.storage = storage
        self.groups: list[RuleGroup] = []
        self._engine = PromQLEngine(storage, lookback=lookback)

    def add_group(self, group: RuleGroup) -> None:
        if any(g.name == group.name for g in self.groups):
            raise QueryError(f"duplicate rule group {group.name!r}")
        self.groups.append(group)

    def evaluate_all(self, at: float) -> int:
        """Evaluate every group once (used by simulation-driven loops)."""
        return sum(group.evaluate(self.storage, at, engine=self._engine) for group in self.groups)

    def register_timers(self, clock) -> None:
        """Attach each group to a :class:`~repro.common.clock.SimClock`."""
        for group in self.groups:
            clock.every(group.interval, lambda now, g=group: g.evaluate(self.storage, now, engine=self._engine))

    def selector_cache_stats(self) -> dict[str, float]:
        """Selector-memo hit/miss counters of the backing storage —
        the observable for "rule groups reuse selector results"."""
        return self.storage.selector_cache_stats()
