"""Prometheus recording rules.

Recording rules are the paper's configurability mechanism: *"using
recording rules, it is possible to estimate the same derived metric
using different rules according to the needs and underlying hardware
of the DC"* (§I).  The per-job power estimation of Eq. (1) is written
as recording rules, with a different rule group per node class
(§III.A) selected by label matchers on the scrape target group.

Rules in a group are evaluated **in order**, so later rules can use
series recorded by earlier rules in the same evaluation cycle — this
matches Prometheus, and the Eq. (1) rule set exploits it (per-job CPU
and DRAM power are recorded first, then summed into total job power).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import QueryError
from repro.tsdb.alerts import AlertingRuleGroup
from repro.tsdb.model import METRIC_NAME_LABEL, Labels
from repro.tsdb.promql.ast import Expr
from repro.tsdb.promql.engine import PromQLEngine
from repro.tsdb.promql.parser import parse_expr
from repro.tsdb.storage import TSDB


@dataclass
class RecordingRule:
    """One recording rule: evaluate ``expr``, store as ``record``."""

    record: str
    expr: str
    #: Extra labels attached to every recorded sample.
    labels: dict[str, str] = field(default_factory=dict)
    _ast: Expr | None = field(default=None, repr=False)
    #: Output series produced by the previous evaluation; outputs that
    #: vanish get staleness markers (Prometheus rule semantics).
    _previous_outputs: set = field(default_factory=set, repr=False)

    def ast(self) -> Expr:
        if self._ast is None:
            self._ast = parse_expr(self.expr)
        return self._ast


@dataclass
class RuleGroup:
    """A named group of rules sharing an evaluation interval."""

    name: str
    interval: float
    rules: list[RecordingRule] = field(default_factory=list)

    #: evaluation bookkeeping
    evaluations: int = 0
    last_samples: int = 0
    last_error: str = ""

    def evaluate(self, storage: TSDB, at: float, *, engine: PromQLEngine | None = None) -> int:
        """Evaluate every rule at timestamp ``at``, appending results.

        Returns the number of samples recorded.  A rule whose
        expression fails (e.g. its inputs have not been scraped yet)
        is skipped and reported via :attr:`last_error`, without
        aborting the group — Prometheus behaviour.
        """
        engine = engine or PromQLEngine(storage)
        recorded = 0
        self.last_error = ""
        for rule in self.rules:
            try:
                # Rules evaluate through the columnar path: a group's
                # rules repeatedly hit the same selectors, so they ride
                # the storage selector memo and the batched evaluator.
                result = engine.query(rule.ast(), at, strategy="columnar")
            except (QueryError, ZeroDivisionError) as exc:
                self.last_error = f"{rule.record}: {exc}"
                continue
            outputs: set[Labels] = set()
            if result.is_scalar:
                labels = Labels({METRIC_NAME_LABEL: rule.record, **rule.labels})
                storage.append(labels, at, float(result.scalar))
                outputs.add(labels)
                recorded += 1
            else:
                for el in result.vector:
                    d = el.labels.as_dict()
                    d[METRIC_NAME_LABEL] = rule.record
                    d.update(rule.labels)
                    labels = Labels(d)
                    storage.append(labels, at, el.value)
                    outputs.add(labels)
                    recorded += 1
            # Stale-mark output series that vanished this evaluation
            # (e.g. a finished unit's power series) so downstream
            # reads don't see zombie values for the lookback window.
            # Series already deleted from storage (cardinality
            # cleanup) are skipped — marking them would re-create
            # exactly what the cleanup removed.
            for labels in rule._previous_outputs - outputs:
                if storage.has_series(labels):
                    storage.append(labels, at, float("nan"))
            rule._previous_outputs = outputs
        self.evaluations += 1
        self.last_samples = recorded
        return recorded


class RuleManager:
    """Evaluates rule groups on their intervals against one storage.

    ``lookback`` is the instant-query lookback delta the rule engine
    uses; it must exceed the scrape interval (Prometheus's
    ``--query.lookback-delta`` deployment rule).
    """

    def __init__(self, storage: TSDB, lookback: float = 300.0) -> None:
        self.storage = storage
        self.groups: list[RuleGroup] = []
        self._engine = PromQLEngine(storage, lookback=lookback)

    def add_group(self, group: RuleGroup) -> None:
        if any(g.name == group.name for g in self.groups):
            raise QueryError(f"duplicate rule group {group.name!r}")
        self.groups.append(group)

    def evaluate_all(self, at: float) -> int:
        """Evaluate every group once (used by simulation-driven loops)."""
        return sum(group.evaluate(self.storage, at, engine=self._engine) for group in self.groups)

    def register_timers(self, clock) -> None:
        """Attach each group to a :class:`~repro.common.clock.SimClock`."""
        for group in self.groups:
            clock.every(group.interval, lambda now, g=group: g.evaluate(self.storage, now, engine=self._engine))

    def selector_cache_stats(self) -> dict[str, float]:
        """Selector-memo hit/miss counters of the backing storage —
        the observable for "rule groups reuse selector results"."""
        return self.storage.selector_cache_stats()


#: Synthetic series written for each active alert (Prometheus writes
#: the same series so dashboards can graph alert state over time).
ALERTS_METRIC = "ALERTS"


class RuleEvaluator(RuleManager):
    """A :class:`RuleManager` that also runs alerting rule groups.

    Each alerting group is evaluated on its own interval against the
    same storage/engine as the recording rules.  Active alerts are
    written back as ``ALERTS{alertname=..., alertstate=...} 1``
    synthetic series (with staleness markers when an alert clears,
    Prometheus semantics), and state transitions are forwarded to an
    optional ``notifier`` callable — in the simulation that is
    :meth:`repro.obs.alertmanager.Alertmanager.receive`.
    """

    def __init__(self, storage: TSDB, lookback: float = 300.0) -> None:
        super().__init__(storage, lookback=lookback)
        self.alert_groups: list[AlertingRuleGroup] = []
        #: called with (transitions, now) after each alerting evaluation
        self.notifier = None
        self.alert_evaluations = 0
        #: ALERTS series written by the previous evaluation, for staleness
        self._previous_alert_series: set[Labels] = set()

    def add_alert_group(self, group: AlertingRuleGroup) -> None:
        if any(g.name == group.name for g in self.alert_groups):
            raise QueryError(f"duplicate alerting rule group {group.name!r}")
        self.alert_groups.append(group)

    def evaluate_alert_group(self, group: AlertingRuleGroup, now: float) -> list:
        """Evaluate one alerting group: record ALERTS series, notify."""
        transitions = group.evaluate(self._engine, now)
        self.alert_evaluations += 1
        self._write_alert_series(now)
        if self.notifier is not None and transitions:
            self.notifier(transitions, now)
        return transitions

    def evaluate_alerts(self, now: float) -> list:
        """Evaluate every alerting group once (test/CLI convenience)."""
        transitions = []
        for group in self.alert_groups:
            transitions.extend(self.evaluate_alert_group(group, now))
        return transitions

    def _write_alert_series(self, now: float) -> None:
        outputs: set[Labels] = set()
        for group in self.alert_groups:
            for alert in group.active_alerts():
                d = alert.labels.as_dict()
                d[METRIC_NAME_LABEL] = ALERTS_METRIC
                d["alertname"] = alert.name
                d["alertstate"] = alert.state.value
                labels = Labels(d)
                self.storage.append(labels, now, 1.0)
                outputs.add(labels)
        # An alert that changed state or cleared leaves its previous
        # ALERTS series dangling; stale-mark it like a recording rule
        # output so lookback reads don't resurrect it.
        for labels in self._previous_alert_series - outputs:
            if self.storage.has_series(labels):
                self.storage.append(labels, now, float("nan"))
        self._previous_alert_series = outputs

    # -- introspection ------------------------------------------------

    def active_alerts(self) -> list:
        return [a for group in self.alert_groups for a in group.active_alerts()]

    @property
    def pending_count(self) -> int:
        return sum(r.pending_count for g in self.alert_groups for r in g.rules)

    @property
    def firing_count(self) -> int:
        return sum(r.firing_count for g in self.alert_groups for r in g.rules)

    def register_timers(self, clock) -> None:
        super().register_timers(clock)
        for group in self.alert_groups:
            clock.every(
                group.interval,
                lambda now, g=group: self.evaluate_alert_group(g, now),
            )

    def register_metrics(self, registry) -> None:
        """Expose alert state through a self-telemetry registry so the
        alert engine is itself scraped (meta-monitoring)."""
        registry.gauge_func(
            "ceems_alerts_pending",
            lambda: float(self.pending_count),
            help="Alert instances currently in the pending (for-hold) state.",
        )
        registry.gauge_func(
            "ceems_alerts_firing",
            lambda: float(self.firing_count),
            help="Alert instances currently firing.",
        )
        registry.gauge_func(
            "ceems_alert_rule_evaluations_total",
            lambda: float(self.alert_evaluations),
            help="Alerting rule group evaluations performed.",
            type="counter",
        )
